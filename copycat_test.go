package copycat

import (
	"strings"
	"testing"
)

func TestNewSystemEmpty(t *testing.T) {
	sys := NewSystem()
	if sys.Workspace == nil || sys.Catalog == nil || sys.Types == nil {
		t.Fatal("system components missing")
	}
	if sys.World != nil {
		t.Error("plain system should have no world")
	}
	if sys.Catalog.Len() != 0 || len(sys.Types.Types()) != 0 {
		t.Error("plain system should start empty")
	}
}

func TestDemoSystemWiring(t *testing.T) {
	sys := NewDemoSystem(DefaultWorldConfig())
	if sys.World == nil {
		t.Fatal("demo system needs a world")
	}
	if sys.Catalog.Len() != 6 {
		t.Errorf("builtin services = %d want 6", sys.Catalog.Len())
	}
	if len(sys.Types.Types()) == 0 {
		t.Error("builtin types not trained")
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	// The doc-comment session, executed.
	sys := NewDemoSystem(DefaultWorldConfig())
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if sys.Workspace.RowSuggestions().Count == 0 {
		t.Fatal("no row auto-completions")
	}
	if err := sys.Workspace.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	sys.Workspace.SetMode(ModeIntegration)
	cols := sys.Workspace.RefreshColumnSuggestions()
	if len(cols) == 0 {
		t.Fatal("no column completions")
	}
	geoIdx := -1
	for i, c := range cols {
		if c.Target == "Geocoder" {
			geoIdx = i
		}
	}
	if geoIdx < 0 {
		t.Fatal("no geocoder completion")
	}
	if err := sys.Workspace.AcceptColumn(geoIdx); err != nil {
		t.Fatal(err)
	}
	rel := sys.Workspace.ActiveTab().Relation()
	kml, err := KML(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(kml, "<Placemark>") {
		t.Error("KML has no placemarks")
	}
	geo, err := GeoJSON(rel)
	if err != nil || !strings.Contains(geo, "FeatureCollection") {
		t.Errorf("GeoJSON export failed: %v", err)
	}
	if !strings.Contains(XML(rel), "<row>") {
		t.Error("XML export failed")
	}
	if !strings.Contains(CSV(rel), "Lat") {
		t.Error("CSV export failed")
	}
}

func TestOpenSpreadsheet(t *testing.T) {
	sys := NewDemoSystem(DefaultWorldConfig())
	sheet := sys.OpenSpreadsheet(sys.ContactsSpreadsheet())
	sel, err := sheet.CopyRange(1, 0, 1, 2)
	if err != nil || len(sel.Cells) != 1 {
		t.Fatalf("spreadsheet copy failed: %v", err)
	}
	// The copy landed on the workspace's clipboard.
	if cur, ok := sys.Workspace.Clip.Current(); !ok || cur.App != "excel" {
		t.Error("clipboard not shared with the workspace")
	}
}
