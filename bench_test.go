package copycat

// Benchmarks regenerating the paper's evaluation, one per experiment in
// DESIGN.md's index (run `go test -bench=. -benchmem`, or the scpbench
// command for the human-readable tables). Custom metrics carry the
// quantities the paper reports: keystroke savings, feedback counts,
// examples-to-convergence, and approximation ratios.

import (
	"fmt"
	"math/rand"
	"testing"

	"copycat/internal/engine"
	"copycat/internal/linkage"
	"copycat/internal/modellearn"
	"copycat/internal/simuser"
	"copycat/internal/sourcegraph"
	"copycat/internal/steiner"
	"copycat/internal/structlearn"
	"copycat/internal/table"
	"copycat/internal/webworld"
)

func benchWorld() *webworld.World { return webworld.Generate(webworld.DefaultConfig()) }

// BenchmarkImportMode is F1: generalizing a two-row paste into the page's
// full extraction (expert analysis + hypothesis search).
func BenchmarkImportMode(b *testing.B) {
	w := benchWorld()
	doc := w.ShelterSite(webworld.StyleTable).RootPage()
	s0, s1 := w.Shelters[0], w.Shelters[1]
	examples := [][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cands := structlearn.Analyze(doc)
		hyps := structlearn.Hypotheses(cands, examples)
		if len(hyps) == 0 || len(hyps[0].Rows) != len(w.Shelters) {
			b.Fatal("generalization failed")
		}
	}
}

// BenchmarkColumnCompletion is F2: proposing and executing the Zip column
// auto-completion over the imported shelter table.
func BenchmarkColumnCompletion(b *testing.B) {
	sys := NewDemoSystem(DefaultWorldConfig())
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City}, {s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		b.Fatal(err)
	}
	if err := sys.Workspace.AcceptRows(); err != nil {
		b.Fatal(err)
	}
	sys.Workspace.SetMode(ModeIntegration)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comps := sys.Workspace.RefreshColumnSuggestions()
		if len(comps) == 0 {
			b.Fatal("no completions")
		}
	}
}

// BenchmarkColumnCompletionTraced is the same loop with the span tracer
// enabled — compare against BenchmarkColumnCompletion to see what
// tracing costs on the suggestion hot path (the disabled path itself is
// covered by BenchmarkDisabledSpan in internal/obs).
func BenchmarkColumnCompletionTraced(b *testing.B) {
	sys := NewDemoSystem(DefaultWorldConfig())
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City}, {s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		b.Fatal(err)
	}
	if err := sys.Workspace.AcceptRows(); err != nil {
		b.Fatal(err)
	}
	sys.Workspace.SetMode(ModeIntegration)
	sys.EnableTracing()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comps := sys.Workspace.RefreshColumnSuggestions()
		if len(comps) == 0 {
			b.Fatal("no completions")
		}
		// Keep the span buffer from growing without bound across b.N.
		if sys.Workspace.Trace().Len() > 1<<16 {
			b.StopTimer()
			sys.Workspace.Trace().Reset()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(sys.Workspace.Trace().Len())/float64(b.N), "spans/op")
}

// BenchmarkKeystrokeSavings is E1: the full demo session; the savings
// fraction vs manual copy-and-paste is reported as a metric (the paper's
// ~75% claim).
func BenchmarkKeystrokeSavings(b *testing.B) {
	w := benchWorld()
	b.ReportAllocs()
	var savings float64
	for i := 0; i < b.N; i++ {
		res, err := simuser.RunShelterTask(w, webworld.StyleTable)
		if err != nil {
			b.Fatal(err)
		}
		savings = res.SavingsVsCopying
	}
	b.ReportMetric(savings*100, "%savings")
}

// BenchmarkMIRAConvergence is E2: feedback rounds until a single query's
// ranking is fixed plus family training; metrics carry the counts.
func BenchmarkMIRAConvergence(b *testing.B) {
	b.ReportAllocs()
	var res *simuser.ConvergenceResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = simuser.MeasureConvergence(20, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SingleQueryFeedback), "feedback/query")
	b.ReportMetric(res.FamilyAccuracy*100, "%family-acc")
}

// BenchmarkWrapperInduction is E3: examples-to-convergence per page
// class, with per-style sub-benchmarks.
func BenchmarkWrapperInduction(b *testing.B) {
	w := benchWorld()
	for _, style := range webworld.AllStyles() {
		b.Run(style.String(), func(b *testing.B) {
			b.ReportAllocs()
			var needed int
			for i := 0; i < b.N; i++ {
				n, ok := simuser.ExamplesNeeded(w, style, 15)
				if !ok {
					b.Fatalf("style %s never converged", style)
				}
				needed = n
			}
			b.ReportMetric(float64(needed), "examples")
		})
	}
}

// BenchmarkTypeRecognition is E4: recognizing a pasted column against the
// builtin type library.
func BenchmarkTypeRecognition(b *testing.B) {
	w := benchWorld()
	lib := modellearn.NewLibrary()
	modellearn.TrainBuiltins(lib, w)
	col := []string{
		w.Shelters[0].Street, w.Shelters[1].Street, w.Shelters[2].Street,
		w.Shelters[3].Street, w.Shelters[4].Street,
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scores := lib.Recognize(col)
		if len(scores) == 0 || scores[0].Type != modellearn.TypeStreet {
			b.Fatal("misrecognized")
		}
	}
}

// BenchmarkSteinerTopK is F4: top-3 queries on the running example's
// small source graph (exact solver).
func BenchmarkSteinerTopK(b *testing.B) {
	g := steiner.NewGraph(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		g.AddEdge(i, (i+1)%8, 1+float64(rng.Intn(3)))
	}
	for i := 0; i < 8; i++ {
		g.AddEdge(rng.Intn(8), rng.Intn(8), 1+float64(rng.Intn(5)))
	}
	terms := []int{0, 3, 6}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if trees := steiner.TopK(g, terms, 3, steiner.Exact); len(trees) == 0 {
			b.Fatal("no trees")
		}
	}
}

// BenchmarkSteinerScaleup is E5: exact vs SPCSH across graph sizes.
func BenchmarkSteinerScaleup(b *testing.B) {
	for _, n := range []int{16, 64, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := steiner.NewGraph(n)
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n, 1+float64(rng.Intn(5)))
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+float64(rng.Intn(9)))
			}
		}
		terms := rng.Perm(n)[:4]
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := steiner.Exact(g, terms, nil); !ok {
					b.Fatal("infeasible")
				}
			}
		})
		b.Run(fmt.Sprintf("spcsh/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var ratio float64
			ex, _ := steiner.Exact(g, terms, nil)
			for i := 0; i < b.N; i++ {
				ap, ok := steiner.SPCSH(g, terms, nil)
				if !ok {
					b.Fatal("infeasible")
				}
				ratio = ap.Cost / ex.Cost
			}
			b.ReportMetric(ratio, "cost-ratio")
		})
	}
}

// BenchmarkDemoTask is E6: the complete §8 demo session per site style.
func BenchmarkDemoTask(b *testing.B) {
	w := benchWorld()
	for _, style := range []webworld.SiteStyle{webworld.StyleTable, webworld.StylePaged, webworld.StyleForm} {
		b.Run(style.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := simuser.RunShelterTask(w, style); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAssociationDiscovery is A1: candidate-pair workload with and
// without the semantic-type constraint.
func BenchmarkAssociationDiscovery(b *testing.B) {
	w := benchWorld()
	env := simuser.NewEnv(w, webworld.StyleTable)
	rel := w.ShelterRelation()
	rel.Schema[0].SemType = modellearn.TypeOrgName
	rel.Schema[1].SemType = modellearn.TypeStreet
	rel.Schema[2].SemType = modellearn.TypeCity
	rel.Schema[4].SemType = modellearn.TypeZip
	env.WS.Cat.AddRelation(rel, "bench")
	env.WS.Cat.AddRelation(w.ContactRelation(), "bench")
	for name, opts := range map[string]sourcegraph.Options{
		"with-types":    sourcegraph.DefaultOptions(),
		"without-types": {UseSemTypes: false},
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var pairs int
			for i := 0; i < b.N; i++ {
				g := sourcegraph.New(env.WS.Cat)
				g.Discover(opts)
				pairs = 0
				for _, e := range g.Edges() {
					pairs += len(e.FromCols)
				}
			}
			b.ReportMetric(float64(pairs), "matched-pairs")
		})
	}
}

// BenchmarkQueryEngine measures the provenance-annotating executor on the
// demo-scale join + dependent-join pipeline.
func BenchmarkQueryEngine(b *testing.B) {
	w := benchWorld()
	shel := table.NewRelation("Shelters", table.NewSchema("Name", "Street", "City"))
	for _, s := range w.Shelters {
		shel.MustAppend(table.FromStrings([]string{s.Name, s.Street, s.City}))
	}
	con := table.NewRelation("Contacts", table.NewSchema("Org", "City", "Phone"))
	for _, c := range w.Contacts {
		con.MustAppend(table.FromStrings([]string{c.Org, c.City, c.Phone}))
	}
	join, err := engine.NewHashJoinByName(engine.NewScan(shel), engine.NewScan(con), [][2]string{{"City", "City"}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := engine.Run(join)
		if err != nil || len(res.Rows) == 0 {
			b.Fatal("join failed")
		}
	}
}

// BenchmarkRecordLinking measures the learned-linker similarity join used
// to attach the contacts spreadsheet.
func BenchmarkRecordLinking(b *testing.B) {
	w := benchWorld()
	linker := linkage.NewLinker()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hits := 0
		for _, c := range w.Contacts {
			if linker.Score(c.Org, w.Shelters[c.ShelterID].Name) >= 0.55 {
				hits++
			}
		}
		if hits == 0 {
			b.Fatal("no links")
		}
	}
}
