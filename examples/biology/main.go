// Biology: learning to rank an entire query family from a little
// feedback — the workload the paper cites from the Q system ([34]:
// learning "converges very quickly in real domains such as biology (as
// little as one item of feedback for a single query, and feedback on 10
// queries to learn rankings for an entire family of queries)").
//
// The synthetic domain: gene sources G00..G19 each link to a publications
// target either through a curated annotation database (the route
// biologists want) or through a stale mirror that initially looks
// cheaper. Accepting the curated route for a few genes re-weights the
// shared edges, flipping the ranking for every gene.
//
//	go run ./examples/biology
package main

import (
	"fmt"
	"log"

	"copycat/internal/catalog"
	"copycat/internal/intlearn"
	"copycat/internal/sourcegraph"
	"copycat/internal/table"
)

const genes = 20

func main() {
	learner, sources := buildBiologyGraph()

	fmt.Println("before any feedback, the stale mirror wins every query:")
	printAccuracy(learner, sources)

	// One feedback item fixes one query (the headline claim).
	accepted, err := acceptCurated(learner, sources[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfeedback 1: accepted the curated route for %s (%d ranking constraints)\n",
		sources[0], accepted)
	if top := topRoute(learner, sources[0]); top != "CuratedDB" {
		log.Fatalf("single query did not converge: %s", top)
	}
	fmt.Printf("  %s now routes via CuratedDB ✓\n", sources[0])

	// Feedback on a handful of genes generalizes to the whole family,
	// because the hub→publications edges are shared features.
	fmt.Println("\ntraining on more genes:")
	for i := 1; i < 10; i++ {
		if _, err := acceptCurated(learner, sources[i]); err != nil {
			log.Fatal(err)
		}
		if i == 1 || i == 4 || i == 9 {
			fmt.Printf("after %2d feedback items: ", i+1)
			printAccuracy(learner, sources[10:])
		}
	}
	fmt.Println("\nheld-out genes (never trained) now rank the curated route first —")
	fmt.Println("the family was learned from feedback on a fraction of its members.")
}

// buildBiologyGraph wires the gene→hub→publications source graph.
func buildBiologyGraph() (*intlearn.Learner, []string) {
	cat := catalog.New()
	mk := func(name string, cols ...string) {
		rel := table.NewRelation(name, table.NewSchema(cols...))
		rel.MustAppend(table.FromStrings(make([]string, len(cols))))
		cat.AddRelation(rel, "biology")
	}
	mk("Publications", "PMID", "GeneID")
	mk("CuratedDB", "GeneID", "Annotation")
	mk("MirrorDB", "GeneID", "Annotation")
	var sources []string
	for i := 0; i < genes; i++ {
		name := fmt.Sprintf("G%02d", i)
		mk(name, "GeneID", "Sequence")
		sources = append(sources, name)
	}
	g := sourcegraph.New(cat)
	for i, s := range sources {
		g.AddEdge(sourcegraph.Edge{From: s, To: "CuratedDB", Kind: sourcegraph.KindJoin,
			FromCols: []string{"GeneID"}, ToCols: []string{"GeneID"}})
		// The mirror looks cheap — its links were bulk-imported with
		// optimistic confidence scores.
		g.AddEdge(sourcegraph.Edge{From: s, To: "MirrorDB", Kind: sourcegraph.KindJoin,
			FromCols: []string{"GeneID"}, ToCols: []string{"GeneID"},
			Cost: 0.5 + 0.45*float64(i)/float64(genes-1)})
	}
	g.AddEdge(sourcegraph.Edge{From: "CuratedDB", To: "Publications", Kind: sourcegraph.KindJoin,
		FromCols: []string{"GeneID"}, ToCols: []string{"GeneID"}})
	g.AddEdge(sourcegraph.Edge{From: "MirrorDB", To: "Publications", Kind: sourcegraph.KindJoin,
		FromCols: []string{"GeneID"}, ToCols: []string{"GeneID"}, Cost: 0.8})
	return intlearn.New(g), sources
}

// topRoute reports which hub the top query for a gene routes through.
func topRoute(l *intlearn.Learner, gene string) string {
	qs, err := l.TopQueries([]string{gene, "Publications"}, 1)
	if err != nil || len(qs) == 0 {
		return "?"
	}
	for _, n := range qs[0].Nodes {
		if n == "CuratedDB" || n == "MirrorDB" {
			return n
		}
	}
	return "?"
}

// acceptCurated gives one feedback item: the curated route is accepted
// over the alternatives among the top queries for the gene.
func acceptCurated(l *intlearn.Learner, gene string) (int, error) {
	qs, err := l.TopQueries([]string{gene, "Publications"}, 2)
	if err != nil {
		return 0, err
	}
	var curated *intlearn.Query
	var others []*intlearn.Query
	for _, q := range qs {
		via := false
		for _, n := range q.Nodes {
			if n == "CuratedDB" {
				via = true
			}
		}
		if via && curated == nil {
			curated = q
		} else {
			others = append(others, q)
		}
	}
	if curated == nil {
		return 0, fmt.Errorf("curated route not among top queries for %s", gene)
	}
	return l.AcceptQuery(curated, others), nil
}

func printAccuracy(l *intlearn.Learner, sources []string) {
	good := 0
	for _, s := range sources {
		if topRoute(l, s) == "CuratedDB" {
			good++
		}
	}
	fmt.Printf("curated route ranked first for %d/%d genes (%.0f%%)\n",
		good, len(sources), 100*float64(good)/float64(len(sources)))
}
