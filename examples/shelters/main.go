// Shelters: the paper's full §8 hurricane-relief integration task.
//
// FEMA needs shelters plotted on a map: a TV-news shelter list (grouped
// by city, the Figure 1 ambiguity), a contacts spreadsheet with noisy
// organization names (record linking), and geocoding services — all
// integrated purely by copying and pasting, then exported as KML/GeoJSON.
//
//	go run ./examples/shelters
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"copycat"
	"copycat/internal/table"
)

func main() {
	sys := copycat.NewDemoSystem(copycat.DefaultWorldConfig())
	ws := sys.Workspace
	w := sys.World

	// --- Source 1: the TV-news page, grouped by city --------------------
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleGrouped))
	city := w.Cities[0].Name
	in := w.SheltersIn(city)
	sel, err := browser.CopyRows([][]string{
		{in[0].Name, in[0].Street, in[0].City},
		{in[1].Name, in[1].Street, in[1].City},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ws.Paste(sel); err != nil {
		log.Fatal(err)
	}
	// Both examples are from one city: the most-general hypothesis covers
	// the whole page. Suppose the user wanted only this city — reject
	// until the scoped hypothesis shows (feedback revises the extractor).
	fmt.Printf("first hypothesis: %s\n", ws.RowSuggestions().Description)
	for ws.RowSuggestions().Count != len(in)-2 && ws.RowSuggestions().Alternatives > 0 {
		if err := ws.RejectRows(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after feedback:  %s\n", ws.RowSuggestions().Description)
	// Actually FEMA wants every shelter: paste a cross-city example and
	// the scoped hypotheses die; the general one returns.
	other := w.SheltersIn(w.Cities[1].Name)[0]
	sel, err = browser.CopyRows([][]string{{other.Name, other.Street, other.City}})
	if err != nil {
		log.Fatal(err)
	}
	if err := ws.Paste(sel); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a cross-city paste: %s\n", ws.RowSuggestions().Description)
	if err := ws.AcceptRows(); err != nil {
		log.Fatal(err)
	}
	ws.RenameColumn(0, "Name")
	ws.SetColumnType(0, "PR-OrgName")
	fmt.Printf("imported %d shelters\n\n", len(ws.ActiveTab().ConcreteRows()))

	// --- Source 2: the contacts spreadsheet ----------------------------
	sheet := sys.OpenSpreadsheet(sys.ContactsSpreadsheet())
	grid := sheet.Doc().Grid()
	csel, err := sheet.CopyRange(1, 0, 2, len(grid[0])-1)
	if err != nil {
		log.Fatal(err)
	}
	ws.SelectTab("Contacts")
	ws.SetMode(copycat.ModeImport)
	if err := ws.Paste(csel); err != nil {
		log.Fatal(err)
	}
	if err := ws.AcceptRows(); err != nil {
		log.Fatal(err)
	}
	for i, c := range ws.ActiveTab().Schema {
		switch c.Name {
		case "Organization":
			ws.SetColumnType(i, "PR-OrgName")
		case "Contact":
			ws.SetColumnType(i, "PR-PersonName")
		}
	}
	fmt.Printf("imported %d contacts from the spreadsheet\n\n", len(ws.ActiveTab().ConcreteRows()))

	// --- Integration: zip, geocode, record-link ------------------------
	ws.SelectTab("Sheet1")
	ws.SetMode(copycat.ModeIntegration)
	for _, target := range []string{"Zipcode Resolver", "Geocoder", "Contacts"} {
		accepted := false
		for i, c := range ws.RefreshColumnSuggestions() {
			if c.Target == target {
				if err := ws.AcceptColumn(i); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("accepted completion: +%s via %s\n", colNames(c.NewCols), target)
				accepted = true
				break
			}
		}
		if !accepted {
			fmt.Printf("no completion to %s proposed\n", target)
		}
	}

	// --- Explanation and export ----------------------------------------
	expl, err := ws.ExplainRow(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntuple explanation for row 0:")
	fmt.Print(expl)

	rel := ws.ActiveTab().Relation()
	kml, err := copycat.KML(rel)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("shelters.kml", []byte(kml), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal table %d×%d → shelters.kml (%d placemarks)\n",
		rel.Len(), len(rel.Schema), strings.Count(kml, "<Placemark>"))
	fmt.Printf("session effort: %s\n", ws.Keys)
}

func colNames(cols []table.Column) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}
