// Relief report: the county wants a per-city readiness report — shelter
// counts, total supply quantities, and a display label — built from two
// web sources with no common key except the city name. Exercises the
// §5 extension features on top of the SCP core: aggregation
// (Workspace.Summarize), transform-by-example
// (DiscoverTransform/ApplyTransform), and session persistence.
//
//	go run ./examples/reliefreport
package main

import (
	"fmt"
	"log"
	"strings"

	"copycat"
)

func main() {
	sys := copycat.NewDemoSystem(copycat.DefaultWorldConfig())
	ws := sys.Workspace
	w := sys.World

	// --- Import the shelters table from the TV site ---------------------
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		log.Fatal(err)
	}
	must(ws.Paste(sel))
	must(ws.AcceptRows())
	fmt.Printf("imported %d shelters\n", len(ws.ActiveTab().ConcreteRows()))

	// --- Aggregate: shelters per city -----------------------------------
	shelterCounts, err := ws.Summarize([]string{"City"}, "count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shelter counts: %d cities\n", len(shelterCounts.Rows))

	// --- Import the county supplies page into its own tab ---------------
	supplies := sys.OpenBrowser(w.SuppliesPage())
	d0, d1 := w.Supplies[0], w.Supplies[1]
	ssel, err := supplies.CopyRows([][]string{
		{d0.Depot, d0.City, d0.Item, fmt.Sprint(d0.Quantity)},
		{d1.Depot, d1.City, d1.Item, fmt.Sprint(d1.Quantity)},
	})
	if err != nil {
		log.Fatal(err)
	}
	ws.SelectTab("Supplies")
	ws.SetMode(copycat.ModeImport)
	must(ws.Paste(ssel))
	must(ws.AcceptRows())
	fmt.Printf("imported %d supply records\n", len(ws.ActiveTab().ConcreteRows()))

	// --- Aggregate: total supply quantity per city ----------------------
	qtyCol := ""
	for _, c := range ws.ActiveTab().Schema {
		if strings.Contains(strings.ToLower(c.Name), "qty") || strings.Contains(strings.ToLower(c.Name), "quantity") {
			qtyCol = c.Name
		}
	}
	if qtyCol == "" {
		qtyCol = ws.ActiveTab().Schema[3].Name
	}
	supplyTotals, err := ws.Summarize([]string{"City"}, "sum("+qtyCol+")", "count")
	if err != nil {
		log.Fatal(err)
	}

	// --- Transform by example: a report label ---------------------------
	// The user types the desired label for the first row; CopyCat finds
	// the function and fills the rest.
	first := supplyTotals.Rows[0].Cells
	example := strings.ToUpper(first[0].Str())
	cands := ws.DiscoverTransform(map[int]string{0: example})
	if len(cands) == 0 {
		log.Fatal("no transform found")
	}
	fmt.Printf("discovered transform: %s\n", cands[0].Desc)
	must(ws.ApplyTransform(cands[0], "LABEL"))

	// --- The report ------------------------------------------------------
	fmt.Println("\nPer-city relief readiness report:")
	fmt.Print(ws.Render())

	// Provenance survives aggregation: each summary row explains itself
	// in terms of the supply records behind it.
	expl, err := ws.ExplainRow(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhy the first report row:")
	fmt.Print(expl)

	// --- Save the session so the report sources can be refreshed --------
	data, err := sys.SaveSession()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession snapshot: %d bytes of JSON (relations + types + learned costs)\n", len(data))
	fmt.Printf("total effort: %s\n", ws.Keys)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
