// Quickstart: the smallest useful CopyCat session.
//
// A user copies two shelters from a web page into the workspace; CopyCat
// generalizes the paste into a full extraction (row auto-completion),
// types the columns, and — after a mode switch — suggests a Zip column
// computed by a zip-resolution service, explained by provenance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"copycat"
)

func main() {
	// A demo system ships with builtin services and pre-trained semantic
	// types over a deterministic synthetic world.
	sys := copycat.NewDemoSystem(copycat.DefaultWorldConfig())
	ws := sys.Workspace

	// 1. Copy two shelters in the browser, paste into the workspace.
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ws.Paste(sel); err != nil {
		log.Fatal(err)
	}

	// 2. CopyCat generalizes: the rest of the page is suggested.
	info := ws.RowSuggestions()
	fmt.Printf("pasted 2 rows; CopyCat suggests %d more (%s)\n", info.Count, info.Description)
	for i, c := range ws.ActiveTab().Schema {
		if ts, ok := ws.RecognizedTypeFor(i); ok {
			fmt.Printf("  column %q → %s\n", c.Name, ts.Type)
		}
	}

	// 3. Accept the suggestion; the import is committed to the catalog.
	if err := ws.AcceptRows(); err != nil {
		log.Fatal(err)
	}

	// 4. Integration mode: accept the suggested Zip column.
	ws.SetMode(copycat.ModeIntegration)
	for i, c := range ws.RefreshColumnSuggestions() {
		if c.Target == "Zipcode Resolver" {
			if err := ws.AcceptColumn(i); err != nil {
				log.Fatal(err)
			}
			break
		}
	}

	// 5. Inspect the result and its provenance.
	fmt.Println()
	fmt.Print(head(ws.Render(), 6))
	expl, err := ws.ExplainRow(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhy is the first row there?")
	fmt.Print(expl)
	fmt.Printf("\ntotal user effort: %s\n", ws.Keys)
}

func head(s string, n int) string {
	out, lines := "", 0
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			lines++
			if lines >= n {
				return out + "...\n"
			}
		}
	}
	return out
}
