// Command expolint validates a Prometheus/OpenMetrics text exposition
// body read from stdin (or a file argument): every sample must belong
// to a family with a declared # TYPE, no series may repeat, histogram
// child suffixes must match their family's type, and every value must
// parse. The CI smoke job pipes the live /metrics body through it.
//
//	curl -s localhost:9464/metrics | expolint
//	expolint metrics.txt
package main

import (
	"fmt"
	"io"
	"os"

	"copycat/internal/obs/serve"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "expolint: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	if err := serve.Lint(in); err != nil {
		fmt.Fprintf(os.Stderr, "expolint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Println("expolint: ok")
}
