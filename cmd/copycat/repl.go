package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"copycat"
	"copycat/internal/docmodel"
	"copycat/internal/wrappers"
)

// repl drives a CopyCat session interactively: the stand-in for clicking
// around the Swing GUI. Commands arrive one per line (pipe a script or
// type at the prompt); `help` lists them.
func repl(seed int64, in io.Reader, out io.Writer) error {
	cfg := copycat.DefaultWorldConfig()
	cfg.Seed = seed
	sys := copycat.NewDemoSystem(cfg)
	ws := sys.Workspace

	makeSites := func(s *copycat.System) map[string]*docmodel.Site {
		return map[string]*docmodel.Site{
			"shelters":         s.ShelterSite(copycat.StyleTable),
			"shelters-grouped": s.ShelterSite(copycat.StyleGrouped),
			"shelters-prose":   s.ShelterSite(copycat.StyleProse),
			"supplies":         s.World.SuppliesPage(),
			"roads":            s.World.RoadsPage(),
		}
	}
	sites := makeSites(sys)
	var browser *wrappers.Browser
	sheet := sys.OpenSpreadsheet(sys.ContactsSpreadsheet())

	// Multi-session hosting state for :session. The host is created
	// lazily on the first `:session new`; until then the REPL drives the
	// initial standalone system ("local"), which is never evicted.
	// rebind points every wrapper handle — workspace, sites, browser,
	// spreadsheet — at the target system, unpinning the previous hosted
	// session so the evictor may reclaim it.
	var host *copycat.Host
	hosted := false
	storeDir := "" // :session store <dir>: durable snapshot tier for the lazily built host
	rebind := func(ns *copycat.System) {
		if hosted {
			sys.Release()
		}
		sys = ns
		ws = sys.Workspace
		sites = makeSites(sys)
		browser = nil
		sheet = sys.OpenSpreadsheet(sys.ContactsSpreadsheet())
	}
	defer func() {
		if hosted {
			sys.Release()
		}
		// A durable host checkpoints its resident fleet on the way out,
		// so a later REPL over the same store dir can attach everything.
		if host != nil && storeDir != "" {
			if n, err := host.Manager.Checkpoint(); err != nil {
				fmt.Fprintf(out, "checkpoint: %v\n", err)
			} else if n > 0 {
				fmt.Fprintf(out, "checkpointed %d sessions to %s\n", n, storeDir)
			}
		}
	}()

	// Telemetry server state for :serve. stopServe cancels the server's
	// context and waits for the drain; it is idempotent and also runs on
	// quit so the listener never outlives the session.
	var telem *copycat.TelemetryServer
	var telemStop func()
	stopServe := func() {
		if telemStop != nil {
			telemStop()
		}
		telem, telemStop = nil, nil
	}
	defer stopServe()

	fmt.Fprintln(out, "CopyCat interactive session — type `help` for commands, `quit` to exit.")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	prompt := func() { fmt.Fprintf(out, "copycat[%s]> ", ws.Mode()) }
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			prompt()
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		var err error
		switch cmd {
		case "quit", "exit":
			fmt.Fprintln(out, "bye")
			return nil
		case "help", ":help":
			printHelp(out)
		case "sites":
			names := make([]string, 0, len(sites))
			for n := range sites {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(out, "  %-18s %s\n", n, sites[n].Root)
			}
			fmt.Fprintln(out, "  contacts           (spreadsheet)")
		case "open":
			if len(args) != 1 {
				err = fmt.Errorf("usage: open <site>")
				break
			}
			site, ok := sites[args[0]]
			if !ok {
				err = fmt.Errorf("unknown site %q (try `sites`)", args[0])
				break
			}
			browser = sys.OpenBrowser(site)
			fmt.Fprintf(out, "opened %s\n", site.Root)
		case "page":
			if browser == nil {
				err = fmt.Errorf("no site open")
				break
			}
			fmt.Fprintln(out, renderPage(browser.Current()))
		case "copy":
			// copy <v1> | <v2> | ... — one row from the current page.
			if browser == nil {
				err = fmt.Errorf("no site open (use `open`)")
				break
			}
			values := splitPipe(strings.TrimPrefix(line, "copy "))
			if len(values) == 0 {
				err = fmt.Errorf("usage: copy <cell> | <cell> | ...")
				break
			}
			if _, err = browser.CopyText(values...); err == nil {
				fmt.Fprintf(out, "copied %d cell(s)\n", len(values))
			}
		case "copysheet":
			// copysheet <r0> <c0> <r1> <c1> — a range from the contacts sheet.
			if len(args) != 4 {
				err = fmt.Errorf("usage: copysheet r0 c0 r1 c1")
				break
			}
			var nums [4]int
			for i, a := range args {
				if nums[i], err = strconv.Atoi(a); err != nil {
					break
				}
			}
			if err == nil {
				if _, err = sheet.CopyRange(nums[0], nums[1], nums[2], nums[3]); err == nil {
					fmt.Fprintln(out, "copied spreadsheet range")
				}
			}
		case "paste":
			sel, ok := ws.Clip.Current()
			if !ok {
				err = fmt.Errorf("clipboard empty")
				break
			}
			if err = ws.Paste(sel); err == nil {
				info := ws.RowSuggestions()
				fmt.Fprintf(out, "pasted; %d suggested rows (%s)\n", info.Count, info.Description)
			}
		case "show":
			fmt.Fprint(out, ws.Render())
		case "accept":
			if err = ws.AcceptRows(); err == nil {
				fmt.Fprintf(out, "accepted; tab committed as source %q\n", ws.ActiveTab().SourceNode)
			}
		case "reject":
			if err = ws.RejectRows(); err == nil {
				info := ws.RowSuggestions()
				fmt.Fprintf(out, "next hypothesis: %d rows (%s)\n", info.Count, info.Description)
			}
		case "extend":
			fmt.Fprintf(out, "unified %d extra pages\n", ws.ExtendAcrossSite())
		case "mode":
			if len(args) != 1 {
				err = fmt.Errorf("usage: mode import|integration|cleaning")
				break
			}
			switch args[0] {
			case "import":
				ws.SetMode(copycat.ModeImport)
			case "integration":
				ws.SetMode(copycat.ModeIntegration)
			case "cleaning":
				ws.SetMode(copycat.ModeCleaning)
			default:
				err = fmt.Errorf("unknown mode %q", args[0])
			}
		case "cols":
			comps := ws.RefreshColumnSuggestions()
			if len(comps) == 0 {
				fmt.Fprintln(out, "no column completions (is the tab committed?)")
			}
			for i, c := range comps {
				note := ""
				if p := c.PartialNote(); p != "" {
					note = ", " + p
				}
				fmt.Fprintf(out, "  [%d] %s (cost %.2f, %d rows%s)\n", i, c.Edge.Label(), c.Cost, len(c.Result.Rows), note)
			}
			for _, d := range ws.SuggestionDrops() {
				fmt.Fprintf(out, "  dropped %s: %s\n", d.Target, d.Reason)
			}
		case "acceptcol":
			err = withIndex(args, func(i int) error { return ws.AcceptColumn(i) })
			if err == nil {
				fmt.Fprintln(out, "column accepted")
			}
		case "rejectcol":
			err = withIndex(args, func(i int) error { return ws.RejectColumn(i) })
		case "explain":
			err = withIndex(args, func(i int) error {
				s, e := ws.ExplainRow(i)
				if e == nil {
					fmt.Fprint(out, s)
				}
				return e
			})
		case "types":
			for i, c := range ws.ActiveTab().Schema {
				if ts, ok := ws.RecognizedTypeFor(i); ok {
					fmt.Fprintf(out, "  %s: %s (%.2f)\n", c.Name, ts.Type, ts.Score)
				} else {
					fmt.Fprintf(out, "  %s: (untyped)\n", c.Name)
				}
			}
		case "rename":
			if len(args) < 2 {
				err = fmt.Errorf("usage: rename <colIdx> <name>")
				break
			}
			var i int
			if i, err = strconv.Atoi(args[0]); err == nil {
				err = ws.RenameColumn(i, strings.Join(args[1:], " "))
			}
		case "tab":
			if len(args) != 1 {
				err = fmt.Errorf("usage: tab <name>")
				break
			}
			ws.SelectTab(args[0])
		case "tabs":
			for _, t := range ws.Tabs() {
				marker := " "
				if t == ws.ActiveTab() {
					marker = "*"
				}
				fmt.Fprintf(out, " %s %s (%d rows)\n", marker, t.Name, len(t.Rows))
			}
		case "summarize":
			if len(args) < 2 {
				err = fmt.Errorf("usage: summarize <groupCol> <agg> [agg...]")
				break
			}
			if _, err = ws.Summarize([]string{args[0]}, args[1:]...); err == nil {
				fmt.Fprint(out, ws.Render())
			}
		case "undo":
			if err = ws.Undo(); err == nil {
				fmt.Fprintln(out, "undone")
			}
		case "export":
			err = doExport(ws, args, out)
		case "save":
			if len(args) != 1 {
				err = fmt.Errorf("usage: save <file>")
				break
			}
			var data []byte
			if data, err = sys.SaveSession(); err == nil {
				err = os.WriteFile(args[0], data, 0o644)
			}
			if err == nil {
				fmt.Fprintf(out, "session saved to %s\n", args[0])
			}
		case "load":
			if len(args) != 1 {
				err = fmt.Errorf("usage: load <file>")
				break
			}
			var data []byte
			if data, err = os.ReadFile(args[0]); err == nil {
				err = sys.LoadSession(data)
			}
			if err == nil {
				fmt.Fprintf(out, "session restored; catalog has %d sources\n", sys.Catalog.Len())
			}
		case "effort":
			fmt.Fprintln(out, ws.Keys)
		case ":metrics", "metrics":
			fmt.Fprint(out, copycat.RenderMetrics(sys.Metrics()))
		case ":cache", "cache":
			fmt.Fprint(out, ws.CacheInfo())
		case ":trace", "trace":
			// :trace on | :trace off | :trace save <file>
			switch {
			case len(args) == 1 && args[0] == "on":
				sys.EnableTracing()
				fmt.Fprintln(out, "tracing on — spans record until :trace off or :trace save")
			case len(args) == 1 && args[0] == "off":
				sys.DisableTracing()
				fmt.Fprintln(out, "tracing off; trace discarded")
			case len(args) == 2 && args[0] == "save":
				if !sys.Tracing() {
					err = fmt.Errorf("tracing is off (use `:trace on` first)")
					break
				}
				var f *os.File
				if f, err = os.Create(args[1]); err == nil {
					err = sys.TraceTo(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err == nil {
					fmt.Fprintf(out, "trace written to %s (load in chrome://tracing)\n", args[1])
				}
			default:
				err = fmt.Errorf("usage: :trace on|off|save <file>")
			}
		case ":slo", "slo":
			fmt.Fprint(out, copycat.RenderSLO(sys.SLO()))
		case ":quality", "quality":
			fmt.Fprint(out, copycat.RenderQuality(sys.Quality()))
		case ":serve", "serve":
			// :serve <addr> | :serve off | :serve (status)
			switch {
			case len(args) == 1 && args[0] == "off":
				if telem == nil {
					err = fmt.Errorf("telemetry server not running")
					break
				}
				stopServe()
				fmt.Fprintln(out, "telemetry server stopped")
			case len(args) == 1:
				if telem != nil {
					err = fmt.Errorf("already serving on %s (use `:serve off` first)", telem.Addr())
					break
				}
				ctx, cancel := context.WithCancel(context.Background())
				if telem, err = sys.Serve(ctx, args[0]); err != nil {
					cancel()
					telem = nil
					break
				}
				srv := telem
				telemStop = func() { cancel(); srv.Wait() }
				fmt.Fprintf(out, "telemetry server on http://%s — /metrics /healthz /readyz /slo /trace/stream /decisions /debug/pprof\n", telem.Addr())
			case len(args) == 0 && telem != nil:
				fmt.Fprintf(out, "serving on http://%s\n", telem.Addr())
			default:
				err = fmt.Errorf("usage: :serve <addr> | :serve off")
			}
		case ":session", "session":
			// :session | :session new [tenant] | :session attach <id> |
			// :session list | :session evict <id> | :session store <dir>
			switch {
			case len(args) == 0:
				if hosted {
					fmt.Fprintf(out, "session %s (tenant %s, hosted)\n", sys.Session.ID(), sys.Session.Tenant())
				} else {
					fmt.Fprintln(out, "session local (standalone)")
				}
			case args[0] == "store" && len(args) == 2:
				// Must land before the host exists: the store is wired in
				// when the first `:session new` builds the manager.
				if host != nil {
					err = fmt.Errorf("host already running; :session store must come before the first :session new")
					break
				}
				storeDir = args[1]
				fmt.Fprintf(out, "session store set to %s — the host will persist snapshots there\n", storeDir)
			case args[0] == "new" && len(args) <= 2:
				if host == nil {
					if storeDir != "" {
						if host, err = copycat.NewDurableDemoHost(cfg, copycat.SessionConfig{}, storeDir); err != nil {
							break
						}
						if recovered := host.Manager.Stats().Recovered; recovered > 0 {
							fmt.Fprintf(out, "recovered %d sessions from %s (attach by id)\n", recovered, storeDir)
						}
					} else {
						host = copycat.NewDemoHost(cfg, copycat.SessionConfig{})
					}
				}
				tenant := "default"
				if len(args) == 2 {
					tenant = args[1]
				}
				var ns *copycat.System
				if ns, err = host.Create(tenant); err != nil {
					break
				}
				rebind(ns)
				hosted = true
				fmt.Fprintf(out, "session %s created (tenant %s) — workspace switched\n", sys.Session.ID(), tenant)
			case args[0] == "attach" && len(args) == 2:
				if host == nil {
					err = fmt.Errorf("no hosted sessions yet (use `:session new`)")
					break
				}
				var ns *copycat.System
				if ns, err = host.Attach(args[1]); err != nil {
					break
				}
				rebind(ns)
				hosted = true
				fmt.Fprintf(out, "attached to session %s — workspace switched\n", sys.Session.ID())
			case args[0] == "list":
				if host == nil {
					fmt.Fprintln(out, "  local (standalone); no hosted sessions yet")
					break
				}
				for _, info := range host.Manager.List() {
					marker := " "
					if hosted && info.ID == sys.Session.ID() {
						marker = "*"
					}
					fmt.Fprintf(out, " %s %s\n", marker, info)
				}
				st := host.Manager.Stats()
				fmt.Fprintf(out, "  resident %d/%d (%dB); evictions=%d reloads=%d shed=%d\n",
					st.Resident, st.Sessions, st.ResidentBytes, st.Evictions, st.Reloads, st.Rejected)
			case args[0] == "evict" && len(args) == 2:
				if host == nil {
					err = fmt.Errorf("no hosted sessions yet (use `:session new`)")
					break
				}
				if err = host.Manager.Evict(args[1]); err == nil {
					fmt.Fprintf(out, "session %s evicted to its snapshot\n", args[1])
				}
			default:
				err = fmt.Errorf("usage: :session [new [tenant] | attach <id> | list | evict <id> | store <dir>]")
			}
		case ":incidents", "incidents":
			// :incidents | :incidents <id>
			rec := sys.FlightRecorder()
			switch {
			case len(args) == 0:
				list := rec.Incidents()
				if len(list) == 0 {
					fmt.Fprintln(out, "no incidents captured (flight recorder is armed)")
					break
				}
				for _, s := range list {
					fmt.Fprintf(out, "  %s  %-18s  %s\n", s.ID, s.Trigger, s.Reason)
				}
				fmt.Fprintln(out, "use `:incidents <id>` for the post-mortem timeline")
			case len(args) == 1:
				inc, ok := rec.Incident(args[0])
				if !ok {
					err = fmt.Errorf("unknown incident %q (try `:incidents`)", args[0])
					break
				}
				fmt.Fprint(out, copycat.RenderIncident(inc))
			default:
				err = fmt.Errorf("usage: :incidents [id]")
			}
		case ":why", "why":
			needle := strings.Join(args, " ")
			lines := sys.Why(needle)
			if len(lines) == 0 {
				fmt.Fprintln(out, "no decisions recorded for that candidate")
			}
			for _, l := range lines {
				fmt.Fprintf(out, "  %s\n", l)
			}
		default:
			err = fmt.Errorf("unknown command %q (try `help`)", cmd)
		}
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
		prompt()
	}
	return scanner.Err()
}

func withIndex(args []string, fn func(int) error) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: <command> <index>")
	}
	i, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	return fn(i)
}

func splitPipe(s string) []string {
	var out []string
	for _, part := range strings.Split(s, "|") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func doExport(ws *copycat.Workspace, args []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: export kml|geojson|xml|csv <file>")
	}
	rel := ws.ActiveTab().Relation()
	var data string
	var err error
	switch args[0] {
	case "kml":
		data, err = copycat.KML(rel)
	case "geojson":
		data, err = copycat.GeoJSON(rel)
	case "xml":
		data = copycat.XML(rel)
	case "csv":
		data = copycat.CSV(rel)
	default:
		return fmt.Errorf("unknown format %q", args[0])
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(args[1], []byte(data), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d bytes to %s\n", len(data), args[1])
	return nil
}

func renderPage(d *docmodel.Document) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", d.URL, d.Title)
	for i, ch := range d.Chunks() {
		if i >= 25 {
			b.WriteString("  ...\n")
			break
		}
		fmt.Fprintf(&b, "  %s\n", ch.Text)
	}
	return b.String()
}

func printHelp(out io.Writer) {
	fmt.Fprint(out, `commands:
  sites                      list browsable sites
  open <site>                open a site in the browser
  page                       show the current page's text
  copy <v1> | <v2> | ...     copy cells from the current page
  copysheet r0 c0 r1 c1      copy a range from the contacts spreadsheet
  paste                      paste the clipboard into the active tab
  show                       render the workspace grid
  accept / reject            accept or reject the row suggestions
  extend                     generalize across the site's other pages
  mode <m>                   import | integration | cleaning
  cols                       list column auto-completions
  acceptcol/rejectcol <i>    act on a column completion
  explain <row>              tuple explanation (provenance)
  types                      recognized semantic types per column
  rename <col> <name>        set a column header
  tab <name> / tabs          switch or list tabs
  summarize <col> <agg>...   group-by aggregate into a summary tab
  undo                       undo the last mutating action
  export <fmt> <file>        kml | geojson | xml | csv
  save <file>                save the session as JSON
  load <file>                restore a saved session
  effort                     keystroke ledger
  :metrics                   unified metrics (counters, cache gauges, stage latencies)
  :cache                     plan-result cache state (entries, hit rate, reuse counters)
  :trace on|off|save <file>  record pipeline spans; save as Chrome trace JSON
  :why [candidate]           decision log: why candidates were pruned/suggested/rejected
  :serve <addr>|off          live telemetry server (/metrics /healthz /trace/stream ...)
  :slo                       suggestion-refresh latency objective: burn rates and alerts
  :quality                   live suggestion quality: acceptance rate, rank of accepted, rounds to accept
  :incidents [id]            flight-recorder incidents: list bundles or render one post-mortem timeline
  :session [sub]             multi-tenant session hosting: new [tenant] | attach <id> | list | evict <id> | store <dir>
  quit
`)
}
