package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drive runs a scripted REPL session and returns its transcript.
func drive(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(42, strings.NewReader(script), &out); err != nil {
		t.Fatalf("repl: %v\n%s", err, out.String())
	}
	return out.String()
}

func TestReplFullSession(t *testing.T) {
	dir := t.TempDir()
	kml := filepath.Join(dir, "out.kml")
	sess := filepath.Join(dir, "session.json")
	script := strings.Join([]string{
		"help",
		"sites",
		"open shelters",
		"page",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"accept",
		"mode integration",
		"cols",
		"acceptcol 0", // geocoder
		"explain 0",
		"export kml " + kml,
		"save " + sess,
		"summarize City count",
		"tabs",
		"effort",
		"quit",
	}, "\n")
	out := drive(t, script)
	for _, want := range []string{
		"suggested rows",
		"tab committed as source",
		"Geocoder",
		"joined from",
		"wrote",
		"session saved",
		"Summary of Sheet1",
		"keystrokes=",
		"bye",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	if data, err := os.ReadFile(kml); err != nil || !strings.Contains(string(data), "<Placemark>") {
		t.Errorf("kml export bad: %v", err)
	}
	if data, err := os.ReadFile(sess); err != nil || !strings.Contains(string(data), "Sheet1") {
		t.Errorf("session save bad: %v", err)
	}
}

func TestReplErrorsAreReportedNotFatal(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"bogus-command",
		"open nope",
		"paste",
		"copy x",
		"acceptcol 0",
		"mode warp",
		"explain abc",
		"undo",
		"export pdf /tmp/x",
		"quit",
	}, "\n"))
	if n := strings.Count(out, "error:"); n < 8 {
		t.Errorf("want ≥8 reported errors, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "bye") {
		t.Error("session should survive to quit")
	}
}

func TestReplRejectAndUndo(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"open shelters-grouped",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"reject",
		"undo",
		"show",
		"quit",
	}, "\n"))
	if !strings.Contains(out, "next hypothesis") {
		t.Errorf("reject should advance hypotheses:\n%s", out)
	}
	if !strings.Contains(out, "undone") {
		t.Error("undo should work")
	}
}

func TestReplSpreadsheetFlow(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"copysheet 1 0 2 5",
		"tab Contacts",
		"paste",
		"accept",
		"show",
		"quit",
	}, "\n"))
	if !strings.Contains(out, "copied spreadsheet range") {
		t.Errorf("spreadsheet copy failed:\n%s", out)
	}
	if !strings.Contains(out, "tab committed as source \"Contacts\"") {
		t.Errorf("contacts import failed:\n%s", out)
	}
}

func TestReplSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sess := filepath.Join(dir, "s.json")
	// Session 1: import and save.
	drive(t, strings.Join([]string{
		"open shelters",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste", "accept",
		"save " + sess,
		"quit",
	}, "\n"))
	// Session 2: load and verify the source is back.
	out := drive(t, strings.Join([]string{
		"load " + sess,
		"quit",
	}, "\n"))
	if !strings.Contains(out, "session restored") {
		t.Errorf("load failed:\n%s", out)
	}
	// Missing file reports an error, not a crash.
	out = drive(t, "load /nonexistent/file.json\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Error("missing file should report an error")
	}
}

// TestReplHelpListsObservabilityCommands is the golden check on the
// help screen: every observability command must appear with a one-line
// description, so the surface stays discoverable as commands are added.
func TestReplHelpListsObservabilityCommands(t *testing.T) {
	out := drive(t, "help\nquit\n")
	for cmd, blurb := range map[string]string{
		":metrics":   "unified metrics",
		":cache":     "plan-result cache state",
		":trace":     "record pipeline spans",
		":why":       "decision log",
		":serve":     "live telemetry server",
		":slo":       "latency objective",
		":quality":   "live suggestion quality",
		":session":   "multi-tenant session hosting",
		":incidents": "flight-recorder incidents",
	} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			fields := strings.Fields(line)
			if len(fields) > 1 && strings.HasPrefix(fields[0], cmd) && strings.Contains(line, blurb) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("help is missing %q with description %q:\n%s", cmd, blurb, out)
		}
	}
	// ":help" is an accepted alias.
	if alias := drive(t, ":help\nquit\n"); !strings.Contains(alias, ":slo") {
		t.Error(":help alias should print the same screen")
	}
}

// TestReplSessionCommands walks the :session lifecycle: create two
// hosted sessions (importing into the first), list with the active
// marker, evict the idle one, fail to evict the pinned one, and attach
// back to the first with its workspace intact.
func TestReplSessionCommands(t *testing.T) {
	out := drive(t, strings.Join([]string{
		":session",
		":session list",
		":session new alice",
		"open shelters",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"accept",
		":session new bob",
		":session list",
		":session evict s000001",
		":session attach s000001",
		":session",
		":session evict s000001", // pinned by this REPL: ErrBusy, not a crash
		":session attach nope",
		"tabs",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"session local (standalone)",
		"no hosted sessions yet",
		"session s000001 created (tenant alice)",
		"tab committed as source",
		"session s000002 created (tenant bob)",
		"* s000002",
		"session s000001 evicted to its snapshot",
		"attached to session s000001 — workspace switched",
		"session s000001 (tenant alice, hosted)",
		"Sheet1 (30 rows)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "error:"); n < 2 {
		t.Errorf("pinned evict and bad attach should both report errors, got %d:\n%s", n, out)
	}
}

// TestReplDurableSessionStore walks the durable-host story across two
// REPL processes: the first sets a store dir, hosts two sessions, and
// checkpoints them on quit; the second, pointed at the same dir,
// recovers both and attaches one with its workspace intact.
func TestReplDurableSessionStore(t *testing.T) {
	dir := t.TempDir()
	out := drive(t, strings.Join([]string{
		":session store " + dir,
		":session new alice",
		"open shelters",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"accept",
		":session new bob",
		":session evict s000001",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"session store set to " + dir,
		"session s000001 created (tenant alice)",
		"tab committed as source",
		"session s000001 evicted to its snapshot",
		"checkpointed 1 sessions to " + dir, // bob; alice is already on disk
	} {
		if !strings.Contains(out, want) {
			t.Errorf("first transcript missing %q:\n%s", want, out)
		}
	}

	// Second REPL over the same directory: both sessions recover.
	out = drive(t, strings.Join([]string{
		":session store " + dir,
		":session new carol",
		":session attach s000001",
		"tabs",
		":session store " + dir, // too late: host already running
		"quit",
	}, "\n"))
	for _, want := range []string{
		"recovered 2 sessions from " + dir,
		"session s000003 created (tenant carol)",
		"attached to session s000001 — workspace switched",
		"Sheet1 (30 rows)",
		"error:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("second transcript missing %q:\n%s", want, out)
		}
	}
}

func TestReplServeAndSLOCommands(t *testing.T) {
	out := drive(t, strings.Join([]string{
		":slo",
		":serve 127.0.0.1:0",
		":serve",
		":serve 127.0.0.1:0", // double start is an error, not a crash
		":serve off",
		":serve off", // stop when stopped is an error, not a crash
		"quit",
	}, "\n"))
	for _, want := range []string{
		"objective: 99.00% of suggest.refresh under 25ms",
		"burn=",
		"telemetry server on http://127.0.0.1:",
		"serving on http://127.0.0.1:",
		"already serving",
		"telemetry server stopped",
		"not running",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	// A server left running is shut down when the session ends.
	out = drive(t, ":serve 127.0.0.1:0\nquit\n")
	if !strings.Contains(out, "telemetry server on") {
		t.Errorf("serve failed:\n%s", out)
	}
}

// TestReplQualityCommand is the golden check on :quality — a session
// that accepts a row completion, rejects one column suggestion and
// accepts another must show up in the live quality report with the
// right per-surface counts, and undoing the column accept must land in
// the accepts-undone line.
func TestReplQualityCommand(t *testing.T) {
	out := drive(t, strings.Join([]string{
		":quality", // empty report up front, not an error
		"open shelters",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"accept", // rows surface: 1 accept
		"mode integration",
		"cols",
		"rejectcol 0", // columns surface: 1 reject
		"acceptcol 0", // columns surface: 1 accept
		":quality",
		"undo", // reverses the column accept
		":quality",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"suggestion quality: 0 accepts / 0 rejects (acceptance rate 0.000)",
		"suggestion quality: 2 accepts / 1 rejects",
		"columns 1/1",
		"rows 1/0",
		"rank of accepted",
		"rounds to accept",
		"accepts undone         1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestReplObservabilityCommands(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	out := drive(t, strings.Join([]string{
		":trace on",
		"open shelters",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"accept",
		"mode integration",
		"cols",
		"rejectcol 0",
		":metrics",
		":why",
		":why Geocoder",
		":trace save " + trace,
		":trace off",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"tracing on",
		"engine.service_calls",
		"cache.hit_rate",
		"latency.suggest.refresh",
		"suggested (rank",
		"rejected",
		"Geocoder",
		"trace written to " + trace,
		"tracing off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil || !strings.Contains(string(data), "traceEvents") {
		t.Errorf("trace file bad: %v", err)
	}
	// Saving without tracing reports an error instead of writing garbage.
	out = drive(t, ":trace save "+filepath.Join(dir, "no.json")+"\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("save without tracing should report an error:\n%s", out)
	}
}

// TestReplIncidentsCommand covers the :incidents surface on a healthy
// session: the empty list states the recorder is armed, an unknown id
// is an error, and extra arguments report usage instead of crashing.
func TestReplIncidentsCommand(t *testing.T) {
	out := drive(t, strings.Join([]string{
		":incidents",
		":incidents inc-000001-breaker-open",
		":incidents a b",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"no incidents captured (flight recorder is armed)",
		"unknown incident",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "error:"); n < 2 {
		t.Errorf("unknown id and bad usage should both report errors, got %d:\n%s", n, out)
	}
}
