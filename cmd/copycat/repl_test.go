package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drive runs a scripted REPL session and returns its transcript.
func drive(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(42, strings.NewReader(script), &out); err != nil {
		t.Fatalf("repl: %v\n%s", err, out.String())
	}
	return out.String()
}

func TestReplFullSession(t *testing.T) {
	dir := t.TempDir()
	kml := filepath.Join(dir, "out.kml")
	sess := filepath.Join(dir, "session.json")
	script := strings.Join([]string{
		"help",
		"sites",
		"open shelters",
		"page",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"accept",
		"mode integration",
		"cols",
		"acceptcol 0", // geocoder
		"explain 0",
		"export kml " + kml,
		"save " + sess,
		"summarize City count",
		"tabs",
		"effort",
		"quit",
	}, "\n")
	out := drive(t, script)
	for _, want := range []string{
		"suggested rows",
		"tab committed as source",
		"Geocoder",
		"joined from",
		"wrote",
		"session saved",
		"Summary of Sheet1",
		"keystrokes=",
		"bye",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	if data, err := os.ReadFile(kml); err != nil || !strings.Contains(string(data), "<Placemark>") {
		t.Errorf("kml export bad: %v", err)
	}
	if data, err := os.ReadFile(sess); err != nil || !strings.Contains(string(data), "Sheet1") {
		t.Errorf("session save bad: %v", err)
	}
}

func TestReplErrorsAreReportedNotFatal(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"bogus-command",
		"open nope",
		"paste",
		"copy x",
		"acceptcol 0",
		"mode warp",
		"explain abc",
		"undo",
		"export pdf /tmp/x",
		"quit",
	}, "\n"))
	if n := strings.Count(out, "error:"); n < 8 {
		t.Errorf("want ≥8 reported errors, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "bye") {
		t.Error("session should survive to quit")
	}
}

func TestReplRejectAndUndo(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"open shelters-grouped",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"reject",
		"undo",
		"show",
		"quit",
	}, "\n"))
	if !strings.Contains(out, "next hypothesis") {
		t.Errorf("reject should advance hypotheses:\n%s", out)
	}
	if !strings.Contains(out, "undone") {
		t.Error("undo should work")
	}
}

func TestReplSpreadsheetFlow(t *testing.T) {
	out := drive(t, strings.Join([]string{
		"copysheet 1 0 2 5",
		"tab Contacts",
		"paste",
		"accept",
		"show",
		"quit",
	}, "\n"))
	if !strings.Contains(out, "copied spreadsheet range") {
		t.Errorf("spreadsheet copy failed:\n%s", out)
	}
	if !strings.Contains(out, "tab committed as source \"Contacts\"") {
		t.Errorf("contacts import failed:\n%s", out)
	}
}

func TestReplSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sess := filepath.Join(dir, "s.json")
	// Session 1: import and save.
	drive(t, strings.Join([]string{
		"open shelters",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste", "accept",
		"save " + sess,
		"quit",
	}, "\n"))
	// Session 2: load and verify the source is back.
	out := drive(t, strings.Join([]string{
		"load " + sess,
		"quit",
	}, "\n"))
	if !strings.Contains(out, "session restored") {
		t.Errorf("load failed:\n%s", out)
	}
	// Missing file reports an error, not a crash.
	out = drive(t, "load /nonexistent/file.json\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Error("missing file should report an error")
	}
}

func TestReplObservabilityCommands(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	out := drive(t, strings.Join([]string{
		":trace on",
		"open shelters",
		"copy Sunset Recreation Center | 335 NW Copans Rd | Mangrove Lakes",
		"paste",
		"accept",
		"mode integration",
		"cols",
		"rejectcol 0",
		":metrics",
		":why",
		":why Geocoder",
		":trace save " + trace,
		":trace off",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"tracing on",
		"engine.service_calls",
		"cache.hit_rate",
		"latency.suggest.refresh",
		"suggested (rank",
		"rejected",
		"Geocoder",
		"trace written to " + trace,
		"tracing off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil || !strings.Contains(string(data), "traceEvents") {
		t.Errorf("trace file bad: %v", err)
	}
	// Saving without tracing reports an error instead of writing garbage.
	out = drive(t, ":trace save "+filepath.Join(dir, "no.json")+"\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("save without tracing should report an error:\n%s", out)
	}
}
