package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := r.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestScriptedDemoAllStyles(t *testing.T) {
	for _, style := range []string{"table", "grouped", "paged", "form", "list"} {
		t.Run(style, func(t *testing.T) {
			dir := t.TempDir()
			out, err := captureStdout(t, func() error { return run(style, 42, dir) })
			if err != nil {
				t.Fatalf("demo failed: %v\n%s", err, tail(out))
			}
			for _, want := range []string{
				"Import mode", "Model learner", "column auto-completions",
				"Tuple explanation pane", "Google Maps", "Session effort",
			} {
				if !strings.Contains(out, want) {
					t.Errorf("demo output missing %q", want)
				}
			}
			for _, f := range []string{"shelters.kml", "shelters.geojson", "shelters.xml", "shelters.csv"} {
				if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
					t.Errorf("export %s missing: %v", f, err)
				}
			}
		})
	}
}

func TestScriptedDemoBadStyle(t *testing.T) {
	if err := run("hologram", 42, ""); err == nil {
		t.Error("unknown style should error")
	}
}

func tail(s string) string {
	if len(s) > 800 {
		return "..." + s[len(s)-800:]
	}
	return s
}
