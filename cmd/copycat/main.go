// Command copycat runs the paper's §8 CIDR demonstration end-to-end on
// the synthetic hurricane-relief world, narrating each SCP interaction
// and rendering the workspace as ASCII (the stand-in for the Swing GUI):
//
//	copycat [-style table|list|grouped|paged|form] [-seed N] [-out DIR]
//
// The walkthrough covers: learning extractors from two pasted shelters,
// row auto-completion, semantic type inference, column auto-completion
// through the Zipcode Resolver and Geocoder services, record-linking the
// contacts spreadsheet, tuple explanations via provenance, feedback, and
// export to XML/CSV/GeoJSON/KML.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"copycat"
	"copycat/internal/table"
)

func main() {
	style := flag.String("style", "table", "shelter site style: table, list, grouped, paged, form")
	seed := flag.Int64("seed", 42, "world generation seed")
	out := flag.String("out", "", "directory to write exports into (optional)")
	interactive := flag.Bool("interactive", false, "start an interactive session instead of the scripted demo")
	flag.Parse()
	if *interactive {
		if err := repl(*seed, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "copycat:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*style, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "copycat:", err)
		os.Exit(1)
	}
}

func run(styleName string, seed int64, outDir string) error {
	styles := map[string]copycat.SiteStyle{
		"table": copycat.StyleTable, "list": copycat.StyleList,
		"grouped": copycat.StyleGrouped, "paged": copycat.StylePaged,
		"form": copycat.StyleForm,
	}
	style, ok := styles[styleName]
	if !ok {
		return fmt.Errorf("unknown style %q", styleName)
	}
	cfg := copycat.DefaultWorldConfig()
	cfg.Seed = seed
	sys := copycat.NewDemoSystem(cfg)
	w := sys.World

	section("1. Import mode — pasting two shelters from the TV-news site")
	browser := sys.OpenBrowser(sys.ShelterSite(style))
	if style == copycat.StyleForm {
		if err := browser.SubmitForm(0, w.Cities[0].Name); err != nil {
			return err
		}
		fmt.Printf("  (submitted the city-search form for %s)\n", w.Cities[0].Name)
	}
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return err
	}
	fmt.Printf("  copied %q and %q from %s\n", s0.Name, s1.Name, browser.Current().URL)
	if err := sys.Workspace.Paste(sel); err != nil {
		return err
	}
	if n := sys.Workspace.ExtendAcrossSite(); n > 0 {
		fmt.Printf("  (extractor generalized across %d more pages of the site)\n", n)
	}
	info := sys.Workspace.RowSuggestions()
	fmt.Printf("  CopyCat generalized the paste: %d suggested rows via %s (%d alternative hypotheses)\n",
		info.Count, info.Description, info.Alternatives)
	fmt.Println(indent(sys.Workspace.Render()))

	section("2. Model learner — semantic types for the pasted columns")
	tab := sys.Workspace.ActiveTab()
	for i, c := range tab.Schema {
		if ts, ok := sys.Workspace.RecognizedTypeFor(i); ok {
			fmt.Printf("  column %q typed as %s (score %.2f)\n", c.Name, ts.Type, ts.Score)
		}
	}
	if err := sys.Workspace.RenameColumn(0, "Name"); err != nil {
		return err
	}
	fmt.Println("  user relabels the first column: Name")

	section("3. Accepting the row auto-completion (feedback)")
	if err := sys.Workspace.AcceptRows(); err != nil {
		return err
	}
	fmt.Printf("  import committed: source %q with %d rows added to the catalog\n",
		sys.Workspace.ActiveTab().SourceNode, len(sys.Workspace.ActiveTab().ConcreteRows()))

	section("4. Integration mode — column auto-completions")
	sys.Workspace.SetMode(copycat.ModeIntegration)
	comps := sys.Workspace.RefreshColumnSuggestions()
	for i, c := range comps {
		fmt.Printf("  [%d] +%s via %s (cost %.2f)\n", i, colNames(c.NewCols), c.Edge.Label(), c.Cost)
	}
	zipIdx, geoIdx := -1, -1
	for i, c := range comps {
		switch c.Target {
		case "Zipcode Resolver":
			zipIdx = i
		case "Geocoder":
			geoIdx = i
		}
	}
	if zipIdx < 0 {
		return fmt.Errorf("no zip completion proposed")
	}
	expl, err := sys.Workspace.ExplainCompletion(zipIdx, 1)
	if err != nil {
		return err
	}
	fmt.Println("  tuple explanation for the suggested Zip column:")
	fmt.Println(indent(expl))
	if err := sys.Workspace.AcceptColumn(zipIdx); err != nil {
		return err
	}
	fmt.Println("  accepted: Zip column filled by the Zipcode Resolver dependent join")

	comps = sys.Workspace.RefreshColumnSuggestions()
	geoIdx = -1
	for i, c := range comps {
		if c.Target == "Geocoder" {
			geoIdx = i
		}
	}
	if geoIdx >= 0 {
		if err := sys.Workspace.AcceptColumn(geoIdx); err != nil {
			return err
		}
		fmt.Println("  accepted: Lat/Lon columns filled by the Geocoder")
	}
	fmt.Println(indent(head(sys.Workspace.Render(), 8)))

	section("5. Record linking — attaching the contacts spreadsheet")
	comps = sys.Workspace.RefreshColumnSuggestions()
	linked := false
	for i, c := range comps {
		if c.Target == "Contacts" {
			if err := sys.Workspace.AcceptColumn(i); err != nil {
				return err
			}
			linked = true
			break
		}
	}
	if !linked {
		// The contacts source isn't imported yet — import it first, the
		// way the demo user loads the spreadsheet.
		sheet := sys.OpenSpreadsheet(sys.ContactsSpreadsheet())
		grid := sheet.Doc().Grid()
		sel, err := sheet.CopyRange(1, 0, 2, len(grid[0])-1)
		if err != nil {
			return err
		}
		sys.Workspace.SelectTab("Contacts")
		sys.Workspace.SetMode(copycat.ModeImport)
		if err := sys.Workspace.Paste(sel); err != nil {
			return err
		}
		if err := sys.Workspace.AcceptRows(); err != nil {
			return err
		}
		ct := sys.Workspace.ActiveTab()
		for i, c := range ct.Schema {
			switch c.Name {
			case "Organization":
				sys.Workspace.SetColumnType(i, "PR-OrgName")
			case "Contact":
				sys.Workspace.SetColumnType(i, "PR-PersonName")
			}
		}
		fmt.Printf("  imported spreadsheet source %q (%d rows)\n", ct.SourceNode, len(ct.ConcreteRows()))
		sys.Workspace.SelectTab("Sheet1")
		sys.Workspace.SetColumnType(0, "PR-OrgName")
		sys.Workspace.SetMode(copycat.ModeIntegration)
		comps = sys.Workspace.RefreshColumnSuggestions()
		for i, c := range comps {
			if c.Target == "Contacts" {
				if err := sys.Workspace.AcceptColumn(i); err != nil {
					return err
				}
				linked = true
				break
			}
		}
	}
	if linked {
		fmt.Println("  accepted: contact person linked to each shelter by approximate name matching")
	} else {
		fmt.Println("  (no contact link proposed for this style — continuing)")
	}

	section("6. Tuple explanation pane (provenance)")
	expl, err = sys.Workspace.ExplainRow(0)
	if err != nil {
		return err
	}
	fmt.Println(indent(expl))

	section("7. Export — the Google Maps mashup")
	rel := sys.Workspace.ActiveTab().Relation()
	kml, err := copycat.KML(rel)
	if err != nil {
		return err
	}
	geo, err := copycat.GeoJSON(rel)
	if err != nil {
		return err
	}
	fmt.Printf("  final table: %d rows × %d columns\n", rel.Len(), len(rel.Schema))
	fmt.Printf("  KML: %d placemarks; GeoJSON: %d bytes; XML and CSV also available\n",
		strings.Count(kml, "<Placemark>"), len(geo))
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		files := map[string]string{
			"shelters.kml":     kml,
			"shelters.geojson": geo,
			"shelters.xml":     copycat.XML(rel),
			"shelters.csv":     copycat.CSV(rel),
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(outDir, name), []byte(content), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("  wrote %d export files to %s\n", len(files), outDir)
	}

	section("Session effort")
	fmt.Printf("  %s\n", sys.Workspace.Keys)
	return nil
}

func section(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}

func head(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = append(lines[:n], fmt.Sprintf("... (%d more rows)", len(lines)-n))
	}
	return strings.Join(lines, "\n")
}

func colNames(cols []table.Column) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}
