package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"copycat"
)

// flightReps is how many interleaved detached/attached cold-refresh
// loop pairs the flight-recorder overhead comparison totals over.
const flightReps = 10

// flightReport is the machine-readable result of the flight-recorder
// experiment (O3) — what BENCH_10.json persists and `make bench-check`
// gates on.
type flightReport struct {
	Experiment        string  `json:"experiment"`
	Refreshes         int     `json:"refreshes"`
	Reps              int     `json:"reps"`
	DetachedNs        int64   `json:"detached_ns"`        // total loop time with the recorder detached
	RecordedNs        int64   `json:"recorded_ns"`        // total loop time with the recorder attached
	OverheadFrac      float64 `json:"overhead_frac"`      // (recorded-detached)/detached
	RetainedEvents    int     `json:"retained_events"`    // lifecycle events in the retention window afterwards
	RetainedSpans     int     `json:"retained_spans"`     // spans in the retention window afterwards
	RetainedDecisions int     `json:"retained_decisions"` // decision entries in the retention window afterwards
	Captured          int64   `json:"captured"`           // incidents captured during the run (expected 0)
}

// expFlight is the flight-recorder experiment: on one warmed, traced
// session it compares the cold suggestion-refresh loop with the
// always-on recorder detached against the same loop with the recorder
// attached (observing every span, decision entry, and metric snapshot),
// to bound the "always-on" cost. Honors -json, -bench-out, and
// -overhead-budget; the ISSUE budget is 2%.
func expFlight() error {
	sys, err := pipelineSetup(true) // traced, so spans flow into the recorder
	if err != nil {
		return err
	}
	// Cold refreshes, as in the serve experiment: the plan-cached warm
	// loop is sub-millisecond and scheduler noise swamps any recording
	// cost; recomputing every refresh gives a measurement window the
	// recorder's appends actually land inside.
	sys.Workspace.PlanCache = nil
	rec := sys.FlightRecorder()
	if rec == nil {
		return fmt.Errorf("demo system has no flight recorder")
	}
	if _, err := pipelineLoop(sys); err != nil { // warmup: fill the service cache
		return err
	}

	// Interleave detached and attached loops rep by rep so heap growth
	// and GC cadence hit both arms equally, and compare phase totals
	// rather than best-of (single cold loops swing with GC far more than
	// recording ever costs).
	var detached, recorded time.Duration
	for r := 0; r < flightReps; r++ {
		sys.Workspace.SetFlight(nil) // control arm: recorder detached, every feed no-ops
		d, err := pipelineLoop(sys)
		if err != nil {
			return err
		}
		detached += d
		sys.Workspace.SetFlight(rec)
		d, err = pipelineLoop(sys)
		if err != nil {
			return err
		}
		recorded += d
	}

	events, spans, decisions := rec.Retained()
	if decisions == 0 {
		return fmt.Errorf("recorder retained no decision entries — the attached arm measured nothing")
	}
	if spans == 0 {
		return fmt.Errorf("recorder retained no spans — the attached arm measured nothing")
	}
	report := flightReport{
		Experiment:        "flight",
		Refreshes:         pipelineRefreshes,
		Reps:              flightReps,
		DetachedNs:        detached.Nanoseconds(),
		RecordedNs:        recorded.Nanoseconds(),
		OverheadFrac:      float64(recorded-detached) / float64(detached),
		RetainedEvents:    events,
		RetainedSpans:     spans,
		RetainedDecisions: decisions,
		Captured:          rec.Captured(),
	}

	printTable([]string{"measure", "value"}, [][]string{
		{"suggestion refreshes timed", fmt.Sprint(pipelineRefreshes)},
		{"detached loops (total, interleaved)", detached.String()},
		{"recorded loops (total, interleaved)", recorded.String()},
		{"recording overhead", fmt.Sprintf("%.1f%%", 100*report.OverheadFrac)},
		{"retained (events / spans / decisions)", fmt.Sprintf("%d / %d / %d", events, spans, decisions)},
		{"incidents captured", fmt.Sprint(report.Captured)},
	})

	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbenchmark report written to %s\n", benchOut)
	}
	jsonReport = report

	if overheadBudget > 0 && report.OverheadFrac > overheadBudget {
		return fmt.Errorf("flight-recorder overhead %.1f%% exceeds budget %.1f%%",
			100*report.OverheadFrac, 100*overheadBudget)
	}
	return nil
}

// analyzeIncident implements -analyze-incident: load one on-disk
// incident bundle and print its post-mortem timeline — the same
// rendering the REPL's `:incidents <id>` produces from a live recorder.
func analyzeIncident(path string) error {
	inc, err := copycat.ReadIncidentBundle(path)
	if err != nil {
		return err
	}
	fmt.Print(copycat.RenderIncident(inc))
	return nil
}
