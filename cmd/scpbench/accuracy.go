package main

// The accuracy experiment (Q1 in EXPERIMENTS.md): suggestion quality
// measured offline over the seeded scenario corpus. Every scenario has
// a known ground-truth query or completion, so the harness can grade
// the system the way an IR benchmark grades a ranker — precision@k,
// recall, MRR / rank-of-correct — plus the paper's own axis, feedback
// rounds to convergence. The corpus is replayed twice, warm and cold
// (plan cache on/off), and the two runs must produce identical metrics:
// the cache must never change what is suggested, only how fast.
// `-bench-out BENCH_8.json` persists the report; `-baseline
// BENCH_8.json` is the bench-check regression gate.

import (
	"encoding/json"
	"fmt"
	"os"

	"copycat/internal/scenario"
)

// Accuracy grid: seed, suggestion depth, and feedback-round budget.
const (
	accuracySeed      = 42
	accuracyK         = 3
	accuracyMaxRounds = 8
)

// accuracyReport is what -bench-out persists as BENCH_8.json.
type accuracyReport struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	K          int                `json:"k"`
	MaxRounds  int                `json:"max_rounds"`
	Scenarios  []scenario.Metrics `json:"scenarios"`
	// Rounds holds each scenario's per-round accuracy curve (round 0 =
	// initial ranking, then one entry per feedback round), parallel to
	// Scenarios. Additive: baselines written before this field existed
	// simply decode it empty, and the gate never compares it.
	Rounds           [][]scenario.RoundMetrics `json:"rounds,omitempty"`
	WebRelate        int                       `json:"webrelate_scenarios"`
	SmartInt         int                       `json:"smartint_scenarios"`
	MeanPrecisionAtK float64                   `json:"mean_precision_at_k"`
	MeanRecall       float64                   `json:"mean_recall"`
	MeanMRR          float64                   `json:"mean_mrr"`
	MeanRounds       float64                   `json:"mean_rounds_to_convergence"`
	Converged        int                       `json:"converged"`
}

// scoreCorpus builds and scores the whole corpus at one cache setting,
// returning both the headline metrics and the per-round curves.
func scoreCorpus(cold bool) ([]scenario.Metrics, [][]scenario.RoundMetrics, error) {
	scs, err := scenario.Corpus(scenario.Config{Seed: accuracySeed, Cold: cold})
	if err != nil {
		return nil, nil, err
	}
	out := make([]scenario.Metrics, len(scs))
	rounds := make([][]scenario.RoundMetrics, len(scs))
	for i, s := range scs {
		if out[i], rounds[i], err = scenario.ScoreWithRounds(s, accuracyK, accuracyMaxRounds); err != nil {
			return nil, nil, err
		}
	}
	return out, rounds, nil
}

// expAccuracy scores the scenario corpus; honors
// -json/-bench-out/-baseline.
func expAccuracy() error {
	warm, warmRounds, err := scoreCorpus(false)
	if err != nil {
		return err
	}
	// Warm/cold cross-check: the plan cache must be invisible in the
	// metrics, not just in the suggestion text.
	cold, coldRounds, err := scoreCorpus(true)
	if err != nil {
		return err
	}
	if len(cold) != len(warm) {
		return fmt.Errorf("warm run scored %d scenarios, cold %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i] != cold[i] {
			return fmt.Errorf("scenario %s: warm metrics %+v != cold metrics %+v",
				warm[i].Scenario, warm[i], cold[i])
		}
		// The per-round curves must match too: the cache changing how
		// fast feedback converges would be a correctness bug even if the
		// endpoints agree.
		if len(warmRounds[i]) != len(coldRounds[i]) {
			return fmt.Errorf("scenario %s: warm run graded %d rounds, cold %d",
				warm[i].Scenario, len(warmRounds[i]), len(coldRounds[i]))
		}
		for r := range warmRounds[i] {
			if warmRounds[i][r] != coldRounds[i][r] {
				return fmt.Errorf("scenario %s round %d: warm %+v != cold %+v",
					warm[i].Scenario, r, warmRounds[i][r], coldRounds[i][r])
			}
		}
	}

	report := accuracyReport{
		Experiment: "accuracy",
		Seed:       accuracySeed,
		K:          accuracyK,
		MaxRounds:  accuracyMaxRounds,
		Scenarios:  warm,
		Rounds:     warmRounds,
	}
	for _, m := range warm {
		switch m.Kind {
		case scenario.KindWebRelate:
			report.WebRelate++
		case scenario.KindSmartInt:
			report.SmartInt++
		}
		report.MeanPrecisionAtK += m.PrecisionAtK
		report.MeanRecall += m.Recall
		report.MeanMRR += m.MRR
		report.MeanRounds += float64(m.Rounds)
		if m.Converged {
			report.Converged++
		}
	}
	if n := float64(len(warm)); n > 0 {
		report.MeanPrecisionAtK /= n
		report.MeanRecall /= n
		report.MeanMRR /= n
		report.MeanRounds /= n
	}

	rows := make([][]string, 0, len(warm))
	for _, m := range warm {
		conv := "no"
		if m.Converged {
			conv = "yes"
		}
		rows = append(rows, []string{
			m.Scenario, m.Kind, fmt.Sprint(m.RankOfCorrect),
			f("%.3f", m.PrecisionAtK), f("%.3f", m.Recall), f("%.3f", m.MRR),
			fmt.Sprint(m.Rounds), conv,
		})
	}
	printTable([]string{"scenario", "kind", "rank", "p@3", "recall", "mrr", "rounds", "converged"}, rows)
	fmt.Printf("\nmeans: p@%d=%.3f recall=%.3f mrr=%.3f rounds=%.2f; %d/%d converged (warm == cold)\n",
		report.K, report.MeanPrecisionAtK, report.MeanRecall, report.MeanMRR,
		report.MeanRounds, report.Converged, len(warm))

	// Accuracy curve: mean MRR per feedback round, over the scenarios
	// still in the loop at that round (converged scenarios stop being
	// graded, so later rounds average over fewer, harder scenarios).
	maxRound := 0
	for _, rs := range warmRounds {
		if len(rs) > maxRound {
			maxRound = len(rs)
		}
	}
	fmt.Print("mean mrr by round:")
	for r := 0; r < maxRound; r++ {
		sum, n := 0.0, 0
		for _, rs := range warmRounds {
			if r < len(rs) {
				sum += rs[r].MRR
				n++
			}
		}
		fmt.Printf("  r%d=%.3f(%d)", r, sum/float64(n), n)
	}
	fmt.Println()

	if baselineFile != "" {
		if err := checkAccuracyBaseline(baselineFile, &report); err != nil {
			return err
		}
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbenchmark report written to %s\n", benchOut)
	}
	jsonReport = report
	return nil
}

// accuracyTolerance is the allowed slack on the mean MRR/recall gates:
// the metrics are deterministic for a fixed seed, but small intended
// ranking changes shouldn't force a baseline bump for sub-tolerance
// drift.
const accuracyTolerance = 0.05

// checkAccuracyBaseline is the bench-check gate for the accuracy
// experiment. The corpus is deterministic, so the gate holds the
// structural invariants: the scenario set must match the committed
// report name for name, at least as many scenarios must converge, and
// the mean MRR and recall must not regress beyond the tolerance.
func checkAccuracyBaseline(path string, got *accuracyReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var base accuracyReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if got.Seed != base.Seed || got.K != base.K || got.MaxRounds != base.MaxRounds {
		return fmt.Errorf("grid drift: measured seed=%d k=%d rounds=%d, baseline seed=%d k=%d rounds=%d",
			got.Seed, got.K, got.MaxRounds, base.Seed, base.K, base.MaxRounds)
	}
	if len(got.Scenarios) != len(base.Scenarios) {
		return fmt.Errorf("corpus drift: measured %d scenarios, baseline %d",
			len(got.Scenarios), len(base.Scenarios))
	}
	for i := range base.Scenarios {
		if got.Scenarios[i].Scenario != base.Scenarios[i].Scenario {
			return fmt.Errorf("corpus drift at %d: measured %q, baseline %q",
				i, got.Scenarios[i].Scenario, base.Scenarios[i].Scenario)
		}
	}
	if got.Converged < base.Converged {
		return fmt.Errorf("convergence regression: %d scenarios converged, baseline %d",
			got.Converged, base.Converged)
	}
	if got.MeanMRR < base.MeanMRR-accuracyTolerance {
		return fmt.Errorf("MRR regression: mean %.3f, baseline %.3f (tolerance %.2f)",
			got.MeanMRR, base.MeanMRR, accuracyTolerance)
	}
	if got.MeanRecall < base.MeanRecall-accuracyTolerance {
		return fmt.Errorf("recall regression: mean %.3f, baseline %.3f (tolerance %.2f)",
			got.MeanRecall, base.MeanRecall, accuracyTolerance)
	}
	fmt.Printf("baseline check: %d/%d converged, mean mrr %.3f (baseline %.3f), mean recall %.3f (baseline %.3f)\n",
		got.Converged, len(got.Scenarios), got.MeanMRR, base.MeanMRR, got.MeanRecall, base.MeanRecall)
	return nil
}
