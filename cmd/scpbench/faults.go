package main

import (
	"fmt"
	"time"

	"copycat"
)

// expFaults measures suggestion availability and latency under injected
// service faults (R1): every builtin service is wrapped in a
// deterministic fault injector at increasing transient-error rates, and
// the full paste → accept → integrate → column-completion pipeline runs
// behind the resilience layer (retries, circuit breakers, graceful row
// degradation). Availability is completions surviving relative to the
// fault-free baseline; latency is virtual (injected latency + backoff on
// the virtual clock — deterministic, no wall-clock sleeps).
func expFaults() error {
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6}
	type sample struct {
		rate        float64
		completions int
		rows        int
		degraded    int64
		retries     int64
		trips       int64
		calls       int64
		drops       int
		virtual     time.Duration
	}
	run := func(rate float64) (sample, error) {
		cfg := copycat.DefaultWorldConfig()
		cfg.FaultRate = rate
		cfg.FaultSeed = 7
		sys := copycat.NewDemoSystem(cfg)
		w := sys.World
		browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
		s0, s1 := w.Shelters[0], w.Shelters[1]
		sel, err := browser.CopyRows([][]string{
			{s0.Name, s0.Street, s0.City},
			{s1.Name, s1.Street, s1.City},
		})
		if err != nil {
			return sample{}, err
		}
		if err := sys.Workspace.Paste(sel); err != nil {
			return sample{}, err
		}
		if err := sys.Workspace.AcceptRows(); err != nil {
			return sample{}, err
		}
		sys.Workspace.SetMode(copycat.ModeIntegration)
		var start time.Time
		if sys.Clock != nil {
			start = sys.Clock.Now()
		}
		comps := sys.Workspace.RefreshColumnSuggestions()
		out := sample{rate: rate, completions: len(comps), drops: len(sys.Workspace.SuggestionDrops())}
		if sys.Clock != nil {
			out.virtual = sys.Clock.Now().Sub(start)
		}
		for _, c := range comps {
			out.rows += len(c.Result.Rows)
		}
		snap := sys.Stats()
		out.degraded = snap.DegradedRows
		out.retries = snap.Retries
		out.trips = snap.BreakerTrips
		out.calls = snap.ServiceCalls
		return out, nil
	}

	var samples []sample
	for _, r := range rates {
		s, err := run(r)
		if err != nil {
			return err
		}
		samples = append(samples, s)
	}
	baseline := samples[0].completions
	var rows [][]string
	for _, s := range samples {
		avail := "-"
		if baseline > 0 {
			avail = f("%.0f%%", 100*float64(s.completions)/float64(baseline))
		}
		rows = append(rows, []string{
			f("%.2f", s.rate),
			fmt.Sprint(s.completions),
			avail,
			fmt.Sprint(s.rows),
			fmt.Sprint(s.degraded),
			fmt.Sprint(s.retries),
			fmt.Sprint(s.trips),
			fmt.Sprint(s.calls),
			fmt.Sprint(s.drops),
			s.virtual.Round(time.Millisecond).String(),
		})
	}
	printTable(
		[]string{"fault rate", "completions", "availability", "rows", "degraded", "retries", "breaker trips", "service calls", "drops", "virtual latency"},
		rows)
	fmt.Println("\npaper shape: the prototype ran against live Google/Yahoo services (§4);")
	fmt.Println("with the resilience layer, suggestions keep arriving under injected faults —")
	fmt.Println("failing rows degrade (and are counted) instead of killing whole candidate plans.")
	if statsMode {
		fmt.Println()
	}
	return nil
}
