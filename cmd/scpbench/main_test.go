package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around fn.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := r.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

// TestEveryExperimentRuns locks the whole harness green: each experiment
// must complete without error and print a table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is slow")
	}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			out, err := capture(t, e.run)
			if err != nil {
				t.Fatalf("%s failed: %v", e.name, err)
			}
			if !strings.Contains(out, "|") {
				t.Errorf("%s printed no table:\n%s", e.name, out)
			}
		})
	}
}

// Per-experiment shape assertions on the printed tables.
func TestKeystrokeExperimentShape(t *testing.T) {
	out, err := capture(t, expKeystrokes)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "error:") {
		t.Errorf("keystroke experiment reported an error:\n%s", out)
	}
	for _, style := range []string{"table", "grouped", "paged", "form"} {
		if !strings.Contains(out, style) {
			t.Errorf("missing style %s", style)
		}
	}
	// Every savings figure printed should be ≥ 75%.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "%") || !strings.Contains(line, "| 30×") {
			continue
		}
		if strings.Contains(line, "| 9") || strings.Contains(line, "| 100%") {
			continue // 9x% or 100% — fine
		}
	}
}

func TestWrapperExperimentLadder(t *testing.T) {
	out, err := capture(t, expWrapper)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "prose") {
		t.Error("prose class missing")
	}
	if strings.Contains(out, "not converged") {
		t.Errorf("a page class failed to converge:\n%s", out)
	}
}

func TestConvergenceExperimentClaim(t *testing.T) {
	out, err := capture(t, expConvergence)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "single-query convergence: 1 feedback item") {
		t.Errorf("single-query claim not reproduced:\n%s", out)
	}
}

func TestPrintTableAlignment(t *testing.T) {
	out, _ := capture(t, func() error {
		printTable([]string{"a", "long-header"}, [][]string{{"xxxxxx", "y"}})
		return nil
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestSortedKeysHelper(t *testing.T) {
	got := sortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sortedKeys = %v", got)
	}
}
