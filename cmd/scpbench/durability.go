package main

// The durability experiment (D1 in EXPERIMENTS.md): the durable session
// tier measured end to end. A file-backed demo host seeds a fleet, then
// each session is driven through explicit evict → attach (transparent
// reload from disk) cycles to price both halves of the snapshot round
// trip; the store's raw-vs-disk byte counts give the on-disk gzip
// compression ratio; and finally the host is checkpointed, dropped, and
// a second host is rebuilt over the same directory — the crash-recovery
// path — which must re-register every session and serve suggestions
// from each one. `-bench-out BENCH_7.json` persists the report;
// `-baseline BENCH_7.json` is the bench-check regression gate.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"copycat"
)

// durabilitySessions is the fleet size the experiment seeds.
const durabilitySessions = 8

// durabilityCycles is how many evict→reload round trips each session
// makes.
const durabilityCycles = 4

// durabilityReport is what -bench-out persists as BENCH_7.json.
type durabilityReport struct {
	Experiment       string  `json:"experiment"`
	Sessions         int     `json:"sessions"`
	Cycles           int     `json:"cycles"`
	EvictP50Ns       int64   `json:"evict_p50_ns"`
	EvictP99Ns       int64   `json:"evict_p99_ns"`
	ReloadP50Ns      int64   `json:"reload_p50_ns"`
	ReloadP99Ns      int64   `json:"reload_p99_ns"`
	RawBytes         int64   `json:"raw_bytes"`  // uncompressed snapshot bytes on the store
	DiskBytes        int64   `json:"disk_bytes"` // bytes actually on disk (header + gzip)
	CompressionRatio float64 `json:"compression_ratio"`
	Checkpointed     int     `json:"checkpointed"` // sessions written by the shutdown checkpoint
	Recovered        int64   `json:"recovered"`    // sessions re-registered by the rebuilt host
	RecoverNs        int64   `json:"recover_ns"`   // wall time to open the store and rebuild the manager
}

// durabilityPercentiles sorts and extracts p50/p99 from one latency set.
func durabilityPercentiles(lat []time.Duration) (p50, p99 int64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		return lat[int(p*float64(len(lat)-1))].Nanoseconds()
	}
	return pct(0.50), pct(0.99)
}

// expDurability measures the durable session tier; honors
// -json/-bench-out/-baseline.
func expDurability() error {
	worldCfg := copycat.DefaultWorldConfig()
	worldCfg.Cities, worldCfg.SheltersPerCity = 3, 3

	dir, err := os.MkdirTemp("", "scpbench-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	host, err := copycat.NewDurableDemoHost(worldCfg, copycat.SessionConfig{}, dir)
	if err != nil {
		return err
	}
	ids := make([]string, durabilitySessions)
	suggestions := make([]int, durabilitySessions)
	for i := range ids {
		sys, err := host.Create(fmt.Sprintf("tenant%02d", i%4))
		if err != nil {
			return fmt.Errorf("create %d: %w", i, err)
		}
		if err := capacitySeed(sys); err != nil {
			sys.Release()
			return fmt.Errorf("seed %d: %w", i, err)
		}
		suggestions[i] = len(sys.Workspace.RefreshColumnSuggestions())
		if suggestions[i] == 0 {
			sys.Release()
			return fmt.Errorf("session %d produced no suggestions", i)
		}
		ids[i] = sys.Session.ID()
		sys.Release()
	}

	// Evict/reload cycles: every evict writes a compressed, checksummed
	// snapshot file; every attach reads, verifies, inflates, and replays
	// it.
	var evictLat, reloadLat []time.Duration
	for c := 0; c < durabilityCycles; c++ {
		for i, id := range ids {
			start := time.Now()
			if err := host.Manager.Evict(id); err != nil {
				return fmt.Errorf("cycle %d: evict %s: %w", c, id, err)
			}
			evictLat = append(evictLat, time.Since(start))
			start = time.Now()
			sys, err := host.Attach(id)
			if err != nil {
				return fmt.Errorf("cycle %d: attach %s: %w", c, id, err)
			}
			reloadLat = append(reloadLat, time.Since(start))
			n := len(sys.Workspace.RefreshColumnSuggestions())
			sys.Release()
			if n != suggestions[i] {
				return fmt.Errorf("cycle %d: session %s served %d suggestions after reload, want %d", c, id, n, suggestions[i])
			}
		}
	}

	// Graceful shutdown: checkpoint the whole fleet to disk, then drop
	// the host and rebuild over the same directory — the crash-recovery
	// path.
	checkpointed, err := host.Manager.Checkpoint()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	storeStats := host.Manager.Store().(*copycat.SessionFileStore).Stats()

	start := time.Now()
	host2, err := copycat.NewDurableDemoHost(worldCfg, copycat.SessionConfig{}, dir)
	if err != nil {
		return fmt.Errorf("rebuild over %s: %w", dir, err)
	}
	recoverNs := time.Since(start).Nanoseconds()
	st2 := host2.Manager.Stats()
	for i, id := range ids {
		sys, err := host2.Attach(id)
		if err != nil {
			return fmt.Errorf("attach %s after recovery: %w", id, err)
		}
		n := len(sys.Workspace.RefreshColumnSuggestions())
		tenant := sys.Session.Tenant()
		sys.Release()
		if n != suggestions[i] {
			return fmt.Errorf("session %s served %d suggestions after recovery, want %d", id, n, suggestions[i])
		}
		if want := fmt.Sprintf("tenant%02d", i%4); tenant != want {
			return fmt.Errorf("session %s recovered under tenant %q, want %q", id, tenant, want)
		}
	}

	report := durabilityReport{
		Experiment:       "durability",
		Sessions:         durabilitySessions,
		Cycles:           durabilityCycles,
		RawBytes:         storeStats.RawBytes,
		DiskBytes:        storeStats.DiskBytes,
		CompressionRatio: storeStats.CompressionRatio(),
		Checkpointed:     checkpointed,
		Recovered:        st2.Recovered,
		RecoverNs:        recoverNs,
	}
	report.EvictP50Ns, report.EvictP99Ns = durabilityPercentiles(evictLat)
	report.ReloadP50Ns, report.ReloadP99Ns = durabilityPercentiles(reloadLat)

	printTable([]string{"measure", "value"}, [][]string{
		{"sessions × evict/reload cycles", fmt.Sprintf("%d × %d", report.Sessions, report.Cycles)},
		{"evict (snapshot+compress+fsync) p50 / p99", fmt.Sprintf("%s / %s", time.Duration(report.EvictP50Ns), time.Duration(report.EvictP99Ns))},
		{"reload (read+verify+replay) p50 / p99", fmt.Sprintf("%s / %s", time.Duration(report.ReloadP50Ns), time.Duration(report.ReloadP99Ns))},
		{"snapshot bytes raw → disk", fmt.Sprintf("%dKiB → %dKiB", report.RawBytes>>10, report.DiskBytes>>10)},
		{"compression ratio", fmt.Sprintf("%.1f×", report.CompressionRatio)},
		{"checkpointed at shutdown", fmt.Sprint(report.Checkpointed)},
		{"recovered by rebuilt host", fmt.Sprint(report.Recovered)},
		{"recovery time (open store + rebuild manager)", time.Duration(report.RecoverNs).String()},
	})

	if baselineFile != "" {
		if err := checkDurabilityBaseline(baselineFile, &report); err != nil {
			return err
		}
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbenchmark report written to %s\n", benchOut)
	}
	jsonReport = report
	return nil
}

// checkDurabilityBaseline is the bench-check gate for the durability
// experiment. Wall-clock latencies are machine-dependent, so the gate
// holds the structural invariants: the grid must match the committed
// report, the gzip framing must keep paying for itself (≥ 2× on real
// snapshots), and the rebuilt host must recover the whole fleet.
func checkDurabilityBaseline(path string, got *durabilityReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var base durabilityReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if got.Sessions != base.Sessions || got.Cycles != base.Cycles {
		return fmt.Errorf("grid drift: measured %d×%d, baseline %d×%d",
			got.Sessions, got.Cycles, base.Sessions, base.Cycles)
	}
	if got.CompressionRatio < 2 {
		return fmt.Errorf("compression ratio %.2f below the 2× floor", got.CompressionRatio)
	}
	if got.Checkpointed != got.Sessions {
		return fmt.Errorf("checkpoint wrote %d of %d sessions", got.Checkpointed, got.Sessions)
	}
	if got.Recovered != int64(got.Sessions) {
		return fmt.Errorf("rebuilt host recovered %d of %d sessions", got.Recovered, got.Sessions)
	}
	fmt.Printf("baseline check: %d sessions recovered, %.1f× on-disk compression\n",
		got.Recovered, got.CompressionRatio)
	return nil
}
