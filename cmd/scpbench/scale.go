package main

// The scale experiment (S1 in EXPERIMENTS.md): suggestion latency on
// worlds 10–100x the demo size. Each scale arm generates a seeded scaled
// webworld, loads every stitching chain as narrow fragment sources, and
// times the top-query search for one chain's six fragments two ways —
// the tiered solver (SPCSH answer now, exact refinement in the
// background) and exact-only (the pre-tiering behavior, forced by
// raising the inline-exact thresholds). Recorded per arm: first-answer
// p50/p99, allocs/op and bytes/op on the suggest path, and the
// SPCSH-vs-exact top-1 agreement (the inline heuristic answer compared
// to the refined exact ranking it is later re-ranked by). `-bench-out
// BENCH_9.json` persists the report; `-baseline BENCH_9.json` is the
// bench-check gate; `-scale-grid 1,10` runs the reduced CI grid.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"copycat/internal/catalog"
	"copycat/internal/engine"
	"copycat/internal/intlearn"
	"copycat/internal/plancache"
	"copycat/internal/sourcegraph"
	"copycat/internal/table"
	"copycat/internal/webworld"
)

// Scale grid: seed and suggestion depth match the accuracy experiment;
// iteration counts shrink with scale to keep exact-only arms bounded.
const (
	scaleSeed = 42
	scaleK    = 3
)

// scaleIters returns the per-arm sample count for one scale.
func scaleIters(scale int) int {
	switch {
	case scale >= 100:
		return 10
	case scale >= 10:
		return 20
	default:
		return 40
	}
}

// scaleArm is one solver's numbers at one world size.
type scaleArm struct {
	P50Ns       int64  `json:"p50_ns"`
	P99Ns       int64  `json:"p99_ns"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// scaleRow is one world size's full measurement.
type scaleRow struct {
	Scale     int      `json:"scale"`
	Sources   int      `json:"sources"`
	Edges     int      `json:"edges"`
	Terminals int      `json:"terminals"`
	Iters     int      `json:"iters"`
	Tiered    scaleArm `json:"tiered"`
	Exact     scaleArm `json:"exact"`
	// Agreement is the fraction of samples where the inline SPCSH top-1
	// named the same query as the refined exact top-1.
	Agreement float64 `json:"agreement"`
	// SpeedupP99 is exact-only p99 / tiered first-answer p99.
	SpeedupP99 float64 `json:"speedup_p99"`
}

// scaleReport is what -bench-out persists as BENCH_9.json.
type scaleReport struct {
	Experiment string     `json:"experiment"`
	Seed       int64      `json:"seed"`
	K          int        `json:"k"`
	Grid       []int      `json:"grid"`
	Rows       []scaleRow `json:"rows"`
}

// scaleWorldGraph generates the scaled world and loads every stitching
// chain into a catalog + source graph: fresh chain hops at cost 0.6, the
// stale shortcut at 0.45 a hop — the same shape the scale scenario and
// the 1x SmartInt scenarios use.
func scaleWorldGraph(scale int) (*intlearn.Learner, []string, int, int) {
	cfg := webworld.ScaledConfig(scale)
	cfg.Seed = scaleSeed
	w := webworld.Generate(cfg)

	cat := catalog.New()
	g := sourcegraph.New(cat)
	edges := 0
	for _, ch := range w.Chains {
		for _, rel := range ch.Rels {
			r := table.NewRelation(rel.Name, table.NewSchema(rel.Cols...))
			for _, row := range rel.Rows {
				r.MustAppend(table.FromStrings(row))
			}
			cat.AddRelation(r, "fragment")
		}
		d := table.NewRelation(ch.Decoy.Name, table.NewSchema(ch.Decoy.Cols...))
		for _, row := range ch.Decoy.Rows {
			d.MustAppend(table.FromStrings(row))
		}
		cat.AddRelation(d, "stale-mirror")
		for i := 0; i+1 < len(ch.Rels); i++ {
			key := ch.Rels[i].Cols[len(ch.Rels[i].Cols)-1]
			g.AddEdge(sourcegraph.Edge{From: ch.Rels[i].Name, To: ch.Rels[i+1].Name,
				Kind: sourcegraph.KindJoin, FromCols: []string{key}, ToCols: []string{key}, Cost: 0.6})
			edges++
		}
		first, last := ch.Rels[0], ch.Rels[len(ch.Rels)-1]
		g.AddEdge(sourcegraph.Edge{From: first.Name, To: ch.Decoy.Name,
			Kind: sourcegraph.KindJoin, FromCols: []string{ch.Decoy.Cols[0]}, ToCols: []string{ch.Decoy.Cols[0]}, Cost: 0.45})
		g.AddEdge(sourcegraph.Edge{From: ch.Decoy.Name, To: last.Name,
			Kind: sourcegraph.KindJoin, FromCols: []string{ch.Decoy.Cols[1]}, ToCols: []string{ch.Decoy.Cols[1]}, Cost: 0.45})
		edges += 2
	}

	// Terminals: every fragment of the first chain plus its stale mirror —
	// a 7-terminal stitch (the pasted values are visible in the decoy
	// too), where the Dreyfus–Wagner DP's exponential-in-terminals cost
	// bites while SPCSH stays near-linear.
	var terminals []string
	for _, rel := range w.Chains[0].Rels {
		terminals = append(terminals, rel.Name)
	}
	terminals = append(terminals, w.Chains[0].Decoy.Name)
	return intlearn.New(g), terminals, len(cat.All()), edges
}

func top1Name(qs []*intlearn.Query) string {
	if len(qs) == 0 {
		return ""
	}
	return strings.Join(qs[0].Nodes, "+")
}

func nsPercentile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// timeSolves runs iters fresh-cache top-query searches on the learner,
// returning per-call latency samples, per-op allocation deltas, and the
// inline top-1 names. When refine is set (the tiered arm), each sample
// joins the background refinement after the timed window and collects
// the refined top-1 for the agreement tally.
func timeSolves(lrn *intlearn.Learner, terminals []string, iters int, refine bool) (lat []int64, allocs, bytes uint64, inline, refined []string, err error) {
	// Warmup solve outside the timed window: the first call on a fresh
	// learner pays the one-time compact-graph (CSR) index build, which is
	// amortized state in steady serving, not first-answer latency.
	ec0 := engine.NewExecCtx(context.Background(), engine.WithPlanCache(plancache.New(8)))
	if _, e := lrn.TopQueriesCtx(ec0, terminals, scaleK); e != nil {
		return nil, 0, 0, nil, nil, e
	}
	lrn.WaitRefines()

	var msBefore, msAfter runtime.MemStats
	for i := 0; i < iters; i++ {
		// A fresh plan cache per sample: every timed call is a cold memo
		// (the steady-state cache-hit path is measured by P1 instead).
		ec := engine.NewExecCtx(context.Background(), engine.WithPlanCache(plancache.New(8)))
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		qs, e := lrn.TopQueriesCtx(ec, terminals, scaleK)
		d := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		if e != nil {
			return nil, 0, 0, nil, nil, e
		}
		lat = append(lat, d.Nanoseconds())
		allocs += msAfter.Mallocs - msBefore.Mallocs
		bytes += msAfter.TotalAlloc - msBefore.TotalAlloc
		inline = append(inline, top1Name(qs))
		if refine {
			lrn.WaitRefines()
			rq, e := lrn.TopQueriesCtx(ec, terminals, scaleK)
			if e != nil {
				return nil, 0, 0, nil, nil, e
			}
			refined = append(refined, top1Name(rq))
		}
	}
	return lat, allocs / uint64(iters), bytes / uint64(iters), inline, refined, nil
}

// expScale runs the grid and prints/persists the report.
func expScale() error {
	grid, err := parseScaleGrid(scaleGridFlag)
	if err != nil {
		return err
	}
	report := scaleReport{Experiment: "scale", Seed: scaleSeed, K: scaleK, Grid: grid}

	for _, scale := range grid {
		iters := scaleIters(scale)

		// Tiered arm: default thresholds; the chain worlds sit past the
		// inline-exact node bound, so every call answers from SPCSH and
		// refines in the background.
		lrn, terminals, nodes, edges := scaleWorldGraph(scale)
		lat, allocs, bytes, inline, refined, err := timeSolves(lrn, terminals, iters, true)
		if err != nil {
			return fmt.Errorf("scale %dx tiered: %w", scale, err)
		}
		row := scaleRow{
			Scale: scale, Sources: nodes, Edges: edges,
			Terminals: len(terminals), Iters: iters,
			Tiered: scaleArm{
				P50Ns: nsPercentile(lat, 0.50), P99Ns: nsPercentile(lat, 0.99),
				AllocsPerOp: allocs, BytesPerOp: bytes,
			},
		}
		agree := 0
		for i := range inline {
			if inline[i] == refined[i] {
				agree++
			}
		}
		row.Agreement = float64(agree) / float64(len(inline))

		// Exact-only arm: force the inline exact solver (the pre-tiering
		// behavior) by lifting the tier thresholds.
		exact, terminals2, _, _ := scaleWorldGraph(scale)
		exact.MaxExactNodes = 1 << 30
		exact.TierTerminals = 1 << 30
		lat2, allocs2, bytes2, _, _, err := timeSolves(exact, terminals2, iters, false)
		if err != nil {
			return fmt.Errorf("scale %dx exact: %w", scale, err)
		}
		row.Exact = scaleArm{
			P50Ns: nsPercentile(lat2, 0.50), P99Ns: nsPercentile(lat2, 0.99),
			AllocsPerOp: allocs2, BytesPerOp: bytes2,
		}
		if row.Tiered.P99Ns > 0 {
			row.SpeedupP99 = float64(row.Exact.P99Ns) / float64(row.Tiered.P99Ns)
		}
		report.Rows = append(report.Rows, row)
	}

	rows := make([][]string, 0, len(report.Rows))
	for _, r := range report.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%dx", r.Scale), fmt.Sprint(r.Sources), fmt.Sprint(r.Edges),
			time.Duration(r.Tiered.P50Ns).String(), time.Duration(r.Tiered.P99Ns).String(),
			time.Duration(r.Exact.P50Ns).String(), time.Duration(r.Exact.P99Ns).String(),
			fmt.Sprint(r.Tiered.AllocsPerOp), fmt.Sprint(r.Exact.AllocsPerOp),
			f("%.2f", r.Agreement), f("%.1fx", r.SpeedupP99),
		})
	}
	printTable([]string{"scale", "sources", "edges", "tiered p50", "tiered p99",
		"exact p50", "exact p99", "tiered allocs", "exact allocs", "agree", "speedup"}, rows)

	if baselineFile != "" {
		if err := checkScaleBaseline(baselineFile, &report); err != nil {
			return err
		}
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbenchmark report written to %s\n", benchOut)
	}
	jsonReport = report
	return nil
}

// scaleDefaultGrid is the full sweep; also used when the experiment is
// driven without flag parsing (the harness test).
const scaleDefaultGrid = "1,10,100"

func parseScaleGrid(s string) ([]int, error) {
	if s == "" {
		s = scaleDefaultGrid
	}
	var grid []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("scale grid %q: bad entry %q", s, part)
		}
		grid = append(grid, v)
	}
	sort.Ints(grid)
	return grid, nil
}

// scaleP99Budget is the allowed tiered-p99 regression against the
// committed baseline: wall-clock latencies vary across machines, so the
// budget is generous; the within-run speedup gate below is the
// machine-independent invariant.
const scaleP99Budget = 2.0

// scaleSpeedupFloor is the within-run exact-p99/tiered-p99 ratio each
// world size must clear: the headline acceptance bar is ≥10x on the
// 100x world; the 10x world must still show a clear (≥3x) win.
func scaleSpeedupFloor(scale int) float64 {
	switch {
	case scale >= 100:
		return 10
	case scale >= 10:
		return 3
	default:
		return 0
	}
}

// checkScaleBaseline is the bench-check gate for the scale experiment:
// every measured scale must exist in the baseline, tiered first-answer
// p99 must stay within the regression budget of the committed number,
// agreement must not drop, and — machine-independent, within this run —
// the tiered answer must beat exact-only by the per-scale speedup floor
// (≥10x on the 100x world, the headline acceptance number).
func checkScaleBaseline(path string, got *scaleReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var base scaleReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if got.Seed != base.Seed || got.K != base.K {
		return fmt.Errorf("grid drift: measured seed=%d k=%d, baseline seed=%d k=%d",
			got.Seed, got.K, base.Seed, base.K)
	}
	baseRows := map[int]scaleRow{}
	for _, r := range base.Rows {
		baseRows[r.Scale] = r
	}
	for _, r := range got.Rows {
		b, ok := baseRows[r.Scale]
		if !ok {
			return fmt.Errorf("scale %dx not in baseline %s", r.Scale, path)
		}
		if r.Sources != b.Sources || r.Terminals != b.Terminals {
			return fmt.Errorf("scale %dx world drift: measured %d sources/%d terminals, baseline %d/%d",
				r.Scale, r.Sources, r.Terminals, b.Sources, b.Terminals)
		}
		if limit := float64(b.Tiered.P99Ns) * scaleP99Budget; float64(r.Tiered.P99Ns) > limit {
			return fmt.Errorf("scale %dx: tiered p99 %s regressed beyond budget (baseline %s × %.1f)",
				r.Scale, time.Duration(r.Tiered.P99Ns), time.Duration(b.Tiered.P99Ns), scaleP99Budget)
		}
		if r.Agreement+1e-9 < b.Agreement {
			return fmt.Errorf("scale %dx: SPCSH/exact agreement %.2f below baseline %.2f",
				r.Scale, r.Agreement, b.Agreement)
		}
		if want := scaleSpeedupFloor(r.Scale); r.SpeedupP99 < want {
			return fmt.Errorf("scale %dx: tiered first answer only %.1fx faster than exact-only (need ≥%.0fx)",
				r.Scale, r.SpeedupP99, want)
		}
		fmt.Printf("baseline check: %dx tiered p99 %s (baseline %s), agreement %.2f, speedup %.1fx\n",
			r.Scale, time.Duration(r.Tiered.P99Ns), time.Duration(b.Tiered.P99Ns), r.Agreement, r.SpeedupP99)
	}
	return nil
}
