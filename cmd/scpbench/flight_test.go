package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"copycat/internal/obs/flight"
)

// TestAnalyzeIncidentRendersBundle drives -analyze-incident end to end:
// capture a bundle to disk with a live recorder, then render it cold
// from the file and check the post-mortem names the trigger, the
// breaker transition, and the session.
func TestAnalyzeIncidentRendersBundle(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(1_000, 0)
	rec := flight.New(flight.Config{Dir: dir, Clock: func() time.Time { return clock }})
	rec.RecordEvent(flight.EventBreaker, "s7", "", "geocoder: closed -> open")
	id, ok := rec.Trigger(flight.TriggerBreakerOpen, "geocoder tripped", "s7", "acme")
	if !ok {
		t.Fatal("trigger should capture")
	}
	path := filepath.Join(dir, id+".json")

	out, err := capture(t, func() error { return analyzeIncident(path) })
	if err != nil {
		t.Fatalf("analyzeIncident: %v", err)
	}
	for _, want := range []string{
		"incident " + id,
		"trigger   breaker.open — geocoder tripped",
		"session   s7 (tenant acme)",
		"closed -> open",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis missing %q:\n%s", want, out)
		}
	}

	// Not-a-bundle and missing files fail with useful errors.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := analyzeIncident(bad); err == nil {
		t.Error("analyzeIncident should reject a non-bundle JSON file")
	}
	if err := analyzeIncident(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("analyzeIncident should fail on a missing file")
	}
}
