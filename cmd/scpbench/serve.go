package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"copycat"
	"copycat/internal/obs/flight"
	"copycat/internal/obs/serve"
)

// scrapeCount is how many sequential /metrics scrapes the scrape-cost
// measurement averages over.
const scrapeCount = 100

// scrapeInterval paces the concurrent scraper during the overhead
// measurement: one scrape every 50ms is already 20–300× more
// aggressive than a production Prometheus (1–15s per scrape), so the
// overhead measured under it is a safe upper bound — while flat-out
// scraping with no pacing would just measure CPU contention between
// the encoder and the candidate executor, which no deployment sees.
const scrapeInterval = 50 * time.Millisecond

// serveReps is how many interleaved idle/scraped cold-refresh loop
// pairs the overhead comparison totals over.
const serveReps = 10

// serveReport is the machine-readable result of the telemetry-serving
// experiment (O2).
type serveReport struct {
	Experiment        string  `json:"experiment"`
	Refreshes         int     `json:"refreshes"`
	Reps              int     `json:"reps"`
	PlainNs           int64   `json:"plain_ns"`           // total idle-phase loop time (server attached, unscraped)
	ServedNs          int64   `json:"served_ns"`          // total scraped-phase loop time
	OverheadFrac      float64 `json:"overhead_frac"`      // (served-plain)/plain over the interleaved totals
	ConcurrentScrapes int64   `json:"concurrent_scrapes"` // scrapes issued during the served loops
	ScrapeMeanNs      int64   `json:"scrape_mean_ns"`     // sequential scrape cost
	ScrapeMaxNs       int64   `json:"scrape_max_ns"`
	ScrapeBytes       int     `json:"scrape_bytes"` // /metrics body size
	Series            int     `json:"series"`       // sample lines in the body
}

// expServe is the telemetry-serving experiment: on one warmed session
// with a live telemetry server attached, it compares the suggestion
// refresh loop with the server idle against the same loop while
// /metrics is scraped back-to-back, then measures the per-scrape cost
// directly and lints the body. Honors -json and -overhead-budget.
func expServe() error {
	sys, err := pipelineSetup(true) // traced, so /trace/stream has data
	if err != nil {
		return err
	}
	// Cold refreshes: with the plan cache on, the warm loop is
	// sub-millisecond and run-to-run scheduler noise swamps any serving
	// cost. Recomputing every refresh gives the comparison a measurement
	// window long enough for scrapes to actually land inside it.
	sys.Workspace.PlanCache = nil
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := sys.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + srv.Addr()
	if _, err := pipelineLoop(sys); err != nil { // warmup: fill the service cache
		return err
	}
	// Warm the HTTP path too (listener accept, keep-alive connection),
	// so neither phase pays one-time dial costs.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Concurrent scraper: scrapes /metrics on its cadence whenever the
	// `scraping` gate is open.
	var scraping atomic.Bool
	var scrapes atomic.Int64
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		tick := time.NewTicker(scrapeInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if !scraping.Load() {
					continue
				}
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapes.Add(1)
			}
		}
	}()

	// Interleave idle and scraped loops rep by rep, so heap growth, GC
	// cadence, and thermal drift hit both phases equally instead of
	// whichever ran second; compare the phase totals rather than
	// best-of, because a single cold loop's duration swings with GC far
	// more than serving ever costs.
	var plain, served time.Duration
	for r := 0; r < serveReps; r++ {
		d, err := pipelineLoop(sys)
		if err != nil {
			return err
		}
		plain += d
		scraping.Store(true)
		d, err = pipelineLoop(sys)
		scraping.Store(false)
		if err != nil {
			return err
		}
		served += d
	}
	close(stop)
	<-scraperDone

	// Sequential scrape cost: mean and max over scrapeCount full scrapes,
	// with the last body linted and sized.
	var total, max time.Duration
	var body []byte
	for i := 0; i < scrapeCount; i++ {
		start := time.Now()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return err
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		d := time.Since(start)
		total += d
		if d > max {
			max = d
		}
	}
	if err := serve.Lint(strings.NewReader(string(body))); err != nil {
		return fmt.Errorf("/metrics body fails exposition lint: %w", err)
	}
	series := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}

	report := serveReport{
		Experiment:        "serve",
		Refreshes:         pipelineRefreshes,
		Reps:              serveReps,
		PlainNs:           plain.Nanoseconds(),
		ServedNs:          served.Nanoseconds(),
		OverheadFrac:      float64(served-plain) / float64(plain),
		ConcurrentScrapes: scrapes.Load(),
		ScrapeMeanNs:      (total / scrapeCount).Nanoseconds(),
		ScrapeMaxNs:       max.Nanoseconds(),
		ScrapeBytes:       len(body),
		Series:            series,
	}

	printTable([]string{"measure", "value"}, [][]string{
		{"suggestion refreshes timed", fmt.Sprint(pipelineRefreshes)},
		{"idle-server loops (total, interleaved)", plain.String()},
		{"scraped loops (total, interleaved)", served.String()},
		{"serving overhead", fmt.Sprintf("%.1f%%", 100*report.OverheadFrac)},
		{"concurrent scrapes during loops", fmt.Sprint(report.ConcurrentScrapes)},
		{"scrape cost (mean / max)", fmt.Sprintf("%s / %s", time.Duration(report.ScrapeMeanNs), max)},
		{"/metrics body", fmt.Sprintf("%d bytes, %d series", report.ScrapeBytes, report.Series)},
	})
	jsonReport = report

	if overheadBudget > 0 && report.OverheadFrac > overheadBudget {
		return fmt.Errorf("serving overhead %.1f%% exceeds budget %.1f%%",
			100*report.OverheadFrac, 100*overheadBudget)
	}
	return nil
}

// runTelemetryServer implements the -serve flag: it drives a traced
// demo session through the full pipeline so every surface has data,
// serves its telemetry on addr, and holds until `wait` elapses (0 =
// until SIGINT/SIGTERM). The CI smoke job curls this.
//
// With -serve-sessions N it serves a multi-tenant host instead: a
// session manager capped at N sessions with two seeded tenants, so the
// smoke can walk the /sessions lifecycle, drive the table to the cap to
// watch /readyz flip to 503, and lint the per-tenant /metrics families.
// Adding -store-dir makes that host durable: sessions already in the
// store are recovered instead of re-seeding, and the resident fleet is
// checkpointed to disk when the server stops — so a kill + restart over
// the same directory serves the same sessions.
//
// With -serve-faults R the single-session path wraps every builtin
// service in the deterministic fault injector at rate R and drives
// suggestion refreshes until a circuit breaker opens, so by the time the
// server is listening the flight recorder has already captured a real
// breaker-open incident — the CI incident-smoke job relies on this.
// -incident-dir persists every captured bundle to disk, and SIGQUIT
// triggers an operator-requested capture at any point while serving.
func runTelemetryServer(addr string, wait time.Duration, hostSessions int, storeDir string, faults float64, incidentDir string) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if wait > 0 {
		ctx, cancel = context.WithTimeout(ctx, wait)
		defer cancel()
	}

	var srv *copycat.TelemetryServer
	var checkpoint func()
	var rec *copycat.IncidentRecorder
	if hostSessions > 0 {
		worldCfg := copycat.DefaultWorldConfig()
		worldCfg.Cities, worldCfg.SheltersPerCity = 3, 3
		sessionCfg := copycat.SessionConfig{
			MaxSessions:   hostSessions,
			EnableTracing: true,
			IncidentDir:   incidentDir,
		}
		var host *copycat.Host
		if storeDir != "" {
			var err error
			if host, err = copycat.NewDurableDemoHost(worldCfg, sessionCfg, storeDir); err != nil {
				return err
			}
			checkpoint = func() {
				if n, err := host.Manager.Checkpoint(); err != nil {
					fmt.Fprintf(os.Stderr, "scpbench: shutdown checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "scpbench: checkpointed %d sessions to %s\n", n, storeDir)
				}
			}
		} else {
			host = copycat.NewDemoHost(worldCfg, sessionCfg)
		}
		if recovered := host.Manager.Stats().Recovered; recovered > 0 {
			fmt.Fprintf(os.Stderr, "scpbench: recovered %d sessions from %s\n", recovered, storeDir)
		} else {
			for _, tenant := range []string{"alice", "bob"} {
				sys, err := host.Create(tenant)
				if err != nil {
					return err
				}
				err = capacitySeed(sys)
				if err == nil && len(sys.Workspace.RefreshColumnSuggestions()) == 0 {
					err = fmt.Errorf("seed session for %s produced no completions", tenant)
				}
				sys.Release()
				if err != nil {
					return err
				}
			}
		}
		rec = host.Manager.Flight()
		var err error
		if srv, err = host.Serve(ctx, addr); err != nil {
			return err
		}
	} else {
		cfg := copycat.DefaultWorldConfig()
		if faults > 0 {
			cfg.FaultRate = faults
			cfg.FaultSeed = 7
		}
		sys, err := pipelineSetupWith(cfg, true)
		if err != nil {
			return err
		}
		rec = sys.FlightRecorder()
		if incidentDir != "" {
			rec.SetDir(incidentDir)
		}
		if faults > 0 {
			// Drive refreshes until a breaker opens (the injector's
			// transient bursts trip it quickly at smoke rates), so the
			// flight recorder has a breaker-open incident to serve. Under
			// faults a refresh can legitimately return zero completions, so
			// skip the completions check here.
			opened := false
			for i := 0; i < 50 && !opened; i++ {
				sys.Workspace.RefreshColumnSuggestions()
				for _, b := range sys.Breakers() {
					if b.StateName == "open" {
						opened = true
						break
					}
				}
			}
			if !opened {
				return fmt.Errorf("no breaker opened after fault-injected refreshes (rate %.2f)", faults)
			}
			fmt.Fprintf(os.Stderr, "scpbench: fault injection tripped a breaker; %d incident(s) captured\n", rec.Captured())
		} else if comps := sys.Workspace.RefreshColumnSuggestions(); len(comps) == 0 {
			return fmt.Errorf("telemetry session produced no completions")
		}
		if srv, err = sys.Serve(ctx, addr); err != nil {
			return err
		}
	}

	// SIGQUIT is the operator's "capture now" button: snapshot the flight
	// recorder's timeline into an incident bundle without stopping the
	// server.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			if id, ok := rec.Trigger(flight.TriggerSignal, "operator SIGQUIT", "", ""); ok {
				fmt.Fprintf(os.Stderr, "scpbench: SIGQUIT captured incident %s\n", id)
			} else {
				fmt.Fprintln(os.Stderr, "scpbench: SIGQUIT capture suppressed (cooldown)")
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "scpbench: telemetry server on http://%s — /metrics /healthz /readyz /slo /trace/stream /decisions /incidents /sessions /debug/pprof\n", srv.Addr())
	err := srv.Wait()
	if checkpoint != nil {
		checkpoint()
	}
	return err
}
