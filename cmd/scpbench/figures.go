package main

import (
	"context"
	"fmt"
	"strings"

	"copycat"
	"copycat/internal/engine"
	"copycat/internal/simuser"
	"copycat/internal/sourcegraph"
	"copycat/internal/webworld"
)

// expF1 re-runs the Figure 1 scenario: two pasted shelters are
// generalized into row auto-completions and the columns are typed.
func expF1() error {
	sys := copycat.NewDemoSystem(copycat.DefaultWorldConfig())
	w := sys.World
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return err
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		return err
	}
	info := sys.Workspace.RowSuggestions()
	tab := sys.Workspace.ActiveTab()
	var rows [][]string
	rows = append(rows, []string{"pasted example rows", fmt.Sprint(len(tab.ConcreteRows()))})
	rows = append(rows, []string{"suggested rows (auto-completion)", fmt.Sprint(info.Count)})
	rows = append(rows, []string{"expected (remaining shelters)", fmt.Sprint(len(w.Shelters) - 2)})
	rows = append(rows, []string{"winning hypothesis", info.Description})
	rows = append(rows, []string{"alternative hypotheses", fmt.Sprint(info.Alternatives)})
	for i, c := range tab.Schema {
		if ts, ok := sys.Workspace.RecognizedTypeFor(i); ok {
			rows = append(rows, []string{
				fmt.Sprintf("column %q semantic type", c.Name),
				fmt.Sprintf("%s (score %.2f)", ts.Type, ts.Score),
			})
		}
	}
	printTable([]string{"measure", "value"}, rows)
	fmt.Println("\npaper shape: the paste generalizes to the page's full shelter list;")
	fmt.Println("street/city columns are auto-typed PR-Street / PR-City (user labels Name).")
	printStats(sys.Stats())
	return nil
}

// expF2 re-runs the Figure 2 scenario: the Zip column completion via the
// Zipcode Resolver, with accuracy against ground truth and the tuple
// explanation.
func expF2() error {
	sys := copycat.NewDemoSystem(copycat.DefaultWorldConfig())
	w := sys.World
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return err
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		return err
	}
	if err := sys.Workspace.AcceptRows(); err != nil {
		return err
	}
	sys.Workspace.SetMode(copycat.ModeIntegration)
	comps := sys.Workspace.RefreshColumnSuggestions()
	var rows [][]string
	zipAt := -1
	for i, c := range comps {
		mark := ""
		if c.Target == "Zipcode Resolver" {
			zipAt = i
			mark = "  ← Figure 2's suggestion"
		}
		rows = append(rows, []string{fmt.Sprint(i), c.Target, c.Edge.Kind.String(),
			f("%.2f", c.Cost), fmt.Sprint(len(c.Result.Rows)) + mark})
	}
	printTable([]string{"rank", "completion target", "kind", "cost", "rows"}, rows)
	if zipAt < 0 {
		return fmt.Errorf("zip completion missing")
	}
	// Accuracy of the suggested zips.
	truth := map[string]string{}
	for _, s := range w.Shelters {
		truth[s.Name+"|"+s.Street] = s.Zip
	}
	zip := comps[zipAt]
	ni := zip.Result.Schema.Index("Shelter")
	if ni < 0 {
		ni = 0
	}
	st := zip.Result.Schema.Index("Address")
	zi := zip.Result.Schema.Index("Zip")
	correct := 0
	for _, a := range zip.Result.Rows {
		if truth[a.Row[ni].Str()+"|"+a.Row[st].Str()] == a.Row[zi].Str() {
			correct++
		}
	}
	fmt.Printf("\nzip accuracy vs ground truth: %d/%d (%.0f%%)\n",
		correct, len(zip.Result.Rows), 100*float64(correct)/float64(len(zip.Result.Rows)))
	expl, err := sys.Workspace.ExplainCompletion(zipAt, 1)
	if err != nil {
		return err
	}
	fmt.Println("\ntuple explanation pane (first row):")
	fmt.Println(expl)
	printStats(sys.Stats())
	return nil
}

// expF3 smoke-tests the Figure 3 architecture: every module runs in its
// place in the pipeline and reports a health line.
func expF3() error {
	w := webworld.Generate(webworld.DefaultConfig())
	res, err := simuser.RunShelterTask(w, webworld.StyleTable)
	if err != nil {
		return err
	}
	sys := copycat.NewDemoSystem(copycat.DefaultWorldConfig())
	var rows [][]string
	rows = append(rows, []string{"application wrappers", "browser/spreadsheet copy events with source context"})
	rows = append(rows, []string{"structure learner", "generalized 2 pasted rows to the full site"})
	rows = append(rows, []string{"model learner", fmt.Sprintf("%d builtin semantic types trained", len(sys.Types.Types()))})
	rows = append(rows, []string{"catalog", fmt.Sprintf("%d builtin services registered", sys.Catalog.Len())})
	rows = append(rows, []string{"integration learner", "column completions proposed and accepted"})
	rows = append(rows, []string{"query engine", "dependent joins executed with provenance"})
	rows = append(rows, []string{"workspace", fmt.Sprintf("final table %d×%d, %d SCP keystrokes", res.Rows, res.Cols, res.SCPKeystrokes)})
	printTable([]string{"module (Figure 3)", "status"}, rows)
	return nil
}

// expF4 materializes the Figure 4 source graph for the running example
// and lists the top queries connecting the bolded nodes (Shelters and
// Contacts).
func expF4() error {
	w := webworld.Generate(webworld.DefaultConfig())
	env := simuser.NewEnv(w, webworld.StyleTable)
	ws := env.WS
	// Import both sources so the graph has the Figure 4 shape.
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := env.Brows.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return err
	}
	if err := ws.Paste(sel); err != nil {
		return err
	}
	if err := ws.AcceptRows(); err != nil {
		return err
	}
	ws.SetColumnType(0, "PR-OrgName")
	sheetDoc := w.ContactsSpreadsheet()
	grid := sheetDoc.Grid()
	ws.SelectTab("Contacts")
	sel2 := copycat.Selection{Cells: grid[1:3], Doc: sheetDoc}
	if err := ws.Paste(sel2); err != nil {
		return err
	}
	if err := ws.AcceptRows(); err != nil {
		return err
	}
	ct := ws.ActiveTab()
	for i, c := range ct.Schema {
		switch c.Name {
		case "Organization":
			ws.SetColumnType(i, "PR-OrgName")
		case "Contact":
			ws.SetColumnType(i, "PR-PersonName")
		}
	}
	ws.Int.Graph.Discover(sourcegraph.DefaultOptions())

	var rows [][]string
	for _, e := range ws.Int.Graph.Edges() {
		rows = append(rows, []string{e.From, e.Kind.String(), e.To,
			strings.Join(e.FromCols, ","), f("%.2f", e.Cost)})
	}
	printTable([]string{"from", "kind", "to", "on", "cost"}, rows)

	ec := engine.NewExecCtx(context.Background(),
		engine.WithStats(ws.ExecStats), engine.WithServiceCache(ws.SvcCache))
	qs, err := ws.Int.TopQueriesCtx(ec, []string{"Sheet1", "Contacts"}, 3)
	if err != nil {
		return err
	}
	fmt.Println("\ntop-k queries connecting the bolded nodes (Sheet1=Shelters, Contacts):")
	for i, q := range qs {
		fmt.Printf("  %d. %s\n", i+1, q)
		for _, e := range q.Edges {
			fmt.Printf("     %s\n", e.Label())
		}
	}
	printStats(ws.ExecStats.Snapshot())
	return nil
}

// expWrapper measures E3: examples needed until correct generalization,
// per page-complexity class.
func expWrapper() error {
	w := webworld.Generate(webworld.DefaultConfig())
	var rows [][]string
	for _, style := range webworld.AllStyles() {
		n, ok := simuser.ExamplesNeeded(w, style, 15)
		status := "converged"
		if !ok {
			status = "not converged (≤15 examples)"
		}
		rows = append(rows, []string{style.String(), fmt.Sprint(n), status})
	}
	printTable([]string{"page class", "examples needed", "status"}, rows)
	fmt.Println("\npaper shape (§3.1): \"the more complex the pages are, the more")
	fmt.Println("examples may be necessary\" — the ladder should be non-decreasing")
	fmt.Println("from the clean table page toward grouped/paged/form-gated sites.")
	return nil
}
