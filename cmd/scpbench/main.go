// Command scpbench regenerates every experiment in the reproduction's
// DESIGN.md index — the paper's figures (F1–F4) re-run as measurable
// scenarios, the §5 quantitative claims (E1 keystrokes, E2 feedback
// convergence), the learner curves (E3 wrapper induction, E4 type
// recognition), the Steiner scale-up (E5), the full demo task (E6), and
// the two design ablations (A1 semantic types, A2 exact vs approximate
// Steiner).
//
//	scpbench -exp all
//	scpbench -exp keystrokes,convergence
//	scpbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"copycat"
)

// experiment is one runnable entry of the harness.
type experiment struct {
	name string
	desc string
	run  func() error
}

var experiments = []experiment{
	{"f1", "Figure 1: import mode — paste two shelters, row auto-completion + column typing", expF1},
	{"f2", "Figure 2: integration mode — suggested Zip column with tuple explanation", expF2},
	{"f3", "Figure 3: architecture — full pipeline smoke across all modules", expF3},
	{"f4", "Figure 4: source graph — associations and top-k connecting queries", expF4},
	{"keystrokes", "E1: SCP vs manual keystrokes (the Karma ~75% savings claim)", expKeystrokes},
	{"convergence", "E2: MIRA feedback convergence — single query and query family", expConvergence},
	{"wrapper", "E3: examples needed vs page complexity", expWrapper},
	{"types", "E4: semantic type recognition vs training size", expTypes},
	{"steiner", "E5: exact vs SPCSH Steiner — runtime and quality vs graph size", expSteiner},
	{"demo", "E6: full §8 demo task across site styles", expDemo},
	{"ablation-types", "A1: association discovery with vs without semantic types", expAblationTypes},
	{"ablation-steiner", "A2: exact vs approximate Steiner inside the integration learner", expAblationSteiner},
	{"matcher", "A3: approximate schema matcher on renamed, untyped columns (§4.1)", expMatcher},
	{"faults", "R1: suggestion availability and latency vs injected service fault rate", expFaults},
}

// statsMode mirrors the -stats flag: experiments that drive a workspace
// print the executor instrumentation block when it is set.
var statsMode bool

// printStats renders the executor statistics accumulated by a run.
func printStats(snap copycat.ExecStats) {
	if !statsMode {
		return
	}
	fmt.Println("\nexecutor stats (ExecCtx instrumentation):")
	fmt.Print(snap)
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	stats := flag.Bool("stats", false, "print per-operator executor stats (rows in/out, service calls, cache hits, trees pruned) after workspace-driven experiments")
	flag.Parse()
	statsMode = *stats
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-18s %s\n", e.name, e.desc)
		}
		return
	}
	want := map[string]bool{}
	for _, n := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(n)] = true
	}
	ran := 0
	for _, e := range experiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		fmt.Printf("\n================ %s ================\n%s\n\n", e.name, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "scpbench: no experiment matched %q (use -list)\n", *exp)
		os.Exit(1)
	}
}

// printTable renders rows as an aligned table with a header.
func printTable(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Printf("| %-*s ", widths[i], c)
		}
		fmt.Println("|")
	}
	line(header)
	for i := range header {
		fmt.Print("|", strings.Repeat("-", widths[i]+2))
	}
	fmt.Println("|")
	for _, r := range rows {
		line(r)
	}
}

func f(format string, v float64) string { return fmt.Sprintf(format, v) }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
