// Command scpbench regenerates every experiment in the reproduction's
// DESIGN.md index — the paper's figures (F1–F4) re-run as measurable
// scenarios, the §5 quantitative claims (E1 keystrokes, E2 feedback
// convergence), the learner curves (E3 wrapper induction, E4 type
// recognition), the Steiner scale-up (E5), the full demo task (E6), and
// the two design ablations (A1 semantic types, A2 exact vs approximate
// Steiner).
//
//	scpbench -exp all
//	scpbench -exp keystrokes,convergence
//	scpbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"copycat"
)

// experiment is one runnable entry of the harness.
type experiment struct {
	name string
	desc string
	run  func() error
}

var experiments = []experiment{
	{"f1", "Figure 1: import mode — paste two shelters, row auto-completion + column typing", expF1},
	{"f2", "Figure 2: integration mode — suggested Zip column with tuple explanation", expF2},
	{"f3", "Figure 3: architecture — full pipeline smoke across all modules", expF3},
	{"f4", "Figure 4: source graph — associations and top-k connecting queries", expF4},
	{"keystrokes", "E1: SCP vs manual keystrokes (the Karma ~75% savings claim)", expKeystrokes},
	{"convergence", "E2: MIRA feedback convergence — single query and query family", expConvergence},
	{"wrapper", "E3: examples needed vs page complexity", expWrapper},
	{"types", "E4: semantic type recognition vs training size", expTypes},
	{"steiner", "E5: exact vs SPCSH Steiner — runtime and quality vs graph size", expSteiner},
	{"demo", "E6: full §8 demo task across site styles", expDemo},
	{"ablation-types", "A1: association discovery with vs without semantic types", expAblationTypes},
	{"ablation-steiner", "A2: exact vs approximate Steiner inside the integration learner", expAblationSteiner},
	{"matcher", "A3: approximate schema matcher on renamed, untyped columns (§4.1)", expMatcher},
	{"faults", "R1: suggestion availability and latency vs injected service fault rate", expFaults},
	{"pipeline", "O1: observability — per-stage suggestion latency, tracing overhead, Chrome trace export", expPipeline},
	{"serve", "O2: telemetry serving — /metrics scrape cost and serving overhead vs unserved baseline", expServe},
	{"capacity", "C1: multi-tenant capacity — sessions vs p99/availability under a fixed memory budget with LRU eviction", expCapacity},
	{"durability", "D1: durable session store — evict/reload cost, on-disk compression ratio, crash recovery of the whole fleet", expDurability},
	{"accuracy", "Q1: suggestion-quality accuracy over the scenario corpus — precision@k, recall, MRR, feedback rounds to convergence", expAccuracy},
	{"scale", "S1: scale-out suggestion serving — first-answer p50/p99, allocs/op and SPCSH-vs-exact agreement on 1x/10x/100x worlds", expScale},
	{"flight", "O3: flight recorder — always-on incident capture overhead vs a detached recorder on the cold refresh loop", expFlight},
}

// statsMode mirrors the -stats flag: experiments that drive a workspace
// print the executor instrumentation block when it is set.
var statsMode bool

// Observability flags consumed by the pipeline experiment.
var (
	traceFile      string  // -trace: Chrome trace_event JSON destination
	benchOut       string  // -bench-out: machine-readable benchmark report
	overheadBudget float64 // -overhead-budget: fail if tracing costs more than this fraction
	jsonMode       bool    // -json: emit the final report as JSON on stdout
	warmMode       bool    // -warm: time the incremental (plan-cached) refresh loop
	coldMode       bool    // -cold: time the recompute-everything refresh loop
	baselineFile   string  // -baseline: fail if warm p99 regresses >10% vs this report
	scaleGridFlag  string  // -scale-grid: world sizes the scale experiment sweeps

	// jsonReport collects whatever the last experiment wants to expose
	// under -json; marshaled to the real stdout after all experiments ran.
	jsonReport any
)

// printStats renders the executor statistics accumulated by a run.
func printStats(snap copycat.ExecStats) {
	if !statsMode {
		return
	}
	fmt.Println("\nexecutor stats (ExecCtx instrumentation):")
	fmt.Print(snap)
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	stats := flag.Bool("stats", false, "print per-operator executor stats (rows in/out, service calls, cache hits, trees pruned) after workspace-driven experiments")
	flag.StringVar(&traceFile, "trace", "", "write a Chrome trace_event JSON of the pipeline experiment to this file")
	flag.StringVar(&benchOut, "bench-out", "", "write the pipeline experiment's machine-readable report (JSON) to this file")
	flag.Float64Var(&overheadBudget, "overhead-budget", 0, "fail the pipeline experiment if tracing overhead exceeds this fraction (e.g. 0.10); 0 disables")
	flag.BoolVar(&jsonMode, "json", false, "emit the final report as JSON on stdout (tables go to stderr)")
	flag.BoolVar(&warmMode, "warm", false, "pipeline: time the warm (incremental, plan-cached) refresh loop")
	flag.BoolVar(&coldMode, "cold", false, "pipeline: time the cold (recompute-everything) refresh loop")
	flag.StringVar(&baselineFile, "baseline", "", "pipeline: fail if the warm refresh p99 regresses >10% against this committed report (JSON)")
	flag.StringVar(&scaleGridFlag, "scale-grid", scaleDefaultGrid, "scale: comma-separated world-size multipliers to sweep (CI uses the reduced 1,10 grid)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	serveAddr := flag.String("serve", "", "drive a traced demo session and serve its live telemetry on this address (e.g. 127.0.0.1:9464) instead of running experiments")
	serveWait := flag.Duration("serve-wait", 0, "with -serve: shut the telemetry server down after this long (0 = until SIGINT/SIGTERM)")
	serveSessions := flag.Int("serve-sessions", 0, "with -serve: host a multi-tenant session manager capped at this many sessions (two tenants pre-seeded) instead of a single demo session")
	storeDir := flag.String("store-dir", "", "with -serve-sessions: back the host with a durable file store at this directory — existing sessions are recovered on boot and the fleet is checkpointed to disk on shutdown")
	serveFaults := flag.Float64("serve-faults", 0, "with -serve: wrap the demo session's services in the deterministic fault injector at this transient-error rate and drive refreshes until a breaker opens, so the flight recorder captures a real incident before serving")
	incidentDir := flag.String("incident-dir", "", "with -serve: persist flight-recorder incident bundles to this directory (bounded; oldest pruned)")
	analyzeBundle := flag.String("analyze-incident", "", "render the post-mortem timeline of an on-disk incident bundle (JSON) and exit")
	flag.Parse()
	statsMode = *stats
	if *analyzeBundle != "" {
		if err := analyzeIncident(*analyzeBundle); err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: -analyze-incident: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveAddr != "" {
		if err := runTelemetryServer(*serveAddr, *serveWait, *serveSessions, *storeDir, *serveFaults, *incidentDir); err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: -serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-18s %s\n", e.name, e.desc)
		}
		return
	}

	// Under -json the human-readable tables move to stderr so stdout
	// carries exactly one machine-readable JSON document.
	realOut := os.Stdout
	if jsonMode {
		os.Stdout = os.Stderr
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	want := map[string]bool{}
	for _, n := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(n)] = true
	}
	ran := 0
	for _, e := range experiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		fmt.Printf("\n================ %s ================\n%s\n\n", e.name, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "scpbench: no experiment matched %q (use -list)\n", *exp)
		os.Exit(1)
	}

	if *memprofile != "" {
		pf, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: %v\n", err)
			os.Exit(1)
		}
		pf.Close()
	}

	if jsonMode {
		if jsonReport == nil {
			jsonReport = map[string]string{"error": "no experiment produced a JSON report (run -exp pipeline)"}
		}
		enc := json.NewEncoder(realOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport); err != nil {
			fmt.Fprintf(os.Stderr, "scpbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// printTable renders rows as an aligned table with a header.
func printTable(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Printf("| %-*s ", widths[i], c)
		}
		fmt.Println("|")
	}
	line(header)
	for i := range header {
		fmt.Print("|", strings.Repeat("-", widths[i]+2))
	}
	fmt.Println("|")
	for _, r := range rows {
		line(r)
	}
}

func f(format string, v float64) string { return fmt.Sprintf(format, v) }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
