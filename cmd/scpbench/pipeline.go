package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"copycat"
)

// pipelineRefreshes is how many suggestion refreshes the timed loop
// runs per measurement repetition.
const pipelineRefreshes = 30

// pipelineReps is how many repetitions the overhead comparison takes
// the best of, to shave scheduler noise.
const pipelineReps = 5

// pipelineReport is the machine-readable result of the observability
// experiment — what -json prints and -bench-out persists.
type pipelineReport struct {
	Experiment   string                  `json:"experiment"`
	Refreshes    int                     `json:"refreshes"`
	Reps         int                     `json:"reps"`
	PlainNs      int64                   `json:"plain_ns"`      // best untraced loop
	TracedNs     int64                   `json:"traced_ns"`     // best traced loop
	OverheadFrac float64                 `json:"overhead_frac"` // (traced-plain)/plain
	Spans        int                     `json:"spans"`         // spans recorded by the traced session
	Metrics      copycat.MetricsSnapshot `json:"metrics"`       // unified snapshot (traced session)
	ExecStats    copycat.ExecStats       `json:"exec_stats"`    // engine counters (traced session)
	TraceFile    string                  `json:"trace_file,omitempty"`
}

// pipelineSetup drives the demo scenario up to integration mode: paste
// two shelters, accept the generalized rows, import the contacts sheet,
// and switch to integration mode. Returns the system ready for
// suggestion refreshes.
func pipelineSetup(traced bool) (*copycat.System, error) {
	return pipelineSetupWith(copycat.DefaultWorldConfig(), traced)
}

// pipelineSetupWith is pipelineSetup over an explicit world config, so
// fault-injecting callers (-serve-faults, the flight experiment's smoke
// sibling) can reuse the same scenario.
func pipelineSetupWith(cfg copycat.WorldConfig, traced bool) (*copycat.System, error) {
	sys := copycat.NewDemoSystem(cfg)
	if traced {
		sys.EnableTracing() // before the pastes, so the learn stages land in the trace
	}
	w := sys.World
	ws := sys.Workspace
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return nil, err
	}
	if err := ws.Paste(sel); err != nil {
		return nil, err
	}
	if err := ws.AcceptRows(); err != nil {
		return nil, err
	}
	// Import the contacts sheet as a second source so the Steiner search
	// leg has two terminals to connect.
	sheetDoc := w.ContactsSpreadsheet()
	grid := sheetDoc.Grid()
	ws.SelectTab("Contacts")
	if err := ws.Paste(copycat.Selection{Cells: grid[1:3], Doc: sheetDoc}); err != nil {
		return nil, err
	}
	if err := ws.AcceptRows(); err != nil {
		return nil, err
	}
	ws.SelectTab("Sheet1")
	ws.SetMode(copycat.ModeIntegration)
	return sys, nil
}

// pipelineLoop times `pipelineRefreshes` suggestion refreshes.
func pipelineLoop(sys *copycat.System) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < pipelineRefreshes; i++ {
		if comps := sys.Workspace.RefreshColumnSuggestions(); len(comps) == 0 {
			return 0, fmt.Errorf("suggestion refresh returned no completions")
		}
	}
	return time.Since(start), nil
}

// pipelineRun builds a session, optionally enables tracing, warms the
// service cache, and returns the system plus its best-of-reps loop time.
func pipelineRun(traced bool) (*copycat.System, time.Duration, error) {
	sys, err := pipelineSetup(traced)
	if err != nil {
		return nil, 0, err
	}
	if _, err := pipelineLoop(sys); err != nil { // warmup: fill the service cache
		return nil, 0, err
	}
	best := time.Duration(0)
	for r := 0; r < pipelineReps; r++ {
		d, err := pipelineLoop(sys)
		if err != nil {
			return nil, 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return sys, best, nil
}

// expPipeline is the observability experiment: it measures per-stage
// suggestion-loop latencies (p50/p95/p99 from the unified metrics
// registry), compares a traced session against an untraced one to
// quantify tracing overhead, exercises the search and rank stages so
// the exported trace shows the whole learn → search → execute → rank
// pipeline, and honors the -trace/-json/-bench-out/-overhead-budget
// flags.
func expPipeline() error {
	// -warm / -cold switch the pipeline experiment to the incremental
	// refresh comparison (P1 in EXPERIMENTS.md); without them it remains
	// the O1 observability measurement.
	if warmMode || coldMode {
		return expRefresh()
	}
	_, plain, err := pipelineRun(false)
	if err != nil {
		return err
	}
	traced, tracedDur, err := pipelineRun(true)
	if err != nil {
		return err
	}
	ws := traced.Workspace

	// Exercise the search leg (Steiner top-k over Sheet1 + Contacts) and
	// the rank leg (MIRA feedback) so their spans land in the trace.
	w := traced.World
	ws.SelectTab("Mixed")
	if err := ws.Paste(copycat.Selection{Cells: [][]string{{w.Shelters[0].Name, w.Contacts[0].Org}}}); err != nil {
		return err
	}
	ws.SelectTab("Sheet1")
	if comps := ws.RefreshColumnSuggestions(); len(comps) > 0 {
		if err := ws.RejectColumn(len(comps) - 1); err != nil {
			return err
		}
	}

	report := pipelineReport{
		Experiment:   "pipeline",
		Refreshes:    pipelineRefreshes,
		Reps:         pipelineReps,
		PlainNs:      plain.Nanoseconds(),
		TracedNs:     tracedDur.Nanoseconds(),
		OverheadFrac: float64(tracedDur-plain) / float64(plain),
		Spans:        ws.Trace().Len(),
		Metrics:      traced.Metrics(),
		ExecStats:    traced.Stats(),
	}

	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := traced.TraceTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		report.TraceFile = traceFile
		fmt.Printf("trace: %d spans written to %s (load in chrome://tracing)\n\n", report.Spans, traceFile)
	}

	var rows [][]string
	rows = append(rows, []string{"suggestion refreshes timed", fmt.Sprint(pipelineRefreshes)})
	rows = append(rows, []string{"untraced loop (best of reps)", plain.String()})
	rows = append(rows, []string{"traced loop (best of reps)", tracedDur.String()})
	rows = append(rows, []string{"tracing overhead", fmt.Sprintf("%.1f%%", 100*report.OverheadFrac)})
	rows = append(rows, []string{"spans recorded", fmt.Sprint(report.Spans)})
	printTable([]string{"measure", "value"}, rows)

	fmt.Println("\nper-stage latency (unified metrics registry):")
	for _, name := range sortedKeys(report.Metrics.Histograms) {
		h := report.Metrics.Histograms[name]
		fmt.Printf("  %-32s n=%-6d p50=%-12s p95=%-12s p99=%s\n",
			name, h.Count, h.P50(), h.P95(), h.P99())
	}
	fmt.Println("\nservice cache:")
	fmt.Printf("  entries   %.0f\n", report.Metrics.Gauges["cache.entries"])
	fmt.Printf("  hit rate  %.3f\n", report.Metrics.Gauges["cache.hit_rate"])
	fmt.Println("\ndecision log (last refresh, first 6 lines):")
	lines := traced.Why("")
	if len(lines) > 6 {
		lines = lines[len(lines)-6:]
	}
	for _, l := range lines {
		fmt.Printf("  %s\n", l)
	}

	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbenchmark report written to %s\n", benchOut)
	}
	jsonReport = report

	if overheadBudget > 0 && report.OverheadFrac > overheadBudget {
		return fmt.Errorf("tracing overhead %.1f%% exceeds budget %.1f%%",
			100*report.OverheadFrac, 100*overheadBudget)
	}
	printStats(traced.Stats())
	return nil
}
