package main

// The incremental-refresh experiment (P1 in EXPERIMENTS.md): the pipeline
// scenario's steady-state paste/feedback loop timed twice — warm, with the
// plan result cache serving unchanged candidates, and cold, with the cache
// disabled so every refresh recomputes the whole learn→search→execute→rank
// loop. Selected by the -warm/-cold flags on `-exp pipeline`; with both
// flags the report carries the reuse fraction, the wall-time speedup, and
// a warm≡cold equivalence verdict from twin sessions driven in lockstep.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"copycat"
)

// refreshModeReport is one mode's numbers over the timed reps.
type refreshModeReport struct {
	WallNs           int64 `json:"wall_ns"`           // best-of-reps workload wall time
	CandidatesRun    int64 `json:"candidates_run"`    // candidate plans actually executed
	PlansReused      int64 `json:"plans_reused"`      // candidates served from the plan cache
	PlansInvalidated int64 `json:"plans_invalidated"` // cached candidates forced to re-run
	RefreshP99Ns     int64 `json:"refresh_p99_ns"`    // latency.suggest.refresh p99 (session)
}

// refreshReport is what -bench-out persists as BENCH_4.json.
type refreshReport struct {
	Experiment string             `json:"experiment"`
	Refreshes  int                `json:"refreshes"`
	Reps       int                `json:"reps"`
	Warm       *refreshModeReport `json:"warm,omitempty"`
	Cold       *refreshModeReport `json:"cold,omitempty"`
	// ReuseFrac is warm plans_reused / (plans_reused + candidates_run):
	// the fraction of candidate plans the warm loop did not execute.
	ReuseFrac float64 `json:"reuse_frac,omitempty"`
	// Speedup is cold wall time / warm wall time.
	Speedup float64 `json:"speedup,omitempty"`
	// Equivalent reports whether warm and cold twin sessions produced
	// byte-identical suggestion lists across the whole workload.
	Equivalent bool `json:"equivalent"`
}

// refreshFeedback applies the workload's steady-state feedback: alternate
// the accepted completion between the two best suggestions, so MIRA keeps
// moving the same two edges — a recurring dirty set that exercises
// invalidation without pushing other candidates over the suggestion
// threshold.
func refreshFeedback(sys *copycat.System, comps []copycat.Completion, i int) {
	if len(comps) < 2 {
		return
	}
	j, k := i%2, (i+1)%2
	sys.Workspace.Int.AcceptCompletion(comps[j], comps[k:k+1])
}

// refreshWorkload runs `refreshes` suggestion refreshes with feedback.
func refreshWorkload(sys *copycat.System, refreshes int) error {
	for i := 0; i < refreshes; i++ {
		comps := sys.Workspace.RefreshColumnSuggestions()
		if len(comps) == 0 {
			return fmt.Errorf("refresh %d returned no completions", i)
		}
		refreshFeedback(sys, comps, i)
	}
	return nil
}

// refreshRun sets up the pipeline scenario, runs one warmup workload to
// settle the caches and the feedback oscillation, then times
// pipelineReps repetitions and returns the mode's counters.
func refreshRun(warm bool) (*refreshModeReport, error) {
	sys, err := pipelineSetup(false)
	if err != nil {
		return nil, err
	}
	if !warm {
		sys.Workspace.PlanCache = nil // cold: recompute everything, every refresh
	}
	if err := refreshWorkload(sys, pipelineRefreshes); err != nil {
		return nil, err
	}
	before := sys.Stats()
	best := time.Duration(0)
	for r := 0; r < pipelineReps; r++ {
		start := time.Now()
		if err := refreshWorkload(sys, pipelineRefreshes); err != nil {
			return nil, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	after := sys.Stats()
	rep := &refreshModeReport{
		WallNs:           best.Nanoseconds(),
		CandidatesRun:    after.CandidatesRun - before.CandidatesRun,
		PlansReused:      after.PlansReused - before.PlansReused,
		PlansInvalidated: after.PlansInvalidated - before.PlansInvalidated,
	}
	if h, ok := sys.Metrics().Histograms["latency.suggest.refresh"]; ok {
		rep.RefreshP99Ns = h.P99Ns
	}
	return rep, nil
}

// completionsDigest canonically renders a suggestion list — edge, target,
// cost, and every result row — for the warm≡cold comparison.
func completionsDigest(comps []copycat.Completion) string {
	var b strings.Builder
	for _, c := range comps {
		fmt.Fprintf(&b, "%s→%s@%.9g[", c.Edge.ID, c.Target, c.Cost)
		if c.Result != nil {
			for _, a := range c.Result.Rows {
				b.WriteString(a.Row.Key())
				b.WriteByte(';')
			}
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// refreshEquivalence drives a warm and a cold twin session through the
// identical workload, comparing the full suggestion list after every
// refresh. Any divergence fails the experiment — the cache must be
// invisible in the output.
func refreshEquivalence(refreshes int) error {
	warm, err := pipelineSetup(false)
	if err != nil {
		return err
	}
	cold, err := pipelineSetup(false)
	if err != nil {
		return err
	}
	cold.Workspace.PlanCache = nil
	for i := 0; i < refreshes; i++ {
		wc := warm.Workspace.RefreshColumnSuggestions()
		cc := cold.Workspace.RefreshColumnSuggestions()
		wd, cd := completionsDigest(wc), completionsDigest(cc)
		if wd != cd {
			return fmt.Errorf("warm/cold divergence at refresh %d:\nwarm:\n%s\ncold:\n%s", i, wd, cd)
		}
		refreshFeedback(warm, wc, i)
		refreshFeedback(cold, cc, i)
	}
	return nil
}

// expRefresh is the -warm/-cold entry point.
func expRefresh() error {
	report := refreshReport{
		Experiment: "pipeline-refresh",
		Refreshes:  pipelineRefreshes,
		Reps:       pipelineReps,
	}
	if warmMode && coldMode {
		if err := refreshEquivalence(2 * pipelineRefreshes); err != nil {
			return err
		}
		report.Equivalent = true
		fmt.Printf("warm ≡ cold: %d lockstep refreshes produced identical suggestion lists\n\n", 2*pipelineRefreshes)
	}
	var err error
	if coldMode {
		if report.Cold, err = refreshRun(false); err != nil {
			return err
		}
	}
	if warmMode {
		if report.Warm, err = refreshRun(true); err != nil {
			return err
		}
	}
	if report.Warm != nil {
		if total := report.Warm.PlansReused + report.Warm.CandidatesRun; total > 0 {
			report.ReuseFrac = float64(report.Warm.PlansReused) / float64(total)
		}
	}
	if report.Warm != nil && report.Cold != nil && report.Warm.WallNs > 0 {
		report.Speedup = float64(report.Cold.WallNs) / float64(report.Warm.WallNs)
	}

	var rows [][]string
	addMode := func(name string, m *refreshModeReport) {
		if m == nil {
			return
		}
		rows = append(rows,
			[]string{name + " wall (best of reps)", time.Duration(m.WallNs).String()},
			[]string{name + " candidates executed", fmt.Sprint(m.CandidatesRun)},
			[]string{name + " plans reused", fmt.Sprint(m.PlansReused)},
			[]string{name + " plans invalidated", fmt.Sprint(m.PlansInvalidated)},
			[]string{name + " refresh p99", time.Duration(m.RefreshP99Ns).String()},
		)
	}
	rows = append(rows, []string{"refreshes per rep", fmt.Sprint(pipelineRefreshes)})
	addMode("cold", report.Cold)
	addMode("warm", report.Warm)
	if report.ReuseFrac > 0 {
		rows = append(rows, []string{"reuse fraction", fmt.Sprintf("%.3f", report.ReuseFrac)})
	}
	if report.Speedup > 0 {
		rows = append(rows, []string{"speedup (cold/warm)", fmt.Sprintf("%.2fx", report.Speedup)})
	}
	printTable([]string{"measure", "value"}, rows)

	if baselineFile != "" && report.Warm != nil {
		if err := checkRefreshBaseline(baselineFile, report.Warm.RefreshP99Ns); err != nil {
			return err
		}
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbenchmark report written to %s\n", benchOut)
	}
	jsonReport = report
	return nil
}

// checkRefreshBaseline fails if the measured warm-refresh p99 regressed
// more than 10% against the committed baseline report.
func checkRefreshBaseline(path string, p99Ns int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var base refreshReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Warm == nil || base.Warm.RefreshP99Ns <= 0 {
		return fmt.Errorf("baseline %s has no warm refresh p99", path)
	}
	limit := base.Warm.RefreshP99Ns + base.Warm.RefreshP99Ns/10
	if p99Ns > limit {
		return fmt.Errorf("warm refresh p99 %s regressed >10%% against baseline %s (limit %s)",
			time.Duration(p99Ns), time.Duration(base.Warm.RefreshP99Ns), time.Duration(limit))
	}
	fmt.Printf("baseline check: warm p99 %s within 10%% of committed %s\n",
		time.Duration(p99Ns), time.Duration(base.Warm.RefreshP99Ns))
	return nil
}
