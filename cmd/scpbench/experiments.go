package main

import (
	"fmt"
	"math/rand"
	"time"

	"copycat/internal/catalog"
	"copycat/internal/modellearn"
	"copycat/internal/simuser"
	"copycat/internal/sourcegraph"
	"copycat/internal/steiner"
	"copycat/internal/table"
	"copycat/internal/webworld"
)

// expKeystrokes measures E1: SCP keystrokes vs the manual baselines for
// the full demo table, per site style.
func expKeystrokes() error {
	w := webworld.Generate(webworld.DefaultConfig())
	var rows [][]string
	for _, style := range []webworld.SiteStyle{
		webworld.StyleTable, webworld.StyleGrouped, webworld.StylePaged, webworld.StyleForm,
	} {
		res, err := simuser.RunShelterTask(w, style)
		if err != nil {
			rows = append(rows, []string{style.String(), "-", "-", "-", "-", "error: " + err.Error()})
			continue
		}
		rows = append(rows, []string{
			style.String(),
			fmt.Sprint(res.SCPKeystrokes),
			fmt.Sprint(res.ManualCopyPaste),
			fmt.Sprint(res.ManualTyping),
			f("%.0f%%", res.SavingsVsCopying*100),
			fmt.Sprintf("%d×%d", res.Rows, res.Cols),
		})
	}
	printTable([]string{"site style", "SCP keys", "manual c&p", "manual typing", "savings vs c&p", "table"}, rows)
	fmt.Println("\npaper claim (§5, Karma [36]): auto-completions saved ~75% of keystrokes")
	fmt.Println("vs manual copy-and-paste integration. Expect savings ≥ 75% everywhere.")
	return nil
}

// expConvergence measures E2: feedback items to fix one query, and
// held-out family accuracy after training on k queries.
func expConvergence() error {
	res, err := simuser.MeasureConvergence(20, 10)
	if err != nil {
		return err
	}
	fmt.Printf("single-query convergence: %d feedback item(s) (paper: \"as little as one\")\n\n", res.SingleQueryFeedback)
	var rows [][]string
	for _, trainN := range []int{0, 1, 2, 5, 10, 15} {
		fam := simuser.BuildFamily(20)
		for i := 0; i < trainN; i++ {
			if _, err := fam.TrainOn(fam.Sources[i]); err != nil {
				return err
			}
		}
		acc, err := fam.FamilyAccuracy(fam.Sources[trainN:])
		if err != nil {
			return err
		}
		rows = append(rows, []string{fmt.Sprint(trainN), f("%.0f%%", acc*100)})
	}
	printTable([]string{"queries trained on", "held-out family accuracy"}, rows)
	fmt.Println("\npaper claim (§5, Q [34]): one feedback item fixes a single query;")
	fmt.Println("feedback on 10 queries learns rankings for an entire query family.")
	return nil
}

// expTypes measures E4: recognition accuracy vs training rows, plus
// cross-source transfer.
func expTypes() error {
	w := webworld.Generate(webworld.Config{
		Seed: 9, Cities: 8, SheltersPerCity: 8, ContactsNoise: 0.5, Supplies: 10, Roads: 10,
	})
	columns := map[string][]string{}
	for _, s := range w.Shelters {
		columns[modellearn.TypeStreet] = append(columns[modellearn.TypeStreet], s.Street)
		columns[modellearn.TypeCity] = append(columns[modellearn.TypeCity], s.City)
		columns[modellearn.TypeZip] = append(columns[modellearn.TypeZip], s.Zip)
		columns[modellearn.TypePhone] = append(columns[modellearn.TypePhone], s.Phone)
		columns[modellearn.TypeOrgName] = append(columns[modellearn.TypeOrgName], s.Name)
	}
	var rows [][]string
	for _, trainN := range []int{2, 5, 10, 20, 40} {
		lib := modellearn.NewLibrary()
		for ty, vals := range columns {
			n := trainN
			if n > len(vals)/2 {
				n = len(vals) / 2
			}
			lib.Learn(ty, vals[:n])
		}
		correct, total := 0, 0
		for ty, vals := range columns {
			test := vals[len(vals)/2:]
			// Recognize in batches of 5 values, as a pasted column would be.
			for i := 0; i+5 <= len(test); i += 5 {
				total++
				scores := lib.Recognize(test[i : i+5])
				if len(scores) > 0 && scores[0].Type == ty {
					correct++
				}
			}
		}
		rows = append(rows, []string{fmt.Sprint(trainN), fmt.Sprintf("%d/%d", correct, total),
			f("%.0f%%", 100*float64(correct)/float64(total))})
	}
	printTable([]string{"training rows per type", "correct top-1 columns", "accuracy"}, rows)
	fmt.Println("\npaper shape (§3.2): pattern-distribution matching is robust on new")
	fmt.Println("sources that don't precisely match training — accuracy should rise")
	fmt.Println("quickly with a handful of training rows and then plateau high.")
	return nil
}

// expSteiner measures E5: runtime and solution quality, exact vs SPCSH,
// as the source graph grows.
func expSteiner() error {
	rng := rand.New(rand.NewSource(5))
	var rows [][]string
	for _, n := range []int{8, 16, 32, 64, 128, 200} {
		g := randomGraph(rng, n)
		terms := rng.Perm(n)[:4]
		t0 := time.Now()
		ex, okEx := steiner.Exact(g, terms, nil)
		exactTime := time.Since(t0)
		t0 = time.Now()
		ap, okAp := steiner.SPCSH(g, terms, nil)
		approxTime := time.Since(t0)
		if !okEx || !okAp {
			rows = append(rows, []string{fmt.Sprint(n), "-", "-", "-", "-", "disconnected"})
			continue
		}
		ratio := ap.Cost / ex.Cost
		rows = append(rows, []string{
			fmt.Sprint(n),
			exactTime.Round(time.Microsecond).String(),
			approxTime.Round(time.Microsecond).String(),
			f("%.1f", ex.Cost), f("%.1f", ap.Cost), f("%.3f", ratio),
		})
	}
	printTable([]string{"graph nodes", "exact time", "SPCSH time", "exact cost", "SPCSH cost", "ratio"}, rows)
	fmt.Println("\npaper shape (§4.2, [34]): exact top-k is practical on the small,")
	fmt.Println("query-driven graphs CopyCat sees; SPCSH stays near-optimal (ratio ≈ 1,")
	fmt.Println("bounded by 2) while scaling to larger graphs with flat runtime.")
	return nil
}

func randomGraph(rng *rand.Rand, n int) *steiner.Graph {
	g := steiner.NewGraph(n)
	// Ring for connectivity plus random chords.
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1+float64(rng.Intn(5)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+float64(rng.Intn(9)))
		}
	}
	return g
}

// expDemo runs E6: the full demo task per style, reporting final table
// shape and effort.
func expDemo() error {
	w := webworld.Generate(webworld.DefaultConfig())
	var rows [][]string
	for _, style := range []webworld.SiteStyle{
		webworld.StyleTable, webworld.StyleGrouped, webworld.StylePaged, webworld.StyleForm,
	} {
		res, err := simuser.RunShelterTask(w, style)
		if err != nil {
			rows = append(rows, []string{style.String(), "error: " + err.Error(), "", ""})
			continue
		}
		rows = append(rows, []string{style.String(),
			fmt.Sprintf("%d×%d", res.Rows, res.Cols),
			fmt.Sprint(res.SCPKeystrokes),
			f("%.0f%%", res.SavingsVsCopying*100)})
	}
	printTable([]string{"site style", "final table", "SCP keystrokes", "savings"}, rows)
	return nil
}

// expAblationTypes measures A1: association discovery with vs without
// the semantic-type constraint.
func expAblationTypes() error {
	w := webworld.Generate(webworld.DefaultConfig())
	env := simuser.NewEnv(w, webworld.StyleTable)
	// Import shelters and contacts so both relations are in the catalog.
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := env.Brows.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City}, {s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return err
	}
	if err := env.WS.Paste(sel); err != nil {
		return err
	}
	if err := env.WS.AcceptRows(); err != nil {
		return err
	}
	env.WS.SetColumnType(0, modellearn.TypeOrgName)
	cat := env.WS.Cat

	count := func(opts sourcegraph.Options) (edges, pairs int) {
		g := sourcegraph.New(cat)
		g.Discover(opts)
		for _, e := range g.Edges() {
			edges++
			pairs += len(e.FromCols)
		}
		return edges, pairs
	}
	withEdges, withPairs := count(sourcegraph.DefaultOptions())
	woEdges, woPairs := count(sourcegraph.Options{UseSemTypes: false})
	printTable([]string{"variant", "association edges", "matched attribute pairs"}, [][]string{
		{"with semantic types", fmt.Sprint(withEdges), fmt.Sprint(withPairs)},
		{"without (kind-compatibility only)", fmt.Sprint(woEdges), fmt.Sprint(woPairs)},
	})
	fmt.Println("\npaper shape (§4.1): \"the use of semantic types helps constrain the")
	fmt.Println("possible edges\" — expect far fewer candidate pairs with types on.")
	return nil
}

// expAblationSteiner measures A2: exact vs approximate Steiner as the
// integration learner's query finder — quality of the top answer.
func expAblationSteiner() error {
	rng := rand.New(rand.NewSource(13))
	var rows [][]string
	for _, n := range []int{10, 20, 40, 80} {
		optimalHits, trials := 0, 20
		var ratioSum float64
		for t := 0; t < trials; t++ {
			g := randomGraph(rng, n)
			terms := rng.Perm(n)[:3]
			ex, ok1 := steiner.Exact(g, terms, nil)
			ap, ok2 := steiner.Approx(0.2)(g, terms, nil)
			if !ok1 || !ok2 {
				continue
			}
			if ap.Cost <= ex.Cost+1e-9 {
				optimalHits++
			}
			ratioSum += ap.Cost / ex.Cost
		}
		rows = append(rows, []string{fmt.Sprint(n),
			fmt.Sprintf("%d/%d", optimalHits, trials),
			f("%.3f", ratioSum/float64(trials))})
	}
	printTable([]string{"graph nodes", "approx found optimum", "mean cost ratio"}, rows)
	fmt.Println("\nexpected: the approximation finds the optimal query most of the time;")
	fmt.Println("when it misses, the cost ratio stays close to 1 (≤ 2 guaranteed).")
	return nil
}

// expMatcher exercises the §4.1 future-work schema matcher: renamed,
// untyped columns that only approximate matching can associate.
func expMatcher() error {
	w := webworld.Generate(webworld.DefaultConfig())
	cat := catalogWithRenamedSources(w)
	plain := sourcegraph.New(cat)
	plain.Discover(sourcegraph.DefaultOptions())
	matched := sourcegraph.New(cat)
	matched.Discover(sourcegraph.MatcherOptions())
	var rows [][]string
	rows = append(rows, []string{"default rules (name/type equality)", fmt.Sprint(plain.Len())})
	rows = append(rows, []string{"with approximate matcher", fmt.Sprint(matched.Len())})
	printTable([]string{"discovery variant", "association edges"}, rows)
	fmt.Println("\nmatcher-derived edges (confidence → initial cost):")
	for _, e := range matched.Edges() {
		fmt.Printf("  %s\n", e.Label())
	}
	fmt.Println("\npaper (§4.1): approximate attribute matchings \"would be initialized")
	fmt.Println("with an edge weight that is derived from the schema matcher's")
	fmt.Println("confidence score\" — edges above carry those derived costs.")
	return nil
}

func catalogWithRenamedSources(w *webworld.World) *catalog.Catalog {
	cat := catalog.New()
	a := table.NewRelation("TVShelters", table.NewSchema("Name", "Street", "City"))
	for _, s := range w.Shelters {
		a.MustAppend(table.FromStrings([]string{s.Name, s.Street, s.City}))
	}
	b := table.NewRelation("CountyDepots", table.NewSchema("depot_name", "town", "item"))
	for _, s := range w.Supplies {
		b.MustAppend(table.FromStrings([]string{s.Depot, s.City, s.Item}))
	}
	cat.AddRelation(a, "tv")
	cat.AddRelation(b, "county")
	return cat
}
