package main

// The session-capacity experiment (C1 in EXPERIMENTS.md): a multi-tenant
// host serving a growing fleet of sessions from a fixed memory budget,
// hammered by a worker pool doing attach → suggestion refresh → release.
// As the fleet outgrows the budget the LRU evictor pushes idle sessions
// to their snapshots and attaches transparently reload them, so the
// curve shows where eviction churn starts to tax the p99 and whether
// availability holds at the knee. `-bench-out BENCH_6.json` persists the
// curve; `-baseline BENCH_6.json` is the bench-check regression gate.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"copycat"
)

// capacityBudget is the fixed aggregate memory budget every grid point
// runs under. Small enough that the largest fleet cannot stay resident
// (steady eviction/reload churn at the knee), large enough that the
// smallest fleet never evicts.
const capacityBudget = 2 << 20

// capacityWorkers is the attach/refresh/release worker pool size.
const capacityWorkers = 8

// capacityOpsPerWorker is how many operations each worker performs per
// grid point.
const capacityOpsPerWorker = 50

// capacityFleets is the session-count grid.
var capacityFleets = []int{4, 16, 48}

// capacityPoint is one fleet size's measurements.
type capacityPoint struct {
	Sessions  int     `json:"sessions"`
	Workers   int     `json:"workers"`
	Attempts  int64   `json:"attempts"`     // attach+refresh operations attempted
	Successes int64   `json:"successes"`    // operations that returned suggestions
	Avail     float64 `json:"availability"` // successes / attempts
	P50Ns     int64   `json:"attach_refresh_p50_ns"`
	P99Ns     int64   `json:"attach_refresh_p99_ns"`
	Evictions int64   `json:"evictions"`          // sessions pushed to snapshots
	Reloads   int64   `json:"reloads"`            // transparent reloads on attach
	Rejected  int64   `json:"admission_rejected"` // creates shed at the full table
	Resident  int     `json:"resident"`           // resident sessions after quiescence
	ResidentB int64   `json:"resident_bytes"`     // estimated resident footprint
}

// capacityReport is what -bench-out persists as BENCH_6.json.
type capacityReport struct {
	Experiment   string          `json:"experiment"`
	MemoryBudget int64           `json:"memory_budget_bytes"`
	Points       []capacityPoint `json:"points"`
}

// capacitySeed drives a freshly created session to integration mode so
// refreshes have suggestions to produce and snapshots are non-trivial:
// paste two shelters, accept the generalized rows, import the contacts
// sheet, switch modes.
func capacitySeed(sys *copycat.System) error {
	w := sys.World
	ws := sys.Workspace
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return err
	}
	if err := ws.Paste(sel); err != nil {
		return err
	}
	if err := ws.AcceptRows(); err != nil {
		return err
	}
	sheetDoc := w.ContactsSpreadsheet()
	grid := sheetDoc.Grid()
	ws.SelectTab("Contacts")
	if err := ws.Paste(copycat.Selection{Cells: grid[1:3], Doc: sheetDoc}); err != nil {
		return err
	}
	if err := ws.AcceptRows(); err != nil {
		return err
	}
	ws.SelectTab("Sheet1")
	ws.SetMode(copycat.ModeIntegration)
	return nil
}

// capacityRun measures one fleet size: build a host capped at exactly
// that many sessions, seed the fleet, then run the worker pool.
func capacityRun(worldCfg copycat.WorldConfig, fleet int) (*capacityPoint, error) {
	host := copycat.NewDemoHost(worldCfg, copycat.SessionConfig{
		MaxSessions:  fleet,
		MemoryBudget: capacityBudget,
	})

	ids := make([]string, fleet)
	for i := range ids {
		sys, err := host.Create(fmt.Sprintf("tenant%02d", i%8))
		if err != nil {
			return nil, fmt.Errorf("create %d: %w", i, err)
		}
		if err := capacitySeed(sys); err != nil {
			sys.Release()
			return nil, fmt.Errorf("seed %d: %w", i, err)
		}
		ids[i] = sys.Session.ID()
		sys.Release()
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		attempts  int64
		successes int64
		firstErr  error
	)
	var wg sync.WaitGroup
	for g := 0; g < capacityWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(fleet)*1000 + int64(g)))
			local := make([]time.Duration, 0, capacityOpsPerWorker)
			var localAttempts, localOK int64
			for op := 0; op < capacityOpsPerWorker; op++ {
				if op%10 == 9 {
					// The table is full by construction: this create must be
					// shed by admission control, not grow the fleet.
					if _, err := host.Create("overflow"); err == nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = errors.New("create over the session cap was admitted")
						}
						mu.Unlock()
					}
					continue
				}
				id := ids[rng.Intn(len(ids))]
				localAttempts++
				start := time.Now()
				sys, err := host.Attach(id)
				if err != nil {
					continue
				}
				n := len(sys.Workspace.RefreshColumnSuggestions())
				sys.Release()
				local = append(local, time.Since(start))
				if n > 0 {
					localOK++
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			attempts += localAttempts
			successes += localOK
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) int64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx].Nanoseconds()
	}
	st := host.Manager.Stats()
	pt := &capacityPoint{
		Sessions:  fleet,
		Workers:   capacityWorkers,
		Attempts:  attempts,
		Successes: successes,
		P50Ns:     pct(0.50),
		P99Ns:     pct(0.99),
		Evictions: st.Evictions,
		Reloads:   st.Reloads,
		Rejected:  st.Rejected,
		Resident:  st.Resident,
		ResidentB: st.ResidentBytes,
	}
	if attempts > 0 {
		pt.Avail = float64(successes) / float64(attempts)
	}
	return pt, nil
}

// expCapacity runs the full fleet-size grid and renders the capacity
// curve; honors -json/-bench-out/-baseline.
func expCapacity() error {
	worldCfg := copycat.DefaultWorldConfig()
	worldCfg.Cities, worldCfg.SheltersPerCity = 3, 3

	report := capacityReport{Experiment: "session-capacity", MemoryBudget: capacityBudget}
	for _, fleet := range capacityFleets {
		pt, err := capacityRun(worldCfg, fleet)
		if err != nil {
			return fmt.Errorf("fleet %d: %w", fleet, err)
		}
		report.Points = append(report.Points, *pt)
	}

	var rows [][]string
	for _, pt := range report.Points {
		rows = append(rows, []string{
			fmt.Sprint(pt.Sessions),
			fmt.Sprintf("%.4f", pt.Avail),
			time.Duration(pt.P50Ns).String(),
			time.Duration(pt.P99Ns).String(),
			fmt.Sprint(pt.Evictions),
			fmt.Sprint(pt.Reloads),
			fmt.Sprint(pt.Rejected),
			fmt.Sprintf("%d (%dKiB)", pt.Resident, pt.ResidentB>>10),
		})
	}
	printTable([]string{"sessions", "availability", "p50", "p99", "evictions", "reloads", "shed", "resident"}, rows)

	if baselineFile != "" {
		if err := checkCapacityBaseline(baselineFile, &report); err != nil {
			return err
		}
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nbenchmark report written to %s\n", benchOut)
	}
	jsonReport = report
	return nil
}

// checkCapacityBaseline is the bench-check gate for the capacity curve.
// Wall-clock latency is too machine-dependent to gate in CI, so the gate
// holds the curve's structural invariants instead: the measured grid
// must match the committed one, availability must stay ≥ 99% at every
// point including the knee, and the over-budget points must actually
// churn (evictions and transparent reloads observed).
func checkCapacityBaseline(path string, got *capacityReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var base capacityReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(base.Points) != len(got.Points) {
		return fmt.Errorf("baseline %s has %d points, measured %d", path, len(base.Points), len(got.Points))
	}
	var churn bool
	for i, pt := range got.Points {
		if pt.Sessions != base.Points[i].Sessions {
			return fmt.Errorf("grid drift: point %d is %d sessions, baseline %d",
				i, pt.Sessions, base.Points[i].Sessions)
		}
		if pt.Avail < 0.99 {
			return fmt.Errorf("availability %.4f at %d sessions below the 99%% floor", pt.Avail, pt.Sessions)
		}
		if pt.Rejected == 0 {
			return fmt.Errorf("no admission rejections at %d sessions: the cap is not enforced", pt.Sessions)
		}
		if pt.Evictions > 0 && pt.Reloads > 0 {
			churn = true
		}
	}
	if !churn {
		return errors.New("no grid point showed eviction+reload churn: the budget no longer binds")
	}
	fmt.Printf("baseline check: availability ≥ 99%% across %d fleet sizes, churn observed at the knee\n",
		len(got.Points))
	return nil
}
