// Package copycat is the public API of the CopyCat smart-copy-and-paste
// (SCP) data integration system — a from-scratch reproduction of the
// CIDR 2009 paper "Interactive Data Integration through Smart Copy &
// Paste" (Ives, Knoblock, Minton, et al.).
//
// CopyCat watches as a user copies data from applications — web pages,
// spreadsheets, documents — and pastes it into a spreadsheet-like
// workspace. It generalizes each paste into extraction rules (row
// auto-completions), learns the semantic types of pasted columns,
// proposes column auto-completions via associations to other sources and
// services (joins, dependent joins, record linking), explains every
// suggested tuple with data provenance, and learns from accept/reject
// feedback using the MIRA online algorithm over a weighted source graph.
//
// A minimal session:
//
//	sys := copycat.NewDemoSystem(copycat.DefaultWorldConfig())
//	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
//	sel, _ := browser.CopyRows([][]string{{name1, street1, city1}, {name2, street2, city2}})
//	sys.Workspace.Paste(sel)          // rows auto-complete, columns get typed
//	sys.Workspace.AcceptRows()        // commit the import
//	sys.Workspace.SetMode(copycat.ModeIntegration)
//	cols := sys.Workspace.RefreshColumnSuggestions()
//	sys.Workspace.AcceptColumn(0)     // e.g. the suggested Zip column
//	kml, _ := copycat.KML(sys.Workspace.ActiveTab().Relation())
package copycat

import (
	"context"
	"fmt"
	"io"
	"time"

	"copycat/internal/catalog"
	"copycat/internal/docmodel"
	"copycat/internal/engine"
	"copycat/internal/export"
	"copycat/internal/intlearn"
	"copycat/internal/modellearn"
	"copycat/internal/obs"
	"copycat/internal/obs/flight"
	"copycat/internal/obs/serve"
	"copycat/internal/plancache"
	"copycat/internal/resilience"
	"copycat/internal/services"
	"copycat/internal/session"
	"copycat/internal/table"
	"copycat/internal/webworld"
	"copycat/internal/workspace"
	"copycat/internal/wrappers"
)

// Re-exported core types. The internal packages hold the implementations;
// these aliases form the supported public surface.
type (
	// Workspace is the SCP workspace: tabs, modes, pastes, suggestions,
	// feedback, and explanations.
	Workspace = workspace.Workspace
	// Tab is one workspace pane.
	Tab = workspace.Tab
	// Mode is the workspace interaction mode.
	Mode = workspace.Mode
	// Selection is a copied block of cells with its source context.
	Selection = docmodel.Selection
	// Document is a source document (HTML page, spreadsheet, text).
	Document = docmodel.Document
	// Site is a set of linked documents from one source.
	Site = docmodel.Site
	// Browser is the web-browser application wrapper.
	Browser = wrappers.Browser
	// Spreadsheet is the Excel-like application wrapper.
	Spreadsheet = wrappers.Spreadsheet
	// Catalog is the system catalog of sources and services.
	Catalog = catalog.Catalog
	// TypeLibrary holds learned semantic types.
	TypeLibrary = modellearn.Library
	// Relation is an in-memory table.
	Relation = table.Relation
	// Schema is an ordered list of typed columns.
	Schema = table.Schema
	// Service is a callable source with input binding restrictions.
	Service = engine.Service
	// ExecCtx is the execution context threaded through plan execution:
	// deadline/cancellation, row budget, service cache, and stats.
	ExecCtx = engine.ExecCtx
	// ExecStats is a point-in-time copy of executor instrumentation.
	ExecStats = engine.StatsSnapshot
	// Completion is one proposed column auto-completion.
	Completion = intlearn.Completion
	// PlanCache is the fingerprint-keyed candidate-plan result cache
	// behind incremental suggestion refresh.
	PlanCache = plancache.Cache
	// MetricsSnapshot is the unified, JSON-serializable metrics surface:
	// counters, gauges, and latency histograms with p50/p95/p99.
	MetricsSnapshot = obs.Snapshot
	// Trace is the pipeline span tracer (Chrome trace_event exportable).
	Trace = obs.Trace
	// Decision is one decision-log entry: why a candidate was pruned,
	// degraded, suggested, outranked, accepted, or rejected.
	Decision = obs.Decision
	// SLOStatus is the latency objective's point-in-time report:
	// windowed error rates, fast/slow burn rates, and alert states.
	SLOStatus = obs.SLOStatus
	// BreakerStatus is one service circuit breaker's state and trip
	// count, as exported by the telemetry server.
	BreakerStatus = resilience.BreakerStatus
	// TelemetryServer is the live telemetry HTTP server started by
	// System.Serve: /metrics, /healthz, /readyz, /slo, /trace/stream,
	// /decisions, and /debug/pprof.
	TelemetryServer = serve.Server
	// WorldConfig sizes the synthetic demo world.
	WorldConfig = webworld.Config
	// World is the generated synthetic world.
	World = webworld.World
	// SiteStyle selects the shelter site's page complexity.
	SiteStyle = webworld.SiteStyle
	// Session is the handle all of a user's mutable state hangs off —
	// the unit of multi-tenant hosting, eviction, and reload.
	Session = session.Session
	// SessionState is the state bundle a session owns (workspace,
	// catalog, type library).
	SessionState = session.State
	// SessionFactory builds fresh session state for creates and reloads.
	SessionFactory = session.Factory
	// SessionManager hosts many concurrent sessions with LRU eviction
	// and admission control.
	SessionManager = session.Manager
	// SessionConfig sizes a SessionManager.
	SessionConfig = session.Config
	// SessionInfo describes one hosted session.
	SessionInfo = session.Info
	// SessionStats is the manager-level counter block.
	SessionStats = session.HostStats
	// SessionStore persists evicted sessions' snapshots.
	SessionStore = session.Store
	// SessionFileStore is the durable snapshot tier: one
	// gzip-compressed, CRC-checked file per snapshot, written
	// atomically, with corrupt files quarantined instead of poisoning
	// reloads.
	SessionFileStore = session.FileStore
	// SessionStoreStats reports a snapshot store's contents and health.
	SessionStoreStats = session.StoreStats
	// QualityStats is the rolling suggestion-quality report: acceptance
	// rate, per-surface accept/reject counts, rank-of-accepted
	// histogram, and feedback rounds to accept.
	QualityStats = obs.QualityStats
	// QualityReport is the /quality response body: host-level
	// QualityStats plus a per-tenant breakdown on hosted installations.
	QualityReport = serve.QualityReport
	// IncidentRecorder is the always-on flight recorder: it retains the
	// recent spans, decisions, metric snapshots, and lifecycle events,
	// and captures self-contained incident bundles when a trigger rule
	// (SLO fast-burn, breaker open, eviction failure, refine failure,
	// store quarantine, SIGQUIT) fires.
	IncidentRecorder = flight.Recorder
	// Incident is one captured incident bundle: trigger, pre/post metric
	// snapshots with counter deltas, the retained timeline, per-session
	// and per-tenant attribution, and runtime stats.
	Incident = flight.Incident
	// IncidentSummary describes one captured incident (the GET /incidents
	// list and the REPL :incidents table).
	IncidentSummary = flight.Summary
)

// Session lifecycle sentinels (admission rejections and pin conflicts).
var (
	// ErrSessionNotFound reports an unknown or destroyed session ID.
	ErrSessionNotFound = session.ErrNotFound
	// ErrSessionBusy reports an evict attempt on a pinned session.
	ErrSessionBusy = session.ErrBusy
	// ErrHostCapacity reports a create shed because the session table
	// is full.
	ErrHostCapacity = session.ErrCapacity
	// ErrHostOverloaded reports a create shed by the SLO/breaker-driven
	// admission control.
	ErrHostOverloaded = session.ErrOverloaded
)

// NewSessionManager builds a multi-tenant session manager; see
// SessionConfig for the caps and substrate handles.
func NewSessionManager(cfg SessionConfig) *SessionManager { return session.NewManager(cfg) }

// Workspace modes.
const (
	ModeImport      = workspace.ModeImport
	ModeIntegration = workspace.ModeIntegration
	ModeCleaning    = workspace.ModeCleaning
)

// Shelter-site complexity styles (the E3 ladder).
const (
	StyleTable   = webworld.StyleTable
	StyleList    = webworld.StyleList
	StyleGrouped = webworld.StyleGrouped
	StylePaged   = webworld.StylePaged
	StyleForm    = webworld.StyleForm
	StyleProse   = webworld.StyleProse
)

// System bundles a workspace with its catalog, type library, and (for
// demo installations) the synthetic world. Since the session refactor a
// System is a thin view over one Session handle: NewSystem and
// NewDemoSystem wrap a standalone (unmanaged, never-evicted) session,
// while Host hands out Systems over managed sessions — the library API
// and the multi-tenant service share one state model.
type System struct {
	Workspace *Workspace
	Catalog   *Catalog
	Types     *TypeLibrary
	// World is non-nil for demo systems built with NewDemoSystem.
	World *World
	// Clock is the virtual clock driving injected latency, backoff, and
	// breaker cooldowns when the demo system was built with a positive
	// FaultRate; nil otherwise. Its elapsed time is the experiment's
	// simulated latency.
	Clock *resilience.VirtualClock
	// Session is the handle owning this system's mutable state — a
	// standalone handle for NewSystem/NewDemoSystem, a managed one for
	// systems attached through a Host.
	Session *Session
}

// systemFor wraps a session's state in the System facade.
func systemFor(s *Session, world *World) *System {
	st := s.State()
	sys := &System{
		Workspace: st.Workspace,
		Catalog:   st.Catalog,
		Types:     st.Types,
		World:     world,
		Session:   s,
	}
	if vc, ok := st.Workspace.Clock.(*resilience.VirtualClock); ok {
		sys.Clock = vc
	}
	return sys
}

// NewSystem creates an empty CopyCat installation: no sources, no
// services, no trained types. Callers register services and train types
// themselves.
func NewSystem() *System {
	cat := catalog.New()
	types := modellearn.NewLibrary()
	st := &session.State{Workspace: workspace.New(cat, types), Catalog: cat, Types: types}
	return systemFor(session.NewStandalone("local", st), nil)
}

// DefaultWorldConfig returns the standard demo world sizing.
func DefaultWorldConfig() WorldConfig { return webworld.DefaultConfig() }

// newDemoState builds one session's worth of demo state over a shared
// synthetic world: catalog with builtin services (fault-wrapped when
// cfg.FaultRate > 0), pre-trained type library, fresh workspace with
// the resilience layer and virtual clock wired when faults are on.
func newDemoState(w *webworld.World, cfg WorldConfig) *session.State {
	cat := catalog.New()
	svcs := services.Builtin(w)
	var clock *resilience.VirtualClock
	if cfg.FaultRate > 0 {
		clock = resilience.NewVirtualClock()
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		svcs = services.WrapFlaky(svcs, services.FaultConfig{
			Seed:             seed,
			TransientRate:    cfg.FaultRate,
			BaseLatency:      2 * time.Millisecond,
			LatencySpikeRate: cfg.FaultRate / 4,
			LatencySpike:     250 * time.Millisecond,
			Clock:            clock,
		})
	}
	for _, svc := range svcs {
		cat.AddService(svc, "builtin")
	}
	types := modellearn.NewLibrary()
	modellearn.TrainBuiltins(types, w)
	ws := workspace.New(cat, types)
	if cfg.FaultRate > 0 {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		policy := resilience.DefaultPolicy()
		policy.Seed = seed
		policy.Clock = clock
		ws.Resilience = resilience.NewCaller(policy, resilience.DefaultBreakerConfig())
		wireBreakerIncidents(ws)
	}
	if clock != nil {
		// Stage latencies and traces run on the same virtual clock as the
		// injected faults, keeping the whole session deterministic.
		ws.Clock = clock
	}
	return &session.State{Workspace: ws, Catalog: cat, Types: types}
}

// wireBreakerIncidents points the resilience caller's breaker
// transitions at the workspace's flight recorder: every transition
// becomes a lifecycle event in the retained timeline, and a breaker
// opening triggers an incident capture. The closure reads ws.Flight()
// per transition, so a session manager that later swaps in the shared
// host recorder (SetFlight) redirects the feed too.
func wireBreakerIncidents(ws *Workspace) {
	if ws.Resilience == nil {
		return
	}
	ws.Resilience.SetBreakerTransitionHook(func(service string, from, to resilience.BreakerState) {
		rec := ws.Flight()
		detail := fmt.Sprintf("%s: %s -> %s", service, from, to)
		rec.RecordEvent(flight.EventBreaker, ws.SessionID, "", detail)
		if to == resilience.BreakerOpen {
			rec.Trigger(flight.TriggerBreakerOpen, detail, ws.SessionID, "")
		}
	})
}

// NewDemoSystem creates a CopyCat installation wired to a synthetic
// hurricane-relief world: builtin services (zip resolver, geocoder,
// shelter locator, reverse directory, converters) are registered and the
// builtin semantic types are pre-trained — the "previously learned
// knowledge" the prototype ships with.
//
// When cfg.FaultRate is positive, every builtin service is wrapped in a
// deterministic fault injector (seeded transient errors and latency
// spikes on a virtual clock) and the workspace gets a resilience layer —
// retries, circuit breakers, graceful row degradation — so the system
// behaves like the paper's live Google/Yahoo-backed prototype on a bad
// network day, reproducibly. With FaultRate 0 the system is identical to
// a plain demo system.
func NewDemoSystem(cfg WorldConfig) *System {
	w := webworld.Generate(cfg)
	return systemFor(session.NewStandalone("local", newDemoState(w, cfg)), w)
}

// DemoFactory returns a SessionFactory producing demo states: the
// synthetic world is generated once and shared read-only across every
// session (sites and service data are immutable), while each session
// gets its own catalog, services, trained types, and workspace. This is
// the factory behind Host and the capacity benchmarks.
func DemoFactory(cfg WorldConfig) SessionFactory {
	w := webworld.Generate(cfg)
	return func() (*SessionState, error) { return newDemoState(w, cfg), nil }
}

// Host is a multi-tenant CopyCat service over one shared demo world: a
// SessionManager whose factory builds demo states, plus the world
// handle the wrapper applications (browser, spreadsheet) need.
type Host struct {
	Manager *SessionManager
	World   *World
}

// NewDemoHost builds a host over a fresh demo world. cfg.Factory is
// overwritten with the world's DemoFactory; all other SessionConfig
// knobs (caps, budget, clock, SLO, tracing) apply as given.
func NewDemoHost(world WorldConfig, cfg SessionConfig) *Host {
	w := webworld.Generate(world)
	cfg.Factory = func() (*SessionState, error) { return newDemoState(w, world), nil }
	return &Host{Manager: session.NewManager(cfg), World: w}
}

// NewFileSessionStore opens (creating if needed) a durable snapshot
// store rooted at dir; pass it as SessionConfig.Store to make a host
// survive restarts.
func NewFileSessionStore(dir string) (*SessionFileStore, error) {
	return session.NewFileStore(dir)
}

// NewDurableDemoHost is NewDemoHost over a file-backed snapshot store
// rooted at storeDir. Because the demo world is generated
// deterministically from its WorldConfig, a host rebuilt over the same
// directory (after a crash or restart) recovers every on-disk session:
// they are re-registered as evicted and transparently reloaded on
// their next Attach.
func NewDurableDemoHost(world WorldConfig, cfg SessionConfig, storeDir string) (*Host, error) {
	fs, err := session.NewFileStore(storeDir)
	if err != nil {
		return nil, err
	}
	cfg.Store = fs
	return NewDemoHost(world, cfg), nil
}

// Create admits a new session for tenant and returns the System view
// over it, already pinned — call Release when done with it.
func (h *Host) Create(tenant string) (*System, error) {
	s, err := h.Manager.Create(tenant)
	if err != nil {
		return nil, err
	}
	return systemFor(s, h.World), nil
}

// Attach pins an existing session (transparently reloading it from its
// snapshot if it was evicted) and returns the System view over it —
// call Release when done.
func (h *Host) Attach(id string) (*System, error) {
	s, err := h.Manager.Acquire(id)
	if err != nil {
		return nil, err
	}
	return systemFor(s, h.World), nil
}

// Serve starts the telemetry server for the whole host: aggregate
// metrics and SLO across every session, the shared span stream, and
// the /sessions lifecycle endpoints with admission-controlled creates.
func (h *Host) Serve(ctx context.Context, addr string) (*TelemetryServer, error) {
	srv := serve.New(serve.Config{
		Metrics:   h.Manager.MetricsSnapshot,
		SLO:       h.Manager.SLO(),
		Ring:      h.Manager.Ring(),
		Host:      h.Manager,
		Decisions: h.Manager.Decisions(),
		Incidents: h.Manager.Flight(),
		Quality: func() serve.QualityReport {
			return serve.QualityReport{
				QualityStats: h.Manager.Quality(),
				Tenants:      h.Manager.TenantQuality(),
			}
		},
	})
	if err := srv.Start(ctx, addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// Release unpins the system's session (no-op for standalone systems
// built with NewSystem/NewDemoSystem).
func (s *System) Release() { s.Session.Release() }

// RegisterService adds a callable service to the catalog and refreshes
// the source graph's associations.
func (s *System) RegisterService(svc Service, origin string) {
	s.Catalog.AddService(svc, origin)
}

// Stats snapshots the executor instrumentation accumulated across the
// session: per-operator rows in/out, service calls, service-cache hits,
// and Steiner branches pruned. scpbench surfaces this via -stats.
func (s *System) Stats() ExecStats {
	return s.Workspace.ExecStats.Snapshot()
}

// ResetStats zeroes the accumulated executor statistics.
func (s *System) ResetStats() {
	s.Workspace.ExecStats.Reset()
}

// Metrics returns the unified observability snapshot: the engine's
// execution counters (prefixed "engine."), service-cache gauges
// (cache.entries, cache.hit_rate), and per-stage latency histograms
// with p50/p95/p99. It is JSON-serializable as-is (scpbench -json).
func (s *System) Metrics() MetricsSnapshot {
	return s.Workspace.MetricsSnapshot()
}

// ResetMetrics zeroes the metrics registry and the executor statistics
// (histogram bucket ladders and instrument names are kept).
func (s *System) ResetMetrics() {
	s.Workspace.Metrics.Reset()
	s.Workspace.ExecStats.Reset()
	s.Workspace.Decisions.Reset()
}

// SLO reports the suggestion-refresh latency objective's current
// status: error rates and burn rates over the rolling fast/slow
// windows, and whether either burn alert is firing.
func (s *System) SLO() SLOStatus {
	return s.Workspace.SLO.Status()
}

// Breakers snapshots every service circuit breaker the resilience
// layer has created (empty without a resilience layer or before any
// service call).
func (s *System) Breakers() []BreakerStatus {
	return s.Workspace.Resilience.Status()
}

// FlightRecorder exposes the session's always-on flight recorder —
// the incident-capture surface behind GET /incidents and the REPL's
// :incidents command.
func (s *System) FlightRecorder() *IncidentRecorder {
	return s.Workspace.Flight()
}

// Quality reports the session's rolling suggestion-quality stats:
// acceptance rate, per-surface accept/reject counts, rank-of-accepted
// histogram, and feedback rounds to accept (the REPL's :quality
// command).
func (s *System) Quality() QualityStats {
	return s.Workspace.QualityStats()
}

// Serve starts the live telemetry server on addr (":0" picks a free
// port; read it back with Addr on the returned server). It exposes the
// full observability surface of this system — unified metrics in
// Prometheus/OpenMetrics text exposition, health and readiness
// computed from breaker state and SLO burn, live span streaming, the
// decision log, and pprof — and shuts down gracefully when ctx is
// cancelled.
func (s *System) Serve(ctx context.Context, addr string) (*TelemetryServer, error) {
	srv := serve.New(serve.Config{
		Metrics:   s.Workspace.MetricsSnapshot,
		Breakers:  s.Workspace.Resilience.Status,
		SLO:       s.Workspace.SLO,
		Ring:      s.Workspace.SpanRing(),
		Decisions: s.Workspace.Decisions,
		Incidents: s.Workspace.Flight(),
		Quality: func() serve.QualityReport {
			return serve.QualityReport{QualityStats: s.Workspace.QualityStats()}
		},
	})
	if err := srv.Start(ctx, addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// EnableTracing starts recording pipeline spans — learn, search,
// execute (with per-candidate children and service calls), and rank —
// into a fresh trace. Tracing off (the default) costs ~nothing.
func (s *System) EnableTracing() { s.Workspace.EnableTracing() }

// DisableTracing stops span recording and discards the trace.
func (s *System) DisableTracing() { s.Workspace.DisableTracing() }

// Tracing reports whether span recording is active.
func (s *System) Tracing() bool { return s.Workspace.Tracing() }

// TraceTo writes the collected spans as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto.
func (s *System) TraceTo(w io.Writer) error { return s.Workspace.TraceTo(w) }

// Why returns the decision-log lines explaining what happened to
// candidates matching the given substring ("" for the full log) —
// the System.Explain-style accessor over the suggestion pipeline's
// choices.
func (s *System) Why(candidate string) []string { return s.Workspace.Why(candidate) }

// SetSuggestionTimeout bounds each suggestion refresh and query
// execution. Expired executions abort promptly (cancellation is checked
// inside joins, dependent joins, and the Steiner search) and drop the
// affected candidates; 0 removes the deadline.
func (s *System) SetSuggestionTimeout(d time.Duration) {
	s.Workspace.ExecTimeout = d
}

// ShelterSite renders the demo world's TV-news shelter site in the given
// style. It panics if the system has no world.
func (s *System) ShelterSite(style SiteStyle) *Site {
	return s.World.ShelterSite(style)
}

// ContactsSpreadsheet returns the demo world's contact spreadsheet.
func (s *System) ContactsSpreadsheet() *Document {
	return s.World.ContactsSpreadsheet()
}

// OpenBrowser opens the browser application wrapper on a site, connected
// to the workspace's clipboard.
func (s *System) OpenBrowser(site *Site) *Browser {
	return wrappers.NewBrowser(s.Workspace.Clip, site)
}

// OpenSpreadsheet opens the spreadsheet wrapper on a document.
func (s *System) OpenSpreadsheet(doc *Document) *Spreadsheet {
	return wrappers.NewSpreadsheet(s.Workspace.Clip, doc)
}

// SaveSession serializes the system's learned state — imported relations
// (with semantic types and keys), the type library, learned source graph
// edge costs, workspace tabs, and plan-cache counters — as JSON (§1:
// integrations "persistently saved as an integrated, mediated view").
// This is the same snapshot format the session host evicts to.
func (s *System) SaveSession() ([]byte, error) {
	return s.Session.State().Snapshot()
}

// LoadSession restores a saved session into this system: relations and
// types are merged into the catalog/library, associations re-discovered,
// learned edge costs re-attached, workspace tabs replayed, and cache
// counters carried over. Services are not serialized — register them
// before loading.
func (s *System) LoadSession(data []byte) error {
	return s.Session.State().Restore(data)
}

// RenderMetrics renders a MetricsSnapshot as an aligned human-readable
// report (counters, gauges, then histograms with p50/p95/p99).
var RenderMetrics = workspace.RenderMetrics

// RenderSLO renders an SLOStatus as an aligned human-readable report
// (the REPL's :slo command).
var RenderSLO = workspace.RenderSLO

// RenderQuality renders a QualityStats as an aligned human-readable
// report (the REPL's :quality command).
var RenderQuality = workspace.RenderQuality

// RenderIncident renders a captured incident bundle as a human-readable
// post-mortem: the trigger, runtime state, the causal timeline with
// degraded spans flagged, per-session attribution, and counter deltas
// (the REPL's :incidents command and scpbench -analyze-incident).
var RenderIncident = flight.RenderTimeline

// ReadIncidentBundle loads an incident bundle from a JSON file written
// by the flight recorder's incident dir.
var ReadIncidentBundle = flight.ReadBundle

// Export helpers (the §8 "export to common application formats").
var (
	// XML renders a relation as XML.
	XML = export.XML
	// CSV renders a relation as CSV with a header row.
	CSV = export.CSV
	// GeoJSON renders geo-tagged rows as a FeatureCollection.
	GeoJSON = export.GeoJSON
	// KML renders geo-tagged rows as Google-Maps-compatible KML.
	KML = export.KML
)
