package copycat

import (
	"fmt"
	"strings"
	"testing"

	"copycat/internal/resilience"
	"copycat/internal/services"
)

// runFaultyPipeline drives the full paste → accept → integrate →
// column-completion flow on a demo system with the given fault rate and
// returns the system and the completions.
func runFaultyPipeline(t *testing.T, rate float64) (*System, int) {
	t.Helper()
	cfg := DefaultWorldConfig()
	cfg.FaultRate = rate
	cfg.FaultSeed = 7
	sys := NewDemoSystem(cfg)
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if err := sys.Workspace.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	sys.Workspace.SetMode(ModeIntegration)
	return sys, len(sys.Workspace.RefreshColumnSuggestions())
}

// TestPipelineSurvivesTwentyPercentFaults is the headline acceptance
// check: with a 20% transient fault rate on every builtin service, the
// full suggestion pipeline still returns results, with degradation
// accounted in the system stats.
func TestPipelineSurvivesTwentyPercentFaults(t *testing.T) {
	sys, ncomps := runFaultyPipeline(t, 0.2)
	if ncomps == 0 {
		t.Fatal("no completions survived a 20% fault rate")
	}
	snap := sys.Stats()
	if snap.ServiceCalls == 0 {
		t.Error("no service calls recorded")
	}
	if snap.Retries == 0 {
		t.Error("20% faults should force retries")
	}
	if sys.Clock == nil {
		t.Fatal("faulty demo system should carry a virtual clock")
	}
	if sys.Workspace.Resilience == nil {
		t.Fatal("faulty demo system should carry a resilience layer")
	}
}

// TestPipelineSurvivesNinetyPercentFaults exercises heavy degradation:
// breakers trip and most rows degrade, but nothing panics or errors.
func TestPipelineSurvivesNinetyPercentFaults(t *testing.T) {
	sys, _ := runFaultyPipeline(t, 0.9)
	snap := sys.Stats()
	if snap.DegradedRows == 0 && snap.BreakerTrips == 0 {
		t.Error("90% faults should degrade rows or trip breakers")
	}
	// The stats renderer surfaces the new counters.
	text := fmt.Sprint(snap)
	for _, want := range []string{"retries", "degraded rows", "breaker trips"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats output missing %q:\n%s", want, text)
		}
	}
}

// TestZeroFaultRateIsTransparent checks the transparency acceptance
// criterion: a resilience layer over fault-free services changes nothing
// — same completions, same rendered workspace as a plain demo system.
func TestZeroFaultRateIsTransparent(t *testing.T) {
	run := func(wrap bool) (string, []string) {
		sys := NewDemoSystem(DefaultWorldConfig())
		if wrap {
			// Manually install the resilience stack over zero-fault
			// injected services — the layer itself, not the faults.
			clock := resilience.NewVirtualClock()
			policy := resilience.DefaultPolicy()
			policy.Clock = clock
			sys.Workspace.Resilience = resilience.NewCaller(policy, resilience.DefaultBreakerConfig())
			for _, src := range sys.Catalog.All() {
				if src.Svc != nil {
					src.Svc = services.NewFlakyService(src.Svc, services.FaultConfig{Seed: 7, Clock: clock})
				}
			}
		}
		browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
		s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
		sel, err := browser.CopyRows([][]string{
			{s0.Name, s0.Street, s0.City},
			{s1.Name, s1.Street, s1.City},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Workspace.Paste(sel); err != nil {
			t.Fatal(err)
		}
		if err := sys.Workspace.AcceptRows(); err != nil {
			t.Fatal(err)
		}
		sys.Workspace.SetMode(ModeIntegration)
		comps := sys.Workspace.RefreshColumnSuggestions()
		var targets []string
		for _, c := range comps {
			targets = append(targets, fmt.Sprintf("%s@%d", c.Target, len(c.Result.Rows)))
			if note := c.PartialNote(); note != "" {
				t.Errorf("zero-fault completion reported partial results: %s", note)
			}
		}
		return sys.Workspace.Render(), targets
	}
	plainRender, plainComps := run(false)
	wrappedRender, wrappedComps := run(true)
	if plainRender != wrappedRender {
		t.Error("resilience layer changed the rendered workspace at zero fault rate")
	}
	if fmt.Sprint(plainComps) != fmt.Sprint(wrappedComps) {
		t.Errorf("completions diverged: %v vs %v", plainComps, wrappedComps)
	}
}

// TestFaultRateZeroConfigMatchesPlain checks NewDemoSystem with
// FaultRate 0 builds exactly a plain system (no clock, no caller).
func TestFaultRateZeroConfigMatchesPlain(t *testing.T) {
	sys := NewDemoSystem(DefaultWorldConfig())
	if sys.Clock != nil || sys.Workspace.Resilience != nil {
		t.Error("zero fault rate must not install the resilience stack")
	}
}
