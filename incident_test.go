package copycat

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"copycat/internal/obs/flight"
)

// TestFlightRecorderCapturesBreakerIncident is the flight-recorder
// acceptance test: on a deterministic virtual clock, injected service
// faults open a circuit breaker, the breaker-open trigger captures
// exactly one bundle to disk, a re-trip inside the cooldown window is
// suppressed (no second bundle), and the rendered post-mortem names the
// breaker transition, the degraded spans, and the affected session.
func TestFlightRecorderCapturesBreakerIncident(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultWorldConfig()
	cfg.FaultRate = 0.9
	cfg.FaultSeed = 7
	sys := NewDemoSystem(cfg)
	sys.EnableTracing() // spans feed the recorder's timeline
	ws := sys.Workspace
	ws.SessionID = "sess-demo"
	rec := sys.FlightRecorder()
	if rec == nil {
		t.Fatal("demo system has no flight recorder")
	}
	rec.SetDir(dir)
	// A long cooldown makes the exactly-once window unambiguous: every
	// breaker-open after the first must be suppressed for the rest of the
	// test.
	rec.SetCooldown(10 * time.Minute)

	// Drive the faulty pipeline until a breaker opens.
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if err := ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	ws.SetMode(ModeIntegration)
	openService := ""
	for i := 0; i < 20 && openService == ""; i++ {
		ws.RefreshColumnSuggestions()
		for _, b := range sys.Breakers() {
			if b.StateName == "open" {
				openService = b.Service
				break
			}
		}
	}
	if openService == "" {
		t.Fatal("no breaker opened under a 90% fault rate")
	}

	breakerIncidents := func() []IncidentSummary {
		var out []IncidentSummary
		for _, s := range rec.Incidents() {
			if s.Trigger == flight.TriggerBreakerOpen {
				out = append(out, s)
			}
		}
		return out
	}
	captured := breakerIncidents()
	if len(captured) != 1 {
		t.Fatalf("breaker-open captured %d bundles, want exactly 1: %+v", len(captured), captured)
	}
	onDisk := func() []string {
		files, err := filepath.Glob(filepath.Join(dir, "*breaker-open*.json"))
		if err != nil {
			t.Fatal(err)
		}
		return files
	}
	files := onDisk()
	if len(files) != 1 {
		t.Fatalf("disk holds %d breaker-open bundles, want exactly 1: %v", len(files), files)
	}

	// Re-trip the same breaker inside the capture cooldown: after the
	// breaker's own 30s cooldown it half-opens on the next Allow, and the
	// probe's failure re-opens it — a new transition to open, which the
	// recorder must suppress, not double-capture.
	suppressedBefore := rec.Suppressed()
	sys.Clock.Advance(31 * time.Second)
	b := ws.Resilience.Breaker(openService)
	if err := b.Allow(); err != nil {
		t.Fatalf("breaker should half-open after its cooldown: %v", err)
	}
	b.Failure()
	if got := breakerIncidents(); len(got) != 1 {
		t.Fatalf("re-trip inside cooldown captured again: %d bundles", len(got))
	}
	if rec.Suppressed() <= suppressedBefore {
		t.Errorf("re-trip should increment incidents.suppressed (before=%d after=%d)",
			suppressedBefore, rec.Suppressed())
	}
	if files = onDisk(); len(files) != 1 {
		t.Fatalf("suppressed re-trip still wrote a bundle: %v", files)
	}

	// The bundle on disk is self-contained: read it back cold and render
	// the post-mortem.
	inc, err := ReadIncidentBundle(files[0])
	if err != nil {
		t.Fatalf("ReadIncidentBundle: %v", err)
	}
	out := RenderIncident(inc)
	if !strings.Contains(out, "-> open") {
		t.Errorf("post-mortem does not name the breaker transition:\n%s", out)
	}
	if !strings.Contains(out, "DEGRADED") {
		t.Errorf("post-mortem does not flag the degraded spans:\n%s", out)
	}
	if !strings.Contains(out, "sess-demo") {
		t.Errorf("post-mortem does not name the affected session:\n%s", out)
	}
	if !strings.Contains(out, "trigger   breaker.open") {
		t.Errorf("post-mortem does not state the trigger:\n%s", out)
	}

	// The live list serves the same incident.
	live, ok := rec.Incident(inc.ID)
	if !ok {
		t.Fatalf("incident %s not in the live recorder", inc.ID)
	}
	if live.Session != "sess-demo" || live.Trigger != flight.TriggerBreakerOpen {
		t.Errorf("live incident mismatch: %+v", live)
	}
}

// TestFlightRecorderDetachIsInert is the overhead experiment's control
// arm: SetFlight(nil) detaches the recorder, every feed no-ops, and
// re-attaching resumes recording.
func TestFlightRecorderDetachIsInert(t *testing.T) {
	sys := NewDemoSystem(DefaultWorldConfig())
	sys.EnableTracing()
	ws := sys.Workspace
	rec := sys.FlightRecorder()
	rec.SetCooldown(time.Millisecond)

	ws.SetFlight(nil)
	if got := sys.FlightRecorder(); got != nil {
		t.Fatal("detach should leave no recorder on the workspace")
	}
	// Triggers through the breaker wiring hit the nil recorder and no-op.
	_, _, spansBefore := rec.Retained()
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0 := sys.World.Shelters[0]
	sel, err := browser.CopyRows([][]string{{s0.Name, s0.Street, s0.City}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if _, _, got := rec.Retained(); got != spansBefore {
		t.Errorf("detached recorder still received spans (%d -> %d)", spansBefore, got)
	}

	ws.SetFlight(rec)
	if err := ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	ws.SetMode(ModeIntegration)
	ws.RefreshColumnSuggestions()
	if _, _, got := rec.Retained(); got <= spansBefore {
		t.Error("re-attached recorder should resume receiving spans")
	}
	_, _, decisions := rec.Retained()
	if decisions == 0 {
		t.Error("re-attached recorder should receive decision entries")
	}
}

// TestIncidentBundleSIGQUITTrigger exercises the operator
// capture-on-demand path end to end minus the signal itself: the
// sigquit trigger captures whatever the recorder holds right now.
func TestIncidentBundleSIGQUITTrigger(t *testing.T) {
	dir := t.TempDir()
	sys := NewDemoSystem(DefaultWorldConfig())
	rec := sys.FlightRecorder()
	rec.SetDir(dir)
	id, ok := rec.Trigger(flight.TriggerSignal, "operator SIGQUIT", "", "")
	if !ok {
		t.Fatal("sigquit trigger should capture")
	}
	data, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatalf("bundle not on disk: %v", err)
	}
	if !strings.Contains(string(data), `"trigger": "sigquit"`) {
		t.Errorf("bundle does not record the sigquit trigger:\n%s", data)
	}
}
