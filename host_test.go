package copycat_test

// Host-level integration tests: a multi-tenant fleet served over the
// telemetry endpoints, with concurrent /metrics scrapes (lint-checked)
// and a live /trace/stream follower while workers churn sessions
// through attach → refresh → release under a binding memory budget.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"copycat"
	"copycat/internal/obs/serve"
)

// hostWorldConfig keeps the fleet tests fast: a small world is enough
// to exercise the whole import→integrate pipeline per session.
func hostWorldConfig() copycat.WorldConfig {
	cfg := copycat.DefaultWorldConfig()
	cfg.Cities, cfg.SheltersPerCity = 3, 3
	return cfg
}

// seedSystem drives a freshly created session to integration mode
// through the public facade: paste two shelters, accept the
// generalization, import the contacts sheet, switch modes.
func seedSystem(sys *copycat.System) error {
	w := sys.World
	ws := sys.Workspace
	browser := sys.OpenBrowser(sys.ShelterSite(copycat.StyleTable))
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		return err
	}
	if err := ws.Paste(sel); err != nil {
		return err
	}
	if err := ws.AcceptRows(); err != nil {
		return err
	}
	sheetDoc := w.ContactsSpreadsheet()
	grid := sheetDoc.Grid()
	ws.SelectTab("Contacts")
	if err := ws.Paste(copycat.Selection{Cells: grid[1:3], Doc: sheetDoc}); err != nil {
		return err
	}
	if err := ws.AcceptRows(); err != nil {
		return err
	}
	ws.SelectTab("Sheet1")
	ws.SetMode(copycat.ModeIntegration)
	return nil
}

// seedFleet creates and seeds n sessions concurrently, returning their IDs.
func seedFleet(t *testing.T, host *copycat.Host, n, workers int) []string {
	t.Helper()
	ids := make([]string, n)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += workers {
				sys, err := host.Create(fmt.Sprintf("tenant%02d", i%10))
				if err != nil {
					t.Errorf("create %d: %v", i, err)
					return
				}
				if err := seedSystem(sys); err != nil {
					t.Errorf("seed %d: %v", i, err)
				}
				ids[i] = sys.Session.ID()
				sys.Release()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return ids
}

// churnFleet runs workers × ops attach/refresh/release rounds over ids,
// counting refreshes that produced suggestions.
func churnFleet(t *testing.T, host *copycat.Host, ids []string, workers, ops int) int64 {
	t.Helper()
	var refreshes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 77))
			for op := 0; op < ops; op++ {
				id := ids[rng.Intn(len(ids))]
				sys, err := host.Attach(id)
				if err != nil {
					t.Errorf("attach %s: %v", id, err)
					continue
				}
				if n := len(sys.Workspace.RefreshColumnSuggestions()); n == 0 {
					t.Errorf("session %s: no suggestions after attach", id)
				} else {
					refreshes.Add(1)
				}
				sys.Release()
			}
		}(g)
	}
	wg.Wait()
	return refreshes.Load()
}

// runFleet is the shared body of the always-on and race-build fleet
// tests: serve the host, scrape and follow while churning, then check
// the invariants — bounded memory, churn observed, telemetry whole.
// requireReady demands a 200 from /readyz at quiescence; the
// acceptance-scale fleet passes false because sustained reload churn
// can legitimately trip the fast-burn SLO alert, in which case the
// correct readiness answer is a shedding 503, not a 200.
func runFleet(t *testing.T, sessions, ops int, budget int64, requireReady bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	host := copycat.NewDemoHost(hostWorldConfig(), copycat.SessionConfig{
		MemoryBudget:  budget,
		EnableTracing: true,
	})
	srv, err := host.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel()
		srv.Wait()
	}()
	base := "http://" + srv.Addr()

	const workers = 8
	ids := seedFleet(t, host, sessions, workers)

	// Scraper: hammer /metrics during the churn, linting every body.
	scrapeCtx, stopScrape := context.WithCancel(ctx)
	var scrapes atomic.Int64
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for scrapeCtx.Err() == nil {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("metrics scrape: %d", resp.StatusCode)
				return
			}
			if err := serve.Lint(strings.NewReader(string(body))); err != nil {
				t.Errorf("metrics lint: %v", err)
				return
			}
			scrapes.Add(1)
		}
	}()

	// Follower: hold /trace/stream?follow=1 open, counting spans live.
	var spans atomic.Int64
	var followWG sync.WaitGroup
	followWG.Add(1)
	go func() {
		defer followWG.Done()
		req, _ := http.NewRequestWithContext(ctx, "GET", base+"/trace/stream?follow=1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if strings.Contains(sc.Text(), `"session"`) {
				spans.Add(1)
			}
		}
	}()

	refreshes := churnFleet(t, host, ids, workers, ops)
	stopScrape()
	scrapeWG.Wait()

	st := host.Manager.Stats()
	if st.Sessions != sessions {
		t.Fatalf("fleet size %d, want %d", st.Sessions, sessions)
	}
	if st.Evictions == 0 || st.Reloads == 0 {
		t.Fatalf("expected eviction churn under the %dB budget: %+v", budget, st)
	}
	if st.ResidentBytes > budget {
		t.Fatalf("resident estimate %d over budget %d after quiescence", st.ResidentBytes, budget)
	}
	if refreshes == 0 {
		t.Fatal("no successful refreshes")
	}
	if scrapes.Load() == 0 {
		t.Fatal("no /metrics scrapes completed during the churn")
	}

	// Readiness answers coherently: 200 when nothing sheds, a labelled
	// shedding 503 when the churn tripped the fast-burn alert. The
	// session list reflects the whole fleet either way.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case !requireReady && resp.StatusCode == http.StatusServiceUnavailable &&
		strings.Contains(string(ready), "shedding"):
		t.Logf("host shedding at quiescence (expected at this scale): %s", ready)
	default:
		t.Fatalf("readyz: %d %s", resp.StatusCode, ready)
	}
	resp, err = http.Get(base + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	list, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(list), `"id"`); got != sessions {
		t.Fatalf("session list has %d entries, want %d", got, sessions)
	}

	// Shut the stream down and confirm the follower saw session-tagged
	// spans while the churn ran.
	cancel()
	followWG.Wait()
	if spans.Load() == 0 {
		t.Fatal("trace follower saw no session-tagged spans")
	}
	t.Logf("fleet %d: %d refreshes, %d evictions, %d reloads, %d scrapes, %d spans followed, resident %dB",
		sessions, refreshes, st.Evictions, st.Reloads, scrapes.Load(), spans.Load(), st.ResidentBytes)
}

// TestHostFleetTelemetry is the always-on fleet test: 64 sessions under
// a 2MiB budget with live scraping and span following. A ready 200 at
// quiescence is demanded only without the race detector: race
// instrumentation slows refreshes enough to trip the fast-burn SLO
// alert, and shedding is then the host's correct answer.
func TestHostFleetTelemetry(t *testing.T) {
	runFleet(t, 64, 30, 2<<20, !raceEnabled)
}
