package copycat

// System-level observability tests: the trace export is byte-identical
// across identical sessions on a virtual clock (even though candidate
// plans execute on a parallel worker pool), and the metrics/decision
// surfaces report the suggestion loop end to end.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"copycat/internal/resilience"
)

// tracedDemoSession runs the demo scenario (paste two shelters, accept,
// integration mode, two suggestion refreshes, reject one completion)
// with tracing on a frozen virtual clock and returns the system.
func tracedDemoSession(t *testing.T) *System {
	t.Helper()
	sys := NewDemoSystem(DefaultWorldConfig())
	sys.Workspace.Clock = resilience.NewVirtualClock()
	sys.EnableTracing()
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City}, {s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if err := sys.Workspace.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	sys.Workspace.SetMode(ModeIntegration)
	for i := 0; i < 2; i++ {
		if comps := sys.Workspace.RefreshColumnSuggestions(); len(comps) == 0 {
			t.Fatal("no completions")
		}
	}
	comps := sys.Workspace.PendingColumns()
	if err := sys.Workspace.RejectColumn(len(comps) - 1); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestTraceDeterministicAcrossSessions: same seed, same virtual clock,
// same user actions → byte-identical Chrome trace JSON, despite the
// candidate plans racing on the parallel executor.
func TestTraceDeterministicAcrossSessions(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		sys := tracedDemoSession(t)
		var buf bytes.Buffer
		if err := sys.TraceTo(&buf); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf.Bytes()
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatalf("trace JSON differs across identical sessions:\nrun0 %d bytes, run1 %d bytes", len(runs[0]), len(runs[1]))
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(runs[0], &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
	}
	for _, want := range []string{"learn.generalize", "learn.type", "sourcegraph.discover", "suggest.refresh", "rank.mira"} {
		if !seen[want] {
			t.Errorf("trace missing stage span %q", want)
		}
	}
	var candidates int
	for _, e := range doc.TraceEvents {
		if e.Cat == "candidate" {
			candidates++
		}
	}
	if candidates == 0 {
		t.Error("trace has no per-candidate spans")
	}
}

// TestSystemMetricsAndDecisions: the unified snapshot carries engine
// counters, cache gauges, and per-stage histograms, and Why() explains
// candidate outcomes.
func TestSystemMetricsAndDecisions(t *testing.T) {
	sys := tracedDemoSession(t)
	snap := sys.Metrics()
	if snap.Counters["engine.service_calls"] == 0 {
		t.Error("engine.service_calls counter not folded into snapshot")
	}
	if snap.Gauges["cache.entries"] <= 0 {
		t.Error("cache.entries gauge missing")
	}
	hr, ok := snap.Gauges["cache.hit_rate"]
	if !ok || hr <= 0 || hr > 1 {
		t.Errorf("cache.hit_rate gauge out of range: %v (present %v)", hr, ok)
	}
	if h, ok := snap.Histograms["latency.suggest.refresh"]; !ok || h.Count < 2 {
		t.Errorf("latency.suggest.refresh histogram missing or undercounted: %+v", h)
	}
	rendered := RenderMetrics(snap)
	for _, want := range []string{"engine.service_calls", "cache.hit_rate", "latency.suggest.refresh", "p95"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("RenderMetrics output missing %q", want)
		}
	}

	if lines := sys.Why(""); len(lines) == 0 {
		t.Fatal("decision log empty after a full session")
	}
	found := false
	for _, l := range sys.Why("Zipcode Resolver") {
		if strings.Contains(l, "Zipcode Resolver") {
			found = true
		} else {
			t.Errorf("Why(\"Zipcode Resolver\") returned unrelated line %q", l)
		}
	}
	if !found {
		t.Error("Why(candidate) returned nothing for a candidate the session scored")
	}

	sys.ResetMetrics()
	after := sys.Metrics()
	if n := after.Counters["engine.service_calls"]; n != 0 {
		t.Errorf("ResetMetrics left engine.service_calls = %d", n)
	}
	if len(sys.Why("")) != 0 {
		t.Error("ResetMetrics left decisions behind")
	}
}
