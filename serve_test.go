package copycat

// System-level telemetry-server tests: Serve exposes the full
// observability surface of a live session, and every endpoint stays
// safe to scrape while the parallel candidate executor is running
// (exercised under -race by the Makefile's test-race target).

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"copycat/internal/obs"
	"copycat/internal/obs/serve"
)

// demoSession imports two shelters and enters integration mode, leaving
// the system one RefreshColumnSuggestions call away from exercising the
// whole pipeline.
func demoSession(t *testing.T) *System {
	t.Helper()
	sys := NewDemoSystem(DefaultWorldConfig())
	sys.EnableTracing()
	browser := sys.OpenBrowser(sys.ShelterSite(StyleTable))
	s0, s1 := sys.World.Shelters[0], sys.World.Shelters[1]
	sel, err := browser.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City}, {s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Workspace.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if err := sys.Workspace.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	sys.Workspace.SetMode(ModeIntegration)
	return sys
}

// TestSystemServeEndToEnd: a live session's telemetry server answers
// every endpoint with real pipeline data, the /metrics body passes the
// exposition linter, and cancelling the context drains the server.
func TestSystemServeEndToEnd(t *testing.T) {
	sys := demoSession(t)
	if comps := sys.Workspace.RefreshColumnSuggestions(); len(comps) == 0 {
		t.Fatal("no completions")
	}

	ctx, cancel := context.WithCancel(context.Background())
	srv, err := sys.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := serve.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("live /metrics body fails lint: %v", err)
	}
	for _, want := range []string{
		"copycat_engine_service_calls_total",
		"copycat_cache_hit_rate",
		"copycat_latency_suggest_refresh_seconds_bucket",
		`copycat_slo_target{stage="suggest.refresh"} 0.99`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz = %d %s", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatal("/readyz should be ready")
	}
	var slo SLOStatus
	if _, body := get("/slo"); json.Unmarshal([]byte(body), &slo) != nil || slo.Stage != "suggest.refresh" {
		t.Fatalf("/slo body: %s", body)
	}
	if slo.FastCount == 0 {
		t.Error("SLO fast window saw no refreshes")
	}

	// The refresh's spans reached the live ring.
	_, body = get("/trace/stream")
	if !strings.Contains(body, `"suggest.refresh"`) {
		t.Errorf("/trace/stream missing the refresh span: %.200s", body)
	}
	var ev obs.SpanEvent
	if err := json.Unmarshal([]byte(strings.SplitN(body, "\n", 2)[0]), &ev); err != nil {
		t.Errorf("trace stream line is not a SpanEvent: %v", err)
	}
	if _, body := get("/decisions"); !strings.Contains(body, `"suggest.columns"`) {
		t.Errorf("/decisions missing pipeline decisions: %.200s", body)
	}
	if code, _ := get("/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Error("/debug/pprof/heap unreachable")
	}

	cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never drained after ctx cancel")
	}
}

// TestConcurrentScrapeWhilePipelineRuns drives suggestion refreshes on
// the parallel candidate executor while other goroutines scrape
// /metrics and /healthz and stream /trace/stream?follow=1 — the
// concurrent-scrape safety check, meaningful under -race.
func TestConcurrentScrapeWhilePipelineRuns(t *testing.T) {
	sys := demoSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := sys.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	pipelineDone := make(chan struct{})
	var wg sync.WaitGroup

	// Driver: the real pipeline, repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(pipelineDone)
		for i := 0; i < 6; i++ {
			if comps := sys.Workspace.RefreshColumnSuggestions(); len(comps) == 0 {
				t.Error("refresh returned no completions")
				return
			}
		}
	}()

	// Scrapers: hammer the read-side endpoints until the pipeline stops.
	for _, path := range []string{"/metrics", "/metrics", "/healthz", "/slo", "/decisions"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-pipelineDone:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	// Streamer: follow the live span feed for the whole run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sctx, scancel := context.WithCancel(ctx)
		defer scancel()
		req, _ := http.NewRequestWithContext(sctx, "GET", base+"/trace/stream?follow=1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("trace stream: %v", err)
			return
		}
		defer resp.Body.Close()
		go func() { <-pipelineDone; scancel() }()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lines := 0
		for sc.Scan() {
			if !json.Valid(sc.Bytes()) {
				t.Errorf("stream emitted invalid JSON: %q", sc.Text())
				return
			}
			lines++
		}
		if lines == 0 {
			t.Error("stream delivered no spans while the pipeline ran")
		}
	}()

	wg.Wait()

	// One last full scrape after the dust settles must still lint clean.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := serve.Lint(resp.Body); err != nil {
		t.Fatalf("post-run /metrics fails lint: %v", err)
	}
}
