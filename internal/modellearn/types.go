// Package modellearn implements CopyCat's model learner (§3.2): it learns
// to recognize the semantic types of columns (PR-Street, PR-City, PR-Zip,
// …) from training values, using a pattern language over constants and
// generalized tokens, and it learns descriptions of new sources by
// relating their input/output behaviour to known services.
//
// Recognition is distributional, following the paper: a column matches a
// type when the distribution of pattern matches over the new values is
// statistically similar to the distribution seen in training — exact
// matches are not required.
package modellearn

import (
	"sort"
	"sync"

	"copycat/internal/table"
	"copycat/internal/tokenizer"
)

// patEntry is one learned pattern with the fraction of training values it
// matched.
type patEntry struct {
	pattern tokenizer.Pattern
	frac    float64
}

// TypeModel is the learned recognizer for one semantic type.
type TypeModel struct {
	Name     string
	patterns []patEntry
	trained  int // number of training values seen
}

// Library is the session's collection of semantic type models. A type
// learned from one source is immediately available for recognizing the
// next (§3.2: "Once the system learns a new semantic type, this type will
// be immediately available in the same user session").
type Library struct {
	mu    sync.RWMutex
	types map[string]*TypeModel
}

// NewLibrary creates an empty type library.
func NewLibrary() *Library {
	return &Library{types: map[string]*TypeModel{}}
}

// Types lists known type names, sorted.
func (l *Library) Types() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.types))
	for n := range l.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Model returns the learned model for a type, or nil.
func (l *Library) Model(name string) *TypeModel {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.types[name]
}

// Learn trains (or retrains, merging with prior data is approximated by
// retraining on the union the caller supplies) the named type from field
// values. Patterns are built from a rich hypothesis language: values are
// grouped by token shape, and each group's pattern keeps any constants
// shared by the whole group ("FL", "-", "@") while generalizing the rest
// (capitalized word, 3-digit number, …).
func (l *Library) Learn(name string, values []string) {
	clean := make([]string, 0, len(values))
	for _, v := range values {
		if n := norm(v); n != "" {
			clean = append(clean, n)
		}
	}
	if len(clean) == 0 {
		return
	}
	groups := map[string][][]tokenizer.Token{}
	var order []string
	for _, v := range clean {
		k := tokenizer.ShapeOf(v).Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], tokenizer.Tokenize(v))
	}
	m := &TypeModel{Name: name, trained: len(clean)}
	for _, k := range order {
		seqs := groups[k]
		var p tokenizer.Pattern
		if len(seqs) >= 2 {
			p = tokenizer.GeneralizeAll(seqs)
		}
		if p == nil {
			// Singleton group (or ragged): fall back to the pure shape.
			p = shapeOfTokens(seqs[0])
		}
		m.patterns = append(m.patterns, patEntry{
			pattern: p,
			frac:    float64(len(seqs)) / float64(len(clean)),
		})
	}
	l.mu.Lock()
	l.types[name] = m
	l.mu.Unlock()
}

func shapeOfTokens(toks []tokenizer.Token) tokenizer.Pattern {
	p := make(tokenizer.Pattern, len(toks))
	for i, t := range toks {
		p[i] = tokenizer.Generalize(t)
	}
	return p
}

func norm(s string) string {
	out := ""
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			space = true
			continue
		}
		if space && out != "" {
			out += " "
		}
		space = false
		out += string(r)
	}
	return out
}

// matchDistribution returns, per pattern, the fraction of values matched,
// plus overall coverage (fraction of values matched by ≥1 pattern).
func (m *TypeModel) matchDistribution(values []string) (fracs []float64, coverage float64) {
	fracs = make([]float64, len(m.patterns))
	if len(values) == 0 {
		return fracs, 0
	}
	covered := 0
	toks := make([][]tokenizer.Token, len(values))
	for i, v := range values {
		toks[i] = tokenizer.Tokenize(norm(v))
	}
	for i := range values {
		any := false
		for pi, pe := range m.patterns {
			if pe.pattern.MatchesTokens(toks[i]) {
				fracs[pi]++
				any = true
			}
		}
		if any {
			covered++
		}
	}
	for pi := range fracs {
		fracs[pi] /= float64(len(values))
	}
	return fracs, float64(covered) / float64(len(values))
}

// Score rates how well the values fit this type: coverage times the
// total-variation similarity between the training and observed pattern
// distributions. 1 is a perfect fit, 0 no fit.
func (m *TypeModel) Score(values []string) float64 {
	fracs, coverage := m.matchDistribution(values)
	if coverage == 0 {
		return 0
	}
	// Total variation distance between distributions (both sum to ≤ ~1;
	// values may match several patterns, so clamp).
	dist := 0.0
	for i, pe := range m.patterns {
		d := pe.frac - fracs[i]
		if d < 0 {
			d = -d
		}
		dist += d
	}
	if dist > 1 {
		dist = 1
	}
	return coverage * (1 - dist/2)
}

// TypeScore is a ranked recognition hypothesis.
type TypeScore struct {
	Type  string
	Score float64
}

// RecognizeThreshold is the minimum score for a type to be proposed.
const RecognizeThreshold = 0.35

// Recognize ranks all known types against the column values, best first,
// dropping scores below RecognizeThreshold. The first element is the
// hypothesis CopyCat proposes; the rest populate the drop-down.
func (l *Library) Recognize(values []string) []TypeScore {
	l.mu.RLock()
	models := make([]*TypeModel, 0, len(l.types))
	for _, m := range l.types {
		models = append(models, m)
	}
	l.mu.RUnlock()
	var out []TypeScore
	for _, m := range models {
		if s := m.Score(values); s >= RecognizeThreshold {
			out = append(out, TypeScore{Type: m.Name, Score: s})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// AnnotateSchema recognizes each column of data and sets SemType on the
// schema for confident hypotheses. columns[i] holds the values of
// schema[i]. It returns the per-column ranked hypotheses for the UI
// drop-downs.
func (l *Library) AnnotateSchema(schema table.Schema, columns [][]string) [][]TypeScore {
	out := make([][]TypeScore, len(schema))
	for i := range schema {
		if i >= len(columns) {
			break
		}
		scores := l.Recognize(columns[i])
		out[i] = scores
		if len(scores) > 0 && schema[i].SemType == "" {
			schema[i].SemType = scores[0].Type
		}
	}
	return out
}

// DefineType lets the user name a brand-new type on the fly and trains it
// from the current column (§3.2: "the user can define this new type on
// the fly"). It is Learn with a friendlier name for call sites.
func (l *Library) DefineType(name string, values []string) {
	l.Learn(name, values)
}
