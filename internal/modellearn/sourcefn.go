package modellearn

import (
	"sort"

	"copycat/internal/engine"
	"copycat/internal/table"
)

// SourceMatch describes how closely a new source's behaviour matches a
// known service (§3.2: "The model learner learns the function performed
// by a source by relating it to a set of known sources ... executing the
// new source and the learned description and comparing the similarity of
// the results").
type SourceMatch struct {
	Known string  // name of the known service
	Score float64 // fraction of sample inputs with equal outputs
	Calls int     // samples actually compared
}

// InduceDescription executes the new service and every known service on
// the sample inputs and ranks the known services by output agreement.
// Services whose schemas are incompatible with the new one (different
// input/output arities) are skipped. A returned score of 1 means the new
// source behaved identically on all samples — e.g. a newly wrapped zip
// form being recognized as "another Zipcode Resolver", enabling CopyCat
// to propose it as a replacement when the original is down (§3.2).
func InduceDescription(newSvc engine.Service, known []engine.Service, samples []table.Tuple) []SourceMatch {
	var out []SourceMatch
	for _, k := range known {
		if k.Name() == newSvc.Name() {
			continue
		}
		if len(k.InputSchema()) != len(newSvc.InputSchema()) ||
			len(k.OutputSchema()) != len(newSvc.OutputSchema()) {
			continue
		}
		agree, calls := 0, 0
		for _, in := range samples {
			if len(in) != len(newSvc.InputSchema()) {
				continue
			}
			a, errA := newSvc.Call(in.Clone())
			b, errB := k.Call(in.Clone())
			if errA != nil || errB != nil {
				continue
			}
			calls++
			if outputsEqual(a, b) {
				agree++
			}
		}
		if calls == 0 {
			continue
		}
		out = append(out, SourceMatch{Known: k.Name(), Score: float64(agree) / float64(calls), Calls: calls})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Known < out[j].Known
	})
	return out
}

func outputsEqual(a, b []table.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, ta := range a {
		found := false
		for j, tb := range b {
			if !used[j] && ta.Equal(tb) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
