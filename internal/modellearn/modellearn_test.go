package modellearn

import (
	"errors"
	"testing"
	"testing/quick"

	"copycat/internal/engine"
	"copycat/internal/services"
	"copycat/internal/table"
	"copycat/internal/webworld"
)

func world() *webworld.World { return webworld.Generate(webworld.DefaultConfig()) }

func trainedLib(w *webworld.World) *Library {
	l := NewLibrary()
	TrainBuiltins(l, w)
	return l
}

func TestLearnAndTypes(t *testing.T) {
	l := NewLibrary()
	if len(l.Types()) != 0 {
		t.Error("new library should be empty")
	}
	l.Learn("PR-Zip", []string{"33066", "33442", "08540"})
	if got := l.Types(); len(got) != 1 || got[0] != "PR-Zip" {
		t.Errorf("Types = %v", got)
	}
	if l.Model("PR-Zip") == nil || l.Model("Nope") != nil {
		t.Error("Model lookup wrong")
	}
	// Learning from only empty values is a no-op.
	l.Learn("Empty", []string{"", "  "})
	if l.Model("Empty") != nil {
		t.Error("empty training should not create a model")
	}
}

func TestRecognizeZipVsPhone(t *testing.T) {
	w := world()
	l := trainedLib(w)
	zips := []string{"33071", "33301", "33442"}
	scores := l.Recognize(zips)
	if len(scores) == 0 || scores[0].Type != TypeZip {
		t.Fatalf("zip column recognized as %v", scores)
	}
	phones := []string{"954-555-1234", "305-555-9876"}
	scores = l.Recognize(phones)
	if len(scores) == 0 || scores[0].Type != TypePhone {
		t.Fatalf("phone column recognized as %v", scores)
	}
	// Phones must not be recognized as zips or vice versa.
	for _, s := range l.Recognize(zips) {
		if s.Type == TypePhone {
			t.Error("zips matched PR-Phone")
		}
	}
}

func TestRecognizeStreetCityFigure1(t *testing.T) {
	// The Figure 1 moment: pasting two shelters, the system types the
	// street and city columns.
	w := world()
	l := trainedLib(w)
	s0, s1 := w.Shelters[0], w.Shelters[1]
	streetScores := l.Recognize([]string{s0.Street, s1.Street})
	if len(streetScores) == 0 || streetScores[0].Type != TypeStreet {
		t.Errorf("street column recognized as %v", streetScores)
	}
	cityScores := l.Recognize([]string{s0.City, s1.City})
	if len(cityScores) == 0 {
		t.Fatal("city column not recognized")
	}
	// City names are Capitalized-Capitalized like person last names can
	// be; the top hit must still be a name-like type, ideally PR-City.
	if cityScores[0].Type != TypeCity && cityScores[0].Type != TypePersonName {
		t.Errorf("city column recognized as %v", cityScores)
	}
	ok := false
	for _, s := range cityScores {
		if s.Type == TypeCity {
			ok = true
		}
	}
	if !ok {
		t.Errorf("PR-City not among hypotheses: %v", cityScores)
	}
}

func TestRecognizeUnknownColumn(t *testing.T) {
	l := trainedLib(world())
	weird := []string{"xy+9@@1", "##--!!"}
	scores := l.Recognize(weird)
	for _, s := range scores {
		if s.Score > 0.9 {
			t.Errorf("garbage matched %s at %f", s.Type, s.Score)
		}
	}
	if got := l.Recognize(nil); len(got) != 0 {
		t.Errorf("empty column should have no confident types: %v", got)
	}
}

func TestNewTypeAvailableSameSession(t *testing.T) {
	// §3.2: train on the first source, recognize on the second.
	l := NewLibrary()
	l.DefineType("PR-RoadName", []string{"I-95", "US-1", "SR-7", "I-595"})
	scores := l.Recognize([]string{"I-75", "US-27"})
	if len(scores) == 0 || scores[0].Type != "PR-RoadName" {
		t.Errorf("session-defined type not recognized: %v", scores)
	}
}

func TestScoreDistributionSensitivity(t *testing.T) {
	l := NewLibrary()
	// Train on mostly 5-digit with a few 9-digit zips.
	train := []string{"33066", "33067", "33068", "33442", "33071", "33301-1234"}
	l.Learn("PR-Zip", train)
	m := l.Model("PR-Zip")
	allFive := m.Score([]string{"10001", "60601", "94103"})
	mixed := m.Score([]string{"10001", "60601-9999", "94103"})
	if allFive <= 0 || mixed <= 0 {
		t.Fatal("plausible zips should score > 0")
	}
	// A column of something else entirely scores lower than real zips.
	words := m.Score([]string{"apple", "banana"})
	if words >= allFive {
		t.Errorf("words scored %f >= zips %f", words, allFive)
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	l := trainedLib(world())
	m := l.Model(TypeZip)
	f := func(vals []string) bool {
		s := m.Score(vals)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnnotateSchema(t *testing.T) {
	w := world()
	l := trainedLib(w)
	schema := table.NewSchema("A", "B", "C")
	schema[2].SemType = "Preset" // user-set types are not overwritten
	cols := [][]string{
		{w.Shelters[0].Street, w.Shelters[1].Street, w.Shelters[2].Street},
		{w.Shelters[0].Zip, w.Shelters[1].Zip},
		{"x", "y"},
	}
	hyps := l.AnnotateSchema(schema, cols)
	if schema[0].SemType != TypeStreet {
		t.Errorf("col A semtype = %q", schema[0].SemType)
	}
	if schema[1].SemType != TypeZip {
		t.Errorf("col B semtype = %q", schema[1].SemType)
	}
	if schema[2].SemType != "Preset" {
		t.Errorf("preset semtype overwritten: %q", schema[2].SemType)
	}
	if len(hyps) != 3 || len(hyps[0]) == 0 {
		t.Error("hypotheses missing")
	}
	// Fewer columns than schema: no panic.
	l.AnnotateSchema(table.NewSchema("A", "B"), [][]string{{"33066"}})
}

func TestCrossSourceTransfer(t *testing.T) {
	// Types trained from the shelter world recognize the contacts
	// spreadsheet's columns — the §3.2 cross-source scenario.
	w := world()
	l := trainedLib(w)
	var phones, emails, people []string
	for _, c := range w.Contacts[:10] {
		phones = append(phones, c.Phone)
		emails = append(emails, c.Email)
		people = append(people, c.Person)
	}
	if s := l.Recognize(phones); len(s) == 0 || s[0].Type != TypePhone {
		t.Errorf("contact phones = %v", s)
	}
	if s := l.Recognize(emails); len(s) == 0 || s[0].Type != TypeEmail {
		t.Errorf("contact emails = %v", s)
	}
	if s := l.Recognize(people); len(s) == 0 {
		t.Error("contact names unrecognized")
	}
}

// flakySvc wraps a Func and fails every call.
type errSvc struct{ inner engine.Service }

func (e errSvc) Name() string                            { return "Errs" }
func (e errSvc) InputSchema() table.Schema               { return e.inner.InputSchema() }
func (e errSvc) OutputSchema() table.Schema              { return e.inner.OutputSchema() }
func (e errSvc) Call(table.Tuple) ([]table.Tuple, error) { return nil, errors.New("down") }

func TestInduceDescription(t *testing.T) {
	w := world()
	// A "new" zip service that is behaviourally identical to the builtin.
	orig := services.NewZipResolver(w)
	clone := services.NewZipResolver(w)
	clone.SvcName = "Mystery Form"
	known := services.Builtin(w)
	var samples []table.Tuple
	for _, s := range w.Shelters[:8] {
		samples = append(samples, table.Tuple{table.S(s.Street), table.S(s.City)})
	}
	matches := InduceDescription(clone, known, samples)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if matches[0].Known != orig.Name() || matches[0].Score != 1 {
		t.Errorf("best match = %+v want %s@1.0", matches[0], orig.Name())
	}
	// The geocoder has a different output arity — it must be skipped.
	for _, m := range matches {
		if m.Known == "Geocoder" {
			t.Error("geocoder should be schema-incompatible")
		}
	}
	// A failing service produces no comparable calls.
	bad := errSvc{inner: clone}
	matches = InduceDescription(bad, known, samples)
	for _, m := range matches {
		if m.Known == orig.Name() && m.Calls > 0 {
			t.Error("failing service should not accumulate calls")
		}
	}
	// Self-comparison is excluded.
	matches = InduceDescription(orig, known, samples)
	for _, m := range matches {
		if m.Known == orig.Name() {
			t.Error("service matched itself")
		}
	}
}

func TestInduceDescriptionPartialAgreement(t *testing.T) {
	w := world()
	clone := services.NewZipResolver(w)
	clone.SvcName = "Sloppy Zip"
	inner := clone.Lookup
	calls := 0
	clone.Lookup = func(in table.Tuple) ([]table.Tuple, error) {
		calls++
		if calls%2 == 0 {
			return []table.Tuple{{table.S("00000")}}, nil
		}
		return inner(in)
	}
	var samples []table.Tuple
	for _, s := range w.Shelters[:6] {
		samples = append(samples, table.Tuple{table.S(s.Street), table.S(s.City)})
	}
	matches := InduceDescription(clone, []engine.Service{services.NewZipResolver(w)}, samples)
	if len(matches) != 1 {
		t.Fatal("want one match")
	}
	if matches[0].Score <= 0 || matches[0].Score >= 1 {
		t.Errorf("partial agreement score = %f, want strictly between 0 and 1", matches[0].Score)
	}
}

func TestOutputsEqual(t *testing.T) {
	a := []table.Tuple{{table.S("x")}, {table.S("y")}}
	b := []table.Tuple{{table.S("y")}, {table.S("x")}} // order-insensitive
	if !outputsEqual(a, b) {
		t.Error("same multiset should be equal")
	}
	if outputsEqual(a, a[:1]) {
		t.Error("different sizes should differ")
	}
	if outputsEqual(a, []table.Tuple{{table.S("x")}, {table.S("z")}}) {
		t.Error("different values should differ")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	w := world()
	l := trainedLib(w)
	dumps := l.Export()
	if len(dumps) != len(l.Types()) {
		t.Fatalf("export count = %d want %d", len(dumps), len(l.Types()))
	}
	// Dumps come back name-sorted with real patterns.
	for i := 1; i < len(dumps); i++ {
		if dumps[i-1].Name >= dumps[i].Name {
			t.Error("export not sorted")
		}
	}
	for _, d := range dumps {
		if len(d.Patterns) == 0 || d.Trained == 0 {
			t.Errorf("dump %s is empty", d.Name)
		}
		for _, p := range d.Patterns {
			if len(p.Symbols) == 0 || p.Frac <= 0 {
				t.Errorf("dump %s has a degenerate pattern", d.Name)
			}
		}
	}
	// A fresh library restored from dumps recognizes like the original.
	l2 := NewLibrary()
	l2.Import(dumps)
	if len(l2.Types()) != len(l.Types()) {
		t.Fatalf("imported types = %v", l2.Types())
	}
	zips := []string{w.Shelters[0].Zip, w.Shelters[1].Zip, w.Shelters[2].Zip}
	a := l.Recognize(zips)
	b := l2.Recognize(zips)
	if len(a) == 0 || len(b) == 0 || a[0].Type != b[0].Type {
		t.Errorf("restored recognition differs: %v vs %v", a, b)
	}
	if a[0].Score != b[0].Score {
		t.Errorf("restored score differs: %f vs %f", a[0].Score, b[0].Score)
	}
}
