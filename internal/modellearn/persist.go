package modellearn

import (
	"copycat/internal/tokenizer"
)

// PatternDump is a serializable learned pattern.
type PatternDump struct {
	Symbols []string `json:"symbols"`
	Frac    float64  `json:"frac"`
}

// ModelDump is a serializable semantic type model.
type ModelDump struct {
	Name     string        `json:"name"`
	Trained  int           `json:"trained"`
	Patterns []PatternDump `json:"patterns"`
}

// Export snapshots every learned type model for persistence.
func (l *Library) Export() []ModelDump {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []ModelDump
	for _, name := range l.typesSortedLocked() {
		m := l.types[name]
		d := ModelDump{Name: m.Name, Trained: m.trained}
		for _, pe := range m.patterns {
			pd := PatternDump{Frac: pe.frac}
			for _, s := range pe.pattern {
				pd.Symbols = append(pd.Symbols, string(s))
			}
			d.Patterns = append(d.Patterns, pd)
		}
		out = append(out, d)
	}
	return out
}

func (l *Library) typesSortedLocked() []string {
	out := make([]string, 0, len(l.types))
	for n := range l.types {
		out = append(out, n)
	}
	// insertion sort; the set is small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Import restores previously exported type models, replacing any models
// with the same names.
func (l *Library) Import(dumps []ModelDump) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, d := range dumps {
		m := &TypeModel{Name: d.Name, trained: d.Trained}
		for _, pd := range d.Patterns {
			p := make(tokenizer.Pattern, len(pd.Symbols))
			for i, s := range pd.Symbols {
				p[i] = tokenizer.Symbol(s)
			}
			m.patterns = append(m.patterns, patEntry{pattern: p, frac: pd.Frac})
		}
		l.types[d.Name] = m
	}
}
