package modellearn

import (
	"copycat/internal/webworld"
)

// Builtin semantic type names, using the paper's PR- prefix convention
// (Figure 1 suggests "PR-Street" and "PR-City" for pasted columns).
const (
	TypeStreet     = "PR-Street"
	TypeCity       = "PR-City"
	TypeZip        = "PR-Zip"
	TypeState      = "PR-State"
	TypePhone      = "PR-Phone"
	TypePersonName = "PR-PersonName"
	TypeOrgName    = "PR-OrgName"
	TypeStatus     = "PR-Status"
	TypeEmail      = "PR-Email"
)

// TrainBuiltins trains the library's builtin types from the world's
// ground truth — standing in for the "previously learned knowledge" the
// CopyCat prototype shipped with (§2.1: "Based on data patterns seen
// previously, the SCP system determines that the second and third columns
// represent street addresses and cities").
func TrainBuiltins(l *Library, w *webworld.World) {
	var streets, cities, zips, states, phones, orgs, statuses []string
	for _, s := range w.Shelters {
		streets = append(streets, s.Street)
		cities = append(cities, s.City)
		zips = append(zips, s.Zip)
		states = append(states, s.State)
		phones = append(phones, s.Phone)
		orgs = append(orgs, s.Name)
		statuses = append(statuses, s.Status)
	}
	var people, emails []string
	for _, c := range w.Contacts {
		people = append(people, c.Person)
		emails = append(emails, c.Email)
	}
	l.Learn(TypeStreet, streets)
	l.Learn(TypeCity, cities)
	l.Learn(TypeZip, zips)
	l.Learn(TypeState, states)
	l.Learn(TypePhone, phones)
	l.Learn(TypeOrgName, orgs)
	l.Learn(TypeStatus, statuses)
	l.Learn(TypePersonName, people)
	l.Learn(TypeEmail, emails)
}
