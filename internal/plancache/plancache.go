// Package plancache provides the bounded LRU result cache behind
// incremental suggestion refresh (DESIGN.md §10). Candidate plans are
// identified by a canonical fingerprint — a structural hash over the
// operators, sources, join columns, and the source-graph edge
// generations they depend on — so a cache hit means "this exact plan,
// over these exact inputs, at these exact weights, already executed".
// Values are opaque (`any`) to keep this a leaf package: the engine and
// learner store their own result types without an import cycle.
//
// The cache is safe for concurrent use; the learner's worker pool reads
// and writes it from many goroutines during one refresh.
package plancache

import "sync"

// Fingerprint is an incremental FNV-1a (64-bit) hasher for building
// canonical plan identities. Mix calls are order-sensitive, so callers
// must feed components in a fixed, documented order. The zero value is
// NOT ready to use — call NewFingerprint for the correct offset basis.
type Fingerprint struct {
	h uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewFingerprint returns a fingerprint seeded with the FNV offset basis.
func NewFingerprint() Fingerprint {
	return Fingerprint{h: fnvOffset}
}

func (f Fingerprint) byte(b byte) Fingerprint {
	f.h ^= uint64(b)
	f.h *= fnvPrime
	return f
}

// String mixes a string plus a length terminator (so "ab"+"c" and
// "a"+"bc" hash differently).
func (f Fingerprint) String(s string) Fingerprint {
	for i := 0; i < len(s); i++ {
		f = f.byte(s[i])
	}
	return f.Uint64(uint64(len(s)))
}

// Uint64 mixes a 64-bit value, little-endian.
func (f Fingerprint) Uint64(v uint64) Fingerprint {
	for i := 0; i < 8; i++ {
		f = f.byte(byte(v))
		v >>= 8
	}
	return f
}

// Int mixes a signed integer.
func (f Fingerprint) Int(v int) Fingerprint { return f.Uint64(uint64(int64(v))) }

// Sum returns the 64-bit hash accumulated so far.
func (f Fingerprint) Sum() uint64 { return f.h }

// entry is one cache slot, doubly linked in recency order.
type entry struct {
	key        uint64
	value      any
	prev, next *entry
}

// Cache is a bounded, concurrency-safe LRU mapping plan fingerprints to
// cached results. Capacity is fixed at construction; inserting past it
// evicts the least-recently-used entry. Hit/miss/eviction counters feed
// the plancache.* gauges in the workspace metrics snapshot.
type Cache struct {
	mu         sync.Mutex
	cap        int
	items      map[uint64]*entry
	head, tail *entry // head = most recent
	hits       uint64
	misses     uint64
	evictions  uint64
}

// New creates a cache holding at most capacity entries. A capacity <= 0
// is clamped to 1 so the cache stays well-formed.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache{cap: capacity, items: make(map[uint64]*entry, capacity)}
}

// Get returns the cached value for key and whether it was present,
// promoting the entry to most-recently-used.
func (c *Cache) Get(key uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.value, true
}

// Put inserts or replaces the value for key, evicting the LRU entry if
// the cache is full.
func (c *Cache) Put(key uint64, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.value = value
		c.moveToFront(e)
		return
	}
	if len(c.items) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		c.evictions++
	}
	e := &entry{key: key, value: value}
	c.items[key] = e
	c.pushFront(e)
}

// Purge empties the cache, keeping counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[uint64]*entry, c.cap)
	c.head, c.tail = nil, nil
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Cap reports the fixed capacity.
func (c *Cache) Cap() int { return c.cap }

// Stats reports lifetime hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// RestoreStats overwrites the lifetime hit/miss/eviction counters. A
// session reloaded from a persisted snapshot starts with an empty (cold)
// cache but carries its counters forward, so plancache.hit_rate and the
// :cache report stay continuous across evict/reload cycles.
func (c *Cache) RestoreStats(hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = hits, misses, evictions
}

// HitRate is hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// moveToFront promotes an already-linked entry; callers hold mu.
func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFront(e *entry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
