package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := New(2)
	if c.Cap() != 2 {
		t.Fatalf("cap = %d, want 2", c.Cap())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v.(string) != "a" {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	// 2 is now LRU; inserting 3 evicts it.
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	if v, ok := c.Get(1); !ok || v.(string) != "a" {
		t.Fatalf("Get(1) after eviction = %v, %v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v.(string) != "c" {
		t.Fatalf("Get(3) = %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses, evictions := c.Stats()
	if hits != 3 || misses != 2 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d, want 3/2/1", hits, misses, evictions)
	}
	if got := c.HitRate(); got != 0.6 {
		t.Fatalf("hit rate = %v, want 0.6", got)
	}
}

func TestPutReplacePromotes(t *testing.T) {
	c := New(2)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(1, "a2") // replace promotes 1, so 2 is LRU
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v.(string) != "a2" {
		t.Fatalf("Get(1) = %v, %v, want a2", v, ok)
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	for i := uint64(0); i < 4; i++ {
		c.Put(i, i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	for i := uint64(0); i < 4; i++ {
		if _, ok := c.Get(i); ok {
			t.Fatalf("key %d survived purge", i)
		}
	}
}

func TestCapacityClamp(t *testing.T) {
	c := New(0)
	if c.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", c.Cap())
	}
	c.Put(1, "a")
	c.Put(2, "b")
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	fp := func(parts ...string) uint64 {
		f := NewFingerprint()
		for _, p := range parts {
			f = f.String(p)
		}
		return f.Sum()
	}
	if fp("scan", "Shelters") != fp("scan", "Shelters") {
		t.Fatal("fingerprint not deterministic")
	}
	if fp("scan", "Shelters") == fp("scan", "Contacts") {
		t.Fatal("fingerprint insensitive to content")
	}
	// Length terminator: concatenation boundaries matter.
	if fp("ab", "c") == fp("a", "bc") {
		t.Fatal("fingerprint insensitive to string boundaries")
	}
	a := NewFingerprint().Uint64(7).Int(-1).Sum()
	b := NewFingerprint().Uint64(7).Int(-1).Sum()
	if a != b {
		t.Fatal("numeric fingerprint not deterministic")
	}
	if NewFingerprint().Uint64(7).Sum() == NewFingerprint().Uint64(8).Sum() {
		t.Fatal("fingerprint insensitive to uint64 value")
	}
}

// TestConcurrentAccess exercises the cache from many goroutines; run
// under -race (make test-race covers this package) to check locking.
func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := uint64(i % 100)
				if i%3 == 0 {
					c.Put(k, fmt.Sprintf("w%d-%d", w, i))
				} else {
					if v, ok := c.Get(k); ok {
						if _, isStr := v.(string); !isStr {
							t.Errorf("unexpected value type %T", v)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Cap() {
		t.Fatalf("Len %d exceeds Cap %d", c.Len(), c.Cap())
	}
}
