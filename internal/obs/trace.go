// Package obs is CopyCat's observability substrate: a span tracer, a
// metrics registry (counters, gauges, latency histograms), and a
// decision log explaining why candidate queries were pruned, degraded,
// or outranked. The whole package is zero-dependency (stdlib plus the
// repo's own resilience.Clock), concurrency-safe, and deterministic
// under an injectable clock — experiments on a VirtualClock produce
// byte-identical trace exports run after run.
//
// Everything tolerates a nil receiver: a nil *Trace, *Span, *Registry,
// *Counter, *Gauge, *Histogram, or *DecisionLog turns every method into
// a no-op. Call sites therefore never branch on "is tracing enabled";
// they just call, and the disabled path costs a single nil check.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"copycat/internal/resilience"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed region of the pipeline. Spans are created from a
// Trace (root spans) or from another Span (children), annotated with
// SetAttr, and recorded into the trace when End is called; a span that
// is never ended is dropped. A nil *Span is inert.
type Span struct {
	tr       *Trace
	id       int64
	parentID int64
	name     string
	cat      string
	start    time.Time
	attrs    []Attr
}

// Child starts a sub-span. Safe on a nil receiver (returns nil).
func (s *Span) Child(name, cat string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, cat, s.id)
}

// SetAttr annotates the span. Attrs are sorted by key at export, so
// call order does not affect the serialized trace.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
}

// End closes the span and records it into its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.record(s, s.tr.clock.Now())
}

// spanRec is a finished span as stored by the trace.
type spanRec struct {
	id, parentID int64
	name, cat    string
	startNs      int64 // offset from the trace epoch
	durNs        int64
	attrs        []Attr
}

// Trace collects spans. It is safe for concurrent use: the parallel
// candidate executor and the Lawler fan-out emit spans into one shared
// trace. A nil *Trace is inert — Start returns nil and every derived
// call no-ops — which is the disabled fast path.
type Trace struct {
	clock resilience.Clock
	epoch time.Time

	mu     sync.Mutex
	nextID int64
	spans  []spanRec
	sink   func(SpanEvent)
}

// NewTrace creates a trace on the given clock; nil means the wall
// clock. The trace epoch (timestamp zero of every export) is the
// clock's Now at creation.
func NewTrace(clock resilience.Clock) *Trace {
	if clock == nil {
		clock = resilience.SystemClock{}
	}
	return &Trace{clock: clock, epoch: clock.Now()}
}

// Clock returns the clock the trace timestamps with.
func (t *Trace) Clock() resilience.Clock {
	if t == nil {
		return resilience.SystemClock{}
	}
	return t.clock
}

// Start begins a root span. Safe on a nil receiver (returns nil).
func (t *Trace) Start(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, cat, 0)
}

func (t *Trace) newSpan(name, cat string, parent int64) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, id: id, parentID: parent, name: name, cat: cat, start: t.clock.Now()}
}

func (t *Trace) record(s *Span, end time.Time) {
	rec := spanRec{
		id:       s.id,
		parentID: s.parentID,
		name:     s.name,
		cat:      s.cat,
		startNs:  s.start.Sub(t.epoch).Nanoseconds(),
		durNs:    end.Sub(s.start).Nanoseconds(),
		attrs:    s.attrs,
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		// Outside the lock: the sink (a SpanRing) takes its own mutex and
		// may wake stream subscribers.
		sink(SpanEvent{
			ID:      rec.id,
			Parent:  rec.parentID,
			Name:    rec.name,
			Cat:     rec.cat,
			StartNs: rec.startNs,
			DurNs:   rec.durNs,
			Attrs:   append([]Attr(nil), rec.attrs...),
		})
	}
}

// SetSink installs a live exporter called with every span as it ends
// (in end order, concurrently with recording). nil removes it. The
// telemetry server wires a SpanRing's Publish here to feed
// /trace/stream.
func (t *Trace) SetSink(sink func(SpanEvent)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = sink
	t.mu.Unlock()
}

// Len reports the number of recorded (ended) spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset drops every recorded span, keeping the clock and epoch.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// ---------------------------------------------------------------- export

// exportSpan is a span with its export-stable id assignment.
type exportSpan struct {
	spanRec
	exportID       int64
	parentExportID int64
	tid            int64 // lane: the export id of the span's root ancestor
}

// attrKey renders attrs as a sort key so sibling ordering is stable.
func attrKey(attrs []Attr) string {
	sorted := append([]Attr(nil), attrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := ""
	for _, a := range sorted {
		key += a.Key + "=" + a.Value + ";"
	}
	return key
}

// ordered lays the recorded spans out deterministically: siblings sort
// by (start, duration, name, attrs), then a depth-first walk assigns
// sequential export ids. Two runs producing the same span set — however
// the goroutines interleaved — export byte-identical JSON, which is
// what makes virtual-clock traces diffable artifacts.
func (t *Trace) ordered() []*exportSpan {
	t.mu.Lock()
	spans := append([]spanRec(nil), t.spans...)
	t.mu.Unlock()

	byID := make(map[int64]bool, len(spans))
	for _, s := range spans {
		byID[s.id] = true
	}
	children := map[int64][]*exportSpan{}
	for i := range spans {
		es := &exportSpan{spanRec: spans[i]}
		parent := es.parentID
		if !byID[parent] {
			parent = 0 // orphan (parent never ended): export as a root
		}
		children[parent] = append(children[parent], es)
	}
	for _, sibs := range children {
		sort.SliceStable(sibs, func(i, j int) bool {
			a, b := sibs[i], sibs[j]
			if a.startNs != b.startNs {
				return a.startNs < b.startNs
			}
			if a.durNs != b.durNs {
				return a.durNs < b.durNs
			}
			if a.name != b.name {
				return a.name < b.name
			}
			return attrKey(a.attrs) < attrKey(b.attrs)
		})
	}
	var out []*exportSpan
	var next int64
	var walk func(parent int64, parentExport, tid int64)
	walk = func(parent int64, parentExport, tid int64) {
		for _, es := range children[parent] {
			next++
			es.exportID = next
			es.parentExportID = parentExport
			if tid == 0 {
				es.tid = es.exportID // each root span opens its own lane
			} else {
				es.tid = tid
			}
			out = append(out, es)
			walk(es.id, es.exportID, es.tid)
		}
	}
	walk(0, 0, 0)
	return out
}

// chromeEvent is one Chrome trace_event entry ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur"`
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome serializes the trace in Chrome trace_event JSON — load
// the file at chrome://tracing or https://ui.perfetto.dev. Events nest
// by time within a lane (tid); each root span and its subtree share a
// lane, so concurrent candidate executions render side by side.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	events := make([]chromeEvent, 0, t.Len())
	for _, es := range t.ordered() {
		ev := chromeEvent{
			Name: es.name,
			Cat:  es.cat,
			Ph:   "X",
			Ts:   float64(es.startNs) / 1e3,
			Dur:  float64(es.durNs) / 1e3,
			Pid:  1,
			Tid:  es.tid,
		}
		if len(es.attrs) > 0 {
			ev.Args = make(map[string]string, len(es.attrs))
			for _, a := range es.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// jsonlSpan is one span as a JSONL record.
type jsonlSpan struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent"`
	Name    string `json:"name"`
	Cat     string `json:"cat"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// WriteJSONL serializes the trace as one span per line, parent before
// child, in the same deterministic order as WriteChrome.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, es := range t.ordered() {
		attrs := append([]Attr(nil), es.attrs...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
		rec := jsonlSpan{
			ID:      es.exportID,
			Parent:  es.parentExportID,
			Name:    es.name,
			Cat:     es.cat,
			StartNs: es.startNs,
			DurNs:   es.durNs,
			Attrs:   attrs,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
