package obs

import (
	"strings"
	"testing"
)

func TestQualityTrackerSnapshot(t *testing.T) {
	q := NewQualityTracker()
	q.Accept(FeedbackColumns, 0, 2)
	q.Accept(FeedbackQueries, 1, 0) // rounds unknown: not in the rounds mean
	q.Accept(FeedbackRows, 5, 1)    // deep rank lands in the overflow bucket
	q.Reject(FeedbackColumns)
	q.Reject(FeedbackTuples)
	q.UndoAccept(FeedbackColumns)
	q.Observe(QualityEvent{Kind: "bogus", Accepted: true}) // unknown kind dropped

	st := q.Snapshot()
	if st.TotalAccepts != 3 || st.TotalRejects != 2 {
		t.Fatalf("totals = %d/%d, want 3/2", st.TotalAccepts, st.TotalRejects)
	}
	if want := 3.0 / 5.0; st.AcceptanceRate != want {
		t.Errorf("acceptance rate = %v, want %v", st.AcceptanceRate, want)
	}
	if st.Accepts[FeedbackColumns] != 1 || st.Rejects[FeedbackTuples] != 1 {
		t.Errorf("per-kind counts wrong: %+v", st)
	}
	if st.AcceptedRank[0] != 1 || st.AcceptedRank[1] != 1 || st.AcceptedRank[3] != 1 {
		t.Errorf("rank histogram = %v, want [1 1 0 1]", st.AcceptedRank)
	}
	if want := (0.0 + 1 + 5) / 3; st.MeanAcceptedRank != want {
		t.Errorf("mean rank = %v, want %v", st.MeanAcceptedRank, want)
	}
	// Only the two accepts with known rounds contribute.
	if st.RoundsObserved != 2 || st.MeanRounds != 1.5 {
		t.Errorf("rounds = %d mean %v, want 2 mean 1.5", st.RoundsObserved, st.MeanRounds)
	}
	if st.AcceptsUndone != 1 {
		t.Errorf("undone = %d, want 1", st.AcceptsUndone)
	}
}

// TestQualityTrackerRestoreRoundTrip: Restore must reproduce the
// snapshot exactly — including the sums behind the means — so a
// session's quality counters stay continuous across evict/reload.
func TestQualityTrackerRestoreRoundTrip(t *testing.T) {
	q := NewQualityTracker()
	q.Accept(FeedbackColumns, 2, 3)
	q.Accept(FeedbackRows, 0, 1)
	q.Reject(FeedbackQueries)
	q.UndoAccept(FeedbackRows)
	before := q.Snapshot()

	q2 := NewQualityTracker()
	q2.Restore(before)
	after := q2.Snapshot()
	if before.TotalAccepts != after.TotalAccepts ||
		before.MeanAcceptedRank != after.MeanAcceptedRank ||
		before.MeanRounds != after.MeanRounds ||
		before.AcceptsUndone != after.AcceptsUndone {
		t.Fatalf("restore diverged:\nbefore %+v\nafter  %+v", before, after)
	}
	// Restored counters keep accumulating correctly.
	q2.Accept(FeedbackColumns, 0, 1)
	if st := q2.Snapshot(); st.TotalAccepts != before.TotalAccepts+1 {
		t.Errorf("accumulation after restore: %d, want %d", st.TotalAccepts, before.TotalAccepts+1)
	}
}

func TestQualityTrackerNilSafe(t *testing.T) {
	var q *QualityTracker
	q.Accept(FeedbackColumns, 0, 0) // must not panic
	q.Restore(QualityStats{})
	st := q.Snapshot()
	if st.TotalAccepts != 0 || st.Accepts == nil || len(st.AcceptedRank) != QualityRankBuckets {
		t.Errorf("nil tracker snapshot malformed: %+v", st)
	}
}

func TestQualityFold(t *testing.T) {
	q := NewQualityTracker()
	q.Accept(FeedbackColumns, 0, 1)
	q.Accept(FeedbackQueries, 2, 2)
	q.Reject(FeedbackColumns)
	snap := NewRegistry().Snapshot()
	q.Fold(snap)
	for name, want := range map[string]int64{
		"quality.accepts":          2,
		"quality.rejects":          1,
		"quality.columns_accepted": 1,
		"quality.columns_rejected": 1,
		"quality.queries_accepted": 1,
		"quality.accepted_rank_0":  1,
		"quality.accepted_rank_2":  1,
		"quality.accepts_undone":   0,
	} {
		if snap.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, snap.Counters[name], want)
		}
	}
	if snap.Gauges["quality.acceptance_rate"] != 2.0/3.0 {
		t.Errorf("acceptance_rate gauge = %v", snap.Gauges["quality.acceptance_rate"])
	}
	if snap.Gauges["quality.mean_rounds_to_accept"] != 1.5 {
		t.Errorf("mean_rounds gauge = %v", snap.Gauges["quality.mean_rounds_to_accept"])
	}
	// Every folded family sits under the quality.* prefix.
	for name := range snap.Counters {
		if !strings.HasPrefix(name, "quality.") {
			t.Errorf("unexpected counter %s from Fold", name)
		}
	}
}
