package obs

import "context"

// spanKey is the context key carrying the current span.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the current span.
// Deep pipeline layers that only see a context.Context (the Steiner
// enumeration, for one) pull it back out with SpanFromContext and hang
// their sub-spans off it — no API change required along the way.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil (inert) if none.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
