// Package flight is CopyCat's flight recorder: an always-on, bounded,
// low-overhead recorder that continuously retains the recent past —
// spans, decision-log entries, periodic metric snapshots, and lifecycle
// events (breaker transitions, eviction attempts and failures,
// solver-tier picks, refine failures, store quarantines, admission
// sheds) — so that when something goes wrong the causal context is
// still there to explain it.
//
// Trigger rules (SLO fast-burn, breaker open, eviction failure, refine
// failure, store quarantine, SIGQUIT) capture a self-contained JSON
// incident bundle: the trigger, pre/post metric snapshots with counter
// deltas, the retained timeline, per-session and per-tenant
// attribution, and runtime stats. Bundles are kept in a bounded
// in-memory list and, when a directory is configured, written to a
// bounded on-disk incident dir (atomic temp+rename, oldest pruned).
// Per-trigger cooldowns and the incidents.suppressed counter keep
// incident storms from flooding the disk.
//
// Everything runs on an injectable clock, so virtual-clock sessions
// capture deterministically. A nil *Recorder is inert, like the rest of
// the obs substrate, so wiring can be unconditional.
package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"copycat/internal/obs"
)

// Lifecycle event kinds recorded into the timeline.
const (
	// EventBreaker is a circuit-breaker state transition.
	EventBreaker = "breaker.transition"
	// EventEvict is a successful session eviction to the store.
	EventEvict = "session.evict"
	// EventEvictError is a failed eviction (snapshot or store error).
	EventEvictError = "session.evict_error"
	// EventShed is an admission-control rejection of a session create.
	EventShed = "admission.shed"
	// EventRefineFailed is a failed background exact refinement.
	EventRefineFailed = "solver.refine_failed"
	// EventQuarantine is a corrupt snapshot moved to quarantine.
	EventQuarantine = "store.quarantine"
)

// Trigger kinds. Each kind has its own capture cooldown; captures
// suppressed by the cooldown increment incidents.suppressed.
const (
	// TriggerSLOFastBurn fires when a stage completion sees the SLO
	// fast-burn alert raised.
	TriggerSLOFastBurn = "slo.fastburn"
	// TriggerBreakerOpen fires when a service circuit breaker opens.
	TriggerBreakerOpen = "breaker.open"
	// TriggerEvictError fires when a session eviction fails.
	TriggerEvictError = "evict.error"
	// TriggerRefineFailure fires when a background exact refinement
	// errors out or returns no trees.
	TriggerRefineFailure = "refine.failed"
	// TriggerStoreQuarantine fires when the snapshot store quarantines a
	// corrupt file.
	TriggerStoreQuarantine = "store.quarantine"
	// TriggerSignal fires on an operator SIGQUIT — capture-on-demand.
	TriggerSignal = "sigquit"
)

// Event is one lifecycle event in the retained timeline.
type Event struct {
	Seq     int64  `json:"seq"`
	AtNs    int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Session string `json:"session,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// SpanRecord is one retained span with its arrival timestamp on the
// recorder clock (span StartNs/DurNs are trace-epoch-relative).
type SpanRecord struct {
	AtNs int64         `json:"at_ns"`
	Span obs.SpanEvent `json:"span"`
}

// DecisionRecord is one retained decision-log entry with its arrival
// timestamp.
type DecisionRecord struct {
	AtNs     int64        `json:"at_ns"`
	Decision obs.Decision `json:"decision"`
}

// snapRecord is one periodic metric snapshot.
type snapRecord struct {
	at   time.Time
	snap obs.Snapshot
}

// ring is a fixed-capacity circular buffer. Once the backing array is
// full, every push overwrites the oldest entry in place — the steady
// state of an always-on recorder allocates nothing, which is what keeps
// the per-span feed off the GC (the previous drop-oldest-half scheme
// re-allocated half the ring every overflow and dominated the
// recorder's measured overhead). The backing array is allocated lazily
// at first push, so the per-workspace recorders of hosted sessions
// (which feed a shared manager recorder instead) stay at zero bytes.
type ring[T any] struct {
	max  int
	buf  []T
	head int // oldest entry once the buffer is full; 0 while filling
}

func (g *ring[T]) push(v T) {
	if g.buf == nil {
		g.buf = make([]T, 0, g.max)
	}
	if len(g.buf) < g.max {
		g.buf = append(g.buf, v)
		return
	}
	g.buf[g.head] = v
	g.head = (g.head + 1) % g.max
}

func (g *ring[T]) len() int { return len(g.buf) }

// ordered copies the retained entries oldest-first (capture path only).
func (g *ring[T]) ordered() []T {
	out := make([]T, 0, len(g.buf))
	out = append(out, g.buf[g.head:]...)
	out = append(out, g.buf[:g.head]...)
	return out
}

// Config sizes and wires a Recorder. Zero fields take defaults.
type Config struct {
	// Retention bounds how far back a captured bundle's timeline
	// reaches. Default 60s.
	Retention time.Duration
	// Cooldown is the per-trigger-kind minimum spacing between captures;
	// triggers inside it are suppressed (and counted). Default 30s.
	Cooldown time.Duration
	// MaxEvents/MaxSpans/MaxDecisions cap the retained rings (circular:
	// the oldest entry is overwritten on overflow). Defaults
	// 512/2048/1024.
	MaxEvents    int
	MaxSpans     int
	MaxDecisions int
	// SnapshotEvery paces the periodic metric snapshots that become a
	// bundle's "pre" state. Default 5s.
	SnapshotEvery time.Duration
	// MaxIncidents bounds both the in-memory incident list and the
	// on-disk incident dir (oldest pruned). Default 16.
	MaxIncidents int
	// Dir, when non-empty, is the on-disk incident directory bundles are
	// written to (atomic temp+rename).
	Dir string
	// Clock supplies timestamps; nil means the wall clock. Inject the
	// session's virtual clock for deterministic capture tests.
	Clock func() time.Time
	// Metrics, when non-nil, supplies the periodic and capture-time
	// metric snapshots (pre/post state in bundles).
	Metrics func() obs.Snapshot
	// Registry receives the incidents.captured / incidents.suppressed
	// counters and the incidents.stored gauge (exported by the telemetry
	// server as the copycat_incidents_* families). nil keeps them in a
	// private registry.
	Registry *obs.Registry
}

// Defaults for Config's zero fields.
const (
	DefaultRetention     = 60 * time.Second
	DefaultCooldown      = 30 * time.Second
	DefaultMaxEvents     = 512
	DefaultMaxSpans      = 2048
	DefaultMaxDecisions  = 1024
	DefaultSnapshotEvery = 5 * time.Second
	DefaultMaxIncidents  = 16
)

// maxSnaps bounds the periodic-snapshot ring.
const maxSnaps = 16

func (c Config) withDefaults() Config {
	if c.Retention <= 0 {
		c.Retention = DefaultRetention
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = DefaultMaxSpans
	}
	if c.MaxDecisions <= 0 {
		c.MaxDecisions = DefaultMaxDecisions
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = DefaultMaxIncidents
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// RuntimeStats is the process-level state captured into a bundle.
type RuntimeStats struct {
	Goroutines      int    `json:"goroutines"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	GOMAXPROCS      int    `json:"gomaxprocs"`
}

// Attribution counts how much of a bundle's timeline belongs to one
// session or tenant.
type Attribution struct {
	Events    int `json:"events,omitempty"`
	Spans     int `json:"spans,omitempty"`
	Decisions int `json:"decisions,omitempty"`
}

// Incident is one self-contained captured bundle — everything an
// operator needs to post-mortem the trigger without the live process.
type Incident struct {
	ID           string `json:"id"`
	Trigger      string `json:"trigger"`
	Reason       string `json:"reason,omitempty"`
	Session      string `json:"session,omitempty"`
	Tenant       string `json:"tenant,omitempty"`
	CapturedAtNs int64  `json:"captured_at_ns"`
	// Pre is the newest periodic metric snapshot preceding the capture
	// (PreAgeNs earlier); Post is taken at capture time. CounterDeltas
	// is post minus pre for every counter that moved.
	Pre           obs.Snapshot     `json:"pre"`
	PreAgeNs      int64            `json:"pre_age_ns,omitempty"`
	Post          obs.Snapshot     `json:"post"`
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
	// The retained timeline, oldest first, bounded by the retention
	// window and the ring caps.
	Events    []Event          `json:"events,omitempty"`
	Spans     []SpanRecord     `json:"spans,omitempty"`
	Decisions []DecisionRecord `json:"decisions,omitempty"`
	// Per-session / per-tenant share of the timeline.
	Sessions map[string]Attribution `json:"sessions,omitempty"`
	Tenants  map[string]Attribution `json:"tenants,omitempty"`
	Runtime  RuntimeStats           `json:"runtime"`
}

// Summary describes one captured incident (the GET /incidents list and
// the REPL :incidents table).
type Summary struct {
	ID           string `json:"id"`
	Trigger      string `json:"trigger"`
	Reason       string `json:"reason,omitempty"`
	Session      string `json:"session,omitempty"`
	Tenant       string `json:"tenant,omitempty"`
	CapturedAtNs int64  `json:"captured_at_ns"`
	Events       int    `json:"events"`
	Spans        int    `json:"spans"`
	Decisions    int    `json:"decisions"`
}

// Recorder is the flight recorder. Safe for concurrent use; a nil
// *Recorder is inert (every method no-ops), so observers can be wired
// unconditionally and detached by wiring nil.
type Recorder struct {
	mu          sync.Mutex
	cfg         Config
	seq         int64
	nextID      int64
	events      ring[Event]
	spans       ring[SpanRecord]
	decisions   ring[DecisionRecord]
	snaps       []snapRecord
	lastSnap    time.Time
	lastTrigger map[string]time.Time
	incidents   []*Incident

	captured   *obs.Counter
	suppressed *obs.Counter
	stored     *obs.Gauge
}

// New builds a recorder; zero Config fields take defaults. The
// incidents.captured and incidents.suppressed counters are created
// immediately so the metric families exist (at zero) before the first
// incident.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:         cfg,
		events:      ring[Event]{max: cfg.MaxEvents},
		spans:       ring[SpanRecord]{max: cfg.MaxSpans},
		decisions:   ring[DecisionRecord]{max: cfg.MaxDecisions},
		lastTrigger: map[string]time.Time{},
		captured:    cfg.Registry.Counter("incidents.captured"),
		suppressed:  cfg.Registry.Counter("incidents.suppressed"),
		stored:      cfg.Registry.Gauge("incidents.stored"),
	}
}

func (r *Recorder) now() time.Time { return r.cfg.Clock() }

// SetDir points the recorder at an on-disk incident directory (bundles
// captured from now on are persisted there). "" disables persistence.
func (r *Recorder) SetDir(dir string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cfg.Dir = dir
	r.mu.Unlock()
}

// SetCooldown overrides the per-trigger-kind capture cooldown.
func (r *Recorder) SetCooldown(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.mu.Lock()
	r.cfg.Cooldown = d
	r.mu.Unlock()
}

// RecordEvent retains one lifecycle event.
func (r *Recorder) RecordEvent(kind, session, tenant, detail string) {
	if r == nil {
		return
	}
	now := r.now()
	r.mu.Lock()
	r.seq++
	r.events.push(Event{
		Seq: r.seq, AtNs: now.UnixNano(),
		Kind: kind, Session: session, Tenant: tenant, Detail: detail,
	})
	due := r.snapshotDueLocked(now)
	r.mu.Unlock()
	if due {
		r.takeSnapshot(now)
	}
}

// ObserveSpan retains one finished span (the trace sink fans ended
// spans here alongside the live span ring).
func (r *Recorder) ObserveSpan(ev obs.SpanEvent) {
	if r == nil {
		return
	}
	now := r.now()
	r.mu.Lock()
	r.spans.push(SpanRecord{AtNs: now.UnixNano(), Span: ev})
	due := r.snapshotDueLocked(now)
	r.mu.Unlock()
	if due {
		r.takeSnapshot(now)
	}
}

// ObserveDecision retains one decision-log entry (the decision log's
// sink).
func (r *Recorder) ObserveDecision(d obs.Decision) {
	if r == nil {
		return
	}
	now := r.now()
	r.mu.Lock()
	r.decisions.push(DecisionRecord{AtNs: now.UnixNano(), Decision: d})
	due := r.snapshotDueLocked(now)
	r.mu.Unlock()
	if due {
		r.takeSnapshot(now)
	}
}

// snapshotDueLocked decides (under r.mu, on the observation's already
// read clock) whether a periodic metric snapshot is due, and claims
// the slot if so — the caller takes the snapshot after unlocking, so
// the Metrics callback (which reads other subsystems' locks) never
// runs under the recorder lock.
func (r *Recorder) snapshotDueLocked(now time.Time) bool {
	if r.cfg.Metrics == nil {
		return false
	}
	if !r.lastSnap.IsZero() && now.Before(r.lastSnap) {
		// The clock moved backwards (a virtual clock was injected after
		// construction): re-anchor rather than stall forever.
		r.lastSnap = time.Time{}
		r.lastTrigger = map[string]time.Time{}
	}
	due := r.lastSnap.IsZero() || now.Sub(r.lastSnap) >= r.cfg.SnapshotEvery
	if due {
		r.lastSnap = now
	}
	return due
}

// takeSnapshot captures one periodic metric snapshot claimed by
// snapshotDueLocked.
func (r *Recorder) takeSnapshot(now time.Time) {
	snap := r.cfg.Metrics()
	r.mu.Lock()
	r.snaps = append(r.snaps, snapRecord{at: now, snap: snap})
	if len(r.snaps) > maxSnaps {
		r.snaps = append(r.snaps[:0:0], r.snaps[1:]...)
	}
	r.mu.Unlock()
}

// Armed reports whether a trigger of this kind would capture right now
// (i.e. it is outside the kind's cooldown). Hot paths check it before
// computing an expensive trigger condition; a nil recorder is never
// armed.
func (r *Recorder) Armed(kind string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	last, ok := r.lastTrigger[kind]
	if !ok {
		return true
	}
	now := r.now()
	if now.Before(last) {
		return true
	}
	return now.Sub(last) >= r.cfg.Cooldown
}

// Trigger captures an incident bundle for the given trigger kind,
// unless a capture of the same kind happened within the cooldown — then
// it is suppressed (incidents.suppressed). Returns the incident ID and
// whether a bundle was captured.
func (r *Recorder) Trigger(kind, reason, session, tenant string) (string, bool) {
	if r == nil {
		return "", false
	}
	r.mu.Lock()
	now := r.now()
	if last, ok := r.lastTrigger[kind]; ok && !now.Before(last) && now.Sub(last) < r.cfg.Cooldown {
		r.mu.Unlock()
		r.suppressed.Inc()
		return "", false
	}
	r.lastTrigger[kind] = now
	cutoff := now.Add(-r.cfg.Retention).UnixNano()
	events := filterEvents(r.events.ordered(), cutoff)
	spans := filterSpans(r.spans.ordered(), cutoff)
	decisions := filterDecisions(r.decisions.ordered(), cutoff)
	var pre obs.Snapshot
	var preAge int64
	for i := len(r.snaps) - 1; i >= 0; i-- {
		if !r.snaps[i].at.After(now) {
			pre = r.snaps[i].snap
			preAge = now.Sub(r.snaps[i].at).Nanoseconds()
			break
		}
	}
	r.nextID++
	id := fmt.Sprintf("inc-%06d-%s", r.nextID, sanitizeID(kind))
	r.mu.Unlock()

	var post obs.Snapshot
	if r.cfg.Metrics != nil {
		post = r.cfg.Metrics()
	}
	inc := &Incident{
		ID: id, Trigger: kind, Reason: reason, Session: session, Tenant: tenant,
		CapturedAtNs:  now.UnixNano(),
		Pre:           pre,
		PreAgeNs:      preAge,
		Post:          post,
		CounterDeltas: counterDeltas(pre, post),
		Events:        events,
		Spans:         spans,
		Decisions:     decisions,
		Runtime:       captureRuntime(),
	}
	inc.Sessions, inc.Tenants = attribute(inc)

	r.mu.Lock()
	r.incidents = append(r.incidents, inc)
	if len(r.incidents) > r.cfg.MaxIncidents {
		r.incidents = append(r.incidents[:0:0], r.incidents[len(r.incidents)-r.cfg.MaxIncidents:]...)
	}
	n := len(r.incidents)
	dir, keep := r.cfg.Dir, r.cfg.MaxIncidents
	r.mu.Unlock()
	r.captured.Inc()
	r.stored.Set(float64(n))
	if dir != "" {
		// Best-effort: a full disk must not take the serving path down.
		_ = writeBundle(dir, inc, keep)
	}
	return id, true
}

// Incidents lists the retained bundles, newest first.
func (r *Recorder) Incidents() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, len(r.incidents))
	for i := len(r.incidents) - 1; i >= 0; i-- {
		inc := r.incidents[i]
		out = append(out, Summary{
			ID: inc.ID, Trigger: inc.Trigger, Reason: inc.Reason,
			Session: inc.Session, Tenant: inc.Tenant,
			CapturedAtNs: inc.CapturedAtNs,
			Events:       len(inc.Events), Spans: len(inc.Spans), Decisions: len(inc.Decisions),
		})
	}
	return out
}

// Incident fetches one retained bundle by ID.
func (r *Recorder) Incident(id string) (*Incident, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, inc := range r.incidents {
		if inc.ID == id {
			return inc, true
		}
	}
	return nil, false
}

// Captured reports how many bundles this recorder has captured.
func (r *Recorder) Captured() int64 {
	if r == nil {
		return 0
	}
	return r.captured.Load()
}

// Suppressed reports how many triggers the cooldowns suppressed.
func (r *Recorder) Suppressed() int64 {
	if r == nil {
		return 0
	}
	return r.suppressed.Load()
}

// Retained reports the current ring occupancy (events, spans,
// decisions) — the overhead experiment asserts the recorder actually
// recorded something.
func (r *Recorder) Retained() (events, spans, decisions int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events.len(), r.spans.len(), r.decisions.len()
}

// ---------------------------------------------------------------- capture helpers

func filterEvents(evs []Event, cutoff int64) []Event {
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if e.AtNs >= cutoff {
			out = append(out, e)
		}
	}
	return out
}

func filterSpans(sps []SpanRecord, cutoff int64) []SpanRecord {
	out := make([]SpanRecord, 0, len(sps))
	for _, s := range sps {
		if s.AtNs >= cutoff {
			out = append(out, s)
		}
	}
	return out
}

func filterDecisions(ds []DecisionRecord, cutoff int64) []DecisionRecord {
	out := make([]DecisionRecord, 0, len(ds))
	for _, d := range ds {
		if d.AtNs >= cutoff {
			out = append(out, d)
		}
	}
	return out
}

// counterDeltas is post minus pre for every counter that moved; nil
// when there is no pre snapshot to diff against.
func counterDeltas(pre, post obs.Snapshot) map[string]int64 {
	if pre.Counters == nil || post.Counters == nil {
		return nil
	}
	out := map[string]int64{}
	for k, v := range post.Counters {
		if d := v - pre.Counters[k]; d != 0 {
			out[k] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func captureRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
	}
}

// attribute counts the bundle's timeline per session and per tenant.
func attribute(inc *Incident) (sessions, tenants map[string]Attribution) {
	sessions = map[string]Attribution{}
	tenants = map[string]Attribution{}
	bump := func(m map[string]Attribution, key string, f func(*Attribution)) {
		if key == "" {
			return
		}
		a := m[key]
		f(&a)
		m[key] = a
	}
	for _, e := range inc.Events {
		bump(sessions, e.Session, func(a *Attribution) { a.Events++ })
		bump(tenants, e.Tenant, func(a *Attribution) { a.Events++ })
	}
	for _, s := range inc.Spans {
		bump(sessions, spanSession(s.Span), func(a *Attribution) { a.Spans++ })
	}
	for _, d := range inc.Decisions {
		bump(sessions, d.Decision.Session, func(a *Attribution) { a.Decisions++ })
	}
	if len(sessions) == 0 {
		sessions = nil
	}
	if len(tenants) == 0 {
		tenants = nil
	}
	return sessions, tenants
}

// spanSession reads a span's "session" attribute ("" when untagged).
func spanSession(sp obs.SpanEvent) string {
	for _, a := range sp.Attrs {
		if a.Key == "session" {
			return a.Value
		}
	}
	return ""
}

// sanitizeID maps a trigger kind onto a filename-safe ID suffix.
func sanitizeID(kind string) string {
	var b strings.Builder
	b.Grow(len(kind))
	for _, r := range kind {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- on-disk bundles

// bundleSuffix names incident files: <id>.json.
const bundleSuffix = ".json"

// writeBundle persists one incident atomically (temp + rename) and
// prunes the directory to the newest `keep` bundles. Incident IDs are
// zero-padded sequence numbers, so lexicographic filename order is
// capture order.
func writeBundle(dir string, inc *Incident, keep int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(inc, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, inc.ID+bundleSuffix+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, inc.ID+bundleSuffix)); err != nil {
		os.Remove(tmp)
		return err
	}
	return pruneBundles(dir, keep)
}

// pruneBundles deletes the oldest bundles beyond keep.
func pruneBundles(dir string, keep int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), bundleSuffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) <= keep {
		return nil
	}
	sort.Strings(names)
	for _, name := range names[:len(names)-keep] {
		os.Remove(filepath.Join(dir, name))
	}
	return nil
}

// ReadBundle loads an incident bundle from a JSON file written by
// writeBundle (the -analyze-incident path).
func ReadBundle(path string) (*Incident, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		return nil, fmt.Errorf("flight: %s is not an incident bundle: %w", path, err)
	}
	if inc.ID == "" || inc.Trigger == "" {
		return nil, fmt.Errorf("flight: %s is not an incident bundle (no id/trigger)", path)
	}
	return &inc, nil
}
