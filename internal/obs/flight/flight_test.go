package flight

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"copycat/internal/obs"
)

// testClock is a hand-advanced clock for deterministic capture tests.
type testClock struct{ now time.Time }

func (c *testClock) Now() time.Time          { return c.now }
func (c *testClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *testClock) Set(t time.Time)         { c.now = t }
func newTestClock() *testClock               { return &testClock{now: time.Unix(1_000_000, 0)} }
func newTestRecorder(c *testClock, cfg Config) *Recorder {
	cfg.Clock = c.Now
	return New(cfg)
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.RecordEvent(EventBreaker, "s1", "t1", "closed -> open")
	r.ObserveSpan(obs.SpanEvent{Name: "x"})
	r.ObserveDecision(obs.Decision{Candidate: "c"})
	r.SetDir("/nope")
	r.SetCooldown(time.Second)
	if r.Armed(TriggerBreakerOpen) {
		t.Error("nil recorder should never be armed")
	}
	if id, ok := r.Trigger(TriggerBreakerOpen, "r", "", ""); ok || id != "" {
		t.Errorf("nil recorder captured %q", id)
	}
	if got := r.Incidents(); got != nil {
		t.Errorf("nil recorder listed incidents: %v", got)
	}
	if _, ok := r.Incident("inc-000001-x"); ok {
		t.Error("nil recorder returned an incident")
	}
	if r.Captured() != 0 || r.Suppressed() != 0 {
		t.Error("nil recorder has nonzero counters")
	}
	if e, s, d := r.Retained(); e+s+d != 0 {
		t.Error("nil recorder retains data")
	}
}

// TestTriggerCooldownCapturesExactlyOnce is the core exactly-once
// guarantee: repeated triggers of one kind inside the cooldown window
// are suppressed and counted, a different kind still captures, and the
// same kind captures again once the cooldown has elapsed.
func TestTriggerCooldownCapturesExactlyOnce(t *testing.T) {
	clk := newTestClock()
	r := newTestRecorder(clk, Config{Cooldown: 30 * time.Second})
	id1, ok := r.Trigger(TriggerBreakerOpen, "geocoder tripped", "s1", "")
	if !ok || id1 == "" {
		t.Fatalf("first trigger should capture, got %q %v", id1, ok)
	}
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		if _, ok := r.Trigger(TriggerBreakerOpen, "again", "s1", ""); ok {
			t.Fatalf("trigger %d inside cooldown should be suppressed", i)
		}
	}
	if got := r.Suppressed(); got != 3 {
		t.Errorf("suppressed = %d, want 3", got)
	}
	if got := r.Captured(); got != 1 {
		t.Errorf("captured = %d, want 1", got)
	}
	// A different trigger kind has its own cooldown.
	if _, ok := r.Trigger(TriggerEvictError, "disk full", "s2", "acme"); !ok {
		t.Error("different trigger kind should not share the cooldown")
	}
	// After the cooldown the original kind fires again.
	clk.Advance(31 * time.Second)
	if !r.Armed(TriggerBreakerOpen) {
		t.Error("should be armed after cooldown")
	}
	id2, ok := r.Trigger(TriggerBreakerOpen, "tripped again", "s1", "")
	if !ok {
		t.Fatal("post-cooldown trigger should capture")
	}
	if id2 == id1 {
		t.Errorf("incident IDs should be unique, both %q", id1)
	}
	if got := r.Captured(); got != 3 {
		t.Errorf("captured = %d, want 3", got)
	}
}

// TestTimelineRetentionAndAttribution checks that a bundle carries only
// the retention window and attributes its contents per session/tenant.
func TestTimelineRetentionAndAttribution(t *testing.T) {
	clk := newTestClock()
	r := newTestRecorder(clk, Config{Retention: 60 * time.Second})
	// Old data outside the retention window must not appear.
	r.RecordEvent(EventEvict, "old-session", "old-tenant", "too old")
	clk.Advance(2 * time.Minute)
	r.RecordEvent(EventBreaker, "s1", "", "geocoder: closed -> open")
	r.ObserveSpan(obs.SpanEvent{Seq: 1, Name: "stage.execute", DurNs: 1500, Attrs: []obs.Attr{
		{Key: "session", Value: "s1"}, {Key: "error", Value: "breaker geocoder open"},
	}})
	r.ObserveDecision(obs.Decision{Seq: 1, Session: "s1", Stage: "session.evict", Candidate: "s1", Action: obs.ActionDropped, Reason: "x"})
	r.RecordEvent(EventShed, "", "acme", "at capacity")
	id, ok := r.Trigger(TriggerBreakerOpen, "geocoder open", "s1", "")
	if !ok {
		t.Fatal("trigger should capture")
	}
	inc, ok := r.Incident(id)
	if !ok {
		t.Fatal("captured incident should be retrievable")
	}
	if len(inc.Events) != 2 {
		t.Fatalf("events = %d, want 2 (stale one dropped): %+v", len(inc.Events), inc.Events)
	}
	for _, e := range inc.Events {
		if e.Session == "old-session" {
			t.Error("event outside the retention window leaked into the bundle")
		}
	}
	if len(inc.Spans) != 1 || len(inc.Decisions) != 1 {
		t.Fatalf("spans=%d decisions=%d, want 1/1", len(inc.Spans), len(inc.Decisions))
	}
	a := inc.Sessions["s1"]
	if a.Events != 1 || a.Spans != 1 || a.Decisions != 1 {
		t.Errorf("s1 attribution = %+v, want events=1 spans=1 decisions=1", a)
	}
	if inc.Tenants["acme"].Events != 1 {
		t.Errorf("acme attribution = %+v, want events=1", inc.Tenants["acme"])
	}
	if inc.Runtime.Goroutines <= 0 || inc.Runtime.GOMAXPROCS <= 0 {
		t.Errorf("runtime stats not captured: %+v", inc.Runtime)
	}
}

// TestRingCapsBoundMemory drives each ring past its cap and checks the
// occupancy stays bounded (oldest half dropped).
func TestRingCapsBoundMemory(t *testing.T) {
	clk := newTestClock()
	r := newTestRecorder(clk, Config{MaxEvents: 8, MaxSpans: 8, MaxDecisions: 8})
	for i := 0; i < 100; i++ {
		r.RecordEvent(EventEvict, "s", "", "e")
		r.ObserveSpan(obs.SpanEvent{Name: "x"})
		r.ObserveDecision(obs.Decision{Candidate: "c"})
	}
	e, s, d := r.Retained()
	if e > 8 || s > 8 || d > 8 {
		t.Errorf("rings exceeded caps: events=%d spans=%d decisions=%d", e, s, d)
	}
	if e == 0 || s == 0 || d == 0 {
		t.Error("rings should retain the newest entries after overflow")
	}
}

// TestPeriodicSnapshotsAndDeltas checks that metric snapshots pace on
// the clock, become a bundle's pre state, and diff into counter deltas.
func TestPeriodicSnapshotsAndDeltas(t *testing.T) {
	clk := newTestClock()
	reg := obs.NewRegistry()
	c := reg.Counter("engine.rows")
	r := newTestRecorder(clk, Config{SnapshotEvery: 5 * time.Second, Metrics: reg.Snapshot})
	c.Add(10)
	r.RecordEvent(EventEvict, "s", "", "first") // takes the initial snapshot
	c.Add(5)
	clk.Advance(6 * time.Second)
	r.RecordEvent(EventEvict, "s", "", "second") // snapshot due again
	c.Add(7)
	clk.Advance(time.Second)
	id, ok := r.Trigger(TriggerEvictError, "boom", "s", "")
	if !ok {
		t.Fatal("trigger should capture")
	}
	inc, _ := r.Incident(id)
	if inc.Pre.Counters["engine.rows"] != 15 {
		t.Errorf("pre counter = %d, want 15 (newest snapshot before capture)", inc.Pre.Counters["engine.rows"])
	}
	if inc.Post.Counters["engine.rows"] != 22 {
		t.Errorf("post counter = %d, want 22", inc.Post.Counters["engine.rows"])
	}
	if inc.CounterDeltas["engine.rows"] != 7 {
		t.Errorf("delta = %d, want 7", inc.CounterDeltas["engine.rows"])
	}
	if inc.PreAgeNs != time.Second.Nanoseconds() {
		t.Errorf("pre age = %d, want 1s", inc.PreAgeNs)
	}
}

// TestBackwardsClockReanchors reproduces the facade's construction
// order: the recorder starts on the wall clock, then a virtual clock
// anchored in the past is injected. Snapshots and cooldowns must
// re-anchor instead of stalling until virtual time catches up to 2026.
func TestBackwardsClockReanchors(t *testing.T) {
	clk := &testClock{now: time.Now()}
	reg := obs.NewRegistry()
	r := newTestRecorder(clk, Config{Cooldown: 30 * time.Second, SnapshotEvery: 5 * time.Second, Metrics: reg.Snapshot})
	r.RecordEvent(EventEvict, "s", "", "on the wall clock")
	if _, ok := r.Trigger(TriggerBreakerOpen, "wall-clock capture", "", ""); !ok {
		t.Fatal("first trigger should capture")
	}
	// The virtual clock lands far in the past.
	clk.Set(time.Unix(0, 0).Add(time.Hour))
	if !r.Armed(TriggerBreakerOpen) {
		t.Error("backwards clock jump should re-arm the trigger")
	}
	r.RecordEvent(EventEvict, "s", "", "on the virtual clock")
	if _, ok := r.Trigger(TriggerBreakerOpen, "virtual-clock capture", "", ""); !ok {
		t.Error("trigger after the backwards jump should capture")
	}
}

// TestIncidentListAndBoundedRetention checks newest-first listing and
// the in-memory incident cap.
func TestIncidentListAndBoundedRetention(t *testing.T) {
	clk := newTestClock()
	r := newTestRecorder(clk, Config{MaxIncidents: 3, Cooldown: time.Second})
	var last string
	for i := 0; i < 5; i++ {
		id, ok := r.Trigger(TriggerSignal, "capture", "", "")
		if !ok {
			t.Fatalf("capture %d suppressed", i)
		}
		last = id
		clk.Advance(2 * time.Second)
	}
	list := r.Incidents()
	if len(list) != 3 {
		t.Fatalf("retained %d incidents, want 3", len(list))
	}
	if list[0].ID != last {
		t.Errorf("newest first: got %s, want %s", list[0].ID, last)
	}
	// The evicted oldest bundle is gone.
	if _, ok := r.Incident("inc-000001-sigquit"); ok {
		t.Error("oldest incident should have been pruned from memory")
	}
}

// TestDiskBundlesWritePruneAndReadBack checks the on-disk side: bundles
// land as JSON files, the directory stays bounded, and ReadBundle
// round-trips a file back into an Incident.
func TestDiskBundlesWritePruneAndReadBack(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	r := newTestRecorder(clk, Config{MaxIncidents: 2, Cooldown: time.Second, Dir: dir})
	r.RecordEvent(EventBreaker, "s1", "", "geocoder: closed -> open")
	var ids []string
	for i := 0; i < 4; i++ {
		id, ok := r.Trigger(TriggerBreakerOpen, "tripped", "s1", "")
		if !ok {
			t.Fatalf("capture %d suppressed", i)
		}
		ids = append(ids, id)
		clk.Advance(2 * time.Second)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("disk holds %d bundles, want 2 (pruned): %v", len(files), files)
	}
	inc, err := ReadBundle(filepath.Join(dir, ids[3]+".json"))
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if inc.ID != ids[3] || inc.Trigger != TriggerBreakerOpen {
		t.Errorf("round-trip mismatch: %+v", inc)
	}
	if len(inc.Events) == 0 || inc.Events[0].Detail != "geocoder: closed -> open" {
		t.Errorf("bundle lost its timeline: %+v", inc.Events)
	}
	// Not-a-bundle files are rejected with a useful error.
	bad := filepath.Join(dir, "not-a-bundle.json")
	if err := os.WriteFile(bad, []byte(`{"x": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(bad); err == nil {
		t.Error("ReadBundle should reject a JSON file with no id/trigger")
	}
	if _, err := ReadBundle(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("ReadBundle should fail on a missing file")
	}
}

// TestRenderTimelineNamesTheStory checks the post-mortem rendering: it
// must name the breaker transition, flag the degraded span, show the
// affected session, and print the counter deltas.
func TestRenderTimelineNamesTheStory(t *testing.T) {
	clk := newTestClock()
	reg := obs.NewRegistry()
	trips := reg.Counter("resilience.breaker_trips")
	r := newTestRecorder(clk, Config{SnapshotEvery: 5 * time.Second, Metrics: reg.Snapshot})
	r.RecordEvent(EventEvict, "s1", "acme", "warm-up") // initial snapshot, before the trip
	clk.Advance(2 * time.Second)
	trips.Inc()
	r.RecordEvent(EventBreaker, "s1", "", "geocoder: closed -> open")
	r.ObserveSpan(obs.SpanEvent{Seq: 9, Name: "stage.execute", DurNs: 250_000, Attrs: []obs.Attr{
		{Key: "session", Value: "s1"}, {Key: "breaker", Value: "geocoder"},
	}})
	r.ObserveDecision(obs.Decision{Seq: 2, Session: "s1", Stage: "suggest.columns", Candidate: "Zip", Action: obs.ActionDegraded, Reason: "rows dropped"})
	id, ok := r.Trigger(TriggerBreakerOpen, "geocoder: closed -> open", "s1", "acme")
	if !ok {
		t.Fatal("trigger should capture")
	}
	inc, _ := r.Incident(id)
	out := RenderTimeline(inc)
	for _, want := range []string{
		"incident " + id,
		"trigger   breaker.open — geocoder: closed -> open",
		"session   s1 (tenant acme)",
		"closed -> open",
		"DEGRADED (breaker=geocoder)",
		"[session=s1]",
		"decision  [suggest.columns] degraded Zip",
		"resilience.breaker_trips",
		"+1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if RenderTimeline(nil) != "no incident\n" {
		t.Error("nil incident should render a placeholder")
	}
}

// TestSummaryCountsMatchBundle checks the list view's counts.
func TestSummaryCountsMatchBundle(t *testing.T) {
	clk := newTestClock()
	r := newTestRecorder(clk, Config{})
	r.RecordEvent(EventShed, "", "acme", "capacity")
	r.ObserveSpan(obs.SpanEvent{Name: "a"})
	r.ObserveSpan(obs.SpanEvent{Name: "b"})
	id, _ := r.Trigger(TriggerSignal, "capture", "", "acme")
	list := r.Incidents()
	if len(list) != 1 {
		t.Fatalf("want 1 summary, got %d", len(list))
	}
	s := list[0]
	if s.ID != id || s.Events != 1 || s.Spans != 2 || s.Decisions != 0 || s.Tenant != "acme" {
		t.Errorf("summary %+v does not match the bundle", s)
	}
}

// TestRegistryCountersExported checks the copycat_incidents_* substrate:
// the counters exist at zero from construction and track captures,
// suppressions, and the stored gauge.
func TestRegistryCountersExported(t *testing.T) {
	clk := newTestClock()
	reg := obs.NewRegistry()
	r := newTestRecorder(clk, Config{Registry: reg, Cooldown: time.Minute})
	snap := reg.Snapshot()
	if v, ok := snap.Counters["incidents.captured"]; !ok || v != 0 {
		t.Errorf("incidents.captured should pre-exist at 0, got %d (present %v)", v, ok)
	}
	if v, ok := snap.Counters["incidents.suppressed"]; !ok || v != 0 {
		t.Errorf("incidents.suppressed should pre-exist at 0, got %d (present %v)", v, ok)
	}
	r.Trigger(TriggerSignal, "x", "", "")
	r.Trigger(TriggerSignal, "x", "", "") // suppressed
	snap = reg.Snapshot()
	if snap.Counters["incidents.captured"] != 1 || snap.Counters["incidents.suppressed"] != 1 {
		t.Errorf("counters = %+v, want captured=1 suppressed=1", snap.Counters)
	}
	if snap.Gauges["incidents.stored"] != 1 {
		t.Errorf("incidents.stored = %f, want 1", snap.Gauges["incidents.stored"])
	}
}
