package flight

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"copycat/internal/obs"
)

// maxTimelineLines bounds the rendered timeline; older entries beyond
// it are summarized as an omission count.
const maxTimelineLines = 120

// timelineLine is one merged entry of the rendered timeline.
type timelineLine struct {
	atNs int64
	seq  int64 // tie-break within the same nanosecond
	text string
}

// RenderTimeline renders a captured incident bundle as a human-readable
// post-mortem: the trigger, runtime state, the causal timeline
// (lifecycle events, decisions, and spans merged chronologically, with
// degraded spans flagged), per-session attribution, and the counter
// deltas between the pre and post metric snapshots.
func RenderTimeline(inc *Incident) string {
	if inc == nil {
		return "no incident\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "incident %s\n", inc.ID)
	fmt.Fprintf(&b, "  trigger   %s", inc.Trigger)
	if inc.Reason != "" {
		fmt.Fprintf(&b, " — %s", inc.Reason)
	}
	b.WriteByte('\n')
	at := time.Unix(0, inc.CapturedAtNs).UTC()
	fmt.Fprintf(&b, "  captured  %s (unix_ns %d)\n", at.Format(time.RFC3339Nano), inc.CapturedAtNs)
	if inc.Session != "" || inc.Tenant != "" {
		fmt.Fprintf(&b, "  session   %s", orDash(inc.Session))
		if inc.Tenant != "" {
			fmt.Fprintf(&b, " (tenant %s)", inc.Tenant)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  runtime   %d goroutines, heap %s, %d GCs, GOMAXPROCS %d\n",
		inc.Runtime.Goroutines, formatBytes(inc.Runtime.HeapAllocBytes), inc.Runtime.NumGC, inc.Runtime.GOMAXPROCS)

	lines := mergeTimeline(inc)
	fmt.Fprintf(&b, "\ntimeline (%d events, %d spans, %d decisions; dt relative to capture):\n",
		len(inc.Events), len(inc.Spans), len(inc.Decisions))
	if len(lines) == 0 {
		b.WriteString("  (empty)\n")
	}
	if over := len(lines) - maxTimelineLines; over > 0 {
		fmt.Fprintf(&b, "  … %d earlier entries omitted\n", over)
		lines = lines[over:]
	}
	for _, ln := range lines {
		fmt.Fprintf(&b, "  %s  %s\n", formatOffset(ln.atNs-inc.CapturedAtNs), ln.text)
	}

	if len(inc.Sessions) > 0 {
		b.WriteString("\nsessions:\n")
		for _, id := range sortedAttrKeys(inc.Sessions) {
			a := inc.Sessions[id]
			fmt.Fprintf(&b, "  %-12s events=%d spans=%d decisions=%d\n", id, a.Events, a.Spans, a.Decisions)
		}
	}
	if len(inc.Tenants) > 0 {
		b.WriteString("\ntenants:\n")
		for _, id := range sortedAttrKeys(inc.Tenants) {
			a := inc.Tenants[id]
			fmt.Fprintf(&b, "  %-12s events=%d spans=%d decisions=%d\n", id, a.Events, a.Spans, a.Decisions)
		}
	}
	if len(inc.CounterDeltas) > 0 {
		fmt.Fprintf(&b, "\ncounter deltas (pre → post, pre taken %s before capture):\n",
			time.Duration(inc.PreAgeNs).Round(time.Millisecond))
		keys := make([]string, 0, len(inc.CounterDeltas))
		for k := range inc.CounterDeltas {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-32s %+d\n", k, inc.CounterDeltas[k])
		}
	}
	return b.String()
}

// mergeTimeline flattens events, spans, and decisions into one
// chronological list.
func mergeTimeline(inc *Incident) []timelineLine {
	lines := make([]timelineLine, 0, len(inc.Events)+len(inc.Spans)+len(inc.Decisions))
	for _, e := range inc.Events {
		text := fmt.Sprintf("event     %s", e.Kind)
		if e.Detail != "" {
			text += " — " + e.Detail
		}
		text += attrSuffix(e.Session, e.Tenant)
		lines = append(lines, timelineLine{atNs: e.AtNs, seq: e.Seq, text: text})
	}
	for _, s := range inc.Spans {
		lines = append(lines, timelineLine{atNs: s.AtNs, seq: s.Span.Seq, text: spanLine(s.Span)})
	}
	for _, d := range inc.Decisions {
		dec := d.Decision
		text := fmt.Sprintf("decision  [%s] %s %s", dec.Stage, dec.Action, dec.Candidate)
		if dec.Reason != "" {
			text += " — " + dec.Reason
		}
		text += attrSuffix(dec.Session, "")
		lines = append(lines, timelineLine{atNs: d.AtNs, seq: int64(dec.Seq), text: text})
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].atNs != lines[j].atNs {
			return lines[i].atNs < lines[j].atNs
		}
		return lines[i].seq < lines[j].seq
	})
	return lines
}

// spanLine renders one span, flagging degraded ones (an "error" attr or
// a tripped breaker) so the failure path stands out in the timeline.
func spanLine(sp obs.SpanEvent) string {
	var flags []string
	session := ""
	for _, a := range sp.Attrs {
		switch a.Key {
		case "error":
			flags = append(flags, "error="+a.Value)
		case "breaker":
			flags = append(flags, "breaker="+a.Value)
		case "session":
			session = a.Value
		}
	}
	text := fmt.Sprintf("span      %s %s", sp.Name, time.Duration(sp.DurNs).Round(time.Microsecond))
	if len(flags) > 0 {
		text += " DEGRADED (" + strings.Join(flags, ", ") + ")"
	}
	text += attrSuffix(session, "")
	return text
}

func attrSuffix(session, tenant string) string {
	var parts []string
	if session != "" {
		parts = append(parts, "session="+session)
	}
	if tenant != "" {
		parts = append(parts, "tenant="+tenant)
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// formatOffset renders a timeline offset relative to capture, signed
// and fixed-width enough to scan.
func formatOffset(dNs int64) string {
	d := time.Duration(dNs).Round(time.Microsecond)
	if d >= 0 {
		return fmt.Sprintf("%12s", "+"+d.String())
	}
	return fmt.Sprintf("%12s", d.String())
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func sortedAttrKeys(m map[string]Attribution) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
