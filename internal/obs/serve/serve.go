// Package serve is CopyCat's live telemetry service: a stdlib-only
// net/http server that turns the in-process observability substrate
// (internal/obs metrics, spans, decisions; internal/resilience breaker
// state) into a long-running deployment's operational surface.
//
// Endpoints:
//
//	GET /metrics       Prometheus/OpenMetrics text exposition of the
//	                   unified registry, engine counters, cache and
//	                   plan-cache gauges, breaker state, and SLO burn.
//	GET /healthz       health verdict from breaker states, degraded-row
//	                   rate, and SLO burn alerts (503 when unhealthy).
//	GET /readyz        readiness: 503 while draining or when a majority
//	                   of service breakers are open.
//	GET /slo           the SLO tracker's full status as JSON.
//	GET /quality       live suggestion-quality report as JSON: rolling
//	                   acceptance rate, rank-of-accepted histogram,
//	                   rounds-to-accept, per-tenant breakdown.
//	GET /trace/stream  buffered spans as JSONL; ?follow=1 keeps the
//	                   response open, streaming spans as they end.
//	GET /decisions     the decision log as JSONL; ?q= filters by
//	                   candidate substring.
//	GET /incidents     flight-recorder incident summaries, newest first;
//	                   GET /incidents/{id} fetches one full bundle.
//	/sessions          multi-tenant session lifecycle (list, create,
//	                   attach, evict, destroy) when a session.Manager is
//	                   wired in; creates are admission-controlled and
//	                   shed with 503 while the host is overloaded.
//	GET /debug/pprof/  continuous-profiling endpoints.
//
// The package has no opinions about what it serves: every data source
// arrives as a function or handle in Config, so tests drive it with
// fabricated snapshots on a virtual clock and the facade wires it to a
// live workspace.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"copycat/internal/obs"
	"copycat/internal/obs/flight"
	"copycat/internal/resilience"
	"copycat/internal/session"
)

// Config wires the server to its data sources. Any field may be nil;
// the corresponding endpoint serves an empty (but well-formed) body.
type Config struct {
	// Metrics snapshots the unified metrics surface per scrape.
	Metrics func() obs.Snapshot
	// Breakers snapshots per-service circuit breaker state per scrape.
	Breakers func() []resilience.BreakerStatus
	// SLO is the latency-objective tracker surfaced in /metrics,
	// /healthz, and /slo.
	SLO *obs.SLOTracker
	// Ring is the live span buffer behind /trace/stream.
	Ring *obs.SpanRing
	// Decisions is the decision log behind /decisions.
	Decisions *obs.DecisionLog
	// Incidents is the flight recorder behind GET /incidents (list) and
	// GET /incidents/{id} (fetch one bundle).
	Incidents *flight.Recorder
	// Host, when non-nil, exposes the multi-tenant session manager: the
	// /sessions lifecycle endpoints, per-tenant series on /metrics, and
	// load-shed readiness (/readyz goes 503 while the host is shedding).
	Host *session.Manager
	// Quality, when non-nil, serves the live suggestion-quality report
	// on /quality and appends its per-tenant counter families to
	// /metrics.
	Quality func() QualityReport
	// Health tunes the /healthz thresholds; zero takes defaults.
	Health HealthConfig
}

// Server is a running telemetry server. Create with New, start with
// Start, stop by cancelling the context (graceful drain) or Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	srv      *http.Server
	ln       net.Listener
	draining atomic.Bool
	done     chan struct{}
	err      error
	stopCtx  func() bool
}

// New builds a server on the given sources.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /slo", s.handleSLO)
	mux.HandleFunc("GET /quality", s.handleQuality)
	mux.HandleFunc("GET /trace/stream", s.handleTraceStream)
	mux.HandleFunc("GET /decisions", s.handleDecisions)
	mux.HandleFunc("GET /incidents", s.handleIncidentsList)
	mux.HandleFunc("GET /incidents/{id}", s.handleIncidentGet)
	mux.HandleFunc("GET /sessions", s.handleSessionsList)
	mux.HandleFunc("POST /sessions", s.handleSessionsCreate)
	mux.HandleFunc("POST /sessions/{id}/attach", s.handleSessionAttach)
	mux.HandleFunc("POST /sessions/{id}/evict", s.handleSessionEvict)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler exposes the route table (tests drive it with httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// drainTimeout bounds the graceful shutdown triggered by context
// cancellation; streams older than this are cut.
const drainTimeout = 5 * time.Second

// Start listens on addr (":0" picks a free port — read it back with
// Addr) and serves until ctx is cancelled, which drains gracefully:
// /readyz flips to 503 immediately, in-flight requests get up to
// drainTimeout to finish, then the listener closes. Wait blocks until
// the server has fully stopped.
func (s *Server) Start(ctx context.Context, addr string) error {
	if s.ln != nil {
		return errors.New("serve: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	// BaseContext carries ctx into every request so cancelling the serve
	// context also releases any ?follow=1 trace streams promptly.
	s.srv = &http.Server{Handler: s.mux, BaseContext: func(net.Listener) context.Context { return ctx }}
	go func() {
		err := s.srv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
		close(s.done)
	}()
	if ctx != nil {
		s.stopCtx = context.AfterFunc(ctx, func() {
			s.draining.Store(true)
			sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := s.srv.Shutdown(sctx); err != nil {
				s.srv.Close()
			}
		})
	}
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Wait blocks until the server has stopped and returns its terminal
// error (nil on a clean shutdown).
func (s *Server) Wait() error {
	<-s.done
	return s.err
}

// Shutdown drains the server explicitly (the context-cancel path calls
// this for you).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	if s.stopCtx != nil {
		s.stopCtx()
	}
	s.draining.Store(true)
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// snapshot gathers the scrape-time state shared by /metrics and
// /healthz.
func (s *Server) snapshot() (obs.Snapshot, []resilience.BreakerStatus, *obs.SLOStatus) {
	var snap obs.Snapshot
	if s.cfg.Metrics != nil {
		snap = s.cfg.Metrics()
	}
	var breakers []resilience.BreakerStatus
	if s.cfg.Breakers != nil {
		breakers = s.cfg.Breakers()
	}
	var slo *obs.SLOStatus
	if s.cfg.SLO != nil {
		st := s.cfg.SLO.Status()
		slo = &st
	}
	return snap, breakers, slo
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, breakers, slo := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteExposition(w, snap, breakers, slo); err != nil {
		// Too late for a status change; the client sees a truncated body.
		return
	}
	if s.cfg.Host != nil {
		writeSessionExposition(w, s.cfg.Host)
	}
	if s.cfg.Quality != nil {
		writeQualityExposition(w, s.cfg.Quality())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap, breakers, slo := s.snapshot()
	h := EvaluateHealth(s.cfg.Health, snap, breakers, slo)
	code := http.StatusOK
	if h.Status == StatusUnhealthy {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason,omitempty"`
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, readiness{Reason: "draining"})
		return
	}
	if s.cfg.Host != nil {
		if shedding, reason := s.cfg.Host.Shedding(); shedding {
			writeJSON(w, http.StatusServiceUnavailable,
				readiness{Reason: "shedding: " + reason})
			return
		}
	}
	var breakers []resilience.BreakerStatus
	if s.cfg.Breakers != nil {
		breakers = s.cfg.Breakers()
	}
	if resilience.MajorityOpen(breakers) {
		writeJSON(w, http.StatusServiceUnavailable,
			readiness{Reason: fmt.Sprintf("%d of %d service breakers open",
				resilience.CountOpen(breakers), len(breakers))})
		return
	}
	writeJSON(w, http.StatusOK, readiness{Ready: true})
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.SLO.Status())
}

// handleTraceStream serves the span ring as JSONL. The default is
// dump-and-close (curl-friendly); ?follow=1 keeps the response open,
// flushing spans as the pipeline ends them, until the client
// disconnects or the server drains.
func (s *Server) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	follow := r.URL.Query().Get("follow") == "1"
	ctx := r.Context()
	var cursor int64
	for {
		events, next, wait := s.cfg.Ring.Since(cursor)
		cursor = next
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if !follow {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wait:
		}
	}
}

// handleDecisions serves the decision log as JSONL, optionally filtered
// by candidate substring (?q=) and bounded to the most recent ?n=
// entries.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	var ds []obs.Decision
	if q := r.URL.Query().Get("q"); q != "" {
		ds = s.cfg.Decisions.For(q)
	} else {
		ds = s.cfg.Decisions.Decisions()
	}
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(ds) {
			ds = ds[len(ds)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, d := range ds {
		if err := enc.Encode(d); err != nil {
			return
		}
	}
}

// handleIncidentsList serves the captured incident bundles' summaries,
// newest first (an empty array with no flight recorder wired).
func (s *Server) handleIncidentsList(w http.ResponseWriter, r *http.Request) {
	list := s.cfg.Incidents.Incidents()
	if list == nil {
		list = []flight.Summary{}
	}
	writeJSON(w, http.StatusOK, list)
}

// handleIncidentGet serves one incident bundle by ID — the same JSON
// document the on-disk incident dir holds.
func (s *Server) handleIncidentGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	inc, ok := s.cfg.Incidents.Incident(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown incident " + id})
		return
	}
	writeJSON(w, http.StatusOK, inc)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func durationNs(ns int64) time.Duration { return time.Duration(ns) }
