package serve

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lint validates a Prometheus/OpenMetrics text exposition body the way
// the CI smoke job needs: every sample must belong to a family with a
// declared # TYPE, no series (name + label set) may appear twice, TYPE
// values must be legal, histogram children must match their family, and
// every value must parse. It is a validator for our own endpoint, not a
// full scraper — but everything it rejects, a real scraper would too.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := map[string]string{} // family → declared type
	seen := map[string]bool{}    // name+labels → sample already emitted
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := lintSample(line, types, seen); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

// lintComment handles # HELP / # TYPE lines (other comments pass).
func lintComment(line string, types map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if prev, ok := types[name]; ok {
			return fmt.Errorf("duplicate TYPE declaration for %s (was %s, now %s)", name, prev, typ)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// lintSample validates one series line: name{labels} value [timestamp].
func lintSample(line string, types map[string]string, seen map[string]bool) error {
	name := line
	labels := ""
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return fmt.Errorf("unbalanced braces in %q", line)
		}
		name = line[:i]
		labels = line[i : j+1]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return fmt.Errorf("sample %q has no value", line)
		}
		name = fields[0]
		rest = strings.TrimSpace(fields[1])
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if err := lintLabels(labels); err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	valueField := strings.Fields(rest)
	if len(valueField) < 1 || len(valueField) > 2 {
		return fmt.Errorf("sample %s: want `value [timestamp]`, got %q", name, rest)
	}
	if _, err := strconv.ParseFloat(valueField[0], 64); err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, valueField[0])
	}

	fam, ok := familyFor(name, types)
	if !ok {
		return fmt.Errorf("untyped series %s: no # TYPE declared for its family", name)
	}
	if fam != name {
		// A child series (_bucket/_sum/_count) is only legal under a
		// histogram or summary family.
		if t := types[fam]; t != "histogram" && t != "summary" {
			return fmt.Errorf("series %s uses histogram suffix but family %s is %s", name, fam, t)
		}
	}

	series := name + labels
	if seen[series] {
		return fmt.Errorf("duplicate series %s", series)
	}
	seen[series] = true
	return nil
}

// familyFor resolves a sample name to its declared family, stripping
// the histogram child suffixes when the base family is declared.
func familyFor(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if _, declared := types[base]; declared {
			return base, true
		}
	}
	return "", false
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lintLabels validates a rendered label set `{k="v",...}` ("" passes).
func lintLabels(labels string) error {
	if labels == "" {
		return nil
	}
	body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	if body == "" {
		return nil
	}
	// Split on commas outside quotes.
	inQuote := false
	escaped := false
	start := 0
	var pairs []string
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			pairs = append(pairs, body[start:i])
			start = i + 1
		}
	}
	if inQuote {
		return fmt.Errorf("unterminated label value in %s", labels)
	}
	pairs = append(pairs, body[start:])
	seen := map[string]bool{}
	for _, p := range pairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok || !validMetricName(k) || strings.Contains(k, ":") {
			return fmt.Errorf("bad label pair %q", p)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label %s value not quoted: %q", k, v)
		}
		if seen[k] {
			return fmt.Errorf("duplicate label %s in %s", k, labels)
		}
		seen[k] = true
	}
	return nil
}
