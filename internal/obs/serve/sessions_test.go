package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"copycat/internal/catalog"
	"copycat/internal/modellearn"
	"copycat/internal/session"
	"copycat/internal/workspace"
)

// emptyFactory builds minimal session states (no services, no world) —
// enough for lifecycle plumbing without the demo stack.
func emptyFactory() (*session.State, error) {
	cat := catalog.New()
	types := modellearn.NewLibrary()
	return &session.State{Workspace: workspace.New(cat, types), Catalog: cat, Types: types}, nil
}

func newSessionTestServer(t *testing.T, cfg session.Config) (*session.Manager, *httptest.Server) {
	t.Helper()
	cfg.Factory = emptyFactory
	m := session.NewManager(cfg)
	srv := New(Config{Host: m, Metrics: m.MetricsSnapshot, SLO: m.SLO(), Ring: m.Ring()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return m, ts
}

func do(t *testing.T, method, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestSessionsLifecycleOverHTTP walks the full satellite scenario the
// CI smoke also runs: create to the admission cap, watch /readyz flip
// to 503 under the induced overload, destroy to recover, and
// evict/attach a session through its snapshot.
func TestSessionsLifecycleOverHTTP(t *testing.T) {
	_, ts := newSessionTestServer(t, session.Config{MaxSessions: 2})

	// Create to the cap.
	var first session.Info
	for i := 0; i < 2; i++ {
		code, body := do(t, "POST", ts.URL+"/sessions?tenant=alice")
		if code != http.StatusCreated {
			t.Fatalf("create %d: code %d body %s", i, code, body)
		}
		if i == 0 {
			if err := json.Unmarshal([]byte(body), &first); err != nil {
				t.Fatal(err)
			}
		}
	}
	if first.ID == "" || first.Tenant != "alice" {
		t.Fatalf("create response: %+v", first)
	}

	// The table is full: creates shed with 503 and readiness flips.
	if code, body := do(t, "POST", ts.URL+"/sessions"); code != http.StatusServiceUnavailable {
		t.Fatalf("create over cap: code %d body %s", code, body)
	}
	if code, body := do(t, "GET", ts.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "shedding") {
		t.Fatalf("readyz under overload: code %d body %s", code, body)
	}

	// List shows both sessions and the shedding stats.
	var list sessionList
	if code, body := do(t, "GET", ts.URL+"/sessions"); code != http.StatusOK {
		t.Fatalf("list: code %d", code)
	} else if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 2 || !list.Stats.Shedding || list.Stats.Rejected != 1 {
		t.Fatalf("list: %+v", list)
	}

	// Evict → attach reloads from the snapshot.
	if code, body := do(t, "POST", ts.URL+"/sessions/"+first.ID+"/evict"); code != http.StatusOK ||
		!strings.Contains(body, `"resident": false`) {
		t.Fatalf("evict: code %d body %s", code, body)
	}
	if code, body := do(t, "POST", ts.URL+"/sessions/"+first.ID+"/attach"); code != http.StatusOK ||
		!strings.Contains(body, `"resident": true`) {
		t.Fatalf("attach: code %d body %s", code, body)
	}

	// Destroy frees capacity; readiness recovers.
	if code, _ := do(t, "DELETE", ts.URL+"/sessions/"+first.ID); code != http.StatusNoContent {
		t.Fatalf("delete: code %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after destroy: code %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/sessions/"+first.ID+"/attach"); code != http.StatusNotFound {
		t.Fatalf("attach destroyed: code %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/sessions/nope/evict"); code != http.StatusNotFound {
		t.Fatalf("evict unknown: code %d", code)
	}
}

// TestMetricsPerTenantSeriesLint checks that /metrics gains labelled
// per-session families alongside the host-level ones and that the
// combined exposition passes the strict linter cmd/expolint embeds.
func TestMetricsPerTenantSeriesLint(t *testing.T) {
	m, ts := newSessionTestServer(t, session.Config{})
	for _, tenant := range []string{"alice", "bob"} {
		s, err := m.Create(tenant)
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	if err := m.Evict(m.List()[0].ID); err != nil {
		t.Fatal(err)
	}

	code, body := do(t, "GET", ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, want := range []string{
		`copycat_sessions_count 2`,
		`copycat_sessions_evictions_total 1`,
		`copycat_session_resident{session="s000001",tenant="alice"} 0`,
		`copycat_session_resident{session="s000002",tenant="bob"} 1`,
		`copycat_session_reloads_total{session="s000001",tenant="alice"}`,
		`copycat_tenant_resident_sessions{tenant="alice"} 0`,
		`copycat_tenant_resident_sessions{tenant="bob"} 1`,
		`copycat_sessions_store_snapshots 1`,
		`copycat_sessions_store_compression_ratio`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
}

func TestSessionsWithoutHost(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := do(t, "GET", ts.URL+"/sessions"); code != http.StatusNotFound {
		t.Fatalf("sessions without host: code %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/sessions"); code != http.StatusNotFound {
		t.Fatalf("create without host: code %d", code)
	}
}
