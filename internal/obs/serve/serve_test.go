package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"copycat/internal/obs"
	"copycat/internal/obs/flight"
	"copycat/internal/resilience"
)

// sampleSnapshot fabricates a snapshot with every instrument kind.
func sampleSnapshot() obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Counter("engine.rows_in").Add(120)
	reg.Counter("engine.degraded_rows").Add(3)
	reg.Counter("engine.rows_out").Add(100)
	reg.Gauge("cache.hit_rate").Set(0.75)
	reg.Gauge("plancache.entries").Set(12)
	h := reg.Histogram("latency.suggest.refresh")
	for i := 0; i < 50; i++ {
		h.Observe(2 * time.Millisecond)
	}
	h.Observe(40 * time.Millisecond)
	return reg.Snapshot()
}

func sampleBreakers() []resilience.BreakerStatus {
	return []resilience.BreakerStatus{
		{Service: "geocoder", State: resilience.BreakerClosed, StateName: "closed", Trips: 0},
		{Service: "zip", State: resilience.BreakerOpen, StateName: "open", Trips: 2},
	}
}

func TestExpositionValidCompleteAndDeterministic(t *testing.T) {
	clock := resilience.NewVirtualClock()
	slo := obs.NewSLOTracker(obs.SLOConfig{}, clock.Now)
	slo.Observe(2 * time.Millisecond)
	st := slo.Status()

	var a, b strings.Builder
	if err := WriteExposition(&a, sampleSnapshot(), sampleBreakers(), &st); err != nil {
		t.Fatal(err)
	}
	if err := WriteExposition(&b, sampleSnapshot(), sampleBreakers(), &st); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition must be byte-identical for identical state")
	}
	if err := Lint(strings.NewReader(a.String())); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, a.String())
	}

	body := a.String()
	for _, want := range []string{
		"# TYPE copycat_engine_rows_in_total counter",
		"copycat_engine_rows_in_total 120",
		"# TYPE copycat_cache_hit_rate gauge",
		"copycat_cache_hit_rate 0.75",
		"# TYPE copycat_latency_suggest_refresh_seconds histogram",
		`copycat_latency_suggest_refresh_seconds_bucket{le="0.0025"} 50`,
		`copycat_latency_suggest_refresh_seconds_bucket{le="+Inf"} 51`,
		"copycat_latency_suggest_refresh_seconds_count 51",
		`copycat_breaker_state{service="zip"} 1`,
		`copycat_breaker_state{service="geocoder"} 0`,
		`copycat_breaker_trips_total{service="zip"} 2`,
		`copycat_slo_fast_burn{stage="suggest.refresh"} 0`,
		`copycat_slo_threshold_seconds{stage="suggest.refresh"} 0.025`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// Cumulative buckets are monotone: the 40ms observation lands in a
	// later bucket, not the 2.5ms one.
	if strings.Contains(body, `le="0.0025"} 51`) {
		t.Error("buckets must not over-count")
	}
}

func TestLintCatchesBadExpositions(t *testing.T) {
	cases := map[string]string{
		"untyped series": "some_metric 1\n",
		"duplicate series": "# TYPE m counter\n" +
			"m 1\nm 2\n",
		"duplicate labeled series": "# TYPE m gauge\n" +
			`m{a="x"} 1` + "\n" + `m{a="x"} 2` + "\n",
		"duplicate TYPE": "# TYPE m counter\n# TYPE m gauge\nm 1\n",
		"bad type":       "# TYPE m histogramm\nm 1\n",
		"bad value":      "# TYPE m counter\nm one\n",
		"no value":       "# TYPE m counter\nm\n",
		"bad name":       "# TYPE m counter\n1m 3\n",
		"child suffix on non-histogram": "# TYPE m counter\n" +
			`m_bucket{le="1"} 1` + "\n",
		"unquoted label": "# TYPE m gauge\nm{a=x} 1\n",
		"empty body":     "\n",
	}
	for name, body := range cases {
		if err := Lint(strings.NewReader(body)); err == nil {
			t.Errorf("%s: lint should reject:\n%s", name, body)
		}
	}
	// Distinct label values are distinct series, not duplicates.
	good := "# TYPE m gauge\n" + `m{a="x"} 1` + "\n" + `m{a="y"} 2` + "\n"
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Errorf("distinct labels should pass: %v", err)
	}
}

// tripBreaker drives the named service's breaker open through the
// caller's public path.
func tripBreaker(t *testing.T, c *resilience.Caller, service string) {
	t.Helper()
	boom := resilience.MarkTransient(errors.New("down"))
	for i := 0; i < 3; i++ {
		c.Do(context.Background(), service, func() error { return boom })
	}
	if got := c.Breaker(service).State(); got != resilience.BreakerOpen {
		t.Fatalf("breaker should be open, is %v", got)
	}
}

func TestHealthzFlipsUnhealthyWhenBreakerOpens(t *testing.T) {
	clock := resilience.NewVirtualClock()
	policy := resilience.DefaultPolicy()
	policy.Clock = clock
	caller := resilience.NewCaller(policy, resilience.DefaultBreakerConfig())
	reg := obs.NewRegistry()

	s := New(Config{
		Metrics:  reg.Snapshot,
		Breakers: caller.Status,
	})
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	// Healthy and ready while the (not yet created) breakers are quiet.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz before trip = %d %s", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before trip = %d", code)
	}

	tripBreaker(t, caller, "geocoder")

	code, body := get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after trip = %d, want 503: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != StatusUnhealthy || len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "geocoder") {
		t.Fatalf("health body = %+v", h)
	}
	// The only breaker is open → majority open → not ready.
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "breakers open") {
		t.Fatalf("readyz after trip = %d %s", code, body)
	}
	// The breaker series appear on /metrics.
	if _, body := get("/metrics"); !strings.Contains(body, `copycat_breaker_state{service="geocoder"} 1`) {
		t.Fatalf("metrics missing open breaker:\n%s", body)
	}

	// Cooldown elapses on the virtual clock; a successful probe closes
	// the breaker and health recovers — all with zero real sleeping.
	clock.Advance(31 * time.Second)
	if _, err := caller.Do(context.Background(), "geocoder", func() error { return nil }); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz after recovery = %d %s", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatal("readyz should recover with the breaker")
	}
}

func TestHealthzSLOFastBurnAlert(t *testing.T) {
	clock := resilience.NewVirtualClock()
	slo := obs.NewSLOTracker(obs.SLOConfig{}, clock.Now)
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg.Snapshot, SLO: slo})
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	// Healthy traffic: fast refreshes, no burn.
	for i := 0; i < 100; i++ {
		slo.Observe(2 * time.Millisecond)
		clock.Advance(time.Second)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatal("healthz should be ok under fast refreshes")
	}

	// Inject slow refreshes until the fast window burns hot.
	for i := 0; i < 100; i++ {
		slo.Observe(40 * time.Millisecond)
		clock.Advance(time.Second)
	}
	code, body := get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "fast-burn alert") {
		t.Fatalf("healthz under burn = %d %s", code, body)
	}
	if _, body := get("/slo"); !strings.Contains(body, `"fast_alert": true`) {
		t.Fatalf("/slo should report the alert: %s", body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, `copycat_slo_fast_alert{stage="suggest.refresh"} 1`) {
		t.Fatalf("/metrics should report the alert:\n%s", body)
	}

	// The fast window rolls clear after 6 virtual minutes of silence;
	// the slow window still burns → degraded, not unhealthy.
	clock.Advance(6 * time.Minute)
	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "slow-burn alert") {
		t.Fatalf("healthz after fast window rolled = %d %s", code, body)
	}
	var h Health
	json.Unmarshal([]byte(body), &h)
	if h.Status != StatusDegraded {
		t.Fatalf("status = %q, want degraded", h.Status)
	}
}

func TestHealthDegradedRowRate(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine.rows_out").Add(100)
	reg.Counter("engine.degraded_rows").Add(10)
	h := EvaluateHealth(HealthConfig{}, reg.Snapshot(), nil, nil)
	if h.Status != StatusDegraded || h.DegradedRowRate != 0.10 {
		t.Fatalf("health = %+v", h)
	}
	reg.Reset()
	reg.Counter("engine.rows_out").Add(100)
	reg.Counter("engine.degraded_rows").Add(2)
	if h := EvaluateHealth(HealthConfig{}, reg.Snapshot(), nil, nil); h.Status != StatusOK {
		t.Fatalf("2%% degraded should be ok: %+v", h)
	}
}

func TestTraceStreamDumpAndFollow(t *testing.T) {
	ring := obs.NewSpanRing(16)
	log := obs.NewDecisionLog()
	s := New(Config{Ring: ring, Decisions: log})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ring.Publish(obs.SpanEvent{Name: "refresh", Cat: "stage", DurNs: 100})
	ring.Publish(obs.SpanEvent{Name: "execute", Cat: "engine", DurNs: 50})

	// Dump mode: buffered spans, then the response closes.
	resp, err := http.Get(ts.URL + "/trace/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump returned %d lines: %q", len(lines), body)
	}
	var ev obs.SpanEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil || ev.Name != "refresh" {
		t.Fatalf("line 0 = %q (%v)", lines[0], err)
	}

	// Follow mode: a span published after the request starts is
	// delivered over the open response.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/trace/stream?follow=1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2; i++ { // drain the two buffered spans
		if !sc.Scan() {
			t.Fatalf("stream closed early: %v", sc.Err())
		}
	}
	go ring.Publish(obs.SpanEvent{Name: "live", DurNs: 7})
	if !sc.Scan() {
		t.Fatalf("no live span arrived: %v", sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Name != "live" {
		t.Fatalf("live line = %q (%v)", sc.Text(), err)
	}
	cancel() // client walks away; the handler unblocks via r.Context()
}

func TestDecisionsEndpoint(t *testing.T) {
	log := obs.NewDecisionLog()
	log.Record(obs.Decision{Stage: "suggest.columns", Candidate: "Geocoder→zip", Action: obs.ActionSuggested, Rank: 0})
	log.Record(obs.Decision{Stage: "suggest.columns", Candidate: "Reverse→phone", Action: obs.ActionPruned, Rank: -1})
	log.Record(obs.Decision{Stage: "feedback.columns", Candidate: "Geocoder→zip", Action: obs.ActionAccepted, Rank: 0})
	s := New(Config{Decisions: log})

	get := func(path string) []string {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		body := strings.TrimSpace(rec.Body.String())
		if body == "" {
			return nil
		}
		return strings.Split(body, "\n")
	}
	if lines := get("/decisions"); len(lines) != 3 {
		t.Fatalf("unfiltered = %d lines", len(lines))
	}
	lines := get("/decisions?q=Geocoder")
	if len(lines) != 2 {
		t.Fatalf("filtered = %d lines: %v", len(lines), lines)
	}
	var d obs.Decision
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil || d.Candidate != "Geocoder→zip" {
		t.Fatalf("decision line = %q (%v)", lines[0], err)
	}
	if lines := get("/decisions?n=1"); len(lines) != 1 {
		t.Fatalf("n=1 = %d lines", len(lines))
	}
	if lines := get("/decisions?q=nothing-matches"); len(lines) != 0 {
		t.Fatalf("no-match = %d lines", len(lines))
	}
}

func TestPprofEndpoints(t *testing.T) {
	s := New(Config{})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d", path, rec.Code)
		}
		if rec.Body.Len() == 0 {
			t.Errorf("GET %s returned empty body", path)
		}
	}
}

func TestServerLifecycleGracefulShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine.rows_in").Inc()
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Config{Metrics: reg.Snapshot})
	if err := s.Start(ctx, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("Addr should report the bound port")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := Lint(strings.NewReader(string(body))); err != nil {
		t.Fatalf("served metrics fail lint: %v", err)
	}
	// Double-start is rejected.
	if err := s.Start(ctx, "127.0.0.1:0"); err == nil {
		t.Fatal("second Start should error")
	}

	// Context cancel drains the server; Wait unblocks cleanly and the
	// port stops answering.
	cancel()
	done := make(chan error, 1)
	go func() { done <- s.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server should be down after ctx cancel")
	}
}

func TestReadyzDrainsOnShutdown(t *testing.T) {
	s := New(Config{})
	if err := s.Start(context.Background(), "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// Mark draining the way ctx-cancel does, then observe readyz flip.
	s.draining.Store(true)
	resp, err := http.Get("http://" + s.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz while draining = %d %s", resp.StatusCode, body)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
}

func TestNilSourcesServeEmptyBodies(t *testing.T) {
	s := New(Config{})
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	// An empty system has no samples — that is the one lint failure we
	// accept from a nil-config server; the body itself is well-formed.
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatal("metrics should answer")
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz = %d %s", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatal("readyz should answer")
	}
	if code, _ := get("/trace/stream"); code != http.StatusOK {
		t.Fatal("trace dump should answer")
	}
	if code, _ := get("/decisions"); code != http.StatusOK {
		t.Fatal("decisions should answer")
	}
	if code, _ := get("/slo"); code != http.StatusOK {
		t.Fatal("slo should answer")
	}
}

func ExampleWriteExposition() {
	reg := obs.NewRegistry()
	reg.Counter("engine.rows_in").Add(2)
	var b strings.Builder
	WriteExposition(&b, reg.Snapshot(), nil, nil)
	fmt.Print(b.String())
	// Output:
	// # HELP copycat_engine_rows_in_total Cumulative count of engine.rows_in.
	// # TYPE copycat_engine_rows_in_total counter
	// copycat_engine_rows_in_total 2
}

// TestIncidentsEndpoints checks GET /incidents (list, newest first) and
// GET /incidents/{id} (full bundle / 404), plus the nil-recorder and
// empty-list shapes.
func TestIncidentsEndpoints(t *testing.T) {
	rec := flight.New(flight.Config{Cooldown: time.Millisecond, Clock: func() time.Time { return time.Unix(500, 0) }})
	rec.RecordEvent(flight.EventBreaker, "s1", "", "geocoder: closed -> open")
	id, ok := rec.Trigger(flight.TriggerBreakerOpen, "geocoder tripped", "s1", "acme")
	if !ok {
		t.Fatal("trigger should capture")
	}
	s := New(Config{Incidents: rec})

	get := func(srv *Server, path string) (int, string) {
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code, w.Body.String()
	}

	code, body := get(s, "/incidents")
	if code != http.StatusOK {
		t.Fatalf("GET /incidents = %d", code)
	}
	var list []flight.Summary
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list is not JSON: %v\n%s", err, body)
	}
	if len(list) != 1 || list[0].ID != id || list[0].Trigger != flight.TriggerBreakerOpen {
		t.Fatalf("list = %+v", list)
	}

	code, body = get(s, "/incidents/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET /incidents/%s = %d", id, code)
	}
	var inc flight.Incident
	if err := json.Unmarshal([]byte(body), &inc); err != nil {
		t.Fatalf("bundle is not JSON: %v", err)
	}
	if inc.ID != id || inc.Session != "s1" || inc.Tenant != "acme" || len(inc.Events) != 1 {
		t.Fatalf("bundle = %+v", inc)
	}

	if code, _ = get(s, "/incidents/inc-999999-nope"); code != http.StatusNotFound {
		t.Fatalf("unknown incident = %d, want 404", code)
	}

	// No recorder wired: the list is an empty JSON array, not an error.
	empty := New(Config{})
	code, body = get(empty, "/incidents")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("nil recorder list = %d %q, want 200 []", code, body)
	}
	if code, _ = get(empty, "/incidents/x"); code != http.StatusNotFound {
		t.Fatalf("nil recorder fetch = %d, want 404", code)
	}
}
