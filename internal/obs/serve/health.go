package serve

import (
	"fmt"

	"copycat/internal/obs"
	"copycat/internal/resilience"
)

// Health states, ordered by severity. "degraded" still serves traffic
// (HTTP 200 with the state in the body); "unhealthy" answers 503 so a
// load balancer or orchestrator stops routing to the instance.
const (
	StatusOK        = "ok"
	StatusDegraded  = "degraded"
	StatusUnhealthy = "unhealthy"
)

// HealthConfig tunes the health evaluation thresholds.
type HealthConfig struct {
	// DegradedRowRateMax is the tolerated fraction of degraded rows
	// (engine.degraded_rows / engine.rows_out) before the instance
	// reports degraded.
	DegradedRowRateMax float64
}

// DefaultHealthConfig tolerates up to 5% degraded rows.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{DegradedRowRateMax: 0.05}
}

// Health is the /healthz response body.
type Health struct {
	Status          string                     `json:"status"`
	Reasons         []string                   `json:"reasons,omitempty"`
	Breakers        []resilience.BreakerStatus `json:"breakers,omitempty"`
	DegradedRowRate float64                    `json:"degraded_row_rate"`
	SLO             *obs.SLOStatus             `json:"slo,omitempty"`
}

// EvaluateHealth folds breaker states, the degraded-row rate, and the
// SLO burn alerts into one verdict:
//
//   - unhealthy: any breaker open (a dependency is failing hard enough
//     that calls are being rejected outright), or the SLO fast-burn
//     alert is firing (the latency objective's budget is being spent
//     at page-worthy speed);
//   - degraded: a breaker half-open (probing recovery), the SLO
//     slow-burn alert, or the degraded-row rate above threshold;
//   - ok otherwise.
func EvaluateHealth(cfg HealthConfig, snap obs.Snapshot, breakers []resilience.BreakerStatus, slo *obs.SLOStatus) Health {
	if cfg.DegradedRowRateMax <= 0 {
		cfg = DefaultHealthConfig()
	}
	h := Health{Status: StatusOK, Breakers: breakers, SLO: slo}

	degrade := func(reason string) {
		if h.Status == StatusOK {
			h.Status = StatusDegraded
		}
		h.Reasons = append(h.Reasons, reason)
	}
	fail := func(reason string) {
		h.Status = StatusUnhealthy
		h.Reasons = append(h.Reasons, reason)
	}

	for _, b := range breakers {
		switch b.State {
		case resilience.BreakerOpen:
			fail("breaker open: " + b.Service)
		case resilience.BreakerHalfOpen:
			degrade("breaker half-open: " + b.Service)
		}
	}

	if out := snap.Counters["engine.rows_out"]; out > 0 {
		h.DegradedRowRate = float64(snap.Counters["engine.degraded_rows"]) / float64(out)
		if h.DegradedRowRate > cfg.DegradedRowRateMax {
			degrade(fmt.Sprintf("degraded-row rate %.1f%% above %.1f%%",
				100*h.DegradedRowRate, 100*cfg.DegradedRowRateMax))
		}
	}

	if slo != nil {
		if slo.FastAlert {
			fail(fmt.Sprintf("slo fast-burn alert: %s burning %.1fx budget over %s",
				slo.Stage, slo.FastBurn, durationNs(slo.FastWindowNs)))
		} else if slo.SlowAlert {
			degrade(fmt.Sprintf("slo slow-burn alert: %s burning %.1fx budget over %s",
				slo.Stage, slo.SlowBurn, durationNs(slo.SlowWindowNs)))
		}
	}
	return h
}
