package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"copycat/internal/obs"
	"copycat/internal/resilience"
)

// The exposition writer renders the unified obs.Snapshot — counters,
// gauges, cumulative histogram buckets — plus per-service breaker state
// and the SLO tracker's burn rates in the Prometheus/OpenMetrics text
// format any scraper understands. Every family gets # HELP and # TYPE
// headers, names are sanitized into the copycat_ namespace, durations
// are exported in seconds, and output order is fully deterministic
// (sorted families, sorted label sets) so two scrapes of identical
// state are byte-identical.

// MetricNamespace prefixes every exported family.
const MetricNamespace = "copycat"

// sanitizeMetricName maps a registry instrument name ("engine.rows_in",
// "latency.suggest.refresh") onto a legal metric-name suffix.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects:
// integers bare, floats with full precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// family is one metric family being assembled for output.
type family struct {
	name    string // fully-qualified family name
	typ     string // counter | gauge | histogram
	help    string
	samples []sample
}

// sample is one series line; for histograms, suffix selects the child
// series (_bucket/_sum/_count) and labels carries the le pair.
type sample struct {
	suffix string
	labels string // rendered `{k="v",...}` or ""
	value  float64
}

// expoBuilder accumulates families keyed by name.
type expoBuilder struct {
	fams map[string]*family
}

func newExpoBuilder() *expoBuilder { return &expoBuilder{fams: map[string]*family{}} }

func (b *expoBuilder) family(name, typ, help string) *family {
	f, ok := b.fams[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help}
		b.fams[name] = f
	}
	return f
}

func (f *family) add(suffix, labels string, value float64) {
	f.samples = append(f.samples, sample{suffix: suffix, labels: labels, value: value})
}

// write renders every family, sorted by name, samples in insertion
// order (callers insert deterministically).
func (b *expoBuilder) write(w io.Writer) error {
	names := make([]string, 0, len(b.fams))
	for n := range b.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := b.fams[n]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.suffix, s.labels, formatValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// addHistogram renders one HistogramSnapshot as a classic Prometheus
// histogram: cumulative le buckets in seconds, +Inf, _sum, _count.
func (b *expoBuilder) addHistogram(name, help string, h obs.HistogramSnapshot) {
	f := b.family(name, "histogram", help)
	var cum int64
	for _, bk := range h.Buckets {
		if bk.LeNs < 0 {
			continue // overflow folds into +Inf below
		}
		cum += bk.Count
		le := strconv.FormatFloat(time.Duration(bk.LeNs).Seconds(), 'g', -1, 64)
		f.add("_bucket", `{le="`+le+`"}`, float64(cum))
	}
	f.add("_bucket", `{le="+Inf"}`, float64(h.Count))
	f.add("_sum", "", time.Duration(h.SumNs).Seconds())
	f.add("_count", "", float64(h.Count))
}

// WriteExposition renders the full telemetry surface: every snapshot
// counter as `copycat_<name>_total`, every gauge as `copycat_<name>`,
// every latency histogram as `copycat_<name>_seconds`, breaker state
// and trip counts labelled by service, and the SLO objective's
// burn-rate block. snap's maps may be nil; breakers and slo may be
// empty/nil.
func WriteExposition(w io.Writer, snap obs.Snapshot, breakers []resilience.BreakerStatus, slo *obs.SLOStatus) error {
	b := newExpoBuilder()

	cnames := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		name := MetricNamespace + "_" + sanitizeMetricName(n) + "_total"
		b.family(name, "counter", "Cumulative count of "+n+".").add("", "", float64(snap.Counters[n]))
	}

	gnames := make([]string, 0, len(snap.Gauges))
	for n := range snap.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		name := MetricNamespace + "_" + sanitizeMetricName(n)
		b.family(name, "gauge", "Current value of "+n+".").add("", "", snap.Gauges[n])
	}

	hnames := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		name := MetricNamespace + "_" + sanitizeMetricName(n) + "_seconds"
		b.addHistogram(name, "Latency distribution of "+n+".", snap.Histograms[n])
	}

	if len(breakers) > 0 {
		state := b.family(MetricNamespace+"_breaker_state", "gauge",
			"Circuit breaker position per service: 0 closed, 1 open, 2 half-open.")
		trips := b.family(MetricNamespace+"_breaker_trips_total", "counter",
			"Times each service's circuit breaker has opened.")
		for _, bs := range breakers {
			labels := `{service="` + escapeLabelValue(bs.Service) + `"}`
			state.add("", labels, float64(bs.State))
			trips.add("", labels, float64(bs.Trips))
		}
	}

	if slo != nil {
		labels := `{stage="` + escapeLabelValue(slo.Stage) + `"}`
		add := func(name, help string, v float64) {
			b.family(MetricNamespace+"_"+name, "gauge", help).add("", labels, v)
		}
		add("slo_target", "Fraction of executions that must meet the latency objective.", slo.Target)
		add("slo_threshold_seconds", "Per-execution latency objective.", time.Duration(slo.ThresholdNs).Seconds())
		add("slo_fast_burn", "Error-budget burn rate over the fast window.", slo.FastBurn)
		add("slo_slow_burn", "Error-budget burn rate over the slow window.", slo.SlowBurn)
		add("slo_fast_alert", "1 while the fast-burn alert fires.", boolGauge(slo.FastAlert))
		add("slo_slow_alert", "1 while the slow-burn alert fires.", boolGauge(slo.SlowAlert))
		add("slo_window_p99_seconds", "Tracked stage p99 over the fast window.", time.Duration(slo.FastP99Ns).Seconds())
		b.family(MetricNamespace+"_slo_fast_window_observations", "gauge",
			"Executions observed inside the fast window.").add("", labels, float64(slo.FastCount))
	}

	return b.write(w)
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
