package serve

import (
	"errors"
	"io"
	"net/http"
	"sort"

	"copycat/internal/session"
)

// The /sessions surface exposes the multi-tenant session manager over
// HTTP:
//
//	GET    /sessions             host stats + every session's state
//	POST   /sessions?tenant=x    create (admission-controlled; 503 when
//	                             the host sheds with Retry-After)
//	POST   /sessions/{id}/attach pin + transparent reload + unpin (a
//	                             keep-alive touch; returns the info)
//	POST   /sessions/{id}/evict  snapshot + drop resident state (409
//	                             while pinned by a holder)
//	DELETE /sessions/{id}        destroy the session and its snapshot
//
// All handlers 404 when the server was built without a Host.

// sessionList is the GET /sessions response body.
type sessionList struct {
	Stats    session.HostStats `json:"stats"`
	Sessions []session.Info    `json:"sessions"`
}

type sessionError struct {
	Error string `json:"error"`
}

func (s *Server) hostOr404(w http.ResponseWriter) *session.Manager {
	if s.cfg.Host == nil {
		writeJSON(w, http.StatusNotFound, sessionError{Error: "no session host configured"})
		return nil
	}
	return s.cfg.Host
}

func (s *Server) handleSessionsList(w http.ResponseWriter, r *http.Request) {
	m := s.hostOr404(w)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, sessionList{Stats: m.Stats(), Sessions: m.List()})
}

func (s *Server) handleSessionsCreate(w http.ResponseWriter, r *http.Request) {
	m := s.hostOr404(w)
	if m == nil {
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		tenant = "default"
	}
	sess, err := m.Create(tenant)
	if err != nil {
		if errors.Is(err, session.ErrOverloaded) || errors.Is(err, session.ErrCapacity) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, sessionError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, sessionError{Error: err.Error()})
		return
	}
	sess.Release()
	info, _ := m.Get(sess.ID())
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleSessionAttach(w http.ResponseWriter, r *http.Request) {
	m := s.hostOr404(w)
	if m == nil {
		return
	}
	id := r.PathValue("id")
	sess, err := m.Acquire(id)
	if err != nil {
		if errors.Is(err, session.ErrNotFound) {
			writeJSON(w, http.StatusNotFound, sessionError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, sessionError{Error: err.Error()})
		return
	}
	sess.Release()
	info, _ := m.Get(id)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSessionEvict(w http.ResponseWriter, r *http.Request) {
	m := s.hostOr404(w)
	if m == nil {
		return
	}
	id := r.PathValue("id")
	switch err := m.Evict(id); {
	case err == nil:
		info, _ := m.Get(id)
		writeJSON(w, http.StatusOK, info)
	case errors.Is(err, session.ErrNotFound):
		writeJSON(w, http.StatusNotFound, sessionError{Error: err.Error()})
	case errors.Is(err, session.ErrBusy):
		writeJSON(w, http.StatusConflict, sessionError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, sessionError{Error: err.Error()})
	}
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	m := s.hostOr404(w)
	if m == nil {
		return
	}
	id := r.PathValue("id")
	if err := m.Destroy(id); err != nil {
		if errors.Is(err, session.ErrNotFound) {
			writeJSON(w, http.StatusNotFound, sessionError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, sessionError{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeSessionExposition appends the per-tenant session families to the
// /metrics body: one labelled series per session for residency,
// footprint, refreshes, reloads, and evictions. Family names are
// disjoint from the host-level copycat_sessions_* families (note the
// singular), so the combined exposition stays lint-clean.
func writeSessionExposition(w io.Writer, m *session.Manager) error {
	b := newExpoBuilder()
	resident := b.family(MetricNamespace+"_session_resident", "gauge",
		"1 while the session's state is resident in memory, 0 while evicted.")
	bytes := b.family(MetricNamespace+"_session_resident_bytes", "gauge",
		"Estimated resident footprint of the session in bytes.")
	refreshes := b.family(MetricNamespace+"_session_refreshes_total", "counter",
		"Suggestion refreshes executed by the session.")
	reloads := b.family(MetricNamespace+"_session_reloads_total", "counter",
		"Times the session was transparently reloaded from its snapshot.")
	evictions := b.family(MetricNamespace+"_session_evictions_total", "counter",
		"Times the session's resident state was evicted to its snapshot.")
	tenantResident := b.family(MetricNamespace+"_tenant_resident_sessions", "gauge",
		"Resident sessions per tenant — the series the TenantResidentQuota fairness policy protects.")
	perTenant := map[string]int{}
	var tenants []string
	for _, info := range m.List() {
		labels := `{session="` + escapeLabelValue(info.ID) +
			`",tenant="` + escapeLabelValue(info.Tenant) + `"}`
		resident.add("", labels, boolGauge(info.Resident))
		bytes.add("", labels, float64(info.Bytes))
		refreshes.add("", labels, float64(info.Refreshes))
		reloads.add("", labels, float64(info.Reloads))
		evictions.add("", labels, float64(info.Evictions))
		if _, seen := perTenant[info.Tenant]; !seen {
			tenants = append(tenants, info.Tenant)
			perTenant[info.Tenant] = 0
		}
		if info.Resident {
			perTenant[info.Tenant]++
		}
	}
	sort.Strings(tenants)
	for _, tenant := range tenants {
		tenantResident.add("", `{tenant="`+escapeLabelValue(tenant)+`"}`, float64(perTenant[tenant]))
	}
	return b.write(w)
}
