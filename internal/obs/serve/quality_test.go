package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"copycat/internal/obs"
)

// sampleQuality fabricates a tracker with activity on several surfaces.
func sampleQuality() *obs.QualityTracker {
	q := obs.NewQualityTracker()
	q.Accept(obs.FeedbackColumns, 0, 1)
	q.Accept(obs.FeedbackColumns, 2, 3)
	q.Accept(obs.FeedbackRows, 0, 0)
	q.Reject(obs.FeedbackQueries)
	q.Reject(obs.FeedbackColumns)
	q.UndoAccept(obs.FeedbackColumns)
	return q
}

func sampleQualityReport() QualityReport {
	q := sampleQuality()
	tenant := obs.NewQualityTracker()
	tenant.Accept(obs.FeedbackQueries, 1, 2)
	tenant.Reject(obs.FeedbackQueries)
	return QualityReport{
		QualityStats: q.Snapshot(),
		Tenants: map[string]obs.QualityStats{
			"alice": q.Snapshot(),
			"bob":   tenant.Snapshot(),
		},
	}
}

func TestQualityEndpoint(t *testing.T) {
	s := New(Config{Quality: sampleQualityReport})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/quality", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /quality = %d\n%s", rec.Code, rec.Body)
	}
	var rep QualityReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/quality not JSON: %v\n%s", err, rec.Body)
	}
	if rep.TotalAccepts != 3 || rep.TotalRejects != 2 {
		t.Errorf("host stats = %d accepts / %d rejects, want 3/2", rep.TotalAccepts, rep.TotalRejects)
	}
	if want := 3.0 / 5.0; rep.AcceptanceRate != want {
		t.Errorf("acceptance rate = %.3f, want %.3f", rep.AcceptanceRate, want)
	}
	if len(rep.Tenants) != 2 || rep.Tenants["bob"].TotalAccepts != 1 {
		t.Errorf("tenant breakdown wrong: %+v", rep.Tenants)
	}
	// Field names are part of the contract with dashboards.
	body := rec.Body.String()
	for _, want := range []string{
		`"acceptance_rate"`, `"accepted_rank_histogram"`, `"mean_rounds_to_accept"`, `"tenants"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/quality body missing %s:\n%s", want, body)
		}
	}
}

func TestQualityEndpointUnconfigured(t *testing.T) {
	s := New(Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/quality", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /quality without a source = %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "no quality source configured") {
		t.Errorf("404 body should say why: %s", rec.Body)
	}
}

// TestMetricsCarriesQualityFamilies: with a quality source wired in,
// /metrics carries both the host-level quality.* families (folded into
// the snapshot) and the tenant-labelled series — and the combined
// exposition still passes the lint.
func TestMetricsCarriesQualityFamilies(t *testing.T) {
	q := sampleQuality()
	metrics := func() obs.Snapshot {
		snap := sampleSnapshot()
		q.Fold(snap)
		return snap
	}
	s := New(Config{Metrics: metrics, Quality: sampleQualityReport})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	if err := Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition with quality families fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE copycat_quality_accepts_total counter",
		"copycat_quality_accepts_total 3",
		"copycat_quality_rejects_total 2",
		"copycat_quality_accepts_undone_total 1",
		"copycat_quality_columns_accepted_total 2",
		"copycat_quality_accepted_rank_0_total 2",
		"copycat_quality_accepted_rank_2_total 1",
		"# TYPE copycat_quality_acceptance_rate gauge",
		"copycat_quality_acceptance_rate 0.6",
		"# TYPE copycat_tenant_feedback_accepts_total counter",
		`copycat_tenant_feedback_accepts_total{tenant="alice"} 3`,
		`copycat_tenant_feedback_accepts_total{tenant="bob"} 1`,
		`copycat_tenant_feedback_rejects_total{tenant="bob"} 1`,
		"# TYPE copycat_tenant_acceptance_rate gauge",
		`copycat_tenant_acceptance_rate{tenant="bob"} 0.5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// Tenants are emitted in sorted order so scrapes are deterministic.
	if strings.Index(body, `tenant="alice"`) > strings.Index(body, `tenant="bob"`) {
		t.Error("tenant series not sorted")
	}
}

// TestQualityExpositionEmptyWithoutTenants: a single-session system has
// no tenant breakdown; the writer must emit nothing rather than empty
// families (which the lint rejects).
func TestQualityExpositionEmptyWithoutTenants(t *testing.T) {
	var b strings.Builder
	if err := writeQualityExposition(&b, QualityReport{QualityStats: sampleQuality().Snapshot()}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("tenant-less report produced exposition output:\n%s", b.String())
	}
}
