package serve

import (
	"io"
	"net/http"
	"sort"

	"copycat/internal/obs"
)

// QualityReport is the GET /quality response body: the rolling
// suggestion-quality stats (acceptance rate, rank-of-accepted
// histogram, rounds-to-accept) for the whole host, plus a per-tenant
// breakdown when a session manager is wired in.
type QualityReport struct {
	obs.QualityStats
	Tenants map[string]obs.QualityStats `json:"tenants,omitempty"`
}

// handleQuality serves the live quality report as JSON. 404 when the
// server was built without a Quality source.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Quality == nil {
		writeJSON(w, http.StatusNotFound, sessionError{Error: "no quality source configured"})
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Quality())
}

// writeQualityExposition appends the per-tenant suggestion-quality
// families to the /metrics body. The host-level quality.* counters and
// gauges already arrive through the metrics snapshot
// (QualityTracker.Fold); this adds only the tenant-labelled series, so
// the combined exposition stays lint-clean.
func writeQualityExposition(w io.Writer, rep QualityReport) error {
	if len(rep.Tenants) == 0 {
		return nil
	}
	b := newExpoBuilder()
	accepts := b.family(MetricNamespace+"_tenant_feedback_accepts_total", "counter",
		"Suggestions (columns, queries, rows, tuples) accepted per tenant.")
	rejects := b.family(MetricNamespace+"_tenant_feedback_rejects_total", "counter",
		"Suggestions rejected per tenant.")
	rate := b.family(MetricNamespace+"_tenant_acceptance_rate", "gauge",
		"Rolling acceptance rate per tenant: accepts / (accepts + rejects).")
	tenants := make([]string, 0, len(rep.Tenants))
	for t := range rep.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		st := rep.Tenants[t]
		labels := `{tenant="` + escapeLabelValue(t) + `"}`
		accepts.add("", labels, float64(st.TotalAccepts))
		rejects.add("", labels, float64(st.TotalRejects))
		rate.add("", labels, st.AcceptanceRate)
	}
	return b.write(w)
}
