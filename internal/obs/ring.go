package obs

import "sync"

// SpanEvent is one finished span as published to a live exporter, in
// end order with the trace's internal ids. Live streaming cannot use
// the deterministic export reordering (that requires the whole span
// set); consumers that need diffable output still use WriteJSONL /
// WriteChrome on the completed trace.
type SpanEvent struct {
	Seq     int64  `json:"seq"` // ring sequence number, monotonically increasing
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent"`
	Name    string `json:"name"`
	Cat     string `json:"cat"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// SpanRing is a bounded ring buffer of finished spans feeding the
// telemetry server's /trace/stream endpoint: the tracer publishes every
// ended span, the ring keeps the most recent `cap`, and any number of
// stream subscribers read forward from a cursor, waiting on a broadcast
// channel for more. Safe for concurrent use; a nil *SpanRing is inert.
type SpanRing struct {
	mu      sync.Mutex
	cap     int
	buf     []SpanEvent
	next    int64 // sequence number the next published span receives
	notify  chan struct{}
	dropped int64 // spans slow subscribers missed (cursor fell off the ring)
}

// DefaultSpanRingSize bounds the live-span buffer: enough for several
// suggestion refreshes' worth of spans without unbounded growth when no
// client is streaming.
const DefaultSpanRingSize = 4096

// NewSpanRing creates a ring holding the most recent `capacity` spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = DefaultSpanRingSize
	}
	return &SpanRing{cap: capacity, notify: make(chan struct{})}
}

// Publish appends one span event, evicting the oldest on overflow, and
// wakes every waiting subscriber. The event's Seq is assigned here.
func (r *SpanRing) Publish(ev SpanEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev.Seq = r.next
	r.next++
	r.buf = append(r.buf, ev)
	if len(r.buf) > r.cap {
		// Copy down instead of re-slicing so the backing array's dropped
		// prefix is reclaimable.
		n := copy(r.buf, r.buf[len(r.buf)-r.cap:])
		r.buf = r.buf[:n]
	}
	close(r.notify)
	r.notify = make(chan struct{})
	r.mu.Unlock()
}

// Since returns a copy of every buffered event with Seq >= cursor, the
// cursor to resume from, and a channel that closes on the next Publish
// — the subscriber loop is: drain, write, select on wait/ctx, repeat.
// A subscriber that fell behind the ring's capacity resumes at the
// oldest retained span; the spans it missed are counted in Dropped()
// (exported as the spans.dropped counter) so the loss is observable.
func (r *SpanRing) Since(cursor int64) (events []SpanEvent, next int64, wait <-chan struct{}) {
	if r == nil {
		closed := make(chan struct{})
		close(closed)
		return nil, 0, closed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	first := r.next - int64(len(r.buf))
	if cursor < first {
		// cursor > 0 distinguishes a lagging subscriber from a fresh one
		// (fresh subscribers start at 0, which is legitimately below
		// `first` once the ring has wrapped).
		if cursor > 0 {
			r.dropped += first - cursor
		}
		cursor = first
	}
	if cursor < r.next {
		events = append(events, r.buf[cursor-first:]...)
	}
	return events, r.next, r.notify
}

// Len reports how many spans the ring currently retains.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped reports how many spans slow subscribers have missed in total
// (cursor fell behind the ring's retention).
func (r *SpanRing) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Cap reports the ring's capacity.
func (r *SpanRing) Cap() int {
	if r == nil {
		return 0
	}
	return r.cap
}
