package obs

import (
	"sync"
	"time"
)

// WindowHistogram is a rolling-window latency histogram: a ring of
// sub-window bucket arrays that rotates on an injectable clock, so
// Snapshot reports only the last Window of behaviour instead of
// everything since boot. It backs the SLO tracker's burn-rate math and
// the telemetry server's "what is the system doing right now" series.
//
// Rotation is driven entirely by the now func passed at construction —
// on a VirtualClock the whole window mechanism is deterministic. A nil
// *WindowHistogram is inert, like every other obs instrument.
type WindowHistogram struct {
	mu        sync.Mutex
	now       func() time.Time
	bounds    []time.Duration // ascending upper bounds (shared with slots)
	slot      time.Duration   // width of one sub-window
	slots     []windowSlot    // ring; slots[head] is the live sub-window
	head      int
	headStart time.Time // start instant of the live sub-window
}

// windowSlot is one sub-window's bucket counts.
type windowSlot struct {
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    int64 // nanoseconds
}

// NewWindowHistogram creates a rolling histogram covering `window` of
// clock time split into `slots` sub-windows (minimum 2), with the given
// ascending bucket bounds. now must not be nil; inject a virtual
// clock's Now for deterministic tests.
func NewWindowHistogram(bounds []time.Duration, window time.Duration, slots int, now func() time.Time) *WindowHistogram {
	if slots < 2 {
		slots = 2
	}
	if window <= 0 {
		window = time.Minute
	}
	b := append([]time.Duration(nil), bounds...)
	w := &WindowHistogram{
		now:       now,
		bounds:    b,
		slot:      window / time.Duration(slots),
		slots:     make([]windowSlot, slots),
		headStart: now(),
	}
	for i := range w.slots {
		w.slots[i].counts = make([]int64, len(b)+1)
	}
	return w
}

// Window reports the total span of clock time the histogram covers.
func (w *WindowHistogram) Window() time.Duration {
	if w == nil {
		return 0
	}
	return w.slot * time.Duration(len(w.slots))
}

// rotate advances the ring to the sub-window containing now, clearing
// every slot that expired on the way. A clock that moved backwards
// (e.g. a VirtualClock injected after construction, whose epoch is
// 1970) resets the ring and re-anchors on the new timeline. Callers
// hold w.mu.
func (w *WindowHistogram) rotate(now time.Time) {
	if now.Before(w.headStart) {
		for i := range w.slots {
			w.slots[i].clear()
		}
		w.headStart = now
		return
	}
	steps := int(now.Sub(w.headStart) / w.slot)
	if steps <= 0 {
		return
	}
	if steps >= len(w.slots) {
		for i := range w.slots {
			w.slots[i].clear()
		}
		w.headStart = w.headStart.Add(w.slot * time.Duration(steps))
		return
	}
	for i := 0; i < steps; i++ {
		w.head = (w.head + 1) % len(w.slots)
		w.slots[w.head].clear()
	}
	w.headStart = w.headStart.Add(w.slot * time.Duration(steps))
}

func (s *windowSlot) clear() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.count = 0
	s.sum = 0
}

// Observe records one duration into the live sub-window.
func (w *WindowHistogram) Observe(d time.Duration) {
	if w == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := bucketIndex(w.bounds, d)
	w.mu.Lock()
	w.rotate(w.now())
	s := &w.slots[w.head]
	s.counts[i]++
	s.count++
	s.sum += d.Nanoseconds()
	w.mu.Unlock()
}

// bucketIndex finds the bucket covering d (len(bounds) = overflow).
func bucketIndex(bounds []time.Duration, d time.Duration) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// merged folds every live sub-window into one counts array. Callers
// hold w.mu.
func (w *WindowHistogram) merged() ([]int64, int64, int64) {
	counts := make([]int64, len(w.bounds)+1)
	var count, sum int64
	for i := range w.slots {
		s := &w.slots[i]
		for j, n := range s.counts {
			counts[j] += n
		}
		count += s.count
		sum += s.sum
	}
	return counts, count, sum
}

// Count reports the number of observations inside the current window.
func (w *WindowHistogram) Count() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(w.now())
	_, count, _ := w.merged()
	return count
}

// Quantile estimates the q-th quantile over the current window, with
// the same interpolation rules as Histogram.Quantile.
func (w *WindowHistogram) Quantile(q float64) time.Duration {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(w.now())
	counts, _, _ := w.merged()
	return quantileFromCounts(w.bounds, counts, q)
}

// AboveThreshold reports how many of the window's observations exceeded
// the given threshold, alongside the window total — the good/bad split
// SLO burn rates are computed from. Thresholds that sit exactly on a
// bucket bound are exact; others count whole buckets above the covering
// bound (the conservative direction: a mid-bucket threshold never
// under-reports violations from higher buckets).
func (w *WindowHistogram) AboveThreshold(threshold time.Duration) (above, total int64) {
	if w == nil {
		return 0, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(w.now())
	counts, count, _ := w.merged()
	cut := bucketIndex(w.bounds, threshold) // buckets <= cut are within threshold's covering bound
	for i := cut + 1; i < len(counts); i++ {
		above += counts[i]
	}
	return above, count
}

// Snapshot copies the window's merged state, with the headline
// quantiles pre-computed — the same shape as a cumulative histogram's
// snapshot, so render paths need not care which kind they display.
func (w *WindowHistogram) Snapshot() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(w.now())
	counts, count, sum := w.merged()
	snap := HistogramSnapshot{
		Count: count,
		SumNs: sum,
		P50Ns: quantileFromCounts(w.bounds, counts, 0.50).Nanoseconds(),
		P95Ns: quantileFromCounts(w.bounds, counts, 0.95).Nanoseconds(),
		P99Ns: quantileFromCounts(w.bounds, counts, 0.99).Nanoseconds(),
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(w.bounds) {
			le = w.bounds[i].Nanoseconds()
		}
		snap.Buckets = append(snap.Buckets, BucketSnapshot{LeNs: le, Count: n})
	}
	return snap
}
