package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"copycat/internal/resilience"
)

func TestTraceBasicHierarchy(t *testing.T) {
	clk := resilience.NewVirtualClock()
	tr := NewTrace(clk)
	root := tr.Start("suggest.refresh", "stage")
	clk.Advance(2 * time.Millisecond)
	child := root.Child("execute.candidate", "candidate")
	child.SetAttr("edge", "e1")
	clk.Advance(3 * time.Millisecond)
	child.End()
	root.End()

	if tr.Len() != 2 {
		t.Fatalf("got %d spans, want 2", tr.Len())
	}
	ordered := tr.ordered()
	if ordered[0].name != "suggest.refresh" || ordered[0].parentExportID != 0 {
		t.Fatalf("root mis-ordered: %+v", ordered[0])
	}
	if ordered[1].name != "execute.candidate" || ordered[1].parentExportID != ordered[0].exportID {
		t.Fatalf("child not parented to root: %+v", ordered[1])
	}
	if ordered[1].startNs != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("child start = %d", ordered[1].startNs)
	}
	if ordered[1].durNs != (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("child dur = %d", ordered[1].durNs)
	}
	if ordered[0].durNs != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("root dur = %d", ordered[0].durNs)
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	tr := NewTrace(resilience.NewVirtualClock())
	sp := tr.Start("learn.paste", "stage")
	sp.Child("learn.generalize", "stage").End()
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			t.Fatalf("event phase %v, want X", ev["ph"])
		}
	}
}

// emitConcurrent drives a trace the way the parallel candidate executor
// does: one shared trace, one root per stage, many goroutines emitting
// children with distinct names.
func emitConcurrent(tr *Trace, clk *resilience.VirtualClock) {
	root := tr.Start("suggest.refresh", "stage")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child(fmt.Sprintf("execute.candidate:e%02d", i), "candidate")
			sp.SetAttrInt("rows", int64(i))
			grand := sp.Child("svc.call:Geocoder", "service")
			grand.End()
			sp.End()
		}(i)
	}
	wg.Wait()
	clk.Advance(time.Millisecond)
	root.End()
}

// TestConcurrentSpanEmission is the race-detector test: many goroutines
// share one trace (run under -race via make test-race).
func TestConcurrentSpanEmission(t *testing.T) {
	clk := resilience.NewVirtualClock()
	tr := NewTrace(clk)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			emitConcurrent(tr, clk)
		}()
	}
	wg.Wait()
	if want := 8 * (1 + 16*2); tr.Len() != want {
		t.Fatalf("got %d spans, want %d", tr.Len(), want)
	}
}

// TestDeterministicExport checks the tentpole reproducibility claim:
// two runs with the same virtual clock and the same (concurrently
// emitted) span set export byte-identical JSON, both Chrome and JSONL.
func TestDeterministicExport(t *testing.T) {
	run := func() (string, string) {
		clk := resilience.NewVirtualClock()
		tr := NewTrace(clk)
		emitConcurrent(tr, clk)
		var chrome, jsonl bytes.Buffer
		if err := tr.WriteChrome(&chrome); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return chrome.String(), jsonl.String()
	}
	c1, j1 := run()
	c2, j2 := run()
	if c1 != c2 {
		t.Fatalf("chrome exports differ:\n%s\nvs\n%s", c1, c2)
	}
	if j1 != j2 {
		t.Fatalf("jsonl exports differ:\n%s\nvs\n%s", j1, j2)
	}
	if !strings.Contains(j1, "execute.candidate:e00") {
		t.Fatalf("jsonl export missing candidate span:\n%s", j1)
	}
}

// TestNilTraceIsFreeAndSilent pins the disabled fast path: a nil trace
// produces nil spans, every derived call no-ops, and — crucially for
// the "tracing disabled costs ~zero" budget — allocates nothing.
func TestNilTraceIsFreeAndSilent(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x", "y")
	if sp != nil {
		t.Fatal("nil trace must return nil span")
	}
	child := sp.Child("c", "d")
	child.SetAttr("k", "v")
	child.End()
	sp.End()
	if tr.Len() != 0 {
		t.Fatal("nil trace must record nothing")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Start("a", "b")
		c := s.Child("c", "d")
		c.SetAttrInt("n", 1)
		c.End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per op, want 0", allocs)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil trace chrome export malformed: %s", buf.String())
	}
}

func TestOrphanSpansExportAsRoots(t *testing.T) {
	tr := NewTrace(resilience.NewVirtualClock())
	root := tr.Start("stage", "s")
	child := root.Child("child", "c")
	child.End()
	// root never ends — child's parent is missing from the record.
	ordered := tr.ordered()
	if len(ordered) != 1 || ordered[0].parentExportID != 0 {
		t.Fatalf("orphan should export as root: %+v", ordered)
	}
}

func TestSpanInContext(t *testing.T) {
	tr := NewTrace(resilience.NewVirtualClock())
	sp := tr.Start("root", "r")
	ctx := ContextWithSpan(nil, sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext = %v, want the stored span", got)
	}
	if got := SpanFromContext(nil); got != nil {
		t.Fatalf("SpanFromContext(nil) = %v, want nil", got)
	}
	if got := SpanFromContext(ContextWithSpan(nil, nil)); got != nil {
		t.Fatalf("nil span roundtrip = %v, want nil", got)
	}
}

// BenchmarkDisabledSpan measures the nil fast path the whole pipeline
// pays when tracing is off.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("a", "b")
		c := s.Child("c", "d")
		c.End()
		s.End()
	}
}

// BenchmarkEnabledSpan measures the enabled path for comparison.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTrace(resilience.NewVirtualClock())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("a", "b")
		c := s.Child("c", "d")
		c.End()
		s.End()
		// Drop the buffer periodically so the benchmark measures span
		// cost, not the GC scanning an ever-growing retained trace.
		if tr.Len() >= 1<<14 {
			b.StopTimer()
			tr.Reset()
			b.StartTimer()
		}
	}
	b.StopTimer()
	tr.Reset()
}
