package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Action classifies what happened to a candidate at some pipeline stage.
type Action string

// The decision vocabulary. "pruned" candidates never executed (cost
// above the suggestion threshold, compile failure); "dropped" ones
// executed and failed; "empty" ones executed and produced no rows;
// "degraded" ones survived with partial results; "suggested" ones made
// the list at some rank; "outranked" ones lost to an accepted
// alternative; "accepted"/"rejected" record explicit user feedback.
const (
	ActionPruned    Action = "pruned"
	ActionDropped   Action = "dropped"
	ActionEmpty     Action = "empty"
	ActionDegraded  Action = "degraded"
	ActionSuggested Action = "suggested"
	ActionOutranked Action = "outranked"
	ActionAccepted  Action = "accepted"
	ActionRejected  Action = "rejected"
)

// Decision is one entry of the decision log: why a candidate query was
// pruned, degraded, outranked, or kept, at which stage, with the cost
// and rank that drove the call.
type Decision struct {
	Seq       int     `json:"seq"`
	Session   string  `json:"session,omitempty"` // owning session handle ("" single-workspace)
	Stage     string  `json:"stage"`             // e.g. "suggest.columns", "search.steiner"
	Candidate string  `json:"candidate"`         // edge label / target node
	Action    Action  `json:"action"`
	Reason    string  `json:"reason,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	Rank      int     `json:"rank"` // position in the ranked list; -1 if not ranked
}

// String renders the decision as a single explanation line.
func (d Decision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s: %s", d.Stage, d.Candidate, d.Action)
	if d.Rank >= 0 {
		fmt.Fprintf(&b, " (rank %d)", d.Rank)
	}
	if d.Cost != 0 {
		fmt.Fprintf(&b, " (cost %.2f)", d.Cost)
	}
	if d.Reason != "" {
		fmt.Fprintf(&b, " — %s", d.Reason)
	}
	return b.String()
}

// maxDecisions bounds the log; the oldest half is discarded on
// overflow, so a long session keeps recent explanations.
const maxDecisions = 4096

// DecisionLog records candidate decisions across the session. Safe for
// concurrent use (the parallel candidate executor records into one
// shared log). A nil *DecisionLog is inert.
type DecisionLog struct {
	mu      sync.Mutex
	next    int
	session string
	ds      []Decision
	sink    func(Decision)
}

// NewDecisionLog creates an empty log.
func NewDecisionLog() *DecisionLog { return &DecisionLog{} }

// SetSession stamps every subsequently recorded decision with the
// owning session's ID, attributing multi-tenant decision streams. The
// single-workspace facade leaves it empty.
func (l *DecisionLog) SetSession(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.session = id
	l.mu.Unlock()
}

// SetSink installs a live observer called with every recorded decision
// after it is stamped (the flight recorder's feed). The sink runs
// outside the log's lock; nil removes it.
func (l *DecisionLog) SetSink(fn func(Decision)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = fn
	l.mu.Unlock()
}

// Record appends a decision, stamping its sequence number and the log's
// session ID (unless the decision already carries one).
func (l *DecisionLog) Record(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.next++
	d.Seq = l.next
	if d.Session == "" {
		d.Session = l.session
	}
	l.ds = append(l.ds, d)
	if len(l.ds) > maxDecisions {
		l.ds = append(l.ds[:0:0], l.ds[len(l.ds)/2:]...)
	}
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(d)
	}
}

// Decisions returns a copy of the log, oldest first.
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Decision(nil), l.ds...)
}

// For returns the decisions whose candidate contains the given
// substring (case-insensitive), oldest first — the ":why <candidate>"
// lookup.
func (l *DecisionLog) For(candidate string) []Decision {
	if l == nil {
		return nil
	}
	needle := strings.ToLower(candidate)
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Decision
	for _, d := range l.ds {
		if strings.Contains(strings.ToLower(d.Candidate), needle) {
			out = append(out, d)
		}
	}
	return out
}

// Len reports the number of retained decisions.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ds)
}

// Reset clears the log.
func (l *DecisionLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ds = nil
	l.mu.Unlock()
}
