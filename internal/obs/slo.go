package obs

import (
	"fmt"
	"time"
)

// SLOConfig defines one latency objective over a named pipeline stage:
// at least Target of the stage's executions should finish within
// Threshold, judged over rolling windows rather than cumulative
// since-boot counts.
type SLOConfig struct {
	// Stage is the pipeline stage the objective covers (the workspace
	// observes its stage latencies into the tracker by this name).
	Stage string
	// Threshold is the per-execution latency objective; an execution
	// slower than this consumes error budget.
	Threshold time.Duration
	// Target is the fraction of executions that must meet Threshold
	// (e.g. 0.99). The error budget is 1 - Target.
	Target float64
	// FastWindow / SlowWindow are the two burn-rate windows: the fast
	// one catches sudden regressions, the slow one sustained ones.
	FastWindow, SlowWindow time.Duration
	// FastBurnThreshold / SlowBurnThreshold are the burn-rate levels
	// (error rate ÷ error budget) at which the respective alert fires.
	FastBurnThreshold, SlowBurnThreshold float64
	// Slots is how many sub-windows each rolling window is split into.
	Slots int
}

// DefaultSLOConfig is the suggestion-refresh objective the repo's
// benchmarks justify: BENCH_3/BENCH_4 put the warm refresh p99 well
// under 25ms, so the objective is 99% of refreshes under 25ms, with
// the Google-SRE-style 5m/1h burn windows (fast alert at 14.4× burn —
// exhausting a 30-day budget in ~2 days — and slow alert at 6×).
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		Stage:             "suggest.refresh",
		Threshold:         25 * time.Millisecond,
		Target:            0.99,
		FastWindow:        5 * time.Minute,
		SlowWindow:        time.Hour,
		FastBurnThreshold: 14.4,
		SlowBurnThreshold: 6,
		Slots:             15,
	}
}

// withDefaults fills zero fields from DefaultSLOConfig.
func (c SLOConfig) withDefaults() SLOConfig {
	d := DefaultSLOConfig()
	if c.Stage == "" {
		c.Stage = d.Stage
	}
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = d.Target
	}
	if c.FastWindow <= 0 {
		c.FastWindow = d.FastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = d.SlowWindow
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = d.FastBurnThreshold
	}
	if c.SlowBurnThreshold <= 0 {
		c.SlowBurnThreshold = d.SlowBurnThreshold
	}
	if c.Slots < 2 {
		c.Slots = d.Slots
	}
	return c
}

// SLOTracker tracks one latency objective over fast and slow rolling
// windows and computes burn rates from them. Safe for concurrent use;
// a nil *SLOTracker is inert.
type SLOTracker struct {
	cfg  SLOConfig
	fast *WindowHistogram
	slow *WindowHistogram
}

// NewSLOTracker builds a tracker on the given clock func (zero fields
// of cfg take defaults). Inject a VirtualClock's Now for deterministic
// burn-rate tests.
func NewSLOTracker(cfg SLOConfig, now func() time.Time) *SLOTracker {
	cfg = cfg.withDefaults()
	if now == nil {
		now = time.Now
	}
	bounds := DefaultLatencyBuckets()
	return &SLOTracker{
		cfg:  cfg,
		fast: NewWindowHistogram(bounds, cfg.FastWindow, cfg.Slots, now),
		slow: NewWindowHistogram(bounds, cfg.SlowWindow, cfg.Slots, now),
	}
}

// Config returns the tracked objective.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// Tracks reports whether the tracker's objective covers the named
// stage.
func (t *SLOTracker) Tracks(stage string) bool {
	return t != nil && t.cfg.Stage == stage
}

// Observe records one execution of the tracked stage into both burn
// windows.
func (t *SLOTracker) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.fast.Observe(d)
	t.slow.Observe(d)
}

// SLOStatus is a point-in-time report of the objective: windowed
// error rates, burn rates, alert states, and the fast window's p99.
type SLOStatus struct {
	Stage       string  `json:"stage"`
	ThresholdNs int64   `json:"threshold_ns"`
	Target      float64 `json:"target"`

	FastWindowNs      int64   `json:"fast_window_ns"`
	FastCount         int64   `json:"fast_count"`
	FastErrRate       float64 `json:"fast_err_rate"`
	FastBurn          float64 `json:"fast_burn"`
	FastBurnThreshold float64 `json:"fast_burn_threshold"`
	FastAlert         bool    `json:"fast_alert"`

	SlowWindowNs      int64   `json:"slow_window_ns"`
	SlowCount         int64   `json:"slow_count"`
	SlowErrRate       float64 `json:"slow_err_rate"`
	SlowBurn          float64 `json:"slow_burn"`
	SlowBurnThreshold float64 `json:"slow_burn_threshold"`
	SlowAlert         bool    `json:"slow_alert"`

	// FastP99Ns is the tracked stage's p99 over the fast window — the
	// "right now" counterpart of the cumulative registry histogram.
	FastP99Ns int64 `json:"fast_p99_ns"`
}

// String renders the status as one summary line.
func (s SLOStatus) String() string {
	state := "ok"
	if s.SlowAlert {
		state = "slow-burn alert"
	}
	if s.FastAlert {
		state = "fast-burn alert"
	}
	return fmt.Sprintf("slo %s: p99(%s)=%s target %.2f%% < %s — burn fast %.2f / slow %.2f (%s)",
		s.Stage, time.Duration(s.FastWindowNs), time.Duration(s.FastP99Ns),
		100*s.Target, time.Duration(s.ThresholdNs), s.FastBurn, s.SlowBurn, state)
}

// Status computes the current burn rates. Burn rate is the windowed
// error rate divided by the error budget (1 - Target): burn 1.0 spends
// budget exactly as fast as the objective allows, 14.4 exhausts a
// 30-day budget in ~2 days. An empty window reports zero burn (no
// traffic is not an outage).
func (t *SLOTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	budget := 1 - t.cfg.Target
	st := SLOStatus{
		Stage:             t.cfg.Stage,
		ThresholdNs:       t.cfg.Threshold.Nanoseconds(),
		Target:            t.cfg.Target,
		FastWindowNs:      t.fast.Window().Nanoseconds(),
		SlowWindowNs:      t.slow.Window().Nanoseconds(),
		FastBurnThreshold: t.cfg.FastBurnThreshold,
		SlowBurnThreshold: t.cfg.SlowBurnThreshold,
		FastP99Ns:         t.fast.Quantile(0.99).Nanoseconds(),
	}
	above, total := t.fast.AboveThreshold(t.cfg.Threshold)
	st.FastCount = total
	if total > 0 {
		st.FastErrRate = float64(above) / float64(total)
		st.FastBurn = st.FastErrRate / budget
	}
	above, total = t.slow.AboveThreshold(t.cfg.Threshold)
	st.SlowCount = total
	if total > 0 {
		st.SlowErrRate = float64(above) / float64(total)
		st.SlowBurn = st.SlowErrRate / budget
	}
	st.FastAlert = st.FastBurn >= t.cfg.FastBurnThreshold
	st.SlowAlert = st.SlowBurn >= t.cfg.SlowBurnThreshold
	return st
}
