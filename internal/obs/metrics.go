package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the unified metrics surface: named counters, gauges, and
// fixed-bucket latency histograms, created on first use and safe for
// concurrent access. It supersedes ad-hoc tallies scattered across the
// engine and resilience layers — everything observable funnels into one
// Snapshot. A nil *Registry is inert (every lookup returns nil, every
// recording no-ops).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named latency histogram
// with the default bucket ladder.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(DefaultLatencyBuckets())
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (names are kept).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load reads the counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float value (sizes, rates, ratios).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load reads the gauge.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets is the standard upper-bound ladder for latency
// histograms: 50µs → 10s, roughly ×2–2.5 per step. Observations above
// the last bound land in an implicit overflow bucket.
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		50 * time.Microsecond,
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		1 * time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		1 * time.Second,
		2500 * time.Millisecond,
		5 * time.Second,
		10 * time.Second,
	}
}

// Histogram is a fixed-bucket latency histogram: atomic per-bucket
// counts plus total count and sum, from which p50/p95/p99 are estimated
// by linear interpolation inside the covering bucket.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Int64  // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram creates a histogram with the given ascending upper
// bounds (a copy is taken).
func NewHistogram(bounds []time.Duration) *Histogram {
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the covering bucket. The overflow bucket reports
// its lower bound. Returns 0 with no observations; q below 0 clamps to
// 0 (the smallest bucket's lower bound), q above 1 clamps to 1.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileFromCounts(h.bounds, counts, q)
}

// quantileFromCounts is the shared quantile estimator over a bucket
// ladder: bounds are ascending upper bounds, counts has len(bounds)+1
// entries (the last is the overflow bucket). Linear interpolation
// inside the covering bucket; the overflow bucket reports its lower
// bound (there is no upper bound to lerp to).
func quantileFromCounts(bounds []time.Duration, counts []int64, q float64) time.Duration {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		n := float64(c)
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = bounds[i-1]
			}
			if i == len(bounds) { // overflow: no upper bound to lerp to
				return lo
			}
			hi := bounds[i]
			frac := (rank - cum) / n
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	// Unreachable for rank <= total, but keep a safe answer rather than
	// indexing bounds[-1] on an empty ladder.
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// ---------------------------------------------------------------- snapshot

// BucketSnapshot is one histogram bucket: upper bound and count.
type BucketSnapshot struct {
	LeNs  int64 `json:"le_ns"` // upper bound; -1 for the overflow bucket
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, with the
// headline quantiles pre-computed.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumNs   int64            `json:"sum_ns"`
	P50Ns   int64            `json:"p50_ns"`
	P95Ns   int64            `json:"p95_ns"`
	P99Ns   int64            `json:"p99_ns"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// P50 returns the median as a duration.
func (h HistogramSnapshot) P50() time.Duration { return time.Duration(h.P50Ns) }

// P95 returns the 95th percentile as a duration.
func (h HistogramSnapshot) P95() time.Duration { return time.Duration(h.P95Ns) }

// P99 returns the 99th percentile as a duration.
func (h HistogramSnapshot) P99() time.Duration { return time.Duration(h.P99Ns) }

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		P50Ns: h.Quantile(0.50).Nanoseconds(),
		P95Ns: h.Quantile(0.95).Nanoseconds(),
		P99Ns: h.Quantile(0.99).Nanoseconds(),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i].Nanoseconds()
		}
		snap.Buckets = append(snap.Buckets, BucketSnapshot{LeNs: le, Count: n})
	}
	return snap
}

// Snapshot is a point-in-time, JSON-serializable copy of a Registry —
// the single machine-readable metrics surface (scpbench -json, the REPL
// :metrics command).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}
