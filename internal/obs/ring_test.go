package obs

import (
	"sync"
	"testing"
	"time"

	"copycat/internal/resilience"
)

func TestSpanRingPublishSince(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 3; i++ {
		r.Publish(SpanEvent{Name: "s", DurNs: int64(i)})
	}
	events, next, _ := r.Since(0)
	if len(events) != 3 || next != 3 {
		t.Fatalf("Since(0) = %d events, next %d", len(events), next)
	}
	for i, ev := range events {
		if ev.Seq != int64(i) || ev.DurNs != int64(i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	// Resuming from the cursor returns nothing new.
	if events, _, _ := r.Since(next); len(events) != 0 {
		t.Fatalf("Since(cursor) should be empty, got %d", len(events))
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		r.Publish(SpanEvent{DurNs: int64(i)})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", r.Len(), r.Cap())
	}
	// A cursor older than the retained window resumes at the oldest span.
	events, next, _ := r.Since(0)
	if len(events) != 4 || events[0].Seq != 6 || next != 10 {
		t.Fatalf("Since(0) after eviction = %d events, first seq %d, next %d",
			len(events), events[0].Seq, next)
	}
}

func TestSpanRingWaitWakesOnPublish(t *testing.T) {
	r := NewSpanRing(8)
	_, cursor, wait := r.Since(0)
	done := make(chan SpanEvent, 1)
	go func() {
		<-wait
		events, _, _ := r.Since(cursor)
		done <- events[0]
	}()
	r.Publish(SpanEvent{Name: "wake"})
	select {
	case ev := <-done:
		if ev.Name != "wake" {
			t.Fatalf("got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never woke")
	}
}

func TestSpanRingNil(t *testing.T) {
	var r *SpanRing
	r.Publish(SpanEvent{}) // must not panic
	events, next, wait := r.Since(0)
	if len(events) != 0 || next != 0 || r.Len() != 0 || r.Cap() != 0 {
		t.Fatal("nil ring should read as empty")
	}
	select {
	case <-wait: // nil ring's wait channel is pre-closed: no hang
	default:
		t.Fatal("nil ring wait channel should be closed")
	}
}

func TestTraceSinkPublishesEndedSpans(t *testing.T) {
	clock := resilience.NewVirtualClock()
	tr := NewTrace(clock)
	ring := NewSpanRing(16)
	tr.SetSink(ring.Publish)

	root := tr.Start("refresh", "stage")
	clock.Advance(time.Millisecond)
	child := root.Child("execute", "engine")
	child.SetAttr("candidate", "zip")
	clock.Advance(2 * time.Millisecond)
	child.End()
	root.End()

	events, _, _ := ring.Since(0)
	if len(events) != 2 {
		t.Fatalf("ring has %d events, want 2 (end order)", len(events))
	}
	if events[0].Name != "execute" || events[1].Name != "refresh" {
		t.Fatalf("end order wrong: %q, %q", events[0].Name, events[1].Name)
	}
	if events[0].Parent != events[1].ID {
		t.Fatal("child should reference root's id")
	}
	if events[0].DurNs != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("child dur = %d", events[0].DurNs)
	}
	if len(events[0].Attrs) != 1 || events[0].Attrs[0].Key != "candidate" {
		t.Fatalf("attrs = %+v", events[0].Attrs)
	}

	// Removing the sink stops publication; the trace itself still records.
	tr.SetSink(nil)
	tr.Start("quiet", "stage").End()
	if ring.Len() != 2 {
		t.Fatal("sink removal should stop publication")
	}
	if tr.Len() != 3 {
		t.Fatalf("trace len = %d, want 3", tr.Len())
	}

	// Concurrent spans publishing into one ring race-cleanly.
	var wg sync.WaitGroup
	tr.SetSink(ring.Publish)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Start("par", "stage").End()
			}
		}()
	}
	wg.Wait()
	if ring.Len() != 16 {
		t.Fatalf("ring should sit at capacity, len=%d", ring.Len())
	}
}

// TestSpanRingDroppedCountsSlowSubscribers is the spans.dropped
// contract: a subscriber whose cursor fell off the ring resumes at the
// oldest retained span and the miss is counted, while fresh subscribers
// (cursor 0 on an already-wrapped ring) are not counted as losses.
func TestSpanRingDroppedCountsSlowSubscribers(t *testing.T) {
	ring := NewSpanRing(4)
	for i := 0; i < 2; i++ {
		ring.Publish(SpanEvent{Name: "early"})
	}
	_, cursor, _ := ring.Since(0) // subscriber caught up at seq 2
	if cursor != 2 {
		t.Fatalf("cursor = %d, want 2", cursor)
	}

	// The ring wraps while the subscriber sleeps: seqs 2..7 are gone
	// except the last 4 (6..9 retained, first=6).
	for i := 0; i < 8; i++ {
		ring.Publish(SpanEvent{Name: "burst"})
	}

	// A fresh subscriber starting at 0 is not a loss.
	if events, _, _ := ring.Since(0); len(events) != 4 {
		t.Fatalf("fresh subscriber got %d events, want 4", len(events))
	}
	if got := ring.Dropped(); got != 0 {
		t.Fatalf("fresh subscriber counted as dropped: %d", got)
	}

	// The lagging subscriber resumes at the oldest retained span and its
	// 4 missed spans (seqs 2..5) are counted.
	events, next, _ := ring.Since(cursor)
	if len(events) != 4 || next != 10 {
		t.Fatalf("lagging subscriber got %d events next=%d, want 4 events next=10", len(events), next)
	}
	if events[0].Seq != 6 {
		t.Fatalf("resumed at seq %d, want 6 (oldest retained)", events[0].Seq)
	}
	if got := ring.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}

	// Losses accumulate across subscribers.
	for i := 0; i < 6; i++ {
		ring.Publish(SpanEvent{Name: "more"})
	}
	ring.Since(next) // next=10, first=12 → 2 more dropped
	if got := ring.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}

	// Nil ring stays inert.
	var nilRing *SpanRing
	if got := nilRing.Dropped(); got != 0 {
		t.Fatalf("nil ring Dropped = %d", got)
	}
}
