package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("svc.calls").Add(3)
	r.Counter("svc.calls").Inc()
	r.Gauge("cache.hit_rate").Set(0.75)
	if got := r.Counter("svc.calls").Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if got := r.Gauge("cache.hit_rate").Load(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
	snap := r.Snapshot()
	if snap.Counters["svc.calls"] != 4 || snap.Gauges["cache.hit_rate"] != 0.75 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	// 100 observations spread 1..100 ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 25*time.Millisecond || p50 > 75*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 250*time.Millisecond {
		t.Fatalf("p99 = %v, want ≈100ms", p99)
	}
	if h.Quantile(0.01) > 5*time.Millisecond {
		t.Fatalf("p1 = %v, want small", h.Quantile(0.01))
	}
	// Monotone in q.
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v → %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(time.Hour) // overflow
	if got := h.Quantile(0.5); got != time.Second {
		t.Fatalf("overflow quantile = %v, want the last bound", got)
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 || snap.Buckets[0].LeNs != -1 {
		t.Fatalf("overflow bucket snapshot wrong: %+v", snap.Buckets)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every q reads 0, including out-of-range q.
	h := NewHistogram(DefaultLatencyBuckets())
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// q <= 0 clamps to the low edge: at or below the smallest populated
	// bucket's bound, never negative.
	h.Observe(3 * time.Millisecond) // bucket (2.5ms, 5ms]
	for _, q := range []float64{-0.5, 0} {
		got := h.Quantile(q)
		if got < 0 || got > 5*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want within the covering bucket", q, got)
		}
	}

	// q >= 1 clamps to 1: the upper bound of the highest populated
	// bucket, and identical for any q above 1.
	if h.Quantile(1) != 5*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want 5ms", h.Quantile(1))
	}
	if h.Quantile(1) != h.Quantile(7.5) {
		t.Fatalf("q>1 must clamp: %v vs %v", h.Quantile(1), h.Quantile(7.5))
	}

	// All observations in the overflow bucket: every quantile reports the
	// overflow's lower bound (the last configured bound) — there is no
	// upper bound to interpolate toward.
	over := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	for i := 0; i < 50; i++ {
		over.Observe(time.Minute)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := over.Quantile(q); got != 10*time.Millisecond {
			t.Fatalf("overflow-only Quantile(%v) = %v, want 10ms", q, got)
		}
	}

	// A histogram built with no bounds puts everything in overflow and
	// reports 0 (lower bound of an unbounded bucket) without panicking.
	bare := NewHistogram(nil)
	bare.Observe(time.Second)
	if got := bare.Quantile(0.5); got != 0 {
		t.Fatalf("boundless Quantile = %v, want 0", got)
	}

	// Exact bucket-boundary ranks interpolate to the bucket's upper
	// bound, and stay monotone across the boundary.
	hb := NewHistogram([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	hb.Observe(500 * time.Microsecond)  // bucket [0, 1ms]
	hb.Observe(1500 * time.Microsecond) // bucket (1ms, 2ms]
	if got := hb.Quantile(0.5); got != time.Millisecond {
		t.Fatalf("boundary Quantile(0.5) = %v, want 1ms", got)
	}
	if got := hb.Quantile(1); got != 2*time.Millisecond {
		t.Fatalf("boundary Quantile(1) = %v, want 2ms", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.service_calls").Add(2)
	r.Histogram("latency.suggest.refresh").Observe(3 * time.Millisecond)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"engine.service_calls":2`, `"p50_ns"`, `"p95_ns"`, `"p99_ns"`, `"count":1`} {
		if !strings.Contains(s, want) {
			t.Fatalf("snapshot JSON missing %s:\n%s", want, s)
		}
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(time.Second)
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("x").Inc()
		r.Histogram("z").Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil registry allocates %.1f per op, want 0", allocs)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(5)
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(time.Millisecond)
	r.Reset()
	snap := r.Snapshot()
	if snap.Counters["a"] != 0 || snap.Gauges["b"] != 0 || snap.Histograms["c"].Count != 0 {
		t.Fatalf("reset did not zero: %+v", snap)
	}
}

func TestDecisionLog(t *testing.T) {
	l := NewDecisionLog()
	l.Record(Decision{Stage: "suggest.columns", Candidate: "Sheet1→Zipcode Resolver", Action: ActionSuggested, Rank: 0, Cost: 0.4})
	l.Record(Decision{Stage: "suggest.columns", Candidate: "Sheet1→Geocoder", Action: ActionPruned, Reason: "cost 1.3 above threshold", Rank: -1})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	ds := l.For("zipcode")
	if len(ds) != 1 || ds[0].Action != ActionSuggested {
		t.Fatalf("For(zipcode) = %+v", ds)
	}
	if ds[0].Seq != 1 {
		t.Fatalf("seq = %d, want 1", ds[0].Seq)
	}
	line := ds[0].String()
	if !strings.Contains(line, "suggested") || !strings.Contains(line, "rank 0") {
		t.Fatalf("render = %q", line)
	}
	var nilLog *DecisionLog
	nilLog.Record(Decision{})
	if nilLog.Len() != 0 || nilLog.Decisions() != nil || nilLog.For("x") != nil {
		t.Fatal("nil decision log must be inert")
	}
}

func TestDecisionLogBounded(t *testing.T) {
	l := NewDecisionLog()
	for i := 0; i < maxDecisions+100; i++ {
		l.Record(Decision{Stage: "s", Candidate: "c", Action: ActionDropped})
	}
	if l.Len() > maxDecisions {
		t.Fatalf("log grew to %d, cap %d", l.Len(), maxDecisions)
	}
	ds := l.Decisions()
	if ds[len(ds)-1].Seq != maxDecisions+100 {
		t.Fatalf("latest decision lost: last seq %d", ds[len(ds)-1].Seq)
	}
}

func TestDecisionLogConcurrent(t *testing.T) {
	l := NewDecisionLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(Decision{Stage: "s", Candidate: "c", Action: ActionDropped})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 1600 {
		t.Fatalf("len = %d, want 1600", l.Len())
	}
}
