package obs

import (
	"sync"
	"testing"
	"time"

	"copycat/internal/resilience"
)

func TestWindowHistogramRotation(t *testing.T) {
	clock := resilience.NewVirtualClock()
	bounds := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
	// 1-minute window in 6 slots of 10s.
	w := NewWindowHistogram(bounds, time.Minute, 6, clock.Now)
	if got := w.Window(); got != time.Minute {
		t.Fatalf("Window = %v, want 1m", got)
	}

	w.Observe(5 * time.Millisecond)
	w.Observe(50 * time.Millisecond)
	if got := w.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}

	// 30s later both observations are still inside the window.
	clock.Advance(30 * time.Second)
	w.Observe(5 * time.Millisecond)
	if got := w.Count(); got != 3 {
		t.Fatalf("count after 30s = %d, want 3", got)
	}

	// 45s more: the first two (age 75s) expired, the third (45s) remains.
	clock.Advance(45 * time.Second)
	if got := w.Count(); got != 1 {
		t.Fatalf("count after 75s = %d, want 1", got)
	}

	// A jump far past the window clears everything.
	clock.Advance(10 * time.Minute)
	if got := w.Count(); got != 0 {
		t.Fatalf("count after 10m idle = %d, want 0", got)
	}
	// And the ring still accepts fresh observations afterwards.
	w.Observe(time.Millisecond)
	if got := w.Count(); got != 1 {
		t.Fatalf("count after restart = %d, want 1", got)
	}
}

func TestWindowHistogramAboveThreshold(t *testing.T) {
	clock := resilience.NewVirtualClock()
	w := NewWindowHistogram(DefaultLatencyBuckets(), time.Minute, 6, clock.Now)
	for i := 0; i < 9; i++ {
		w.Observe(time.Millisecond) // fast
	}
	w.Observe(40 * time.Millisecond) // slow
	above, total := w.AboveThreshold(25 * time.Millisecond)
	if above != 1 || total != 10 {
		t.Fatalf("AboveThreshold = (%d, %d), want (1, 10)", above, total)
	}
	// Observations exactly at the threshold bound are within objective.
	w.Observe(25 * time.Millisecond)
	above, total = w.AboveThreshold(25 * time.Millisecond)
	if above != 1 || total != 11 {
		t.Fatalf("AboveThreshold at bound = (%d, %d), want (1, 11)", above, total)
	}
}

func TestWindowHistogramSnapshotQuantiles(t *testing.T) {
	clock := resilience.NewVirtualClock()
	w := NewWindowHistogram(DefaultLatencyBuckets(), time.Minute, 6, clock.Now)
	for i := 0; i < 100; i++ {
		w.Observe(2 * time.Millisecond)
	}
	snap := w.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("snapshot count = %d", snap.Count)
	}
	if p99 := snap.P99(); p99 <= 0 || p99 > 2500*time.Microsecond {
		t.Fatalf("p99 = %v, want in (0, 2.5ms]", p99)
	}
	if snap.SumNs != (200 * time.Millisecond).Nanoseconds() {
		t.Fatalf("sum = %d", snap.SumNs)
	}
	// Slide the whole window past the observations: empty snapshot.
	clock.Advance(2 * time.Minute)
	if snap := w.Snapshot(); snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("expired snapshot = %+v, want empty", snap)
	}
}

func TestWindowHistogramNil(t *testing.T) {
	var w *WindowHistogram
	w.Observe(time.Second) // must not panic
	if w.Count() != 0 || w.Quantile(0.99) != 0 || w.Window() != 0 {
		t.Fatal("nil WindowHistogram should read as zero")
	}
	if above, total := w.AboveThreshold(time.Millisecond); above != 0 || total != 0 {
		t.Fatal("nil AboveThreshold should be zero")
	}
	if snap := w.Snapshot(); snap.Count != 0 {
		t.Fatal("nil Snapshot should be empty")
	}
}

func TestWindowHistogramConcurrent(t *testing.T) {
	clock := resilience.NewVirtualClock()
	w := NewWindowHistogram(DefaultLatencyBuckets(), time.Minute, 6, clock.Now)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(time.Duration(i%20) * time.Millisecond)
				if i%50 == 0 {
					_ = w.Snapshot()
					_, _ = w.AboveThreshold(10 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	if got := w.Count(); got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}
}

func TestSLOTrackerBurnRates(t *testing.T) {
	clock := resilience.NewVirtualClock()
	cfg := DefaultSLOConfig()
	tr := NewSLOTracker(cfg, clock.Now)
	if !tr.Tracks("suggest.refresh") || tr.Tracks("rank.mira") {
		t.Fatal("Tracks should match only the configured stage")
	}

	// 100 fast refreshes: zero burn, no alerts.
	for i := 0; i < 100; i++ {
		tr.Observe(2 * time.Millisecond)
	}
	st := tr.Status()
	if st.FastBurn != 0 || st.FastAlert || st.SlowAlert {
		t.Fatalf("healthy status = %+v", st)
	}
	if st.FastCount != 100 || st.SlowCount != 100 {
		t.Fatalf("counts = %d/%d, want 100/100", st.FastCount, st.SlowCount)
	}

	// Inject slow refreshes: 50 of 150 over threshold → err rate 1/3,
	// burn = (1/3)/0.01 ≈ 33 ≥ 14.4 → fast alert (and slow ≥ 6).
	for i := 0; i < 50; i++ {
		tr.Observe(40 * time.Millisecond)
	}
	st = tr.Status()
	if !st.FastAlert {
		t.Fatalf("fast-burn alert should fire: %+v", st)
	}
	if !st.SlowAlert {
		t.Fatalf("slow-burn alert should fire: %+v", st)
	}
	if st.FastBurn < 30 || st.FastBurn > 36 {
		t.Fatalf("fast burn = %.2f, want ≈33.3", st.FastBurn)
	}
	if st.FastP99Ns <= (25 * time.Millisecond).Nanoseconds() {
		t.Fatalf("windowed p99 should exceed threshold: %d", st.FastP99Ns)
	}

	// 6 minutes later the fast window has rolled clear but the 1h slow
	// window still remembers: fast alert clears, slow alert holds.
	clock.Advance(6 * time.Minute)
	st = tr.Status()
	if st.FastAlert {
		t.Fatalf("fast alert should clear after the fast window rolls: %+v", st)
	}
	if st.FastCount != 0 {
		t.Fatalf("fast window should be empty, got %d", st.FastCount)
	}
	if !st.SlowAlert {
		t.Fatalf("slow alert should persist inside the slow window: %+v", st)
	}

	// And 2 hours later everything is forgotten.
	clock.Advance(2 * time.Hour)
	st = tr.Status()
	if st.FastAlert || st.SlowAlert || st.SlowCount != 0 {
		t.Fatalf("status should be clean after the slow window rolls: %+v", st)
	}
}

func TestSLOTrackerNilAndDefaults(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(time.Second)
	if tr.Tracks("suggest.refresh") {
		t.Fatal("nil tracker tracks nothing")
	}
	if st := tr.Status(); st.FastAlert || st.SlowAlert || st.FastCount != 0 {
		t.Fatalf("nil status = %+v", st)
	}
	// Zero config takes every default.
	tr = NewSLOTracker(SLOConfig{}, nil)
	cfg := tr.Config()
	if cfg.Stage != "suggest.refresh" || cfg.Threshold != 25*time.Millisecond || cfg.Target != 0.99 {
		t.Fatalf("defaulted config = %+v", cfg)
	}
	if s := tr.Status().String(); s == "" {
		t.Fatal("status should render")
	}
}

// fakeClock is a hand-set clock for jump tests that VirtualClock (which
// only advances) cannot express.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// TestWindowHistogramLargeClockJumps drives rotation across virtual
// clock jumps far beyond the window — many whole windows forward, exact
// slot multiples, and a backwards jump (a virtual clock injected after
// construction re-anchoring to epoch). The ring must clear stale slots,
// stay consistent, and keep accepting observations on the new timeline.
func TestWindowHistogramLargeClockJumps(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_000_000, 0)}
	bounds := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
	w := NewWindowHistogram(bounds, time.Minute, 6, clock.Now)

	// A jump of thousands of windows clears everything in one rotate,
	// without walking the ring step by step.
	w.Observe(5 * time.Millisecond)
	clock.Set(clock.Now().Add(5000 * time.Minute))
	if got := w.Count(); got != 0 {
		t.Fatalf("count after 5000-window jump = %d, want 0", got)
	}
	w.Observe(50 * time.Millisecond)
	if got := w.Count(); got != 1 {
		t.Fatalf("count after landing = %d, want 1", got)
	}

	// An exact multiple of the slot width expires precisely the slots it
	// should: the observation is 6 slots old once exactly one window has
	// passed, so it is gone, and one taken half a window ago remains.
	clock.Set(clock.Now().Add(30 * time.Second))
	w.Observe(5 * time.Millisecond)
	clock.Set(clock.Now().Add(30 * time.Second))
	if got := w.Count(); got != 1 {
		t.Fatalf("count at exactly one window = %d, want 1 (old slot expired)", got)
	}

	// A backwards jump (virtual clock injected after construction) resets
	// and re-anchors instead of stalling until the clock catches up.
	clock.Set(time.Unix(0, 0))
	if got := w.Count(); got != 0 {
		t.Fatalf("count after backwards jump = %d, want 0", got)
	}
	w.Observe(time.Millisecond)
	w.Observe(200 * time.Millisecond)
	if got := w.Count(); got != 2 {
		t.Fatalf("count on the re-anchored timeline = %d, want 2", got)
	}
	// The re-anchored timeline rotates normally from here.
	clock.Set(time.Unix(0, 0).Add(61 * time.Second))
	if got := w.Count(); got != 0 {
		t.Fatalf("count one window after re-anchor = %d, want 0", got)
	}
	if above, total := w.AboveThreshold(10 * time.Millisecond); above != 0 || total != 0 {
		t.Fatalf("AboveThreshold after expiry = (%d, %d), want (0, 0)", above, total)
	}
}
