package obs

import "sync/atomic"

// Suggestion-feedback surfaces the quality tracker distinguishes. Every
// explicit accept/reject a user issues lands on exactly one of them:
// column completions (Figure 2's suggested Zip column), top-k connecting
// queries (Steiner mode), row auto-completions (Figure 1's highlighted
// rows), and per-tuple promote/demote feedback.
const (
	FeedbackColumns = "columns"
	FeedbackQueries = "queries"
	FeedbackRows    = "rows"
	FeedbackTuples  = "tuples"
)

// feedbackKinds fixes the kind→index mapping for the tracker's atomic
// arrays (and the iteration order of every rendered breakdown).
var feedbackKinds = [...]string{FeedbackColumns, FeedbackQueries, FeedbackRows, FeedbackTuples}

func kindIndex(kind string) int {
	for i, k := range feedbackKinds {
		if k == kind {
			return i
		}
	}
	return -1
}

// QualityRankBuckets is the size of the rank-of-accepted histogram:
// ranks 0, 1, 2, and an overflow bucket for rank ≥ 3 (suggestion lists
// are top-3/top-4, so deeper ranks are one tail bucket).
const QualityRankBuckets = 4

// QualityEvent is one observation on the suggestion-quality stream: an
// accept (with the rank the accepted suggestion held and how many
// suggestion refreshes elapsed since the previous accept), a reject, or
// an undo of a previously accepted suggestion.
type QualityEvent struct {
	Kind     string // FeedbackColumns | FeedbackQueries | FeedbackRows | FeedbackTuples
	Accepted bool   // accept vs reject (ignored when Undo)
	Undo     bool   // the event reverses a prior accept
	Rank     int    // rank of the accepted suggestion; -1 when not ranked
	Rounds   int    // suggestion refreshes since the previous accept; 0 when unknown
}

// QualityTracker accumulates live suggestion-quality telemetry —
// rolling acceptance rate, rank-of-accepted histogram, feedback
// rounds-to-accept — from the workspace's accept/reject/undo paths.
// All fields are atomic: the single-driver workspace writes, concurrent
// scrapers snapshot. A nil *QualityTracker is inert.
type QualityTracker struct {
	accepts   [len(feedbackKinds)]atomic.Int64
	rejects   [len(feedbackKinds)]atomic.Int64
	undone    atomic.Int64
	ranks     [QualityRankBuckets]atomic.Int64
	rankSum   atomic.Int64
	rankN     atomic.Int64
	roundsSum atomic.Int64
	roundsN   atomic.Int64
}

// NewQualityTracker creates an empty tracker.
func NewQualityTracker() *QualityTracker { return &QualityTracker{} }

// Observe records one event. Events with an unknown Kind are dropped.
func (t *QualityTracker) Observe(ev QualityEvent) {
	if t == nil {
		return
	}
	i := kindIndex(ev.Kind)
	if i < 0 {
		return
	}
	if ev.Undo {
		t.undone.Add(1)
		return
	}
	if !ev.Accepted {
		t.rejects[i].Add(1)
		return
	}
	t.accepts[i].Add(1)
	if ev.Rank >= 0 {
		b := ev.Rank
		if b >= QualityRankBuckets {
			b = QualityRankBuckets - 1
		}
		t.ranks[b].Add(1)
		t.rankSum.Add(int64(ev.Rank))
		t.rankN.Add(1)
	}
	if ev.Rounds > 0 {
		t.roundsSum.Add(int64(ev.Rounds))
		t.roundsN.Add(1)
	}
}

// Accept records an accepted suggestion at the given rank after the
// given number of suggestion refreshes since the previous accept.
func (t *QualityTracker) Accept(kind string, rank, rounds int) {
	t.Observe(QualityEvent{Kind: kind, Accepted: true, Rank: rank, Rounds: rounds})
}

// Reject records a rejected suggestion.
func (t *QualityTracker) Reject(kind string) {
	t.Observe(QualityEvent{Kind: kind, Rank: -1})
}

// UndoAccept records that a previously accepted suggestion was undone.
func (t *QualityTracker) UndoAccept(kind string) {
	t.Observe(QualityEvent{Kind: kind, Undo: true, Rank: -1})
}

// QualityStats is a point-in-time, JSON-serializable copy of a tracker
// — the /quality endpoint's payload and the persisted form that carries
// a session's quality counters across evict/reload.
type QualityStats struct {
	Accepts          map[string]int64 `json:"accepts,omitempty"`
	Rejects          map[string]int64 `json:"rejects,omitempty"`
	TotalAccepts     int64            `json:"total_accepts"`
	TotalRejects     int64            `json:"total_rejects"`
	AcceptanceRate   float64          `json:"acceptance_rate"`
	AcceptedRank     []int64          `json:"accepted_rank_histogram"` // index = rank; last bucket is rank ≥ 3
	MeanAcceptedRank float64          `json:"mean_accepted_rank"`
	RankSum          int64            `json:"rank_sum,omitempty"`
	RankedAccepts    int64            `json:"ranked_accepts"`
	MeanRounds       float64          `json:"mean_rounds_to_accept"`
	RoundsSum        int64            `json:"rounds_sum,omitempty"`
	RoundsObserved   int64            `json:"rounds_observed"`
	AcceptsUndone    int64            `json:"accepts_undone"`
}

// Snapshot copies the tracker.
func (t *QualityTracker) Snapshot() QualityStats {
	st := QualityStats{
		Accepts:      map[string]int64{},
		Rejects:      map[string]int64{},
		AcceptedRank: make([]int64, QualityRankBuckets),
	}
	if t == nil {
		return st
	}
	for i, k := range feedbackKinds {
		a, r := t.accepts[i].Load(), t.rejects[i].Load()
		st.Accepts[k] = a
		st.Rejects[k] = r
		st.TotalAccepts += a
		st.TotalRejects += r
	}
	if total := st.TotalAccepts + st.TotalRejects; total > 0 {
		st.AcceptanceRate = float64(st.TotalAccepts) / float64(total)
	}
	for i := range t.ranks {
		st.AcceptedRank[i] = t.ranks[i].Load()
	}
	st.RankSum = t.rankSum.Load()
	st.RankedAccepts = t.rankN.Load()
	if st.RankedAccepts > 0 {
		st.MeanAcceptedRank = float64(st.RankSum) / float64(st.RankedAccepts)
	}
	st.RoundsSum = t.roundsSum.Load()
	st.RoundsObserved = t.roundsN.Load()
	if st.RoundsObserved > 0 {
		st.MeanRounds = float64(st.RoundsSum) / float64(st.RoundsObserved)
	}
	st.AcceptsUndone = t.undone.Load()
	return st
}

// Restore sets the tracker to a previously snapshotted state — how a
// reloaded session's quality counters stay continuous across an
// evict/reload cycle (like the plan-cache counters in persist).
func (t *QualityTracker) Restore(st QualityStats) {
	if t == nil {
		return
	}
	for i, k := range feedbackKinds {
		t.accepts[i].Store(st.Accepts[k])
		t.rejects[i].Store(st.Rejects[k])
	}
	for i := range t.ranks {
		var n int64
		if i < len(st.AcceptedRank) {
			n = st.AcceptedRank[i]
		}
		t.ranks[i].Store(n)
	}
	t.rankSum.Store(st.RankSum)
	t.rankN.Store(st.RankedAccepts)
	t.roundsSum.Store(st.RoundsSum)
	t.roundsN.Store(st.RoundsObserved)
	t.undone.Store(st.AcceptsUndone)
}

// rankBucketNames are the metric suffixes of the rank histogram's
// buckets. Plain per-bucket counters (not an exposition histogram) keep
// the /metrics families lint-clean through the ordinary counter fold.
var rankBucketNames = [QualityRankBuckets]string{
	"quality.accepted_rank_0",
	"quality.accepted_rank_1",
	"quality.accepted_rank_2",
	"quality.accepted_rank_3plus",
}

// Fold adds the tracker's state to a metrics snapshot as "quality.*"
// counters and gauges, so /metrics, :metrics, and scpbench -json all
// carry the quality families with zero extra exposition plumbing.
func (t *QualityTracker) Fold(snap Snapshot) {
	st := t.Snapshot()
	snap.Counters["quality.accepts"] = st.TotalAccepts
	snap.Counters["quality.rejects"] = st.TotalRejects
	snap.Counters["quality.accepts_undone"] = st.AcceptsUndone
	for _, k := range feedbackKinds {
		snap.Counters["quality."+k+"_accepted"] = st.Accepts[k]
		snap.Counters["quality."+k+"_rejected"] = st.Rejects[k]
	}
	for i, name := range rankBucketNames {
		snap.Counters[name] = st.AcceptedRank[i]
	}
	snap.Gauges["quality.acceptance_rate"] = st.AcceptanceRate
	snap.Gauges["quality.mean_accepted_rank"] = st.MeanAcceptedRank
	snap.Gauges["quality.mean_rounds_to_accept"] = st.MeanRounds
}
