// Package transform implements the paper's "complex functions /
// transforms" extension (§5): operations that are hard to demonstrate by
// copying — arithmetic, string surgery, formatting — are instead
// *searched for*: the user types the desired output for a few rows, and
// the system searches a library of candidate functions over the existing
// columns for one consistent with those examples (following the
// transformation-discovery idea of [19]), then auto-completes the rest of
// the column.
package transform

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"copycat/internal/table"
)

// Transform is one candidate function from argument values to an output.
type Transform struct {
	// Name describes the function, e.g. `concat(", ")` or `mul`.
	Name string
	// Arity is the number of column arguments.
	Arity int
	// Apply computes the output for one row's argument values. A nil
	// return (with no error) means "no output for this input".
	Apply func(args []table.Value) (table.Value, error)
}

// Library returns the built-in transform catalog: string composition and
// case functions, token surgery, and arithmetic.
func Library() []Transform {
	var lib []Transform
	// String composition with common separators.
	for _, sep := range []string{"", " ", ", ", "-", "/"} {
		sep := sep
		lib = append(lib, Transform{
			Name:  fmt.Sprintf("concat(%q)", sep),
			Arity: 2,
			Apply: func(args []table.Value) (table.Value, error) {
				return table.S(args[0].Text() + sep + args[1].Text()), nil
			},
		})
	}
	lib = append(lib,
		Transform{Name: "upper", Arity: 1, Apply: func(a []table.Value) (table.Value, error) {
			return table.S(strings.ToUpper(a[0].Text())), nil
		}},
		Transform{Name: "lower", Arity: 1, Apply: func(a []table.Value) (table.Value, error) {
			return table.S(strings.ToLower(a[0].Text())), nil
		}},
		Transform{Name: "title", Arity: 1, Apply: func(a []table.Value) (table.Value, error) {
			return table.S(titleCase(a[0].Text())), nil
		}},
		Transform{Name: "trim", Arity: 1, Apply: func(a []table.Value) (table.Value, error) {
			return table.S(strings.TrimSpace(a[0].Text())), nil
		}},
	)
	// Token extraction: first/last word, k-th word.
	lib = append(lib,
		Transform{Name: "firstWord", Arity: 1, Apply: wordAt(0)},
		Transform{Name: "secondWord", Arity: 1, Apply: wordAt(1)},
		Transform{Name: "lastWord", Arity: 1, Apply: func(a []table.Value) (table.Value, error) {
			fs := strings.Fields(a[0].Text())
			if len(fs) == 0 {
				return table.Null(), nil
			}
			return table.S(fs[len(fs)-1]), nil
		}},
		Transform{Name: "initials", Arity: 1, Apply: func(a []table.Value) (table.Value, error) {
			var b strings.Builder
			for _, w := range strings.Fields(a[0].Text()) {
				r := []rune(w)
				if len(r) > 0 {
					b.WriteRune(r[0])
				}
			}
			return table.S(strings.ToUpper(b.String())), nil
		}},
	)
	// Arithmetic over numeric-parsable values.
	bin := func(name string, f func(x, y float64) (float64, bool)) Transform {
		return Transform{Name: name, Arity: 2, Apply: func(a []table.Value) (table.Value, error) {
			x, okX := num(a[0])
			y, okY := num(a[1])
			if !okX || !okY {
				return table.Null(), nil
			}
			out, ok := f(x, y)
			if !ok {
				return table.Null(), nil
			}
			return table.N(out), nil
		}}
	}
	lib = append(lib,
		bin("add", func(x, y float64) (float64, bool) { return x + y, true }),
		bin("sub", func(x, y float64) (float64, bool) { return x - y, true }),
		bin("mul", func(x, y float64) (float64, bool) { return x * y, true }),
		bin("div", func(x, y float64) (float64, bool) {
			if y == 0 {
				return 0, false
			}
			return x / y, true
		}),
	)
	// Unary numeric scaling by common constants.
	for _, k := range []float64{2, 10, 100, 0.5} {
		k := k
		lib = append(lib, Transform{
			Name: fmt.Sprintf("scale(%g)", k), Arity: 1,
			Apply: func(a []table.Value) (table.Value, error) {
				x, ok := num(a[0])
				if !ok {
					return table.Null(), nil
				}
				return table.N(x * k), nil
			},
		})
	}
	return lib
}

func wordAt(i int) func([]table.Value) (table.Value, error) {
	return func(a []table.Value) (table.Value, error) {
		fs := strings.Fields(a[0].Text())
		if i >= len(fs) {
			return table.Null(), nil
		}
		return table.S(fs[i]), nil
	}
}

func num(v table.Value) (float64, bool) {
	switch v.Kind() {
	case table.KindNumber:
		return v.Num(), true
	case table.KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64)
		return f, err == nil
	}
	return 0, false
}

func titleCase(s string) string {
	out := []rune(strings.ToLower(s))
	start := true
	for i, r := range out {
		if start && r >= 'a' && r <= 'z' {
			out[i] = r - 'a' + 'A'
		}
		start = r == ' ' || r == '-'
	}
	return string(out)
}

// Candidate is one discovered explanation of the example outputs.
type Candidate struct {
	Transform Transform
	// ArgCols are the input column indexes feeding the transform.
	ArgCols []int
	// Consistent counts the examples the candidate reproduced.
	Consistent int
	// Desc is a human-readable description, e.g. `concat(", ")(City, State)`.
	Desc string
}

// Apply computes the candidate's output for one row.
func (c *Candidate) Apply(row table.Tuple) (table.Value, error) {
	args := make([]table.Value, len(c.ArgCols))
	for i, idx := range c.ArgCols {
		if idx >= len(row) {
			return table.Null(), fmt.Errorf("transform: column %d out of range", idx)
		}
		args[i] = row[idx]
	}
	return c.Transform.Apply(args)
}

// Discover searches the library for transforms over the existing columns
// that reproduce the example outputs. rows holds the table's rows;
// examples maps row index → desired output text (the cells the user
// typed). Column names label the candidates. Results are ranked by
// consistency, then simplicity (fewer arguments), and only candidates
// explaining every example are returned.
func Discover(schema table.Schema, rows []table.Tuple, examples map[int]string) []Candidate {
	if len(examples) == 0 {
		return nil
	}
	lib := Library()
	nCols := len(schema)
	var out []Candidate
	tryCombo := func(t Transform, cols []int) {
		cand := Candidate{Transform: t, ArgCols: append([]int(nil), cols...)}
		for ri, want := range examples {
			if ri < 0 || ri >= len(rows) {
				return
			}
			got, err := cand.Apply(rows[ri])
			if err != nil || got.IsNull() || !textEqual(got.Text(), want) {
				return
			}
			cand.Consistent++
		}
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = schema[c].Name
		}
		cand.Desc = fmt.Sprintf("%s(%s)", t.Name, strings.Join(names, ", "))
		out = append(out, cand)
	}
	for _, t := range lib {
		switch t.Arity {
		case 1:
			for c := 0; c < nCols; c++ {
				tryCombo(t, []int{c})
			}
		case 2:
			for a := 0; a < nCols; a++ {
				for b := 0; b < nCols; b++ {
					if a != b {
						tryCombo(t, []int{a, b})
					}
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Consistent != out[j].Consistent {
			return out[i].Consistent > out[j].Consistent
		}
		if len(out[i].ArgCols) != len(out[j].ArgCols) {
			return len(out[i].ArgCols) < len(out[j].ArgCols)
		}
		return out[i].Desc < out[j].Desc
	})
	return out
}

// textEqual compares outputs leniently: exact text, or equal as numbers.
func textEqual(got, want string) bool {
	if strings.TrimSpace(got) == strings.TrimSpace(want) {
		return true
	}
	g, err1 := strconv.ParseFloat(strings.TrimSpace(got), 64)
	w, err2 := strconv.ParseFloat(strings.TrimSpace(want), 64)
	return err1 == nil && err2 == nil && g == w
}
