package transform

import (
	"strings"
	"testing"
	"testing/quick"

	"copycat/internal/table"
)

func sampleRows() (table.Schema, []table.Tuple) {
	schema := table.NewSchema("Name", "City", "State", "Capacity")
	rows := []table.Tuple{
		{table.S("North High School"), table.S("Coconut Creek"), table.S("FL"), table.N(100)},
		{table.S("Creek Elementary"), table.S("Pompano Beach"), table.S("FL"), table.N(250)},
		{table.S("Beach Middle School"), table.S("Palm Point"), table.S("FL"), table.N(75)},
		{table.S("Sunset Armory"), table.S("Ibis Park"), table.S("FL"), table.N(300)},
	}
	return schema, rows
}

func TestLibraryShape(t *testing.T) {
	lib := Library()
	if len(lib) < 15 {
		t.Fatalf("library too small: %d", len(lib))
	}
	for _, tr := range lib {
		if tr.Name == "" || tr.Arity < 1 || tr.Arity > 2 || tr.Apply == nil {
			t.Errorf("malformed transform %+v", tr)
		}
	}
}

func TestDiscoverConcat(t *testing.T) {
	schema, rows := sampleRows()
	// User wants "City, State".
	cands := Discover(schema, rows, map[int]string{
		0: "Coconut Creek, FL",
		1: "Pompano Beach, FL",
	})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := cands[0]
	if !strings.Contains(best.Desc, "concat") || !strings.Contains(best.Desc, "City") {
		t.Errorf("best = %s", best.Desc)
	}
	// The discovered transform completes the remaining rows correctly.
	v, err := best.Apply(rows[2])
	if err != nil || v.Text() != "Palm Point, FL" {
		t.Errorf("apply = %q err %v", v.Text(), err)
	}
}

func TestDiscoverArithmetic(t *testing.T) {
	schema, rows := sampleRows()
	// User wants capacity doubled (surge planning).
	cands := Discover(schema, rows, map[int]string{0: "200", 1: "500"})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if !strings.Contains(cands[0].Desc, "Capacity") {
		t.Errorf("best = %s", cands[0].Desc)
	}
	v, _ := cands[0].Apply(rows[2])
	if v.Num() != 150 {
		t.Errorf("apply(75×2) = %v", v.Text())
	}
}

func TestDiscoverWordExtraction(t *testing.T) {
	schema, rows := sampleRows()
	cands := Discover(schema, rows, map[int]string{0: "North", 1: "Creek"})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if !strings.Contains(cands[0].Desc, "firstWord(Name)") {
		t.Errorf("best = %s (want firstWord)", cands[0].Desc)
	}
}

func TestDiscoverInitials(t *testing.T) {
	schema, rows := sampleRows()
	cands := Discover(schema, rows, map[int]string{0: "NHS", 1: "CE"})
	found := false
	for _, c := range cands {
		if strings.Contains(c.Desc, "initials(Name)") {
			found = true
		}
	}
	if !found {
		t.Errorf("initials not discovered: %v", descs(cands))
	}
}

func TestDiscoverCase(t *testing.T) {
	schema, rows := sampleRows()
	cands := Discover(schema, rows, map[int]string{0: "NORTH HIGH SCHOOL"})
	if len(cands) == 0 || !strings.Contains(cands[0].Desc, "upper(Name)") {
		t.Errorf("upper not first: %v", descs(cands))
	}
	cands = Discover(schema, rows, map[int]string{0: "north high school"})
	if len(cands) == 0 || !strings.Contains(cands[0].Desc, "lower(Name)") {
		t.Errorf("lower not first: %v", descs(cands))
	}
}

func descs(cands []Candidate) []string {
	var out []string
	for _, c := range cands {
		out = append(out, c.Desc)
	}
	return out
}

func TestDiscoverRejectsInconsistent(t *testing.T) {
	schema, rows := sampleRows()
	// No library function maps these inputs to unrelated outputs.
	cands := Discover(schema, rows, map[int]string{0: "xyzzy", 1: "plugh"})
	if len(cands) != 0 {
		t.Errorf("nonsense examples matched: %v", descs(cands))
	}
	// Empty examples → nil.
	if Discover(schema, rows, nil) != nil {
		t.Error("no examples should be nil")
	}
	// Out-of-range example rows are rejected rather than panicking.
	if got := Discover(schema, rows, map[int]string{99: "x"}); len(got) != 0 {
		t.Error("bad row index should match nothing")
	}
}

func TestMoreExamplesDisambiguate(t *testing.T) {
	schema, rows := sampleRows()
	// One example "FL" is ambiguous (State column identity-ish via trim,
	// firstWord(State), …). More examples keep only consistent ones.
	one := Discover(schema, rows, map[int]string{0: "North"})
	two := Discover(schema, rows, map[int]string{0: "North", 3: "Sunset"})
	if len(two) > len(one) {
		t.Errorf("more examples should not widen the candidate set: %d → %d", len(one), len(two))
	}
	for _, c := range two {
		if c.Consistent != 2 {
			t.Errorf("surviving candidate %s explains %d/2 examples", c.Desc, c.Consistent)
		}
	}
}

func TestTitleCase(t *testing.T) {
	cases := map[string]string{
		"NORTH HIGH":    "North High",
		"coconut creek": "Coconut Creek",
		"a-b c":         "A-B C",
		"":              "",
	}
	for in, want := range cases {
		if got := titleCase(in); got != want {
			t.Errorf("titleCase(%q) = %q want %q", in, got, want)
		}
	}
}

func TestNumericLenience(t *testing.T) {
	if !textEqual("200", "200.0") || !textEqual(" 5 ", "5") {
		t.Error("numeric equality too strict")
	}
	if textEqual("abc", "abd") {
		t.Error("different strings equal")
	}
}

func TestDivByZeroAndNonNumeric(t *testing.T) {
	lib := Library()
	var div, mul Transform
	for _, tr := range lib {
		switch tr.Name {
		case "div":
			div = tr
		case "mul":
			mul = tr
		}
	}
	if v, err := div.Apply([]table.Value{table.N(1), table.N(0)}); err != nil || !v.IsNull() {
		t.Error("div by zero should be null, not error")
	}
	if v, err := mul.Apply([]table.Value{table.S("abc"), table.N(2)}); err != nil || !v.IsNull() {
		t.Error("non-numeric arithmetic should be null")
	}
}

func TestCandidateApplyOutOfRange(t *testing.T) {
	schema, rows := sampleRows()
	cands := Discover(schema, rows, map[int]string{0: "North"})
	if len(cands) == 0 {
		t.Fatal("need a candidate")
	}
	if _, err := cands[0].Apply(table.Tuple{}); err == nil {
		t.Error("narrow row should error")
	}
}

func TestTransformsTotalProperty(t *testing.T) {
	// Property: no library transform panics or errors on arbitrary
	// string inputs — they degrade to null.
	lib := Library()
	f := func(a, b string) bool {
		args2 := []table.Value{table.S(a), table.S(b)}
		args1 := []table.Value{table.S(a)}
		for _, tr := range lib {
			var err error
			if tr.Arity == 1 {
				_, err = tr.Apply(args1)
			} else {
				_, err = tr.Apply(args2)
			}
			if err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
