package export

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"copycat/internal/docmodel"
	"copycat/internal/htmldoc"
	"copycat/internal/table"
)

func geoRel() *table.Relation {
	r := table.NewRelation("Shelters", table.Schema{
		{Name: "Name", Kind: table.KindString, SemType: "PR-OrgName"},
		{Name: "City", Kind: table.KindString},
		{Name: "Lat", Kind: table.KindNumber, SemType: "PR-Lat"},
		{Name: "Lon", Kind: table.KindNumber, SemType: "PR-Lon"},
	})
	r.MustAppend(table.Tuple{table.S("North High"), table.S("Coconut Creek"), table.N(26.25), table.N(-80.18)})
	r.MustAppend(table.Tuple{table.S(`A "quoted" & <odd> name`), table.S("Pompano"), table.N(26.23), table.N(-80.12)})
	r.MustAppend(table.Tuple{table.S("No Geo"), table.S("Lost"), table.Null(), table.Null()})
	return r
}

func TestXML(t *testing.T) {
	out := XML(geoRel())
	for _, want := range []string{
		`<relation name="Shelters">`,
		"<Name>North High</Name>",
		"<Lat>26.25</Lat>",
		"&quot;quoted&quot; &amp; &lt;odd&gt;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XML missing %q:\n%s", want, out)
		}
	}
	// Round trip through our HTML/XML parser preserves text.
	doc := htmldoc.Parse(out)
	rows := doc.FindAll("row")
	if len(rows) != 3 {
		t.Errorf("parsed rows = %d", len(rows))
	}
	if rows[0].Find("name") == nil {
		t.Error("row elements missing")
	}
}

func TestElementName(t *testing.T) {
	cases := map[string]string{
		"Name":        "Name",
		"Zip Code":    "Zip_Code",
		"lat-lon":     "lat_lon",
		"42nd":        "_42nd",
		"!!!":         "col",
		"_private":    "_private",
		"Mixed 2 Col": "Mixed_2_Col",
	}
	for in, want := range cases {
		if got := elementName(in); got != want {
			t.Errorf("elementName(%q) = %q want %q", in, got, want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	out := CSV(geoRel())
	grid := docmodel.ParseCSV(out)
	if len(grid) != 4 {
		t.Fatalf("rows = %d", len(grid))
	}
	if grid[0][0] != "Name" || grid[1][0] != "North High" {
		t.Errorf("csv content wrong: %v", grid[:2])
	}
	if grid[2][0] != `A "quoted" & <odd> name` {
		t.Errorf("quoting broken: %q", grid[2][0])
	}
}

func TestGeoJSON(t *testing.T) {
	out, err := GeoJSON(geoRel())
	if err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON.
	var parsed struct {
		Type     string `json:"type"`
		Features []struct {
			Geometry struct {
				Type        string    `json:"type"`
				Coordinates []float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]string `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if parsed.Type != "FeatureCollection" || len(parsed.Features) != 2 {
		t.Fatalf("features = %d", len(parsed.Features))
	}
	f := parsed.Features[0]
	if f.Geometry.Coordinates[0] != -80.18 || f.Geometry.Coordinates[1] != 26.25 {
		t.Errorf("coords = %v (GeoJSON is lon,lat)", f.Geometry.Coordinates)
	}
	if f.Properties["Name"] != "North High" || f.Properties["City"] != "Coconut Creek" {
		t.Errorf("properties = %v", f.Properties)
	}
	// The null-geo row is skipped; escaping held up.
	if parsed.Features[1].Properties["Name"] != `A "quoted" & <odd> name` {
		t.Errorf("escaped name = %q", parsed.Features[1].Properties["Name"])
	}
}

func TestGeoJSONErrorsWithoutGeo(t *testing.T) {
	r := table.NewRelation("NoGeo", table.NewSchema("A", "B"))
	if _, err := GeoJSON(r); err == nil {
		t.Error("missing geo columns should error")
	}
	if _, err := KML(r); err == nil {
		t.Error("missing geo columns should error for KML too")
	}
}

func TestGeoColumnsByName(t *testing.T) {
	// Fallback: conventional names without semantic types.
	r := table.NewRelation("R", table.NewSchema("Name", "Latitude", "Longitude"))
	r.MustAppend(table.Tuple{table.S("X"), table.N(1), table.N(2)})
	out, err := GeoJSON(r)
	if err != nil || !strings.Contains(out, `[2,1]`) {
		t.Errorf("name-based geo detection failed: %v %s", err, out)
	}
}

func TestKML(t *testing.T) {
	out, err := KML(geoRel())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<kml xmlns=",
		"<Placemark><name>North High</name>",
		"<coordinates>-80.18,26.25</coordinates>",
		"City: Coconut Creek",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("KML missing %q:\n%s", want, out)
		}
	}
	// Two placemarks (null-geo row skipped).
	if strings.Count(out, "<Placemark>") != 2 {
		t.Errorf("placemark count = %d", strings.Count(out, "<Placemark>"))
	}
}

func TestJSONStringEscapingProperty(t *testing.T) {
	f := func(s string) bool {
		var out string
		if err := json.Unmarshal([]byte(jsonString(s)), &out); err != nil {
			return false
		}
		return out == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumText(t *testing.T) {
	if numText(table.N(26.25)) != "26.25" {
		t.Error("number format wrong")
	}
	if numText(table.S(" 3.5 ")) != "3.5" {
		t.Error("string parse wrong")
	}
	if numText(table.S("junk")) != "0" {
		t.Error("junk should be 0")
	}
}

func TestNameColumnPreferences(t *testing.T) {
	// Semantic type beats conventional names; conventional names beat
	// position; fallback is column 0.
	s := table.Schema{
		{Name: "X", Kind: table.KindString},
		{Name: "Title", Kind: table.KindString},
		{Name: "Who", Kind: table.KindString, SemType: "PR-PersonName"},
	}
	if nameColumn(s) != 2 {
		t.Errorf("semtype name column = %d", nameColumn(s))
	}
	s[2].SemType = ""
	if nameColumn(s) != 1 {
		t.Errorf("conventional name column = %d", nameColumn(s))
	}
	s[1].Name = "Z"
	if nameColumn(s) != 0 {
		t.Errorf("fallback name column = %d", nameColumn(s))
	}
}
