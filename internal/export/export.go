// Package export renders workspace contents to external formats (§8:
// "Exporting data to common application formats, including XML and,
// perhaps more interestingly, the Google Maps interface"): XML, CSV,
// GeoJSON, and KML. The map formats stand in for the live Google Maps
// visualization — any GIS tool renders them.
package export

import (
	"fmt"
	"strconv"
	"strings"

	"copycat/internal/docmodel"
	"copycat/internal/htmldoc"
	"copycat/internal/table"
)

// XML renders the relation as <relation><row><Col>…</Col></row>…</relation>,
// with column names sanitized into valid element names.
func XML(rel *table.Relation) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&b, "<relation name=%q>\n", rel.Name)
	names := make([]string, len(rel.Schema))
	for i, c := range rel.Schema {
		names[i] = elementName(c.Name)
	}
	for _, row := range rel.Rows {
		b.WriteString("  <row>\n")
		for i, v := range row {
			if i >= len(names) {
				break
			}
			fmt.Fprintf(&b, "    <%s>%s</%s>\n", names[i], htmldoc.Escape(v.Text()), names[i])
		}
		b.WriteString("  </row>\n")
	}
	b.WriteString("</relation>\n")
	return b.String()
}

// elementName sanitizes a column name into a valid XML element name.
func elementName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' ||
			r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "col"
	}
	s := b.String()
	if s[0] >= '0' && s[0] <= '9' {
		return "_" + s
	}
	return s
}

// CSV renders the relation with a header row.
func CSV(rel *table.Relation) string {
	rows := [][]string{rel.Schema.Names()}
	for _, r := range rel.Rows {
		rows = append(rows, r.Texts())
	}
	return docmodel.FormatCSV(rows)
}

// geoColumns locates latitude/longitude columns by semantic type first,
// then by conventional names.
func geoColumns(s table.Schema) (lat, lon int) {
	lat, lon = s.IndexBySemType("PR-Lat"), s.IndexBySemType("PR-Lon")
	if lat < 0 {
		for _, n := range []string{"Lat", "Latitude", "lat"} {
			if i := s.Index(n); i >= 0 {
				lat = i
				break
			}
		}
	}
	if lon < 0 {
		for _, n := range []string{"Lon", "Lng", "Longitude", "lon"} {
			if i := s.Index(n); i >= 0 {
				lon = i
				break
			}
		}
	}
	return lat, lon
}

// nameColumn picks the best column to label map features with.
func nameColumn(s table.Schema) int {
	for _, st := range []string{"PR-OrgName", "PR-PersonName"} {
		if i := s.IndexBySemType(st); i >= 0 {
			return i
		}
	}
	for _, n := range []string{"Name", "Shelter", "Title"} {
		if i := s.Index(n); i >= 0 {
			return i
		}
	}
	return 0
}

// GeoJSON renders rows with lat/lon columns as a FeatureCollection of
// Points; all other columns become feature properties. Rows without
// coordinates are skipped. It errors when no geo columns exist.
func GeoJSON(rel *table.Relation) (string, error) {
	lat, lon := geoColumns(rel.Schema)
	if lat < 0 || lon < 0 {
		return "", fmt.Errorf("export: relation %s has no Lat/Lon columns", rel.Name)
	}
	var b strings.Builder
	b.WriteString(`{"type":"FeatureCollection","features":[`)
	first := true
	for _, row := range rel.Rows {
		if lat >= len(row) || lon >= len(row) || row[lat].IsNull() || row[lon].IsNull() {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(`{"type":"Feature","geometry":{"type":"Point","coordinates":[`)
		b.WriteString(numText(row[lon]))
		b.WriteByte(',')
		b.WriteString(numText(row[lat]))
		b.WriteString(`]},"properties":{`)
		pFirst := true
		for i, c := range rel.Schema {
			if i == lat || i == lon || i >= len(row) {
				continue
			}
			if !pFirst {
				b.WriteByte(',')
			}
			pFirst = false
			fmt.Fprintf(&b, "%s:%s", jsonString(c.Name), jsonString(row[i].Text()))
		}
		b.WriteString(`}}`)
	}
	b.WriteString(`]}`)
	return b.String(), nil
}

func numText(v table.Value) string {
	if v.Kind() == table.KindNumber {
		return strconv.FormatFloat(v.Num(), 'f', -1, 64)
	}
	if f, err := strconv.ParseFloat(strings.TrimSpace(v.Text()), 64); err == nil {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return "0"
}

func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// KML renders rows with lat/lon as Placemarks — the format Google Maps
// and Google Earth ingest directly (the paper's mashup-generator export).
func KML(rel *table.Relation) (string, error) {
	lat, lon := geoColumns(rel.Schema)
	if lat < 0 || lon < 0 {
		return "", fmt.Errorf("export: relation %s has no Lat/Lon columns", rel.Name)
	}
	nameIdx := nameColumn(rel.Schema)
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<kml xmlns="http://www.opengis.net/kml/2.2"><Document>` + "\n")
	fmt.Fprintf(&b, "<name>%s</name>\n", htmldoc.Escape(rel.Name))
	for _, row := range rel.Rows {
		if lat >= len(row) || lon >= len(row) || row[lat].IsNull() || row[lon].IsNull() {
			continue
		}
		b.WriteString("<Placemark>")
		fmt.Fprintf(&b, "<name>%s</name>", htmldoc.Escape(row[nameIdx].Text()))
		var desc []string
		for i, c := range rel.Schema {
			if i == lat || i == lon || i == nameIdx || i >= len(row) {
				continue
			}
			desc = append(desc, c.Name+": "+row[i].Text())
		}
		fmt.Fprintf(&b, "<description>%s</description>", htmldoc.Escape(strings.Join(desc, "; ")))
		fmt.Fprintf(&b, "<Point><coordinates>%s,%s</coordinates></Point>", numText(row[lon]), numText(row[lat]))
		b.WriteString("</Placemark>\n")
	}
	b.WriteString("</Document></kml>\n")
	return b.String(), nil
}
