// Package provenance implements semiring how-provenance in the style of the
// ORCHESTRA system the paper builds on: every tuple produced by the query
// engine carries an expression over base-tuple identifiers, built from ⊕
// (alternative derivations, e.g. union or duplicate merging) and ⊗ (joint
// derivations, e.g. join or dependent join).
//
// CopyCat uses these expressions in two ways: (1) to render the Tuple
// Explanation pane, and (2) to route user feedback on a suggested tuple
// back to the query — and hence the source-graph edges — that produced it.
package provenance

import (
	"fmt"
	"sort"
	"strings"

	"copycat/internal/table"
)

// Expr is a provenance expression. Implementations are Leaf, Plus, Times,
// and the special None (no provenance, e.g. hand-typed data).
type Expr interface {
	// String renders the expression in +/* notation.
	String() string
	// Leaves appends all base tuple IDs in the expression to dst.
	Leaves(dst []table.TupleID) []table.TupleID
	// kind discriminates without type switches all over the engine.
	kind() exprKind
}

type exprKind uint8

const (
	kindNone exprKind = iota
	kindLeaf
	kindPlus
	kindTimes
)

// None is the provenance of data that was typed or pasted directly by the
// user and has no recorded derivation.
type None struct{}

func (None) String() string                             { return "∅" }
func (None) Leaves(dst []table.TupleID) []table.TupleID { return dst }
func (None) kind() exprKind                             { return kindNone }

// Leaf is the provenance of a base tuple scanned from a source.
type Leaf struct {
	ID table.TupleID
	// Source names the catalog relation or service the tuple came from.
	Source string
}

func (l Leaf) String() string                             { return string(l.ID) }
func (l Leaf) Leaves(dst []table.TupleID) []table.TupleID { return append(dst, l.ID) }
func (l Leaf) kind() exprKind                             { return kindLeaf }

// Plus is an alternative-derivations node (union / duplicate merge).
type Plus struct{ Args []Expr }

func (p Plus) String() string {
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

func (p Plus) Leaves(dst []table.TupleID) []table.TupleID {
	for _, a := range p.Args {
		dst = a.Leaves(dst)
	}
	return dst
}
func (p Plus) kind() exprKind { return kindPlus }

// Times is a joint-derivation node (join, dependent join, record link).
type Times struct{ Args []Expr }

func (t Times) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, " * ") + ")"
}

func (t Times) Leaves(dst []table.TupleID) []table.TupleID {
	for _, a := range t.Args {
		dst = a.Leaves(dst)
	}
	return dst
}
func (t Times) kind() exprKind { return kindTimes }

// Join combines two provenance expressions multiplicatively, flattening
// nested Times and dropping None operands.
func Join(a, b Expr) Expr {
	if a == nil || a.kind() == kindNone {
		return normalize(b)
	}
	if b == nil || b.kind() == kindNone {
		return normalize(a)
	}
	var args []Expr
	if ta, ok := a.(Times); ok {
		args = append(args, ta.Args...)
	} else {
		args = append(args, a)
	}
	if tb, ok := b.(Times); ok {
		args = append(args, tb.Args...)
	} else {
		args = append(args, b)
	}
	return Times{Args: args}
}

// Merge combines two provenance expressions additively (alternative
// derivations), flattening nested Plus and dropping None operands.
func Merge(a, b Expr) Expr {
	if a == nil || a.kind() == kindNone {
		return normalize(b)
	}
	if b == nil || b.kind() == kindNone {
		return normalize(a)
	}
	var args []Expr
	if pa, ok := a.(Plus); ok {
		args = append(args, pa.Args...)
	} else {
		args = append(args, a)
	}
	if pb, ok := b.(Plus); ok {
		args = append(args, pb.Args...)
	} else {
		args = append(args, b)
	}
	return Plus{Args: args}
}

func normalize(e Expr) Expr {
	if e == nil {
		return None{}
	}
	return e
}

// Sources returns the sorted set of distinct source names mentioned by the
// expression's leaves. Leaf IDs are "<source>:<ordinal>".
func Sources(e Expr) []string {
	if e == nil {
		return nil
	}
	set := map[string]bool{}
	for _, id := range e.Leaves(nil) {
		s := string(id)
		if i := strings.LastIndexByte(s, ':'); i >= 0 {
			s = s[:i]
		}
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Alternatives splits a top-level Plus into its alternative derivations;
// a non-Plus expression is a single alternative. The Tuple Explanation pane
// renders each alternative as one derivation graph.
func Alternatives(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if p, ok := e.(Plus); ok {
		return p.Args
	}
	if e.kind() == kindNone {
		return nil
	}
	return []Expr{e}
}

// Explain renders a human-readable explanation tree for the expression,
// matching the paper's Tuple Explanation pane: one line per derivation
// step, indented by depth.
func Explain(e Expr) string {
	var b strings.Builder
	explain(&b, normalize(e), 0)
	return b.String()
}

func explain(b *strings.Builder, e Expr, depth int) {
	pad := strings.Repeat("  ", depth)
	switch x := e.(type) {
	case None:
		fmt.Fprintf(b, "%suser-entered (no provenance)\n", pad)
	case Leaf:
		src := x.Source
		if src == "" {
			s := string(x.ID)
			if i := strings.LastIndexByte(s, ':'); i >= 0 {
				src = s[:i]
			}
		}
		fmt.Fprintf(b, "%stuple %s from source %s\n", pad, x.ID, src)
	case Plus:
		fmt.Fprintf(b, "%sany of %d alternative derivations:\n", pad, len(x.Args))
		for _, a := range x.Args {
			explain(b, a, depth+1)
		}
	case Times:
		fmt.Fprintf(b, "%sjoined from %d inputs:\n", pad, len(x.Args))
		for _, a := range x.Args {
			explain(b, a, depth+1)
		}
	}
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	a, b = normalize(a), normalize(b)
	if a.kind() != b.kind() {
		return false
	}
	switch x := a.(type) {
	case None:
		return true
	case Leaf:
		y := b.(Leaf)
		return x.ID == y.ID && x.Source == y.Source
	case Plus:
		return equalArgs(x.Args, b.(Plus).Args)
	case Times:
		return equalArgs(x.Args, b.(Times).Args)
	}
	return false
}

func equalArgs(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Annotated pairs a tuple with its provenance. The engine's result
// relations are slices of Annotated rows.
type Annotated struct {
	Row  table.Tuple
	Prov Expr
}

// BaseID builds the canonical base-tuple ID for row ordinal i of a source.
func BaseID(source string, i int) table.TupleID {
	return table.TupleID(fmt.Sprintf("%s:%d", source, i))
}
