package provenance

import (
	"strings"
	"testing"
	"testing/quick"

	"copycat/internal/table"
)

func leaf(src string, i int) Leaf {
	return Leaf{ID: BaseID(src, i), Source: src}
}

func TestBaseID(t *testing.T) {
	if BaseID("Shelters", 3) != "Shelters:3" {
		t.Errorf("BaseID wrong: %s", BaseID("Shelters", 3))
	}
}

func TestLeafStringAndLeaves(t *testing.T) {
	l := leaf("Shelters", 0)
	if l.String() != "Shelters:0" {
		t.Errorf("Leaf.String = %q", l.String())
	}
	ids := l.Leaves(nil)
	if len(ids) != 1 || ids[0] != "Shelters:0" {
		t.Errorf("Leaves wrong: %v", ids)
	}
}

func TestJoinFlattensAndDropsNone(t *testing.T) {
	a, b, c := leaf("R", 0), leaf("S", 1), leaf("T", 2)
	j := Join(Join(a, b), c)
	tm, ok := j.(Times)
	if !ok || len(tm.Args) != 3 {
		t.Fatalf("Join should flatten into a 3-arg Times, got %s", j)
	}
	if got := Join(None{}, a); !Equal(got, a) {
		t.Errorf("Join(None,a) = %s want leaf", got)
	}
	if got := Join(a, nil); !Equal(got, a) {
		t.Errorf("Join(a,nil) = %s want leaf", got)
	}
	if got := Join(nil, nil); got.String() != "∅" {
		t.Errorf("Join(nil,nil) = %s want None", got)
	}
}

func TestMergeFlattensAndDropsNone(t *testing.T) {
	a, b, c := leaf("R", 0), leaf("S", 1), leaf("T", 2)
	m := Merge(Merge(a, b), c)
	pl, ok := m.(Plus)
	if !ok || len(pl.Args) != 3 {
		t.Fatalf("Merge should flatten into a 3-arg Plus, got %s", m)
	}
	if got := Merge(None{}, b); !Equal(got, b) {
		t.Errorf("Merge(None,b) = %s", got)
	}
	if got := Merge(b, None{}); !Equal(got, b) {
		t.Errorf("Merge(b,None) = %s", got)
	}
}

func TestStringNotation(t *testing.T) {
	e := Merge(Join(leaf("R", 0), leaf("S", 1)), leaf("T", 2))
	if e.String() != "((R:0 * S:1) + T:2)" {
		t.Errorf("notation = %s", e.String())
	}
}

func TestSources(t *testing.T) {
	e := Merge(Join(leaf("Shelters", 0), leaf("ZipResolver", 4)), leaf("Contacts", 1))
	got := Sources(e)
	want := []string{"Contacts", "Shelters", "ZipResolver"}
	if len(got) != len(want) {
		t.Fatalf("Sources = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sources[%d] = %q want %q", i, got[i], want[i])
		}
	}
	if Sources(nil) != nil {
		t.Error("Sources(nil) should be nil")
	}
	if len(Sources(None{})) != 0 {
		t.Error("Sources(None) should be empty")
	}
}

func TestAlternatives(t *testing.T) {
	single := Join(leaf("R", 0), leaf("S", 0))
	if alts := Alternatives(single); len(alts) != 1 {
		t.Errorf("single derivation should have 1 alternative, got %d", len(alts))
	}
	multi := Merge(leaf("R", 0), Join(leaf("S", 0), leaf("T", 0)))
	if alts := Alternatives(multi); len(alts) != 2 {
		t.Errorf("plus of two should have 2 alternatives, got %d", len(alts))
	}
	if Alternatives(None{}) != nil || Alternatives(nil) != nil {
		t.Error("None/nil have no alternatives")
	}
}

func TestExplainRendering(t *testing.T) {
	e := Merge(Join(leaf("Shelters", 0), leaf("ZipResolver", 2)), leaf("Backup", 0))
	s := Explain(e)
	for _, want := range []string{
		"alternative derivations",
		"joined from 2 inputs",
		"tuple Shelters:0 from source Shelters",
		"tuple ZipResolver:2 from source ZipResolver",
		"tuple Backup:0 from source Backup",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(Explain(None{}), "user-entered") {
		t.Error("Explain(None) should mention user-entered")
	}
	if !strings.Contains(Explain(nil), "user-entered") {
		t.Error("Explain(nil) should normalize to None")
	}
	// Leaf with empty Source falls back to parsing the ID.
	if !strings.Contains(Explain(Leaf{ID: "Src:7"}), "from source Src") {
		t.Error("Explain should derive source from ID")
	}
}

func TestEqual(t *testing.T) {
	a := Join(leaf("R", 0), leaf("S", 1))
	if !Equal(a, Join(leaf("R", 0), leaf("S", 1))) {
		t.Error("structurally identical exprs should be Equal")
	}
	if Equal(a, Join(leaf("R", 0), leaf("S", 2))) {
		t.Error("different leaves should not be Equal")
	}
	if Equal(a, Merge(leaf("R", 0), leaf("S", 1))) {
		t.Error("Times vs Plus should not be Equal")
	}
	if !Equal(nil, None{}) {
		t.Error("nil normalizes to None")
	}
	if Equal(Plus{Args: []Expr{a}}, Plus{Args: []Expr{a, a}}) {
		t.Error("different arg counts should not be Equal")
	}
}

func TestLeavesCollectsAll(t *testing.T) {
	e := Merge(Join(leaf("R", 0), leaf("S", 1)), Join(leaf("T", 2), leaf("U", 3)))
	ids := e.Leaves(nil)
	if len(ids) != 4 {
		t.Errorf("Leaves count = %d want 4", len(ids))
	}
}

func TestJoinMergePreserveLeavesProperty(t *testing.T) {
	// Property: Join and Merge both preserve the multiset of leaves.
	f := func(xs, ys []uint8) bool {
		var a, b Expr = None{}, None{}
		for _, x := range xs {
			a = Merge(a, leaf("A", int(x)))
		}
		for _, y := range ys {
			b = Join(b, leaf("B", int(y)))
		}
		j := Join(a, b)
		m := Merge(a, b)
		na := len(a.Leaves(nil))
		nb := len(b.Leaves(nil))
		return len(j.Leaves(nil)) == na+nb && len(m.Leaves(nil)) == na+nb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnnotated(t *testing.T) {
	a := Annotated{Row: table.FromStrings([]string{"x"}), Prov: leaf("R", 0)}
	if a.Row[0].Str() != "x" || a.Prov.String() != "R:0" {
		t.Error("Annotated fields wrong")
	}
}
