// Package wrappers implements CopyCat's application wrappers (§2.3): the
// components that monitor copy operations in source applications — the
// Web browser, the spreadsheet program, the word processor — and deliver
// each copied selection together with its source context to the learners.
//
// In the paper these hook Internet Explorer and Microsoft Office; here
// they wrap webworld documents, exposing the same contract: the user
// performs a copy, and the wrapper emits a docmodel.Selection carrying
// the copied cells, the displayed document, and the owning site.
package wrappers

import (
	"fmt"
	"strings"
	"sync"

	"copycat/internal/docmodel"
)

// Clipboard is the copy/paste bus between applications and the SCP
// workspace. Subscribers (the workspace) receive every copy event.
type Clipboard struct {
	mu        sync.Mutex
	last      docmodel.Selection
	hasData   bool
	listeners []func(docmodel.Selection)
}

// NewClipboard creates an empty clipboard.
func NewClipboard() *Clipboard { return &Clipboard{} }

// Copy places a selection on the clipboard and notifies subscribers.
func (c *Clipboard) Copy(sel docmodel.Selection) {
	c.mu.Lock()
	c.last = sel
	c.hasData = true
	ls := make([]func(docmodel.Selection), len(c.listeners))
	copy(ls, c.listeners)
	c.mu.Unlock()
	for _, fn := range ls {
		fn(sel)
	}
}

// Current returns the clipboard contents, if any.
func (c *Clipboard) Current() (docmodel.Selection, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last, c.hasData
}

// Subscribe registers a copy-event listener.
func (c *Clipboard) Subscribe(fn func(docmodel.Selection)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, fn)
}

// Browser wraps a web site the way CopyCat's IE wrapper does: it tracks
// the displayed page, supports navigation (links and forms), and turns
// user text selections into clipboard copies with full source context.
type Browser struct {
	Clip    *Clipboard
	site    *docmodel.Site
	current *docmodel.Document
}

// NewBrowser opens a browser on a site's root page.
func NewBrowser(clip *Clipboard, site *docmodel.Site) *Browser {
	return &Browser{Clip: clip, site: site, current: site.RootPage()}
}

// Current returns the displayed document.
func (b *Browser) Current() *docmodel.Document { return b.current }

// Site returns the browsed site.
func (b *Browser) Site() *docmodel.Site { return b.site }

// Navigate loads the page at url.
func (b *Browser) Navigate(url string) error {
	d := b.site.Get(url)
	if d == nil {
		return fmt.Errorf("wrappers: 404: %s", url)
	}
	b.current = d
	return nil
}

// SubmitForm submits the site's form with the given input value and loads
// the result page.
func (b *Browser) SubmitForm(formIdx int, value string) error {
	if formIdx < 0 || formIdx >= len(b.site.Forms) {
		return fmt.Errorf("wrappers: no form %d on site %s", formIdx, b.site.Name)
	}
	return b.Navigate(b.site.Forms[formIdx].Action + value)
}

// CopyText selects the given text values on the current page (in order,
// as one clipboard row) and copies them. It fails if a value does not
// appear on the page — mirroring that a user can only copy what is
// displayed. Values may be substrings of a text chunk.
func (b *Browser) CopyText(values ...string) (docmodel.Selection, error) {
	chunks := b.current.Chunks()
	for _, v := range values {
		found := false
		for _, ch := range chunks {
			if strings.Contains(ch.Text, v) {
				found = true
				break
			}
		}
		if !found {
			return docmodel.Selection{}, fmt.Errorf("wrappers: %q not on page %s", v, b.current.URL)
		}
	}
	sel := docmodel.Selection{
		Cells: [][]string{append([]string(nil), values...)},
		Doc:   b.current,
		Site:  b.site,
		App:   "browser",
	}
	b.Clip.Copy(sel)
	return sel, nil
}

// CopyRows selects multiple aligned rows of text values (a rectangular
// block) and copies them in one operation — e.g. the two shelters of
// Figure 1.
func (b *Browser) CopyRows(rows [][]string) (docmodel.Selection, error) {
	chunks := b.current.Chunks()
	for _, row := range rows {
		for _, v := range row {
			found := false
			for _, ch := range chunks {
				if strings.Contains(ch.Text, v) {
					found = true
					break
				}
			}
			if !found {
				return docmodel.Selection{}, fmt.Errorf("wrappers: %q not on page %s", v, b.current.URL)
			}
		}
	}
	cells := make([][]string, len(rows))
	for i, row := range rows {
		cells[i] = append([]string(nil), row...)
	}
	sel := docmodel.Selection{Cells: cells, Doc: b.current, Site: b.site, App: "browser"}
	b.Clip.Copy(sel)
	return sel, nil
}

// Spreadsheet wraps an Excel-like document; selections are cell ranges.
type Spreadsheet struct {
	Clip *Clipboard
	doc  *docmodel.Document
}

// NewSpreadsheet opens a spreadsheet document.
func NewSpreadsheet(clip *Clipboard, doc *docmodel.Document) *Spreadsheet {
	return &Spreadsheet{Clip: clip, doc: doc}
}

// Doc returns the wrapped document.
func (s *Spreadsheet) Doc() *docmodel.Document { return s.doc }

// CopyRange copies the rectangular cell range [r0,r1] × [c0,c1]
// (inclusive, 0-based).
func (s *Spreadsheet) CopyRange(r0, c0, r1, c1 int) (docmodel.Selection, error) {
	grid := s.doc.Grid()
	if r0 < 0 || c0 < 0 || r1 >= len(grid) || r0 > r1 || c0 > c1 {
		return docmodel.Selection{}, fmt.Errorf("wrappers: range (%d,%d)-(%d,%d) out of bounds", r0, c0, r1, c1)
	}
	var cells [][]string
	for r := r0; r <= r1; r++ {
		if c1 >= len(grid[r]) {
			return docmodel.Selection{}, fmt.Errorf("wrappers: row %d has %d columns, need %d", r, len(grid[r]), c1+1)
		}
		cells = append(cells, append([]string(nil), grid[r][c0:c1+1]...))
	}
	sel := docmodel.Selection{Cells: cells, Doc: s.doc, App: "excel"}
	s.Clip.Copy(sel)
	return sel, nil
}

// FindRow returns the index of the first data row whose cell in column
// col equals value, or -1. Simulated users use it to locate the record
// they want to copy.
func (s *Spreadsheet) FindRow(col int, value string) int {
	for r, row := range s.doc.Grid() {
		if col < len(row) && row[col] == value {
			return r
		}
	}
	return -1
}

// TextDoc wraps a plain-text document (the Word wrapper); selections are
// substrings of lines.
type TextDoc struct {
	Clip *Clipboard
	doc  *docmodel.Document
}

// NewTextDoc opens a text document.
func NewTextDoc(clip *Clipboard, doc *docmodel.Document) *TextDoc {
	return &TextDoc{Clip: clip, doc: doc}
}

// CopyLine copies the text of line i.
func (t *TextDoc) CopyLine(i int) (docmodel.Selection, error) {
	lines := strings.Split(t.doc.Raw, "\n")
	if i < 0 || i >= len(lines) {
		return docmodel.Selection{}, fmt.Errorf("wrappers: line %d out of range", i)
	}
	sel := docmodel.Selection{Cells: [][]string{{lines[i]}}, Doc: t.doc, App: "word"}
	t.Clip.Copy(sel)
	return sel, nil
}
