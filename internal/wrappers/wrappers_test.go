package wrappers

import (
	"testing"

	"copycat/internal/docmodel"
	"copycat/internal/webworld"
)

func world() *webworld.World { return webworld.Generate(webworld.DefaultConfig()) }

func TestClipboardCopySubscribe(t *testing.T) {
	clip := NewClipboard()
	if _, ok := clip.Current(); ok {
		t.Error("empty clipboard should have no data")
	}
	var events []docmodel.Selection
	clip.Subscribe(func(s docmodel.Selection) { events = append(events, s) })
	sel := docmodel.Selection{Cells: [][]string{{"x"}}, App: "test"}
	clip.Copy(sel)
	cur, ok := clip.Current()
	if !ok || cur.App != "test" {
		t.Error("Current should return the copied selection")
	}
	if len(events) != 1 || events[0].App != "test" {
		t.Error("subscriber should receive the copy event")
	}
}

func TestBrowserNavigateAndCopy(t *testing.T) {
	w := world()
	site := w.ShelterSite(webworld.StyleTable)
	clip := NewClipboard()
	b := NewBrowser(clip, site)
	if b.Current() != site.RootPage() || b.Site() != site {
		t.Fatal("browser should open at the root page")
	}
	s := w.Shelters[0]
	sel, err := b.CopyText(s.Name, s.Street, s.City)
	if err != nil {
		t.Fatal(err)
	}
	if sel.App != "browser" || sel.Doc != site.RootPage() || sel.Site != site {
		t.Error("selection context wrong")
	}
	row, ok := sel.SingleRow()
	if !ok || len(row) != 3 || row[0] != s.Name {
		t.Errorf("selection cells wrong: %v", sel.Cells)
	}
	// The clipboard saw it too.
	if cur, ok := clip.Current(); !ok || cur.App != "browser" {
		t.Error("copy should land on the clipboard")
	}
	// Copying absent text fails.
	if _, err := b.CopyText("Not On This Page At All"); err == nil {
		t.Error("copying absent text should fail")
	}
	if err := b.Navigate("http://nope/"); err == nil {
		t.Error("navigating to unknown URL should fail")
	}
}

func TestBrowserCopyRows(t *testing.T) {
	w := world()
	site := w.ShelterSite(webworld.StyleTable)
	b := NewBrowser(NewClipboard(), site)
	s0, s1 := w.Shelters[0], w.Shelters[1]
	sel, err := b.CopyRows([][]string{
		{s0.Name, s0.Street, s0.City},
		{s1.Name, s1.Street, s1.City},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Cells) != 2 || sel.Cells[1][0] != s1.Name {
		t.Errorf("rows wrong: %v", sel.Cells)
	}
	if _, err := b.CopyRows([][]string{{"Missing Value"}}); err == nil {
		t.Error("missing value should fail")
	}
}

func TestBrowserSubmitForm(t *testing.T) {
	w := world()
	site := w.ShelterSite(webworld.StyleForm)
	b := NewBrowser(NewClipboard(), site)
	city := w.Cities[0].Name
	if err := b.SubmitForm(0, city); err != nil {
		t.Fatal(err)
	}
	if b.Current().URL != site.Forms[0].Action+city {
		t.Errorf("current url = %s", b.Current().URL)
	}
	// The city's shelters are now copyable.
	sh := w.SheltersIn(city)[0]
	if _, err := b.CopyText(sh.Name); err != nil {
		t.Errorf("copy after form submit: %v", err)
	}
	if err := b.SubmitForm(3, city); err == nil {
		t.Error("bad form index should fail")
	}
}

func TestSpreadsheetCopyRange(t *testing.T) {
	w := world()
	doc := w.ContactsSpreadsheet()
	clip := NewClipboard()
	s := NewSpreadsheet(clip, doc)
	if s.Doc() != doc {
		t.Error("Doc accessor wrong")
	}
	sel, err := s.CopyRange(1, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Cells) != 2 || len(sel.Cells[0]) != 3 {
		t.Fatalf("range shape wrong: %v", sel.Cells)
	}
	if sel.Cells[0][0] != w.Contacts[0].Person {
		t.Errorf("cell content wrong: %v", sel.Cells[0])
	}
	if sel.App != "excel" {
		t.Error("app should be excel")
	}
	for _, bad := range [][4]int{{-1, 0, 0, 0}, {0, 0, 99999, 0}, {2, 0, 1, 0}, {0, 5, 0, 4}, {0, 0, 0, 99}} {
		if _, err := s.CopyRange(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("range %v should fail", bad)
		}
	}
}

func TestSpreadsheetFindRow(t *testing.T) {
	w := world()
	s := NewSpreadsheet(NewClipboard(), w.ContactsSpreadsheet())
	r := s.FindRow(0, w.Contacts[2].Person)
	if r < 1 {
		t.Fatalf("FindRow = %d", r)
	}
	if s.FindRow(0, "Nobody Here") != -1 {
		t.Error("missing value should be -1")
	}
	if s.FindRow(99, "x") != -1 {
		t.Error("out-of-range column should be -1")
	}
}

func TestTextDocCopyLine(t *testing.T) {
	doc := docmodel.NewText("file:notes.txt", "Notes", "first line\nsecond line")
	td := NewTextDoc(NewClipboard(), doc)
	sel, err := td.CopyLine(1)
	if err != nil || sel.Cells[0][0] != "second line" || sel.App != "word" {
		t.Errorf("CopyLine wrong: %v %v", sel, err)
	}
	if _, err := td.CopyLine(5); err == nil {
		t.Error("out-of-range line should fail")
	}
	if _, err := td.CopyLine(-1); err == nil {
		t.Error("negative line should fail")
	}
}
