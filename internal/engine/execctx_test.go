package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"copycat/internal/provenance"
	"copycat/internal/table"
)

// slowService is a synthetic service that sleeps per call — a stand-in
// for a slow web endpoint.
type slowService struct {
	delay time.Duration
	calls int
}

func (s *slowService) Name() string              { return "Slow" }
func (s *slowService) InputSchema() table.Schema { return table.NewSchema("K") }
func (s *slowService) OutputSchema() table.Schema {
	return table.NewSchema("V")
}
func (s *slowService) Call(in table.Tuple) ([]table.Tuple, error) {
	s.calls++
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return []table.Tuple{{table.S("v:" + in[0].Str())}}, nil
}

// keysValues builds a Values plan with n distinct single-column rows.
func keysValues(n int) *Values {
	v := &Values{Name: "keys", Schema_: table.NewSchema("K")}
	for i := 0; i < n; i++ {
		v.Rows = append(v.Rows, provenance.Annotated{
			Row:  table.Tuple{table.S(string(rune('a'+i%26)) + string(rune('0'+i/26)))},
			Prov: provenance.Leaf{ID: provenance.BaseID("keys", i), Source: "keys"},
		})
	}
	return v
}

func TestDeadlineExceededPromptly(t *testing.T) {
	svc := &slowService{delay: 20 * time.Millisecond}
	dj := &DependentJoin{Input: keysValues(200), Svc: svc, InputCols: []int{0}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := dj.Execute(NewExecCtx(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	// 200 rows × 20ms would be 4s serially; the deadline must cut in
	// after at most a few calls.
	if el := time.Since(start); el > time.Second {
		t.Fatalf("deadline not honored promptly: took %v", el)
	}
	if svc.calls > 5 {
		t.Fatalf("service called %d times after a 30ms deadline", svc.calls)
	}
}

func TestCancelledContextCallsNoService(t *testing.T) {
	svc := &slowService{}
	dj := &DependentJoin{Input: keysValues(10), Svc: svc, InputCols: []int{0}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled before execution starts
	ec := NewExecCtx(ctx)
	if _, err := dj.Execute(ec); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := ec.Stats().ServiceCalls.Load(); got != 0 {
		t.Fatalf("Stats.ServiceCalls = %d, want 0 for a pre-cancelled context", got)
	}
	if svc.calls != 0 {
		t.Fatalf("service invoked %d times under a cancelled context", svc.calls)
	}
}

func TestServiceCacheAcrossExecutions(t *testing.T) {
	svc := &slowService{}
	dj := &DependentJoin{Input: keysValues(8), Svc: svc, InputCols: []int{0}}
	cache := NewServiceCache()
	stats := NewStats()

	first, err := dj.Execute(NewExecCtx(context.Background(), WithStats(stats), WithServiceCache(cache)))
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.ServiceCalls.Load(); got != 8 {
		t.Fatalf("first run: ServiceCalls = %d, want 8", got)
	}
	second, err := dj.Execute(NewExecCtx(context.Background(), WithStats(stats), WithServiceCache(cache)))
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.ServiceCalls.Load(); got != 8 {
		t.Fatalf("second run re-called the service: ServiceCalls = %d, want 8", got)
	}
	if got := stats.ServiceCacheHits.Load(); got != 8 {
		t.Fatalf("second run: ServiceCacheHits = %d, want 8", got)
	}
	if cache.Len() != 8 {
		t.Fatalf("cache holds %d bindings, want 8", cache.Len())
	}

	// Results must be identical with memoization fully disabled.
	bare, err := dj.Execute(NewExecCtx(context.Background(), WithoutServiceMemo()))
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Rows) != len(first.Rows) || len(bare.Rows) != len(second.Rows) {
		t.Fatalf("row counts differ: cached %d/%d vs uncached %d", len(first.Rows), len(second.Rows), len(bare.Rows))
	}
	for i := range bare.Rows {
		if bare.Rows[i].Row.Key() != first.Rows[i].Row.Key() {
			t.Fatalf("row %d differs between cached and uncached execution", i)
		}
	}
}

func TestRowBudget(t *testing.T) {
	scan := NewScan(shelters())
	if _, err := scan.Execute(NewExecCtx(context.Background(), WithRowBudget(1))); !errors.Is(err, ErrRowBudget) {
		t.Fatalf("want ErrRowBudget, got %v", err)
	}
	if _, err := scan.Execute(NewExecCtx(context.Background(), WithRowBudget(1000))); err != nil {
		t.Fatalf("generous budget should pass: %v", err)
	}
}

func TestRunCompatHelper(t *testing.T) {
	res, err := Run(NewScan(shelters()))
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("Run failed: %v", err)
	}
}

func TestNilExecCtxUpgrades(t *testing.T) {
	res, err := NewScan(shelters()).Execute(nil)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("nil ExecCtx should execute as background: %v", err)
	}
}

func TestStatsPerOperator(t *testing.T) {
	stats := NewStats()
	ec := NewExecCtx(context.Background(), WithStats(stats))
	sel := &Select{Input: NewScan(shelters()), Pred: func(table.Tuple) bool { return true }, Desc: "all"}
	if _, err := sel.Execute(ec); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.PerOp["Scan"].Invocations != 1 || snap.PerOp["Select"].Invocations != 1 {
		t.Fatalf("per-op invocations wrong: %+v", snap.PerOp)
	}
	if snap.PerOp["Select"].RowsIn != snap.PerOp["Scan"].RowsOut {
		t.Fatalf("select rows-in %d != scan rows-out %d", snap.PerOp["Select"].RowsIn, snap.PerOp["Scan"].RowsOut)
	}
	if snap.String() == "" {
		t.Fatal("snapshot rendering empty")
	}
}
