package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copycat/internal/obs"
	"copycat/internal/plancache"
	"copycat/internal/resilience"
	"copycat/internal/table"
)

// ErrRowBudget is returned when an execution produces more rows than its
// ExecCtx allows. It bounds runaway candidate queries so one bad
// suggestion cannot stall the interactive loop.
var ErrRowBudget = errors.New("engine: row budget exceeded")

// Stats is the executor's instrumentation block. One Stats may be shared
// by many concurrent executions (the suggestion pipeline runs candidate
// plans in parallel), so every counter is atomic. Zero value is ready to
// use via NewStats; a nil *Stats is tolerated by ExecCtx and counts
// nothing.
type Stats struct {
	// RowsIn / RowsOut total rows consumed / produced across operators.
	RowsIn, RowsOut atomic.Int64
	// ServiceCalls counts actual Service.Call invocations.
	ServiceCalls atomic.Int64
	// ServiceCacheHits counts dependent-join rows answered from a memo
	// (shared ServiceCache or per-execution) instead of a live call.
	ServiceCacheHits atomic.Int64
	// TreesPruned counts Steiner enumeration branches discarded as
	// infeasible or duplicate during top-k query search.
	TreesPruned atomic.Int64
	// PlansExecuted counts root-level plan executions.
	PlansExecuted atomic.Int64
	// CandidatesRun counts candidate completion plans executed by the
	// suggestion pipeline (including ones later filtered out).
	CandidatesRun atomic.Int64
	// PlansReused counts candidate plans answered from the plan result
	// cache instead of executing (fingerprint unchanged since last run).
	PlansReused atomic.Int64
	// PlansInvalidated counts candidate plans whose cached result was
	// unusable — the fingerprint moved because feedback shifted an edge
	// weight or a paste grew the graph — forcing a re-execution.
	PlansInvalidated atomic.Int64
	// Retries counts service-call retry attempts made by the resilience
	// layer beyond each call's first attempt.
	Retries atomic.Int64
	// BreakerTrips counts circuit-breaker open transitions observed
	// during service calls.
	BreakerTrips atomic.Int64
	// DegradedRows counts dependent-join input rows degraded — skipped,
	// or null-padded under Outer — because their service call failed
	// transiently after retries were exhausted or the breaker was open.
	DegradedRows atomic.Int64

	mu    sync.Mutex
	perOp map[string]*OpStats
}

// NewStats returns an empty stats block.
func NewStats() *Stats { return &Stats{} }

// OpStats is one operator type's counters.
type OpStats struct {
	Invocations, RowsIn, RowsOut atomic.Int64
}

// Op returns the per-operator counter block for an operator name,
// creating it on first use.
func (s *Stats) Op(name string) *OpStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perOp == nil {
		s.perOp = map[string]*OpStats{}
	}
	op, ok := s.perOp[name]
	if !ok {
		op = &OpStats{}
		s.perOp[name] = op
	}
	return op
}

// record tallies one operator invocation.
func (s *Stats) record(op string, rowsIn, rowsOut int) {
	if s == nil {
		return
	}
	s.RowsIn.Add(int64(rowsIn))
	s.RowsOut.Add(int64(rowsOut))
	o := s.Op(op)
	o.Invocations.Add(1)
	o.RowsIn.Add(int64(rowsIn))
	o.RowsOut.Add(int64(rowsOut))
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	s.RowsIn.Store(0)
	s.RowsOut.Store(0)
	s.ServiceCalls.Store(0)
	s.ServiceCacheHits.Store(0)
	s.TreesPruned.Store(0)
	s.PlansExecuted.Store(0)
	s.CandidatesRun.Store(0)
	s.PlansReused.Store(0)
	s.PlansInvalidated.Store(0)
	s.Retries.Store(0)
	s.BreakerTrips.Store(0)
	s.DegradedRows.Store(0)
	s.mu.Lock()
	s.perOp = nil
	s.mu.Unlock()
}

// OpSnapshot is a point-in-time copy of one operator's counters.
type OpSnapshot struct {
	Invocations int64 `json:"invocations"`
	RowsIn      int64 `json:"rows_in"`
	RowsOut     int64 `json:"rows_out"`
}

// StatsSnapshot is a point-in-time, plain-value copy of a Stats block,
// safe to read, print, compare, and serialize (scpbench -json) without
// atomics.
type StatsSnapshot struct {
	RowsIn           int64                 `json:"rows_in"`
	RowsOut          int64                 `json:"rows_out"`
	ServiceCalls     int64                 `json:"service_calls"`
	ServiceCacheHits int64                 `json:"service_cache_hits"`
	TreesPruned      int64                 `json:"trees_pruned"`
	PlansExecuted    int64                 `json:"plans_executed"`
	CandidatesRun    int64                 `json:"candidates_run"`
	PlansReused      int64                 `json:"plans_reused"`
	PlansInvalidated int64                 `json:"plans_invalidated"`
	Retries          int64                 `json:"retries"`
	BreakerTrips     int64                 `json:"breaker_trips"`
	DegradedRows     int64                 `json:"degraded_rows"`
	PerOp            map[string]OpSnapshot `json:"per_op,omitempty"`
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	snap := StatsSnapshot{
		RowsIn:           s.RowsIn.Load(),
		RowsOut:          s.RowsOut.Load(),
		ServiceCalls:     s.ServiceCalls.Load(),
		ServiceCacheHits: s.ServiceCacheHits.Load(),
		TreesPruned:      s.TreesPruned.Load(),
		PlansExecuted:    s.PlansExecuted.Load(),
		CandidatesRun:    s.CandidatesRun.Load(),
		PlansReused:      s.PlansReused.Load(),
		PlansInvalidated: s.PlansInvalidated.Load(),
		Retries:          s.Retries.Load(),
		BreakerTrips:     s.BreakerTrips.Load(),
		DegradedRows:     s.DegradedRows.Load(),
		PerOp:            map[string]OpSnapshot{},
	}
	s.mu.Lock()
	for name, op := range s.perOp {
		snap.PerOp[name] = OpSnapshot{
			Invocations: op.Invocations.Load(),
			RowsIn:      op.RowsIn.Load(),
			RowsOut:     op.RowsOut.Load(),
		}
	}
	s.mu.Unlock()
	return snap
}

// String renders the snapshot as an aligned report.
func (s StatsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plans executed    %d\n", s.PlansExecuted)
	fmt.Fprintf(&b, "candidates run    %d\n", s.CandidatesRun)
	fmt.Fprintf(&b, "plans reused      %d\n", s.PlansReused)
	fmt.Fprintf(&b, "plans invalidated %d\n", s.PlansInvalidated)
	fmt.Fprintf(&b, "rows in/out       %d/%d\n", s.RowsIn, s.RowsOut)
	fmt.Fprintf(&b, "service calls     %d\n", s.ServiceCalls)
	fmt.Fprintf(&b, "service cache hit %d\n", s.ServiceCacheHits)
	fmt.Fprintf(&b, "trees pruned      %d\n", s.TreesPruned)
	fmt.Fprintf(&b, "retries           %d\n", s.Retries)
	fmt.Fprintf(&b, "breaker trips     %d\n", s.BreakerTrips)
	fmt.Fprintf(&b, "degraded rows     %d\n", s.DegradedRows)
	names := make([]string, 0, len(s.PerOp))
	for n := range s.PerOp {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		op := s.PerOp[n]
		fmt.Fprintf(&b, "  %-12s calls=%-6d in=%-8d out=%d\n", n, op.Invocations, op.RowsIn, op.RowsOut)
	}
	return b.String()
}

// ---------------------------------------------------------------- cache

// ServiceCache memoizes service calls across plan executions, keyed by
// service name plus the normalized input tuple. Dependent joins dominate
// the F2/E6 latency profile, and candidate completions re-invoke the same
// services with the same bindings on every suggestion refresh — sharing
// one cache per session removes almost all of those calls. Safe for
// concurrent use.
type ServiceCache struct {
	mu sync.RWMutex
	m  map[string][]table.Tuple
}

// NewServiceCache returns an empty cache.
func NewServiceCache() *ServiceCache {
	return &ServiceCache{m: map[string][]table.Tuple{}}
}

// Len reports the number of distinct (service, input) bindings cached.
func (c *ServiceCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Clear drops every cached answer.
func (c *ServiceCache) Clear() {
	c.mu.Lock()
	c.m = map[string][]table.Tuple{}
	c.mu.Unlock()
}

func (c *ServiceCache) lookup(key string) ([]table.Tuple, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rows, ok := c.m[key]
	return rows, ok
}

func (c *ServiceCache) store(key string, rows []table.Tuple) {
	c.mu.Lock()
	c.m[key] = rows
	c.mu.Unlock()
}

// ---------------------------------------------------------------- ctx

// ExecCtx is the execution context threaded through every Plan.Execute:
// a context.Context for deadlines and cancellation, an optional row
// budget, an optional cross-execution service cache, and an atomic Stats
// block. One ExecCtx may drive many plan executions concurrently (the
// parallel candidate executor); everything it holds is goroutine-safe.
//
// The zero value is not usable — build one with NewExecCtx or Background.
// Operators tolerate a nil *ExecCtx by upgrading it to Background, so
// hand-built plans keep working without ceremony.
type ExecCtx struct {
	ctx       context.Context
	stats     *Stats
	cache     *ServiceCache
	res       *resilience.Caller
	trace     *obs.Trace       // nil = tracing disabled (the common case)
	metrics   *obs.Registry    // nil = no latency histograms
	decisions *obs.DecisionLog // nil = no decision log
	span      *obs.Span        // current parent span for StartSpan
	clock     resilience.Clock // nil = wall clock; virtual in tests/benches
	plans     *plancache.Cache // nil = incremental refresh disabled (cold path)
	noMemo    bool
	maxRows   int64
	// rows is the count produced under this budget. It is a pointer so a
	// derived context (WithSpan) shares the budget with its parent —
	// atomic.Int64 cannot be struct-copied.
	rows *atomic.Int64
}

// ExecOption configures an ExecCtx.
type ExecOption func(*ExecCtx)

// WithStats attaches a (possibly shared) stats block.
func WithStats(s *Stats) ExecOption { return func(ec *ExecCtx) { ec.stats = s } }

// WithServiceCache attaches a cross-execution service-call cache.
func WithServiceCache(c *ServiceCache) ExecOption { return func(ec *ExecCtx) { ec.cache = c } }

// WithPlanCache attaches a fingerprint-keyed plan result cache. The
// suggestion pipeline consults it to skip re-executing candidate plans
// whose inputs (sources, join columns, edge generations) are unchanged
// since the last refresh; nil keeps the cold, recompute-everything path.
func WithPlanCache(c *plancache.Cache) ExecOption { return func(ec *ExecCtx) { ec.plans = c } }

// WithResilience routes every service call through a resilience.Caller:
// per-call timeouts, retry with backoff on transient failures, and a
// per-service circuit breaker. Without it, dependent joins call services
// directly and any error fails the plan (the pre-resilience behavior).
func WithResilience(c *resilience.Caller) ExecOption { return func(ec *ExecCtx) { ec.res = c } }

// WithoutServiceMemo disables service-call memoization entirely — even
// the per-execution memo dependent joins otherwise keep. Used to verify
// cache transparency.
func WithoutServiceMemo() ExecOption { return func(ec *ExecCtx) { ec.noMemo = true } }

// WithRowBudget bounds the total rows this context may produce across
// all operators; exceeding it fails the execution with ErrRowBudget.
// n <= 0 means unlimited.
func WithRowBudget(n int) ExecOption { return func(ec *ExecCtx) { ec.maxRows = int64(n) } }

// WithTrace attaches a span tracer. Execution emits spans for plan
// roots, dependent joins, and service calls; nil leaves tracing
// disabled at ~zero cost.
func WithTrace(t *obs.Trace) ExecOption { return func(ec *ExecCtx) { ec.trace = t } }

// WithMetrics attaches a metrics registry for latency histograms.
func WithMetrics(r *obs.Registry) ExecOption { return func(ec *ExecCtx) { ec.metrics = r } }

// WithDecisions attaches a decision log recording why candidates were
// pruned, degraded, or outranked.
func WithDecisions(l *obs.DecisionLog) ExecOption { return func(ec *ExecCtx) { ec.decisions = l } }

// WithExecClock sets the clock used to time service calls for the
// latency histograms (virtual in tests; wall clock by default).
func WithExecClock(c resilience.Clock) ExecOption { return func(ec *ExecCtx) { ec.clock = c } }

// NewExecCtx builds an execution context over ctx. The stats block is
// guaranteed non-nil on return — even under WithStats(nil) — so no
// call site ever lazily initializes it (the old lazy path raced when a
// shared ExecCtx first touched Stats from two goroutines).
func NewExecCtx(ctx context.Context, opts ...ExecOption) *ExecCtx {
	if ctx == nil {
		ctx = context.Background()
	}
	ec := &ExecCtx{ctx: ctx, stats: NewStats(), rows: new(atomic.Int64)}
	for _, o := range opts {
		o(ec)
	}
	if ec.stats == nil {
		ec.stats = NewStats()
	}
	if ec.rows == nil {
		ec.rows = new(atomic.Int64)
	}
	return ec
}

// Background returns an ExecCtx with no deadline, no budget, and a fresh
// stats block — the compat path for call sites that have not migrated.
func Background() *ExecCtx { return NewExecCtx(context.Background()) }

// Run executes a plan under a background ExecCtx. It is the incremental
// migration helper for the Execute() → Execute(*ExecCtx) interface
// change: old call sites become engine.Run(p).
func Run(p Plan) (*Result, error) { return p.Execute(Background()) }

// orBackground upgrades a nil receiver so operators never nil-check.
func (ec *ExecCtx) orBackground() *ExecCtx {
	if ec == nil {
		return Background()
	}
	return ec
}

// Context returns the wrapped context.Context.
func (ec *ExecCtx) Context() context.Context { return ec.ctx }

// Stats returns the attached stats block (never nil). NewExecCtx
// guarantees the field is set at construction, so this is a plain read
// — no lazy initialization, no write, no race on a shared ExecCtx.
func (ec *ExecCtx) Stats() *Stats {
	if ec.stats == nil {
		// Only reachable from a hand-built struct literal, which the
		// type contract forbids; return a throwaway rather than racing
		// to publish one.
		return NewStats()
	}
	return ec.stats
}

// Cache returns the shared service cache, or nil if none is attached.
func (ec *ExecCtx) Cache() *ServiceCache { return ec.cache }

// PlanCache returns the attached plan result cache, or nil when
// incremental refresh is disabled.
func (ec *ExecCtx) PlanCache() *plancache.Cache { return ec.plans }

// Resilience returns the attached resilient caller, or nil.
func (ec *ExecCtx) Resilience() *resilience.Caller { return ec.res }

// Trace returns the attached tracer, or nil when tracing is disabled.
func (ec *ExecCtx) Trace() *obs.Trace { return ec.trace }

// Metrics returns the attached metrics registry, or nil.
func (ec *ExecCtx) Metrics() *obs.Registry { return ec.metrics }

// Decisions returns the attached decision log, or nil.
func (ec *ExecCtx) Decisions() *obs.DecisionLog { return ec.decisions }

// Span returns the current parent span, or nil.
func (ec *ExecCtx) Span() *obs.Span { return ec.span }

// WithSpan derives a child execution context whose spans parent under
// sp and whose context.Context carries sp for deeper layers. The
// derived context shares everything else — stats, caches, resilience,
// and crucially the row budget — with its parent, so the parallel
// candidate executor can give each candidate its own span lane without
// splitting the budget.
func (ec *ExecCtx) WithSpan(sp *obs.Span) *ExecCtx {
	if ec == nil {
		return nil
	}
	if sp == nil {
		return ec
	}
	ec2 := *ec
	ec2.span = sp
	ec2.ctx = obs.ContextWithSpan(ec.ctx, sp)
	return &ec2
}

// StartSpan opens a span on the attached trace, parented under the
// context's current span when one is set. Returns nil (inert) when
// tracing is disabled — the caller just calls End() on it regardless.
func (ec *ExecCtx) StartSpan(name, cat string) *obs.Span {
	if ec == nil || ec.trace == nil {
		return nil
	}
	if ec.span != nil {
		return ec.span.Child(name, cat)
	}
	return ec.trace.Start(name, cat)
}

// now reads the exec clock (wall clock unless one was injected).
func (ec *ExecCtx) now() time.Time {
	if ec.clock != nil {
		return ec.clock.Now()
	}
	return time.Now()
}

// Now exposes the exec clock for callers timing their own stages into
// the metrics registry (the suggestion pipeline's per-stage latencies).
func (ec *ExecCtx) Now() time.Time { return ec.now() }

// callService invokes a service, through the resilience layer when one
// is attached (tallying retries and breaker trips into Stats), and
// directly otherwise — the exact seed behavior. With a trace attached
// each call gets a span carrying retry/breaker attributes; with a
// metrics registry attached its latency lands in "latency.svc.call".
func (ec *ExecCtx) callService(svc Service, args table.Tuple) ([]table.Tuple, error) {
	if ec.trace == nil && ec.metrics == nil {
		return ec.rawServiceCall(svc, args, nil)
	}
	sp := ec.StartSpan("svc.call:"+svc.Name(), "service")
	h := ec.metrics.Histogram("latency.svc.call")
	var start time.Time
	if h != nil {
		start = ec.now()
	}
	rows, err := ec.rawServiceCall(svc, args, sp)
	if h != nil {
		h.Observe(ec.now().Sub(start))
	}
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			sp.SetAttrInt("rows", int64(len(rows)))
		}
		sp.End()
	}
	return rows, err
}

func (ec *ExecCtx) rawServiceCall(svc Service, args table.Tuple, sp *obs.Span) ([]table.Tuple, error) {
	if ec.res == nil {
		return svc.Call(args)
	}
	var rows []table.Tuple
	out, err := ec.res.Do(ec.ctx, svc.Name(), func() error {
		var callErr error
		rows, callErr = svc.Call(args)
		return callErr
	})
	stats := ec.Stats()
	stats.Retries.Add(int64(out.Retries))
	if out.Tripped {
		stats.BreakerTrips.Add(1)
	}
	if sp != nil {
		if out.Retries > 0 {
			sp.SetAttrInt("retries", int64(out.Retries))
		}
		if out.Tripped {
			sp.SetAttr("breaker", "tripped")
		}
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Err reports why the execution should stop: context cancellation,
// deadline, or an exhausted row budget. nil means keep going.
func (ec *ExecCtx) Err() error {
	if err := ec.ctx.Err(); err != nil {
		return err
	}
	if ec.maxRows > 0 && ec.rows != nil && ec.rows.Load() > ec.maxRows {
		return ErrRowBudget
	}
	return nil
}

// checkEvery is a cheap periodic cancellation probe for tight loops: it
// only consults the context every 1024th iteration.
func (ec *ExecCtx) checkEvery(i int) error {
	if i&1023 != 0 {
		return nil
	}
	return ec.Err()
}

// opDone records an operator invocation and enforces the row budget.
func (ec *ExecCtx) opDone(op string, rowsIn, rowsOut int) error {
	ec.stats.record(op, rowsIn, rowsOut)
	if ec.maxRows > 0 && ec.rows != nil && ec.rows.Add(int64(rowsOut)) > ec.maxRows {
		return fmt.Errorf("%w (limit %d)", ErrRowBudget, ec.maxRows)
	}
	return nil
}

// lookupService consults the shared cache, then the per-execution memo.
// It does not count the hit; the caller tallies stats.
func (ec *ExecCtx) lookupService(key string, local map[string][]table.Tuple) ([]table.Tuple, bool) {
	if ec.noMemo {
		return nil, false
	}
	if ec.cache != nil {
		if rows, ok := ec.cache.lookup(key); ok {
			return rows, true
		}
	}
	rows, ok := local[key]
	return rows, ok
}

// storeService records a service answer in the shared cache (if any) and
// the per-execution memo.
func (ec *ExecCtx) storeService(key string, local map[string][]table.Tuple, rows []table.Tuple) {
	if ec.noMemo {
		return
	}
	if ec.cache != nil {
		ec.cache.store(key, rows)
	}
	local[key] = rows
}
