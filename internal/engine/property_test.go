package engine

// Property tests on the engine's provenance invariants: every derived
// tuple's provenance must mention exactly the base tuples it came from,
// regardless of the data — the guarantee the feedback loop relies on.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"copycat/internal/provenance"
	"copycat/internal/table"
)

// randRel builds a small relation from fuzz bytes.
func randRel(name string, keys []uint8, width int) *table.Relation {
	cols := make([]string, width)
	for i := range cols {
		cols[i] = fmt.Sprintf("%s_c%d", name, i)
	}
	cols[0] = "K" // shared join column name
	r := table.NewRelation(name, table.NewSchema(cols...))
	for _, k := range keys {
		row := make([]string, width)
		row[0] = fmt.Sprint(k % 8) // small key domain → real join matches
		for i := 1; i < width; i++ {
			row[i] = fmt.Sprintf("%s-%d-%d", name, k, i)
		}
		r.MustAppend(table.FromStrings(row))
	}
	return r
}

func TestJoinProvenanceExactlyTwoLeavesProperty(t *testing.T) {
	f := func(ks1, ks2 []uint8) bool {
		l := randRel("L", ks1, 2)
		r := randRel("R", ks2, 2)
		j, err := NewHashJoinByName(NewScan(l), NewScan(r), [][2]string{{"K", "K"}})
		if err != nil {
			return false
		}
		res, err := j.Execute(Background())
		if err != nil {
			return false
		}
		for _, a := range res.Rows {
			leaves := a.Prov.Leaves(nil)
			if len(leaves) != 2 {
				return false
			}
			// One leaf per side.
			srcs := provenance.Sources(a.Prov)
			if len(srcs) != 2 || srcs[0] != "L" || srcs[1] != "R" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestJoinCardinalityMatchesNestedLoopProperty(t *testing.T) {
	f := func(ks1, ks2 []uint8) bool {
		l := randRel("L", ks1, 2)
		r := randRel("R", ks2, 2)
		want := 0
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				if lr[0].Equal(rr[0]) {
					want++
				}
			}
		}
		j, _ := NewHashJoinByName(NewScan(l), NewScan(r), [][2]string{{"K", "K"}})
		res, err := j.Execute(Background())
		return err == nil && len(res.Rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestUnionProvenancePreservesAllLeavesProperty(t *testing.T) {
	// Every base tuple contributes exactly one leaf somewhere in the
	// union's provenance (duplicates merge via ⊕, never drop).
	f := func(ks1, ks2 []uint8) bool {
		a := randRel("A", ks1, 2)
		b := randRel("B", ks2, 2)
		u := &Union{Inputs: []Plan{NewScan(a), NewScan(b)}}
		res, err := u.Execute(Background())
		if err != nil {
			return false
		}
		total := 0
		for _, row := range res.Rows {
			total += len(row.Prov.Leaves(nil))
		}
		return total == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDistinctLosslessProperty(t *testing.T) {
	// Distinct never loses a distinct row, and merges all duplicates'
	// provenance.
	f := func(ks []uint8) bool {
		r := randRel("R", ks, 2)
		d := &Distinct{Input: NewScan(r)}
		res, err := d.Execute(Background())
		if err != nil {
			return false
		}
		distinct := map[string]bool{}
		for _, row := range r.Rows {
			distinct[row.Key()] = true
		}
		if len(res.Rows) != len(distinct) {
			return false
		}
		total := 0
		for _, row := range res.Rows {
			total += len(row.Prov.Leaves(nil))
		}
		return total == r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAggregateGroupCountInvariantProperty(t *testing.T) {
	// Sum of group counts equals input size; group provenance leaf count
	// equals group size.
	f := func(ks []uint8) bool {
		if len(ks) == 0 {
			return true
		}
		r := randRel("R", ks, 2)
		agg, err := NewAggregateByName(NewScan(r), []string{"K"}, "count")
		if err != nil {
			return false
		}
		res, err := agg.Execute(Background())
		if err != nil {
			return false
		}
		total := 0.0
		for _, row := range res.Rows {
			n := row.Row[1].Num()
			total += n
			if len(row.Prov.Leaves(nil)) != int(n) {
				return false
			}
		}
		return int(total) == r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestProjectSelectPreserveProvenanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		keys := make([]uint8, n)
		for i := range keys {
			keys[i] = uint8(rng.Intn(50))
		}
		r := randRel("R", keys, 3)
		sel := &Select{
			Input: NewScan(r),
			Pred:  func(row table.Tuple) bool { return row[0].Num() >= 3 },
			Desc:  "K≥3",
		}
		proj, err := NewProjectByName(sel, "R_c1")
		if err != nil {
			t.Fatal(err)
		}
		res, err := proj.Execute(Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Rows {
			leaves := a.Prov.Leaves(nil)
			if len(leaves) != 1 {
				t.Fatalf("project/select should keep single-leaf provenance, got %v", leaves)
			}
		}
	}
}
