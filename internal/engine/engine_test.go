package engine

import (
	"errors"
	"strings"
	"testing"

	"copycat/internal/provenance"
	"copycat/internal/table"
)

func shelters() *table.Relation {
	r := table.NewRelation("Shelters", table.NewSchema("Name", "Street", "City"))
	r.MustAppend(table.FromStrings([]string{"North High", "1200 NW 42nd Ave", "Coconut Creek"}))
	r.MustAppend(table.FromStrings([]string{"Creek Elem", "500 Ramblewood Dr", "Coconut Creek"}))
	r.MustAppend(table.FromStrings([]string{"Beach Middle", "901 NE 3rd St", "Pompano Beach"}))
	return r
}

func contacts() *table.Relation {
	r := table.NewRelation("Contacts", table.NewSchema("City", "Phone"))
	r.MustAppend(table.FromStrings([]string{"Coconut Creek", "555-0100"}))
	r.MustAppend(table.FromStrings([]string{"Pompano Beach", "555-0200"}))
	return r
}

// zipSvc is a toy zip-code resolver keyed on (Street, City).
type zipSvc struct {
	fail  bool
	calls int
}

func (z *zipSvc) Name() string { return "ZipResolver" }
func (z *zipSvc) InputSchema() table.Schema {
	return table.NewSchema("Street", "City")
}
func (z *zipSvc) OutputSchema() table.Schema { return table.NewSchema("Zip") }
func (z *zipSvc) Call(in table.Tuple) ([]table.Tuple, error) {
	z.calls++
	if z.fail {
		return nil, errors.New("service down")
	}
	switch in[1].Str() {
	case "Coconut Creek":
		return []table.Tuple{{table.S("33066")}}, nil
	case "Pompano Beach":
		return []table.Tuple{{table.S("33060")}}, nil
	}
	return nil, nil
}

func TestScanAnnotatesLeaves(t *testing.T) {
	res, err := NewScan(shelters()).Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[1].Prov.String() != "Shelters:1" {
		t.Errorf("prov = %s", res.Rows[1].Prov)
	}
	if res.Relation().Len() != 3 {
		t.Error("Relation() lost rows")
	}
}

func TestValues(t *testing.T) {
	v := &Values{Name: "W", Schema_: table.NewSchema("A"),
		Rows: []provenance.Annotated{{Row: table.Tuple{table.S("x")}, Prov: provenance.None{}}}}
	res, err := v.Execute(Background())
	if err != nil || len(res.Rows) != 1 || res.Name != "W" {
		t.Fatalf("values exec wrong: %v %v", res, err)
	}
	if !strings.Contains(v.String(), "W") {
		t.Error("String should name the relation")
	}
}

func TestSelect(t *testing.T) {
	p := &Select{
		Input: NewScan(shelters()),
		Pred:  func(r table.Tuple) bool { return r[2].Str() == "Coconut Creek" },
		Desc:  "City=Coconut Creek",
	}
	res, err := p.Execute(Background())
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("select: %v rows=%d", err, len(res.Rows))
	}
	if !strings.Contains(p.String(), "City=Coconut Creek") {
		t.Error("Select.String should include the description")
	}
}

func TestProjectByName(t *testing.T) {
	p, err := NewProjectByName(NewScan(shelters()), "City", "Name")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schema.Equal(table.NewSchema("City", "Name")) {
		t.Errorf("schema = %s", res.Schema)
	}
	if res.Rows[0].Row[0].Str() != "Coconut Creek" || res.Rows[0].Row[1].Str() != "North High" {
		t.Errorf("row = %v", res.Rows[0].Row.Texts())
	}
	// Provenance passes through projection.
	if res.Rows[0].Prov.String() != "Shelters:0" {
		t.Errorf("prov = %s", res.Rows[0].Prov)
	}
	if _, err := NewProjectByName(NewScan(shelters()), "Nope"); err == nil {
		t.Error("missing column should error")
	}
}

func TestRename(t *testing.T) {
	r := &Rename{Input: NewScan(shelters()), Name: "S2", Columns: []string{"", "Addr"}}
	res, err := r.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "S2" || res.Schema[0].Name != "Name" || res.Schema[1].Name != "Addr" {
		t.Errorf("rename wrong: %s %s", res.Name, res.Schema)
	}
	// Empty name keeps the input's.
	r2 := &Rename{Input: NewScan(shelters())}
	res2, _ := r2.Execute(Background())
	if res2.Name != "Shelters" {
		t.Error("empty rename should keep name")
	}
}

func TestHashJoin(t *testing.T) {
	j, err := NewHashJoinByName(NewScan(shelters()), NewScan(contacts()), [][2]string{{"City", "City"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d want 3", len(res.Rows))
	}
	// Output schema: Name Street City City_2 Phone (collision renamed).
	if res.Schema.Index("City_2") < 0 || res.Schema.Index("Phone") < 0 {
		t.Errorf("join schema = %s", res.Schema)
	}
	// Provenance is a Times of both sides.
	if res.Rows[0].Prov.String() != "(Shelters:0 * Contacts:0)" {
		t.Errorf("join prov = %s", res.Rows[0].Prov)
	}
	if _, err := NewHashJoinByName(NewScan(shelters()), NewScan(contacts()), [][2]string{{"Nope", "City"}}); err == nil {
		t.Error("bad join column should error")
	}
	if _, err := NewHashJoinByName(NewScan(shelters()), NewScan(contacts()), nil); err == nil {
		t.Error("empty join columns should error")
	}
}

func TestDependentJoin(t *testing.T) {
	svc := &zipSvc{}
	dj, err := NewDependentJoinByName(NewScan(shelters()), svc, "Street", "City")
	if err != nil {
		t.Fatal(err)
	}
	res, err := dj.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	zipIdx := res.Schema.Index("Zip")
	if zipIdx < 0 {
		t.Fatalf("no Zip column: %s", res.Schema)
	}
	if res.Rows[0].Row[zipIdx].Str() != "33066" || res.Rows[2].Row[zipIdx].Str() != "33060" {
		t.Errorf("zips wrong: %v", res.Rows[0].Row.Texts())
	}
	// Provenance mentions the service.
	srcs := provenance.Sources(res.Rows[0].Prov)
	if len(srcs) != 2 || srcs[1] != "ZipResolver" {
		t.Errorf("prov sources = %v", srcs)
	}
	if _, err := NewDependentJoinByName(NewScan(shelters()), svc, "Street"); err == nil {
		t.Error("wrong input arity should error")
	}
	if _, err := NewDependentJoinByName(NewScan(shelters()), svc, "Street", "Nope"); err == nil {
		t.Error("missing column should error")
	}
}

func TestDependentJoinCachesPerBinding(t *testing.T) {
	svc := &zipSvc{}
	// Two shelters share (different street) — no cache hits there, but
	// duplicate rows do hit the cache.
	rel := table.NewRelation("R", table.NewSchema("Street", "City"))
	rel.MustAppend(table.FromStrings([]string{"1 Main", "Coconut Creek"}))
	rel.MustAppend(table.FromStrings([]string{"1 Main", "Coconut Creek"}))
	dj, _ := NewDependentJoinByName(NewScan(rel), svc, "Street", "City")
	if _, err := dj.Execute(Background()); err != nil {
		t.Fatal(err)
	}
	if svc.calls != 1 {
		t.Errorf("service called %d times, want 1 (cached)", svc.calls)
	}
}

func TestDependentJoinOuterAndErrors(t *testing.T) {
	rel := table.NewRelation("R", table.NewSchema("Street", "City"))
	rel.MustAppend(table.FromStrings([]string{"9 Elm", "Unknown City"}))
	rel.MustAppend(table.Tuple{table.S("1 Oak"), table.Null()})
	svc := &zipSvc{}
	inner, _ := NewDependentJoinByName(NewScan(rel), svc, "Street", "City")
	res, err := inner.Execute(Background())
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("inner dependent join should drop unmatched rows: %d", len(res.Rows))
	}
	outer, _ := NewDependentJoinByName(NewScan(rel), svc, "Street", "City")
	outer.Outer = true
	res, err = outer.Execute(Background())
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("outer dependent join should keep rows: %d %v", len(res.Rows), err)
	}
	if !res.Rows[0].Row[2].IsNull() {
		t.Error("outer join should null-pad")
	}
	failing, _ := NewDependentJoinByName(NewScan(shelters()), &zipSvc{fail: true}, "Street", "City")
	if _, err := failing.Execute(Background()); err == nil {
		t.Error("service failure should propagate")
	}
}

func TestRecordLinkJoin(t *testing.T) {
	left := table.NewRelation("L", table.NewSchema("Name"))
	left.MustAppend(table.Tuple{table.S("North High School")})
	right := table.NewRelation("R", table.NewSchema("Contact", "Phone"))
	right.MustAppend(table.FromStrings([]string{"North High", "555-1"}))
	right.MustAppend(table.FromStrings([]string{"South Annex", "555-2"}))
	sim := func(a, b table.Tuple) float64 {
		if strings.Contains(a[0].Str(), b[0].Str()) || strings.Contains(b[0].Str(), a[0].Str()) {
			return 0.9
		}
		return 0.1
	}
	rl := &RecordLinkJoin{
		Left: NewScan(left), Right: NewScan(right),
		LeftCols: []int{0}, RightCols: []int{0},
		Sim: sim, Threshold: 0.5, BestOnly: true,
	}
	res, err := rl.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Row[2].Str() != "555-1" {
		t.Fatalf("record link wrong: %v", res.Rows)
	}
	if res.Rows[0].Prov.String() != "(L:0 * R:0)" {
		t.Errorf("prov = %s", res.Rows[0].Prov)
	}
	// Without BestOnly and low threshold, both match.
	rl.BestOnly = false
	rl.Threshold = 0.05
	res, _ = rl.Execute(Background())
	if len(res.Rows) != 2 {
		t.Errorf("non-best link should keep all above threshold: %d", len(res.Rows))
	}
}

func TestUnionMergesDuplicateProvenance(t *testing.T) {
	a := table.NewRelation("A", table.NewSchema("X"))
	a.MustAppend(table.Tuple{table.S("v")})
	b := table.NewRelation("B", table.NewSchema("X"))
	b.MustAppend(table.Tuple{table.S("v")})
	b.MustAppend(table.Tuple{table.S("w")})
	u := &Union{Inputs: []Plan{NewScan(a), NewScan(b)}}
	res, err := u.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("union rows = %d want 2 (dup merged)", len(res.Rows))
	}
	if res.Rows[0].Prov.String() != "(A:0 + B:0)" {
		t.Errorf("merged prov = %s", res.Rows[0].Prov)
	}
	// Arity mismatch errors.
	c := table.NewRelation("C", table.NewSchema("X", "Y"))
	c.MustAppend(table.FromStrings([]string{"1", "2"}))
	bad := &Union{Inputs: []Plan{NewScan(a), NewScan(c)}}
	if _, err := bad.Execute(Background()); err == nil {
		t.Error("union arity mismatch should error")
	}
	empty := &Union{}
	if res, err := empty.Execute(Background()); err != nil || len(res.Rows) != 0 {
		t.Error("empty union should be empty")
	}
}

func TestPadTo(t *testing.T) {
	target := table.NewSchema("Name", "Street", "City", "Zip")
	p := PadTo(NewScan(contacts()), target) // Contacts has City, Phone
	res, err := p.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schema.Equal(target) {
		t.Errorf("pad schema = %s", res.Schema)
	}
	row := res.Rows[0].Row
	if !row[0].IsNull() || row[2].Str() != "Coconut Creek" || !row[3].IsNull() {
		t.Errorf("pad row = %v", row.Texts())
	}
}

func TestDistinct(t *testing.T) {
	a := table.NewRelation("A", table.NewSchema("X"))
	a.MustAppend(table.Tuple{table.S("v")})
	a.MustAppend(table.Tuple{table.S("v")})
	a.MustAppend(table.Tuple{table.S("w")})
	d := &Distinct{Input: NewScan(a)}
	res, err := d.Execute(Background())
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("distinct rows = %d", len(res.Rows))
	}
	if res.Rows[0].Prov.String() != "(A:0 + A:1)" {
		t.Errorf("distinct should merge provenance: %s", res.Rows[0].Prov)
	}
}

func TestLimit(t *testing.T) {
	l := &Limit{Input: NewScan(shelters()), N: 2}
	res, err := l.Execute(Background())
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
	l.N = 100
	res, _ = l.Execute(Background())
	if len(res.Rows) != 3 {
		t.Error("limit larger than input should keep all")
	}
}

func TestEndToEndDependentJoinPipeline(t *testing.T) {
	// The Figure 2 query: Shelters ⋈dep ZipResolver, projected to
	// Name, City, Zip, restricted to Coconut Creek.
	svc := &zipSvc{}
	dj, err := NewDependentJoinByName(NewScan(shelters()), svc, "Street", "City")
	if err != nil {
		t.Fatal(err)
	}
	sel := &Select{Input: dj, Pred: func(r table.Tuple) bool { return r[2].Str() == "Coconut Creek" }, Desc: "cc"}
	proj, err := NewProjectByName(sel, "Name", "City", "Zip")
	if err != nil {
		t.Fatal(err)
	}
	res, err := proj.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("pipeline rows = %d", len(res.Rows))
	}
	for _, a := range res.Rows {
		if a.Row[2].Str() != "33066" {
			t.Errorf("zip = %s", a.Row[2].Str())
		}
		srcs := provenance.Sources(a.Prov)
		if len(srcs) != 2 || srcs[0] != "Shelters" || srcs[1] != "ZipResolver" {
			t.Errorf("pipeline prov sources = %v", srcs)
		}
	}
	if !strings.Contains(proj.String(), "DepJoin[ZipResolver]") {
		t.Errorf("plan string = %s", proj.String())
	}
}

func TestPlanStrings(t *testing.T) {
	s := NewScan(shelters())
	plans := []Plan{
		s,
		&Select{Input: s, Pred: func(table.Tuple) bool { return true }, Desc: "all"},
		&Project{Input: s, Cols: []int{0}},
		&Rename{Input: s},
		&Distinct{Input: s},
		&Limit{Input: s, N: 1},
		&Union{Inputs: []Plan{s, s}},
		PadTo(s, table.NewSchema("Name")),
		&RecordLinkJoin{Left: s, Right: s, Sim: func(a, b table.Tuple) float64 { return 0 }},
	}
	for _, p := range plans {
		if p.String() == "" {
			t.Errorf("%T has empty String()", p)
		}
		if p.Schema() == nil && len(p.Schema()) != 0 {
			t.Errorf("%T has nil schema", p)
		}
	}
}

func TestValuesSchemaAndJoinString(t *testing.T) {
	v := &Values{Name: "W", Schema_: table.NewSchema("A", "B")}
	if !v.Schema().Equal(table.NewSchema("A", "B")) {
		t.Error("Values.Schema wrong")
	}
	j, err := NewHashJoinByName(NewScan(shelters()), NewScan(contacts()), [][2]string{{"City", "City"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), "Join") {
		t.Errorf("join string = %s", j.String())
	}
	dj, _ := NewDependentJoinByName(NewScan(shelters()), &zipSvc{}, "Street", "City")
	if dj.Schema().Index("Zip") < 0 {
		t.Error("dependent join schema missing service outputs")
	}
}
