package engine

import (
	"strings"
	"testing"

	"copycat/internal/table"
)

func capRel() *table.Relation {
	r := table.NewRelation("Caps", table.Schema{
		{Name: "City", Kind: table.KindString},
		{Name: "Capacity", Kind: table.KindNumber},
	})
	r.MustAppend(table.Tuple{table.S("Coconut Creek"), table.N(100)})
	r.MustAppend(table.Tuple{table.S("Coconut Creek"), table.N(300)})
	r.MustAppend(table.Tuple{table.S("Pompano Beach"), table.N(50)})
	return r
}

func TestAggregateCountSumAvg(t *testing.T) {
	agg, err := NewAggregateByName(NewScan(capRel()), []string{"City"}, "count", "sum(Capacity)", "avg(Capacity)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Groups preserve first-seen order.
	cc := res.Rows[0].Row
	if cc[0].Str() != "Coconut Creek" || cc[1].Num() != 2 || cc[2].Num() != 400 || cc[3].Num() != 200 {
		t.Errorf("coconut creek row = %v", cc.Texts())
	}
	pb := res.Rows[1].Row
	if pb[1].Num() != 1 || pb[2].Num() != 50 {
		t.Errorf("pompano row = %v", pb.Texts())
	}
	// Output schema: City, count, sum_Capacity, avg_Capacity.
	if res.Schema[1].Name != "count" || res.Schema[2].Name != "sum_Capacity" {
		t.Errorf("schema = %s", res.Schema)
	}
	// Provenance: the two-member group merges both base tuples.
	if res.Rows[0].Prov.String() != "(Caps:0 + Caps:1)" {
		t.Errorf("group prov = %s", res.Rows[0].Prov)
	}
	if !strings.Contains(agg.String(), "count") {
		t.Error("String should list aggregates")
	}
}

func TestAggregateMinMax(t *testing.T) {
	agg, err := NewAggregateByName(NewScan(capRel()), []string{"City"}, "min(Capacity)", "max(Capacity)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	cc := res.Rows[0].Row
	if cc[1].Num() != 100 || cc[2].Num() != 300 {
		t.Errorf("min/max = %v", cc.Texts())
	}
	// Min/max keep the input column's kind.
	if res.Schema[1].Kind != table.KindNumber {
		t.Error("min kind wrong")
	}
}

func TestAggregateGlobalGroup(t *testing.T) {
	// No group-by columns: one global group.
	agg, err := NewAggregateByName(NewScan(capRel()), nil, "count", "sum(Capacity)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Execute(Background())
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("global group rows = %d err %v", len(res.Rows), err)
	}
	if res.Rows[0].Row[0].Num() != 3 || res.Rows[0].Row[1].Num() != 450 {
		t.Errorf("global aggregates = %v", res.Rows[0].Row.Texts())
	}
}

func TestAggregateNonNumericAvg(t *testing.T) {
	r := table.NewRelation("R", table.NewSchema("K", "V"))
	r.MustAppend(table.FromStrings([]string{"a", "not-a-number"}))
	agg, err := NewAggregateByName(NewScan(r), []string{"K"}, "avg(V)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Execute(Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0].Row[1].IsNull() {
		t.Error("avg of non-numeric should be null")
	}
	// But numeric-looking strings do aggregate.
	r2 := table.NewRelation("R2", table.NewSchema("K", "V"))
	r2.MustAppend(table.FromStrings([]string{"a", "10"}))
	r2.MustAppend(table.Tuple{table.S("a"), table.S(" 20 ")})
	agg2, _ := NewAggregateByName(NewScan(r2), []string{"K"}, "sum(V)")
	res2, _ := agg2.Execute(Background())
	if res2.Rows[0].Row[1].Num() != 30 {
		t.Errorf("string-number sum = %v", res2.Rows[0].Row.Texts())
	}
}

func TestAggregateErrors(t *testing.T) {
	scan := NewScan(capRel())
	if _, err := NewAggregateByName(scan, []string{"Nope"}, "count"); err == nil {
		t.Error("bad group column should error")
	}
	if _, err := NewAggregateByName(scan, nil, "sum(Nope)"); err == nil {
		t.Error("bad agg column should error")
	}
	if _, err := NewAggregateByName(scan, nil, "median(Capacity)"); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := NewAggregateByName(scan, nil, "garbage"); err == nil {
		t.Error("malformed expression should error")
	}
	if _, err := NewAggregateByName(scan, nil); err == nil {
		t.Error("no aggregates should error")
	}
}

func TestAggFuncString(t *testing.T) {
	for f, want := range map[AggFunc]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggAvg: "avg",
	} {
		if f.String() != want {
			t.Errorf("%d = %q", f, f.String())
		}
	}
	if !strings.Contains(AggFunc(9).String(), "9") {
		t.Error("unknown func should embed number")
	}
}
