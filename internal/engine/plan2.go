package engine

import (
	"fmt"
	"strings"

	"copycat/internal/provenance"
	"copycat/internal/resilience"
	"copycat/internal/table"
)

// ---------------------------------------------------------------- DependentJoin

// DependentJoin feeds selected input columns to a service per row and
// appends the service's outputs (§2.1's Zipcode Resolver example; the
// green-arrow dependent join of Figure 2). Rows with no service answer are
// dropped unless Outer is set, in which case outputs are null-padded.
type DependentJoin struct {
	Input     Plan
	Svc       Service
	InputCols []int // positions in Input's schema feeding Svc, in Svc input order
	Outer     bool
}

// NewDependentJoinByName binds a service's inputs to named input columns.
func NewDependentJoinByName(input Plan, svc Service, cols ...string) (*DependentJoin, error) {
	want := svc.InputSchema()
	if len(cols) != len(want) {
		return nil, fmt.Errorf("engine: dependent join: service %s needs %d inputs, got %d", svc.Name(), len(want), len(cols))
	}
	sch := input.Schema()
	dj := &DependentJoin{Input: input, Svc: svc}
	for _, n := range cols {
		i := sch.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("engine: dependent join: no column %q in %s", n, sch)
		}
		dj.InputCols = append(dj.InputCols, i)
	}
	return dj, nil
}

// Schema implements Plan.
func (d *DependentJoin) Schema() table.Schema {
	return d.Input.Schema().Concat(d.Svc.OutputSchema())
}

// Execute implements Plan.
//
// Service calls dominate the latency of the F2/E6 paths, so lookups are
// memoized: per execution always, and across executions when the ExecCtx
// carries a shared ServiceCache. The context is consulted before every
// call — a cancelled or expired execution stops without touching the
// service again.
//
// When the ExecCtx carries a resilience layer, a call that still fails
// transiently after retries (or finds its breaker open) degrades only
// its own row — skipped, or null-padded under Outer — and is counted in
// Stats.DegradedRows and Result.Degraded; permanent errors fail the
// plan as before.
func (d *DependentJoin) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	in, err := d.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	outWidth := len(d.Svc.OutputSchema())
	out := &Result{Name: in.Name + "→" + d.Svc.Name(), Schema: d.Schema(), Degraded: in.Degraded}
	local := map[string][]table.Tuple{}
	stats := ec.Stats()
	// opHits/opCalls shadow the shared stats counters for this operator
	// alone: the span attrs must not pick up concurrent candidates'
	// traffic, or traces stop being deterministic.
	var opHits, opCalls int64
	if sp := ec.StartSpan("op.DepJoin:"+d.Svc.Name(), "operator"); sp != nil {
		// Nest the per-row service-call spans under this operator span.
		ec = ec.WithSpan(sp)
		defer func() {
			sp.SetAttrInt("rows_in", int64(len(in.Rows)))
			sp.SetAttrInt("rows_out", int64(len(out.Rows)))
			sp.SetAttrInt("cache_hits", opHits)
			sp.SetAttrInt("svc_calls", opCalls)
			sp.End()
		}()
	}
	for _, a := range in.Rows {
		if err := ec.Err(); err != nil {
			return nil, err
		}
		args := make(table.Tuple, len(d.InputCols))
		skip := false
		for i, c := range d.InputCols {
			if c < 0 || c >= len(a.Row) {
				return nil, fmt.Errorf("engine: dependent join: column %d out of range", c)
			}
			args[i] = a.Row[c]
			if a.Row[c].IsNull() {
				skip = true
			}
		}
		var answers []table.Tuple
		if !skip {
			key := d.Svc.Name() + "\x00" + args.Key()
			var hit bool
			if answers, hit = ec.lookupService(key, local); hit {
				stats.ServiceCacheHits.Add(1)
				opHits++
			} else {
				stats.ServiceCalls.Add(1)
				opCalls++
				res, callErr := ec.callService(d.Svc, args)
				if callErr != nil {
					// Degradation engages only under a resilience layer;
					// without one any error fails the plan, as before.
					if ec.Resilience() == nil || !resilience.Transient(callErr) {
						return nil, fmt.Errorf("engine: service %s: %w", d.Svc.Name(), callErr)
					}
					// Graceful degradation: a transient failure that
					// outlived its retries costs this row, not the plan.
					// The miss is not cached — a later refresh may succeed.
					stats.DegradedRows.Add(1)
					out.Degraded++
					if d.Outer {
						row := a.Row.Clone()
						for i := 0; i < outWidth; i++ {
							row = append(row, table.Null())
						}
						out.Rows = append(out.Rows, provenance.Annotated{Row: row, Prov: a.Prov})
					}
					continue
				}
				answers = res
				ec.storeService(key, local, answers)
			}
		}
		if len(answers) == 0 {
			if d.Outer {
				row := a.Row.Clone()
				for i := 0; i < outWidth; i++ {
					row = append(row, table.Null())
				}
				out.Rows = append(out.Rows, provenance.Annotated{Row: row, Prov: a.Prov})
			}
			continue
		}
		for _, ans := range answers {
			if len(ans) != outWidth {
				return nil, fmt.Errorf("engine: service %s returned arity %d, want %d", d.Svc.Name(), len(ans), outWidth)
			}
			row := append(a.Row.Clone(), ans...)
			leaf := provenance.Leaf{
				ID:     table.TupleID(fmt.Sprintf("%s:(%s)", d.Svc.Name(), strings.Join(args.Texts(), "|"))),
				Source: d.Svc.Name(),
			}
			out.Rows = append(out.Rows, provenance.Annotated{
				Row:  row,
				Prov: provenance.Join(a.Prov, leaf),
			})
		}
	}
	if err := ec.opDone("DepJoin", len(in.Rows), len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (d *DependentJoin) String() string {
	return fmt.Sprintf("DepJoin[%s]%v(%s)", d.Svc.Name(), d.InputCols, d.Input)
}

// ---------------------------------------------------------------- RecordLinkJoin

// Similarity scores how well two tuples (restricted to the chosen columns)
// refer to the same real-world entity; 0 = unrelated, 1 = identical.
type Similarity func(a, b table.Tuple) float64

// RecordLinkJoin is an approximate join: each left row is linked to the
// best-scoring right row(s) above Threshold (§1's contact-matching
// example). If BestOnly is set, only the argmax right row joins.
type RecordLinkJoin struct {
	Left, Right         Plan
	LeftCols, RightCols []int
	Sim                 Similarity // receives the restricted column tuples
	Threshold           float64
	BestOnly            bool
}

// Schema implements Plan.
func (r *RecordLinkJoin) Schema() table.Schema {
	return r.Left.Schema().Concat(r.Right.Schema())
}

// Execute implements Plan.
func (r *RecordLinkJoin) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	l, err := r.Left.Execute(ec)
	if err != nil {
		return nil, err
	}
	rr, err := r.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: l.Name + "≈" + rr.Name, Schema: r.Schema(), Degraded: l.Degraded + rr.Degraded}
	for li, la := range l.Rows {
		// The similarity scan is quadratic; honor cancellation per left row.
		if err := ec.checkEvery(li); err != nil {
			return nil, err
		}
		lkey, err := restrict(la.Row, r.LeftCols)
		if err != nil {
			return nil, err
		}
		best := -1.0
		var matches []provenance.Annotated
		for _, ra := range rr.Rows {
			rkey, err := restrict(ra.Row, r.RightCols)
			if err != nil {
				return nil, err
			}
			s := r.Sim(lkey, rkey)
			if s < r.Threshold {
				continue
			}
			ann := provenance.Annotated{
				Row:  append(la.Row.Clone(), ra.Row...),
				Prov: provenance.Join(la.Prov, ra.Prov),
			}
			if r.BestOnly {
				if s > best {
					best = s
					matches = matches[:0]
					matches = append(matches, ann)
				} else if s == best {
					matches = append(matches, ann)
				}
			} else {
				matches = append(matches, ann)
			}
		}
		out.Rows = append(out.Rows, matches...)
	}
	if err := ec.opDone("LinkJoin", len(l.Rows)+len(rr.Rows), len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func restrict(row table.Tuple, cols []int) (table.Tuple, error) {
	out := make(table.Tuple, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(row) {
			return nil, fmt.Errorf("engine: record link column %d out of range", c)
		}
		out[i] = row[c]
	}
	return out, nil
}

func (r *RecordLinkJoin) String() string {
	return fmt.Sprintf("LinkJoin[θ=%.2f](%s, %s)", r.Threshold, r.Left, r.Right)
}

// ---------------------------------------------------------------- Union

// Union concatenates inputs with identical arities; column names come from
// the first input. Duplicate rows are merged with their provenance
// combined by ⊕ — the semiring account of "this tuple has two
// derivations".
type Union struct {
	Inputs []Plan
}

// Schema implements Plan.
func (u *Union) Schema() table.Schema {
	if len(u.Inputs) == 0 {
		return nil
	}
	return u.Inputs[0].Schema()
}

// Execute implements Plan.
func (u *Union) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	if len(u.Inputs) == 0 {
		return &Result{Name: "union"}, nil
	}
	out := &Result{Name: "union", Schema: u.Schema()}
	index := map[string]int{} // tuple key -> position in out.Rows
	arity := len(out.Schema)
	rowsIn := 0
	for _, in := range u.Inputs {
		res, err := in.Execute(ec)
		if err != nil {
			return nil, err
		}
		rowsIn += len(res.Rows)
		out.Degraded += res.Degraded
		for i, a := range res.Rows {
			if err := ec.checkEvery(i); err != nil {
				return nil, err
			}
			if len(a.Row) != arity {
				return nil, fmt.Errorf("engine: union arity mismatch: %d vs %d", len(a.Row), arity)
			}
			k := a.Row.Key()
			if i, ok := index[k]; ok {
				out.Rows[i].Prov = provenance.Merge(out.Rows[i].Prov, a.Prov)
			} else {
				index[k] = len(out.Rows)
				out.Rows = append(out.Rows, a)
			}
		}
	}
	if err := ec.opDone("Union", rowsIn, len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (u *Union) String() string {
	s := "Union("
	for i, in := range u.Inputs {
		if i > 0 {
			s += ", "
		}
		s += in.String()
	}
	return s + ")"
}

// PadTo wraps a plan so its output matches a wider target schema, placing
// each input column under the target column with the same name and
// null-padding the rest. Union uses this to homogenize heterogeneous
// completions (§4.2: "extending the schema and padding with nulls as
// necessary to form a homogeneous schema").
func PadTo(input Plan, target table.Schema) Plan {
	return &pad{Input: input, Target: target}
}

type pad struct {
	Input  Plan
	Target table.Schema
}

func (p *pad) Schema() table.Schema { return p.Target }

func (p *pad) Execute(ec *ExecCtx) (*Result, error) {
	in, err := p.Input.Execute(ec.orBackground())
	if err != nil {
		return nil, err
	}
	mapping := make([]int, len(p.Target)) // target col -> input col or -1
	for i, c := range p.Target {
		mapping[i] = in.Schema.Index(c.Name)
	}
	out := &Result{Name: in.Name, Schema: p.Target, Degraded: in.Degraded}
	for _, a := range in.Rows {
		row := make(table.Tuple, len(p.Target))
		for i, m := range mapping {
			if m >= 0 && m < len(a.Row) {
				row[i] = a.Row[m]
			} else {
				row[i] = table.Null()
			}
		}
		out.Rows = append(out.Rows, provenance.Annotated{Row: row, Prov: a.Prov})
	}
	return out, nil
}

func (p *pad) String() string { return fmt.Sprintf("Pad(%s)", p.Input) }

// ---------------------------------------------------------------- Distinct

// Distinct removes duplicate rows, merging provenance with ⊕.
type Distinct struct {
	Input Plan
}

// Schema implements Plan.
func (d *Distinct) Schema() table.Schema { return d.Input.Schema() }

// Execute implements Plan.
func (d *Distinct) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	in, err := d.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: in.Name, Schema: in.Schema, Degraded: in.Degraded}
	index := map[string]int{}
	for i, a := range in.Rows {
		if err := ec.checkEvery(i); err != nil {
			return nil, err
		}
		k := a.Row.Key()
		if i, ok := index[k]; ok {
			out.Rows[i].Prov = provenance.Merge(out.Rows[i].Prov, a.Prov)
		} else {
			index[k] = len(out.Rows)
			out.Rows = append(out.Rows, a)
		}
	}
	if err := ec.opDone("Distinct", len(in.Rows), len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (d *Distinct) String() string { return fmt.Sprintf("Distinct(%s)", d.Input) }

// ---------------------------------------------------------------- Limit

// Limit keeps the first N rows.
type Limit struct {
	Input Plan
	N     int
}

// Schema implements Plan.
func (l *Limit) Schema() table.Schema { return l.Input.Schema() }

// Execute implements Plan.
func (l *Limit) Execute(ec *ExecCtx) (*Result, error) {
	in, err := l.Input.Execute(ec.orBackground())
	if err != nil {
		return nil, err
	}
	rows := in.Rows
	if l.N >= 0 && l.N < len(rows) {
		rows = rows[:l.N]
	}
	return &Result{Name: in.Name, Schema: in.Schema, Rows: rows, Degraded: in.Degraded}, nil
}

func (l *Limit) String() string { return fmt.Sprintf("Limit[%d](%s)", l.N, l.Input) }
