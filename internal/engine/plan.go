// Package engine implements CopyCat's query engine: a small in-memory
// relational executor in the style of the ORCHESTRA system (§2.3), whose
// distinguishing feature is that every result tuple is annotated with
// semiring how-provenance. The integration learner compiles its candidate
// queries into these plans; the workspace displays the results as
// auto-completions and uses the provenance to explain them and to route
// tuple-level feedback back to queries.
//
// Supported operators: scan, select, project, rename, hash join,
// dependent join (per-row service invocation), record-link join
// (similarity join), union, distinct, and limit.
package engine

import (
	"fmt"

	"copycat/internal/provenance"
	"copycat/internal/table"
)

// Service abstracts a callable source with input binding restrictions — a
// web form, geocoder, zip resolver, currency converter (§4: "Services can
// be modeled as relations that take input parameters"). Call receives the
// bound input values and returns zero or more output tuples containing
// only the service's output attributes.
type Service interface {
	// Name identifies the service in catalogs, provenance, and the
	// source graph.
	Name() string
	// InputSchema lists the required input attributes in call order.
	InputSchema() table.Schema
	// OutputSchema lists the produced output attributes.
	OutputSchema() table.Schema
	// Call invokes the service for one binding of the inputs.
	Call(inputs table.Tuple) ([]table.Tuple, error)
}

// Result is an executed relation: a schema plus provenance-annotated rows.
type Result struct {
	Name   string
	Schema table.Schema
	Rows   []provenance.Annotated
	// Degraded counts input rows anywhere in this result's plan whose
	// service lookups failed transiently after retries and were skipped
	// (or null-padded) instead of failing the plan. Non-zero means the
	// result is partial; the workspace surfaces it as a "partial
	// results (N rows degraded)" marker.
	Degraded int
}

// Relation strips provenance, yielding a plain table for display/export.
func (r *Result) Relation() *table.Relation {
	rel := table.NewRelation(r.Name, r.Schema.Clone())
	for _, a := range r.Rows {
		rel.Rows = append(rel.Rows, a.Row)
	}
	return rel
}

// Plan is a query plan node.
type Plan interface {
	// Schema is the output schema of the node.
	Schema() table.Schema
	// Execute evaluates the plan under an execution context, producing
	// annotated rows. Operators honor the context's deadline/cancellation
	// and row budget, and tally per-operator counters into its Stats. A
	// nil context is upgraded to Background; old call sites can use the
	// engine.Run compat helper.
	Execute(ec *ExecCtx) (*Result, error)
	// String renders a one-line description of the operator tree.
	String() string
}

// ---------------------------------------------------------------- Scan

// Scan reads a base relation, annotating row i with Leaf "<name>:<i>".
type Scan struct {
	Rel *table.Relation
}

// NewScan wraps a relation as a plan leaf.
func NewScan(rel *table.Relation) *Scan { return &Scan{Rel: rel} }

// Schema implements Plan.
func (s *Scan) Schema() table.Schema { return s.Rel.Schema }

// Execute implements Plan.
func (s *Scan) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	if err := ec.Err(); err != nil {
		return nil, err
	}
	res := &Result{Name: s.Rel.Name, Schema: s.Rel.Schema}
	for i, row := range s.Rel.Rows {
		res.Rows = append(res.Rows, provenance.Annotated{
			Row:  row,
			Prov: provenance.Leaf{ID: provenance.BaseID(s.Rel.Name, i), Source: s.Rel.Name},
		})
	}
	if err := ec.opDone("Scan", 0, len(res.Rows)); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Scan) String() string { return fmt.Sprintf("Scan(%s)", s.Rel.Name) }

// ---------------------------------------------------------------- Values

// Values is a pre-annotated in-memory input — e.g. the current workspace
// contents, whose rows already carry provenance from earlier queries.
type Values struct {
	Name    string
	Schema_ table.Schema
	Rows    []provenance.Annotated
}

// Schema implements Plan.
func (v *Values) Schema() table.Schema { return v.Schema_ }

// Execute implements Plan.
func (v *Values) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	if err := ec.Err(); err != nil {
		return nil, err
	}
	if err := ec.opDone("Values", 0, len(v.Rows)); err != nil {
		return nil, err
	}
	return &Result{Name: v.Name, Schema: v.Schema_, Rows: v.Rows}, nil
}

func (v *Values) String() string { return fmt.Sprintf("Values(%s,%d rows)", v.Name, len(v.Rows)) }

// ---------------------------------------------------------------- Select

// Select filters rows by a predicate.
type Select struct {
	Input Plan
	Pred  func(table.Tuple) bool
	Desc  string // human-readable predicate description
}

// Schema implements Plan.
func (s *Select) Schema() table.Schema { return s.Input.Schema() }

// Execute implements Plan.
func (s *Select) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	in, err := s.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: in.Name, Schema: in.Schema, Degraded: in.Degraded}
	for i, a := range in.Rows {
		if err := ec.checkEvery(i); err != nil {
			return nil, err
		}
		if s.Pred(a.Row) {
			out.Rows = append(out.Rows, a)
		}
	}
	if err := ec.opDone("Select", len(in.Rows), len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Select) String() string {
	return fmt.Sprintf("Select[%s](%s)", s.Desc, s.Input)
}

// ---------------------------------------------------------------- Project

// Project keeps the columns at the given input positions, in order.
type Project struct {
	Input Plan
	Cols  []int
}

// NewProjectByName builds a projection from column names; it errors if a
// name is missing from the input schema.
func NewProjectByName(input Plan, names ...string) (*Project, error) {
	sch := input.Schema()
	cols := make([]int, len(names))
	for i, n := range names {
		j := sch.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("engine: project: no column %q in %s", n, sch)
		}
		cols[i] = j
	}
	return &Project{Input: input, Cols: cols}, nil
}

// Schema implements Plan.
func (p *Project) Schema() table.Schema {
	in := p.Input.Schema()
	out := make(table.Schema, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = in[c]
	}
	return out
}

// Execute implements Plan.
func (p *Project) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	in, err := p.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: in.Name, Schema: p.Schema(), Degraded: in.Degraded}
	for _, a := range in.Rows {
		row := make(table.Tuple, len(p.Cols))
		for i, c := range p.Cols {
			if c < 0 || c >= len(a.Row) {
				return nil, fmt.Errorf("engine: project: column %d out of range (arity %d)", c, len(a.Row))
			}
			row[i] = a.Row[c]
		}
		out.Rows = append(out.Rows, provenance.Annotated{Row: row, Prov: a.Prov})
	}
	if err := ec.opDone("Project", len(in.Rows), len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Project) String() string { return fmt.Sprintf("Project%v(%s)", p.Cols, p.Input) }

// ---------------------------------------------------------------- Rename

// Rename relabels output columns (and optionally the relation name)
// without touching data.
type Rename struct {
	Input   Plan
	Name    string
	Columns []string // new names; empty string keeps the old name
}

// Schema implements Plan.
func (r *Rename) Schema() table.Schema {
	s := r.Input.Schema().Clone()
	for i := range s {
		if i < len(r.Columns) && r.Columns[i] != "" {
			s[i].Name = r.Columns[i]
		}
	}
	return s
}

// Execute implements Plan.
func (r *Rename) Execute(ec *ExecCtx) (*Result, error) {
	in, err := r.Input.Execute(ec.orBackground())
	if err != nil {
		return nil, err
	}
	name := r.Name
	if name == "" {
		name = in.Name
	}
	return &Result{Name: name, Schema: r.Schema(), Rows: in.Rows, Degraded: in.Degraded}, nil
}

func (r *Rename) String() string { return fmt.Sprintf("Rename(%s)", r.Input) }

// ---------------------------------------------------------------- Join

// HashJoin is an equijoin on one or more column pairs. The output schema
// is left ++ right (with collision renaming); matched rows' provenance is
// combined with ⊗.
type HashJoin struct {
	Left, Right         Plan
	LeftCols, RightCols []int
}

// NewHashJoinByName builds an equijoin from column-name pairs.
func NewHashJoinByName(left, right Plan, on [][2]string) (*HashJoin, error) {
	ls, rs := left.Schema(), right.Schema()
	j := &HashJoin{Left: left, Right: right}
	for _, pair := range on {
		li, ri := ls.Index(pair[0]), rs.Index(pair[1])
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("engine: join: columns %q/%q not found", pair[0], pair[1])
		}
		j.LeftCols = append(j.LeftCols, li)
		j.RightCols = append(j.RightCols, ri)
	}
	if len(j.LeftCols) == 0 {
		return nil, fmt.Errorf("engine: join: no join columns")
	}
	return j, nil
}

// Schema implements Plan.
func (j *HashJoin) Schema() table.Schema {
	return j.Left.Schema().Concat(j.Right.Schema())
}

// Execute implements Plan.
func (j *HashJoin) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	l, err := j.Left.Execute(ec)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	// Build hash table on the right.
	index := make(map[string][]provenance.Annotated, len(r.Rows))
	for i, a := range r.Rows {
		if err := ec.checkEvery(i); err != nil {
			return nil, err
		}
		k, err := joinKey(a.Row, j.RightCols)
		if err != nil {
			return nil, err
		}
		index[k] = append(index[k], a)
	}
	out := &Result{Name: l.Name + "⋈" + r.Name, Schema: j.Schema(), Degraded: l.Degraded + r.Degraded}
	for i, la := range l.Rows {
		if err := ec.checkEvery(i); err != nil {
			return nil, err
		}
		k, err := joinKey(la.Row, j.LeftCols)
		if err != nil {
			return nil, err
		}
		for _, ra := range index[k] {
			row := append(la.Row.Clone(), ra.Row...)
			out.Rows = append(out.Rows, provenance.Annotated{
				Row:  row,
				Prov: provenance.Join(la.Prov, ra.Prov),
			})
		}
	}
	if err := ec.opDone("HashJoin", len(l.Rows)+len(r.Rows), len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func joinKey(row table.Tuple, cols []int) (string, error) {
	key := make(table.Tuple, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(row) {
			return "", fmt.Errorf("engine: join column %d out of range (arity %d)", c, len(row))
		}
		key[i] = row[c]
	}
	return key.Key(), nil
}

func (j *HashJoin) String() string {
	return fmt.Sprintf("Join%v=%v(%s, %s)", j.LeftCols, j.RightCols, j.Left, j.Right)
}
