package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"copycat/internal/resilience"
	"copycat/internal/table"
)

// faultySvc resolves City→Zip but fails the first failPerKey attempts for
// each distinct input, transiently or permanently.
type faultySvc struct {
	failPerKey int
	permanent  bool
	calls      int
	attempts   map[string]int
}

func (s *faultySvc) Name() string              { return "FaultyZip" }
func (s *faultySvc) InputSchema() table.Schema { return table.NewSchema("City") }
func (s *faultySvc) OutputSchema() table.Schema {
	return table.NewSchema("Zip")
}
func (s *faultySvc) Call(in table.Tuple) ([]table.Tuple, error) {
	s.calls++
	if s.attempts == nil {
		s.attempts = map[string]int{}
	}
	k := in[0].Str()
	s.attempts[k]++
	if s.attempts[k] <= s.failPerKey {
		if s.permanent {
			return nil, resilience.MarkPermanent(errors.New("rejected"))
		}
		return nil, resilience.MarkTransient(errors.New("flaky"))
	}
	return []table.Tuple{{table.S("33000")}}, nil
}

func resilientCtx(maxAttempts int, bc resilience.BreakerConfig) *ExecCtx {
	caller := resilience.NewCaller(resilience.Policy{
		MaxAttempts: maxAttempts,
		Clock:       resilience.NewVirtualClock(),
		Seed:        1,
	}, bc)
	return NewExecCtx(context.Background(), WithResilience(caller))
}

func TestDependentJoinRetriesTransientFailures(t *testing.T) {
	svc := &faultySvc{failPerKey: 2}
	dj, err := NewDependentJoinByName(NewScan(contacts()), svc, "City")
	if err != nil {
		t.Fatal(err)
	}
	ec := resilientCtx(3, resilience.BreakerConfig{})
	res, err := dj.Execute(ec)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 2 || res.Degraded != 0 {
		t.Fatalf("rows=%d degraded=%d; retries should have recovered both rows", len(res.Rows), res.Degraded)
	}
	snap := ec.Stats().Snapshot()
	if snap.Retries != 4 { // 2 keys × 2 retries each
		t.Errorf("retries = %d want 4", snap.Retries)
	}
	if snap.DegradedRows != 0 {
		t.Errorf("degraded rows = %d want 0", snap.DegradedRows)
	}
}

func TestDependentJoinDegradesExhaustedRows(t *testing.T) {
	svc := &faultySvc{failPerKey: 1000} // never recovers
	dj, err := NewDependentJoinByName(NewScan(contacts()), svc, "City")
	if err != nil {
		t.Fatal(err)
	}
	ec := resilientCtx(2, resilience.BreakerConfig{FailureThreshold: 100})
	res, err := dj.Execute(ec)
	if err != nil {
		t.Fatalf("transient exhaustion must not fail the plan: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("inner join should drop degraded rows, got %d", len(res.Rows))
	}
	if res.Degraded != 2 {
		t.Errorf("Result.Degraded = %d want 2", res.Degraded)
	}
	if got := ec.Stats().Snapshot().DegradedRows; got != 2 {
		t.Errorf("Stats.DegradedRows = %d want 2", got)
	}
}

func TestDependentJoinOuterNullPadsDegradedRows(t *testing.T) {
	svc := &faultySvc{failPerKey: 1000}
	dj, err := NewDependentJoinByName(NewScan(contacts()), svc, "City")
	if err != nil {
		t.Fatal(err)
	}
	dj.Outer = true
	ec := resilientCtx(2, resilience.BreakerConfig{FailureThreshold: 100})
	res, err := dj.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Degraded != 2 {
		t.Fatalf("rows=%d degraded=%d; outer join should null-pad degraded rows", len(res.Rows), res.Degraded)
	}
	for _, a := range res.Rows {
		if !a.Row[len(a.Row)-1].IsNull() {
			t.Errorf("degraded outer row should have null service output, got %v", a.Row)
		}
	}
}

func TestDependentJoinPermanentErrorFailsPlan(t *testing.T) {
	svc := &faultySvc{failPerKey: 1000, permanent: true}
	dj, err := NewDependentJoinByName(NewScan(contacts()), svc, "City")
	if err != nil {
		t.Fatal(err)
	}
	_, err = dj.Execute(resilientCtx(3, resilience.BreakerConfig{}))
	if err == nil || !strings.Contains(err.Error(), "FaultyZip") {
		t.Fatalf("permanent errors must fail the plan, got %v", err)
	}
	if svc.calls != 1 {
		t.Errorf("permanent error retried: %d calls", svc.calls)
	}
}

func TestDependentJoinBreakerShortCircuits(t *testing.T) {
	rel := table.NewRelation("Cities", table.NewSchema("City"))
	for _, c := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		rel.MustAppend(table.FromStrings([]string{c}))
	}
	svc := &faultySvc{failPerKey: 1000}
	dj, err := NewDependentJoinByName(NewScan(rel), svc, "City")
	if err != nil {
		t.Fatal(err)
	}
	ec := resilientCtx(2, resilience.BreakerConfig{FailureThreshold: 3, Cooldown: 3600e9})
	res, err := dj.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 8 {
		t.Errorf("Degraded = %d want 8 (all rows)", res.Degraded)
	}
	// Without the breaker this would cost 8 rows × 2 attempts = 16 calls;
	// it opens after 3 consecutive failures and short-circuits the rest.
	if svc.calls >= 16 {
		t.Errorf("breaker never short-circuited: %d calls", svc.calls)
	}
	snap := ec.Stats().Snapshot()
	if snap.BreakerTrips == 0 {
		t.Error("expected at least one breaker trip in stats")
	}
}

func TestNilResilienceMatchesSeedBehavior(t *testing.T) {
	// Without a resilience layer any service error — even one marked
	// transient — fails the plan exactly as the seed engine did.
	svc := &faultySvc{failPerKey: 1000}
	dj, err := NewDependentJoinByName(NewScan(contacts()), svc, "City")
	if err != nil {
		t.Fatal(err)
	}
	_, err = dj.Execute(Background())
	if err == nil || !strings.Contains(err.Error(), "FaultyZip") {
		t.Fatalf("nil resilience should fail fast, got %v", err)
	}
	if svc.calls != 1 {
		t.Errorf("calls = %d want 1 (no retries without a caller)", svc.calls)
	}
}

func TestDegradedPropagatesThroughOperators(t *testing.T) {
	svc := &faultySvc{failPerKey: 1000}
	dj, err := NewDependentJoinByName(NewScan(contacts()), svc, "City")
	if err != nil {
		t.Fatal(err)
	}
	dj.Outer = true
	var plan Plan = &Distinct{Input: &Select{
		Input: dj,
		Pred:  func(table.Tuple) bool { return true },
		Desc:  "true",
	}}
	plan = &Limit{Input: plan, N: 10}
	res, err := plan.Execute(resilientCtx(1, resilience.BreakerConfig{FailureThreshold: 100}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 2 {
		t.Errorf("Degraded = %d want 2 after Select/Distinct/Limit", res.Degraded)
	}
}
