package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"copycat/internal/provenance"
	"copycat/internal/table"
)

// AggFunc enumerates aggregate functions (§5 lists aggregation among the
// "complex operations that are difficult to demonstrate"; the engine
// supports them directly so advanced users can request them, as the
// paper suggests).
type AggFunc uint8

const (
	// AggCount counts rows in the group.
	AggCount AggFunc = iota
	// AggSum sums a numeric column.
	AggSum
	// AggMin takes the minimum value.
	AggMin
	// AggMax takes the maximum value.
	AggMax
	// AggAvg averages a numeric column.
	AggAvg
)

// String names the function.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", uint8(f))
}

// AggSpec is one aggregate column: Func over input column Col (ignored
// for AggCount), labeled Name in the output.
type AggSpec struct {
	Func AggFunc
	Col  int
	Name string
}

// Aggregate groups rows by the GroupBy columns and computes the Aggs.
// Each output row's provenance is the ⊕ of its group members' — feedback
// on an aggregate traces back to every contributing tuple.
type Aggregate struct {
	Input   Plan
	GroupBy []int
	Aggs    []AggSpec
}

// NewAggregateByName builds an aggregation from column names; agg specs
// use "func(col)" or "count" strings, e.g. "count", "avg(Capacity)".
func NewAggregateByName(input Plan, groupBy []string, aggExprs ...string) (*Aggregate, error) {
	sch := input.Schema()
	a := &Aggregate{Input: input}
	for _, g := range groupBy {
		i := sch.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("engine: aggregate: no column %q", g)
		}
		a.GroupBy = append(a.GroupBy, i)
	}
	for _, expr := range aggExprs {
		spec, err := parseAggExpr(sch, expr)
		if err != nil {
			return nil, err
		}
		a.Aggs = append(a.Aggs, spec)
	}
	if len(a.Aggs) == 0 {
		return nil, fmt.Errorf("engine: aggregate: no aggregate columns")
	}
	return a, nil
}

func parseAggExpr(sch table.Schema, expr string) (AggSpec, error) {
	e := strings.TrimSpace(expr)
	if e == "count" || e == "count()" || e == "count(*)" {
		return AggSpec{Func: AggCount, Col: -1, Name: "count"}, nil
	}
	open := strings.IndexByte(e, '(')
	if open < 0 || !strings.HasSuffix(e, ")") {
		return AggSpec{}, fmt.Errorf("engine: aggregate: bad expression %q", expr)
	}
	fn := strings.ToLower(e[:open])
	col := strings.TrimSpace(e[open+1 : len(e)-1])
	i := sch.Index(col)
	if i < 0 {
		return AggSpec{}, fmt.Errorf("engine: aggregate: no column %q", col)
	}
	var f AggFunc
	switch fn {
	case "sum":
		f = AggSum
	case "min":
		f = AggMin
	case "max":
		f = AggMax
	case "avg":
		f = AggAvg
	default:
		return AggSpec{}, fmt.Errorf("engine: aggregate: unknown function %q", fn)
	}
	return AggSpec{Func: f, Col: i, Name: fn + "_" + col}, nil
}

// Schema implements Plan.
func (a *Aggregate) Schema() table.Schema {
	in := a.Input.Schema()
	out := make(table.Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		out = append(out, in[g])
	}
	for _, spec := range a.Aggs {
		kind := table.KindNumber
		if spec.Func == AggMin || spec.Func == AggMax {
			if spec.Col >= 0 && spec.Col < len(in) {
				kind = in[spec.Col].Kind
			}
		}
		out = append(out, table.Column{Name: spec.Name, Kind: kind})
	}
	return out
}

// group accumulates one group's state.
type aggGroup struct {
	key   table.Tuple
	prov  provenance.Expr
	count int
	sums  []float64
	nums  []int // numeric contributions per agg
	mins  []table.Value
	maxs  []table.Value
	order int
}

// Execute implements Plan.
func (a *Aggregate) Execute(ec *ExecCtx) (*Result, error) {
	ec = ec.orBackground()
	in, err := a.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	groups := map[string]*aggGroup{}
	var order []*aggGroup
	for ri, row := range in.Rows {
		if err := ec.checkEvery(ri); err != nil {
			return nil, err
		}
		key := make(table.Tuple, len(a.GroupBy))
		for i, g := range a.GroupBy {
			if g < 0 || g >= len(row.Row) {
				return nil, fmt.Errorf("engine: aggregate: group column %d out of range", g)
			}
			key[i] = row.Row[g]
		}
		k := key.Key()
		grp, ok := groups[k]
		if !ok {
			grp = &aggGroup{
				key:  key,
				sums: make([]float64, len(a.Aggs)),
				nums: make([]int, len(a.Aggs)),
				mins: make([]table.Value, len(a.Aggs)),
				maxs: make([]table.Value, len(a.Aggs)),
			}
			groups[k] = grp
			grp.order = len(order)
			order = append(order, grp)
		}
		grp.count++
		grp.prov = provenance.Merge(grp.prov, row.Prov)
		for i, spec := range a.Aggs {
			if spec.Col < 0 {
				continue
			}
			if spec.Col >= len(row.Row) {
				return nil, fmt.Errorf("engine: aggregate: column %d out of range", spec.Col)
			}
			v := row.Row[spec.Col]
			if f, ok := numeric(v); ok {
				grp.sums[i] += f
				grp.nums[i]++
			}
			switch spec.Func {
			case AggMin:
				if grp.mins[i].IsNull() || v.Compare(grp.mins[i]) < 0 {
					grp.mins[i] = v
				}
			case AggMax:
				if grp.maxs[i].IsNull() || v.Compare(grp.maxs[i]) > 0 {
					grp.maxs[i] = v
				}
			}
		}
	}
	out := &Result{Name: in.Name + "γ", Schema: a.Schema(), Degraded: in.Degraded}
	for _, grp := range order {
		row := grp.key.Clone()
		for i, spec := range a.Aggs {
			switch spec.Func {
			case AggCount:
				row = append(row, table.N(float64(grp.count)))
			case AggSum:
				row = append(row, table.N(grp.sums[i]))
			case AggAvg:
				if grp.nums[i] == 0 {
					row = append(row, table.Null())
				} else {
					row = append(row, table.N(round6(grp.sums[i]/float64(grp.nums[i]))))
				}
			case AggMin:
				row = append(row, grp.mins[i])
			case AggMax:
				row = append(row, grp.maxs[i])
			}
		}
		out.Rows = append(out.Rows, provenance.Annotated{Row: row, Prov: grp.prov})
	}
	if err := ec.opDone("Aggregate", len(in.Rows), len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func numeric(v table.Value) (float64, bool) {
	switch v.Kind() {
	case table.KindNumber:
		return v.Num(), true
	case table.KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64)
		return f, err == nil
	}
	return 0, false
}

func round6(f float64) float64 { return math.Round(f*1e6) / 1e6 }

func (a *Aggregate) String() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		parts[i] = s.Name
	}
	return fmt.Sprintf("Aggregate%v[%s](%s)", a.GroupBy, strings.Join(parts, ","), a.Input)
}
