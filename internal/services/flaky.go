package services

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"copycat/internal/engine"
	"copycat/internal/resilience"
	"copycat/internal/table"
)

// FaultConfig tunes a FlakyService wrapper. All randomness is derived by
// hashing (Seed, service name, input key, attempt), so the same
// configuration produces the same fault pattern regardless of call order
// — the parallel candidate executor sees the same faults as a serial run.
type FaultConfig struct {
	// Seed selects the fault pattern.
	Seed int64
	// TransientRate is the probability in [0,1] that a call fails with a
	// transient error. Retries of the same inputs draw fresh values, so a
	// retry can succeed.
	TransientRate float64
	// BaseLatency is added to every call on the Clock.
	BaseLatency time.Duration
	// LatencySpikeRate is the probability of a slow call, which takes
	// LatencySpike instead of BaseLatency.
	LatencySpikeRate float64
	LatencySpike     time.Duration
	// Outage, when set, fails every call transiently — a hard outage that
	// drives circuit breakers open.
	Outage bool
	// Clock receives the injected latency (Sleep). Nil disables latency
	// injection entirely; no wall-clock sleeps ever happen.
	Clock resilience.Clock
}

// FlakyService wraps an engine.Service with deterministic fault
// injection: seeded transient-error and latency-spike rates plus hard
// outages. It exists so resilience behavior can be tested and measured
// (the scpbench faults experiment) without nondeterministic flakiness.
// Safe for concurrent use.
type FlakyService struct {
	inner engine.Service
	cfg   FaultConfig

	mu       sync.Mutex
	attempts map[string]int // input key -> call count, for fresh per-retry draws
	calls    int64
	faults   int64
}

// NewFlakyService wraps a service with the given fault configuration.
func NewFlakyService(inner engine.Service, cfg FaultConfig) *FlakyService {
	return &FlakyService{inner: inner, cfg: cfg, attempts: map[string]int{}}
}

// Name implements engine.Service, delegating to the wrapped service.
func (f *FlakyService) Name() string { return f.inner.Name() }

// InputSchema implements engine.Service.
func (f *FlakyService) InputSchema() table.Schema { return f.inner.InputSchema() }

// OutputSchema implements engine.Service.
func (f *FlakyService) OutputSchema() table.Schema { return f.inner.OutputSchema() }

// unit derives a uniform value in [0,1) from the fault seed, the service
// name, the input key, the per-key attempt number, and a salt that keeps
// the latency and error draws independent.
func (f *FlakyService) unit(key string, attempt int, salt string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%s", f.cfg.Seed, f.inner.Name(), key, attempt, salt)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Call implements engine.Service: injects latency and faults per the
// config, then delegates to the wrapped service.
func (f *FlakyService) Call(in table.Tuple) ([]table.Tuple, error) {
	key := in.Key()
	f.mu.Lock()
	f.attempts[key]++
	attempt := f.attempts[key]
	f.calls++
	f.mu.Unlock()

	if f.cfg.Clock != nil {
		lat := f.cfg.BaseLatency
		if f.cfg.LatencySpikeRate > 0 && f.unit(key, attempt, "lat") < f.cfg.LatencySpikeRate {
			lat = f.cfg.LatencySpike
		}
		if lat > 0 {
			f.cfg.Clock.Sleep(lat)
		}
	}
	if f.cfg.Outage {
		f.fault()
		return nil, resilience.MarkTransient(fmt.Errorf("services: %s: injected outage", f.inner.Name()))
	}
	if f.cfg.TransientRate > 0 && f.unit(key, attempt, "err") < f.cfg.TransientRate {
		f.fault()
		return nil, resilience.MarkTransient(fmt.Errorf("services: %s: injected transient failure", f.inner.Name()))
	}
	return f.inner.Call(in)
}

func (f *FlakyService) fault() {
	f.mu.Lock()
	f.faults++
	f.mu.Unlock()
}

// Calls counts total invocations (including faulted ones).
func (f *FlakyService) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Faults counts injected failures.
func (f *FlakyService) Faults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// WrapFlaky wraps every service in the slice with the same fault config.
func WrapFlaky(svcs []engine.Service, cfg FaultConfig) []engine.Service {
	out := make([]engine.Service, len(svcs))
	for i, s := range svcs {
		out[i] = NewFlakyService(s, cfg)
	}
	return out
}
