package services

import (
	"math"
	"testing"

	"copycat/internal/table"
	"copycat/internal/webworld"
)

func world() *webworld.World { return webworld.Generate(webworld.DefaultConfig()) }

func TestZipResolverExactAndFallback(t *testing.T) {
	w := world()
	svc := NewZipResolver(w)
	s := w.Shelters[0]
	out, err := svc.Call(table.Tuple{table.S(s.Street), table.S(s.City)})
	if err != nil || len(out) != 1 || out[0][0].Str() != s.Zip {
		t.Fatalf("exact zip lookup: %v %v", out, err)
	}
	// Unknown street in a known city falls back to the city's primary zip.
	out, err = svc.Call(table.Tuple{table.S("1 Nowhere Ln"), table.S(s.City)})
	if err != nil || len(out) != 1 || out[0][0].Str() != w.CityByName(s.City).Zips[0] {
		t.Errorf("fallback zip lookup: %v %v", out, err)
	}
	// Unknown city yields nothing.
	out, _ = svc.Call(table.Tuple{table.S("1 X"), table.S("Atlantis")})
	if len(out) != 0 {
		t.Error("unknown city should yield no answer")
	}
	// Case/whitespace-insensitive keys.
	out, _ = svc.Call(table.Tuple{table.S("  " + s.Street + "  "), table.S(s.City)})
	if len(out) != 1 {
		t.Error("lookup should normalize whitespace")
	}
	// Wrong arity errors.
	if _, err := svc.Call(table.Tuple{table.S("x")}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestZipResolverSchemas(t *testing.T) {
	svc := NewZipResolver(world())
	if svc.Name() != "Zipcode Resolver" {
		t.Error("name wrong")
	}
	in := svc.InputSchema()
	if len(in) != 2 || in[0].SemType != "PR-Street" || in[1].SemType != "PR-City" {
		t.Errorf("input schema = %s", in)
	}
	out := svc.OutputSchema()
	if len(out) != 1 || out[0].SemType != "PR-Zip" {
		t.Errorf("output schema = %s", out)
	}
}

func TestGeocoder(t *testing.T) {
	w := world()
	svc := NewGeocoder(w)
	s := w.Shelters[3]
	out, err := svc.Call(table.Tuple{table.S(s.Street), table.S(s.City)})
	if err != nil || len(out) != 1 {
		t.Fatalf("geocode: %v %v", out, err)
	}
	if math.Abs(out[0][0].Num()-s.Lat) > 0.001 || math.Abs(out[0][1].Num()-s.Lon) > 0.001 {
		t.Errorf("geocode = %v want (%f,%f)", out[0].Texts(), s.Lat, s.Lon)
	}
	// City fallback returns the centroid.
	c := w.CityByName(s.City)
	out, _ = svc.Call(table.Tuple{table.S("1 Nowhere"), table.S(s.City)})
	if len(out) != 1 || math.Abs(out[0][0].Num()-c.Lat) > 0.001 {
		t.Error("city centroid fallback wrong")
	}
}

func TestShelterLocatorAmbiguity(t *testing.T) {
	w := world()
	svc := NewShelterLocator(w)
	// Find a shelter name that occurs in more than one city, if any.
	counts := map[string]int{}
	for _, s := range w.Shelters {
		counts[s.Name]++
	}
	for _, s := range w.Shelters {
		out, err := svc.Call(table.Tuple{table.S(s.Name)})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != counts[s.Name] {
			t.Errorf("locator(%s) = %d answers want %d", s.Name, len(out), counts[s.Name])
		}
	}
	out, _ := svc.Call(table.Tuple{table.S("Nonexistent Hall")})
	if len(out) != 0 {
		t.Error("unknown name should return nothing")
	}
}

func TestReverseDirectory(t *testing.T) {
	w := world()
	svc := NewReverseDirectory(w)
	c := w.Contacts[0]
	out, err := svc.Call(table.Tuple{table.S(c.Phone)})
	if err != nil || len(out) == 0 || out[0][0].Str() != c.Person {
		t.Errorf("reverse directory: %v %v", out, err)
	}
	out, _ = svc.Call(table.Tuple{table.S("000-000-0000")})
	if len(out) != 0 {
		t.Error("unknown phone should return nothing")
	}
}

func TestCurrencyConverter(t *testing.T) {
	svc := NewCurrencyConverter()
	out, err := svc.Call(table.Tuple{table.N(100), table.S("USD"), table.S("EUR")})
	if err != nil || len(out) != 1 || out[0][0].Num() != 68 {
		t.Fatalf("usd→eur: %v %v", out, err)
	}
	// Round trip through rates.
	out, _ = svc.Call(table.Tuple{table.N(68), table.S("EUR"), table.S("USD")})
	if math.Abs(out[0][0].Num()-100) > 0.01 {
		t.Errorf("eur→usd: %v", out[0].Texts())
	}
	// String amounts parse; case-insensitive codes.
	out, err = svc.Call(table.Tuple{table.S("50"), table.S("usd"), table.S("gbp")})
	if err != nil || out[0][0].Num() != 27 {
		t.Errorf("string amount: %v %v", out, err)
	}
	// Unknown currency yields nothing; garbage amount errors.
	if out, _ := svc.Call(table.Tuple{table.N(1), table.S("XYZ"), table.S("USD")}); len(out) != 0 {
		t.Error("unknown currency should yield nothing")
	}
	if _, err := svc.Call(table.Tuple{table.S("abc"), table.S("USD"), table.S("EUR")}); err == nil {
		t.Error("non-numeric amount should error")
	}
	if _, err := svc.Call(table.Tuple{table.B(true), table.S("USD"), table.S("EUR")}); err == nil {
		t.Error("bool amount should error")
	}
}

func TestUnitConverter(t *testing.T) {
	svc := NewUnitConverter()
	cases := []struct {
		v        float64
		from, to string
		want     float64
	}{
		{1, "km", "m", 1000},
		{1, "mi", "km", 1.6093},
		{12, "in", "ft", 1},
		{1, "kg", "lb", 2.2046},
		{16, "oz", "lb", 1},
	}
	for _, c := range cases {
		out, err := svc.Call(table.Tuple{table.N(c.v), table.S(c.from), table.S(c.to)})
		if err != nil || len(out) != 1 {
			t.Fatalf("%s→%s: %v %v", c.from, c.to, out, err)
		}
		if math.Abs(out[0][0].Num()-c.want) > 0.001 {
			t.Errorf("%v %s→%s = %v want %v", c.v, c.from, c.to, out[0][0].Num(), c.want)
		}
	}
	// Cross-dimension (length→weight) yields nothing.
	if out, _ := svc.Call(table.Tuple{table.N(1), table.S("m"), table.S("kg")}); len(out) != 0 {
		t.Error("cross-dimension should yield nothing")
	}
	if out, _ := svc.Call(table.Tuple{table.N(1), table.S("furlong"), table.S("m")}); len(out) != 0 {
		t.Error("unknown unit should yield nothing")
	}
}

func TestBuiltinLibrary(t *testing.T) {
	svcs := Builtin(world())
	if len(svcs) != 6 {
		t.Fatalf("builtin count = %d", len(svcs))
	}
	names := map[string]bool{}
	for _, s := range svcs {
		if s.Name() == "" || len(s.OutputSchema()) == 0 {
			t.Errorf("service %q malformed", s.Name())
		}
		names[s.Name()] = true
	}
	for _, want := range []string{"Zipcode Resolver", "Geocoder", "Shelter Locator", "Reverse Directory", "Currency Converter", "Unit Converter"} {
		if !names[want] {
			t.Errorf("missing builtin %q", want)
		}
	}
}
