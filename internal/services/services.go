// Package services implements CopyCat's predefined service library (§4:
// "Predefined services include record-linking functions, address
// resolution, geocoding, and currency and unit conversion"). Each service
// satisfies engine.Service — a relation with input binding restrictions —
// and is backed by the synthetic webworld instead of the live Google/Yahoo
// endpoints the paper demoed against.
package services

import (
	"fmt"
	"strconv"
	"strings"

	"copycat/internal/engine"
	"copycat/internal/table"
	"copycat/internal/webworld"
)

// Func is a generic service implementation: schemas plus a lookup
// function. All builtin services are Funcs.
type Func struct {
	SvcName string
	In, Out table.Schema
	Lookup  func(table.Tuple) ([]table.Tuple, error)
}

// Name implements engine.Service.
func (f *Func) Name() string { return f.SvcName }

// InputSchema implements engine.Service.
func (f *Func) InputSchema() table.Schema { return f.In }

// OutputSchema implements engine.Service.
func (f *Func) OutputSchema() table.Schema { return f.Out }

// Call implements engine.Service.
func (f *Func) Call(in table.Tuple) ([]table.Tuple, error) {
	if len(in) != len(f.In) {
		return nil, fmt.Errorf("services: %s: got %d inputs, want %d", f.SvcName, len(in), len(f.In))
	}
	return f.Lookup(in)
}

func normKey(parts ...string) string {
	for i, p := range parts {
		parts[i] = strings.ToLower(strings.Join(strings.Fields(p), " "))
	}
	return strings.Join(parts, "\x1f")
}

func schemaWithTypes(pairs ...[2]string) table.Schema {
	s := make(table.Schema, len(pairs))
	for i, p := range pairs {
		s[i] = table.Column{Name: p[0], Kind: table.KindString, SemType: p[1]}
	}
	return s
}

// NewZipResolver resolves (Street, City) to the zip code — the service
// suggested as the Zip column auto-completion in Figure 2.
func NewZipResolver(w *webworld.World) *Func {
	index := map[string]string{}
	cityDefault := map[string]string{}
	for _, s := range w.Shelters {
		index[normKey(s.Street, s.City)] = s.Zip
	}
	for _, c := range w.Cities {
		cityDefault[normKey(c.Name)] = c.Zips[0]
	}
	return &Func{
		SvcName: "Zipcode Resolver",
		In:      schemaWithTypes([2]string{"Street", "PR-Street"}, [2]string{"City", "PR-City"}),
		Out:     schemaWithTypes([2]string{"Zip", "PR-Zip"}),
		Lookup: func(in table.Tuple) ([]table.Tuple, error) {
			if z, ok := index[normKey(in[0].Str(), in[1].Str())]; ok {
				return []table.Tuple{{table.S(z)}}, nil
			}
			// Fall back to the city's primary zip, as real resolvers do
			// for unknown street numbers.
			if z, ok := cityDefault[normKey(in[1].Str())]; ok {
				return []table.Tuple{{table.S(z)}}, nil
			}
			return nil, nil
		},
	}
}

// NewGeocoder resolves (Street, City) to latitude/longitude.
func NewGeocoder(w *webworld.World) *Func {
	type geo struct{ lat, lon float64 }
	index := map[string]geo{}
	cityCentroid := map[string]geo{}
	for _, s := range w.Shelters {
		index[normKey(s.Street, s.City)] = geo{s.Lat, s.Lon}
	}
	for _, c := range w.Cities {
		cityCentroid[normKey(c.Name)] = geo{c.Lat, c.Lon}
	}
	return &Func{
		SvcName: "Geocoder",
		In:      schemaWithTypes([2]string{"Street", "PR-Street"}, [2]string{"City", "PR-City"}),
		Out:     schemaWithTypes([2]string{"Lat", "PR-Lat"}, [2]string{"Lon", "PR-Lon"}),
		Lookup: func(in table.Tuple) ([]table.Tuple, error) {
			if g, ok := index[normKey(in[0].Str(), in[1].Str())]; ok {
				return []table.Tuple{{table.N(round4(g.lat)), table.N(round4(g.lon))}}, nil
			}
			if g, ok := cityCentroid[normKey(in[1].Str())]; ok {
				return []table.Tuple{{table.N(round4(g.lat)), table.N(round4(g.lon))}}, nil
			}
			return nil, nil
		},
	}
}

func round4(f float64) float64 {
	s := strconv.FormatFloat(f, 'f', 4, 64)
	out, _ := strconv.ParseFloat(s, 64)
	return out
}

// NewShelterLocator resolves a shelter name to its address. Because the
// same institution name can exist in several cities, a lookup may return
// multiple answers — the ambiguity the paper's Example 1 calls out ("the
// shelter name may be ambiguous and might return multiple answers").
func NewShelterLocator(w *webworld.World) *Func {
	index := map[string][]table.Tuple{}
	for _, s := range w.Shelters {
		k := normKey(s.Name)
		index[k] = append(index[k], table.Tuple{table.S(s.Street), table.S(s.City)})
	}
	return &Func{
		SvcName: "Shelter Locator",
		In:      schemaWithTypes([2]string{"Name", "PR-OrgName"}),
		Out:     schemaWithTypes([2]string{"Street", "PR-Street"}, [2]string{"City", "PR-City"}),
		Lookup: func(in table.Tuple) ([]table.Tuple, error) {
			return index[normKey(in[0].Str())], nil
		},
	}
}

// NewReverseDirectory resolves a phone number to the person it belongs to
// (§2.3: "a phone number might be looked up in a reverse directory to
// find a person").
func NewReverseDirectory(w *webworld.World) *Func {
	index := map[string][]table.Tuple{}
	for _, c := range w.Contacts {
		index[normKey(c.Phone)] = append(index[normKey(c.Phone)], table.Tuple{table.S(c.Person)})
	}
	return &Func{
		SvcName: "Reverse Directory",
		In:      schemaWithTypes([2]string{"Phone", "PR-Phone"}),
		Out:     schemaWithTypes([2]string{"Person", "PR-PersonName"}),
		Lookup: func(in table.Tuple) ([]table.Tuple, error) {
			return index[normKey(in[0].Str())], nil
		},
	}
}

// currencyRates is a fixed table of USD exchange rates (2008-era values;
// the paper's service library includes currency conversion).
var currencyRates = map[string]float64{
	"USD": 1.0, "EUR": 0.68, "GBP": 0.54, "JPY": 103.0, "CAD": 1.06, "MXN": 11.1,
}

// NewCurrencyConverter converts (Amount, From, To) → Converted.
func NewCurrencyConverter() *Func {
	return &Func{
		SvcName: "Currency Converter",
		In: schemaWithTypes([2]string{"Amount", "PR-Amount"},
			[2]string{"From", "PR-Currency"}, [2]string{"To", "PR-Currency"}),
		Out: schemaWithTypes([2]string{"Converted", "PR-Amount"}),
		Lookup: func(in table.Tuple) ([]table.Tuple, error) {
			amt, err := amountOf(in[0])
			if err != nil {
				return nil, err
			}
			from, ok1 := currencyRates[strings.ToUpper(strings.TrimSpace(in[1].Str()))]
			to, ok2 := currencyRates[strings.ToUpper(strings.TrimSpace(in[2].Str()))]
			if !ok1 || !ok2 {
				return nil, nil
			}
			return []table.Tuple{{table.N(round4(amt / from * to))}}, nil
		},
	}
}

// unitFactors maps supported length/weight units to a base unit.
var unitFactors = map[string]float64{
	"m": 1, "km": 1000, "cm": 0.01, "mi": 1609.344, "ft": 0.3048, "in": 0.0254,
	"kg": 1, "g": 0.001, "lb": 0.45359237, "oz": 0.028349523125,
}

// unitDim distinguishes incompatible dimensions.
var unitDim = map[string]string{
	"m": "len", "km": "len", "cm": "len", "mi": "len", "ft": "len", "in": "len",
	"kg": "wt", "g": "wt", "lb": "wt", "oz": "wt",
}

// NewUnitConverter converts (Value, FromUnit, ToUnit) → Converted for
// length and weight units. Cross-dimension requests return no answer.
func NewUnitConverter() *Func {
	return &Func{
		SvcName: "Unit Converter",
		In: schemaWithTypes([2]string{"Value", "PR-Amount"},
			[2]string{"FromUnit", "PR-Unit"}, [2]string{"ToUnit", "PR-Unit"}),
		Out: schemaWithTypes([2]string{"Converted", "PR-Amount"}),
		Lookup: func(in table.Tuple) ([]table.Tuple, error) {
			v, err := amountOf(in[0])
			if err != nil {
				return nil, err
			}
			fu := strings.ToLower(strings.TrimSpace(in[1].Str()))
			tu := strings.ToLower(strings.TrimSpace(in[2].Str()))
			if unitDim[fu] == "" || unitDim[fu] != unitDim[tu] {
				return nil, nil
			}
			return []table.Tuple{{table.N(round4(v * unitFactors[fu] / unitFactors[tu]))}}, nil
		},
	}
}

func amountOf(v table.Value) (float64, error) {
	switch v.Kind() {
	case table.KindNumber:
		return v.Num(), nil
	case table.KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64)
		if err != nil {
			return 0, fmt.Errorf("services: not a number: %q", v.Str())
		}
		return f, nil
	}
	return 0, fmt.Errorf("services: not a number: %s", v.Kind())
}

// Builtin returns the full predefined service library for a world, in the
// order the paper lists them.
func Builtin(w *webworld.World) []engine.Service {
	return []engine.Service{
		NewZipResolver(w),
		NewGeocoder(w),
		NewShelterLocator(w),
		NewReverseDirectory(w),
		NewCurrencyConverter(),
		NewUnitConverter(),
	}
}
