package services

import (
	"testing"
	"time"

	"copycat/internal/resilience"
	"copycat/internal/table"
	"copycat/internal/webworld"
)

func testWorld(t *testing.T) *webworld.World {
	t.Helper()
	return webworld.Generate(webworld.Config{Seed: 3, Cities: 4, SheltersPerCity: 3})
}

func locatorInput(w *webworld.World) table.Tuple {
	return table.Tuple{table.S(w.Shelters[0].Name)}
}

func TestFlakyServiceIsDeterministicAcrossInstances(t *testing.T) {
	w := testWorld(t)
	cfg := FaultConfig{Seed: 11, TransientRate: 0.5}
	a := NewFlakyService(NewShelterLocator(w), cfg)
	b := NewFlakyService(NewShelterLocator(w), cfg)
	for i := 0; i < 40; i++ {
		in := table.Tuple{table.S(w.Shelters[i%len(w.Shelters)].Name)}
		_, errA := a.Call(in)
		_, errB := b.Call(in)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("call %d diverged: %v vs %v", i, errA, errB)
		}
	}
	if a.Faults() != b.Faults() {
		t.Fatalf("fault counts diverged: %d vs %d", a.Faults(), b.Faults())
	}
}

func TestFlakyServiceApproximatesConfiguredRate(t *testing.T) {
	w := testWorld(t)
	f := NewFlakyService(NewShelterLocator(w), FaultConfig{Seed: 5, TransientRate: 0.3})
	in := locatorInput(w)
	n := 2000
	for i := 0; i < n; i++ {
		_, _ = f.Call(in) // each call is a new attempt → a fresh draw
	}
	rate := float64(f.Faults()) / float64(n)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("observed fault rate %.3f, want ≈0.3", rate)
	}
}

func TestFlakyServiceRetriesDrawFresh(t *testing.T) {
	// With a 60% rate, 12 attempts on the same key should see both
	// outcomes — retries must not be doomed to repeat the first draw.
	w := testWorld(t)
	f := NewFlakyService(NewShelterLocator(w), FaultConfig{Seed: 2, TransientRate: 0.6})
	in := locatorInput(w)
	var ok, fail int
	for i := 0; i < 12; i++ {
		if _, err := f.Call(in); err != nil {
			if !resilience.Transient(err) {
				t.Fatalf("injected fault must be transient: %v", err)
			}
			fail++
		} else {
			ok++
		}
	}
	if ok == 0 || fail == 0 {
		t.Errorf("12 attempts all agreed (ok=%d fail=%d); retries are not drawing fresh", ok, fail)
	}
}

func TestFlakyServiceOutage(t *testing.T) {
	w := testWorld(t)
	f := NewFlakyService(NewShelterLocator(w), FaultConfig{Seed: 1, Outage: true})
	for i := 0; i < 5; i++ {
		if _, err := f.Call(locatorInput(w)); err == nil || !resilience.Transient(err) {
			t.Fatalf("outage must fail transiently, got %v", err)
		}
	}
	if f.Calls() != 5 || f.Faults() != 5 {
		t.Errorf("calls=%d faults=%d want 5/5", f.Calls(), f.Faults())
	}
}

func TestFlakyServiceInjectsVirtualLatency(t *testing.T) {
	w := testWorld(t)
	clock := resilience.NewVirtualClock()
	f := NewFlakyService(NewShelterLocator(w), FaultConfig{
		Seed:             9,
		BaseLatency:      2 * time.Millisecond,
		LatencySpikeRate: 0.5,
		LatencySpike:     200 * time.Millisecond,
		Clock:            clock,
	})
	t0 := clock.Now()
	n := 50
	for i := 0; i < n; i++ {
		in := table.Tuple{table.S(w.Shelters[i%len(w.Shelters)].Name)}
		if _, err := f.Call(in); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clock.Now().Sub(t0)
	min := time.Duration(n) * 2 * time.Millisecond
	if elapsed < min {
		t.Errorf("elapsed %v < base latency floor %v", elapsed, min)
	}
	if elapsed < 200*time.Millisecond {
		t.Errorf("elapsed %v; expected at least one latency spike", elapsed)
	}
	// Pass-through sanity: the wrapped service still answers.
	rows, err := f.Call(locatorInput(w))
	if err == nil && len(rows) == 0 {
		t.Error("wrapped locator returned no rows for a known shelter")
	}
}
