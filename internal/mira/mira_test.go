package mira

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultsAndCost(t *testing.T) {
	l := New(1.0)
	if l.Weight("e1") != 1.0 {
		t.Error("unseen feature should have default weight")
	}
	if c := l.Cost([]string{"a", "b", "c"}); c != 3 {
		t.Errorf("cost = %f", c)
	}
	if l.Cost(nil) != 0 {
		t.Error("empty query costs 0")
	}
}

func TestSingleUpdateFixesRanking(t *testing.T) {
	// The §5 claim at its smallest: one item of feedback re-ranks a
	// single query pair.
	l := New(1.0)
	good := []string{"e1", "e2"} // cost 2
	bad := []string{"e3"}        // cost 1 — currently ranked better
	c := Constraint{Preferred: good, Other: bad}
	if !l.Violated(c) {
		t.Fatal("constraint should start violated")
	}
	if !l.Update(c) {
		t.Fatal("update should fire")
	}
	if l.Violated(c) {
		t.Error("one update should satisfy the constraint")
	}
	if l.Cost(good)+DefaultMargin > l.Cost(bad)+1e-9 {
		t.Errorf("margin not achieved: good=%f bad=%f", l.Cost(good), l.Cost(bad))
	}
	// Second update is passive.
	if l.Update(c) {
		t.Error("satisfied constraint should not update")
	}
}

func TestUpdateOnlyTouchesDifferingFeatures(t *testing.T) {
	l := New(1.0)
	shared := "shared-edge"
	c := Constraint{
		Preferred: []string{shared, "good-edge"},
		Other:     []string{shared, "bad-edge"},
	}
	l.Update(c)
	if l.Weight(shared) != 1.0 {
		t.Errorf("shared feature moved: %f", l.Weight(shared))
	}
	if l.Weight("good-edge") >= 1.0 {
		t.Error("preferred-only feature should get cheaper")
	}
	if l.Weight("bad-edge") <= 1.0 {
		t.Error("dispreferred-only feature should get dearer")
	}
}

func TestIdenticalQueriesCannotSeparate(t *testing.T) {
	l := New(1.0)
	c := Constraint{Preferred: []string{"x"}, Other: []string{"x"}}
	if l.Update(c) {
		t.Error("identical feature multisets should be a no-op")
	}
}

func TestWeightFloor(t *testing.T) {
	l := New(0.05)
	// Repeatedly push a feature downward.
	for i := 0; i < 50; i++ {
		l.Update(Constraint{Preferred: []string{"cheap"}, Other: []string{"exp"}, Margin: 10})
	}
	if l.Weight("cheap") < l.MinFloor {
		t.Errorf("weight sank below floor: %f", l.Weight("cheap"))
	}
}

func TestAggressivenessCap(t *testing.T) {
	l := New(1.0)
	l.C = 0.01
	l.Update(Constraint{Preferred: []string{"a"}, Other: []string{"b"}, Margin: 100})
	// With τ capped at 0.01, weights move at most 0.01.
	if l.Weight("b") > 1.02 {
		t.Errorf("cap ignored: %f", l.Weight("b"))
	}
}

func TestUpdateBatchConverges(t *testing.T) {
	l := New(1.0)
	cs := []Constraint{
		{Preferred: []string{"a", "b"}, Other: []string{"c"}},
		{Preferred: []string{"a"}, Other: []string{"d", "e"}},
		{Preferred: []string{"b"}, Other: []string{"c", "d"}},
	}
	n := l.UpdateBatch(cs, 100)
	if n == 0 {
		t.Fatal("batch should apply updates")
	}
	for i, c := range cs {
		if l.Violated(c) {
			t.Errorf("constraint %d still violated after batch", i)
		}
	}
	if l.UpdateBatch(cs, 100) != 0 {
		t.Error("second batch should be a no-op")
	}
}

func TestUpdateSatisfiesConstraintProperty(t *testing.T) {
	// Property: after Update, any separable constraint with default margin
	// is satisfied (when the floor doesn't bind).
	f := func(goodRaw, badRaw []uint8) bool {
		l := New(1.0)
		l.MinFloor = -1e9 // disable the floor for the pure PA property
		var good, bad []string
		for _, g := range goodRaw {
			good = append(good, string(rune('a'+g%20)))
		}
		for _, b := range badRaw {
			bad = append(bad, string(rune('a'+b%20)))
		}
		c := Constraint{Preferred: good, Other: bad}
		changed := l.Update(c)
		if !changed {
			return true // not separable or already satisfied
		}
		return !l.Violated(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotAndString(t *testing.T) {
	l := New(1.0)
	l.Update(Constraint{Preferred: []string{"a"}, Other: []string{"b"}})
	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	snap["a"] = 99
	if l.Weight("a") == 99 {
		t.Error("snapshot should be a copy")
	}
	s := l.String()
	if !strings.Contains(s, "a=") || !strings.Contains(s, "b=") {
		t.Errorf("String = %s", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	l := New(1.0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := string(rune('a' + i))
			l.Update(Constraint{Preferred: []string{f}, Other: []string{f + "x"}})
			l.Cost([]string{f})
			l.Snapshot()
		}(i)
	}
	wg.Wait()
}

func TestRepeatedFeatureCounts(t *testing.T) {
	// A feature used twice in one query counts twice in φ.
	l := New(1.0)
	c := Constraint{Preferred: []string{"a"}, Other: []string{"a", "a"}}
	// cost(Other)-cost(Preferred) = 1 ≥ margin 0.5 already: passive.
	if l.Update(c) {
		t.Error("already satisfied")
	}
	// Satisfying this one needs w(a) ≤ -0.25; with the default floor it
	// stays clamped (update fires but cannot fully separate)...
	c2 := Constraint{Preferred: []string{"a", "a", "a"}, Other: []string{"a"}, Margin: 0.5}
	if !l.Update(c2) {
		t.Fatal("should update")
	}
	if !l.Violated(c2) {
		t.Error("floor should prevent full separation here")
	}
	// ...and with the floor lifted, the same constraint becomes satisfiable.
	l2 := New(1.0)
	l2.MinFloor = -10
	if !l2.Update(c2) {
		t.Fatal("should update")
	}
	if l2.Violated(c2) {
		t.Error("still violated without floor")
	}
}

// TestClampedNoProgressReturnsFalse is a regression test: Update used to
// return true after the MinFloor clamp even when the clamp absorbed the
// whole step, so UpdateBatch saw phantom progress and burned its entire
// epoch budget re-applying a no-op.
func TestClampedNoProgressReturnsFalse(t *testing.T) {
	l := New(1.0)
	// Satisfying this needs w(e) ≤ −0.5, below the floor: unsatisfiable.
	c := Constraint{Preferred: []string{"e"}, Margin: 0.5}
	if !l.Update(c) {
		t.Fatal("first update moves w(e) down to the floor: real progress")
	}
	if l.Update(c) {
		t.Error("second update is fully clamped: no progress, must return false")
	}
}

func TestUpdateBatchConvergesOnFloorBoundConstraint(t *testing.T) {
	l := New(1.0)
	cs := []Constraint{{Preferred: []string{"e"}, Margin: 0.5}}
	updates := l.UpdateBatch(cs, 1000)
	if updates > 2 {
		t.Errorf("floor-bound constraint should converge immediately, got %d updates", updates)
	}
	// A clamped-but-progressing mix still converges to satisfied: the
	// other feature carries the separation the floored one cannot.
	l2 := New(1.0)
	cs2 := []Constraint{{Preferred: []string{"a"}, Other: []string{"b"}, Margin: 0.5}}
	l2.UpdateBatch(cs2, 1000)
	if l2.Violated(cs2[0]) {
		t.Error("satisfiable constraint should end satisfied")
	}
}
