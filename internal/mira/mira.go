// Package mira implements the MIRA online learning algorithm ([7], §4.2)
// as CopyCat uses it: query costs are sums of independent feature weights
// (one feature per source-graph edge), user feedback induces ranking
// constraints between queries, and each update changes weights only on
// the features where the two queries differ — by the minimal amount that
// satisfies the constraint (passive-aggressive).
package mira

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Constraint demands cost(Preferred) + Margin ≤ cost(Other): the user
// accepted Preferred's results (or rejected Other's).
type Constraint struct {
	Preferred []string // feature (edge) IDs of the preferred query
	Other     []string // feature IDs of the dispreferred query
	Margin    float64  // required cost separation (default DefaultMargin)
}

// DefaultMargin separates re-ranked queries enough that small later
// updates don't immediately flip them back.
const DefaultMargin = 0.5

// Learner holds the feature weights. A zero-valued default (see New) is
// the source graph's DefaultCost for unseen features.
type Learner struct {
	mu       sync.RWMutex
	weights  map[string]float64
	def      float64 // weight of a feature never updated
	C        float64 // aggressiveness cap (0 = uncapped)
	MinFloor float64 // weights never drop below this (keeps Steiner costs ≥ 0)
}

// New creates a learner whose unseen features default to def.
func New(def float64) *Learner {
	return &Learner{weights: map[string]float64{}, def: def, MinFloor: 0.01}
}

// SetWeight seeds or overrides a feature's weight directly — used to
// initialize the learner from externally assigned edge costs (e.g. a
// schema matcher's confidence scores, §4.1).
func (l *Learner) SetWeight(f string, w float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.weights[f] = w
}

// Weight returns a feature's current weight.
func (l *Learner) Weight(f string) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if w, ok := l.weights[f]; ok {
		return w
	}
	return l.def
}

// Cost sums the weights of a query's features — the additive cost model
// shared with the Steiner machinery.
func (l *Learner) Cost(features []string) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	c := 0.0
	for _, f := range features {
		if w, ok := l.weights[f]; ok {
			c += w
		} else {
			c += l.def
		}
	}
	return c
}

// Violated reports whether a constraint is currently violated.
func (l *Learner) Violated(c Constraint) bool {
	margin := c.Margin
	if margin == 0 {
		margin = DefaultMargin
	}
	// Small tolerance: a passive-aggressive update lands exactly on the
	// margin, which must count as satisfied.
	return l.Cost(c.Other)-l.Cost(c.Preferred) < margin-1e-9
}

// Update applies one passive-aggressive step for the constraint. It
// returns true if weights changed. Only features appearing a different
// number of times in the two queries move (§4.2: "It adjusts weights only
// on edges that differ between the graphs").
func (l *Learner) Update(c Constraint) bool {
	margin := c.Margin
	if margin == 0 {
		margin = DefaultMargin
	}
	// φ = count(Other) − count(Preferred) per feature; want w·φ ≥ margin.
	phi := map[string]float64{}
	for _, f := range c.Other {
		phi[f]++
	}
	for _, f := range c.Preferred {
		phi[f]--
	}
	for f, v := range phi {
		if v == 0 {
			delete(phi, f)
		}
	}
	if len(phi) == 0 {
		return false // identical queries cannot be separated
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	dot, norm := 0.0, 0.0
	for f, v := range phi {
		w, ok := l.weights[f]
		if !ok {
			w = l.def
		}
		dot += w * v
		norm += v * v
	}
	loss := margin - dot
	if loss <= 0 {
		return false // already satisfied (passive)
	}
	tau := loss / norm
	if l.C > 0 && tau > l.C {
		tau = l.C
	}
	clamped := false
	newDot := 0.0
	for f, v := range phi {
		w, ok := l.weights[f]
		if !ok {
			w = l.def
		}
		w += tau * v
		if w < l.MinFloor {
			w = l.MinFloor
			clamped = true
		}
		l.weights[f] = w
		newDot += w * v
	}
	// The MinFloor clamp can absorb the whole step, leaving the
	// constraint as violated as before. Reporting true then would be
	// phantom progress: UpdateBatch would spin through its entire epoch
	// budget re-applying a no-op. Only claim a change when the margin
	// actually moved.
	if clamped && newDot <= dot+1e-12 {
		return false
	}
	return true
}

// UpdateBatch cycles through constraints until none is violated or the
// epoch budget runs out; it returns the number of updates applied.
func (l *Learner) UpdateBatch(cs []Constraint, epochs int) int {
	updates := 0
	for e := 0; e < epochs; e++ {
		changed := false
		for _, c := range cs {
			if l.Update(c) {
				updates++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return updates
}

// Snapshot returns a copy of all explicitly learned weights.
func (l *Learner) Snapshot() map[string]float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]float64, len(l.weights))
	for f, w := range l.weights {
		out[f] = w
	}
	return out
}

// String lists learned weights deterministically (for logs and tests).
func (l *Learner) String() string {
	snap := l.Snapshot()
	keys := make([]string, 0, len(snap))
	for f := range snap {
		keys = append(keys, f)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("mira{")
	for i, f := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%.3f", f, snap[f])
	}
	b.WriteString("}")
	return b.String()
}
