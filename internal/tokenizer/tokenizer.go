// Package tokenizer implements the generalized token language the paper's
// learners share (§3.2): raw field values are split into tokens, and each
// token is described both by its literal constant and by generalized
// symbols such as "capitalized word", "3-digit number", or a specific
// punctuation mark. Semantic-type patterns (modellearn) and landmark
// wrapper rules (structlearn) are sequences over this language.
package tokenizer

import (
	"fmt"
	"strings"
	"unicode"
)

// Class is the coarse lexical class of a token.
type Class uint8

const (
	// ClassWord is an alphabetic token.
	ClassWord Class = iota
	// ClassNumber is a digit run.
	ClassNumber
	// ClassPunct is a single punctuation or symbol rune.
	ClassPunct
	// ClassSpace is a whitespace run.
	ClassSpace
	// ClassMixed is an alphanumeric mix such as "4B" or "I-95N".
	ClassMixed
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassWord:
		return "word"
	case ClassNumber:
		return "number"
	case ClassPunct:
		return "punct"
	case ClassSpace:
		return "space"
	case ClassMixed:
		return "mixed"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Token is one lexical unit of a field value.
type Token struct {
	Text  string
	Class Class
}

// Tokenize splits s into word / number / punctuation / space tokens.
// Alphanumeric runs containing both letters and digits become ClassMixed.
func Tokenize(s string) []Token {
	var toks []Token
	runes := []rune(s)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			j := i
			for j < len(runes) && unicode.IsSpace(runes[j]) {
				j++
			}
			toks = append(toks, Token{Text: string(runes[i:j]), Class: ClassSpace})
			i = j
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			j := i
			hasLetter, hasDigit := false, false
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j])) {
				if unicode.IsLetter(runes[j]) {
					hasLetter = true
				} else {
					hasDigit = true
				}
				j++
			}
			cl := ClassWord
			switch {
			case hasLetter && hasDigit:
				cl = ClassMixed
			case hasDigit:
				cl = ClassNumber
			}
			toks = append(toks, Token{Text: string(runes[i:j]), Class: cl})
			i = j
		default:
			toks = append(toks, Token{Text: string(r), Class: ClassPunct})
			i++
		}
	}
	return toks
}

// Symbol is a generalized description of a token in the pattern hypothesis
// language: either a literal constant ("CONST:Creek"), or a generalized
// shape ("CAPWORD", "NUM3", "UPPER", …). Symbols are ordered from most to
// least specific by Generalizations.
type Symbol string

// Common generalized symbols.
const (
	SymAnyWord Symbol = "WORD"    // any alphabetic token
	SymCap     Symbol = "CAPWORD" // Capitalized word
	SymUpper   Symbol = "UPPER"   // ALL-CAPS word
	SymLower   Symbol = "LOWER"   // lowercase word
	SymAnyNum  Symbol = "NUM"     // any digit run
	SymMixed   Symbol = "ALNUM"   // mixed alphanumeric
	SymSpace   Symbol = "SPC"     // whitespace
	SymAny     Symbol = "ANY"     // wildcard: matches any single token
)

// Const returns the literal-constant symbol for text.
func Const(text string) Symbol { return Symbol("CONST:" + text) }

// NumLen returns the fixed-length number symbol, e.g. NumLen(3) = "NUM3"
// ("3-digit number" in the paper's wording).
func NumLen(n int) Symbol { return Symbol(fmt.Sprintf("NUM%d", n)) }

// PunctSym returns the symbol for a specific punctuation mark.
func PunctSym(text string) Symbol { return Symbol("PUNCT:" + text) }

// IsConst reports whether the symbol is a literal constant.
func (s Symbol) IsConst() bool { return strings.HasPrefix(string(s), "CONST:") }

// Matches reports whether the symbol describes the token.
func (s Symbol) Matches(t Token) bool {
	str := string(s)
	switch {
	case s == SymAny:
		return true
	case strings.HasPrefix(str, "CONST:"):
		return t.Text == str[len("CONST:"):]
	case strings.HasPrefix(str, "PUNCT:"):
		return t.Class == ClassPunct && t.Text == str[len("PUNCT:"):]
	case s == SymSpace:
		return t.Class == ClassSpace
	case s == SymAnyWord:
		return t.Class == ClassWord
	case s == SymCap:
		return t.Class == ClassWord && isCapitalized(t.Text)
	case s == SymUpper:
		return t.Class == ClassWord && isUpper(t.Text)
	case s == SymLower:
		return t.Class == ClassWord && isLower(t.Text)
	case s == SymAnyNum:
		return t.Class == ClassNumber
	case strings.HasPrefix(str, "NUM"):
		var n int
		if _, err := fmt.Sscanf(str, "NUM%d", &n); err != nil {
			return false
		}
		return t.Class == ClassNumber && len(t.Text) == n
	case s == SymMixed:
		return t.Class == ClassMixed
	}
	return false
}

// Generalizations lists the symbols describing t, from most specific
// (its literal constant) to most general (ANY). Pattern learners walk this
// ladder when they generalize example values.
func Generalizations(t Token) []Symbol {
	syms := []Symbol{Const(t.Text)}
	switch t.Class {
	case ClassWord:
		switch {
		case isUpper(t.Text):
			syms = append(syms, SymUpper)
		case isCapitalized(t.Text):
			syms = append(syms, SymCap)
		case isLower(t.Text):
			syms = append(syms, SymLower)
		}
		syms = append(syms, SymAnyWord)
	case ClassNumber:
		syms = append(syms, NumLen(len(t.Text)), SymAnyNum)
	case ClassPunct:
		syms = append(syms, PunctSym(t.Text))
	case ClassSpace:
		syms = append(syms, SymSpace)
	case ClassMixed:
		syms = append(syms, SymMixed)
	}
	return append(syms, SymAny)
}

// Generalize returns the most specific non-constant symbol for t — the
// default one-step generalization ("Creek" → CAPWORD, "083" → NUM3).
func Generalize(t Token) Symbol {
	g := Generalizations(t)
	for _, s := range g[1:] {
		return s
	}
	return SymAny
}

// Pattern is a sequence of symbols describing a whole field value.
type Pattern []Symbol

// MatchesValue reports whether the pattern matches the full tokenization
// of the raw value (whitespace tokens included).
func (p Pattern) MatchesValue(raw string) bool {
	return p.MatchesTokens(Tokenize(raw))
}

// MatchesTokens reports whether the pattern matches the token sequence
// exactly (same length, symbol-wise match).
func (p Pattern) MatchesTokens(toks []Token) bool {
	if len(p) != len(toks) {
		return false
	}
	for i, s := range p {
		if !s.Matches(toks[i]) {
			return false
		}
	}
	return true
}

// String joins the symbols with spaces.
func (p Pattern) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = string(s)
	}
	return strings.Join(parts, " ")
}

// Key returns a canonical map key for the pattern.
func (p Pattern) Key() string { return p.String() }

// ShapeOf returns the fully generalized pattern of a raw value: every token
// replaced by its one-step generalization. Two values with the same shape
// "look alike" (e.g. all 5-digit zip codes share NUM5).
func ShapeOf(raw string) Pattern {
	toks := Tokenize(raw)
	p := make(Pattern, len(toks))
	for i, t := range toks {
		p[i] = Generalize(t)
	}
	return p
}

// GeneralizePair returns the most specific pattern matching both token
// sequences, or nil if they have different lengths. Per-position it keeps
// the constant if texts agree, else the most specific shared generalized
// symbol.
func GeneralizePair(a, b []Token) Pattern {
	if len(a) != len(b) {
		return nil
	}
	p := make(Pattern, len(a))
	for i := range a {
		p[i] = commonSymbol(a[i], b[i])
	}
	return p
}

func commonSymbol(a, b Token) Symbol {
	for _, s := range Generalizations(a) {
		if s.Matches(b) {
			return s
		}
	}
	return SymAny
}

// GeneralizeAll folds GeneralizePair over all token sequences; nil if any
// pair has mismatched lengths.
func GeneralizeAll(seqs [][]Token) Pattern {
	if len(seqs) == 0 {
		return nil
	}
	cur := make(Pattern, len(seqs[0]))
	for i, t := range seqs[0] {
		cur[i] = Const(t.Text)
	}
	for _, seq := range seqs[1:] {
		if len(seq) != len(cur) {
			return nil
		}
		for i, t := range seq {
			if !cur[i].Matches(t) {
				// Walk the ladder from the current symbol's token until a
				// symbol covers both.
				cur[i] = widen(cur[i], t)
			}
		}
	}
	return cur
}

// widen finds the most specific generalization of tok that is implied by
// (at least as general as) sym or more general.
func widen(sym Symbol, tok Token) Symbol {
	ladder := Generalizations(tok)
	// Find first symbol in tok's ladder that also matches everything sym
	// matched. We approximate: pick the first symbol at or after sym's
	// generality level that matches tok; since ladders are short we test
	// candidates against a probe reconstructed from sym.
	for _, s := range ladder {
		if s == sym {
			return s
		}
		if symbolSubsumes(s, sym) {
			return s
		}
	}
	return SymAny
}

// symbolSubsumes reports whether general covers everything specific covers,
// using the static generality ordering of the symbol language.
func symbolSubsumes(general, specific Symbol) bool {
	if general == specific || general == SymAny {
		return true
	}
	g, s := string(general), string(specific)
	switch {
	case general == SymAnyWord:
		return specific == SymCap || specific == SymUpper || specific == SymLower ||
			(strings.HasPrefix(s, "CONST:") && allLetters(s[6:]))
	case general == SymCap:
		return strings.HasPrefix(s, "CONST:") && isCapitalized(s[6:]) && allLetters(s[6:])
	case general == SymUpper:
		return strings.HasPrefix(s, "CONST:") && isUpper(s[6:]) && allLetters(s[6:])
	case general == SymLower:
		return strings.HasPrefix(s, "CONST:") && isLower(s[6:]) && allLetters(s[6:])
	case general == SymAnyNum:
		return strings.HasPrefix(s, "NUM") || (strings.HasPrefix(s, "CONST:") && allDigits(s[6:]))
	}
	if strings.HasPrefix(g, "NUM") {
		var n int
		if _, err := fmt.Sscanf(g, "NUM%d", &n); err == nil {
			return strings.HasPrefix(s, "CONST:") && allDigits(s[6:]) && len(s[6:]) == n
		}
	}
	if strings.HasPrefix(g, "PUNCT:") {
		return strings.HasPrefix(s, "CONST:") && s[6:] == g[6:]
	}
	if general == SymSpace {
		return strings.HasPrefix(s, "CONST:") && strings.TrimSpace(s[6:]) == ""
	}
	if general == SymMixed {
		return strings.HasPrefix(s, "CONST:")
	}
	return false
}

func isCapitalized(s string) bool {
	r := []rune(s)
	if len(r) == 0 || !unicode.IsUpper(r[0]) {
		return false
	}
	for _, c := range r[1:] {
		if !unicode.IsLower(c) {
			return false
		}
	}
	return true
}

func isUpper(s string) bool {
	has := false
	for _, c := range s {
		if !unicode.IsUpper(c) {
			return false
		}
		has = true
	}
	return has
}

func isLower(s string) bool {
	has := false
	for _, c := range s {
		if !unicode.IsLower(c) {
			return false
		}
		has = true
	}
	return has
}

func allLetters(s string) bool {
	for _, c := range s {
		if !unicode.IsLetter(c) {
			return false
		}
	}
	return s != ""
}

func allDigits(s string) bool {
	for _, c := range s {
		if !unicode.IsDigit(c) {
			return false
		}
	}
	return s != ""
}
