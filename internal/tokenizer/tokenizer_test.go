package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeClasses(t *testing.T) {
	toks := Tokenize("1200 NW 42nd Ave, Coconut Creek FL 33066")
	wantText := []string{"1200", " ", "NW", " ", "42nd", " ", "Ave", ",", " ", "Coconut", " ", "Creek", " ", "FL", " ", "33066"}
	if len(toks) != len(wantText) {
		t.Fatalf("token count %d want %d: %v", len(toks), len(wantText), toks)
	}
	for i, w := range wantText {
		if toks[i].Text != w {
			t.Errorf("tok[%d].Text = %q want %q", i, toks[i].Text, w)
		}
	}
	if toks[0].Class != ClassNumber || toks[2].Class != ClassWord ||
		toks[4].Class != ClassMixed || toks[7].Class != ClassPunct ||
		toks[1].Class != ClassSpace {
		t.Errorf("classes wrong: %v", toks)
	}
}

func TestTokenizeEmptyAndUnicode(t *testing.T) {
	if len(Tokenize("")) != 0 {
		t.Error("empty string should yield no tokens")
	}
	toks := Tokenize("Café 12")
	if len(toks) != 3 || toks[0].Text != "Café" || toks[0].Class != ClassWord {
		t.Errorf("unicode tokenization wrong: %v", toks)
	}
}

func TestTokenizeLosslessProperty(t *testing.T) {
	// Property: concatenating token texts reconstructs the input.
	f := func(s string) bool {
		var b strings.Builder
		for _, tok := range Tokenize(s) {
			b.WriteString(tok.Text)
		}
		return b.String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassWord: "word", ClassNumber: "number", ClassPunct: "punct",
		ClassSpace: "space", ClassMixed: "mixed",
	} {
		if c.String() != want {
			t.Errorf("Class %d String = %q want %q", c, c.String(), want)
		}
	}
	if !strings.Contains(Class(42).String(), "42") {
		t.Error("unknown class should embed its number")
	}
}

func TestSymbolMatches(t *testing.T) {
	cases := []struct {
		sym  Symbol
		text string
		want bool
	}{
		{Const("Creek"), "Creek", true},
		{Const("Creek"), "Creeks", false},
		{SymCap, "Creek", true},
		{SymCap, "CREEK", false},
		{SymCap, "creek", false},
		{SymUpper, "FL", true},
		{SymUpper, "Fl", false},
		{SymLower, "ave", true},
		{SymLower, "Ave", false},
		{SymAnyWord, "anything", true},
		{SymAnyWord, "123", false},
		{SymAnyNum, "33066", true},
		{SymAnyNum, "abc", false},
		{NumLen(5), "33066", true},
		{NumLen(5), "3306", false},
		{NumLen(3), "305", true},
		{PunctSym(","), ",", true},
		{PunctSym(","), ".", false},
		{SymSpace, " ", true},
		{SymMixed, "42nd", true},
		{SymAny, "whatever", true},
	}
	for _, c := range cases {
		toks := Tokenize(c.text)
		if len(toks) != 1 {
			t.Fatalf("test text %q should be one token", c.text)
		}
		if got := c.sym.Matches(toks[0]); got != c.want {
			t.Errorf("%s.Matches(%q) = %v want %v", c.sym, c.text, got, c.want)
		}
	}
	if Symbol("NUMx").Matches(Token{Text: "1", Class: ClassNumber}) {
		t.Error("malformed NUM symbol should not match")
	}
	if Symbol("bogus").Matches(Token{Text: "x", Class: ClassWord}) {
		t.Error("unknown symbol should not match")
	}
}

func TestGeneralizationsLadder(t *testing.T) {
	tok := Tokenize("Creek")[0]
	g := Generalizations(tok)
	if g[0] != Const("Creek") || g[len(g)-1] != SymAny {
		t.Errorf("ladder should run const→ANY: %v", g)
	}
	// Every rung must match the token itself.
	for _, s := range g {
		if !s.Matches(tok) {
			t.Errorf("ladder symbol %s does not match its own token", s)
		}
	}
	if Generalize(tok) != SymCap {
		t.Errorf("Generalize(Creek) = %s want CAPWORD", Generalize(tok))
	}
	if Generalize(Tokenize("33066")[0]) != NumLen(5) {
		t.Error("Generalize(33066) should be NUM5")
	}
	if Generalize(Tokenize(",")[0]) != PunctSym(",") {
		t.Error("Generalize(,) should be PUNCT:,")
	}
	if Generalize(Tokenize(" ")[0]) != SymSpace {
		t.Error("Generalize(space) should be SPC")
	}
	if Generalize(Tokenize("42nd")[0]) != SymMixed {
		t.Error("Generalize(42nd) should be ALNUM")
	}
	if Generalize(Tokenize("FL")[0]) != SymUpper {
		t.Error("Generalize(FL) should be UPPER")
	}
	if Generalize(Tokenize("ave")[0]) != SymLower {
		t.Error("Generalize(ave) should be LOWER")
	}
}

func TestGeneralizationsLadderProperty(t *testing.T) {
	// Property: every symbol in a token's ladder matches the token.
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			for _, sym := range Generalizations(tok) {
				if !sym.Matches(tok) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternMatchesValue(t *testing.T) {
	p := ShapeOf("33066")
	if len(p) != 1 || p[0] != NumLen(5) {
		t.Fatalf("ShapeOf(33066) = %v", p)
	}
	if !p.MatchesValue("08540") {
		t.Error("NUM5 should match another zip")
	}
	if p.MatchesValue("123") || p.MatchesValue("abcde") {
		t.Error("NUM5 should not match NUM3 or words")
	}
	addr := ShapeOf("1200 NW 42nd Ave")
	if !addr.MatchesValue("3500 SW 3rd St") {
		t.Errorf("address shape %s should match another address", addr)
	}
	if addr.MatchesValue("Coconut Creek") {
		t.Error("address shape should not match a city")
	}
}

func TestPatternStringAndKey(t *testing.T) {
	p := Pattern{SymCap, SymSpace, NumLen(3)}
	if p.String() != "CAPWORD SPC NUM3" || p.Key() != p.String() {
		t.Errorf("Pattern.String = %q", p.String())
	}
}

func TestShapeOfMatchesSelfProperty(t *testing.T) {
	f := func(s string) bool { return ShapeOf(s).MatchesValue(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneralizePair(t *testing.T) {
	a, b := Tokenize("Coconut Creek"), Tokenize("Pompano Beach")
	p := GeneralizePair(a, b)
	// The shared " " separator stays a constant (texts agree).
	want := Pattern{SymCap, Const(" "), SymCap}
	if p.String() != want.String() {
		t.Errorf("GeneralizePair = %s want %s", p, want)
	}
	// Shared constant stays constant.
	p2 := GeneralizePair(Tokenize("FL 33066"), Tokenize("FL 33067"))
	if p2[0] != Const("FL") || p2[2] != NumLen(5) {
		t.Errorf("GeneralizePair keeps shared consts: %s", p2)
	}
	if GeneralizePair(Tokenize("a"), Tokenize("a b")) != nil {
		t.Error("length mismatch should yield nil")
	}
}

func TestGeneralizeAll(t *testing.T) {
	seqs := [][]Token{
		Tokenize("FL 33066"),
		Tokenize("FL 33067"),
		Tokenize("FL 33442"),
	}
	p := GeneralizeAll(seqs)
	if p[0] != Const("FL") || p[2] != NumLen(5) {
		t.Errorf("GeneralizeAll = %s", p)
	}
	for _, s := range []string{"FL 33066", "FL 33067", "FL 33442", "FL 99999"} {
		if !p.MatchesValue(s) {
			t.Errorf("generalized pattern should match %q", s)
		}
	}
	if p.MatchesValue("GA 33066") {
		t.Error("pattern with CONST:FL should not match GA")
	}
	if GeneralizeAll(nil) != nil {
		t.Error("no sequences → nil")
	}
	if GeneralizeAll([][]Token{Tokenize("a"), Tokenize("a b")}) != nil {
		t.Error("ragged lengths → nil")
	}
	// Mixing word cases widens to WORD.
	pw := GeneralizeAll([][]Token{Tokenize("Creek"), Tokenize("CREEK"), Tokenize("creek")})
	if pw[0] != SymAnyWord {
		t.Errorf("mixed-case words should widen to WORD, got %s", pw[0])
	}
	// Mixing a word and a number widens to ANY.
	pa := GeneralizeAll([][]Token{Tokenize("Creek"), Tokenize("33066")})
	if pa[0] != SymAny {
		t.Errorf("word vs number should widen to ANY, got %s", pa[0])
	}
}

func TestGeneralizeAllCoversInputsProperty(t *testing.T) {
	// Property: the pattern from GeneralizeAll matches every input it was
	// built from (when all inputs tokenize to the same length).
	f := func(a, b, c string) bool {
		seqs := [][]Token{Tokenize(a), Tokenize(b), Tokenize(c)}
		p := GeneralizeAll(seqs)
		if p == nil {
			return true
		}
		for _, s := range seqs {
			if !p.MatchesTokens(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolSubsumes(t *testing.T) {
	cases := []struct {
		general, specific Symbol
		want              bool
	}{
		{SymAny, SymCap, true},
		{SymAnyWord, SymCap, true},
		{SymAnyWord, Const("Creek"), true},
		{SymAnyWord, Const("33"), false},
		{SymCap, Const("Creek"), true},
		{SymCap, Const("creek"), false},
		{SymUpper, Const("FL"), true},
		{SymLower, Const("ave"), true},
		{SymAnyNum, NumLen(5), true},
		{SymAnyNum, Const("42"), true},
		{NumLen(2), Const("42"), true},
		{NumLen(3), Const("42"), false},
		{PunctSym(","), Const(","), true},
		{PunctSym(","), Const("."), false},
		{SymSpace, Const(" "), true},
		{SymCap, SymCap, true},
	}
	for _, c := range cases {
		if got := symbolSubsumes(c.general, c.specific); got != c.want {
			t.Errorf("symbolSubsumes(%s, %s) = %v want %v", c.general, c.specific, got, c.want)
		}
	}
}

func TestIsConst(t *testing.T) {
	if !Const("x").IsConst() || SymCap.IsConst() {
		t.Error("IsConst wrong")
	}
}
