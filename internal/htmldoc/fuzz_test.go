package htmldoc

import (
	"strings"
	"testing"
)

// Native fuzz targets (seeds run as unit tests; `go test -fuzz=Fuzz...`
// explores further). The substrate must never panic on arbitrary bytes —
// it parses whatever a source application displays.

func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<",
		"plain text only",
		"<html><body><table><tr><td>a<td>b</table>",
		"<p>one<p>two<p>three",
		`<a href="/x?y=1&amp;z=2">link</a>`,
		"<!DOCTYPE html><!-- c --><div class=x>text</div>",
		"<script>if (a<b) {}</script>after",
		"<ul><li>A &mdash; B, C (d)</ul>",
		"</closes><without><opening>",
		"<td><td><td>",
		"&#65;&bogus;&",
		strings.Repeat("<div>", 200) + "deep" + strings.Repeat("</div>", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		// Every derived view must be total.
		_ = doc.Render()
		_ = doc.InnerText()
		for _, ch := range doc.TextChunks() {
			if ch.Text == "" {
				t.Error("empty chunk text")
			}
			_ = ch.Path
			_ = ch.TagPath
		}
		doc.Walk(func(n *Node) bool { return true })
		// Re-parsing the render must also be total and idempotent-ish.
		re := Parse(doc.Render())
		_ = re.Render()
	})
}

func FuzzUnescape(f *testing.F) {
	for _, s := range []string{"", "&amp;", "&#65;", "&#x41;", "&;", "&" + strings.Repeat("a", 20) + ";", "a&b&c"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Unescape(s)
		// Unescaping never grows the string by more than the worst-case
		// entity expansion factor.
		if len(out) > len(s)*4+4 {
			t.Errorf("unescape grew %d → %d", len(s), len(out))
		}
		// Escape must round-trip any string.
		if Unescape(Escape(s)) != s {
			t.Errorf("escape round trip failed for %q", s)
		}
	})
}
