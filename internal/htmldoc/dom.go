package htmldoc

import (
	"fmt"
	"strings"
)

// NodeType discriminates DOM node kinds.
type NodeType uint8

const (
	// ElementNode is a tag element.
	ElementNode NodeType = iota
	// TextNode is character data.
	TextNode
	// CommentNode is a comment.
	CommentNode
	// DocumentNode is the synthetic root.
	DocumentNode
)

// Node is a DOM node. Children order is document order.
type Node struct {
	Type     NodeType
	Tag      string // element tag name (ElementNode)
	Text     string // text content (TextNode, CommentNode)
	Attrs    map[string]string
	Parent   *Node
	Children []*Node
}

// Attr returns the attribute value (empty if absent).
func (n *Node) Attr(name string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[name]
}

// implicitClosers maps a tag to the set of open tags it implicitly closes
// (HTML's optional end tags: a new <tr> closes an open <tr>, etc.).
var implicitClosers = map[string][]string{
	"tr":     {"tr", "td", "th"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"li":     {"li"},
	"p":      {"p"},
	"option": {"option"},
}

// Parse builds a DOM tree from HTML source. The returned node is a
// DocumentNode whose children are the top-level nodes.
func Parse(src string) *Node {
	root := &Node{Type: DocumentNode}
	stack := []*Node{root}
	top := func() *Node { return stack[len(stack)-1] }
	for _, tok := range Lex(src) {
		switch tok.Type {
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			top().appendChild(&Node{Type: TextNode, Text: tok.Data})
		case CommentToken:
			top().appendChild(&Node{Type: CommentNode, Text: tok.Data})
		case DoctypeToken:
			// ignored
		case StartTagToken:
			if closers, ok := implicitClosers[tok.Data]; ok {
				for len(stack) > 1 {
					t := top().Tag
					closed := false
					for _, c := range closers {
						if t == c {
							stack = stack[:len(stack)-1]
							closed = true
							break
						}
					}
					if !closed {
						break
					}
				}
			}
			el := &Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs}
			top().appendChild(el)
			if !tok.SelfClosing {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Pop to the matching open tag, if any.
			for j := len(stack) - 1; j >= 1; j-- {
				if stack[j].Tag == tok.Data {
					stack = stack[:j]
					break
				}
			}
		}
	}
	return root
}

func (n *Node) appendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Walk visits every node in document order; returning false from fn prunes
// that node's subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns all element nodes with the given tag, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == ElementNode && x.Tag == tag {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Find returns the first element with the given tag, or nil.
func (n *Node) Find(tag string) *Node {
	all := n.FindAll(tag)
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

// FindByAttr returns all elements whose attribute equals the value.
func (n *Node) FindByAttr(attr, value string) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == ElementNode && x.Attr(attr) == value {
			out = append(out, x)
		}
		return true
	})
	return out
}

// InnerText concatenates all descendant text, collapsing runs of
// whitespace to single spaces and trimming the ends.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.Walk(func(x *Node) bool {
		if x.Type == TextNode {
			b.WriteString(x.Text)
			b.WriteByte(' ')
		}
		return x.Type != CommentNode
	})
	return strings.Join(strings.Fields(b.String()), " ")
}

// Path returns the element's absolute tag path from the document root with
// sibling ordinals, e.g. "/html[0]/body[0]/table[0]/tr[2]/td[1]".
// Structure learner hypotheses quantify over these paths.
func (n *Node) Path() string {
	if n.Type == DocumentNode || n.Parent == nil {
		return ""
	}
	ord := 0
	for _, sib := range n.Parent.Children {
		if sib == n {
			break
		}
		if sib.Type == ElementNode && sib.Tag == n.Tag {
			ord++
		}
	}
	label := n.Tag
	if n.Type == TextNode {
		label = "#text"
		ord = 0
		for _, sib := range n.Parent.Children {
			if sib == n {
				break
			}
			if sib.Type == TextNode {
				ord++
			}
		}
	}
	return fmt.Sprintf("%s/%s[%d]", n.Parent.Path(), label, ord)
}

// TagPath returns the path with ordinals stripped: "/html/body/table/tr/td".
// Two nodes with equal tag paths are structurally analogous.
func (n *Node) TagPath() string {
	p := n.Path()
	var b strings.Builder
	skip := false
	for _, r := range p {
		switch r {
		case '[':
			skip = true
		case ']':
			skip = false
		default:
			if !skip {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// TextChunk is a piece of document text with its location: the containing
// element's path and class attribute. The structure learner operates over
// the page's chunk sequence.
type TextChunk struct {
	Text    string
	Path    string // ordinal path of the containing element
	TagPath string // ordinal-free path
	Class   string // class attribute of the nearest classed ancestor
	Href    string // href of the nearest anchor ancestor, if any
}

// TextChunks extracts all nonempty text nodes beneath n in document order.
func (n *Node) TextChunks() []TextChunk {
	var out []TextChunk
	n.Walk(func(x *Node) bool {
		if x.Type == CommentNode {
			return false
		}
		if x.Type == TextNode {
			txt := strings.Join(strings.Fields(x.Text), " ")
			if txt == "" {
				return true
			}
			parent := x.Parent
			ch := TextChunk{Text: txt}
			if parent != nil {
				ch.Path = parent.Path()
				ch.TagPath = parent.TagPath()
			}
			for a := parent; a != nil; a = a.Parent {
				if ch.Class == "" && a.Attr("class") != "" {
					ch.Class = a.Attr("class")
				}
				if ch.Href == "" && a.Tag == "a" && a.Attr("href") != "" {
					ch.Href = a.Attr("href")
				}
			}
			out = append(out, ch)
		}
		return true
	})
	return out
}

// Render serializes the tree back to HTML (for round-trip tests and for
// exporting workspace contents).
func (n *Node) Render() string {
	var b strings.Builder
	render(&b, n)
	return b.String()
}

func render(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			render(b, c)
		}
	case TextNode:
		b.WriteString(Escape(n.Text))
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Text)
		b.WriteString("-->")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, k := range sortedKeys(n.Attrs) {
			fmt.Fprintf(b, ` %s="%s"`, k, Escape(n.Attrs[k]))
		}
		if voidElements[n.Tag] && len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		for _, c := range n.Children {
			render(b, c)
		}
		b.WriteString("</" + n.Tag + ">")
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
