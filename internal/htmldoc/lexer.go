// Package htmldoc is a small, stdlib-only HTML substrate: a tokenizer and
// a DOM builder sufficient for the semi-structured pages CopyCat's
// structure learner analyzes — tables, lists, divs with class attributes,
// anchors, forms, comments, and character entities. It is not a full HTML5
// parser; it is the layer a browser application wrapper hands to the
// learners ("direct access to the underlying data being displayed", §2.3).
package htmldoc

import (
	"strings"
)

// TokenType enumerates lexer token types.
type TokenType uint8

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is an opening tag, possibly self-closing.
	StartTagToken
	// EndTagToken is a closing tag.
	EndTagToken
	// CommentToken is an HTML comment.
	CommentToken
	// DoctypeToken is a <!DOCTYPE ...> declaration.
	DoctypeToken
)

// LexToken is one lexical token of an HTML document.
type LexToken struct {
	Type        TokenType
	Data        string            // tag name, text content, or comment body
	Attrs       map[string]string // attributes for StartTagToken
	SelfClosing bool
}

// voidElements are tags that never have closing tags in HTML.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Lex tokenizes HTML source into a stream of LexTokens. It is forgiving:
// malformed constructs degrade to text rather than failing.
func Lex(src string) []LexToken {
	var toks []LexToken
	i := 0
	n := len(src)
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			toks = appendText(toks, src[i:])
			break
		}
		if lt > 0 {
			toks = appendText(toks, src[i:i+lt])
			i += lt
		}
		// src[i] == '<'
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				toks = append(toks, LexToken{Type: CommentToken, Data: src[i+4:]})
				i = n
			} else {
				toks = append(toks, LexToken{Type: CommentToken, Data: src[i+4 : i+4+end]})
				i += 4 + end + 3
			}
		case strings.HasPrefix(src[i:], "<!"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				toks = appendText(toks, src[i:])
				i = n
			} else {
				toks = append(toks, LexToken{Type: DoctypeToken, Data: strings.TrimSpace(src[i+2 : i+end])})
				i += end + 1
			}
		case strings.HasPrefix(src[i:], "</"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				toks = appendText(toks, src[i:])
				i = n
			} else {
				name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
				if name != "" {
					toks = append(toks, LexToken{Type: EndTagToken, Data: name})
				}
				i += end + 1
			}
		default:
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				toks = appendText(toks, src[i:])
				i = n
				break
			}
			inner := src[i+1 : i+end]
			tok, ok := parseStartTag(inner)
			if !ok {
				// Not a valid tag (e.g. "<3"): treat the '<' as text.
				toks = appendText(toks, "<")
				i++
				break
			}
			toks = append(toks, tok)
			i += end + 1
			// Raw-text elements: script/style content is opaque text.
			if (tok.Data == "script" || tok.Data == "style") && !tok.SelfClosing {
				closer := "</" + tok.Data
				rest := strings.ToLower(src[i:])
				ci := strings.Index(rest, closer)
				if ci < 0 {
					toks = appendText(toks, src[i:])
					i = n
				} else {
					if ci > 0 {
						toks = appendText(toks, src[i:i+ci])
					}
					gt := strings.IndexByte(src[i+ci:], '>')
					toks = append(toks, LexToken{Type: EndTagToken, Data: tok.Data})
					if gt < 0 {
						i = n
					} else {
						i += ci + gt + 1
					}
				}
			}
		}
	}
	return toks
}

func appendText(toks []LexToken, raw string) []LexToken {
	if raw == "" {
		return toks
	}
	return append(toks, LexToken{Type: TextToken, Data: Unescape(raw)})
}

func parseStartTag(inner string) (LexToken, bool) {
	inner = strings.TrimSpace(inner)
	if inner == "" {
		return LexToken{}, false
	}
	self := false
	if strings.HasSuffix(inner, "/") {
		self = true
		inner = strings.TrimSpace(inner[:len(inner)-1])
	}
	// Tag name: leading run of letters/digits.
	j := 0
	for j < len(inner) && (isAlnum(inner[j]) || inner[j] == '-') {
		j++
	}
	if j == 0 {
		return LexToken{}, false
	}
	name := strings.ToLower(inner[:j])
	tok := LexToken{Type: StartTagToken, Data: name, SelfClosing: self || voidElements[name]}
	rest := inner[j:]
	if attrs := parseAttrs(rest); len(attrs) > 0 {
		tok.Attrs = attrs
	}
	return tok, true
}

func parseAttrs(s string) map[string]string {
	var attrs map[string]string
	i := 0
	n := len(s)
	for i < n {
		for i < n && isSpace(s[i]) {
			i++
		}
		if i >= n {
			break
		}
		// attribute name
		start := i
		for i < n && s[i] != '=' && !isSpace(s[i]) {
			i++
		}
		name := strings.ToLower(s[start:i])
		if name == "" {
			i++
			continue
		}
		val := ""
		for i < n && isSpace(s[i]) {
			i++
		}
		if i < n && s[i] == '=' {
			i++
			for i < n && isSpace(s[i]) {
				i++
			}
			if i < n && (s[i] == '"' || s[i] == '\'') {
				q := s[i]
				i++
				vs := i
				for i < n && s[i] != q {
					i++
				}
				val = s[vs:i]
				if i < n {
					i++
				}
			} else {
				vs := i
				for i < n && !isSpace(s[i]) {
					i++
				}
				val = s[vs:i]
			}
		}
		if attrs == nil {
			attrs = map[string]string{}
		}
		attrs[name] = Unescape(val)
	}
	return attrs
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "ndash": "–", "mdash": "—",
}

// Unescape resolves the common named character entities and decimal
// numeric references. Unknown entities pass through verbatim.
func Unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte('&')
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if rep, ok := entities[name]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(name, "#") {
			var r rune
			ok := true
			for _, c := range name[1:] {
				if c < '0' || c > '9' {
					ok = false
					break
				}
				r = r*10 + (c - '0')
			}
			if ok && r > 0 {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte('&')
		i++
	}
	return b.String()
}

// Escape replaces the characters that must be entity-encoded in HTML text
// and attribute values.
func Escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
