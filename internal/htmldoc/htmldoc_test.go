package htmldoc

import (
	"strings"
	"testing"
	"testing/quick"
)

const shelterPage = `<!DOCTYPE html>
<html><head><title>Broward County Shelters</title>
<style>body { color: red }</style>
<script>var x = "<td>not a tag</td>";</script>
</head>
<body>
<h1>Hurricane Shelters</h1>
<!-- data follows -->
<table class="shelters">
<tr><th>Name</th><th>Street</th><th>City</th>
<tr><td><a href="/shelter/1">North High</a><td>1200 NW 42nd Ave<td>Coconut Creek
<tr><td><a href="/shelter/2">Creek Elementary</a><td>500 Ramblewood Dr<td>Coconut Creek
</table>
<ul><li>First &amp; Main<li>Caf&#233; Row</ul>
<img src="x.png"><br/>
<div class="footer">FEMA &copy; 2008</div>
</body></html>`

func TestLexBasics(t *testing.T) {
	toks := Lex(`<p class="x">Hi &amp; bye</p>`)
	if len(toks) != 3 {
		t.Fatalf("token count = %d: %v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "p" || toks[0].Attrs["class"] != "x" {
		t.Errorf("start tag wrong: %+v", toks[0])
	}
	if toks[1].Type != TextToken || toks[1].Data != "Hi & bye" {
		t.Errorf("text wrong: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "p" {
		t.Errorf("end tag wrong: %+v", toks[2])
	}
}

func TestLexSelfClosingAndVoid(t *testing.T) {
	toks := Lex(`<br/><img src='a.png'><input type=text value=go>`)
	for i, tok := range toks {
		if !tok.SelfClosing {
			t.Errorf("token %d (%s) should be self-closing", i, tok.Data)
		}
	}
	if toks[1].Attrs["src"] != "a.png" {
		t.Error("single-quoted attr wrong")
	}
	if toks[2].Attrs["type"] != "text" || toks[2].Attrs["value"] != "go" {
		t.Error("unquoted attrs wrong")
	}
}

func TestLexCommentDoctypeScript(t *testing.T) {
	toks := Lex(shelterPage)
	var comments, doctypes int
	var scriptText string
	for i, tok := range toks {
		switch tok.Type {
		case CommentToken:
			comments++
		case DoctypeToken:
			doctypes++
		case StartTagToken:
			if tok.Data == "script" && i+1 < len(toks) && toks[i+1].Type == TextToken {
				scriptText = toks[i+1].Data
			}
		}
	}
	if comments != 1 || doctypes != 1 {
		t.Errorf("comments=%d doctypes=%d", comments, doctypes)
	}
	if !strings.Contains(scriptText, "<td>not a tag</td>") {
		t.Errorf("script content should be raw text, got %q", scriptText)
	}
}

func TestLexMalformed(t *testing.T) {
	// A bare '<' degrades to text; unterminated tags degrade to text.
	toks := Lex("a < b")
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
	}
	if text.String() != "a < b" {
		t.Errorf("malformed input should survive as text: %q", text.String())
	}
	if toks := Lex("<p"); len(toks) == 0 {
		t.Error("unterminated tag should produce something")
	}
	Lex("<!-- unterminated")
	Lex("</")
	Lex("<! ")
	Lex("<script>never closed")
}

func TestUnescapeEscape(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":     "a & b",
		"&lt;x&gt;":     "<x>",
		"&quot;q&quot;": `"q"`,
		"&#65;&#66;":    "AB",
		"&bogus;":       "&bogus;",
		"&":             "&",
		"no entities":   "no entities",
		"&nbsp;":        " ",
	}
	for in, want := range cases {
		if got := Unescape(in); got != want {
			t.Errorf("Unescape(%q) = %q want %q", in, got, want)
		}
	}
	if got := Unescape(Escape(`<a href="x">&</a>`)); got != `<a href="x">&</a>` {
		t.Errorf("Escape/Unescape round trip: %q", got)
	}
}

func TestEscapeUnescapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool { return Unescape(Escape(s)) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTree(t *testing.T) {
	doc := Parse(shelterPage)
	title := doc.Find("title")
	if title == nil || title.InnerText() != "Broward County Shelters" {
		t.Fatalf("title wrong: %v", title)
	}
	table := doc.Find("table")
	if table == nil || table.Attr("class") != "shelters" {
		t.Fatal("table not found or class wrong")
	}
	rows := table.FindAll("tr")
	if len(rows) != 3 {
		t.Fatalf("want 3 tr (implicit closers), got %d", len(rows))
	}
	cells := rows[1].FindAll("td")
	if len(cells) != 3 {
		t.Fatalf("want 3 td in row 1, got %d", len(cells))
	}
	if cells[0].InnerText() != "North High" || cells[2].InnerText() != "Coconut Creek" {
		t.Errorf("cell text wrong: %q %q", cells[0].InnerText(), cells[2].InnerText())
	}
	lis := doc.FindAll("li")
	if len(lis) != 2 || lis[0].InnerText() != "First & Main" || lis[1].InnerText() != "Café Row" {
		t.Errorf("li parsing wrong: %d items", len(lis))
	}
}

func TestFindByAttrAndAttr(t *testing.T) {
	doc := Parse(shelterPage)
	footers := doc.FindByAttr("class", "footer")
	if len(footers) != 1 || !strings.Contains(footers[0].InnerText(), "FEMA") {
		t.Errorf("FindByAttr wrong: %v", footers)
	}
	if footers[0].Attr("missing") != "" {
		t.Error("missing attr should be empty")
	}
	if (&Node{Type: TextNode}).Attr("x") != "" {
		t.Error("nil Attrs should be empty")
	}
	if doc.Find("nosuchtag") != nil {
		t.Error("Find of absent tag should be nil")
	}
}

func TestPaths(t *testing.T) {
	doc := Parse(`<html><body><table><tr><td>a</td><td>b</td></tr><tr><td>c</td></tr></table></body></html>`)
	tds := doc.FindAll("td")
	if len(tds) != 3 {
		t.Fatalf("want 3 td, got %d", len(tds))
	}
	if tds[0].Path() != "/html[0]/body[0]/table[0]/tr[0]/td[0]" {
		t.Errorf("path[0] = %s", tds[0].Path())
	}
	if tds[1].Path() != "/html[0]/body[0]/table[0]/tr[0]/td[1]" {
		t.Errorf("path[1] = %s", tds[1].Path())
	}
	if tds[2].Path() != "/html[0]/body[0]/table[0]/tr[1]/td[0]" {
		t.Errorf("path[2] = %s", tds[2].Path())
	}
	if tds[2].TagPath() != "/html/body/table/tr/td" {
		t.Errorf("tag path = %s", tds[2].TagPath())
	}
	// Structurally analogous cells share a TagPath.
	if tds[0].TagPath() != tds[2].TagPath() {
		t.Error("analogous cells should share TagPath")
	}
}

func TestTextChunks(t *testing.T) {
	doc := Parse(shelterPage)
	chunks := doc.Find("table").TextChunks()
	var texts []string
	for _, c := range chunks {
		texts = append(texts, c.Text)
	}
	joined := strings.Join(texts, "|")
	for _, want := range []string{"North High", "1200 NW 42nd Ave", "Coconut Creek", "Creek Elementary"} {
		if !strings.Contains(joined, want) {
			t.Errorf("chunks missing %q: %s", want, joined)
		}
	}
	// Chunk metadata: class comes from the table, href from the anchor.
	for _, c := range chunks {
		if c.Class != "shelters" {
			t.Errorf("chunk %q class = %q want shelters", c.Text, c.Class)
		}
		if c.Text == "North High" && c.Href != "/shelter/1" {
			t.Errorf("anchor chunk href = %q", c.Href)
		}
	}
	// Comments are excluded.
	for _, c := range Parse("<div><!-- hidden -->shown</div>").TextChunks() {
		if strings.Contains(c.Text, "hidden") {
			t.Error("comment text leaked into chunks")
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<div class="x"><p>Hello <b>world</b></p><img src="i.png"/></div>`
	doc := Parse(src)
	out := doc.Render()
	re := Parse(out)
	if re.Render() != out {
		t.Errorf("render not idempotent:\n%s\n%s", out, re.Render())
	}
	if doc.Find("b").InnerText() != re.Find("b").InnerText() {
		t.Error("round trip lost content")
	}
}

func TestImplicitParagraphClose(t *testing.T) {
	doc := Parse("<p>one<p>two")
	ps := doc.FindAll("p")
	if len(ps) != 2 || ps[0].InnerText() != "one" || ps[1].InnerText() != "two" {
		t.Errorf("implicit <p> close wrong: %d", len(ps))
	}
	// Nested structure: second <p> must not be inside the first.
	if ps[1].Parent == ps[0] {
		t.Error("second p nested inside first")
	}
}

func TestWalkPrune(t *testing.T) {
	doc := Parse("<div><span>in</span></div><p>out</p>")
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Tag)
			return n.Tag != "div" // prune div subtree
		}
		return true
	})
	for _, v := range visited {
		if v == "span" {
			t.Error("pruned subtree was visited")
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		doc.Render()
		doc.TextChunks()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
