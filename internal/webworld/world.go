// Package webworld generates the deterministic synthetic world that stands
// in for the live Web in the paper's demo (§8: shelter pages from a TV
// news site, spreadsheets of contacts, geocoding services). Everything is
// derived from a seed, so experiments are reproducible and learners can be
// scored against exact ground truth.
//
// The world models a hurricane-relief scenario in a fictional Florida-like
// county: cities with zip codes, shelters with addresses and geocodes,
// contact people (with realistic name variations for record-linkage),
// supply depots, and road conditions.
package webworld

import (
	"fmt"
	"math/rand"

	"copycat/internal/table"
)

// City is a municipality with a zip code range.
type City struct {
	Name  string
	State string
	Zips  []string
	// Lat/Lon is the city centroid; shelter coordinates jitter around it.
	Lat, Lon float64
}

// Shelter is an emergency shelter.
type Shelter struct {
	ID       int
	Name     string
	Street   string
	City     string
	State    string
	Zip      string
	Lat, Lon float64
	Capacity int
	Status   string // "open", "full", "closed"
	Phone    string
}

// Contact is a shelter contact person as recorded in a separate
// spreadsheet. Org is the shelter name as the spreadsheet spells it —
// often abbreviated or typo'd, so linking back to Shelter.Name requires
// approximate matching.
type Contact struct {
	Person string
	Org    string // noisy shelter name
	Street string // noisy street
	City   string
	Phone  string
	Email  string
	// ShelterID is the ground-truth link (not exposed to learners).
	ShelterID int
}

// Supply is a relief-supply depot.
type Supply struct {
	Depot    string
	City     string
	Item     string
	Quantity int
}

// RoadCondition is one road-status report.
type RoadCondition struct {
	Road   string
	City   string
	Status string // "open", "flooded", "blocked"
}

// Config controls world size.
type Config struct {
	Seed            int64
	Cities          int
	SheltersPerCity int
	ContactsNoise   float64 // probability a contact's org/street is perturbed
	Supplies        int
	Roads           int

	// FaultRate, when positive, makes the demo system wrap every builtin
	// service in a deterministic fault injector with this transient-error
	// probability. Generate ignores it — world data is unchanged.
	FaultRate float64
	// FaultSeed selects the fault pattern (defaults to Seed when zero).
	FaultSeed int64

	// ChainsPerCity/ChainLen enable the SmartInt-style stitching chains
	// of the scaled world mode (see ScaledConfig). Zero means no chains;
	// the base world is unchanged either way.
	ChainsPerCity int
	ChainLen      int
}

// DefaultConfig matches the paper's "moderate number of Web and document
// sources, each with KB or MB of data".
func DefaultConfig() Config {
	return Config{Seed: 42, Cities: 6, SheltersPerCity: 5, ContactsNoise: 0.5, Supplies: 12, Roads: 10}
}

// World is the generated ground truth.
type World struct {
	Config   Config
	Cities   []City
	Shelters []Shelter
	Contacts []Contact
	Supplies []Supply
	Roads    []RoadCondition
	Chains   []StitchChain
}

var (
	cityFirst   = []string{"Coconut", "Pompano", "Cypress", "Palm", "Sand", "Mangrove", "Heron", "Osprey", "Pelican", "Ibis", "Tamarind", "Sawgrass"}
	citySecond  = []string{"Creek", "Beach", "Springs", "Grove", "Harbor", "Shores", "Park", "Lakes", "Point", "Ridge"}
	streetNames = []string{"Main", "Ramblewood", "Atlantic", "Sample", "Hillsboro", "Copans", "Lyons", "Powerline", "Federal", "Dixie", "Riverside", "Banyan", "Cocoplum", "Seagrape"}
	streetTypes = []string{"St", "Ave", "Blvd", "Dr", "Rd", "Way", "Ter"}
	directions  = []string{"", "N", "S", "E", "W", "NW", "NE", "SW", "SE"}
	schoolKinds = []string{"High School", "Elementary", "Middle School", "Community Center", "Recreation Center", "Civic Center", "Church Hall", "Armory"}
	schoolFirst = []string{"North", "South", "East", "West", "Central", "Lakeside", "Riverview", "Sunset", "Highland", "Gateway", "Liberty", "Pioneer"}
	firstNames  = []string{"Maria", "James", "Aisha", "Carlos", "Wen", "Priya", "Dmitri", "Sofia", "Kwame", "Lena", "Omar", "Grace", "Hector", "Yuki", "Tariq", "Nina"}
	lastNames   = []string{"Alvarez", "Chen", "Okafor", "Smith", "Patel", "Nakamura", "Brown", "Silva", "Haddad", "Kim", "Johnson", "Garcia", "Novak", "Diallo", "Reyes", "Larsen"}
	supplyItems = []string{"Water (cases)", "MRE rations", "Blankets", "Cots", "Generators", "Tarps", "First aid kits", "Flashlights"}
	roadNames   = []string{"I-95", "US-1", "SR-7", "A1A", "Turnpike", "SR-869", "US-441", "I-595"}
	statuses    = []string{"open", "open", "open", "full", "closed"}
	roadStates  = []string{"open", "open", "flooded", "blocked"}
)

// Generate builds a world from the config. The same config always yields
// the same world.
func Generate(cfg Config) *World {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Config: cfg}

	usedCity := map[string]bool{}
	for len(w.Cities) < cfg.Cities {
		name := cityFirst[rng.Intn(len(cityFirst))] + " " + citySecond[rng.Intn(len(citySecond))]
		// The name pool holds 120 combinations; past 100 cities the
		// rejection loop would never terminate, so scaled worlds number
		// the cities instead (small worlds keep the original stream).
		if cfg.Cities > 100 {
			name = fmt.Sprintf("%s %d", name, len(w.Cities))
		}
		if usedCity[name] {
			continue
		}
		usedCity[name] = true
		nzips := 1 + rng.Intn(2)
		zips := make([]string, nzips)
		for i := range zips {
			zips[i] = fmt.Sprintf("33%03d", rng.Intn(1000))
		}
		w.Cities = append(w.Cities, City{
			Name:  name,
			State: "FL",
			Zips:  zips,
			Lat:   25.5 + rng.Float64()*1.5,
			Lon:   -80.5 + rng.Float64()*0.8,
		})
	}

	usedShelter := map[string]bool{}
	id := 0
	for ci := range w.Cities {
		c := &w.Cities[ci]
		for s := 0; s < cfg.SheltersPerCity; s++ {
			var name string
			for {
				name = schoolFirst[rng.Intn(len(schoolFirst))] + " " + schoolKinds[rng.Intn(len(schoolKinds))]
				if !usedShelter[name+c.Name] {
					break
				}
			}
			usedShelter[name+c.Name] = true
			dir := directions[rng.Intn(len(directions))]
			street := fmt.Sprintf("%d ", 100+rng.Intn(9800))
			if dir != "" {
				street += dir + " "
			}
			street += streetNames[rng.Intn(len(streetNames))] + " " + streetTypes[rng.Intn(len(streetTypes))]
			w.Shelters = append(w.Shelters, Shelter{
				ID:       id,
				Name:     name,
				Street:   street,
				City:     c.Name,
				State:    c.State,
				Zip:      c.Zips[rng.Intn(len(c.Zips))],
				Lat:      c.Lat + (rng.Float64()-0.5)*0.1,
				Lon:      c.Lon + (rng.Float64()-0.5)*0.1,
				Capacity: 50 * (1 + rng.Intn(20)),
				Status:   statuses[rng.Intn(len(statuses))],
				Phone:    fmt.Sprintf("954-555-%04d", rng.Intn(10000)),
			})
			id++
		}
	}

	// One contact per shelter, with noisy org/street spellings.
	for _, s := range w.Shelters {
		person := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		org, street := s.Name, s.Street
		if rng.Float64() < cfg.ContactsNoise {
			org = perturbName(rng, org)
		}
		if rng.Float64() < cfg.ContactsNoise {
			street = perturbStreet(rng, street)
		}
		w.Contacts = append(w.Contacts, Contact{
			Person:    person,
			Org:       org,
			Street:    street,
			City:      s.City,
			Phone:     fmt.Sprintf("954-555-%04d", rng.Intn(10000)),
			Email:     emailFor(person),
			ShelterID: s.ID,
		})
	}

	for i := 0; i < cfg.Supplies; i++ {
		c := w.Cities[rng.Intn(len(w.Cities))]
		w.Supplies = append(w.Supplies, Supply{
			Depot:    fmt.Sprintf("Depot %c", 'A'+i%26),
			City:     c.Name,
			Item:     supplyItems[rng.Intn(len(supplyItems))],
			Quantity: 10 * (1 + rng.Intn(100)),
		})
	}

	for i := 0; i < cfg.Roads; i++ {
		c := w.Cities[rng.Intn(len(w.Cities))]
		w.Roads = append(w.Roads, RoadCondition{
			Road:   roadNames[rng.Intn(len(roadNames))],
			City:   c.Name,
			Status: roadStates[rng.Intn(len(roadStates))],
		})
	}
	buildChains(w, cfg)
	return w
}

// perturbName abbreviates or typos a shelter name the way a hand-kept
// spreadsheet does: "North High School" → "North HS", "N. High School".
func perturbName(rng *rand.Rand, name string) string {
	switch rng.Intn(4) {
	case 0: // abbreviate known suffixes
		repl := map[string]string{
			"High School": "HS", "Elementary": "Elem", "Middle School": "MS",
			"Community Center": "Comm Ctr", "Recreation Center": "Rec Ctr",
			"Civic Center": "Civic Ctr", "Church Hall": "Church", "Armory": "Armory",
		}
		for long, short := range repl {
			if len(name) > len(long) && name[len(name)-len(long):] == long {
				return name[:len(name)-len(long)] + short
			}
		}
		return name
	case 1: // drop a trailing word
		for i := len(name) - 1; i > 0; i-- {
			if name[i] == ' ' {
				return name[:i]
			}
		}
		return name
	case 2: // abbreviate the first word
		for i := 0; i < len(name); i++ {
			if name[i] == ' ' {
				return name[:1] + "." + name[i:]
			}
		}
		return name
	default: // introduce a typo: drop one inner character
		if len(name) > 4 {
			i := 1 + rng.Intn(len(name)-2)
			return name[:i] + name[i+1:]
		}
		return name
	}
}

// perturbStreet abbreviates street types or drops the direction.
func perturbStreet(rng *rand.Rand, street string) string {
	if rng.Intn(2) == 0 {
		repl := map[string]string{" St": " Street", " Ave": " Avenue", " Dr": " Drive", " Rd": " Road", " Blvd": " Boulevard"}
		for short, long := range repl {
			if len(street) > len(short) && street[len(street)-len(short):] == short {
				return street[:len(street)-len(short)] + long
			}
		}
	}
	return street
}

func emailFor(person string) string {
	var b []byte
	for i := 0; i < len(person); i++ {
		c := person[i]
		switch {
		case c >= 'A' && c <= 'Z':
			b = append(b, c+'a'-'A')
		case c >= 'a' && c <= 'z':
			b = append(b, c)
		case c == ' ':
			b = append(b, '.')
		}
	}
	return string(b) + "@relief.example.org"
}

// CityByName returns the city record, or nil.
func (w *World) CityByName(name string) *City {
	for i := range w.Cities {
		if w.Cities[i].Name == name {
			return &w.Cities[i]
		}
	}
	return nil
}

// SheltersIn returns the shelters of one city in ID order.
func (w *World) SheltersIn(city string) []Shelter {
	var out []Shelter
	for _, s := range w.Shelters {
		if s.City == city {
			out = append(out, s)
		}
	}
	return out
}

// ShelterRelation renders the full ground-truth shelter table.
func (w *World) ShelterRelation() *table.Relation {
	r := table.NewRelation("ShelterTruth", table.NewSchema("Name", "Street", "City", "State", "Zip", "Status"))
	for _, s := range w.Shelters {
		r.MustAppend(table.FromStrings([]string{s.Name, s.Street, s.City, s.State, s.Zip, s.Status}))
	}
	return r
}

// ContactRelation renders the ground-truth contact table (without the
// hidden ShelterID link).
func (w *World) ContactRelation() *table.Relation {
	r := table.NewRelation("ContactTruth", table.NewSchema("Person", "Org", "Street", "City", "Phone", "Email"))
	for _, c := range w.Contacts {
		r.MustAppend(table.FromStrings([]string{c.Person, c.Org, c.Street, c.City, c.Phone, c.Email}))
	}
	return r
}
