package webworld

import (
	"strings"
	"testing"

	"copycat/internal/docmodel"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a.Shelters) != len(b.Shelters) || len(a.Shelters) == 0 {
		t.Fatal("generation not deterministic in size")
	}
	for i := range a.Shelters {
		if a.Shelters[i] != b.Shelters[i] {
			t.Fatalf("shelter %d differs between runs", i)
		}
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs between runs", i)
		}
	}
	c := Generate(Config{Seed: 7, Cities: 3, SheltersPerCity: 2, Supplies: 4, Roads: 4})
	if len(c.Cities) != 3 || len(c.Shelters) != 6 || len(c.Supplies) != 4 || len(c.Roads) != 4 {
		t.Errorf("sizes wrong: %d cities %d shelters", len(c.Cities), len(c.Shelters))
	}
}

func TestWorldInvariants(t *testing.T) {
	w := Generate(DefaultConfig())
	cityNames := map[string]bool{}
	for _, c := range w.Cities {
		if cityNames[c.Name] {
			t.Errorf("duplicate city %s", c.Name)
		}
		cityNames[c.Name] = true
		if len(c.Zips) == 0 {
			t.Errorf("city %s has no zips", c.Name)
		}
		for _, z := range c.Zips {
			if len(z) != 5 {
				t.Errorf("zip %q not 5 digits", z)
			}
		}
	}
	for _, s := range w.Shelters {
		if !cityNames[s.City] {
			t.Errorf("shelter %s in unknown city %s", s.Name, s.City)
		}
		city := w.CityByName(s.City)
		found := false
		for _, z := range city.Zips {
			if z == s.Zip {
				found = true
			}
		}
		if !found {
			t.Errorf("shelter %s zip %s not in city zips", s.Name, s.Zip)
		}
		if s.Capacity <= 0 || s.Street == "" || s.Phone == "" {
			t.Errorf("shelter %d has empty fields: %+v", s.ID, s)
		}
	}
	if w.CityByName("Atlantis") != nil {
		t.Error("unknown city should be nil")
	}
}

func TestContactsLinkToShelters(t *testing.T) {
	w := Generate(DefaultConfig())
	if len(w.Contacts) != len(w.Shelters) {
		t.Fatalf("want one contact per shelter: %d vs %d", len(w.Contacts), len(w.Shelters))
	}
	perturbed := 0
	for _, c := range w.Contacts {
		s := w.Shelters[c.ShelterID]
		if c.City != s.City {
			t.Errorf("contact city %s != shelter city %s", c.City, s.City)
		}
		if c.Org != s.Name {
			perturbed++
		}
		if !strings.Contains(c.Email, "@relief.example.org") {
			t.Errorf("email format wrong: %s", c.Email)
		}
	}
	// With noise 0.5 over 30 contacts, some but not all should differ.
	if perturbed == 0 || perturbed == len(w.Contacts) {
		t.Errorf("perturbation count suspicious: %d of %d", perturbed, len(w.Contacts))
	}
}

func TestGroundTruthRelations(t *testing.T) {
	w := Generate(DefaultConfig())
	sr := w.ShelterRelation()
	if sr.Len() != len(w.Shelters) || sr.Schema.Index("Zip") < 0 {
		t.Error("ShelterRelation wrong")
	}
	cr := w.ContactRelation()
	if cr.Len() != len(w.Contacts) || cr.Schema.Index("Email") < 0 {
		t.Error("ContactRelation wrong")
	}
}

func TestSheltersIn(t *testing.T) {
	w := Generate(DefaultConfig())
	total := 0
	for _, c := range w.Cities {
		in := w.SheltersIn(c.Name)
		if len(in) != w.Config.SheltersPerCity {
			t.Errorf("city %s has %d shelters want %d", c.Name, len(in), w.Config.SheltersPerCity)
		}
		total += len(in)
	}
	if total != len(w.Shelters) {
		t.Error("SheltersIn does not partition")
	}
}

func TestStyleNames(t *testing.T) {
	names := map[SiteStyle]string{
		StyleTable: "table", StyleList: "list", StyleGrouped: "grouped",
		StylePaged: "paged", StyleForm: "form",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("style %d = %q want %q", s, s.String(), want)
		}
	}
	if !strings.Contains(SiteStyle(99).String(), "99") {
		t.Error("unknown style should embed number")
	}
	if len(AllStyles()) != 6 {
		t.Error("AllStyles should list 6 styles")
	}
}

func TestShelterSiteTable(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSite(StyleTable)
	root := site.RootPage()
	if root == nil {
		t.Fatal("no root page")
	}
	// Every shelter name appears on the page; boilerplate noise also there.
	for _, s := range w.Shelters {
		if !strings.Contains(root.Raw, s.Name) {
			t.Errorf("page missing shelter %s", s.Name)
		}
	}
	for _, noise := range []string{"Storm Center", "Hardware Depot", "Copyright 2008"} {
		if !strings.Contains(root.Raw, noise) {
			t.Errorf("page missing boilerplate %q", noise)
		}
	}
	rows := root.DOM().Find("table").FindAll("tr")
	if len(rows) != len(w.Shelters)+1 {
		t.Errorf("table rows = %d want %d", len(rows), len(w.Shelters)+1)
	}
}

func TestShelterSiteList(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSite(StyleList)
	lis := site.RootPage().DOM().FindAll("li")
	if len(lis) != len(w.Shelters) {
		t.Errorf("list items = %d want %d", len(lis), len(w.Shelters))
	}
	// Composite text includes the em-dash separator.
	if !strings.Contains(lis[0].InnerText(), "—") {
		t.Errorf("list item should contain em dash: %q", lis[0].InnerText())
	}
}

func TestShelterSiteGrouped(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSite(StyleGrouped)
	doc := site.RootPage().DOM()
	h2s := doc.FindAll("h2")
	if len(h2s) != len(w.Cities) {
		t.Errorf("h2 count = %d want %d", len(h2s), len(w.Cities))
	}
	tables := doc.FindAll("table")
	if len(tables) != len(w.Cities) {
		t.Errorf("tables = %d want %d", len(tables), len(w.Cities))
	}
}

func TestShelterSitePaged(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSite(StylePaged)
	wantPages := (len(w.Shelters) + pageSize - 1) / pageSize
	if len(site.Pages) != wantPages {
		t.Fatalf("pages = %d want %d", len(site.Pages), wantPages)
	}
	// Follow next links from the root and count shelters seen.
	seen := 0
	cur := site.RootPage()
	visited := map[string]bool{}
	for cur != nil && !visited[cur.URL] {
		visited[cur.URL] = true
		seen += len(cur.DOM().Find("table").FindAll("tr")) - 1
		var next *docmodel.Document
		for _, href := range site.Links(cur) {
			if !visited[href] {
				next = site.Get(href)
				break
			}
		}
		cur = next
	}
	if seen != len(w.Shelters) {
		t.Errorf("paged traversal saw %d shelters want %d", seen, len(w.Shelters))
	}
}

func TestShelterSiteForm(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSite(StyleForm)
	if len(site.Forms) != 1 {
		t.Fatalf("forms = %d", len(site.Forms))
	}
	f := site.Forms[0]
	if f.InputName != "city" {
		t.Errorf("form input = %s", f.InputName)
	}
	// Submitting each city yields that city's page.
	for _, c := range w.Cities {
		page := site.Get(f.Action + c.Name)
		if page == nil {
			t.Fatalf("no result page for %s", c.Name)
		}
		rows := page.DOM().Find("table").FindAll("tr")
		if len(rows)-1 != len(w.SheltersIn(c.Name)) {
			t.Errorf("city %s rows = %d want %d", c.Name, len(rows)-1, len(w.SheltersIn(c.Name)))
		}
	}
}

func TestContactsSpreadsheet(t *testing.T) {
	w := Generate(DefaultConfig())
	doc := w.ContactsSpreadsheet()
	if doc.Kind != docmodel.KindSpreadsheet {
		t.Fatal("kind wrong")
	}
	g := doc.Grid()
	if len(g) != len(w.Contacts)+1 {
		t.Fatalf("grid rows = %d", len(g))
	}
	if g[0][0] != "Contact" || g[0][5] != "Email" {
		t.Errorf("header wrong: %v", g[0])
	}
	if g[1][0] != w.Contacts[0].Person {
		t.Errorf("first row wrong: %v", g[1])
	}
}

func TestSuppliesAndRoadsPages(t *testing.T) {
	w := Generate(DefaultConfig())
	sup := w.SuppliesPage()
	rows := sup.RootPage().DOM().Find("table").FindAll("tr")
	if len(rows)-1 != len(w.Supplies) {
		t.Errorf("supplies rows = %d want %d", len(rows)-1, len(w.Supplies))
	}
	roads := w.RoadsPage()
	lis := roads.RootPage().DOM().FindAll("li")
	if len(lis) != len(w.Roads) {
		t.Errorf("roads items = %d want %d", len(lis), len(w.Roads))
	}
}

func TestPerturbHelpers(t *testing.T) {
	w := Generate(Config{Seed: 9, Cities: 2, SheltersPerCity: 3, ContactsNoise: 1.0, Supplies: 1, Roads: 1})
	// With noise 1.0 every contact gets a perturbation attempt; most orgs
	// should differ from the shelter name.
	diff := 0
	for _, c := range w.Contacts {
		if c.Org != w.Shelters[c.ShelterID].Name {
			diff++
		}
	}
	if diff == 0 {
		t.Error("noise=1.0 should perturb some org names")
	}
}

func TestShelterSiteProse(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSite(StyleProse)
	root := site.RootPage()
	if root == nil {
		t.Fatal("no root")
	}
	// Every shelter appears in a paragraph with its bolded name.
	doc := root.DOM()
	bolds := doc.FindAll("b")
	if len(bolds) != len(w.Shelters) {
		t.Fatalf("bolded names = %d want %d", len(bolds), len(w.Shelters))
	}
	// Filler paragraphs exist between records.
	if !strings.Contains(root.Raw, "Sandbag distribution") {
		t.Error("filler paragraphs missing")
	}
	// And no table/list structure to latch onto.
	if doc.Find("table") != nil || doc.Find("ul") != nil {
		t.Error("prose page should have no table/list structure")
	}
}

func TestShelterSiteRange(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSiteRange(10, 20, "County", "http://county/shelters")
	rows := site.RootPage().DOM().Find("table").FindAll("tr")
	if len(rows)-1 != 10 {
		t.Errorf("range rows = %d want 10", len(rows)-1)
	}
	if !strings.Contains(site.RootPage().Raw, w.Shelters[10].Name) {
		t.Error("range start missing")
	}
	if strings.Contains(site.RootPage().Raw, w.Shelters[0].Street) {
		t.Error("out-of-range shelter leaked in")
	}
	// Bounds are clamped.
	all := w.ShelterSiteRange(-5, 999, "All", "http://x/")
	rows = all.RootPage().DOM().Find("table").FindAll("tr")
	if len(rows)-1 != len(w.Shelters) {
		t.Errorf("clamped rows = %d", len(rows)-1)
	}
}

func TestUnknownStyleYieldsEmptySite(t *testing.T) {
	w := Generate(DefaultConfig())
	site := w.ShelterSite(SiteStyle(99))
	if len(site.Pages) != 0 {
		t.Error("unknown style should produce no pages")
	}
}
