package webworld

import (
	"reflect"
	"testing"
)

// The scaled mode must leave the demo world untouched: chains derive
// from indices only, so a scale-1 world contains the default world's
// cities/shelters/contacts bit for bit.
func TestScaledConfigPreservesBaseWorld(t *testing.T) {
	base := Generate(DefaultConfig())
	scaled := Generate(ScaledConfig(1))
	if !reflect.DeepEqual(base.Cities, scaled.Cities) {
		t.Fatal("scale-1 cities differ from the demo world")
	}
	if !reflect.DeepEqual(base.Shelters, scaled.Shelters) {
		t.Fatal("scale-1 shelters differ from the demo world")
	}
	if !reflect.DeepEqual(base.Contacts, scaled.Contacts) {
		t.Fatal("scale-1 contacts differ from the demo world")
	}
	if len(scaled.Chains) != len(scaled.Cities) {
		t.Fatalf("want one chain per city, got %d chains for %d cities",
			len(scaled.Chains), len(scaled.Cities))
	}
}

func TestScaledWorldDeterministic(t *testing.T) {
	a := Generate(ScaledConfig(10))
	b := Generate(ScaledConfig(10))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scaled generation is not deterministic")
	}
}

func TestScaledWorldSizes(t *testing.T) {
	for _, scale := range []int{1, 10, 100} {
		cfg := ScaledConfig(scale)
		w := Generate(cfg)
		if got, want := len(w.Cities), 6*scale; got != want {
			t.Fatalf("scale %d: %d cities, want %d", scale, got, want)
		}
		if got, want := len(w.Shelters), 6*scale*5; got != want {
			t.Fatalf("scale %d: %d shelters, want %d", scale, got, want)
		}
		if got, want := len(w.Chains), 6*scale; got != want {
			t.Fatalf("scale %d: %d chains, want %d", scale, got, want)
		}
		// City names must be unique even past the name-pool size.
		seen := map[string]bool{}
		for _, c := range w.Cities {
			if seen[c.Name] {
				t.Fatalf("scale %d: duplicate city %q", scale, c.Name)
			}
			seen[c.Name] = true
		}
	}
}

func TestStitchChainShape(t *testing.T) {
	w := Generate(ScaledConfig(1))
	for _, sc := range w.Chains {
		if len(sc.Rels) != 6 {
			t.Fatalf("chain for %s: %d rels, want 6", sc.City, len(sc.Rels))
		}
		first, last := sc.Rels[0], sc.Rels[len(sc.Rels)-1]
		if first.Cols[0] != "Name" || last.Cols[1] != "Status" {
			t.Fatalf("chain for %s: endpoints %v … %v", sc.City, first.Cols, last.Cols)
		}
		// Interior hops link key columns pairwise.
		for h := 0; h < len(sc.Rels)-1; h++ {
			if sc.Rels[h].Cols[1] != sc.Rels[h+1].Cols[0] {
				t.Fatalf("chain for %s: hop %d key %q != next hop key %q",
					sc.City, h, sc.Rels[h].Cols[1], sc.Rels[h+1].Cols[0])
			}
		}
		// Decoy bridges first to last key, and its pairings are rotated
		// (stale): no decoy row may match the fresh composition.
		fresh := map[string]string{}
		for i := range sc.Rels[0].Rows {
			k := sc.Rels[0].Rows[i][1]
			fresh[k] = sc.Rels[len(sc.Rels)-2].Rows[i][1]
		}
		if len(sc.Decoy.Rows) == 0 {
			t.Fatalf("chain for %s: empty decoy", sc.City)
		}
		for _, row := range sc.Decoy.Rows {
			if fresh[row[0]] == row[1] {
				t.Fatalf("chain for %s: decoy row %v matches fresh data", sc.City, row)
			}
		}
	}
}
