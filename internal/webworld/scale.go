package webworld

import "fmt"

// This file is the size-parameterized world mode: the same seeded
// Config, scaled to hundreds of cities and thousands of narrow sources,
// plus SmartInt-style stitching chains — fragmented shelter databases
// that must be joined end to end to answer a query, each with a stale
// decoy shortcut. Chain content is a pure function of city/chain/hop
// indices and the already-generated shelters, so enabling chains never
// perturbs the RNG stream of the base world: a scaled world at scale 1
// contains the demo world bit for bit.

// ChainRel is one narrow fragment relation of a stitching chain.
type ChainRel struct {
	Name string
	Cols []string
	Rows [][]string
}

// StitchChain is one SmartInt-style fragmented-source chain for a city:
// Rels[0] maps shelter Name to the first synthetic key, middle fragments
// hop key to key, and the last fragment maps the final key to Status.
// Joining Rels end to end answers "status for shelter" with fresh data.
// Decoy is a stale shortcut relation bridging the first key directly to
// the last, with every row rotated one shelter off — cheap-looking and
// wrong, the ground-truth trap for the tiered solver path.
type StitchChain struct {
	City  string
	Rels  []ChainRel
	Decoy ChainRel
}

// ScaledConfig returns the demo config scaled by the given factor:
// scale 1 is the §8 demo world plus one 6-hop stitching chain per city;
// 10 and 100 grow cities (and with them shelters, contacts, and chain
// fragments) linearly — the 10–100x worlds of the scale experiment.
func ScaledConfig(scale int) Config {
	cfg := DefaultConfig()
	if scale < 1 {
		scale = 1
	}
	cfg.Cities *= scale
	cfg.Supplies *= scale
	cfg.Roads *= scale
	cfg.ChainsPerCity = 1
	cfg.ChainLen = 6
	return cfg
}

// chainKey is the synthetic join key linking hop h to hop h+1 of a chain
// for one shelter — deterministic, unique per (city, chain, hop, row).
func chainKey(ci, chain, hop, row int) string {
	return fmt.Sprintf("K%03d-%d-%d-%03d", ci, chain, hop, row)
}

// buildChains fills w.Chains from the generated shelters. No RNG: chain
// structure derives entirely from indices and shelter fields.
func buildChains(w *World, cfg Config) {
	if cfg.ChainsPerCity <= 0 || cfg.ChainLen < 3 {
		return
	}
	for ci := range w.Cities {
		city := w.Cities[ci].Name
		shelters := w.SheltersIn(city)
		if len(shelters) == 0 {
			continue
		}
		for ch := 0; ch < cfg.ChainsPerCity; ch++ {
			sc := StitchChain{City: city}
			L := cfg.ChainLen
			relName := func(hop int) string {
				return fmt.Sprintf("Stitch_%03d_%d_f%d", ci, ch, hop)
			}
			keyCol := func(hop int) string { return fmt.Sprintf("Key%d", hop) }
			for hop := 0; hop < L; hop++ {
				var rel ChainRel
				rel.Name = relName(hop)
				switch {
				case hop == 0:
					rel.Cols = []string{"Name", keyCol(1)}
				case hop == L-1:
					rel.Cols = []string{keyCol(L - 1), "Status"}
				default:
					rel.Cols = []string{keyCol(hop), keyCol(hop + 1)}
				}
				for row, s := range shelters {
					switch {
					case hop == 0:
						rel.Rows = append(rel.Rows, []string{s.Name, chainKey(ci, ch, 1, row)})
					case hop == L-1:
						rel.Rows = append(rel.Rows, []string{chainKey(ci, ch, L-1, row), s.Status})
					default:
						rel.Rows = append(rel.Rows, []string{chainKey(ci, ch, hop, row), chainKey(ci, ch, hop+1, row)})
					}
				}
				sc.Rels = append(sc.Rels, rel)
			}
			// Stale shortcut: first key straight to last key, rotated one
			// shelter off — the pairings predate the storm re-keying.
			sc.Decoy = ChainRel{
				Name: fmt.Sprintf("Stitch_%03d_%d_stale", ci, ch),
				Cols: []string{keyCol(1), keyCol(L - 1)},
			}
			for row := range shelters {
				sc.Decoy.Rows = append(sc.Decoy.Rows, []string{
					chainKey(ci, ch, 1, row),
					chainKey(ci, ch, L-1, (row+1)%len(shelters)),
				})
			}
			w.Chains = append(w.Chains, sc)
		}
	}
}
