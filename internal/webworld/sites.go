package webworld

import (
	"fmt"
	"strings"

	"copycat/internal/docmodel"
	"copycat/internal/htmldoc"
)

// SiteStyle selects how the TV-news shelter site is rendered. The styles
// form the page-complexity ladder of experiment E3: each step makes the
// structure learner's hypothesis space larger (§3.1: "the more complex the
// pages are, the more examples may be necessary").
type SiteStyle uint8

const (
	// StyleTable is one clean page with a <table> — the easy case.
	StyleTable SiteStyle = iota
	// StyleList is one page with an <ul> of "Name — Street, City" items:
	// fields must be segmented out of composite text.
	StyleList
	// StyleGrouped groups shelters by city under <h2> headings — the
	// Figure 1 ambiguity (generalize to all shelters, or one city's?).
	StyleGrouped
	// StylePaged splits the table across pages linked by "Next".
	StylePaged
	// StyleForm gates pages behind a city-search form (input bindings
	// must be discovered).
	StyleForm
	// StyleProse buries the shelters in free-text paragraphs with no
	// repeating tag structure: only the sequential-covering fallback can
	// extract them, and it needs one example per distinct value shape.
	StyleProse
)

// String names the style.
func (s SiteStyle) String() string {
	switch s {
	case StyleTable:
		return "table"
	case StyleList:
		return "list"
	case StyleGrouped:
		return "grouped"
	case StylePaged:
		return "paged"
	case StyleForm:
		return "form"
	case StyleProse:
		return "prose"
	}
	return fmt.Sprintf("style(%d)", uint8(s))
}

// AllStyles lists the complexity ladder in order.
func AllStyles() []SiteStyle {
	return []SiteStyle{StyleTable, StyleList, StyleGrouped, StylePaged, StyleForm, StyleProse}
}

const pageSize = 8 // shelters per page for StylePaged

// boilerplate wraps page content in realistic chrome: masthead, nav,
// sidebar ad, and footer — the noise extraction must skip.
func boilerplate(title, body string) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html><head><title>%s</title></head>
<body>
<div class="masthead"><h1>Channel 7 Storm Center</h1>
<div class="nav"><a href="http://tv.example.com/">Home</a> <a href="http://tv.example.com/weather">Weather</a> <a href="http://tv.example.com/closures">Closures</a></div></div>
<div class="ad">Generators in stock at Hardware Depot — call 954-555-0199 today!</div>
%s
<div class="footer">Copyright 2008 Channel 7. Updated hourly during the emergency. Contact newsroom: 954-555-0147.</div>
</body></html>`, htmldoc.Escape(title), body)
}

// ShelterSite renders the world's shelters as a TV-news web site in the
// given style and returns it with all pages registered.
func (w *World) ShelterSite(style SiteStyle) *docmodel.Site {
	base := "http://tv.example.com/shelters"
	site := docmodel.NewSite("Shelters", base)
	switch style {
	case StyleTable:
		site.Add(docmodel.NewHTML(base, "Shelters", boilerplate("Open Shelters", w.shelterTableHTML(w.Shelters))))
	case StyleList:
		site.Add(docmodel.NewHTML(base, "Shelters", boilerplate("Open Shelters", w.shelterListHTML(w.Shelters))))
	case StyleGrouped:
		var b strings.Builder
		for _, c := range w.Cities {
			fmt.Fprintf(&b, "<h2>%s</h2>\n", htmldoc.Escape(c.Name))
			b.WriteString(w.shelterTableHTML(w.SheltersIn(c.Name)))
		}
		site.Add(docmodel.NewHTML(base, "Shelters", boilerplate("Shelters by City", b.String())))
	case StylePaged:
		var pages [][]Shelter
		for i := 0; i < len(w.Shelters); i += pageSize {
			end := i + pageSize
			if end > len(w.Shelters) {
				end = len(w.Shelters)
			}
			pages = append(pages, w.Shelters[i:end])
		}
		for p, chunk := range pages {
			url := base
			if p > 0 {
				url = fmt.Sprintf("%s?page=%d", base, p)
			}
			body := w.shelterTableHTML(chunk)
			if p+1 < len(pages) {
				body += fmt.Sprintf(`<p><a href="%s?page=%d" class="next">Next page</a></p>`, base, p+1)
			}
			site.Add(docmodel.NewHTML(url, fmt.Sprintf("Shelters p%d", p+1), boilerplate("Open Shelters", body)))
		}
	case StyleForm:
		var b strings.Builder
		b.WriteString(`<form action="http://tv.example.com/shelters/search"><input name="city" type="text"><input type="submit" value="Find shelters"></form>`)
		b.WriteString("<p>Enter a city to list its shelters.</p>")
		site.Add(docmodel.NewHTML(base, "Shelter Search", boilerplate("Shelter Search", b.String())))
		site.Forms = append(site.Forms, docmodel.Form{
			PageURL:   base,
			Action:    "http://tv.example.com/shelters/search?city=",
			InputName: "city",
		})
		for _, c := range w.Cities {
			url := "http://tv.example.com/shelters/search?city=" + c.Name
			site.Add(docmodel.NewHTML(url, "Shelters in "+c.Name,
				boilerplate("Shelters in "+c.Name, w.shelterTableHTML(w.SheltersIn(c.Name)))))
		}
	case StyleProse:
		site.Add(docmodel.NewHTML(base, "Shelters", boilerplate("Storm Updates", w.shelterProseHTML())))
	}
	return site
}

// shelterProseHTML writes one narrative paragraph per shelter, with
// filler paragraphs in between — no table, list, or repeated class
// structure for the experts to latch onto.
func (w *World) shelterProseHTML() string {
	filler := []string{
		"County officials urge residents to stay off the roads tonight.",
		"Power crews report scattered outages across the barrier islands.",
		"Sandbag distribution continues while supplies last.",
		"The causeway drawbridge remains locked down for the duration.",
	}
	var b strings.Builder
	for i, s := range w.Shelters {
		fmt.Fprintf(&b, "<p><b>%s</b> is accepting evacuees at %s in %s tonight.</p>\n",
			htmldoc.Escape(s.Name), htmldoc.Escape(s.Street), htmldoc.Escape(s.City))
		if i%3 == 2 {
			fmt.Fprintf(&b, "<p>%s</p>\n", filler[(i/3)%len(filler)])
		}
	}
	return b.String()
}

func (w *World) shelterTableHTML(shelters []Shelter) string {
	var b strings.Builder
	b.WriteString(`<table class="data"><tr><th>Shelter</th><th>Address</th><th>City</th><th>Status</th></tr>` + "\n")
	for _, s := range shelters {
		fmt.Fprintf(&b, `<tr><td><a href="http://tv.example.com/shelter/%d">%s</a></td><td>%s</td><td>%s</td><td>%s</td></tr>`+"\n",
			s.ID, htmldoc.Escape(s.Name), htmldoc.Escape(s.Street), htmldoc.Escape(s.City), s.Status)
	}
	b.WriteString("</table>\n")
	return b.String()
}

func (w *World) shelterListHTML(shelters []Shelter) string {
	var b strings.Builder
	b.WriteString(`<ul class="shelters">` + "\n")
	for _, s := range shelters {
		fmt.Fprintf(&b, `<li><b>%s</b> &mdash; %s, %s (%s)</li>`+"\n",
			htmldoc.Escape(s.Name), htmldoc.Escape(s.Street), htmldoc.Escape(s.City), s.Status)
	}
	b.WriteString("</ul>\n")
	return b.String()
}

// ShelterSiteRange renders a table-style site at baseURL covering only
// Shelters[from:to] — a second, partially overlapping source for union
// scenarios (§2.1: pasting rows from another source "expresses a
// union").
func (w *World) ShelterSiteRange(from, to int, name, baseURL string) *docmodel.Site {
	if from < 0 {
		from = 0
	}
	if to > len(w.Shelters) {
		to = len(w.Shelters)
	}
	site := docmodel.NewSite(name, baseURL)
	site.Add(docmodel.NewHTML(baseURL, name,
		boilerplate(name, w.shelterTableHTML(w.Shelters[from:to]))))
	return site
}

// ContactsSpreadsheet renders the contact list as the Excel-like CSV
// document of the demo task.
func (w *World) ContactsSpreadsheet() *docmodel.Document {
	rows := [][]string{{"Contact", "Organization", "Address", "City", "Phone", "Email"}}
	for _, c := range w.Contacts {
		rows = append(rows, []string{c.Person, c.Org, c.Street, c.City, c.Phone, c.Email})
	}
	return docmodel.NewSpreadsheet("file:///contacts.csv", "Shelter Contacts", docmodel.FormatCSV(rows))
}

// SuppliesPage renders the relief-supply depots as a county web page.
func (w *World) SuppliesPage() *docmodel.Site {
	url := "http://county.example.gov/supplies"
	var b strings.Builder
	b.WriteString(`<table class="data"><tr><th>Depot</th><th>City</th><th>Item</th><th>Qty</th></tr>` + "\n")
	for _, s := range w.Supplies {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>\n",
			htmldoc.Escape(s.Depot), htmldoc.Escape(s.City), htmldoc.Escape(s.Item), s.Quantity)
	}
	b.WriteString("</table>\n")
	site := docmodel.NewSite("Supplies", url)
	site.Add(docmodel.NewHTML(url, "Relief Supplies", boilerplate("Relief Supplies", b.String())))
	return site
}

// RoadsPage renders road conditions as a DOT web page.
func (w *World) RoadsPage() *docmodel.Site {
	url := "http://dot.example.gov/roads"
	var b strings.Builder
	b.WriteString(`<ul class="roads">` + "\n")
	for _, r := range w.Roads {
		fmt.Fprintf(&b, "<li>%s near %s: <b>%s</b></li>\n",
			htmldoc.Escape(r.Road), htmldoc.Escape(r.City), r.Status)
	}
	b.WriteString("</ul>\n")
	site := docmodel.NewSite("Roads", url)
	site.Add(docmodel.NewHTML(url, "Road Conditions", boilerplate("Road Conditions", b.String())))
	return site
}
