package steiner

import (
	"context"
	"errors"
	"testing"
)

func TestTopKBoundaryGuards(t *testing.T) {
	g := diamond()
	if TopK(g, []int{0, 3}, -1, Exact) != nil {
		t.Error("k<0 should be nil")
	}
	if TopK(g, []int{0, 3}, 0, Exact) != nil {
		t.Error("k=0 should be nil")
	}
	// Duplicate terminals must behave exactly like the deduped list.
	dup := TopK(g, []int{0, 3, 3, 0, 3}, 3, Exact)
	clean := TopK(g, []int{0, 3}, 3, Exact)
	if len(dup) != len(clean) {
		t.Fatalf("dup terminals: %d trees, deduped: %d", len(dup), len(clean))
	}
	for i := range dup {
		if dup[i].Key() != clean[i].Key() || dup[i].Cost != clean[i].Cost {
			t.Fatalf("tree %d differs: dup %s/%.1f vs clean %s/%.1f",
				i, dup[i].Key(), dup[i].Cost, clean[i].Key(), clean[i].Cost)
		}
	}
}

func TestTopKCtxCancelled(t *testing.T) {
	g := diamond()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trees, err := TopKCtx(ctx, g, []int{0, 3}, 3, WithCtx(Exact), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (trees=%v)", err, trees)
	}
	if trees != nil {
		t.Fatalf("cancelled run returned %d trees", len(trees))
	}
}

func TestTopKCtxMetrics(t *testing.T) {
	g := diamond()
	var m Metrics
	trees, err := TopKCtx(context.Background(), g, []int{0, 3}, 3, WithCtx(Exact), &m)
	if err != nil || len(trees) != 3 {
		t.Fatalf("trees=%d err=%v", len(trees), err)
	}
	if m.SolverCalls.Load() == 0 {
		t.Error("metrics did not count solver calls")
	}
	if m.Pruned() != m.Infeasible.Load()+m.Duplicates.Load() {
		t.Error("Pruned() should sum infeasible and duplicate branches")
	}
}

func TestExactCtxCancelled(t *testing.T) {
	g := diamond()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := ExactCtx(ctx, g, []int{0, 3}, nil); ok {
		t.Error("cancelled ExactCtx should report infeasible")
	}
}
