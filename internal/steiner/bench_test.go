package steiner

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchGraph builds a deterministic sparse "stitching" graph shaped like
// the scale-world source graphs: nChains chains of chainLen nodes hang
// off a shared backbone, with a few random cross edges. Terminals are
// spread across chain tails — the worst case for the metric-closure
// heuristic (every terminal needs its own Dijkstra).
func benchGraph(nChains, chainLen, nTerms int, seed int64) (*Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + nChains*chainLen
	g := NewGraph(n)
	for c := 0; c < nChains; c++ {
		prev := 0 // backbone root
		for i := 0; i < chainLen; i++ {
			node := 1 + c*chainLen + i
			g.AddEdge(prev, node, 0.5+rng.Float64())
			prev = node
		}
	}
	// Sparse cross links between chains.
	for i := 0; i < nChains; i++ {
		u := 1 + rng.Intn(n-1)
		v := 1 + rng.Intn(n-1)
		if u != v {
			g.AddEdge(u, v, 1.0+rng.Float64())
		}
	}
	terms := make([]int, 0, nTerms)
	for t := 0; t < nTerms; t++ {
		c := (t * nChains) / nTerms
		terms = append(terms, 1+c*chainLen+chainLen-1) // chain tail
	}
	return g, terms
}

// BenchmarkSPCSHCtx measures the heuristic solver at 1x and 10x graph
// and terminal scale — the per-suggestion hot path on large worlds.
func BenchmarkSPCSHCtx(b *testing.B) {
	for _, sc := range []struct {
		name           string
		chains, len, t int
	}{
		{"1x", 12, 5, 4},
		{"10x", 120, 5, 40},
	} {
		b.Run(sc.name, func(b *testing.B) {
			g, terms := benchGraph(sc.chains, sc.len, sc.t, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := SPCSH(g, terms, nil); !ok {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

// BenchmarkExactCtx measures the Dreyfus–Wagner solver at 1x and 10x
// terminal counts (its cost is exponential in terminals, so the graph
// stays small).
func BenchmarkExactCtx(b *testing.B) {
	for _, sc := range []struct {
		name           string
		chains, len, t int
	}{
		{"1x", 12, 5, 4},
		{"10x", 12, 5, 8},
	} {
		b.Run(sc.name, func(b *testing.B) {
			g, terms := benchGraph(sc.chains, sc.len, sc.t, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := Exact(g, terms, nil); !ok {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

// BenchmarkTopKSPCSH measures the full Lawler enumeration over the
// heuristic solver on the 10x graph — the tiered first-answer path.
func BenchmarkTopKSPCSH(b *testing.B) {
	g, terms := benchGraph(120, 5, 12, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trees := TopK(g, terms, 3, SPCSH); len(trees) == 0 {
			b.Fatal("no trees")
		}
	}
}

func ExampleGraph_benchShape() {
	g, terms := benchGraph(12, 5, 4, 7)
	fmt.Println(g.N(), g.M(), len(terms))
	// Output: 61 72 4
}
