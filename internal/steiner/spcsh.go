package steiner

import (
	"container/heap"
	"context"
	"math"
	"sort"
)

// SPCSH is the shortest-paths complete-subgraph heuristic ([34]'s scalable
// approximation): build the metric closure over the terminals via
// Dijkstra, take its minimum spanning tree, expand the MST edges back into
// graph paths, and prune non-terminal leaves. The result is within 2× of
// optimal (classic KMB bound) and usually much closer.
func SPCSH(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	return SPCSHCtx(context.Background(), g, terminals, banned)
}

// SPCSHCtx is SPCSH under a context: cancellation is checked between the
// per-terminal Dijkstra runs (the dominant cost on large graphs) and
// reports ok=false.
func SPCSHCtx(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	terminals = dedupeTerminals(terminals)
	if len(terminals) <= 1 {
		return &Tree{}, true
	}
	// Dijkstra from each terminal, remembering the edge used to reach
	// each node so paths can be expanded.
	type sssp struct {
		dist []float64
		via  []int // edge id used to reach node, -1 at source
		prev []int
	}
	runs := make([]sssp, len(terminals))
	for i, s := range terminals {
		if ctx.Err() != nil {
			return nil, false
		}
		runs[i] = dijkstra(g, s, banned)
	}
	// Prim's MST over the terminal closure.
	inTree := make([]bool, len(terminals))
	inTree[0] = true
	type pick struct{ from, to int }
	picks := make([]pick, 0, len(terminals)-1)
	for len(picks) < len(terminals)-1 {
		best, bi, bj := math.Inf(1), -1, -1
		for i := range terminals {
			if !inTree[i] {
				continue
			}
			for j := range terminals {
				if inTree[j] {
					continue
				}
				if d := runs[i].dist[terminals[j]]; d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		if bi < 0 {
			return nil, false // disconnected
		}
		inTree[bj] = true
		picks = append(picks, pick{from: bi, to: bj})
	}
	// Expand closure edges into graph paths; union the edge sets.
	edgeSet := map[int]bool{}
	for _, p := range picks {
		r := runs[p.from]
		v := terminals[p.to]
		for r.via[v] >= 0 {
			edgeSet[r.via[v]] = true
			v = r.prev[v]
		}
	}
	tree := &Tree{}
	for id := range edgeSet {
		tree.Edges = append(tree.Edges, id)
	}
	// MST of the expanded subgraph (Kruskal) removes any cycles the
	// overlapping shortest paths introduced, then non-terminal leaves are
	// pruned away.
	tree.Edges = subgraphMST(g, tree.Edges)
	prune(g, tree, terminals)
	sort.Ints(tree.Edges)
	tree.recompute(g)
	return tree, true
}

// subgraphMST runs Kruskal restricted to the given edge IDs.
func subgraphMST(g *Graph, ids []int) []int {
	sort.SliceStable(ids, func(a, b int) bool { return g.Edge(ids[a]).Cost < g.Edge(ids[b]).Cost })
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	var out []int
	for _, id := range ids {
		e := g.Edge(id)
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		out = append(out, id)
	}
	return out
}

// prune repeatedly removes non-terminal leaves (and breaks cycles by
// preferring a spanning subset) from the tree's edge set.
func prune(g *Graph, tree *Tree, terminals []int) {
	isTerm := map[int]bool{}
	for _, t := range terminals {
		isTerm[t] = true
	}
	for {
		deg := map[int]int{}
		for _, id := range tree.Edges {
			e := g.Edge(id)
			deg[e.U]++
			deg[e.V]++
		}
		removed := false
		kept := tree.Edges[:0]
		for _, id := range tree.Edges {
			e := g.Edge(id)
			if (deg[e.U] == 1 && !isTerm[e.U]) || (deg[e.V] == 1 && !isTerm[e.V]) {
				removed = true
				continue
			}
			kept = append(kept, id)
		}
		tree.Edges = kept
		if !removed {
			return
		}
	}
}

func dijkstra(g *Graph, src int, banned map[int]bool) struct {
	dist []float64
	via  []int
	prev []int
} {
	dist := make([]float64, g.n)
	via := make([]int, g.n)
	prev := make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		via[i] = -1
		prev[i] = -1
	}
	dist[src] = 0
	pq := &costHeap{{cost: 0, v: src}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(costItem)
		if it.cost > dist[it.v] {
			continue
		}
		for _, h := range g.adj[it.v] {
			if banned[h.edge] {
				continue
			}
			c := it.cost + g.Edge(h.edge).Cost
			if c < dist[h.to] {
				dist[h.to] = c
				via[h.to] = h.edge
				prev[h.to] = it.v
				heap.Push(pq, costItem{cost: c, v: h.to})
			}
		}
	}
	return struct {
		dist []float64
		via  []int
		prev []int
	}{dist, via, prev}
}

// PruneExpensive returns a ban set covering the most expensive fraction of
// edges that can be dropped without disconnecting the terminals — the
// "prunes non-promising edges from the source graph for better scaling"
// step the paper attributes to SPCSH. frac is the fraction of edges to
// try to remove (0..1).
func PruneExpensive(g *Graph, terminals []int, frac float64) map[int]bool {
	if frac <= 0 {
		return nil
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Edge(order[a]).Cost > g.Edge(order[b]).Cost
	})
	target := int(float64(g.M()) * frac)
	banned := map[int]bool{}
	for _, id := range order {
		if len(banned) >= target {
			break
		}
		banned[id] = true
		if !g.connectedToAll(terminals, banned) {
			delete(banned, id)
		}
	}
	return banned
}

// Approx composes pruning with SPCSH: the default large-graph solver.
func Approx(pruneFrac float64) Solver {
	ctxSolve := ApproxCtx(pruneFrac)
	return func(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
		return ctxSolve(context.Background(), g, terminals, banned)
	}
}

// ApproxCtx is Approx as a context-aware solver.
func ApproxCtx(pruneFrac float64) CtxSolver {
	return func(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
		merged := banned
		if pruneFrac > 0 {
			merged = map[int]bool{}
			for id := range banned {
				merged[id] = true
			}
			// Pruning must respect the caller's bans: compute on the
			// already-banned graph.
			for id := range PruneExpensive(g, terminals, pruneFrac) {
				merged[id] = true
			}
		}
		t, ok := SPCSHCtx(ctx, g, terminals, merged)
		if !ok && pruneFrac > 0 && ctx.Err() == nil {
			// Pruning can interact with bans; retry without it.
			return SPCSHCtx(ctx, g, terminals, banned)
		}
		return t, ok
	}
}
