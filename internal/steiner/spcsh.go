package steiner

import (
	"context"
	"math"
	"sort"
)

// SPCSH is the shortest-paths complete-subgraph heuristic ([34]'s scalable
// approximation): build the metric closure over the terminals via
// Dijkstra, take its minimum spanning tree, expand the MST edges back into
// graph paths, and prune non-terminal leaves. The result is within 2× of
// optimal (classic KMB bound) and usually much closer.
func SPCSH(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	return SPCSHCtx(context.Background(), g, terminals, banned)
}

// SPCSHCtx is SPCSH under a context: cancellation is checked between the
// per-terminal Dijkstra runs (the dominant cost on large graphs) and
// reports ok=false.
//
// All working memory (the t×n Dijkstra rows, the heap, the Kruskal
// union-find, the ban bitset) comes from the graph's scratch pool, so a
// steady-state call allocates only the returned Tree. The result is
// deterministic: edge sets are collected in pick order and deduped with
// epoch stamps (never map iteration), and the subgraph MST breaks cost
// ties by edge id.
func SPCSHCtx(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	terminals = dedupeTerminals(terminals)
	if len(terminals) <= 1 {
		return &Tree{}, true
	}
	cs := g.topo()
	s := g.getScratch()
	defer g.putScratch(s)

	n, t := g.n, len(terminals)
	ban := s.banBits(banned, len(g.edges))

	// Dijkstra from each terminal into one flat t×n block, remembering
	// the edge used to reach each node so paths can be expanded.
	s.dist = growF64(s.dist, t*n)
	s.via = growI32(s.via, t*n)
	s.prev = growI32(s.prev, t*n)
	for i, src := range terminals {
		if ctx.Err() != nil {
			return nil, false
		}
		s.dijkstra(cs, g.edges, src, ban, i*n, n)
	}

	// Prim's MST over the terminal closure, O(t²): best[j] tracks the
	// cheapest closure edge from the grown tree to terminal j.
	if cap(s.inTree) < t {
		s.inTree = make([]bool, t)
	}
	inTree := s.inTree[:t]
	clear(inTree)
	s.best = growF64(s.best, t)
	s.bestFrom = growI32(s.bestFrom, t)
	s.pickFrom = growI32(s.pickFrom, t)
	s.pickTo = growI32(s.pickTo, t)
	inTree[0] = true
	for j := 1; j < t; j++ {
		s.best[j] = s.dist[terminals[j]] // row 0
		s.bestFrom[j] = 0
	}
	picks := 0
	for picks < t-1 {
		bd, bj := math.Inf(1), -1
		for j := 1; j < t; j++ {
			if !inTree[j] && s.best[j] < bd {
				bd, bj = s.best[j], j
			}
		}
		if bj < 0 {
			return nil, false // disconnected
		}
		inTree[bj] = true
		s.pickFrom[picks] = s.bestFrom[bj]
		s.pickTo[picks] = int32(bj)
		picks++
		base := bj * n
		for j := 1; j < t; j++ {
			if !inTree[j] {
				if d := s.dist[base+terminals[j]]; d < s.best[j] {
					s.best[j] = d
					s.bestFrom[j] = int32(bj)
				}
			}
		}
	}

	// Expand closure edges into graph paths; union the edge sets with
	// epoch stamps (deterministic collection order).
	s.bumpEdgeEpoch(len(g.edges))
	ids := s.ids[:0]
	for p := 0; p < picks; p++ {
		base := int(s.pickFrom[p]) * n
		v := terminals[s.pickTo[p]]
		for s.via[base+v] >= 0 {
			e := s.via[base+v]
			if s.edgeStamp[e] != s.edgeEpoch {
				s.edgeStamp[e] = s.edgeEpoch
				ids = append(ids, int(e))
			}
			v = int(s.prev[base+v])
		}
	}
	// MST of the expanded subgraph (Kruskal) removes any cycles the
	// overlapping shortest paths introduced, then non-terminal leaves are
	// pruned away.
	ids = s.subgraphMST(g, ids)
	ids = s.prune(g, ids, terminals)
	s.ids = ids

	tree := &Tree{Edges: append([]int(nil), ids...)}
	sort.Ints(tree.Edges)
	tree.recompute(g)
	return tree, true
}

// dijkstra runs one single-source shortest-path pass into the scratch
// rows at offset base (length n), using the pooled heap.
func (s *scratch) dijkstra(cs *csr, edges []EdgeInfo, src int, ban []uint64, base, n int) {
	dist := s.dist[base : base+n]
	via := s.via[base : base+n]
	prev := s.prev[base : base+n]
	inf := math.Inf(1)
	for i := range dist {
		dist[i] = inf
		via[i] = -1
		prev[i] = -1
	}
	dist[src] = 0
	h := s.heap[:0]
	h.push(costItem{cost: 0, v: src})
	for len(h) > 0 {
		it := h.pop()
		if it.cost > dist[it.v] {
			continue
		}
		for i := cs.rowStart[it.v]; i < cs.rowStart[it.v+1]; i++ {
			e := cs.eid[i]
			if banHas(ban, e) {
				continue
			}
			c := it.cost + edges[e].Cost
			to := cs.to[i]
			if c < dist[to] {
				dist[to] = c
				via[to] = e
				prev[to] = int32(it.v)
				h.push(costItem{cost: c, v: int(to)})
			}
		}
	}
	s.heap = h[:0]
}

// subgraphMST runs Kruskal restricted to the given edge IDs, breaking
// cost ties by edge id so the chosen structure never depends on the
// collection order of the input.
func (s *scratch) subgraphMST(g *Graph, ids []int) []int {
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := g.edges[ids[a]].Cost, g.edges[ids[b]].Cost
		if ca != cb {
			return ca < cb
		}
		return ids[a] < ids[b]
	})
	s.bumpNodeEpoch(g.n)
	// Union-find over the epoch-stamped node payload array.
	find := func(x int32) int32 {
		for s.nodeStamp[x] == s.nodeEpoch && s.nodeVal[x] != x {
			x = s.nodeVal[x]
		}
		return x
	}
	w := 0
	for _, id := range ids {
		e := g.edges[id]
		ru, rv := find(int32(e.U)), find(int32(e.V))
		if ru == rv && s.nodeStamp[ru] == s.nodeEpoch {
			continue
		}
		if ru == rv { // both unseen singletons of the same node (self loop)
			continue
		}
		s.nodeStamp[ru], s.nodeVal[ru] = s.nodeEpoch, rv
		if s.nodeStamp[rv] != s.nodeEpoch {
			s.nodeStamp[rv], s.nodeVal[rv] = s.nodeEpoch, rv
		}
		ids[w] = id
		w++
	}
	return ids[:w]
}

// prune repeatedly removes non-terminal leaves from the edge set, using
// the epoch-stamped node array for degrees and terminal membership
// (payload bit 0: terminal, remaining bits: degree<<1).
func (s *scratch) prune(g *Graph, ids []int, terminals []int) []int {
	for {
		s.bumpNodeEpoch(g.n)
		mark := func(v int, delta int32) {
			if s.nodeStamp[v] != s.nodeEpoch {
				s.nodeStamp[v] = s.nodeEpoch
				s.nodeVal[v] = 0
			}
			s.nodeVal[v] += delta
		}
		for _, t := range terminals {
			mark(t, 1) // terminal bit
		}
		for _, id := range ids {
			e := g.edges[id]
			mark(e.U, 2)
			mark(e.V, 2)
		}
		leafNonTerm := func(v int) bool {
			return s.nodeVal[v]>>1 == 1 && s.nodeVal[v]&1 == 0
		}
		removed := false
		w := 0
		for _, id := range ids {
			e := g.edges[id]
			if leafNonTerm(e.U) || leafNonTerm(e.V) {
				removed = true
				continue
			}
			ids[w] = id
			w++
		}
		ids = ids[:w]
		if !removed {
			return ids
		}
	}
}

// PruneExpensive returns a ban set covering the most expensive fraction of
// edges that can be dropped without disconnecting the terminals — the
// "prunes non-promising edges from the source graph for better scaling"
// step the paper attributes to SPCSH. frac is the fraction of edges to
// try to remove (0..1).
func PruneExpensive(g *Graph, terminals []int, frac float64) map[int]bool {
	if frac <= 0 {
		return nil
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Edge(order[a]).Cost > g.Edge(order[b]).Cost
	})
	target := int(float64(g.M()) * frac)
	banned := map[int]bool{}
	for _, id := range order {
		if len(banned) >= target {
			break
		}
		banned[id] = true
		if !g.connectedToAll(terminals, banned) {
			delete(banned, id)
		}
	}
	return banned
}

// Approx composes pruning with SPCSH: the default large-graph solver.
func Approx(pruneFrac float64) Solver {
	ctxSolve := ApproxCtx(pruneFrac)
	return func(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
		return ctxSolve(context.Background(), g, terminals, banned)
	}
}

// ApproxCtx is Approx as a context-aware solver.
func ApproxCtx(pruneFrac float64) CtxSolver {
	return func(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
		merged := banned
		if pruneFrac > 0 {
			merged = map[int]bool{}
			for id := range banned {
				merged[id] = true
			}
			// Pruning must respect the caller's bans: compute on the
			// already-banned graph.
			for id := range PruneExpensive(g, terminals, pruneFrac) {
				merged[id] = true
			}
		}
		t, ok := SPCSHCtx(ctx, g, terminals, merged)
		if !ok && pruneFrac > 0 && ctx.Err() == nil {
			// Pruning can interact with bans; retry without it.
			return SPCSHCtx(ctx, g, terminals, banned)
		}
		return t, ok
	}
}
