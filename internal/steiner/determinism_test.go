package steiner

import (
	"math/rand"
	"testing"
)

// TestSPCSHDeterministicStructure pins the satellite fix: under the
// pooled/CSR representation SPCSH must pick the same tree — cost AND
// edge set — every run, even on graphs dense with equal-cost edges
// (where the old map-ordered Kruskal input made tie-breaking depend on
// map iteration order).
func TestSPCSHDeterministicStructure(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g, terms := tieGraph(seed)
		var refKey string
		var refCost float64
		for run := 0; run < 3; run++ {
			tr, ok := SPCSH(g, terms, nil)
			if !ok {
				t.Fatalf("seed %d run %d: infeasible", seed, run)
			}
			if run == 0 {
				refKey, refCost = tr.Key(), tr.Cost
				continue
			}
			if tr.Cost != refCost {
				t.Fatalf("seed %d run %d: cost %v != %v", seed, run, tr.Cost, refCost)
			}
			if tr.Key() != refKey {
				t.Fatalf("seed %d run %d: structure %q != %q", seed, run, tr.Key(), refKey)
			}
		}
	}
}

// TestSPCSHDeterministicUnderBans exercises the same property through
// the Lawler enumeration, where ban sets are built per subproblem and
// concurrent workers share the scratch pool.
func TestSPCSHDeterministicUnderBans(t *testing.T) {
	g, terms := tieGraph(7)
	ref := TopK(g, terms, 4, SPCSH)
	for run := 0; run < 3; run++ {
		got := TopK(g, terms, 4, SPCSH)
		if len(got) != len(ref) {
			t.Fatalf("run %d: %d trees != %d", run, len(got), len(ref))
		}
		for i := range got {
			if got[i].Key() != ref[i].Key() || got[i].Cost != ref[i].Cost {
				t.Fatalf("run %d tree %d: %q/%v != %q/%v",
					run, i, got[i].Key(), got[i].Cost, ref[i].Key(), ref[i].Cost)
			}
		}
	}
}

// tieGraph builds a seeded graph where most edges share one of three
// costs, maximizing tie-break opportunities in the subgraph MST.
func tieGraph(seed int64) (*Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	const n = 40
	g := NewGraph(n)
	costs := []float64{1.0, 1.0, 1.0, 2.0, 2.0, 3.0}
	// Ring so the graph is connected, then random chords.
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, costs[rng.Intn(len(costs))])
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, costs[rng.Intn(len(costs))])
		}
	}
	terms := []int{0, n / 4, n / 2, 3 * n / 4, n - 3}
	return g, terms
}
