package steiner

import (
	"math"
	"math/rand"
	"testing"
)

// lineGraph: 0-1-2-3-4 with unit costs.
func lineGraph() *Graph {
	g := NewGraph(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

// diamond: 0-1 (1), 0-2 (1), 1-3 (1), 2-3 (1), 0-3 (2.5)
func diamond() *Graph {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 2.5)
	return g
}

// star: center 0 with leaves 1..4, plus an expensive rim.
func star() *Graph {
	g := NewGraph(5)
	for i := 1; i <= 4; i++ {
		g.AddEdge(0, i, 1)
	}
	g.AddEdge(1, 2, 5)
	g.AddEdge(3, 4, 5)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := lineGraph()
	if g.N() != 5 || g.M() != 4 {
		t.Error("size wrong")
	}
	if g.Edge(0).Cost != 1 {
		t.Error("edge cost wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative cost should panic")
		}
	}()
	g.AddEdge(0, 1, -1)
}

func TestAddEdgeRangePanics(t *testing.T) {
	g := NewGraph(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range endpoint should panic")
		}
	}()
	g.AddEdge(0, 5, 1)
}

func TestExactSimplePath(t *testing.T) {
	g := lineGraph()
	tr, ok := Exact(g, []int{0, 4}, nil)
	if !ok || tr.Cost != 4 || len(tr.Edges) != 4 {
		t.Fatalf("line tree = %+v ok=%v", tr, ok)
	}
	nodes := tr.Nodes(g)
	if len(nodes) != 5 {
		t.Errorf("nodes = %v", nodes)
	}
}

func TestExactTrivialCases(t *testing.T) {
	g := lineGraph()
	if tr, ok := Exact(g, nil, nil); !ok || tr.Cost != 0 {
		t.Error("no terminals should be the empty tree")
	}
	if tr, ok := Exact(g, []int{2}, nil); !ok || tr.Cost != 0 || len(tr.Edges) != 0 {
		t.Error("single terminal should be the empty tree")
	}
	if tr, ok := Exact(g, []int{2, 2, 2}, nil); !ok || tr.Cost != 0 {
		t.Error("duplicate terminals collapse")
	}
}

func TestExactDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, ok := Exact(g, []int{0, 3}, nil); ok {
		t.Error("disconnected terminals should fail")
	}
	// Banning the only bridge also disconnects.
	g2 := lineGraph()
	if _, ok := Exact(g2, []int{0, 4}, map[int]bool{2: true}); ok {
		t.Error("banned bridge should disconnect")
	}
}

func TestExactSteinerNode(t *testing.T) {
	// Star: terminals 1,2,3 connect optimally through Steiner node 0.
	g := star()
	tr, ok := Exact(g, []int{1, 2, 3}, nil)
	if !ok {
		t.Fatal("no tree")
	}
	if tr.Cost != 3 || len(tr.Edges) != 3 {
		t.Errorf("star tree cost = %f edges = %v", tr.Cost, tr.Edges)
	}
	nodes := tr.Nodes(g)
	has0 := false
	for _, n := range nodes {
		if n == 0 {
			has0 = true
		}
	}
	if !has0 {
		t.Error("optimal tree should include the Steiner center")
	}
}

// bruteForce enumerates all edge subsets and returns the optimal Steiner
// tree cost for the terminals.
func bruteForce(g *Graph, terminals []int) (float64, bool) {
	m := g.M()
	best := math.Inf(1)
	found := false
	for mask := 0; mask < 1<<m; mask++ {
		banned := map[int]bool{}
		cost := 0.0
		for e := 0; e < m; e++ {
			if mask&(1<<e) == 0 {
				banned[e] = true
			} else {
				cost += g.Edge(e).Cost
			}
		}
		if cost >= best {
			continue
		}
		if g.connectedToAll(terminals, banned) {
			best = cost
			found = true
		}
	}
	return best, found
}

func TestExactMatchesBruteForceOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(3)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.6 {
					g.AddEdge(i, j, float64(1+rng.Intn(9)))
				}
			}
		}
		if g.M() > 14 {
			continue // keep brute force cheap
		}
		tcount := 2 + rng.Intn(3)
		terms := rng.Perm(n)[:tcount]
		want, feasible := bruteForce(g, terms)
		tr, ok := Exact(g, terms, nil)
		if ok != feasible {
			t.Fatalf("trial %d: feasibility mismatch exact=%v brute=%v", trial, ok, feasible)
		}
		if ok && math.Abs(tr.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: exact=%f brute=%f", trial, tr.Cost, want)
		}
	}
}

func TestTopKOrderingAndDistinctness(t *testing.T) {
	g := diamond()
	trees := TopK(g, []int{0, 3}, 3, Exact)
	if len(trees) != 3 {
		t.Fatalf("topk returned %d trees", len(trees))
	}
	// Best two are the 2-cost paths; third is the direct 2.5 edge.
	if trees[0].Cost != 2 || trees[1].Cost != 2 || trees[2].Cost != 2.5 {
		t.Errorf("costs = %f %f %f", trees[0].Cost, trees[1].Cost, trees[2].Cost)
	}
	seen := map[string]bool{}
	for _, tr := range trees {
		if seen[tr.Key()] {
			t.Error("duplicate tree in topk")
		}
		seen[tr.Key()] = true
	}
	// Monotone non-decreasing cost.
	for i := 1; i < len(trees); i++ {
		if trees[i].Cost < trees[i-1].Cost {
			t.Error("topk not cost-ordered")
		}
	}
	if TopK(g, []int{0, 3}, 0, Exact) != nil {
		t.Error("k=0 should be nil")
	}
	// Disconnected: nil.
	g2 := NewGraph(2)
	if TopK(g2, []int{0, 1}, 2, Exact) != nil {
		t.Error("disconnected topk should be nil")
	}
}

func TestSPCSHMatchesExactOnEasyGraphs(t *testing.T) {
	for name, g := range map[string]*Graph{"line": lineGraph(), "diamond": diamond(), "star": star()} {
		terms := []int{0, g.N() - 1}
		ex, ok1 := Exact(g, terms, nil)
		ap, ok2 := SPCSH(g, terms, nil)
		if !ok1 || !ok2 {
			t.Fatalf("%s: feasibility", name)
		}
		if ap.Cost < ex.Cost-1e-9 {
			t.Errorf("%s: approx beat exact?!", name)
		}
		if ap.Cost > 2*ex.Cost {
			t.Errorf("%s: approx %.1f exceeds 2x exact %.1f", name, ap.Cost, ex.Cost)
		}
	}
}

func TestSPCSHWithinTwiceOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(4)
		g := NewGraph(n)
		// Ring to guarantee connectivity, plus chords.
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n, float64(1+rng.Intn(5)))
		}
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			if j != i {
				g.AddEdge(i, j, float64(1+rng.Intn(9)))
			}
		}
		tcount := 2 + rng.Intn(3)
		terms := rng.Perm(n)[:tcount]
		ex, ok1 := Exact(g, terms, nil)
		ap, ok2 := SPCSH(g, terms, nil)
		if !ok1 || !ok2 {
			t.Fatalf("trial %d infeasible", trial)
		}
		if ap.Cost < ex.Cost-1e-9 || ap.Cost > 2*ex.Cost+1e-9 {
			t.Errorf("trial %d: approx %.2f vs exact %.2f", trial, ap.Cost, ex.Cost)
		}
		// The approximate tree must actually connect the terminals.
		banned := map[int]bool{}
		inTree := map[int]bool{}
		for _, id := range ap.Edges {
			inTree[id] = true
		}
		for e := 0; e < g.M(); e++ {
			if !inTree[e] {
				banned[e] = true
			}
		}
		if !g.connectedToAll(terms, banned) {
			t.Errorf("trial %d: SPCSH tree does not connect terminals", trial)
		}
	}
}

func TestSPCSHTrivialAndDisconnected(t *testing.T) {
	g := lineGraph()
	if tr, ok := SPCSH(g, []int{1}, nil); !ok || tr.Cost != 0 {
		t.Error("single terminal should be empty")
	}
	g2 := NewGraph(3)
	g2.AddEdge(0, 1, 1)
	if _, ok := SPCSH(g2, []int{0, 2}, nil); ok {
		t.Error("disconnected should fail")
	}
}

func TestPruneExpensive(t *testing.T) {
	g := diamond()
	banned := PruneExpensive(g, []int{0, 3}, 0.4)
	// The expensive 0-3 edge (id 4) should be banned; connectivity kept.
	if !banned[4] {
		t.Errorf("banned = %v, expected the 2.5-cost edge", banned)
	}
	if !g.connectedToAll([]int{0, 3}, banned) {
		t.Error("pruning broke connectivity")
	}
	if PruneExpensive(g, []int{0, 3}, 0) != nil {
		t.Error("frac 0 should be nil")
	}
}

func TestApproxSolverWithPruning(t *testing.T) {
	g := diamond()
	solve := Approx(0.3)
	tr, ok := solve(g, []int{0, 3}, nil)
	if !ok || tr.Cost > 2.5 {
		t.Errorf("approx with pruning: %+v ok=%v", tr, ok)
	}
	// With bans that force the expensive edge, pruning retry still finds it.
	tr, ok = solve(g, []int{0, 3}, map[int]bool{0: true, 3: true})
	if !ok {
		t.Fatal("approx should fall back when pruning over-restricts")
	}
}

func TestTopKWithApproxSolver(t *testing.T) {
	g := diamond()
	trees := TopK(g, []int{0, 3}, 3, Approx(0))
	if len(trees) == 0 {
		t.Fatal("approx topk empty")
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Cost < trees[i-1].Cost {
			t.Error("approx topk not ordered")
		}
	}
}

func TestTreeKeyCanonical(t *testing.T) {
	a := &Tree{Edges: []int{3, 1, 2}}
	b := &Tree{Edges: []int{2, 3, 1}}
	if a.Key() != b.Key() {
		t.Error("key should be order-insensitive")
	}
}
