// Package steiner implements the Steiner-tree machinery the integration
// learner uses to explain user-pasted tuples (§4.2): queries connecting
// the sources that contributed attributes are minimum-cost Steiner trees
// in the source graph. For small graphs an exact top-k algorithm
// (Dreyfus–Wagner dynamic programming inside a Lawler-style exclusion
// search, standing in for the paper's ILP formulation) finds the best
// queries; for larger graphs the SPCSH shortest-paths heuristic with
// non-promising-edge pruning scales further at a small quality cost.
package steiner

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is an undirected multigraph with non-negative edge costs. Nodes
// are integers 0..N-1 (callers map source-graph node names onto them).
type Graph struct {
	n     int
	adj   [][]half
	edges []EdgeInfo
}

type half struct {
	to   int
	edge int
}

// EdgeInfo describes one edge.
type EdgeInfo struct {
	U, V int
	Cost float64
}

// NewGraph creates a graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]half, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the edge count.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts an undirected edge and returns its ID. It panics on a
// negative cost or out-of-range endpoint — programmer errors.
func (g *Graph) AddEdge(u, v int, cost float64) int {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("steiner: edge endpoint out of range: %d-%d (n=%d)", u, v, g.n))
	}
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative edge cost %f", cost))
	}
	id := len(g.edges)
	g.edges = append(g.edges, EdgeInfo{U: u, V: v, Cost: cost})
	g.adj[u] = append(g.adj[u], half{to: v, edge: id})
	if u != v {
		g.adj[v] = append(g.adj[v], half{to: u, edge: id})
	}
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) EdgeInfo { return g.edges[id] }

// SetEdgeCost updates an existing edge's cost in place, letting callers
// that cache a built graph patch weights instead of reallocating the
// whole structure. It panics on a negative cost or unknown ID —
// programmer errors, same contract as AddEdge.
func (g *Graph) SetEdgeCost(id int, cost float64) {
	if id < 0 || id >= len(g.edges) {
		panic(fmt.Sprintf("steiner: edge id out of range: %d (m=%d)", id, len(g.edges)))
	}
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative edge cost %f", cost))
	}
	g.edges[id].Cost = cost
}

// Tree is a Steiner tree: a set of edge IDs and its total cost.
type Tree struct {
	Edges []int
	Cost  float64
}

// Key canonically identifies the tree by its sorted edge set.
func (t *Tree) Key() string {
	ids := append([]int(nil), t.Edges...)
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ",")
}

// Nodes returns the sorted set of nodes touched by the tree (terminals of
// a single-terminal tree yield that terminal only if an edge touches it;
// callers should special-case single-terminal queries).
func (t *Tree) Nodes(g *Graph) []int {
	set := map[int]bool{}
	for _, id := range t.Edges {
		e := g.Edge(id)
		set[e.U] = true
		set[e.V] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// recompute rebuilds the cost from the edge set.
func (t *Tree) recompute(g *Graph) {
	t.Cost = 0
	for _, id := range t.Edges {
		t.Cost += g.Edge(id).Cost
	}
}

// connectedToAll reports whether the terminals are mutually reachable
// avoiding banned edges.
func (g *Graph) connectedToAll(terminals []int, banned map[int]bool) bool {
	if len(terminals) == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{terminals[0]}
	seen[terminals[0]] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if banned[h.edge] || seen[h.to] {
				continue
			}
			seen[h.to] = true
			stack = append(stack, h.to)
		}
	}
	for _, t := range terminals {
		if !seen[t] {
			return false
		}
	}
	return true
}
