// Package steiner implements the Steiner-tree machinery the integration
// learner uses to explain user-pasted tuples (§4.2): queries connecting
// the sources that contributed attributes are minimum-cost Steiner trees
// in the source graph. For small graphs an exact top-k algorithm
// (Dreyfus–Wagner dynamic programming inside a Lawler-style exclusion
// search, standing in for the paper's ILP formulation) finds the best
// queries; for larger graphs the SPCSH shortest-paths heuristic with
// non-promising-edge pruning scales further at a small quality cost.
package steiner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Graph is an undirected multigraph with non-negative edge costs. Nodes
// are integers 0..N-1 (callers map source-graph node names onto them).
//
// Internally the adjacency is a CSR (compressed sparse row) layout built
// lazily from the interned edge list: one flat neighbor array plus a
// per-node offset table, rebuilt only when an edge is added. Costs live
// in the edge table, so SetEdgeCost never invalidates the topology.
// Per-solve working memory (Dijkstra dist/via/prev rows, heaps, ban
// bitsets, union-find and degree arrays, the Dreyfus–Wagner DP tables)
// is pooled on the graph and reused across solver calls, including the
// concurrent subproblems of the Lawler fan-out.
type Graph struct {
	n     int
	edges []EdgeInfo

	csrMu sync.Mutex
	csrP  atomic.Pointer[csr]
	pool  sync.Pool // *scratch
}

// csr is the immutable flattened adjacency: the neighbors of node v are
// to[rowStart[v]:rowStart[v+1]], reached over edge eid[i]. Within a row,
// neighbors appear in edge-id order — the same order the old slice-of-
// slices adjacency had, so relaxation (and therefore tie-breaking) is
// unchanged. A built csr is never mutated; AddEdge drops the pointer and
// the next solve rebuilds.
type csr struct {
	rowStart []int32
	to       []int32
	eid      []int32
}

// EdgeInfo describes one edge.
type EdgeInfo struct {
	U, V int
	Cost float64
}

// NewGraph creates a graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the edge count.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts an undirected edge and returns its ID. It panics on a
// negative cost or out-of-range endpoint — programmer errors.
func (g *Graph) AddEdge(u, v int, cost float64) int {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("steiner: edge endpoint out of range: %d-%d (n=%d)", u, v, g.n))
	}
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative edge cost %f", cost))
	}
	id := len(g.edges)
	g.edges = append(g.edges, EdgeInfo{U: u, V: v, Cost: cost})
	g.csrP.Store(nil)
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) EdgeInfo { return g.edges[id] }

// SetEdgeCost updates an existing edge's cost in place, letting callers
// that cache a built graph patch weights instead of reallocating the
// whole structure. It panics on a negative cost or unknown ID —
// programmer errors, same contract as AddEdge. The CSR topology is
// untouched: cost patches are free.
func (g *Graph) SetEdgeCost(id int, cost float64) {
	if id < 0 || id >= len(g.edges) {
		panic(fmt.Sprintf("steiner: edge id out of range: %d (m=%d)", id, len(g.edges)))
	}
	if cost < 0 {
		panic(fmt.Sprintf("steiner: negative edge cost %f", cost))
	}
	g.edges[id].Cost = cost
}

// Clone returns an independent copy: its own edge table (so SetEdgeCost
// and AddEdge on either side never race) sharing the immutable CSR
// topology when one is already built. Background refinement solves on a
// clone while the live graph keeps taking weight updates.
func (g *Graph) Clone() *Graph {
	ng := &Graph{n: g.n, edges: append([]EdgeInfo(nil), g.edges...)}
	if cs := g.csrP.Load(); cs != nil {
		ng.csrP.Store(cs)
	}
	return ng
}

// topo returns the CSR adjacency, building it under the mutex on first
// use after a structural change. Concurrent solvers share one build.
func (g *Graph) topo() *csr {
	if cs := g.csrP.Load(); cs != nil {
		return cs
	}
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if cs := g.csrP.Load(); cs != nil {
		return cs
	}
	cs := buildCSR(g.n, g.edges)
	g.csrP.Store(cs)
	return cs
}

func buildCSR(n int, edges []EdgeInfo) *csr {
	rowStart := make([]int32, n+1)
	halves := 0
	for _, e := range edges {
		rowStart[e.U+1]++
		halves++
		if e.U != e.V {
			rowStart[e.V+1]++
			halves++
		}
	}
	for i := 0; i < n; i++ {
		rowStart[i+1] += rowStart[i]
	}
	to := make([]int32, halves)
	eid := make([]int32, halves)
	next := make([]int32, n)
	copy(next, rowStart[:n])
	// Iterating edges in id order fills each row in edge-id order.
	for id, e := range edges {
		p := next[e.U]
		to[p], eid[p] = int32(e.V), int32(id)
		next[e.U]++
		if e.U != e.V {
			p = next[e.V]
			to[p], eid[p] = int32(e.U), int32(id)
			next[e.V]++
		}
	}
	return &csr{rowStart: rowStart, to: to, eid: eid}
}

// getScratch borrows pooled per-solve working memory; callers must
// return it with putScratch when the solve is done (never retaining
// references into it inside returned Trees).
func (g *Graph) getScratch() *scratch {
	if v := g.pool.Get(); v != nil {
		return v.(*scratch)
	}
	return &scratch{}
}

func (g *Graph) putScratch(s *scratch) { g.pool.Put(s) }

// scratch is the reusable working set of one solver invocation. Fields
// grow monotonically and are re-stamped or re-zeroed per use; epoch
// stamps make the node/edge mark arrays O(1) to "clear".
type scratch struct {
	// SPCSH: flat t×n Dijkstra rows.
	dist []float64
	via  []int32
	prev []int32
	// Shared priority queue storage.
	heap costHeap
	// Ban bitset over edge ids.
	ban []uint64
	// Epoch-stamped edge set (path-union dedup, DP reconstruction).
	edgeStamp []uint32
	edgeEpoch uint32
	// Epoch-stamped node array with an int payload (union-find parents,
	// degrees, DFS visited).
	nodeStamp []uint32
	nodeEpoch uint32
	nodeVal   []int32
	// Reusable edge-id list and DFS stack.
	ids   []int
	stack []int32
	// Prim over the terminal closure.
	inTree   []bool
	best     []float64
	bestFrom []int32
	pickFrom []int32
	pickTo   []int32
	// Dreyfus–Wagner DP tables, flattened to single allocations.
	dp []float64
	pr []pred
}

type pred struct {
	kind byte  // 0 none, 1 extend, 2 merge
	u    int32 // extend: neighbor
	edge int32 // extend: edge id
	s1   int32 // merge: first sub-subset
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

// bumpEdgeEpoch invalidates the edge mark set in O(1) (full clear only
// on the once-per-4B wraparound).
func (s *scratch) bumpEdgeEpoch(m int) {
	s.edgeStamp = growU32(s.edgeStamp, m)
	s.edgeEpoch++
	if s.edgeEpoch == 0 {
		clear(s.edgeStamp)
		s.edgeEpoch = 1
	}
}

// bumpNodeEpoch invalidates the node mark/payload array in O(1).
func (s *scratch) bumpNodeEpoch(n int) {
	s.nodeStamp = growU32(s.nodeStamp, n)
	s.nodeVal = growI32(s.nodeVal, n)
	s.nodeEpoch++
	if s.nodeEpoch == 0 {
		clear(s.nodeStamp)
		s.nodeEpoch = 1
	}
}

// banBits converts the caller's ban map into the pooled bitset; nil when
// there are no bans so the hot loop skips the test entirely.
func (s *scratch) banBits(banned map[int]bool, m int) []uint64 {
	if len(banned) == 0 {
		return nil
	}
	words := (m + 63) / 64
	if cap(s.ban) < words {
		s.ban = make([]uint64, words)
	} else {
		s.ban = s.ban[:words]
		clear(s.ban)
	}
	for id, on := range banned {
		if on && id >= 0 && id < m {
			s.ban[id>>6] |= 1 << (uint(id) & 63)
		}
	}
	return s.ban
}

func banHas(ban []uint64, id int32) bool {
	return ban != nil && ban[id>>6]&(1<<(uint(id)&63)) != 0
}

// Tree is a Steiner tree: a set of edge IDs and its total cost.
type Tree struct {
	Edges []int
	Cost  float64
}

// Key canonically identifies the tree by its sorted edge set.
func (t *Tree) Key() string {
	ids := append([]int(nil), t.Edges...)
	sort.Ints(ids)
	var b strings.Builder
	b.Grow(len(ids) * 4)
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// Nodes returns the sorted set of nodes touched by the tree (terminals of
// a single-terminal tree yield that terminal only if an edge touches it;
// callers should special-case single-terminal queries).
func (t *Tree) Nodes(g *Graph) []int {
	out := make([]int, 0, 2*len(t.Edges))
	for _, id := range t.Edges {
		e := g.Edge(id)
		out = append(out, e.U, e.V)
	}
	sort.Ints(out)
	// Dedupe in place (sorted).
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// recompute rebuilds the cost from the edge set.
func (t *Tree) recompute(g *Graph) {
	t.Cost = 0
	for _, id := range t.Edges {
		t.Cost += g.Edge(id).Cost
	}
}

// connectedToAll reports whether the terminals are mutually reachable
// avoiding banned edges.
func (g *Graph) connectedToAll(terminals []int, banned map[int]bool) bool {
	if len(terminals) == 0 {
		return true
	}
	cs := g.topo()
	s := g.getScratch()
	defer g.putScratch(s)
	ban := s.banBits(banned, len(g.edges))
	s.bumpNodeEpoch(g.n)
	if cap(s.stack) < g.n {
		s.stack = make([]int32, 0, g.n)
	}
	stack := s.stack[:0]
	stack = append(stack, int32(terminals[0]))
	s.nodeStamp[terminals[0]] = s.nodeEpoch
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := cs.rowStart[v]; i < cs.rowStart[v+1]; i++ {
			if banHas(ban, cs.eid[i]) || s.nodeStamp[cs.to[i]] == s.nodeEpoch {
				continue
			}
			s.nodeStamp[cs.to[i]] = s.nodeEpoch
			stack = append(stack, cs.to[i])
		}
	}
	s.stack = stack[:0]
	for _, t := range terminals {
		if s.nodeStamp[t] != s.nodeEpoch {
			return false
		}
	}
	return true
}
