package steiner

import (
	"container/heap"
	"math"
	"sort"
)

// Exact computes a minimum-cost Steiner tree for the terminals using the
// Dreyfus–Wagner dynamic program (with Dijkstra-style relaxation per
// terminal subset). banned edges are excluded. It returns ok=false when
// the terminals cannot be connected. Complexity is O(3^t·n + 2^t·m log n)
// — exact and fast for the small, query-driven source graphs CopyCat
// typically sees (§4.2: "the number of sources is often relatively
// small").
func Exact(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	terminals = dedupeTerminals(terminals)
	if len(terminals) == 0 {
		return &Tree{}, true
	}
	if len(terminals) == 1 {
		return &Tree{}, true
	}
	t := len(terminals) - 1 // fold terminal 0 into the root query
	root := terminals[0]
	rest := terminals[1:]
	full := (1 << t) - 1

	inf := math.Inf(1)
	// dp[S][v]: min cost of a tree spanning {rest[i] : i∈S} ∪ {v}.
	dp := make([][]float64, full+1)
	type pred struct {
		kind byte // 0 none, 1 extend, 2 merge
		u    int  // extend: neighbor
		edge int  // extend: edge id
		s1   int  // merge: first sub-subset
	}
	pr := make([][]pred, full+1)
	for s := 0; s <= full; s++ {
		dp[s] = make([]float64, g.n)
		pr[s] = make([]pred, g.n)
		for v := range dp[s] {
			dp[s][v] = inf
		}
	}
	for i, term := range rest {
		dp[1<<i][term] = 0
	}
	for s := 1; s <= full; s++ {
		// Merge step: combine sub-subsets at a shared node.
		for s1 := (s - 1) & s; s1 > 0; s1 = (s1 - 1) & s {
			s2 := s ^ s1
			if s1 < s2 {
				continue // each unordered partition once
			}
			for v := 0; v < g.n; v++ {
				if dp[s1][v] == inf || dp[s2][v] == inf {
					continue
				}
				if c := dp[s1][v] + dp[s2][v]; c < dp[s][v] {
					dp[s][v] = c
					pr[s][v] = pred{kind: 2, s1: s1}
				}
			}
		}
		// Extend step: Dijkstra over the graph within this subset.
		pq := &costHeap{}
		for v := 0; v < g.n; v++ {
			if dp[s][v] < inf {
				heap.Push(pq, costItem{cost: dp[s][v], v: v})
			}
		}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(costItem)
			if it.cost > dp[s][it.v] {
				continue
			}
			for _, h := range g.adj[it.v] {
				if banned[h.edge] {
					continue
				}
				c := it.cost + g.Edge(h.edge).Cost
				if c < dp[s][h.to] {
					dp[s][h.to] = c
					pr[s][h.to] = pred{kind: 1, u: it.v, edge: h.edge}
					heap.Push(pq, costItem{cost: c, v: h.to})
				}
			}
		}
	}
	if dp[full][root] == inf {
		return nil, false
	}
	// Reconstruct the edge set.
	edgeSet := map[int]bool{}
	var rec func(s, v int)
	rec = func(s, v int) {
		for {
			p := pr[s][v]
			switch p.kind {
			case 1:
				edgeSet[p.edge] = true
				v = p.u
			case 2:
				rec(p.s1, v)
				s = s ^ p.s1
			default:
				return
			}
		}
	}
	rec(full, root)
	tree := &Tree{}
	for id := range edgeSet {
		tree.Edges = append(tree.Edges, id)
	}
	// Canonical order keeps tie-breaking (and thus top-k enumeration)
	// deterministic across runs.
	sort.Ints(tree.Edges)
	tree.recompute(g)
	return tree, true
}

func dedupeTerminals(terminals []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, t := range terminals {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

type costItem struct {
	cost float64
	v    int
}

type costHeap []costItem

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solver computes one Steiner tree under a ban set; Exact and SPCSH both
// fit, letting TopK share the enumeration machinery.
type Solver func(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool)

// TopK enumerates the k best (locally minimal) Steiner trees, best first,
// by Lawler-style exclusion branching over the solver: each result
// spawns subproblems banning one of its edges, and a best-first queue
// with deduplication yields distinct trees in cost order. With the Exact
// solver this matches the paper's exact top-k queries; with SPCSH it is
// the scalable approximation.
func TopK(g *Graph, terminals []int, k int, solve Solver) []*Tree {
	if k <= 0 {
		return nil
	}
	first, ok := solve(g, terminals, nil)
	if !ok {
		return nil
	}
	pq := &candHeap{}
	heap.Push(pq, candHeapItem{tree: first, banned: map[int]bool{}})
	seen := map[string]bool{}
	var out []*Tree
	for pq.Len() > 0 && len(out) < k {
		c := heap.Pop(pq).(candHeapItem)
		key := c.tree.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c.tree)
		for _, e := range c.tree.Edges {
			nb := make(map[int]bool, len(c.banned)+1)
			for id := range c.banned {
				nb[id] = true
			}
			nb[e] = true
			if t, ok := solve(g, terminals, nb); ok {
				heap.Push(pq, candHeapItem{tree: t, banned: nb})
			}
		}
	}
	return out
}

type candHeapItem = struct {
	tree   *Tree
	banned map[int]bool
}

type candHeap []candHeapItem

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].tree.Cost < h[j].tree.Cost }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candHeapItem)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
