package steiner

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"copycat/internal/obs"
)

// atomicCounter is the counter type used by Metrics.
type atomicCounter = atomic.Int64

// Exact computes a minimum-cost Steiner tree for the terminals using the
// Dreyfus–Wagner dynamic program (with Dijkstra-style relaxation per
// terminal subset). banned edges are excluded. It returns ok=false when
// the terminals cannot be connected. Complexity is O(3^t·n + 2^t·m log n)
// — exact and fast for the small, query-driven source graphs CopyCat
// typically sees (§4.2: "the number of sources is often relatively
// small").
func Exact(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	return ExactCtx(context.Background(), g, terminals, banned)
}

// ExactCtx is Exact under a context: the subset dynamic program checks
// for cancellation between terminal subsets, so an expired suggestion
// deadline aborts the search instead of grinding through 3^t states.
// Cancellation reports ok=false (no tree).
//
// The DP tables are flattened into two pooled backing arrays ((2^t)·n
// entries each) instead of 2^t per-subset slices, and the relaxation
// heap is reused across subsets, so repeated calls — the Lawler fan-out
// solves one subproblem per tree edge — stop hammering the allocator.
func ExactCtx(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	if ctx != nil && ctx.Err() != nil {
		return nil, false
	}
	terminals = dedupeTerminals(terminals)
	if len(terminals) == 0 {
		return &Tree{}, true
	}
	if len(terminals) == 1 {
		return &Tree{}, true
	}
	t := len(terminals) - 1 // fold terminal 0 into the root query
	root := terminals[0]
	rest := terminals[1:]
	full := (1 << t) - 1

	cs := g.topo()
	s := g.getScratch()
	defer g.putScratch(s)
	n := g.n
	ban := s.banBits(banned, len(g.edges))

	inf := math.Inf(1)
	// dp[S·n+v]: min cost of a tree spanning {rest[i] : i∈S} ∪ {v}.
	size := (full + 1) * n
	s.dp = growF64(s.dp, size)
	if cap(s.pr) < size {
		s.pr = make([]pred, size)
	} else {
		s.pr = s.pr[:size]
		clear(s.pr)
	}
	dp, pr := s.dp, s.pr
	for i := range dp {
		dp[i] = inf
	}
	for i, term := range rest {
		dp[(1<<i)*n+term] = 0
	}
	for sub := 1; sub <= full; sub++ {
		if sub&15 == 0 && ctx.Err() != nil {
			return nil, false
		}
		row := sub * n
		// Merge step: combine sub-subsets at a shared node.
		for s1 := (sub - 1) & sub; s1 > 0; s1 = (s1 - 1) & sub {
			s2 := sub ^ s1
			if s1 < s2 {
				continue // each unordered partition once
			}
			r1, r2 := s1*n, s2*n
			for v := 0; v < n; v++ {
				if dp[r1+v] == inf || dp[r2+v] == inf {
					continue
				}
				if c := dp[r1+v] + dp[r2+v]; c < dp[row+v] {
					dp[row+v] = c
					pr[row+v] = pred{kind: 2, s1: int32(s1)}
				}
			}
		}
		// Extend step: Dijkstra over the graph within this subset.
		h := s.heap[:0]
		for v := 0; v < n; v++ {
			if dp[row+v] < inf {
				h.push(costItem{cost: dp[row+v], v: v})
			}
		}
		for len(h) > 0 {
			it := h.pop()
			if it.cost > dp[row+it.v] {
				continue
			}
			for i := cs.rowStart[it.v]; i < cs.rowStart[it.v+1]; i++ {
				e := cs.eid[i]
				if banHas(ban, e) {
					continue
				}
				c := it.cost + g.edges[e].Cost
				to := int(cs.to[i])
				if c < dp[row+to] {
					dp[row+to] = c
					pr[row+to] = pred{kind: 1, u: int32(it.v), edge: e}
					h.push(costItem{cost: c, v: to})
				}
			}
		}
		s.heap = h[:0]
	}
	if dp[full*n+root] == inf {
		return nil, false
	}
	// Reconstruct the edge set (epoch-stamped dedup, deterministic walk).
	s.bumpEdgeEpoch(len(g.edges))
	ids := s.ids[:0]
	var rec func(sub, v int)
	rec = func(sub, v int) {
		for {
			p := pr[sub*n+v]
			switch p.kind {
			case 1:
				if s.edgeStamp[p.edge] != s.edgeEpoch {
					s.edgeStamp[p.edge] = s.edgeEpoch
					ids = append(ids, int(p.edge))
				}
				v = int(p.u)
			case 2:
				rec(int(p.s1), v)
				sub = sub ^ int(p.s1)
			default:
				return
			}
		}
	}
	rec(full, root)
	s.ids = ids
	tree := &Tree{Edges: append([]int(nil), ids...)}
	// Canonical order keeps tie-breaking (and thus top-k enumeration)
	// deterministic across runs.
	sort.Ints(tree.Edges)
	tree.recompute(g)
	return tree, true
}

// dedupeTerminals returns the terminals with duplicates removed,
// preserving first-occurrence order. Terminal sets are tiny (one per
// source), so a quadratic scan avoids a map allocation per solver call;
// the input slice is returned unchanged when it is already duplicate-free
// (the common case), so the hot path allocates nothing.
func dedupeTerminals(terminals []int) []int {
	for i := 1; i < len(terminals); i++ {
		for j := 0; j < i; j++ {
			if terminals[i] == terminals[j] {
				// First duplicate found: fall back to a copying pass.
				out := make([]int, i, len(terminals))
				copy(out, terminals[:i])
				for _, t := range terminals[i+1:] {
					dup := false
					for _, o := range out {
						if o == t {
							dup = true
							break
						}
					}
					if !dup {
						out = append(out, t)
					}
				}
				return out
			}
		}
	}
	return terminals
}

type costItem struct {
	cost float64
	v    int
}

// costHeap is a binary min-heap ordered by cost. push/pop mirror
// container/heap's sift order exactly (so pop order — and therefore
// tie-breaking — matches the previous implementation) without boxing
// every item in an interface, which dominated solver allocations.
type costHeap []costItem

func (h *costHeap) push(it costItem) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *costHeap) pop() costItem {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	h.down(0, n)
	it := (*h)[n]
	*h = (*h)[:n]
	return it
}

func (h *costHeap) up(j int) {
	a := *h
	for {
		i := (j - 1) / 2
		if i == j || !(a[j].cost < a[i].cost) {
			break
		}
		a[i], a[j] = a[j], a[i]
		j = i
	}
}

func (h *costHeap) down(i0, n int) {
	a := *h
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && a[j2].cost < a[j1].cost {
			j = j2
		}
		if !(a[j].cost < a[i].cost) {
			break
		}
		a[i], a[j] = a[j], a[i]
		i = j
	}
}

// Solver computes one Steiner tree under a ban set; Exact and SPCSH both
// fit, letting TopK share the enumeration machinery.
type Solver func(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool)

// CtxSolver is a Solver that honors a context's deadline/cancellation.
// ExactCtx, SPCSHCtx, and ApproxCtx all fit.
type CtxSolver func(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool)

// WithCtx adapts a plain Solver to the CtxSolver shape (ignoring the
// context), for call sites migrating incrementally.
func WithCtx(s Solver) CtxSolver {
	return func(_ context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
		return s(g, terminals, banned)
	}
}

// Metrics counts enumeration work during TopKCtx: solver invocations and
// branches discarded as infeasible or duplicate. The counters are atomic
// because Lawler subproblems run concurrently.
type Metrics struct {
	SolverCalls, Infeasible, Duplicates atomicCounter
}

// Pruned totals the branches that produced no new tree.
func (m *Metrics) Pruned() int64 { return m.Infeasible.Load() + m.Duplicates.Load() }

// TopK enumerates the k best (locally minimal) Steiner trees, best first,
// by Lawler-style exclusion branching over the solver: each result
// spawns subproblems banning one of its edges, and a best-first queue
// with deduplication yields distinct trees in cost order. With the Exact
// solver this matches the paper's exact top-k queries; with SPCSH it is
// the scalable approximation.
//
// API-boundary guards: k <= 0 yields nil and duplicate terminals are
// deduped once here, so every solver invocation (and every ban-set
// subproblem) sees the canonical terminal set.
func TopK(g *Graph, terminals []int, k int, solve Solver) []*Tree {
	trees, _ := TopKCtx(context.Background(), g, terminals, k, WithCtx(solve), nil)
	return trees
}

// TopKCtx is TopK under a context, with optional work metrics. The
// Lawler branching step solves each single-edge exclusion subproblem of
// an accepted tree concurrently (bounded by GOMAXPROCS); results are
// collected and pushed in edge order, so the enumeration stays
// deterministic. A cancelled or expired context returns ctx.Err() with
// no partial results; all workers are joined before returning, so
// cancellation leaks no goroutines.
func TopKCtx(ctx context.Context, g *Graph, terminals []int, k int, solve CtxSolver, m *Metrics) ([]*Tree, error) {
	if k <= 0 {
		return nil, nil
	}
	terminals = dedupeTerminals(terminals)
	if m == nil {
		m = &Metrics{}
	}
	// The enumeration span hangs off whatever span the caller put in the
	// context (the suggestion pipeline's search stage) — no signature
	// change, inert when tracing is off.
	sp := obs.SpanFromContext(ctx).Child("search.topk", "steiner")
	var out []*Tree
	defer func() {
		if sp != nil {
			sp.SetAttrInt("k", int64(k))
			sp.SetAttrInt("trees_out", int64(len(out)))
			sp.SetAttrInt("solver_calls", m.SolverCalls.Load())
			sp.SetAttrInt("pruned", m.Pruned())
			sp.End()
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.SolverCalls.Add(1)
	first, ok := solveSpanned(ctx, sp, -1, g, terminals, nil, solve)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !ok {
		m.Infeasible.Add(1)
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, workers)
	pq := candHeap{}
	pq.push(candHeapItem{tree: first, banned: map[int]bool{}})
	seen := map[string]bool{}
	var children []*candHeapItem
	for len(pq) > 0 && len(out) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := pq.pop()
		key := c.tree.Key()
		if seen[key] {
			m.Duplicates.Add(1)
			continue
		}
		seen[key] = true
		out = append(out, c.tree)
		// Solve the |Edges| exclusion subproblems concurrently, then push
		// the surviving children in edge order for determinism. The
		// result slots are reused across iterations.
		if cap(children) < len(c.tree.Edges) {
			children = make([]*candHeapItem, len(c.tree.Edges))
		}
		children = children[:len(c.tree.Edges)]
		clear(children)
		var wg sync.WaitGroup
		for idx, e := range c.tree.Edges {
			wg.Add(1)
			go func(idx, e int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				nb := make(map[int]bool, len(c.banned)+1)
				for id := range c.banned {
					nb[id] = true
				}
				nb[e] = true
				m.SolverCalls.Add(1)
				if t, ok := solveSpanned(ctx, sp, e, g, terminals, nb, solve); ok {
					children[idx] = &candHeapItem{tree: t, banned: nb}
				} else {
					m.Infeasible.Add(1)
				}
			}(idx, e)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, ch := range children {
			if ch != nil {
				pq.push(*ch)
			}
		}
	}
	return out, nil
}

// solveSpanned wraps one solver invocation in a child span of the
// enumeration span (nil-safe). ban is the edge excluded by this Lawler
// subproblem, or -1 for the unrestricted root solve; it doubles as the
// attribute that keeps sibling spans distinct, so the deterministic
// exporter has a stable sort key even when subproblems race.
func solveSpanned(ctx context.Context, parent *obs.Span, ban int, g *Graph, terminals []int, banned map[int]bool, solve CtxSolver) (*Tree, bool) {
	if parent == nil {
		return solve(ctx, g, terminals, banned)
	}
	ssp := parent.Child("steiner.solve", "steiner")
	ssp.SetAttrInt("ban", int64(ban))
	t, ok := solve(ctx, g, terminals, banned)
	if ok {
		ssp.SetAttrInt("edges", int64(len(t.Edges)))
	} else {
		ssp.SetAttr("result", "infeasible")
	}
	ssp.End()
	return t, ok
}

type candHeapItem = struct {
	tree   *Tree
	banned map[int]bool
}

// candHeap mirrors container/heap's sift order (same tie-breaking as the
// boxed implementation it replaces) over the enumeration frontier.
type candHeap []candHeapItem

func (h *candHeap) push(it candHeapItem) {
	*h = append(*h, it)
	a := *h
	j := len(a) - 1
	for {
		i := (j - 1) / 2
		if i == j || !(a[j].tree.Cost < a[i].tree.Cost) {
			break
		}
		a[i], a[j] = a[j], a[i]
		j = i
	}
}

func (h *candHeap) pop() candHeapItem {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && a[j2].tree.Cost < a[j1].tree.Cost {
			j = j2
		}
		if !(a[j].tree.Cost < a[i].tree.Cost) {
			break
		}
		a[i], a[j] = a[j], a[i]
		i = j
	}
	it := a[n]
	a[n] = candHeapItem{}
	*h = a[:n]
	return it
}
