package steiner

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"copycat/internal/obs"
)

// atomicCounter is the counter type used by Metrics.
type atomicCounter = atomic.Int64

// Exact computes a minimum-cost Steiner tree for the terminals using the
// Dreyfus–Wagner dynamic program (with Dijkstra-style relaxation per
// terminal subset). banned edges are excluded. It returns ok=false when
// the terminals cannot be connected. Complexity is O(3^t·n + 2^t·m log n)
// — exact and fast for the small, query-driven source graphs CopyCat
// typically sees (§4.2: "the number of sources is often relatively
// small").
func Exact(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	return ExactCtx(context.Background(), g, terminals, banned)
}

// ExactCtx is Exact under a context: the subset dynamic program checks
// for cancellation between terminal subsets, so an expired suggestion
// deadline aborts the search instead of grinding through 3^t states.
// Cancellation reports ok=false (no tree).
func ExactCtx(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
	if ctx != nil && ctx.Err() != nil {
		return nil, false
	}
	terminals = dedupeTerminals(terminals)
	if len(terminals) == 0 {
		return &Tree{}, true
	}
	if len(terminals) == 1 {
		return &Tree{}, true
	}
	t := len(terminals) - 1 // fold terminal 0 into the root query
	root := terminals[0]
	rest := terminals[1:]
	full := (1 << t) - 1

	inf := math.Inf(1)
	// dp[S][v]: min cost of a tree spanning {rest[i] : i∈S} ∪ {v}.
	dp := make([][]float64, full+1)
	type pred struct {
		kind byte // 0 none, 1 extend, 2 merge
		u    int  // extend: neighbor
		edge int  // extend: edge id
		s1   int  // merge: first sub-subset
	}
	pr := make([][]pred, full+1)
	for s := 0; s <= full; s++ {
		dp[s] = make([]float64, g.n)
		pr[s] = make([]pred, g.n)
		for v := range dp[s] {
			dp[s][v] = inf
		}
	}
	for i, term := range rest {
		dp[1<<i][term] = 0
	}
	for s := 1; s <= full; s++ {
		if s&15 == 0 && ctx.Err() != nil {
			return nil, false
		}
		// Merge step: combine sub-subsets at a shared node.
		for s1 := (s - 1) & s; s1 > 0; s1 = (s1 - 1) & s {
			s2 := s ^ s1
			if s1 < s2 {
				continue // each unordered partition once
			}
			for v := 0; v < g.n; v++ {
				if dp[s1][v] == inf || dp[s2][v] == inf {
					continue
				}
				if c := dp[s1][v] + dp[s2][v]; c < dp[s][v] {
					dp[s][v] = c
					pr[s][v] = pred{kind: 2, s1: s1}
				}
			}
		}
		// Extend step: Dijkstra over the graph within this subset.
		pq := &costHeap{}
		for v := 0; v < g.n; v++ {
			if dp[s][v] < inf {
				heap.Push(pq, costItem{cost: dp[s][v], v: v})
			}
		}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(costItem)
			if it.cost > dp[s][it.v] {
				continue
			}
			for _, h := range g.adj[it.v] {
				if banned[h.edge] {
					continue
				}
				c := it.cost + g.Edge(h.edge).Cost
				if c < dp[s][h.to] {
					dp[s][h.to] = c
					pr[s][h.to] = pred{kind: 1, u: it.v, edge: h.edge}
					heap.Push(pq, costItem{cost: c, v: h.to})
				}
			}
		}
	}
	if dp[full][root] == inf {
		return nil, false
	}
	// Reconstruct the edge set.
	edgeSet := map[int]bool{}
	var rec func(s, v int)
	rec = func(s, v int) {
		for {
			p := pr[s][v]
			switch p.kind {
			case 1:
				edgeSet[p.edge] = true
				v = p.u
			case 2:
				rec(p.s1, v)
				s = s ^ p.s1
			default:
				return
			}
		}
	}
	rec(full, root)
	tree := &Tree{}
	for id := range edgeSet {
		tree.Edges = append(tree.Edges, id)
	}
	// Canonical order keeps tie-breaking (and thus top-k enumeration)
	// deterministic across runs.
	sort.Ints(tree.Edges)
	tree.recompute(g)
	return tree, true
}

// dedupeTerminals returns the terminals with duplicates removed,
// preserving first-occurrence order. Terminal sets are tiny (one per
// source), so a quadratic scan avoids a map allocation per solver call;
// the input slice is returned unchanged when it is already duplicate-free
// (the common case), so the hot path allocates nothing.
func dedupeTerminals(terminals []int) []int {
	for i := 1; i < len(terminals); i++ {
		for j := 0; j < i; j++ {
			if terminals[i] == terminals[j] {
				// First duplicate found: fall back to a copying pass.
				out := make([]int, i, len(terminals))
				copy(out, terminals[:i])
				for _, t := range terminals[i+1:] {
					dup := false
					for _, o := range out {
						if o == t {
							dup = true
							break
						}
					}
					if !dup {
						out = append(out, t)
					}
				}
				return out
			}
		}
	}
	return terminals
}

type costItem struct {
	cost float64
	v    int
}

type costHeap []costItem

func (h costHeap) Len() int           { return len(h) }
func (h costHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x any)        { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solver computes one Steiner tree under a ban set; Exact and SPCSH both
// fit, letting TopK share the enumeration machinery.
type Solver func(g *Graph, terminals []int, banned map[int]bool) (*Tree, bool)

// CtxSolver is a Solver that honors a context's deadline/cancellation.
// ExactCtx, SPCSHCtx, and ApproxCtx all fit.
type CtxSolver func(ctx context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool)

// WithCtx adapts a plain Solver to the CtxSolver shape (ignoring the
// context), for call sites migrating incrementally.
func WithCtx(s Solver) CtxSolver {
	return func(_ context.Context, g *Graph, terminals []int, banned map[int]bool) (*Tree, bool) {
		return s(g, terminals, banned)
	}
}

// Metrics counts enumeration work during TopKCtx: solver invocations and
// branches discarded as infeasible or duplicate. The counters are atomic
// because Lawler subproblems run concurrently.
type Metrics struct {
	SolverCalls, Infeasible, Duplicates atomicCounter
}

// Pruned totals the branches that produced no new tree.
func (m *Metrics) Pruned() int64 { return m.Infeasible.Load() + m.Duplicates.Load() }

// TopK enumerates the k best (locally minimal) Steiner trees, best first,
// by Lawler-style exclusion branching over the solver: each result
// spawns subproblems banning one of its edges, and a best-first queue
// with deduplication yields distinct trees in cost order. With the Exact
// solver this matches the paper's exact top-k queries; with SPCSH it is
// the scalable approximation.
//
// API-boundary guards: k <= 0 yields nil and duplicate terminals are
// deduped once here, so every solver invocation (and every ban-set
// subproblem) sees the canonical terminal set.
func TopK(g *Graph, terminals []int, k int, solve Solver) []*Tree {
	trees, _ := TopKCtx(context.Background(), g, terminals, k, WithCtx(solve), nil)
	return trees
}

// TopKCtx is TopK under a context, with optional work metrics. The
// Lawler branching step solves each single-edge exclusion subproblem of
// an accepted tree concurrently (bounded by GOMAXPROCS); results are
// collected and pushed in edge order, so the enumeration stays
// deterministic. A cancelled or expired context returns ctx.Err() with
// no partial results; all workers are joined before returning, so
// cancellation leaks no goroutines.
func TopKCtx(ctx context.Context, g *Graph, terminals []int, k int, solve CtxSolver, m *Metrics) ([]*Tree, error) {
	if k <= 0 {
		return nil, nil
	}
	terminals = dedupeTerminals(terminals)
	if m == nil {
		m = &Metrics{}
	}
	// The enumeration span hangs off whatever span the caller put in the
	// context (the suggestion pipeline's search stage) — no signature
	// change, inert when tracing is off.
	sp := obs.SpanFromContext(ctx).Child("search.topk", "steiner")
	var out []*Tree
	defer func() {
		if sp != nil {
			sp.SetAttrInt("k", int64(k))
			sp.SetAttrInt("trees_out", int64(len(out)))
			sp.SetAttrInt("solver_calls", m.SolverCalls.Load())
			sp.SetAttrInt("pruned", m.Pruned())
			sp.End()
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.SolverCalls.Add(1)
	first, ok := solveSpanned(ctx, sp, -1, g, terminals, nil, solve)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !ok {
		m.Infeasible.Add(1)
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	pq := &candHeap{}
	heap.Push(pq, candHeapItem{tree: first, banned: map[int]bool{}})
	seen := map[string]bool{}
	for pq.Len() > 0 && len(out) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := heap.Pop(pq).(candHeapItem)
		key := c.tree.Key()
		if seen[key] {
			m.Duplicates.Add(1)
			continue
		}
		seen[key] = true
		out = append(out, c.tree)
		// Solve the |Edges| exclusion subproblems concurrently, then push
		// the surviving children in edge order for determinism.
		children := make([]*candHeapItem, len(c.tree.Edges))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for idx, e := range c.tree.Edges {
			wg.Add(1)
			go func(idx, e int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				nb := make(map[int]bool, len(c.banned)+1)
				for id := range c.banned {
					nb[id] = true
				}
				nb[e] = true
				m.SolverCalls.Add(1)
				if t, ok := solveSpanned(ctx, sp, e, g, terminals, nb, solve); ok {
					children[idx] = &candHeapItem{tree: t, banned: nb}
				} else {
					m.Infeasible.Add(1)
				}
			}(idx, e)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, ch := range children {
			if ch != nil {
				heap.Push(pq, *ch)
			}
		}
	}
	return out, nil
}

// solveSpanned wraps one solver invocation in a child span of the
// enumeration span (nil-safe). ban is the edge excluded by this Lawler
// subproblem, or -1 for the unrestricted root solve; it doubles as the
// attribute that keeps sibling spans distinct, so the deterministic
// exporter has a stable sort key even when subproblems race.
func solveSpanned(ctx context.Context, parent *obs.Span, ban int, g *Graph, terminals []int, banned map[int]bool, solve CtxSolver) (*Tree, bool) {
	if parent == nil {
		return solve(ctx, g, terminals, banned)
	}
	ssp := parent.Child("steiner.solve", "steiner")
	ssp.SetAttrInt("ban", int64(ban))
	t, ok := solve(ctx, g, terminals, banned)
	if ok {
		ssp.SetAttrInt("edges", int64(len(t.Edges)))
	} else {
		ssp.SetAttr("result", "infeasible")
	}
	ssp.End()
	return t, ok
}

type candHeapItem = struct {
	tree   *Tree
	banned map[int]bool
}

type candHeap []candHeapItem

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].tree.Cost < h[j].tree.Cost }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(candHeapItem)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
