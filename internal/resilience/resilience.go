// Package resilience hardens CopyCat's service-call path against the
// realities of live web services (§4's Google geocoding and Yahoo address
// resolution): transient failures, latency spikes, and outages. It
// provides an error taxonomy (transient vs permanent, checked with
// errors.Is), retry with exponential backoff and deterministic seeded
// jitter, per-call latency budgets, and a per-service circuit breaker —
// the substrate the engine's dependent joins use to degrade gracefully
// instead of aborting a whole plan on the first flaky lookup.
//
// Everything is clock-driven: injected latency and breaker cooldowns run
// on a Clock, and tests use VirtualClock so the entire layer is
// deterministic with no wall-clock sleeps.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ---------------------------------------------------------------- error taxonomy

// ErrTransient marks failures worth retrying: the service may answer the
// same inputs on another attempt (timeouts, dropped connections, 5xx-like
// conditions). Check with errors.Is(err, ErrTransient) or Transient(err).
var ErrTransient = errors.New("transient service failure")

// ErrPermanent marks failures retrying cannot fix: the inputs themselves
// are unacceptable, or the service rejected the request semantically.
var ErrPermanent = errors.New("permanent service failure")

// ErrTimeout classifies a call whose observed latency exceeded the
// policy's per-call budget. It is transient: a retry may be fast.
var ErrTimeout = fmt.Errorf("service call timed out: %w", ErrTransient)

// ErrBreakerOpen is returned without invoking the service while its
// circuit breaker is open. It is transient: the breaker will probe again
// after the cooldown.
var ErrBreakerOpen = fmt.Errorf("circuit breaker open: %w", ErrTransient)

// classified wraps an underlying error with a taxonomy sentinel so both
// survive errors.Is.
type classified struct {
	err   error
	class error
}

func (c *classified) Error() string   { return c.err.Error() }
func (c *classified) Unwrap() []error { return []error{c.err, c.class} }

// MarkTransient tags an error as transient. nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ErrTransient}
}

// MarkPermanent tags an error as permanent. nil stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ErrPermanent}
}

// Transient reports whether an error is classified transient.
func Transient(err error) bool { return errors.Is(err, ErrTransient) }

// Permanent reports whether an error is explicitly classified permanent.
// Unclassified errors are treated as permanent by the retry loop (they
// signal bad inputs, not a bad service), but Permanent returns false for
// them so callers can distinguish the three cases.
func Permanent(err error) bool { return errors.Is(err, ErrPermanent) }

// ---------------------------------------------------------------- policy

// Policy configures the retry loop around one service call.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// JitterFrac spreads each backoff by ±JitterFrac of its value, drawn
	// from the seeded jitter stream — deterministic, unlike crypto/time
	// jitter, so tests and experiments replay exactly.
	JitterFrac float64
	// Timeout is the per-call latency budget measured on the Clock: a
	// call whose observed duration exceeds it is classified ErrTimeout
	// (transient) even if it returned data. 0 disables the budget.
	Timeout time.Duration
	// Seed seeds the jitter stream.
	Seed int64
	// Clock drives backoff sleeps and latency measurement. Defaults to
	// the system clock; tests install a VirtualClock.
	Clock Clock
}

// DefaultPolicy is the standard service-call policy: three attempts,
// 25ms→2× backoff with ±20% jitter, and a 2s per-call budget.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 3,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		JitterFrac:  0.2,
		Timeout:     2 * time.Second,
		Seed:        1,
	}
}

// withDefaults fills zero fields from DefaultPolicy.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Clock == nil {
		p.Clock = SystemClock{}
	}
	return p
}

// ---------------------------------------------------------------- caller

// Outcome reports what one resilient call cost.
type Outcome struct {
	// Attempts is how many times the service was actually invoked.
	Attempts int
	// Retries is Attempts beyond the first.
	Retries int
	// Tripped reports whether this call drove a breaker open.
	Tripped bool
}

// Caller executes service calls under a retry policy with one circuit
// breaker per service name. Safe for concurrent use; the suggestion
// pipeline's parallel candidate executor shares one Caller.
type Caller struct {
	policy Policy
	bcfg   BreakerConfig

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*Breaker
	// onTransition, when set, is installed on every breaker (existing and
	// future) with the owning service's name bound in.
	onTransition func(service string, from, to BreakerState)
}

// NewCaller builds a caller from a policy and breaker config; zero
// fields take defaults.
func NewCaller(p Policy, bc BreakerConfig) *Caller {
	p = p.withDefaults()
	return &Caller{
		policy:   p,
		bcfg:     bc.withDefaults(),
		rng:      rand.New(rand.NewSource(p.Seed)),
		breakers: map[string]*Breaker{},
	}
}

// Breaker returns the named service's breaker, creating it on first use.
func (c *Caller) Breaker(service string) *Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[service]
	if !ok {
		b = NewBreaker(c.bcfg, c.policy.Clock)
		if fn := c.onTransition; fn != nil {
			svc := service
			b.SetTransitionHook(func(from, to BreakerState) { fn(svc, from, to) })
		}
		c.breakers[service] = b
	}
	return b
}

// SetBreakerTransitionHook installs fn on every breaker this caller
// owns, existing and future, bound to the owning service's name. The
// hook fires after each state change, outside all breaker locks (it is
// allowed to read Caller.Status / snapshot metrics). nil removes it.
func (c *Caller) SetBreakerTransitionHook(fn func(service string, from, to BreakerState)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onTransition = fn
	existing := make(map[string]*Breaker, len(c.breakers))
	for name, b := range c.breakers {
		existing[name] = b
	}
	c.mu.Unlock()
	for name, b := range existing {
		if fn == nil {
			b.SetTransitionHook(nil)
			continue
		}
		svc := name
		b.SetTransitionHook(func(from, to BreakerState) { fn(svc, from, to) })
	}
}

// BreakerStatus is a point-in-time report of one service's breaker,
// the shape the telemetry server's /metrics and /healthz export.
type BreakerStatus struct {
	Service string       `json:"service"`
	State   BreakerState `json:"-"`
	// StateName is State rendered ("closed", "open", "half-open") so the
	// JSON surface is self-describing.
	StateName string `json:"state"`
	Trips     int64  `json:"trips"`
}

// Status snapshots every breaker the caller has created, sorted by
// service name. Services never called have no breaker and do not
// appear.
func (c *Caller) Status() []BreakerStatus {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.breakers))
	for name := range c.breakers {
		names = append(names, name)
	}
	breakers := make([]*Breaker, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		breakers = append(breakers, c.breakers[name])
	}
	c.mu.Unlock()
	// Read each breaker outside the caller lock: Breaker has its own
	// mutex and Allow may be mid-flight on another goroutine.
	out := make([]BreakerStatus, len(names))
	for i, b := range breakers {
		st := b.State()
		out[i] = BreakerStatus{Service: names[i], State: st, StateName: st.String(), Trips: b.Trips()}
	}
	return out
}

// CountOpen reports how many of the given breakers are open. Paired
// with MajorityOpen it is the shared overload signal: the telemetry
// server's readiness probe and the session host's admission control
// both treat a majority-open breaker set as "the backend services are
// down, stop taking work".
func CountOpen(bs []BreakerStatus) int {
	open := 0
	for _, b := range bs {
		if b.State == BreakerOpen {
			open++
		}
	}
	return open
}

// MajorityOpen reports whether more than half of the breakers are open
// (false for an empty set: no services called means no evidence of
// overload).
func MajorityOpen(bs []BreakerStatus) bool {
	return len(bs) > 0 && CountOpen(bs)*2 > len(bs)
}

// backoff computes the jittered delay before retry number attempt
// (0-based). Jitter draws from the seeded stream under the mutex.
func (c *Caller) backoff(attempt int) time.Duration {
	d := float64(c.policy.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= c.policy.Multiplier
	}
	if max := float64(c.policy.MaxDelay); d > max {
		d = max
	}
	if c.policy.JitterFrac > 0 {
		c.mu.Lock()
		u := c.rng.Float64()
		c.mu.Unlock()
		d += d * c.policy.JitterFrac * (2*u - 1)
	}
	return time.Duration(d)
}

// Do runs fn under the service's breaker and the retry policy.
//
// Transient failures retry with backoff until attempts are exhausted,
// the breaker opens, or ctx is done; the final error keeps its transient
// classification so callers can degrade instead of aborting. Permanent
// and unclassified errors return immediately — they indicate the inputs,
// not the service, and count as breaker successes (the service did
// answer). A call that succeeds but overruns the per-call Timeout on the
// policy's clock is classified ErrTimeout.
func (c *Caller) Do(ctx context.Context, service string, fn func() error) (Outcome, error) {
	b := c.Breaker(service)
	tripsBefore := b.Trips()
	var out Outcome
	var lastErr error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				out.Retries = maxInt(out.Attempts-1, 0)
				return out, err
			}
		}
		if err := b.Allow(); err != nil {
			out.Retries = maxInt(out.Attempts-1, 0)
			out.Tripped = b.Trips() > tripsBefore
			return out, err
		}
		out.Attempts++
		start := c.policy.Clock.Now()
		err := fn()
		if err == nil && c.policy.Timeout > 0 && c.policy.Clock.Now().Sub(start) > c.policy.Timeout {
			err = ErrTimeout
		}
		if err == nil {
			b.Success()
			out.Retries = out.Attempts - 1
			return out, nil
		}
		if !Transient(err) {
			// Permanent (or unclassified) failure: the service answered;
			// retrying the same inputs cannot help.
			b.Success()
			out.Retries = out.Attempts - 1
			return out, err
		}
		lastErr = err
		b.Failure()
		if attempt < c.policy.MaxAttempts-1 {
			c.policy.Clock.Sleep(c.backoff(attempt))
		}
	}
	out.Retries = out.Attempts - 1
	out.Tripped = b.Trips() > tripsBefore
	return out, fmt.Errorf("%s: %d attempt(s) exhausted: %w", service, out.Attempts, lastErr)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
