package resilience

import (
	"sync"
	"time"
)

// Clock abstracts time for the resilience layer: backoff sleeps, breaker
// cooldowns, latency budgets, and injected fault latency all run on a
// Clock, so tests and experiments replace the wall clock with a
// VirtualClock and stay deterministic with zero real sleeping.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep pauses the caller for d.
	Sleep(d time.Duration)
}

// SystemClock is the wall clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a deterministic clock: Sleep advances Now instantly.
// Concurrent sleepers serialize their advances, so total virtual time is
// the sum of all sleeps — a simple, reproducible latency model. Safe for
// concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at the Unix epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(0, 0).UTC()}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the clock without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Advance moves the clock forward explicitly (e.g. past a breaker
// cooldown in tests).
func (c *VirtualClock) Advance(d time.Duration) { c.Sleep(d) }
