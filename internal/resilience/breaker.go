package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets probe calls through; success closes the
	// breaker, failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive transient failures open
	// the breaker.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through, measured on the Clock.
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker again.
	HalfOpenProbes int
}

// DefaultBreakerConfig opens after 5 consecutive failures, cools down
// for 30s of clock time, and closes after one successful probe.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{FailureThreshold: 5, Cooldown: 30 * time.Second, HalfOpenProbes: 1}
}

// withDefaults fills zero fields from DefaultBreakerConfig.
func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = d.FailureThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = d.Cooldown
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	return c
}

// Breaker is a per-service circuit breaker: after FailureThreshold
// consecutive transient failures it fails fast for Cooldown, sparing a
// struggling service (and the interactive loop) the cost of doomed
// calls, then probes half-open. Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	cfg       BreakerConfig
	clock     Clock
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	openedAt  time.Time
	trips     int64
	// onTransition observes state changes (the flight recorder's feed).
	// It is invoked AFTER b.mu is released: observers snapshot metrics,
	// which walks back into Breaker.State, so calling under the lock
	// would deadlock.
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a breaker on the given clock (SystemClock if nil).
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = SystemClock{}
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// SetTransitionHook installs fn, called after every state change with
// the (from, to) pair, outside the breaker's lock. nil removes it.
func (b *Breaker) SetTransitionHook(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// Allow reports whether a call may proceed: nil, or ErrBreakerOpen while
// the breaker is open. An open breaker whose cooldown has elapsed moves
// to half-open and admits the probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	if b.state == BreakerOpen {
		if b.clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		hook := b.onTransition
		b.mu.Unlock()
		if hook != nil {
			hook(BreakerOpen, BreakerHalfOpen)
		}
		return nil
	}
	b.mu.Unlock()
	return nil
}

// Success records a successful (or permanently-failed, i.e. answered)
// call.
func (b *Breaker) Success() {
	b.mu.Lock()
	closed := false
	switch b.state {
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.failures = 0
			closed = true
		}
	default:
		b.failures = 0
	}
	hook := b.onTransition
	b.mu.Unlock()
	if closed && hook != nil {
		hook(BreakerHalfOpen, BreakerClosed)
	}
}

// Failure records a transient failure, opening the breaker when the
// consecutive-failure threshold is reached (or instantly from
// half-open).
func (b *Breaker) Failure() {
	b.mu.Lock()
	var from BreakerState
	tripped := false
	switch b.state {
	case BreakerHalfOpen:
		from = BreakerHalfOpen
		b.trip()
		tripped = true
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			from = BreakerClosed
			b.trip()
			tripped = true
		}
	}
	hook := b.onTransition
	b.mu.Unlock()
	if tripped && hook != nil {
		hook(from, BreakerOpen)
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.failures = 0
	b.trips++
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
