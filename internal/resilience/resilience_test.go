package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassification(t *testing.T) {
	base := errors.New("boom")
	tr := MarkTransient(base)
	pm := MarkPermanent(base)
	if !Transient(tr) || Permanent(tr) {
		t.Error("MarkTransient misclassified")
	}
	if !Permanent(pm) || Transient(pm) {
		t.Error("MarkPermanent misclassified")
	}
	if !errors.Is(tr, base) || !errors.Is(pm, base) {
		t.Error("marking should preserve the underlying error chain")
	}
	if tr.Error() != "boom" {
		t.Errorf("marked error text = %q", tr.Error())
	}
	if Transient(errors.New("plain")) || Permanent(errors.New("plain")) {
		t.Error("unclassified errors belong to neither class")
	}
	if !Transient(ErrTimeout) || !Transient(ErrBreakerOpen) {
		t.Error("timeout and breaker-open must be transient")
	}
	if MarkTransient(nil) != nil || MarkPermanent(nil) != nil {
		t.Error("marking nil should stay nil")
	}
	if wrapped := fmt.Errorf("svc X: %w", tr); !Transient(wrapped) {
		t.Error("classification must survive further wrapping")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	c.Sleep(3 * time.Second)
	c.Advance(2 * time.Second)
	c.Sleep(-time.Second) // negative sleeps are ignored
	if got := c.Now().Sub(t0); got != 5*time.Second {
		t.Errorf("virtual elapsed = %v want 5s", got)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	clock := NewVirtualClock()
	c := NewCaller(Policy{MaxAttempts: 3, Clock: clock, Seed: 7}, BreakerConfig{})
	calls := 0
	out, err := c.Do(context.Background(), "svc", func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if out.Attempts != 3 || out.Retries != 2 {
		t.Errorf("outcome = %+v want 3 attempts / 2 retries", out)
	}
	if clock.Now().Sub(time.Unix(0, 0).UTC()) == 0 {
		t.Error("backoff should have advanced the virtual clock")
	}
}

func TestRetryExhaustionKeepsTransientClass(t *testing.T) {
	c := NewCaller(Policy{MaxAttempts: 2, Clock: NewVirtualClock()}, BreakerConfig{})
	_, err := c.Do(context.Background(), "svc", func() error {
		return MarkTransient(errors.New("down"))
	})
	if err == nil || !Transient(err) {
		t.Fatalf("exhausted retries should stay transient, got %v", err)
	}
}

func TestPermanentErrorDoesNotRetry(t *testing.T) {
	c := NewCaller(Policy{MaxAttempts: 5, Clock: NewVirtualClock()}, BreakerConfig{})
	calls := 0
	out, err := c.Do(context.Background(), "svc", func() error {
		calls++
		return MarkPermanent(errors.New("bad input"))
	})
	if calls != 1 || out.Attempts != 1 {
		t.Errorf("permanent failure retried: %d calls", calls)
	}
	if !Permanent(err) {
		t.Errorf("err = %v want permanent", err)
	}
	// Unclassified errors behave the same way.
	calls = 0
	_, err = c.Do(context.Background(), "svc", func() error {
		calls++
		return errors.New("plain")
	})
	if calls != 1 || Transient(err) {
		t.Errorf("unclassified error retried (%d calls) or misclassified (%v)", calls, err)
	}
}

func TestTimeoutClassification(t *testing.T) {
	clock := NewVirtualClock()
	c := NewCaller(Policy{MaxAttempts: 1, Timeout: 100 * time.Millisecond, Clock: clock}, BreakerConfig{})
	_, err := c.Do(context.Background(), "slow", func() error {
		clock.Sleep(250 * time.Millisecond) // a latency spike past the budget
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v want ErrTimeout", err)
	}
	if !Transient(err) {
		t.Error("timeouts must be transient")
	}
}

func TestJitterIsDeterministic(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		c := NewCaller(Policy{MaxAttempts: 4, Clock: NewVirtualClock(), Seed: seed, JitterFrac: 0.5}, BreakerConfig{})
		var out []time.Duration
		for i := 0; i < 6; i++ {
			out = append(out, c.backoff(i%3))
		}
		return out
	}
	a, b := delays(42), delays(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	diff := false
	for i, d := range delays(43) {
		if d != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should jitter differently")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	clock := NewVirtualClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second, HalfOpenProbes: 1}, clock)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Failure()
	}
	b.Success() // a success resets the consecutive count
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d; want open after 3 consecutive failures", b.State(), b.Trips())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker should reject, got %v", err)
	}
	clock.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("cooled-down breaker should admit a probe, got %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v want half-open", b.State())
	}
	b.Failure() // failed probe re-opens instantly
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe should re-open: state=%v trips=%d", b.State(), b.Trips())
	}
	clock.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe should close, state = %v", b.State())
	}
}

func TestCallerTripsAndShortCircuits(t *testing.T) {
	clock := NewVirtualClock()
	c := NewCaller(
		Policy{MaxAttempts: 2, Clock: clock},
		BreakerConfig{FailureThreshold: 4, Cooldown: time.Minute},
	)
	calls := 0
	fail := func() error { calls++; return MarkTransient(errors.New("down")) }
	// First two rows burn 2 attempts each and trip the breaker.
	_, _ = c.Do(context.Background(), "svc", fail)
	out, err := c.Do(context.Background(), "svc", fail)
	if !out.Tripped {
		t.Fatalf("second call should have tripped the breaker (err %v)", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d want 4", calls)
	}
	// Subsequent calls fail fast without touching the service.
	out, err = c.Do(context.Background(), "svc", fail)
	if calls != 4 || !errors.Is(err, ErrBreakerOpen) || out.Attempts != 0 {
		t.Fatalf("open breaker must short-circuit: calls=%d err=%v out=%+v", calls, err, out)
	}
	// Other services are unaffected.
	if _, err := c.Do(context.Background(), "other", func() error { return nil }); err != nil {
		t.Fatalf("independent service hit the breaker: %v", err)
	}
}

func TestDoHonorsContext(t *testing.T) {
	c := NewCaller(Policy{MaxAttempts: 3, Clock: NewVirtualClock()}, BreakerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := c.Do(ctx, "svc", func() error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx should stop before calling: calls=%d err=%v", calls, err)
	}
}
