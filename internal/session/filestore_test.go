package session_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"copycat/internal/session"
)

// snapPath returns where a FileStore keeps the snapshot for id.
func snapPath(fs *session.FileStore, id string) string {
	return filepath.Join(fs.Dir(), id+".snap")
}

// repetitiveSnapshot is a stand-in for real persist JSON: repeated keys
// and cell tags, so it compresses the way real snapshots do.
func repetitiveSnapshot() []byte {
	return []byte(`{"relations":[` + strings.Repeat(`{"name":"Shelters","city":"Springfield"},`, 300) + `{}]}`)
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := session.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := repetitiveSnapshot()
	if err := fs.Save("s000001", data); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, ok, err := fs.Load("s000001")
	if err != nil || !ok {
		t.Fatalf("Load = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mangled the snapshot")
	}
	// Missing IDs report cleanly, no error.
	if _, ok, err := fs.Load("s999999"); ok || err != nil {
		t.Fatalf("Load missing = ok=%v err=%v, want false,nil", ok, err)
	}
	// The on-disk file is framed and compressed: header magic plus a
	// payload much smaller than the raw snapshot.
	disk, err := os.ReadFile(snapPath(fs, "s000001"))
	if err != nil {
		t.Fatal(err)
	}
	if string(disk[:4]) != "SCPS" {
		t.Fatalf("snapshot file missing magic: % x", disk[:4])
	}
	if len(disk) >= len(data) {
		t.Fatalf("snapshot not compressed: %d bytes on disk for %d raw", len(disk), len(data))
	}
	st := fs.Stats()
	if st.Snapshots != 1 || st.RawBytes != int64(len(data)) || st.DiskBytes != int64(len(disk)) {
		t.Fatalf("stats %+v, want 1 snapshot, raw=%d disk=%d", st, len(data), len(disk))
	}
	if st.CompressionRatio() < 2 {
		t.Fatalf("compression ratio %.2f on repetitive JSON, want >= 2", st.CompressionRatio())
	}
	if err := fs.Delete("s000001"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := fs.Load("s000001"); ok {
		t.Fatal("snapshot survived Delete")
	}
	if fs.Len() != 0 {
		t.Fatalf("Len = %d after delete", fs.Len())
	}
}

func TestFileStoreSaveReplacesAtomically(t *testing.T) {
	fs, err := session.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("s000001", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	second := repetitiveSnapshot()
	if err := fs.Save("s000001", second); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs.Load("s000001")
	if err != nil || !ok || !bytes.Equal(got, second) {
		t.Fatalf("Load after replace = ok=%v err=%v", ok, err)
	}
	// No temp litter: every *.tmp-* was renamed or removed.
	entries, err := os.ReadDir(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// A snapshot file holding raw JSON — the MemStore-era format, or one
// dropped in by hand from System.SaveSession — loads as-is.
func TestFileStoreLoadsLegacyRawJSON(t *testing.T) {
	fs, err := session.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte("\n  {\"version\":2,\"relations\":[]}")
	if err := os.WriteFile(snapPath(fs, "s000007"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs.Load("s000007")
	if err != nil || !ok {
		t.Fatalf("Load legacy = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("legacy snapshot altered on load")
	}
}

func TestFileStoreQuarantinesCorruption(t *testing.T) {
	good := repetitiveSnapshot()
	corruptions := []struct {
		name    string
		corrupt func(path string, t *testing.T)
	}{
		{"garbage", func(path string, t *testing.T) {
			if err := os.WriteFile(path, []byte("\x00\x02not a snapshot"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-header", func(path string, t *testing.T) {
			if err := os.WriteFile(path, []byte("SCPS\x01\x00"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-payload", func(path string, t *testing.T) {
			disk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, disk[:len(disk)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-payload-byte", func(path string, t *testing.T) {
			disk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			disk[len(disk)-3] ^= 0xFF
			if err := os.WriteFile(path, disk, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-crc", func(path string, t *testing.T) {
			disk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			disk[13] ^= 0xFF // CRC field
			if err := os.WriteFile(path, disk, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			fs, err := session.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const id = "s000001"
			if err := fs.Save(id, good); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(snapPath(fs, id), t)
			_, ok, err := fs.Load(id)
			if ok || !errors.Is(err, session.ErrCorruptSnapshot) {
				t.Fatalf("Load corrupt = ok=%v err=%v, want ErrCorruptSnapshot", ok, err)
			}
			// The bad file is preserved in quarantine/, out of the hot path.
			if _, err := os.Stat(filepath.Join(fs.Dir(), "quarantine", id+".snap")); err != nil {
				t.Fatalf("corrupt snapshot not quarantined: %v", err)
			}
			// The next Load reports "no snapshot" cleanly instead of
			// tripping over the same bytes forever.
			if _, ok, err := fs.Load(id); ok || err != nil {
				t.Fatalf("Load after quarantine = ok=%v err=%v, want false,nil", ok, err)
			}
			st := fs.Stats()
			if st.LoadErrors != 1 || st.Quarantined != 1 || st.Snapshots != 0 {
				t.Fatalf("stats after quarantine: %+v", st)
			}
		})
	}
}

func TestFileStoreReopenRecoversIndexAndManifest(t *testing.T) {
	dir := t.TempDir()
	fs, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := repetitiveSnapshot()
	created := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for _, id := range []string{"s000001", "s000002"} {
		fs.SetMeta(id, session.SnapshotMeta{Tenant: "tenant-" + id, Created: created})
		if err := fs.Save(id, data); err != nil {
			t.Fatal(err)
		}
	}
	// A manifest entry without a snapshot (deleted under a previous
	// process) must be dropped on reopen.
	fs.SetMeta("s000099", session.SnapshotMeta{Tenant: "ghost"})

	fs2, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := fs2.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ids)
	if len(ids) != 2 || ids[0] != "s000001" || ids[1] != "s000002" {
		t.Fatalf("List after reopen = %v", ids)
	}
	meta, ok := fs2.Meta("s000001")
	if !ok || meta.Tenant != "tenant-s000001" || !meta.Created.Equal(created) {
		t.Fatalf("Meta after reopen = %+v ok=%v", meta, ok)
	}
	if _, ok := fs2.Meta("s000099"); ok {
		t.Fatal("stale manifest entry survived reopen")
	}
	// Raw sizes come from the header scan, not the file size.
	st := fs2.Stats()
	if st.Snapshots != 2 || st.RawBytes != int64(2*len(data)) {
		t.Fatalf("stats after reopen: %+v, want raw=%d", st, 2*len(data))
	}
	// Losing the manifest costs only the tenant labels, never snapshots.
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	fs3, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fs3.Len() != 2 {
		t.Fatalf("snapshots lost with the manifest: Len=%d", fs3.Len())
	}
	if _, ok := fs3.Meta("s000001"); ok {
		t.Fatal("meta should be gone with the manifest")
	}
	if got, ok, err := fs3.Load("s000001"); err != nil || !ok || !bytes.Equal(got, data) {
		t.Fatalf("Load after manifest loss = ok=%v err=%v", ok, err)
	}
}

func TestFileStoreRejectsEscapingIDs(t *testing.T) {
	fs, err := session.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", ".", "..", "../evil", "a/b", `a\b`} {
		if err := fs.Save(id, []byte("{}")); err == nil {
			t.Fatalf("Save(%q) accepted a path-escaping id", id)
		}
		if _, _, err := fs.Load(id); err == nil {
			t.Fatalf("Load(%q) accepted a path-escaping id", id)
		}
	}
}
