package session_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"copycat/internal/session"
	"copycat/internal/simuser"
	"copycat/internal/webworld"
)

// TestConcurrentLifecycle hammers one manager from many goroutines —
// creating, attaching, refreshing, explicitly evicting, listing, and
// scraping stats — over hundreds of sessions with a tight memory
// budget, so the LRU evictor runs constantly under contention. Run
// under -race (make test-race) this is the data-race proof for the
// pin/evict locking protocol.
func TestConcurrentLifecycle(t *testing.T) {
	t.Run("mem", func(t *testing.T) { concurrentLifecycle(t, session.NewMemStore()) })
	t.Run("file", func(t *testing.T) {
		fs, err := session.NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		concurrentLifecycle(t, fs)
	})
}

func concurrentLifecycle(t *testing.T, store session.Store) {
	cfg := webworld.DefaultConfig()
	cfg.Cities, cfg.SheltersPerCity = 3, 3
	w := webworld.Generate(cfg)
	m := session.NewManager(session.Config{
		Factory: func() (*session.State, error) {
			e := simuser.NewEnv(w, webworld.StyleTable)
			return &session.State{Workspace: e.WS, Catalog: e.WS.Cat, Types: e.WS.Types}, nil
		},
		Store:         store,
		MemoryBudget:  2 << 20, // tight: forces steady eviction churn
		EnableTracing: true,
	})

	const (
		nSessions = 200
		nWorkers  = 8
		nOps      = 120
	)
	// Seed the fleet; every session gets imported state so snapshots are
	// non-trivial.
	ids := make([]string, nSessions)
	var seedWG sync.WaitGroup
	for g := 0; g < nWorkers; g++ {
		seedWG.Add(1)
		go func(g int) {
			defer seedWG.Done()
			for i := g; i < nSessions; i += nWorkers {
				s, err := m.Create(fmt.Sprintf("tenant%02d", i%10))
				if err != nil {
					t.Errorf("create %d: %v", i, err)
					return
				}
				if err := simuser.ImportShelters(s.State().Workspace, w, webworld.StyleTable); err != nil {
					t.Errorf("import %d: %v", i, err)
				}
				ids[i] = s.ID()
				s.Release()
			}
		}(g)
	}
	seedWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var refreshes, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < nWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for op := 0; op < nOps; op++ {
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(10) {
				case 0: // explicit evict; ErrBusy is expected under contention
					if err := m.Evict(id); err != nil && !errors.Is(err, session.ErrBusy) {
						t.Errorf("evict %s: %v", id, err)
					}
				case 1:
					m.List()
				case 2:
					m.Stats()
					m.MetricsSnapshot()
				default: // attach (transparent reload), refresh, release
					s, err := m.Acquire(id)
					if err != nil {
						failures.Add(1)
						t.Errorf("acquire %s: %v", id, err)
						continue
					}
					if n := len(s.State().Workspace.RefreshColumnSuggestions()); n == 0 {
						failures.Add(1)
						t.Errorf("session %s: no suggestions after attach", id)
					}
					refreshes.Add(1)
					s.Release()
				}
			}
		}(g)
	}
	wg.Wait()

	st := m.Stats()
	if st.Evictions == 0 || st.Reloads == 0 {
		t.Fatalf("expected eviction churn under the tight budget: %+v", st)
	}
	if st.ResidentBytes > 2<<20 {
		t.Fatalf("resident estimate %d over budget after quiescence", st.ResidentBytes)
	}
	if refreshes.Load() == 0 || failures.Load() != 0 {
		t.Fatalf("refreshes=%d failures=%d", refreshes.Load(), failures.Load())
	}
	t.Logf("fleet: %d sessions, %d refreshes, %d evictions, %d reloads, resident %d (%dB)",
		st.Sessions, refreshes.Load(), st.Evictions, st.Reloads, st.Resident, st.ResidentBytes)
}
