package session_test

import (
	"errors"
	"testing"

	"copycat/internal/catalog"
	"copycat/internal/docmodel"
	"copycat/internal/intlearn"
	"copycat/internal/modellearn"
	"copycat/internal/session"
	"copycat/internal/sourcegraph"
	"copycat/internal/table"
	"copycat/internal/workspace"
)

// tieredState builds a minimal three-source catalog (a fresh direct join
// and a cheaper stale two-hop decoy) whose learner is forced onto the
// tiered solver path, so every integration paste answers from SPCSH and
// spawns a background exact refinement.
func tieredState() (*session.State, error) {
	cat := catalog.New()
	names := table.NewRelation("Names", table.NewSchema("Name", "K"))
	for _, r := range [][]string{{"Shelter Alpha", "K1"}, {"Shelter Beta", "K2"}, {"Shelter Gamma", "K3"}} {
		names.MustAppend(table.FromStrings(r))
	}
	cat.AddRelation(names, "fragment")
	status := table.NewRelation("StatusByKey", table.NewSchema("K", "Status"))
	for _, r := range [][]string{{"K1", "open"}, {"K2", "full"}, {"K3", "closed"}} {
		status.MustAppend(table.FromStrings(r))
	}
	cat.AddRelation(status, "fragment")
	stale := table.NewRelation("StaleMap", table.NewSchema("Name", "K"))
	for _, r := range [][]string{{"Alpha House", "K2"}, {"Beta House", "K3"}, {"Gamma House", "K1"}} {
		stale.MustAppend(table.FromStrings(r))
	}
	cat.AddRelation(stale, "stale-mirror")

	ws := workspace.New(cat, modellearn.NewLibrary())
	g := ws.Int.Graph
	g.AddEdge(sourcegraph.Edge{From: "Names", To: "StatusByKey", Kind: sourcegraph.KindJoin,
		FromCols: []string{"K"}, ToCols: []string{"K"}, Cost: 0.6})
	g.AddEdge(sourcegraph.Edge{From: "Names", To: "StaleMap", Kind: sourcegraph.KindJoin,
		FromCols: []string{"Name"}, ToCols: []string{"Name"}, Cost: 0.2})
	g.AddEdge(sourcegraph.Edge{From: "StaleMap", To: "StatusByKey", Kind: sourcegraph.KindJoin,
		FromCols: []string{"K"}, ToCols: []string{"K"}, Cost: 0.2})
	// Force the tiered path: the 3-node graph is "too big" for inline
	// exact, small enough to refine in the background.
	ws.Int.MaxExactNodes = 1
	return &session.State{Workspace: ws, Catalog: cat, Types: ws.Types}, nil
}

// TestRefineRaceAcceptRejectEvict is the -race proof for the background
// exact refinement: a refine in flight must never race an accept, a
// reject, a refresh poll, a snapshot-on-evict, or a reload — and once
// the session detaches, a late-finishing refine must not re-rank the
// reloaded workspace (it publishes only into the detached workspace's
// plan cache, which dies with it).
func TestRefineRaceAcceptRejectEvict(t *testing.T) {
	m := session.NewManager(session.Config{
		Factory:      tieredState,
		Store:        session.NewMemStore(),
		MemoryBudget: 64 << 20,
	})
	s, err := m.Create("tenant")
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()
	sel := docmodel.Selection{Cells: [][]string{{"Shelter Alpha", "open"}}}

	// Every cycle's learner is kept so all in-flight refines can be
	// joined at the end, after their workspaces have been detached.
	var detached []*intlearn.Learner
	for i := 0; i < 12; i++ {
		ws := s.State().Workspace
		detached = append(detached, ws.Int)
		ws.SelectTab("Sheet1")
		ws.SetMode(workspace.ModeIntegration)
		if err := ws.Paste(sel); err != nil {
			t.Fatal(err)
		}
		if len(ws.PendingQueries()) == 0 {
			t.Fatal("integration paste proposed no queries")
		}
		if ws.Metrics.Counter("solver.tier."+intlearn.TierHybrid).Load() == 0 {
			t.Fatal("paste did not take the tiered solver path")
		}
		// User feedback races the refine this paste just spawned.
		switch i % 3 {
		case 0:
			if err := ws.AcceptQuery(0); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := ws.RejectQuery(0); err != nil {
				t.Fatal(err)
			}
			// The re-poll spawns a second refine under the post-feedback
			// memo key while the first may still be running.
			if _, err := ws.RefreshQuerySuggestions(); err != nil {
				t.Fatal(err)
			}
		case 2:
			// Detach immediately: the snapshot-on-evict below races the
			// refine with no feedback in between.
		}
		s.Release()
		// Evict (snapshot + drop) while refines may be in flight, then
		// transparently reload.
		if err := m.Evict(id); err != nil && !errors.Is(err, session.ErrBusy) {
			t.Fatal(err)
		}
		if s, err = m.Acquire(id); err != nil {
			t.Fatal(err)
		}
	}

	// Join every refine spawned against now-detached workspaces; none may
	// re-rank the live session.
	ws := s.State().Workspace
	before := len(ws.PendingQueries())
	for _, l := range detached {
		l.WaitRefines()
	}
	if got := len(ws.PendingQueries()); got != before {
		t.Fatalf("detached refine re-ranked the live workspace: %d pending queries, was %d", got, before)
	}
	// The reloaded workspace has no outstanding integration paste, so a
	// poll is a no-op, not a stale re-rank.
	qs, err := ws.RefreshQuerySuggestions()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != before {
		t.Fatalf("refresh after reload changed the proposals: %d, was %d", len(qs), before)
	}
	s.Release()

	st := m.Stats()
	if st.Evictions == 0 || st.Reloads == 0 {
		t.Fatalf("expected evict/reload churn: %+v", st)
	}
}
