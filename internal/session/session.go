// Package session turns CopyCat from a one-workspace library into a
// hostable multi-tenant service. Every piece of mutable state a user
// accumulates — imported relations, learned semantic types, MIRA edge
// weights, the plan cache, the decision log, SLO windows — already
// hangs off one workspace.Workspace; this package wraps that state in a
// Session handle and hosts thousands of them behind a Manager with:
//
//   - create/attach/snapshot/evict lifecycle (attach pins a session for
//     exclusive use; release unpins it);
//   - bounded aggregate memory: when the resident estimate crosses the
//     budget the least-recently-used unpinned session is serialized to a
//     persist snapshot and dropped, then transparently reloaded on its
//     next attach;
//   - admission control wired to the host SLO substrate: when the
//     fast-burn alert on the aggregate suggest-refresh objective fires
//     (or the session table is full, or a majority of host breakers are
//     open), new sessions are shed with ErrOverloaded/ErrCapacity and
//     the telemetry server's /readyz flips to 503.
//
// The single-workspace facade (copycat.System) wraps one standalone
// Session, so the library API and the hosted service share one state
// model.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"copycat/internal/catalog"
	"copycat/internal/modellearn"
	"copycat/internal/persist"
	"copycat/internal/sourcegraph"
	"copycat/internal/workspace"
)

// Lifecycle errors. ErrCapacity and ErrOverloaded are admission
// rejections (the caller should retry later or elsewhere); ErrBusy
// means the session is pinned by another holder right now.
var (
	ErrNotFound   = errors.New("session: not found")
	ErrBusy       = errors.New("session: busy")
	ErrCapacity   = errors.New("session: at capacity")
	ErrOverloaded = errors.New("session: host overloaded")
	ErrNoSnapshot = errors.New("session: no snapshot to reload")
)

// State is everything a session owns: the workspace (tabs, learners,
// caches, logs, SLO windows) plus the catalog and type library it was
// built over. A Factory produces a fresh State per session; Restore
// replays a persisted snapshot into a fresh one.
type State struct {
	Workspace *workspace.Workspace
	Catalog   *catalog.Catalog
	Types     *modellearn.Library
}

// Factory builds a fresh, empty State: catalog with services
// registered, trained type library, new workspace. The manager calls it
// on Create and again on every reload (services are functions and are
// not serialized — the factory re-registers them, then Restore replays
// the snapshot on top).
type Factory func() (*State, error)

// Snapshot serializes the state with the v2 persist format: relations,
// types, learned edge costs, the workspace surface, and the plan-cache
// counters. SLO window state is intentionally NOT serialized: the
// windows are time-based (minutes), so by the time an evicted session
// is reloaded they would have aged out anyway — reload resets them, and
// DESIGN.md §12 documents the reset.
func (st *State) Snapshot() ([]byte, error) {
	extras := &persist.Extras{Workspace: persist.DumpWorkspace(st.Workspace)}
	if pc := st.Workspace.PlanCache; pc != nil {
		h, m, e := pc.Stats()
		extras.PlanCache = &persist.CacheCounters{Hits: h, Misses: m, Evictions: e}
	}
	q := st.Workspace.Quality.Snapshot()
	extras.Quality = &q
	return persist.SaveState(st.Catalog, st.Types, st.Workspace.Int.Graph, extras)
}

// Restore replays a snapshot (v1 or v2) into this state: relations and
// types merge into the catalog/library, the source graph re-discovers
// its associations, learned edge costs re-attach to both the graph and
// the MIRA learner, the workspace surface (tabs, mode) is rebuilt, and
// the plan-cache counters carry forward. The cache contents start cold;
// incremental refresh re-fills them (warm and cold refreshes are
// output-equivalent, so the reload is invisible in the suggestions).
func (st *State) Restore(data []byte) error {
	r, err := persist.LoadState(data, st.Catalog, st.Types)
	if err != nil {
		return err
	}
	ws := st.Workspace
	ws.Int.Graph.Discover(sourcegraph.DefaultOptions())
	persist.ApplyCosts(ws.Int.Graph, r.EdgeCosts)
	for id, c := range r.EdgeCosts {
		ws.Int.Mira.SetWeight(id, c)
	}
	persist.RestoreWorkspace(ws, r.Workspace)
	if r.PlanCache != nil && ws.PlanCache != nil {
		ws.PlanCache.RestoreStats(r.PlanCache.Hits, r.PlanCache.Misses, r.PlanCache.Evictions)
	}
	if r.Quality != nil {
		ws.Quality.Restore(*r.Quality)
	}
	return nil
}

// sessionBaseBytes is the per-session overhead estimate (learners,
// graph, registries) added on top of the data-proportional terms.
const sessionBaseBytes = 64 << 10

// SizeEstimate approximates the resident footprint in bytes — catalog
// rows, workspace tabs, plan-cache entries, decision-log length — for
// the manager's aggregate memory accounting. It is an estimate used for
// LRU budgeting, not an exact heap measurement.
func (st *State) SizeEstimate() int64 {
	n := int64(sessionBaseBytes)
	if st.Catalog != nil {
		for _, src := range st.Catalog.All() {
			if src.Rel != nil {
				n += int64(len(src.Rel.Schema)+1) * int64(len(src.Rel.Rows)+1) * 64
			}
		}
	}
	if ws := st.Workspace; ws != nil {
		for _, t := range ws.Tabs() {
			n += int64(len(t.Schema)+1) * int64(len(t.Rows)+1) * 64
		}
		if ws.PlanCache != nil {
			n += int64(ws.PlanCache.Len()) * 4096
		}
		n += int64(ws.Decisions.Len()) * 256
	}
	return n
}

// Session is the handle all mutable CopyCat state hangs off. A session
// is either resident (its State in memory) or evicted (its State
// serialized in the manager's Store); Acquire pins it resident,
// reloading transparently if needed, and Release unpins it.
//
// The pin is a real mutex held across the acquire→release window:
// exactly one holder drives a session's workspace at a time (the
// workspace itself is not internally synchronized), and the evictor
// only TryLocks, so a pinned session is never snapshotted mid-use.
type Session struct {
	id     string
	tenant string
	mgr    *Manager // nil for standalone (single-workspace facade)

	// useMu is the pin; held from Acquire to Release.
	useMu sync.Mutex

	refreshes atomic.Int64 // suggest.refresh stages observed by the hook

	mu        sync.Mutex // guards the fields below (lock order: mgr.mu → mu)
	st        *State     // nil while evicted
	created   time.Time
	lastUsed  time.Time
	bytes     int64 // last size estimate while resident
	reloads   int64
	evictions int64
	destroyed bool
}

// NewStandalone wraps a State in an unmanaged session handle: no
// manager, never evicted, Release is a no-op. The copycat.System facade
// is exactly this — one standalone session.
func NewStandalone(id string, st *State) *Session {
	now := time.Now()
	return &Session{id: id, st: st, created: now, lastUsed: now}
}

// ID returns the session's handle ID (unique within its manager).
func (s *Session) ID() string { return s.id }

// Tenant returns the tenant label the session was created under.
func (s *Session) Tenant() string { return s.tenant }

// State returns the session's resident state. Only valid while the
// session is pinned (between Acquire and Release) or standalone; the
// evictor may drop an unpinned session's state at any time.
func (s *Session) State() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// Release unpins the session: its footprint estimate and recency are
// refreshed in the manager's accounting, and it becomes eligible for
// LRU eviction again. No-op on standalone sessions.
func (s *Session) Release() {
	if s.mgr == nil {
		return
	}
	s.mgr.release(s)
}

// Info is a point-in-time description of one session for /sessions and
// the REPL's :session list.
type Info struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant,omitempty"`
	Resident  bool      `json:"resident"`
	Bytes     int64     `json:"bytes"`
	Refreshes int64     `json:"refreshes"`
	Reloads   int64     `json:"reloads"`
	Evictions int64     `json:"evictions"`
	Created   time.Time `json:"created"`
	LastUsed  time.Time `json:"last_used"`
}

func (s *Session) info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		ID:        s.id,
		Tenant:    s.tenant,
		Resident:  s.st != nil,
		Bytes:     s.bytes,
		Refreshes: s.refreshes.Load(),
		Reloads:   s.reloads,
		Evictions: s.evictions,
		Created:   s.created,
		LastUsed:  s.lastUsed,
	}
}

// String renders one :session list line.
func (i Info) String() string {
	state := "evicted"
	if i.Resident {
		state = "resident"
	}
	return fmt.Sprintf("%-10s %-10s %-8s %8dB refreshes=%d reloads=%d evictions=%d",
		i.ID, i.Tenant, state, i.Bytes, i.Refreshes, i.Reloads, i.Evictions)
}
