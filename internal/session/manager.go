package session

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"copycat/internal/obs"
	"copycat/internal/obs/flight"
	"copycat/internal/resilience"
)

// Config sizes and wires a Manager. Zero values mean "unlimited" for
// the caps and "defaults" for the substrate handles; only Factory is
// required.
type Config struct {
	// Factory builds the state for new sessions and for reloads.
	Factory Factory
	// MaxSessions caps the total session count (resident + evicted).
	// Creates beyond it are shed with ErrCapacity. 0 = unlimited.
	MaxSessions int
	// MaxResident caps how many sessions may be resident at once; the
	// LRU overflow is evicted to the Store. 0 = unlimited.
	MaxResident int
	// MemoryBudget bounds the aggregate resident size estimate in
	// bytes; crossing it evicts LRU sessions until back under. 0 =
	// unlimited.
	MemoryBudget int64
	// TenantResidentQuota is the per-tenant resident allowance the
	// evictor protects: while any tenant holds more resident sessions
	// than the quota, victims are picked from the most-over-quota
	// tenant first (LRU within it), so one noisy tenant's create storm
	// cannot flush quiet tenants' sessions below their quota. When no
	// tenant is over quota the evictor falls back to global LRU. 0
	// disables fairness (pure global LRU).
	TenantResidentQuota int
	// Store receives eviction snapshots; nil installs a MemStore. A
	// store that can enumerate its snapshots (ListingStore, e.g.
	// FileStore) turns construction into crash recovery: NewManager
	// re-registers every on-disk session as evicted, so Acquire after
	// a restart transparently reloads it.
	Store Store
	// Clock drives recency stamps and the host SLO windows; nil means
	// the wall clock. Inject a resilience.VirtualClock for deterministic
	// admission tests.
	Clock resilience.Clock
	// SLO overrides the host admission SLO tracker; nil builds one with
	// obs.DefaultSLOConfig on the manager clock. Its fast-burn alert is
	// the load-shedding signal.
	SLO *obs.SLOTracker
	// Breakers optionally exposes host-level circuit breaker state to
	// admission control: a majority-open fleet sheds new sessions.
	Breakers func() []resilience.BreakerStatus
	// EnableTracing turns on span recording in every hosted workspace;
	// all sessions publish into the manager's shared span ring, tagged
	// with their session ID.
	EnableTracing bool
	// IncidentDir, when set, makes the host flight recorder persist
	// incident bundles to this directory (bounded; oldest pruned).
	IncidentDir string
}

// Manager hosts many concurrent sessions: it creates them from the
// factory, pins them for exclusive use on Acquire, keeps the aggregate
// resident footprint within budget by LRU-evicting unpinned sessions to
// the Store, reloads evicted sessions transparently on their next
// Acquire, and sheds new sessions when the host is overloaded.
type Manager struct {
	cfg     Config
	store   Store
	clock   resilience.Clock
	slo     *obs.SLOTracker
	ring    *obs.SpanRing
	metrics *obs.Registry
	// flight is the host flight recorder every hosted workspace shares:
	// spans, decisions, and lifecycle events from all sessions land in
	// one timeline, and trigger rules capture incident bundles from it.
	flight *flight.Recorder
	// decisions is the host-level decision log: manager lifecycle
	// decisions (which session failed to evict, and why) that belong to
	// no single workspace.
	decisions *obs.DecisionLog

	created     atomic.Int64
	evictions   atomic.Int64
	reloads     atomic.Int64
	rejected    atomic.Int64
	evictErrors atomic.Int64
	recovered   atomic.Int64

	// quality aggregates suggestion-quality events across the whole
	// host; tenantQuality keeps one tracker per tenant label. Both live
	// on the manager (not the workspaces) so the counters survive
	// session eviction and destruction.
	quality *obs.QualityTracker
	qmu     sync.Mutex
	tenantQ map[string]*obs.QualityTracker

	mu            sync.Mutex // lock order: mu → Session.mu; never inverted
	sessions      map[string]*Session
	seq           int64
	residentCount int
	residentBytes int64
}

// NewManager builds a manager. It panics if cfg.Factory is nil — a
// manager without a way to build state is a programming error, not a
// runtime condition.
func NewManager(cfg Config) *Manager {
	if cfg.Factory == nil {
		panic("session: Config.Factory is required")
	}
	m := &Manager{
		cfg:      cfg,
		store:    cfg.Store,
		clock:    cfg.Clock,
		slo:      cfg.SLO,
		ring:     obs.NewSpanRing(obs.DefaultSpanRingSize),
		metrics:  obs.NewRegistry(),
		quality:  obs.NewQualityTracker(),
		tenantQ:  map[string]*obs.QualityTracker{},
		sessions: map[string]*Session{},
	}
	if m.store == nil {
		m.store = NewMemStore()
	}
	if m.slo == nil {
		m.slo = obs.NewSLOTracker(obs.DefaultSLOConfig(), m.now)
	}
	m.decisions = obs.NewDecisionLog()
	m.flight = flight.New(flight.Config{
		Clock:    m.now,
		Metrics:  m.MetricsSnapshot,
		Registry: m.metrics,
		Dir:      cfg.IncidentDir,
	})
	m.decisions.SetSink(m.flight.ObserveDecision)
	if qs, ok := m.store.(interface{ SetQuarantineHook(func(id, reason string)) }); ok {
		qs.SetQuarantineHook(func(id, reason string) {
			m.flight.RecordEvent(flight.EventQuarantine, id, "", reason)
			m.flight.Trigger(flight.TriggerStoreQuarantine, fmt.Sprintf("%s: %s", id, reason), id, "")
		})
	}
	m.recover()
	return m
}

// recover re-registers every snapshot the store already holds as an
// evicted session — the crash-recovery path for durable stores. It is
// a no-op for stores that can't enumerate themselves (MemStore). The
// ID sequence advances past the recovered IDs so new creates never
// collide with on-disk sessions.
func (m *Manager) recover() {
	ls, ok := m.store.(ListingStore)
	if !ok {
		return
	}
	ids, err := ls.List()
	if err != nil {
		return
	}
	ms, hasMeta := m.store.(MetaStore)
	now := m.now()
	m.mu.Lock()
	for _, id := range ids {
		if _, exists := m.sessions[id]; exists {
			continue
		}
		s := &Session{id: id, mgr: m, created: now, lastUsed: now}
		if hasMeta {
			if meta, ok := ms.Meta(id); ok {
				s.tenant = meta.Tenant
				if !meta.Created.IsZero() {
					s.created = meta.Created
				}
			}
		}
		m.sessions[id] = s
		var n int64
		if _, err := fmt.Sscanf(id, "s%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
		m.recovered.Add(1)
	}
	m.mu.Unlock()
}

func (m *Manager) now() time.Time {
	if m.clock != nil {
		return m.clock.Now()
	}
	return time.Now()
}

// SLO exposes the host-level admission SLO tracker (aggregate
// suggest-refresh latency across every hosted session).
func (m *Manager) SLO() *obs.SLOTracker { return m.slo }

// Ring exposes the shared span ring every hosted workspace publishes
// into (spans carry a "session" attribute).
func (m *Manager) Ring() *obs.SpanRing { return m.ring }

// Store exposes the snapshot store (tests inspect it).
func (m *Manager) Store() Store { return m.store }

// Flight exposes the host flight recorder (always-on incident capture
// shared by every hosted session).
func (m *Manager) Flight() *flight.Recorder { return m.flight }

// Decisions exposes the host-level decision log (manager lifecycle
// decisions such as eviction-failure attribution).
func (m *Manager) Decisions() *obs.DecisionLog { return m.decisions }

// refreshStage is the stage whose per-session completions both the host
// SLO and the per-session refresh counters observe.
const refreshStage = "suggest.refresh"

// wire points a freshly built (or reloaded) state at this session and
// host: session ID on spans and decisions, the shared span ring, and
// the stage hook that folds per-session latencies into the host SLO and
// histograms.
func (m *Manager) wire(s *Session, st *State) {
	ws := st.Workspace
	ws.SessionID = s.id
	ws.Decisions.SetSession(s.id)
	ws.SetSpanRing(m.ring)
	// All hosted workspaces share the host flight recorder, so one
	// incident bundle carries the whole fleet's recent timeline with
	// per-session attribution.
	ws.SetFlight(m.flight)
	if m.cfg.EnableTracing {
		ws.EnableTracing()
	}
	ws.StageHook = func(stage string, d time.Duration) {
		if m.slo.Tracks(stage) {
			m.slo.Observe(d)
			if m.flight.Armed(flight.TriggerSLOFastBurn) {
				if st := m.slo.Status(); st.FastAlert {
					m.flight.Trigger(flight.TriggerSLOFastBurn, "host "+st.String(), s.id, s.tenant)
				}
			}
		}
		m.metrics.Histogram("host.latency." + stage).Observe(d)
		if stage == refreshStage {
			s.refreshes.Add(1)
		}
	}
	tq := m.tenantTracker(s.tenant)
	ws.QualityHook = func(ev obs.QualityEvent) {
		m.quality.Observe(ev)
		tq.Observe(ev)
	}
}

// tenantTracker returns (creating if needed) the per-tenant quality
// tracker for a tenant label.
func (m *Manager) tenantTracker(tenant string) *obs.QualityTracker {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	t, ok := m.tenantQ[tenant]
	if !ok {
		t = obs.NewQualityTracker()
		m.tenantQ[tenant] = t
	}
	return t
}

// Quality snapshots the host-wide suggestion-quality telemetry
// aggregated across every session this manager has hosted.
func (m *Manager) Quality() obs.QualityStats { return m.quality.Snapshot() }

// TenantQuality snapshots the per-tenant quality trackers. Tenants that
// have produced no feedback yet are absent.
func (m *Manager) TenantQuality() map[string]obs.QualityStats {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	out := make(map[string]obs.QualityStats, len(m.tenantQ))
	for tenant, t := range m.tenantQ {
		out[tenant] = t.Snapshot()
	}
	return out
}

// Create admits and builds a new session for a tenant. The returned
// session is already pinned (as if Acquired) — use its State, then
// Release it. Sheds with ErrOverloaded when the host SLO fast-burn
// alert fires (or a breaker majority is open) and with ErrCapacity when
// the session table is full.
func (m *Manager) Create(tenant string) (*Session, error) {
	if shedding, reason := m.Shedding(); shedding {
		m.rejected.Add(1)
		m.flight.RecordEvent(flight.EventShed, "", tenant, reason)
		return nil, fmt.Errorf("%w: %s", shedErr(reason), reason)
	}
	st, err := m.cfg.Factory()
	if err != nil {
		return nil, fmt.Errorf("session: factory: %w", err)
	}
	now := m.now()
	s := &Session{tenant: tenant, st: st, created: now, lastUsed: now}
	s.mgr = m
	s.useMu.Lock() // pin before publishing so the evictor can't race us
	m.mu.Lock()
	// Re-verify capacity at insert time: the Shedding() check above ran
	// before the factory, and concurrent Creates may have filled the
	// table since — without this recheck a create race exceeds the cap.
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		s.useMu.Unlock()
		m.rejected.Add(1)
		m.flight.RecordEvent(flight.EventShed, "", tenant, reasonCapacity)
		return nil, fmt.Errorf("%w: %s", ErrCapacity, reasonCapacity)
	}
	m.seq++
	s.id = fmt.Sprintf("s%06d", m.seq)
	s.bytes = st.SizeEstimate()
	m.sessions[s.id] = s
	m.residentCount++
	m.residentBytes += s.bytes
	m.mu.Unlock()
	m.wire(s, st)
	m.created.Add(1)
	m.evictToBudget()
	return s, nil
}

// Acquire pins a session for exclusive use, blocking while another
// holder has it. An evicted session is transparently reloaded from its
// snapshot: the factory rebuilds services and builtins, then the
// snapshot replays relations, types, edge weights, tabs, and cache
// counters on top. Callers must Release when done.
func (m *Manager) Acquire(id string) (*Session, error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, ErrNotFound
	}
	s.useMu.Lock()
	s.mu.Lock()
	destroyed, evicted := s.destroyed, s.st == nil
	s.mu.Unlock()
	if destroyed {
		s.useMu.Unlock()
		return nil, ErrNotFound
	}
	if evicted {
		if err := m.reload(s); err != nil {
			s.useMu.Unlock()
			return nil, err
		}
	}
	s.mu.Lock()
	s.lastUsed = m.now()
	s.mu.Unlock()
	return s, nil
}

// reload rebuilds an evicted session's state from its snapshot; the
// caller holds s.useMu.
func (m *Manager) reload(s *Session) error {
	data, ok, err := m.store.Load(s.id)
	if err != nil {
		return fmt.Errorf("session %s: load snapshot: %w", s.id, err)
	}
	if !ok {
		return fmt.Errorf("session %s: %w", s.id, ErrNoSnapshot)
	}
	st, err := m.cfg.Factory()
	if err != nil {
		return fmt.Errorf("session %s: factory: %w", s.id, err)
	}
	if err := st.Restore(data); err != nil {
		return fmt.Errorf("session %s: restore: %w", s.id, err)
	}
	m.wire(s, st)
	size := st.SizeEstimate()
	m.mu.Lock()
	s.mu.Lock()
	s.st = st
	s.bytes = size
	s.reloads++
	m.residentCount++
	m.residentBytes += size
	s.mu.Unlock()
	m.mu.Unlock()
	m.reloads.Add(1)
	m.evictToBudget()
	return nil
}

// release is Session.Release: refresh the footprint estimate and
// recency, unpin, and rebalance the budget.
func (m *Manager) release(s *Session) {
	var size int64
	s.mu.Lock()
	st := s.st
	s.mu.Unlock()
	if st != nil {
		size = st.SizeEstimate() // outside locks; the holder still pins the state
	}
	m.mu.Lock()
	s.mu.Lock()
	if s.st != nil {
		m.residentBytes += size - s.bytes
		s.bytes = size
	}
	s.lastUsed = m.now()
	s.mu.Unlock()
	m.mu.Unlock()
	s.useMu.Unlock()
	m.evictToBudget()
}

// Evict snapshots a session to the store and drops its resident state.
// Returns ErrBusy if the session is currently pinned (the evictor never
// blocks behind a holder), and nil if the session is already evicted.
func (m *Manager) Evict(id string) error {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return ErrNotFound
	}
	if !s.useMu.TryLock() {
		return ErrBusy
	}
	defer s.useMu.Unlock()
	s.mu.Lock()
	destroyed := s.destroyed
	s.mu.Unlock()
	if destroyed {
		return ErrNotFound
	}
	return m.evict(s)
}

// evict does the snapshot-and-drop; the caller holds s.useMu. A
// snapshot or store failure leaves the session resident (state loss is
// worse than budget overshoot).
func (m *Manager) evict(s *Session) error {
	s.mu.Lock()
	st := s.st
	s.mu.Unlock()
	if st == nil {
		return nil // already evicted
	}
	data, err := st.Snapshot()
	if err != nil {
		return fmt.Errorf("session %s: snapshot: %w", s.id, err)
	}
	if ms, ok := m.store.(MetaStore); ok {
		s.mu.Lock()
		meta := SnapshotMeta{Tenant: s.tenant, Created: s.created}
		s.mu.Unlock()
		ms.SetMeta(s.id, meta)
	}
	if err := m.store.Save(s.id, data); err != nil {
		return fmt.Errorf("session %s: save snapshot: %w", s.id, err)
	}
	m.mu.Lock()
	s.mu.Lock()
	s.st = nil
	s.evictions++
	m.residentCount--
	m.residentBytes -= s.bytes
	s.bytes = 0
	s.mu.Unlock()
	m.mu.Unlock()
	m.evictions.Add(1)
	s.mu.Lock()
	tenant := s.tenant
	s.mu.Unlock()
	m.flight.RecordEvent(flight.EventEvict, s.id, tenant, "evicted to store")
	return nil
}

// noteEvictFailure attributes a failed eviction: the victim's session
// and tenant IDs go to the host decision log (so operators can see
// *which* session failed to evict, not just that sessions.evict_errors
// moved) and to the flight recorder, whose evict-error trigger captures
// an incident bundle. Callers must not hold m.mu.
func (m *Manager) noteEvictFailure(s *Session, err error) {
	s.mu.Lock()
	tenant := s.tenant
	s.mu.Unlock()
	m.decisions.Record(obs.Decision{
		Stage:     "session.evict",
		Candidate: s.id,
		Session:   s.id,
		Action:    obs.ActionDropped,
		Reason:    fmt.Sprintf("tenant %q: %v", tenant, err),
		Rank:      -1,
	})
	m.flight.RecordEvent(flight.EventEvictError, s.id, tenant, err.Error())
	m.flight.Trigger(flight.TriggerEvictError, err.Error(), s.id, tenant)
}

// Destroy removes a session entirely: waits for any holder to release,
// drops its state, and deletes its snapshot. The ID is not reused.
func (m *Manager) Destroy(id string) error {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return ErrNotFound
	}
	s.useMu.Lock()
	m.mu.Lock()
	s.mu.Lock()
	if s.destroyed {
		s.mu.Unlock()
		m.mu.Unlock()
		s.useMu.Unlock()
		return ErrNotFound
	}
	if s.st != nil {
		m.residentCount--
		m.residentBytes -= s.bytes
	}
	s.st = nil
	s.bytes = 0
	s.destroyed = true
	delete(m.sessions, s.id)
	s.mu.Unlock()
	m.mu.Unlock()
	s.useMu.Unlock()
	return m.store.Delete(id)
}

// evictToBudget evicts unpinned sessions until the resident count and
// byte estimate are back under their caps. Pinned sessions are skipped
// (TryLock), so a fully pinned fleet can transiently exceed the budget
// — it converges as holders release. A victim whose snapshot or store
// write fails stays resident (state loss is worse than budget
// overshoot) but does not abort the sweep: its recency is touched so
// the LRU order doesn't immediately re-pick it, the failure is counted
// in sessions.evict_errors, and the sweep moves on to the next victim.
func (m *Manager) evictToBudget() {
	var failed map[*Session]bool
	for {
		victim := m.pickVictim(failed)
		if victim == nil {
			return
		}
		err := m.evict(victim)
		if err != nil {
			m.evictErrors.Add(1)
			victim.mu.Lock()
			victim.lastUsed = m.now()
			victim.mu.Unlock()
			m.noteEvictFailure(victim, err)
			if failed == nil {
				failed = map[*Session]bool{}
			}
			failed[victim] = true
		}
		victim.useMu.Unlock()
	}
}

// pickVictim returns the next resident session to evict, or nil when
// the budget is satisfied or every candidate is busy or excluded. The
// returned session's useMu is held.
//
// Victim order: with TenantResidentQuota set and at least one tenant
// over its quota, only over-quota tenants' sessions are candidates,
// most-over-quota tenant first, LRU within it — an over-quota storm
// pays for its own evictions instead of flushing quiet tenants.
// Otherwise (no quota, or everyone within quota) plain global LRU.
func (m *Manager) pickVictim(exclude map[*Session]bool) *Session {
	m.mu.Lock()
	over := (m.cfg.MaxResident > 0 && m.residentCount > m.cfg.MaxResident) ||
		(m.cfg.MemoryBudget > 0 && m.residentBytes > m.cfg.MemoryBudget)
	if !over {
		m.mu.Unlock()
		return nil
	}
	type cand struct {
		s        *Session
		tenant   string
		lastUsed time.Time
	}
	cands := make([]cand, 0, m.residentCount)
	residents := map[string]int{} // resident count per tenant, pinned included
	for _, s := range m.sessions {
		s.mu.Lock()
		if s.st != nil && !s.destroyed {
			residents[s.tenant]++
			if !exclude[s] {
				cands = append(cands, cand{s, s.tenant, s.lastUsed})
			}
		}
		s.mu.Unlock()
	}
	m.mu.Unlock()
	overage := func(tenant string) int {
		if m.cfg.TenantResidentQuota <= 0 {
			return 0
		}
		if d := residents[tenant] - m.cfg.TenantResidentQuota; d > 0 {
			return d
		}
		return 0
	}
	anyOver := false
	for t := range residents {
		if overage(t) > 0 {
			anyOver = true
			break
		}
	}
	if anyOver {
		// Hard fairness: while someone is over quota, within-quota
		// tenants' sessions are not victims at all — even if every
		// over-quota candidate is pinned right now, we leave the budget
		// transiently exceeded and converge on a later sweep.
		kept := cands[:0]
		for _, c := range cands {
			if overage(c.tenant) > 0 {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	sort.Slice(cands, func(i, j int) bool {
		if oi, oj := overage(cands[i].tenant), overage(cands[j].tenant); oi != oj {
			return oi > oj
		}
		if !cands[i].lastUsed.Equal(cands[j].lastUsed) {
			return cands[i].lastUsed.Before(cands[j].lastUsed)
		}
		return cands[i].s.id < cands[j].s.id
	})
	for _, c := range cands {
		if !c.s.useMu.TryLock() {
			continue
		}
		c.s.mu.Lock()
		ok := c.s.st != nil && !c.s.destroyed
		c.s.mu.Unlock()
		if ok {
			return c.s
		}
		c.s.useMu.Unlock()
	}
	return nil
}

// Checkpoint evicts every resident, unpinned session to the store —
// the graceful-shutdown path of a durable host, and the bulk step of
// the durability benchmark. It returns how many sessions were evicted;
// failures don't abort the sweep (they're counted in
// sessions.evict_errors) and the first one is returned. Pinned
// sessions are skipped.
func (m *Manager) Checkpoint() (int, error) {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool { return ss[i].id < ss[j].id })
	n := 0
	var firstErr error
	for _, s := range ss {
		if !s.useMu.TryLock() {
			continue
		}
		s.mu.Lock()
		resident := s.st != nil && !s.destroyed
		s.mu.Unlock()
		if !resident {
			s.useMu.Unlock()
			continue
		}
		err := m.evict(s)
		s.useMu.Unlock()
		if err != nil {
			m.evictErrors.Add(1)
			m.noteEvictFailure(s, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	return n, firstErr
}

// shedErr maps a shed reason to its sentinel error.
func shedErr(reason string) error {
	if reason == reasonCapacity {
		return ErrCapacity
	}
	return ErrOverloaded
}

const reasonCapacity = "session table full"

// softShedding evaluates the table-independent shed signals (SLO
// fast-burn, breaker majority); both have their own synchronization,
// so this runs outside m.mu.
func (m *Manager) softShedding() (bool, string) {
	if st := m.slo.Status(); st.FastAlert {
		return true, fmt.Sprintf("SLO fast-burn alert (burn %.1f× budget)", st.FastBurn)
	}
	if m.cfg.Breakers != nil {
		if bs := m.cfg.Breakers(); resilience.MajorityOpen(bs) {
			return true, fmt.Sprintf("%d of %d breakers open", resilience.CountOpen(bs), len(bs))
		}
	}
	return false, ""
}

// sheddingCapacityLocked is the table-full check against a table size
// read under m.mu — Stats uses it so the shed flag and the session
// count come from the same locked snapshot.
func (m *Manager) sheddingCapacityLocked(tableLen int) bool {
	return m.cfg.MaxSessions > 0 && tableLen >= m.cfg.MaxSessions
}

// Shedding reports whether admission control is currently rejecting new
// sessions, and why: the host SLO fast-burn alert, a majority of host
// breakers open, or the session table at MaxSessions.
func (m *Manager) Shedding() (bool, string) {
	if shedding, reason := m.softShedding(); shedding {
		return shedding, reason
	}
	m.mu.Lock()
	full := m.sheddingCapacityLocked(len(m.sessions))
	m.mu.Unlock()
	if full {
		return true, reasonCapacity
	}
	return false, ""
}

// List describes every session, sorted by ID.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	infos := make([]Info, len(ss))
	for i, s := range ss {
		infos[i] = s.info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Get describes one session.
func (m *Manager) Get(id string) (Info, bool) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return Info{}, false
	}
	return s.info(), true
}

// HostStats is the manager-level counter block for /metrics, scpbench,
// and the capacity experiment.
type HostStats struct {
	Sessions      int    `json:"sessions"`
	Resident      int    `json:"resident"`
	ResidentBytes int64  `json:"resident_bytes"`
	MemoryBudget  int64  `json:"memory_budget,omitempty"`
	Created       int64  `json:"created"`
	Evictions     int64  `json:"evictions"`
	EvictErrors   int64  `json:"evict_errors,omitempty"`
	Reloads       int64  `json:"reloads"`
	Recovered     int64  `json:"recovered,omitempty"`
	Rejected      int64  `json:"rejected"`
	Shedding      bool   `json:"shedding"`
	ShedReason    string `json:"shed_reason,omitempty"`
}

// Stats snapshots the host counters. The shedding flag and the session
// count are taken in one m.mu critical section, so a snapshot can
// never report capacity shedding alongside a below-cap table (or the
// reverse).
func (m *Manager) Stats() HostStats {
	shedding, reason := m.softShedding()
	m.mu.Lock()
	st := HostStats{
		Sessions:      len(m.sessions),
		Resident:      m.residentCount,
		ResidentBytes: m.residentBytes,
		MemoryBudget:  m.cfg.MemoryBudget,
	}
	if !shedding && m.sheddingCapacityLocked(st.Sessions) {
		shedding, reason = true, reasonCapacity
	}
	m.mu.Unlock()
	st.Created = m.created.Load()
	st.Evictions = m.evictions.Load()
	st.EvictErrors = m.evictErrors.Load()
	st.Reloads = m.reloads.Load()
	st.Recovered = m.recovered.Load()
	st.Rejected = m.rejected.Load()
	st.Shedding = shedding
	st.ShedReason = reason
	return st
}

// MetricsSnapshot folds the host registry (aggregate per-stage latency
// histograms across every session) and the lifecycle counters into one
// obs.Snapshot — the manager-level analogue of
// Workspace.MetricsSnapshot, consumed by the telemetry server.
func (m *Manager) MetricsSnapshot() obs.Snapshot {
	snap := m.metrics.Snapshot()
	st := m.Stats()
	snap.Counters["sessions.created"] = st.Created
	snap.Counters["sessions.evictions"] = st.Evictions
	snap.Counters["sessions.evict_errors"] = st.EvictErrors
	snap.Counters["sessions.reloads"] = st.Reloads
	snap.Counters["sessions.recovered"] = st.Recovered
	snap.Counters["sessions.admission_rejected"] = st.Rejected
	snap.Counters["spans.dropped"] = m.ring.Dropped()
	snap.Gauges["sessions.count"] = float64(st.Sessions)
	snap.Gauges["sessions.resident"] = float64(st.Resident)
	snap.Gauges["sessions.resident_bytes"] = float64(st.ResidentBytes)
	if st.MemoryBudget > 0 {
		snap.Gauges["sessions.memory_budget_bytes"] = float64(st.MemoryBudget)
	}
	if m.cfg.TenantResidentQuota > 0 {
		snap.Gauges["sessions.tenant_resident_quota"] = float64(m.cfg.TenantResidentQuota)
	}
	shed := 0.0
	if st.Shedding {
		shed = 1
	}
	snap.Gauges["sessions.shedding"] = shed
	if ss, ok := m.store.(StatsStore); ok {
		sst := ss.Stats()
		snap.Counters["sessions.store_load_errors"] = sst.LoadErrors
		snap.Counters["sessions.store_gc_removed"] = sst.GCRemoved
		snap.Gauges["sessions.store_snapshots"] = float64(sst.Snapshots)
		snap.Gauges["sessions.store_disk_bytes"] = float64(sst.DiskBytes)
		snap.Gauges["sessions.store_raw_bytes"] = float64(sst.RawBytes)
		snap.Gauges["sessions.store_compression_ratio"] = sst.CompressionRatio()
		snap.Gauges["sessions.store_quarantined"] = float64(sst.Quarantined)
		snap.Gauges["sessions.store_quarantine_files"] = float64(sst.QuarantineFiles)
	}
	m.quality.Fold(snap)
	return snap
}
