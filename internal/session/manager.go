package session

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"copycat/internal/obs"
	"copycat/internal/resilience"
)

// Config sizes and wires a Manager. Zero values mean "unlimited" for
// the caps and "defaults" for the substrate handles; only Factory is
// required.
type Config struct {
	// Factory builds the state for new sessions and for reloads.
	Factory Factory
	// MaxSessions caps the total session count (resident + evicted).
	// Creates beyond it are shed with ErrCapacity. 0 = unlimited.
	MaxSessions int
	// MaxResident caps how many sessions may be resident at once; the
	// LRU overflow is evicted to the Store. 0 = unlimited.
	MaxResident int
	// MemoryBudget bounds the aggregate resident size estimate in
	// bytes; crossing it evicts LRU sessions until back under. 0 =
	// unlimited.
	MemoryBudget int64
	// Store receives eviction snapshots; nil installs a MemStore.
	Store Store
	// Clock drives recency stamps and the host SLO windows; nil means
	// the wall clock. Inject a resilience.VirtualClock for deterministic
	// admission tests.
	Clock resilience.Clock
	// SLO overrides the host admission SLO tracker; nil builds one with
	// obs.DefaultSLOConfig on the manager clock. Its fast-burn alert is
	// the load-shedding signal.
	SLO *obs.SLOTracker
	// Breakers optionally exposes host-level circuit breaker state to
	// admission control: a majority-open fleet sheds new sessions.
	Breakers func() []resilience.BreakerStatus
	// EnableTracing turns on span recording in every hosted workspace;
	// all sessions publish into the manager's shared span ring, tagged
	// with their session ID.
	EnableTracing bool
}

// Manager hosts many concurrent sessions: it creates them from the
// factory, pins them for exclusive use on Acquire, keeps the aggregate
// resident footprint within budget by LRU-evicting unpinned sessions to
// the Store, reloads evicted sessions transparently on their next
// Acquire, and sheds new sessions when the host is overloaded.
type Manager struct {
	cfg     Config
	store   Store
	clock   resilience.Clock
	slo     *obs.SLOTracker
	ring    *obs.SpanRing
	metrics *obs.Registry

	created   atomic.Int64
	evictions atomic.Int64
	reloads   atomic.Int64
	rejected  atomic.Int64

	mu            sync.Mutex // lock order: mu → Session.mu; never inverted
	sessions      map[string]*Session
	seq           int64
	residentCount int
	residentBytes int64
}

// NewManager builds a manager. It panics if cfg.Factory is nil — a
// manager without a way to build state is a programming error, not a
// runtime condition.
func NewManager(cfg Config) *Manager {
	if cfg.Factory == nil {
		panic("session: Config.Factory is required")
	}
	m := &Manager{
		cfg:      cfg,
		store:    cfg.Store,
		clock:    cfg.Clock,
		slo:      cfg.SLO,
		ring:     obs.NewSpanRing(obs.DefaultSpanRingSize),
		metrics:  obs.NewRegistry(),
		sessions: map[string]*Session{},
	}
	if m.store == nil {
		m.store = NewMemStore()
	}
	if m.slo == nil {
		m.slo = obs.NewSLOTracker(obs.DefaultSLOConfig(), m.now)
	}
	return m
}

func (m *Manager) now() time.Time {
	if m.clock != nil {
		return m.clock.Now()
	}
	return time.Now()
}

// SLO exposes the host-level admission SLO tracker (aggregate
// suggest-refresh latency across every hosted session).
func (m *Manager) SLO() *obs.SLOTracker { return m.slo }

// Ring exposes the shared span ring every hosted workspace publishes
// into (spans carry a "session" attribute).
func (m *Manager) Ring() *obs.SpanRing { return m.ring }

// Store exposes the snapshot store (tests inspect it).
func (m *Manager) Store() Store { return m.store }

// refreshStage is the stage whose per-session completions both the host
// SLO and the per-session refresh counters observe.
const refreshStage = "suggest.refresh"

// wire points a freshly built (or reloaded) state at this session and
// host: session ID on spans and decisions, the shared span ring, and
// the stage hook that folds per-session latencies into the host SLO and
// histograms.
func (m *Manager) wire(s *Session, st *State) {
	ws := st.Workspace
	ws.SessionID = s.id
	ws.Decisions.SetSession(s.id)
	ws.SetSpanRing(m.ring)
	if m.cfg.EnableTracing {
		ws.EnableTracing()
	}
	ws.StageHook = func(stage string, d time.Duration) {
		if m.slo.Tracks(stage) {
			m.slo.Observe(d)
		}
		m.metrics.Histogram("host.latency." + stage).Observe(d)
		if stage == refreshStage {
			s.refreshes.Add(1)
		}
	}
}

// Create admits and builds a new session for a tenant. The returned
// session is already pinned (as if Acquired) — use its State, then
// Release it. Sheds with ErrOverloaded when the host SLO fast-burn
// alert fires (or a breaker majority is open) and with ErrCapacity when
// the session table is full.
func (m *Manager) Create(tenant string) (*Session, error) {
	if shedding, reason := m.Shedding(); shedding {
		m.rejected.Add(1)
		return nil, fmt.Errorf("%w: %s", shedErr(reason), reason)
	}
	st, err := m.cfg.Factory()
	if err != nil {
		return nil, fmt.Errorf("session: factory: %w", err)
	}
	now := m.now()
	s := &Session{tenant: tenant, st: st, created: now, lastUsed: now}
	s.mgr = m
	s.useMu.Lock() // pin before publishing so the evictor can't race us
	m.mu.Lock()
	m.seq++
	s.id = fmt.Sprintf("s%06d", m.seq)
	s.bytes = st.SizeEstimate()
	m.sessions[s.id] = s
	m.residentCount++
	m.residentBytes += s.bytes
	m.mu.Unlock()
	m.wire(s, st)
	m.created.Add(1)
	m.evictToBudget()
	return s, nil
}

// Acquire pins a session for exclusive use, blocking while another
// holder has it. An evicted session is transparently reloaded from its
// snapshot: the factory rebuilds services and builtins, then the
// snapshot replays relations, types, edge weights, tabs, and cache
// counters on top. Callers must Release when done.
func (m *Manager) Acquire(id string) (*Session, error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, ErrNotFound
	}
	s.useMu.Lock()
	s.mu.Lock()
	destroyed, evicted := s.destroyed, s.st == nil
	s.mu.Unlock()
	if destroyed {
		s.useMu.Unlock()
		return nil, ErrNotFound
	}
	if evicted {
		if err := m.reload(s); err != nil {
			s.useMu.Unlock()
			return nil, err
		}
	}
	s.mu.Lock()
	s.lastUsed = m.now()
	s.mu.Unlock()
	return s, nil
}

// reload rebuilds an evicted session's state from its snapshot; the
// caller holds s.useMu.
func (m *Manager) reload(s *Session) error {
	data, ok, err := m.store.Load(s.id)
	if err != nil {
		return fmt.Errorf("session %s: load snapshot: %w", s.id, err)
	}
	if !ok {
		return fmt.Errorf("session %s: %w", s.id, ErrNoSnapshot)
	}
	st, err := m.cfg.Factory()
	if err != nil {
		return fmt.Errorf("session %s: factory: %w", s.id, err)
	}
	if err := st.Restore(data); err != nil {
		return fmt.Errorf("session %s: restore: %w", s.id, err)
	}
	m.wire(s, st)
	size := st.SizeEstimate()
	m.mu.Lock()
	s.mu.Lock()
	s.st = st
	s.bytes = size
	s.reloads++
	m.residentCount++
	m.residentBytes += size
	s.mu.Unlock()
	m.mu.Unlock()
	m.reloads.Add(1)
	m.evictToBudget()
	return nil
}

// release is Session.Release: refresh the footprint estimate and
// recency, unpin, and rebalance the budget.
func (m *Manager) release(s *Session) {
	var size int64
	s.mu.Lock()
	st := s.st
	s.mu.Unlock()
	if st != nil {
		size = st.SizeEstimate() // outside locks; the holder still pins the state
	}
	m.mu.Lock()
	s.mu.Lock()
	if s.st != nil {
		m.residentBytes += size - s.bytes
		s.bytes = size
	}
	s.lastUsed = m.now()
	s.mu.Unlock()
	m.mu.Unlock()
	s.useMu.Unlock()
	m.evictToBudget()
}

// Evict snapshots a session to the store and drops its resident state.
// Returns ErrBusy if the session is currently pinned (the evictor never
// blocks behind a holder), and nil if the session is already evicted.
func (m *Manager) Evict(id string) error {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return ErrNotFound
	}
	if !s.useMu.TryLock() {
		return ErrBusy
	}
	defer s.useMu.Unlock()
	s.mu.Lock()
	destroyed := s.destroyed
	s.mu.Unlock()
	if destroyed {
		return ErrNotFound
	}
	return m.evict(s)
}

// evict does the snapshot-and-drop; the caller holds s.useMu. A
// snapshot or store failure leaves the session resident (state loss is
// worse than budget overshoot).
func (m *Manager) evict(s *Session) error {
	s.mu.Lock()
	st := s.st
	s.mu.Unlock()
	if st == nil {
		return nil // already evicted
	}
	data, err := st.Snapshot()
	if err != nil {
		return fmt.Errorf("session %s: snapshot: %w", s.id, err)
	}
	if err := m.store.Save(s.id, data); err != nil {
		return fmt.Errorf("session %s: save snapshot: %w", s.id, err)
	}
	m.mu.Lock()
	s.mu.Lock()
	s.st = nil
	s.evictions++
	m.residentCount--
	m.residentBytes -= s.bytes
	s.bytes = 0
	s.mu.Unlock()
	m.mu.Unlock()
	m.evictions.Add(1)
	return nil
}

// Destroy removes a session entirely: waits for any holder to release,
// drops its state, and deletes its snapshot. The ID is not reused.
func (m *Manager) Destroy(id string) error {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return ErrNotFound
	}
	s.useMu.Lock()
	m.mu.Lock()
	s.mu.Lock()
	if s.destroyed {
		s.mu.Unlock()
		m.mu.Unlock()
		s.useMu.Unlock()
		return ErrNotFound
	}
	if s.st != nil {
		m.residentCount--
		m.residentBytes -= s.bytes
	}
	s.st = nil
	s.bytes = 0
	s.destroyed = true
	delete(m.sessions, s.id)
	s.mu.Unlock()
	m.mu.Unlock()
	s.useMu.Unlock()
	return m.store.Delete(id)
}

// evictToBudget evicts LRU unpinned sessions until the resident count
// and byte estimate are back under their caps. Pinned sessions are
// skipped (TryLock), so a fully pinned fleet can transiently exceed the
// budget — it converges as holders release.
func (m *Manager) evictToBudget() {
	for {
		victim := m.pickVictim()
		if victim == nil {
			return
		}
		err := m.evict(victim)
		victim.useMu.Unlock()
		if err != nil {
			return
		}
	}
}

// pickVictim returns the least-recently-used resident session it could
// pin, or nil when the budget is satisfied or every candidate is busy.
// The returned session's useMu is held.
func (m *Manager) pickVictim() *Session {
	m.mu.Lock()
	over := (m.cfg.MaxResident > 0 && m.residentCount > m.cfg.MaxResident) ||
		(m.cfg.MemoryBudget > 0 && m.residentBytes > m.cfg.MemoryBudget)
	if !over {
		m.mu.Unlock()
		return nil
	}
	type cand struct {
		s        *Session
		lastUsed time.Time
	}
	cands := make([]cand, 0, m.residentCount)
	for _, s := range m.sessions {
		s.mu.Lock()
		if s.st != nil && !s.destroyed {
			cands = append(cands, cand{s, s.lastUsed})
		}
		s.mu.Unlock()
	}
	m.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUsed.Before(cands[j].lastUsed) })
	for _, c := range cands {
		if !c.s.useMu.TryLock() {
			continue
		}
		c.s.mu.Lock()
		ok := c.s.st != nil && !c.s.destroyed
		c.s.mu.Unlock()
		if ok {
			return c.s
		}
		c.s.useMu.Unlock()
	}
	return nil
}

// shedErr maps a shed reason to its sentinel error.
func shedErr(reason string) error {
	if reason == reasonCapacity {
		return ErrCapacity
	}
	return ErrOverloaded
}

const reasonCapacity = "session table full"

// Shedding reports whether admission control is currently rejecting new
// sessions, and why: the host SLO fast-burn alert, a majority of host
// breakers open, or the session table at MaxSessions.
func (m *Manager) Shedding() (bool, string) {
	if st := m.slo.Status(); st.FastAlert {
		return true, fmt.Sprintf("SLO fast-burn alert (burn %.1f× budget)", st.FastBurn)
	}
	if m.cfg.Breakers != nil {
		if bs := m.cfg.Breakers(); resilience.MajorityOpen(bs) {
			return true, fmt.Sprintf("%d of %d breakers open", resilience.CountOpen(bs), len(bs))
		}
	}
	if m.cfg.MaxSessions > 0 {
		m.mu.Lock()
		full := len(m.sessions) >= m.cfg.MaxSessions
		m.mu.Unlock()
		if full {
			return true, reasonCapacity
		}
	}
	return false, ""
}

// List describes every session, sorted by ID.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	infos := make([]Info, len(ss))
	for i, s := range ss {
		infos[i] = s.info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Get describes one session.
func (m *Manager) Get(id string) (Info, bool) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return Info{}, false
	}
	return s.info(), true
}

// HostStats is the manager-level counter block for /metrics, scpbench,
// and the capacity experiment.
type HostStats struct {
	Sessions      int    `json:"sessions"`
	Resident      int    `json:"resident"`
	ResidentBytes int64  `json:"resident_bytes"`
	MemoryBudget  int64  `json:"memory_budget,omitempty"`
	Created       int64  `json:"created"`
	Evictions     int64  `json:"evictions"`
	Reloads       int64  `json:"reloads"`
	Rejected      int64  `json:"rejected"`
	Shedding      bool   `json:"shedding"`
	ShedReason    string `json:"shed_reason,omitempty"`
}

// Stats snapshots the host counters.
func (m *Manager) Stats() HostStats {
	shedding, reason := m.Shedding()
	m.mu.Lock()
	st := HostStats{
		Sessions:      len(m.sessions),
		Resident:      m.residentCount,
		ResidentBytes: m.residentBytes,
		MemoryBudget:  m.cfg.MemoryBudget,
	}
	m.mu.Unlock()
	st.Created = m.created.Load()
	st.Evictions = m.evictions.Load()
	st.Reloads = m.reloads.Load()
	st.Rejected = m.rejected.Load()
	st.Shedding = shedding
	st.ShedReason = reason
	return st
}

// MetricsSnapshot folds the host registry (aggregate per-stage latency
// histograms across every session) and the lifecycle counters into one
// obs.Snapshot — the manager-level analogue of
// Workspace.MetricsSnapshot, consumed by the telemetry server.
func (m *Manager) MetricsSnapshot() obs.Snapshot {
	snap := m.metrics.Snapshot()
	st := m.Stats()
	snap.Counters["sessions.created"] = st.Created
	snap.Counters["sessions.evictions"] = st.Evictions
	snap.Counters["sessions.reloads"] = st.Reloads
	snap.Counters["sessions.admission_rejected"] = st.Rejected
	snap.Gauges["sessions.count"] = float64(st.Sessions)
	snap.Gauges["sessions.resident"] = float64(st.Resident)
	snap.Gauges["sessions.resident_bytes"] = float64(st.ResidentBytes)
	if st.MemoryBudget > 0 {
		snap.Gauges["sessions.memory_budget_bytes"] = float64(st.MemoryBudget)
	}
	shed := 0.0
	if st.Shedding {
		shed = 1
	}
	snap.Gauges["sessions.shedding"] = shed
	return snap
}
