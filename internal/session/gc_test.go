package session_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"copycat/internal/session"
)

// TestFileStoreDeleteRemovesSnapshot: Delete takes the .snap off disk,
// drops the manifest entry, and counts the removal in the GC gauge —
// destroyed sessions must not leak storage.
func TestFileStoreDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	fs, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetMeta("s000001", session.SnapshotMeta{Tenant: "alice"})
	if err := fs.Save("s000001", repetitiveSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("s000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapPath(fs, "s000001")); !os.IsNotExist(err) {
		t.Fatalf("snapshot file survived Delete: %v", err)
	}
	if _, ok := fs.Meta("s000001"); ok {
		t.Fatal("manifest entry survived Delete")
	}
	if st := fs.Stats(); st.GCRemoved != 1 {
		t.Fatalf("GCRemoved = %d, want 1", st.GCRemoved)
	}
	// Deleting an id with no snapshot is a no-op, not an error.
	if err := fs.Delete("s000099"); err != nil {
		t.Fatalf("Delete missing: %v", err)
	}
}

// TestFileStoreReopenCollectsTombstone simulates a crash between the
// tombstone flush and the file removal: the next open must finish the
// delete instead of reviving the destroyed session.
func TestFileStoreReopenCollectsTombstone(t *testing.T) {
	dir := t.TempDir()
	fs, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("s000001", repetitiveSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("s000002", repetitiveSnapshot()); err != nil {
		t.Fatal(err)
	}
	// The crash left the tombstone on disk but the snapshot still there.
	fs.SetMeta("s000001", session.SnapshotMeta{Tenant: "alice", Destroyed: true})

	fs2, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapPath(fs2, "s000001")); !os.IsNotExist(err) {
		t.Fatalf("tombstoned snapshot survived reopen: %v", err)
	}
	if _, ok := fs2.Meta("s000001"); ok {
		t.Fatal("tombstone survived reopen")
	}
	ids, err := fs2.List()
	if err != nil || len(ids) != 1 || ids[0] != "s000002" {
		t.Fatalf("List after tombstone GC = %v, %v", ids, err)
	}
	if st := fs2.Stats(); st.GCRemoved != 1 {
		t.Fatalf("GCRemoved = %d, want 1", st.GCRemoved)
	}
	// The untouched session still loads.
	if _, ok, err := fs2.Load("s000002"); !ok || err != nil {
		t.Fatalf("Load survivor = ok=%v err=%v", ok, err)
	}
}

// TestFileStoreReopenSweepsOrphanTemps: temp files cut short by a
// crash before their rename are debris; reopen removes them without
// touching real snapshots.
func TestFileStoreReopenSweepsOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	fs, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("s000001", repetitiveSnapshot()); err != nil {
		t.Fatal(err)
	}
	for _, orphan := range []string{"s000002.tmp-1234567", "manifest.json.tmp-7654321"} {
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	fs2, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("orphan temp survived reopen: %s", e.Name())
		}
	}
	if st := fs2.Stats(); st.GCRemoved != 2 {
		t.Fatalf("GCRemoved = %d, want 2", st.GCRemoved)
	}
	if _, ok, err := fs2.Load("s000001"); !ok || err != nil {
		t.Fatalf("real snapshot lost to the sweep: ok=%v err=%v", ok, err)
	}
}

// TestQuarantineRetentionCap: the quarantine directory is forensic
// evidence, not storage the host owes anyone — beyond the cap the
// oldest files go, and the gauge tracks what is actually on disk.
func TestQuarantineRetentionCap(t *testing.T) {
	dir := t.TempDir()
	fs, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.QuarantineKeep = 2
	for _, id := range []string{"s000001", "s000002", "s000003", "s000004"} {
		if err := fs.Save(id, repetitiveSnapshot()); err != nil {
			t.Fatal(err)
		}
		// Corrupt it so the next Load quarantines.
		if err := os.WriteFile(snapPath(fs, id), []byte("\x00garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := fs.Load(id); ok || err == nil {
			t.Fatalf("Load(%s) corrupt = ok=%v err=%v", id, ok, err)
		}
	}
	qdir := filepath.Join(dir, "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("quarantine holds %d files, want 2 (cap)", len(entries))
	}
	st := fs.Stats()
	if st.QuarantineFiles != 2 {
		t.Fatalf("QuarantineFiles gauge = %d, want 2", st.QuarantineFiles)
	}
	if st.Quarantined != 4 {
		t.Fatalf("Quarantined = %d, want 4 (lifetime counter keeps counting)", st.Quarantined)
	}
	// 4 quarantined, cap 2 → 2 pruned.
	if st.GCRemoved != 2 {
		t.Fatalf("GCRemoved = %d, want 2", st.GCRemoved)
	}
}

// TestQuarantinePrunedOnReopen: a store reopened over a directory whose
// quarantine outgrew the default cap trims it oldest-first on open.
func TestQuarantinePrunedOnReopen(t *testing.T) {
	dir := t.TempDir()
	qdir := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	total := session.DefaultQuarantineKeep + 8
	for i := 0; i < total; i++ {
		name := filepath.Join(qdir, quarName(i))
		if err := os.WriteFile(name, []byte("evidence"), 0o644); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so oldest-first is deterministic.
		mod := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(name, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != session.DefaultQuarantineKeep {
		t.Fatalf("quarantine holds %d files after reopen, want %d", len(entries), session.DefaultQuarantineKeep)
	}
	// The 8 oldest are the ones that went.
	for _, e := range entries {
		for i := 0; i < 8; i++ {
			if e.Name() == quarName(i) {
				t.Fatalf("oldest file %s survived the prune", e.Name())
			}
		}
	}
	st := fs.Stats()
	if st.QuarantineFiles != int64(session.DefaultQuarantineKeep) {
		t.Fatalf("QuarantineFiles gauge = %d, want %d", st.QuarantineFiles, session.DefaultQuarantineKeep)
	}
	if st.GCRemoved != 8 {
		t.Fatalf("GCRemoved = %d, want 8", st.GCRemoved)
	}
}

func quarName(i int) string {
	return "q" + string(rune('a'+i/10)) + string(rune('0'+i%10)) + ".snap"
}

// TestReloadPreservesQualityCounters: a session's suggestion-quality
// counters ride the persist payload, so an evict/reload cycle keeps the
// acceptance history continuous (like the plan-cache counters do).
func TestReloadPreservesQualityCounters(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w)})
	s, err := m.Create("alice")
	if err != nil {
		t.Fatal(err)
	}
	mustImport(t, w, s.State())
	ws := s.State().Workspace
	ws.RefreshColumnSuggestions()
	if err := ws.RejectColumn(0); err != nil {
		t.Fatal(err)
	}
	if err := ws.AcceptColumn(0); err != nil {
		t.Fatal(err)
	}
	before := ws.QualityStats()
	if before.TotalAccepts == 0 || before.TotalRejects == 0 {
		t.Fatalf("no quality activity to carry: %+v", before)
	}
	s.Release()
	if err := m.Evict(s.ID()); err != nil {
		t.Fatal(err)
	}
	s, err = m.Acquire(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	after := s.State().Workspace.QualityStats()
	if before.TotalAccepts != after.TotalAccepts || before.TotalRejects != after.TotalRejects ||
		before.MeanAcceptedRank != after.MeanAcceptedRank || before.MeanRounds != after.MeanRounds ||
		before.AcceptsUndone != after.AcceptsUndone {
		t.Fatalf("quality counters lost across reload:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestManagerDestroyRemovesSnapshot: Destroy on an evicted session must
// take its snapshot off disk (via the store's crash-safe Delete) and
// surface the removal in the host metrics.
func TestManagerDestroyRemovesSnapshot(t *testing.T) {
	w := testWorld()
	dir := t.TempDir()
	m := fileBackedManager(t, dir, session.Config{Factory: demoFactory(w)})
	s, err := m.Create("alice")
	if err != nil {
		t.Fatal(err)
	}
	mustImport(t, w, s.State())
	id := s.ID()
	s.Release()
	if err := m.Evict(id); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, id+".snap")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("evicted session has no snapshot: %v", err)
	}
	if err := m.Destroy(id); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived Destroy: %v", err)
	}
	if got := m.MetricsSnapshot().Counters["sessions.store_gc_removed"]; got != 1 {
		t.Fatalf("sessions.store_gc_removed = %d, want 1", got)
	}
	// A manager reopened over the directory must not resurrect it.
	m2 := fileBackedManager(t, dir, session.Config{Factory: demoFactory(w)})
	if _, ok := m2.Get(id); ok {
		t.Fatalf("destroyed session %s resurrected on recovery", id)
	}
}
