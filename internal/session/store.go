package session

import "sync"

// Store persists evicted sessions' snapshots. Implementations must be
// safe for concurrent use; the manager saves and loads from many
// acquire/evict paths at once.
type Store interface {
	// Save persists a snapshot under the session's ID, replacing any
	// previous one.
	Save(id string, data []byte) error
	// Load returns the snapshot for id and whether one exists.
	Load(id string) ([]byte, bool, error)
	// Delete discards the snapshot for id (no-op when absent).
	Delete(id string) error
}

// MemStore is the default in-process Store: a mutex-guarded map. It
// models the durable tier without touching disk, which keeps tests and
// benchmarks hermetic; a deployment would substitute a file- or
// object-store-backed implementation.
type MemStore struct {
	mu    sync.Mutex
	snaps map[string][]byte
	bytes int64
}

// NewMemStore creates an empty in-memory snapshot store.
func NewMemStore() *MemStore {
	return &MemStore{snaps: map[string][]byte{}}
}

// Save implements Store.
func (s *MemStore) Save(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytes += int64(len(data)) - int64(len(s.snaps[id]))
	s.snaps[id] = data
	return nil
}

// Load implements Store.
func (s *MemStore) Load(id string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.snaps[id]
	return data, ok, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytes -= int64(len(s.snaps[id]))
	delete(s.snaps, id)
	return nil
}

// Len reports the number of stored snapshots.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

// Bytes reports the aggregate size of stored snapshots.
func (s *MemStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
