package session

import (
	"sync"
	"time"
)

// Store persists evicted sessions' snapshots. Implementations must be
// safe for concurrent use; the manager saves and loads from many
// acquire/evict paths at once.
type Store interface {
	// Save persists a snapshot under the session's ID, replacing any
	// previous one.
	Save(id string, data []byte) error
	// Load returns the snapshot for id and whether one exists.
	Load(id string) ([]byte, bool, error)
	// Delete discards the snapshot for id (no-op when absent).
	Delete(id string) error
}

// SnapshotMeta is the sidecar record a durable store keeps per
// snapshot so a manager rebuilt over the store can re-register the
// session under its original identity, not just its ID.
type SnapshotMeta struct {
	Tenant  string    `json:"tenant,omitempty"`
	Created time.Time `json:"created,omitempty"`
	// Destroyed is the GC tombstone: set (and flushed) before the
	// snapshot file is removed, so a crash between the two steps leaves
	// a marker the next open can finish collecting instead of reviving
	// a destroyed session.
	Destroyed bool `json:"destroyed,omitempty"`
}

// Optional store capabilities. The manager type-asserts for these and
// degrades gracefully when a Store doesn't provide them: without
// ListingStore there is no crash recovery, without MetaStore recovered
// sessions lose their tenant label, without StatsStore the store
// gauges are absent from /metrics.
type (
	// ListingStore enumerates the snapshot IDs currently persisted —
	// the crash-recovery seam: NewManager re-registers every listed ID
	// as an evicted session.
	ListingStore interface {
		List() ([]string, error)
	}
	// MetaStore persists per-snapshot metadata alongside the payload.
	MetaStore interface {
		SetMeta(id string, meta SnapshotMeta)
		Meta(id string) (SnapshotMeta, bool)
	}
	// StatsStore reports aggregate store health for telemetry.
	StatsStore interface {
		Stats() StoreStats
	}
)

// StoreStats is a point-in-time report of a snapshot store's contents
// and health, exported as gauges on /metrics.
type StoreStats struct {
	Snapshots   int   `json:"snapshots"`
	DiskBytes   int64 `json:"disk_bytes"` // stored (compressed) bytes incl. framing
	RawBytes    int64 `json:"raw_bytes"`  // uncompressed snapshot bytes
	LoadErrors  int64 `json:"load_errors"`
	Quarantined int64 `json:"quarantined"`
	// GCRemoved counts files the store garbage-collected: destroyed
	// sessions' snapshots, tombstoned snapshots swept on reopen,
	// orphaned temp files, and quarantined files pruned past the
	// retention cap.
	GCRemoved int64 `json:"gc_removed"`
	// QuarantineFiles is the current number of files held under
	// quarantine/ (bounded by the retention cap).
	QuarantineFiles int64 `json:"quarantine_files"`
}

// CompressionRatio is raw/stored bytes (1.0 means uncompressed, 0 when
// the store is empty).
func (s StoreStats) CompressionRatio() float64 {
	if s.DiskBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.DiskBytes)
}

// MemStore is the default in-process Store: a mutex-guarded map. It
// models the durable tier without touching disk, which keeps tests and
// benchmarks hermetic; deployments substitute FileStore (or an
// object-store-backed implementation).
type MemStore struct {
	mu    sync.Mutex
	snaps map[string][]byte
	bytes int64
}

// NewMemStore creates an empty in-memory snapshot store.
func NewMemStore() *MemStore {
	return &MemStore{snaps: map[string][]byte{}}
}

// Save implements Store.
func (s *MemStore) Save(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytes += int64(len(data)) - int64(len(s.snaps[id]))
	s.snaps[id] = data
	return nil
}

// Load implements Store.
func (s *MemStore) Load(id string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.snaps[id]
	return data, ok, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytes -= int64(len(s.snaps[id]))
	delete(s.snaps, id)
	return nil
}

// Len reports the number of stored snapshots.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

// Bytes reports the aggregate size of stored snapshots.
func (s *MemStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats implements StatsStore. MemStore keeps snapshots uncompressed,
// so raw and stored bytes coincide.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Snapshots: len(s.snaps), DiskBytes: s.bytes, RawBytes: s.bytes}
}
