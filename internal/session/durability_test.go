package session_test

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"copycat/internal/obs/flight"
	"copycat/internal/session"
)

// fileBackedManager builds a manager over a FileStore in dir.
func fileBackedManager(t *testing.T, dir string, cfg session.Config) *session.Manager {
	t.Helper()
	fs, err := session.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = fs
	return session.NewManager(cfg)
}

// TestCrashRecovery is the durability claim end to end: a manager
// rebuilt over an existing store directory re-registers every on-disk
// session — original ID, original tenant — and Acquire serves each one
// suggestion-identical to before the "crash". New creates never collide
// with recovered IDs.
func TestCrashRecovery(t *testing.T) {
	w := testWorld()
	dir := t.TempDir()
	m1 := fileBackedManager(t, dir, session.Config{Factory: demoFactory(w)})

	tenants := []string{"alice", "bob", "carol"}
	digests := map[string]string{}
	tenantOf := map[string]string{}
	for _, tenant := range tenants {
		s, err := m1.Create(tenant)
		if err != nil {
			t.Fatal(err)
		}
		mustImport(t, w, s.State())
		digests[s.ID()] = completionsDigest(s.State().Workspace)
		tenantOf[s.ID()] = tenant
		s.Release()
	}
	// Graceful shutdown: checkpoint every resident session to disk.
	n, err := m1.Checkpoint()
	if err != nil || n != len(tenants) {
		t.Fatalf("Checkpoint = %d, %v, want %d, nil", n, err, len(tenants))
	}

	// "Crash": the old manager and store are dropped; a new process
	// opens the same directory.
	m2 := fileBackedManager(t, dir, session.Config{Factory: demoFactory(w)})
	st := m2.Stats()
	if st.Sessions != len(tenants) || st.Recovered != int64(len(tenants)) {
		t.Fatalf("after recovery: %+v, want %d sessions recovered", st, len(tenants))
	}
	for id, want := range digests {
		info, ok := m2.Get(id)
		if !ok {
			t.Fatalf("session %s not recovered", id)
		}
		if info.Resident {
			t.Fatalf("recovered session %s should start evicted", id)
		}
		if info.Tenant != tenantOf[id] {
			t.Fatalf("session %s recovered under tenant %q, want %q", id, info.Tenant, tenantOf[id])
		}
		s, err := m2.Acquire(id)
		if err != nil {
			t.Fatalf("Acquire recovered %s: %v", id, err)
		}
		if got := completionsDigest(s.State().Workspace); got != want {
			t.Fatalf("session %s suggestions diverged across restart\nwant:\n%s\ngot:\n%s", id, want, got)
		}
		s.Release()
	}
	if snap := m2.MetricsSnapshot(); snap.Counters["sessions.recovered"] != int64(len(tenants)) {
		t.Fatalf("sessions.recovered = %d", snap.Counters["sessions.recovered"])
	}
	// The ID sequence advanced past the recovered IDs.
	s, err := m2.Create("dave")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if _, dup := digests[s.ID()]; dup {
		t.Fatalf("new session reused recovered ID %s", s.ID())
	}
}

// TestCorruptSnapshotQuarantinedOnAcquire: a damaged snapshot must cost
// one failed Acquire (ErrCorruptSnapshot), not poison the session
// forever or panic the host. The follow-up Acquire reports the snapshot
// gone (quarantined), which is recoverable — destroy and recreate.
func TestCorruptSnapshotQuarantinedOnAcquire(t *testing.T) {
	w := testWorld()
	dir := t.TempDir()
	m := fileBackedManager(t, dir, session.Config{Factory: demoFactory(w)})
	s, err := m.Create("t")
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()
	mustImport(t, w, s.State())
	s.Release()
	if err := m.Evict(id); err != nil {
		t.Fatal(err)
	}
	// Scribble over the snapshot.
	fs := m.Store().(*session.FileStore)
	if err := os.WriteFile(snapPath(fs, id), []byte("\x00\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(id); !errors.Is(err, session.ErrCorruptSnapshot) {
		t.Fatalf("Acquire corrupt = %v, want ErrCorruptSnapshot", err)
	}
	if _, err := m.Acquire(id); !errors.Is(err, session.ErrNoSnapshot) {
		t.Fatalf("Acquire after quarantine = %v, want ErrNoSnapshot", err)
	}
	if snap := m.MetricsSnapshot(); snap.Gauges["sessions.store_quarantined"] != 1 {
		t.Fatalf("sessions.store_quarantined = %v", snap.Gauges["sessions.store_quarantined"])
	}
	// The slot is recoverable: destroy and recreate under the tenant.
	if err := m.Destroy(id); err != nil {
		t.Fatal(err)
	}
	s2, err := m.Create("t")
	if err != nil {
		t.Fatal(err)
	}
	s2.Release()
}

// TestTenantFairness pins the TenantResidentQuota policy: a create
// storm from one tenant cannot flush another tenant's sessions below
// its quota. Pre-quota (global LRU) the quiet tenant's sessions are the
// oldest and get evicted first.
func TestTenantFairness(t *testing.T) {
	w := testWorld()
	const quota = 2
	m := session.NewManager(session.Config{
		Factory:             demoFactory(w),
		MaxResident:         4,
		TenantResidentQuota: quota,
	})
	var quiet []string
	for i := 0; i < quota; i++ {
		s, err := m.Create("quiet")
		if err != nil {
			t.Fatal(err)
		}
		quiet = append(quiet, s.ID())
		s.Release()
	}
	// Noisy storm: every create pushes the fleet over MaxResident, so
	// the evictor runs eight times while quiet sits idle (= oldest LRU).
	for i := 0; i < 8; i++ {
		s, err := m.Create("noisy")
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	st := m.Stats()
	if st.Resident > 4 {
		t.Fatalf("resident = %d, want <= 4", st.Resident)
	}
	for _, id := range quiet {
		info, ok := m.Get(id)
		if !ok || !info.Resident {
			t.Fatalf("quiet session %s evicted by the noisy storm (info=%+v)", id, info)
		}
	}
	if st.Evictions < 6 {
		t.Fatalf("evictions = %d, want the storm to pay for itself (>= 6)", st.Evictions)
	}
}

// TestTenantFairnessFallsBackToLRU: with everyone within quota, the
// evictor is plain global LRU.
func TestTenantFairnessFallsBackToLRU(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{
		Factory:             demoFactory(w),
		MaxResident:         2,
		TenantResidentQuota: 5, // nobody ever exceeds it
	})
	var ids []string
	for i := 0; i < 4; i++ {
		s, err := m.Create(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
		s.Release()
	}
	if info, _ := m.Get(ids[0]); info.Resident {
		t.Fatal("LRU session survived within-quota eviction")
	}
	if info, _ := m.Get(ids[3]); !info.Resident {
		t.Fatal("MRU session evicted within quota")
	}
}

// TestConcurrentCreateRespectsMaxSessions pins the admission race fix:
// Create used to check capacity only before running the factory, so N
// concurrent creates against a table with one free slot could all pass
// the check and all insert. Capacity is now re-verified at insert time
// under the table lock.
func TestConcurrentCreateRespectsMaxSessions(t *testing.T) {
	w := testWorld()
	const cap = 8
	m := session.NewManager(session.Config{Factory: demoFactory(w), MaxSessions: cap})
	const attempts = 40
	var admitted, shed atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s, err := m.Create("racer")
			switch {
			case err == nil:
				admitted.Add(1)
				s.Release()
			case errors.Is(err, session.ErrCapacity):
				shed.Add(1)
			default:
				t.Errorf("Create: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted.Load() != cap || shed.Load() != attempts-cap {
		t.Fatalf("admitted=%d shed=%d, want exactly %d/%d", admitted.Load(), shed.Load(), cap, attempts-cap)
	}
	if st := m.Stats(); st.Sessions != cap {
		t.Fatalf("table holds %d sessions, cap is %d", st.Sessions, cap)
	}
}

// flakyStore wraps a Store and fails Save for chosen session IDs.
type flakyStore struct {
	session.Store
	mu      sync.Mutex
	failIDs map[string]bool
}

func (f *flakyStore) Save(id string, data []byte) error {
	f.mu.Lock()
	fail := f.failIDs[id]
	f.mu.Unlock()
	if fail {
		return errors.New("flaky store: injected save failure")
	}
	return f.Store.Save(id, data)
}

// TestEvictSweepSurvivesVictimFailure pins the resilient-sweep fix: one
// victim whose snapshot can't be stored used to abort the whole
// eviction sweep, leaving the fleet over budget. The sweep now skips
// the failed victim (counting it in evict_errors) and keeps going.
func TestEvictSweepSurvivesVictimFailure(t *testing.T) {
	w := testWorld()
	fl := &flakyStore{Store: session.NewMemStore(), failIDs: map[string]bool{"s000001": true}}
	m := session.NewManager(session.Config{Factory: demoFactory(w), MaxResident: 2, Store: fl})
	for i := 0; i < 4; i++ {
		s, err := m.Create("t")
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	st := m.Stats()
	if st.Resident > 2 {
		t.Fatalf("resident = %d after sweeps, want <= 2: a failed victim stalled eviction", st.Resident)
	}
	if st.EvictErrors == 0 {
		t.Fatal("injected save failure not counted in EvictErrors")
	}
	// The unsaveable session stays resident — state loss is worse than
	// budget overshoot.
	if info, _ := m.Get("s000001"); !info.Resident {
		t.Fatal("session with failing store write lost its state")
	}
	if snap := m.MetricsSnapshot(); snap.Counters["sessions.evict_errors"] == 0 {
		t.Fatal("sessions.evict_errors missing from metrics")
	}
}

// TestStatsCapacityConsistency pins the torn-read fix: Stats used to
// evaluate Shedding() and the session count under separate lock
// acquisitions, so a concurrent create/destroy could yield a snapshot
// claiming capacity shedding with a below-cap table (or a full table
// without the flag). Both now come from one critical section: with no
// soft signals active, Shedding ⟺ Sessions >= MaxSessions must hold in
// every snapshot.
func TestStatsCapacityConsistency(t *testing.T) {
	w := testWorld()
	const max = 4
	m := session.NewManager(session.Config{Factory: demoFactory(w), MaxSessions: max})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := m.Create("churn")
				if err != nil {
					continue
				}
				id := s.ID()
				s.Release()
				m.Destroy(id)
			}
		}()
	}
	for i := 0; i < 300; i++ {
		st := m.Stats()
		full := st.Sessions >= max
		capShed := st.Shedding && st.ShedReason == "session table full"
		if capShed != full {
			close(stop)
			wg.Wait()
			t.Fatalf("torn stats snapshot: sessions=%d/%d shedding=%v reason=%q",
				st.Sessions, max, st.Shedding, st.ShedReason)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCheckpointEvictsEverything: Checkpoint is the graceful-shutdown
// path — every resident, unpinned session lands in the store; pinned
// sessions are skipped, not blocked on.
func TestCheckpointEvictsEverything(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w)})
	for i := 0; i < 3; i++ {
		s, err := m.Create("t")
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	pinned, err := m.Create("held")
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Checkpoint()
	if err != nil || n != 3 {
		t.Fatalf("Checkpoint = %d, %v, want 3, nil (pinned session skipped)", n, err)
	}
	if st := m.Stats(); st.Resident != 1 {
		t.Fatalf("resident after checkpoint = %d, want 1 (the pinned one)", st.Resident)
	}
	pinned.Release()
}

// TestEvictFailureIsAttributed pins the attribution fix: a failed
// eviction used to bump sessions.evict_errors with no record of which
// session or tenant was the victim. The failure must now land in the
// host decision log naming the victim, in the flight recorder's
// timeline, and in a captured evict.error incident carrying the
// session/tenant pair.
func TestEvictFailureIsAttributed(t *testing.T) {
	w := testWorld()
	fl := &flakyStore{Store: session.NewMemStore(), failIDs: map[string]bool{"s000001": true}}
	m := session.NewManager(session.Config{Factory: demoFactory(w), MaxResident: 2, Store: fl})
	for i := 0; i < 4; i++ {
		s, err := m.Create("acme")
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	if st := m.Stats(); st.EvictErrors == 0 {
		t.Fatal("injected save failure not counted in EvictErrors")
	}

	// Decision log: the victim and its tenant are named.
	found := false
	for _, d := range m.Decisions().Decisions() {
		if d.Stage == "session.evict" && d.Candidate == "s000001" && d.Session == "s000001" {
			if !strings.Contains(d.Reason, "acme") || !strings.Contains(d.Reason, "injected save failure") {
				t.Errorf("evict-error decision reason lacks tenant or cause: %+v", d)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no evict-error decision names the victim: %+v", m.Decisions().Decisions())
	}

	// Flight recorder: the timeline event and the captured incident both
	// carry the attribution.
	rec := m.Flight()
	var sums []flight.Summary
	for _, s := range rec.Incidents() {
		if s.Trigger == flight.TriggerEvictError {
			sums = append(sums, s)
		}
	}
	if len(sums) == 0 {
		t.Fatal("evict failure did not capture an evict.error incident")
	}
	if sums[0].Session != "s000001" || sums[0].Tenant != "acme" {
		t.Errorf("incident attribution = session %q tenant %q, want s000001/acme",
			sums[0].Session, sums[0].Tenant)
	}
	inc, ok := rec.Incident(sums[0].ID)
	if !ok {
		t.Fatal("captured incident not fetchable")
	}
	hasEvent := false
	for _, e := range inc.Events {
		if e.Kind == flight.EventEvictError && e.Session == "s000001" && e.Tenant == "acme" {
			hasEvent = true
		}
	}
	if !hasEvent {
		t.Errorf("bundle timeline lacks the attributed evict-error event: %+v", inc.Events)
	}
}
