package session_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"copycat/internal/obs"
	"copycat/internal/resilience"
	"copycat/internal/session"
	"copycat/internal/simuser"
	"copycat/internal/webworld"
	"copycat/internal/workspace"
)

// demoFactory builds session states over one shared immutable world —
// the hosting shape the facade's DemoFactory uses.
func demoFactory(w *webworld.World) session.Factory {
	return func() (*session.State, error) {
		e := simuser.NewEnv(w, webworld.StyleTable)
		return &session.State{Workspace: e.WS, Catalog: e.WS.Cat, Types: e.WS.Types}, nil
	}
}

func testWorld() *webworld.World {
	cfg := webworld.DefaultConfig()
	cfg.Cities, cfg.SheltersPerCity = 3, 3
	return webworld.Generate(cfg)
}

// completionsDigest canonically renders a completion list so two
// refreshes can be compared for exact equivalence (ordering, targets,
// costs, result rows).
func completionsDigest(ws *workspace.Workspace) string {
	var b strings.Builder
	for _, c := range ws.RefreshColumnSuggestions() {
		fmt.Fprintf(&b, "%s→%s@%.9g[", c.Edge.ID, c.Target, c.Cost)
		for _, a := range c.Result.Rows {
			fmt.Fprintf(&b, "(%s)", strings.Join(a.Row.Texts(), "|"))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func mustImport(t *testing.T, w *webworld.World, st *session.State) {
	t.Helper()
	if err := simuser.ImportShelters(st.Workspace, w, webworld.StyleTable); err != nil {
		t.Fatalf("import: %v", err)
	}
}

func TestLifecycle(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w)})

	s, err := m.Create("alice")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if s.ID() == "" || s.Tenant() != "alice" {
		t.Fatalf("bad identity: id=%q tenant=%q", s.ID(), s.Tenant())
	}
	mustImport(t, w, s.State())
	before := completionsDigest(s.State().Workspace)
	if before == "" {
		t.Fatal("no suggestions after import")
	}
	s.Release()

	// Explicit evict drops the state; the snapshot lands in the store.
	if err := m.Evict(s.ID()); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if info, _ := m.Get(s.ID()); info.Resident {
		t.Fatal("session still resident after Evict")
	}
	if ms, ok := m.Store().(*session.MemStore); ok && ms.Len() != 1 {
		t.Fatalf("store has %d snapshots, want 1", ms.Len())
	}

	// Attach transparently reloads.
	s2, err := m.Acquire(s.ID())
	if err != nil {
		t.Fatalf("Acquire after evict: %v", err)
	}
	if got := completionsDigest(s2.State().Workspace); got != before {
		t.Fatalf("suggestions changed across evict/reload:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	info, _ := m.Get(s.ID())
	if !info.Resident || info.Reloads != 1 || info.Evictions != 1 {
		t.Fatalf("unexpected info after reload: %+v", info)
	}
	s2.Release()

	if err := m.Destroy(s.ID()); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if _, err := m.Acquire(s.ID()); !errors.Is(err, session.ErrNotFound) {
		t.Fatalf("Acquire destroyed = %v, want ErrNotFound", err)
	}
	if st := m.Stats(); st.Sessions != 0 {
		t.Fatalf("sessions after destroy = %d, want 0", st.Sessions)
	}
}

func TestEvictBusySession(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w)})
	s, err := m.Create("t")
	if err != nil {
		t.Fatal(err)
	}
	// s is still pinned (Create returns acquired).
	if err := m.Evict(s.ID()); !errors.Is(err, session.ErrBusy) {
		t.Fatalf("Evict pinned = %v, want ErrBusy", err)
	}
	s.Release()
	if err := m.Evict(s.ID()); err != nil {
		t.Fatalf("Evict released = %v", err)
	}
	// Evicting an already-evicted session is a no-op.
	if err := m.Evict(s.ID()); err != nil {
		t.Fatalf("Evict evicted = %v", err)
	}
}

func TestLRUEvictionBoundsResidency(t *testing.T) {
	w := testWorld()
	const maxResident = 4
	m := session.NewManager(session.Config{Factory: demoFactory(w), MaxResident: maxResident})
	var ids []string
	for i := 0; i < 10; i++ {
		s, err := m.Create(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		ids = append(ids, s.ID())
		s.Release()
	}
	st := m.Stats()
	if st.Resident > maxResident {
		t.Fatalf("resident = %d, want <= %d", st.Resident, maxResident)
	}
	if st.Evictions < 6 {
		t.Fatalf("evictions = %d, want >= 6", st.Evictions)
	}
	// The oldest sessions must be the evicted ones; the most recent must
	// still be resident.
	if info, _ := m.Get(ids[0]); info.Resident {
		t.Fatal("LRU session still resident")
	}
	if info, _ := m.Get(ids[9]); !info.Resident {
		t.Fatal("MRU session was evicted")
	}
	// Touching an evicted session reloads it and pushes out another LRU.
	s, err := m.Acquire(ids[0])
	if err != nil {
		t.Fatalf("Acquire LRU: %v", err)
	}
	s.Release()
	if st := m.Stats(); st.Resident > maxResident {
		t.Fatalf("resident after reload = %d, want <= %d", st.Resident, maxResident)
	}
	if info, _ := m.Get(ids[0]); !info.Resident {
		t.Fatal("reloaded session not resident")
	}
}

func TestMemoryBudgetEviction(t *testing.T) {
	w := testWorld()
	// Budget sized to hold only a couple of imported sessions.
	m := session.NewManager(session.Config{Factory: demoFactory(w), MemoryBudget: 256 << 10})
	for i := 0; i < 6; i++ {
		s, err := m.Create("t")
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		mustImport(t, w, s.State())
		s.Release()
	}
	st := m.Stats()
	if st.ResidentBytes > 256<<10 {
		t.Fatalf("resident bytes %d exceed budget", st.ResidentBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under a tight memory budget")
	}
}

// testStores enumerates the Store implementations the lifecycle
// property tests must hold over: the in-memory default and the durable
// file tier (which adds compression framing, headers, and disk I/O to
// the snapshot path).
func testStores(t *testing.T) map[string]func() session.Store {
	t.Helper()
	return map[string]func() session.Store{
		"mem": func() session.Store { return session.NewMemStore() },
		"file": func() session.Store {
			fs, err := session.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
	}
}

// TestEvictReloadIdenticalSuggestions is the property test behind the
// "transparent reload" claim: across seeded random accept/reject
// feedback, a session's suggestion list after evict+reload is identical
// to the one it would have produced had it stayed resident — learned
// MIRA weights, tabs, and relations all survive the round trip. It
// holds over both stores: the durable tier's gzip framing and header
// checks are invisible to the suggestions.
func TestEvictReloadIdenticalSuggestions(t *testing.T) {
	w := testWorld()
	for storeName, newStore := range testStores(t) {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", storeName, seed), func(t *testing.T) {
				m := session.NewManager(session.Config{Factory: demoFactory(w), Store: newStore()})
				s, err := m.Create("prop")
				if err != nil {
					t.Fatal(err)
				}
				mustImport(t, w, s.State())
				rng := rand.New(rand.NewSource(seed))
				for round := 0; round < 4; round++ {
					ws := s.State().Workspace
					comps := ws.RefreshColumnSuggestions()
					if len(comps) > 1 {
						// Random feedback: reject one of the top-2 proposals so
						// the MIRA weights actually move each round.
						if err := ws.RejectColumn(rng.Intn(2)); err != nil {
							t.Fatalf("round %d: reject: %v", round, err)
						}
					}
					want := completionsDigest(ws)
					s.Release()
					if err := m.Evict(s.ID()); err != nil {
						t.Fatalf("round %d: evict: %v", round, err)
					}
					if s, err = m.Acquire(s.ID()); err != nil {
						t.Fatalf("round %d: acquire: %v", round, err)
					}
					if got := completionsDigest(s.State().Workspace); got != want {
						t.Fatalf("round %d: suggestions diverged after reload\nwant:\n%s\ngot:\n%s",
							round, want, got)
					}
				}
				s.Release()
			})
		}
	}
}

// TestReloadPreservesPlanCacheCounters pins the satellite fix: the plan
// cache's lifetime hit/miss counters survive an evict/reload cycle even
// though the cached entries themselves are rebuilt cold.
func TestReloadPreservesPlanCacheCounters(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w)})
	s, err := m.Create("t")
	if err != nil {
		t.Fatal(err)
	}
	mustImport(t, w, s.State())
	ws := s.State().Workspace
	ws.RefreshColumnSuggestions()
	ws.RefreshColumnSuggestions() // second pass hits the plan cache
	hits, misses, _ := ws.PlanCache.Stats()
	if hits == 0 {
		t.Fatal("expected plan-cache hits before eviction")
	}
	s.Release()
	if err := m.Evict(s.ID()); err != nil {
		t.Fatal(err)
	}
	s, err = m.Acquire(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	ws = s.State().Workspace
	h2, m2, _ := ws.PlanCache.Stats()
	if h2 != hits || m2 != misses {
		t.Fatalf("counters reset by reload: had %d/%d, got %d/%d", hits, misses, h2, m2)
	}
	if ws.PlanCache.Len() != 0 {
		t.Fatalf("reloaded cache should start cold, has %d entries", ws.PlanCache.Len())
	}
	// And they keep counting from there.
	ws.RefreshColumnSuggestions()
	h3, m3, _ := ws.PlanCache.Stats()
	if h3+m3 <= h2+m2 {
		t.Fatal("counters did not advance after reload")
	}
}

// TestAdmissionShedsOnFastBurn drives the host SLO tracker on a virtual
// clock: when the fast-burn alert fires, Create sheds with
// ErrOverloaded; once the burn window ages out, admission reopens.
func TestAdmissionShedsOnFastBurn(t *testing.T) {
	w := testWorld()
	clock := resilience.NewVirtualClock()
	slo := obs.NewSLOTracker(obs.DefaultSLOConfig(), clock.Now)
	m := session.NewManager(session.Config{Factory: demoFactory(w), Clock: clock, SLO: slo})

	if s, err := m.Create("ok"); err != nil {
		t.Fatalf("Create while healthy: %v", err)
	} else {
		s.Release()
	}

	// Burn the fast window: every refresh blows the 25ms objective.
	for i := 0; i < 50; i++ {
		slo.Observe(200 * time.Millisecond)
	}
	if st := slo.Status(); !st.FastAlert {
		t.Fatalf("fast alert not firing: %+v", st)
	}
	if _, err := m.Create("shed"); !errors.Is(err, session.ErrOverloaded) {
		t.Fatalf("Create under burn = %v, want ErrOverloaded", err)
	}
	hs := m.Stats()
	if !hs.Shedding || hs.Rejected != 1 {
		t.Fatalf("stats under burn: %+v", hs)
	}

	// Advance past the fast window; the alert clears and admission
	// reopens — deterministically, because everything runs on the
	// virtual clock.
	clock.Advance(10 * time.Minute)
	if st := slo.Status(); st.FastAlert {
		t.Fatalf("fast alert still firing after window aged out: %+v", st)
	}
	if s, err := m.Create("recovered"); err != nil {
		t.Fatalf("Create after recovery: %v", err)
	} else {
		s.Release()
	}
}

func TestAdmissionCapacity(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w), MaxSessions: 2})
	for i := 0; i < 2; i++ {
		s, err := m.Create("t")
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	if _, err := m.Create("over"); !errors.Is(err, session.ErrCapacity) {
		t.Fatalf("Create over cap = %v, want ErrCapacity", err)
	}
	if shedding, reason := m.Shedding(); !shedding || reason == "" {
		t.Fatal("Shedding() should report the full table")
	}
	// Destroy frees a slot.
	if err := m.Destroy(m.List()[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("fits"); err != nil {
		t.Fatalf("Create after destroy: %v", err)
	}
}

func TestStandaloneSession(t *testing.T) {
	w := testWorld()
	e := simuser.NewEnv(w, webworld.StyleTable)
	st := &session.State{Workspace: e.WS, Catalog: e.WS.Cat, Types: e.WS.Types}
	s := session.NewStandalone("local", st)
	if s.State() != st {
		t.Fatal("standalone state mismatch")
	}
	s.Release() // must be a no-op
	if s.State() != st {
		t.Fatal("Release dropped standalone state")
	}
}

func TestSessionIDThreading(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w), EnableTracing: true})
	s, err := m.Create("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	mustImport(t, w, s.State())
	ws := s.State().Workspace
	ws.RefreshColumnSuggestions()
	if len(ws.RefreshColumnSuggestions()) > 1 {
		if err := ws.RejectColumn(0); err != nil {
			t.Fatal(err)
		}
	}
	// Decisions carry the session ID.
	found := false
	for _, d := range ws.Decisions.Decisions() {
		if d.Session == s.ID() {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no decision stamped with the session ID")
	}
	// Spans published to the shared host ring carry it as an attribute.
	events, _, _ := m.Ring().Since(0)
	foundSpan := false
	for _, ev := range events {
		for _, a := range ev.Attrs {
			if a.Key == "session" && a.Value == s.ID() {
				foundSpan = true
			}
		}
	}
	if !foundSpan {
		t.Fatalf("no span tagged with session %s among %d events", s.ID(), len(events))
	}
}

func TestHostSLOObservesAllSessions(t *testing.T) {
	w := testWorld()
	m := session.NewManager(session.Config{Factory: demoFactory(w)})
	for i := 0; i < 3; i++ {
		s, err := m.Create("t")
		if err != nil {
			t.Fatal(err)
		}
		mustImport(t, w, s.State())
		s.State().Workspace.RefreshColumnSuggestions()
		s.Release()
	}
	if st := m.SLO().Status(); st.FastCount < 3 {
		t.Fatalf("host SLO observed %d refreshes, want >= 3", st.FastCount)
	}
	snap := m.MetricsSnapshot()
	if h, ok := snap.Histograms["host.latency.suggest.refresh"]; !ok || h.Count < 3 {
		t.Fatalf("host latency histogram missing or short: %+v", snap.Histograms)
	}
	if snap.Counters["sessions.created"] != 3 {
		t.Fatalf("sessions.created = %d", snap.Counters["sessions.created"])
	}
}
