package session

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copycat/internal/persist"
)

// FileStore is the durable snapshot tier: one file per snapshot under a
// root directory, written atomically (temp file + rename) so a crash
// mid-save never leaves a half-written snapshot where a good one was.
// Payloads are gzip-framed (persist.Compress) and wrapped in a small
// binary header carrying a magic, the raw and stored lengths, and a
// CRC32 of the stored payload — Load verifies all of it before handing
// bytes to the restore path. A file that fails any check is moved into
// a quarantine/ subdirectory (preserved for forensics, out of the hot
// path) instead of erroring forever on every Acquire.
//
// Legacy compatibility: a snapshot file holding raw JSON (no header —
// the MemStore-era format, or a snapshot dropped in by hand from
// System.SaveSession) loads as-is.
//
// A manifest.json sidecar in the root records per-snapshot metadata
// (tenant, creation time) so a manager rebuilt over the directory
// recovers sessions under their original identity. The *.snap files
// are the source of truth: a manifest lost to a crash costs only the
// tenant labels, never the snapshots.
type FileStore struct {
	root string

	// QuarantineKeep caps how many files are retained under
	// quarantine/; the oldest beyond the cap are deleted. Quarantined
	// snapshots are forensic evidence, not data the system needs, so
	// the directory must not grow without bound. Zero means
	// DefaultQuarantineKeep; set before first use.
	QuarantineKeep int

	mu    sync.Mutex
	sizes map[string]fileSizes    // id → raw/stored byte sizes
	meta  map[string]SnapshotMeta // id → manifest record
	// onQuarantine observes quarantined snapshots (SetQuarantineHook);
	// called outside s.mu.
	onQuarantine func(id, reason string)

	loadErrors  atomic.Int64
	quarantined atomic.Int64
	gcRemoved   atomic.Int64 // files deleted by Delete, reopen GC, and quarantine pruning
	quarCount   atomic.Int64 // files currently under quarantine/
}

type fileSizes struct {
	raw    int64 // uncompressed snapshot bytes (equals stored for legacy files)
	stored int64 // bytes on disk, header included
}

// Snapshot file format (all integers big-endian):
//
//	[0:4]   magic "SCPS"
//	[4]     header version (1)
//	[5:9]   rawLen    — uncompressed snapshot length
//	[9:13]  payloadLen — framed payload length
//	[13:17] CRC32 (IEEE) of the framed payload
//	[17:]   framed payload (persist.Compress output)
const (
	snapMagic     = "SCPS"
	snapHeaderLen = 17
	snapVersion   = 1
	snapSuffix    = ".snap"
	quarantineDir = "quarantine"
	manifestName  = "manifest.json"
)

// ErrCorruptSnapshot reports a snapshot that failed the magic, length,
// CRC, or decompression checks on Load and was moved to quarantine.
var ErrCorruptSnapshot = errors.New("session: corrupt snapshot (quarantined)")

// DefaultQuarantineKeep is the quarantine retention cap applied when
// FileStore.QuarantineKeep is zero.
const DefaultQuarantineKeep = 32

// NewFileStore opens (creating if needed) a durable snapshot store
// rooted at dir. Existing snapshots are indexed and the manifest (if
// any) is loaded, so the store — and a Manager built over it — resumes
// exactly where the previous process stopped.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: filestore: %w", err)
	}
	s := &FileStore{
		root:  dir,
		sizes: map[string]fileSizes{},
		meta:  map[string]SnapshotMeta{},
	}
	if data, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		// A damaged manifest only costs metadata; ignore and rebuild.
		json.Unmarshal(data, &s.meta)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("session: filestore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if !strings.HasSuffix(name, snapSuffix) {
			// Orphaned temp files (snapshot or manifest writes cut short
			// by a crash before the rename) are debris; sweep them.
			if strings.Contains(name, ".tmp-") {
				if os.Remove(filepath.Join(dir, name)) == nil {
					s.gcRemoved.Add(1)
				}
			}
			continue
		}
		id := strings.TrimSuffix(name, snapSuffix)
		if s.meta[id].Destroyed {
			// Finish a Delete interrupted between the tombstone flush and
			// the file removal: the session was destroyed, not evicted.
			if os.Remove(filepath.Join(dir, name)) == nil {
				s.gcRemoved.Add(1)
			}
			continue
		}
		s.sizes[id] = s.scanSizes(filepath.Join(dir, name))
	}
	// Drop manifest entries whose snapshot is gone (deleted,
	// quarantined, or tombstone-collected under a previous process).
	pruned := false
	for id := range s.meta {
		if _, ok := s.sizes[id]; !ok {
			delete(s.meta, id)
			pruned = true
		}
	}
	if pruned {
		s.mu.Lock()
		s.flushManifestLocked()
		s.mu.Unlock()
	}
	s.initQuarantine()
	return s, nil
}

// initQuarantine counts the files already under quarantine/ and applies
// the retention cap, so a store reopened over an old directory starts
// with an accurate gauge and a bounded footprint.
func (s *FileStore) initQuarantine() {
	entries, err := os.ReadDir(filepath.Join(s.root, quarantineDir))
	if err != nil {
		return // no quarantine directory yet
	}
	n := int64(0)
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	s.quarCount.Store(n)
	s.pruneQuarantine()
}

// pruneQuarantine deletes the oldest quarantined files beyond the
// retention cap. Best-effort: a file that cannot be listed or removed
// is skipped and retried on the next prune.
func (s *FileStore) pruneQuarantine() {
	keep := s.QuarantineKeep
	if keep <= 0 {
		keep = DefaultQuarantineKeep
	}
	if s.quarCount.Load() <= int64(keep) {
		return
	}
	qdir := filepath.Join(s.root, quarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil {
		return
	}
	type qfile struct {
		name string
		mod  time.Time
	}
	files := make([]qfile, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, qfile{e.Name(), fi.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for len(files) > keep {
		if os.Remove(filepath.Join(qdir, files[0].name)) == nil {
			s.gcRemoved.Add(1)
		}
		files = files[1:]
	}
	s.quarCount.Store(int64(len(files)))
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.root }

// scanSizes reads just enough of a snapshot file to size it for the
// stats gauges; corruption is left for Load to detect and quarantine.
func (s *FileStore) scanSizes(path string) fileSizes {
	fi, err := os.Stat(path)
	if err != nil {
		return fileSizes{}
	}
	sz := fileSizes{raw: fi.Size(), stored: fi.Size()}
	f, err := os.Open(path)
	if err != nil {
		return sz
	}
	defer f.Close()
	var hdr [snapHeaderLen]byte
	if n, _ := f.Read(hdr[:]); n == snapHeaderLen && string(hdr[:4]) == snapMagic {
		sz.raw = int64(binary.BigEndian.Uint32(hdr[5:9]))
	}
	return sz
}

// validID rejects session IDs that could escape the root directory.
func validID(id string) error {
	if id == "" || id == "." || id == ".." || strings.ContainsAny(id, "/\\") {
		return fmt.Errorf("session: filestore: invalid snapshot id %q", id)
	}
	return nil
}

func (s *FileStore) path(id string) string {
	return filepath.Join(s.root, id+snapSuffix)
}

// Save implements Store: frame, header, temp-write, fsync, rename.
func (s *FileStore) Save(id string, data []byte) error {
	if err := validID(id); err != nil {
		return err
	}
	payload := persist.Compress(data)
	buf := make([]byte, snapHeaderLen+len(payload))
	copy(buf[:4], snapMagic)
	buf[4] = snapVersion
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(data)))
	binary.BigEndian.PutUint32(buf[9:13], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[13:17], crc32.ChecksumIEEE(payload))
	copy(buf[snapHeaderLen:], payload)

	tmp, err := os.CreateTemp(s.root, id+".tmp-*")
	if err != nil {
		return fmt.Errorf("session: filestore save %s: %w", id, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("session: filestore save %s: %w", id, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("session: filestore save %s: %w", id, err)
	}
	if err := os.Rename(tmpName, s.path(id)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("session: filestore save %s: %w", id, err)
	}
	s.mu.Lock()
	s.sizes[id] = fileSizes{raw: int64(len(data)), stored: int64(len(buf))}
	s.flushManifestLocked()
	s.mu.Unlock()
	return nil
}

// Load implements Store. Any integrity failure quarantines the file
// and returns ErrCorruptSnapshot; the next Load for that id reports
// "no snapshot" cleanly instead of tripping over the same bytes again.
func (s *FileStore) Load(id string) ([]byte, bool, error) {
	if err := validID(id); err != nil {
		return nil, false, err
	}
	raw, err := os.ReadFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		s.loadErrors.Add(1)
		return nil, false, fmt.Errorf("session: filestore load %s: %w", id, err)
	}
	if len(raw) < len(snapMagic) || string(raw[:4]) != snapMagic {
		// No header: either a legacy raw-JSON snapshot or garbage.
		if trimmed := bytes.TrimLeft(raw, " \t\r\n"); len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
			return raw, true, nil
		}
		return nil, false, s.quarantine(id, "unrecognized header")
	}
	if len(raw) < snapHeaderLen || raw[4] != snapVersion {
		return nil, false, s.quarantine(id, "truncated or unknown-version header")
	}
	rawLen := binary.BigEndian.Uint32(raw[5:9])
	payloadLen := binary.BigEndian.Uint32(raw[9:13])
	sum := binary.BigEndian.Uint32(raw[13:17])
	payload := raw[snapHeaderLen:]
	if uint32(len(payload)) != payloadLen {
		return nil, false, s.quarantine(id, fmt.Sprintf("payload length %d, header says %d", len(payload), payloadLen))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false, s.quarantine(id, "CRC mismatch")
	}
	data, err := persist.Decompress(payload)
	if err != nil {
		return nil, false, s.quarantine(id, err.Error())
	}
	if uint32(len(data)) != rawLen {
		return nil, false, s.quarantine(id, fmt.Sprintf("inflated to %d bytes, header says %d", len(data), rawLen))
	}
	return data, true, nil
}

// quarantine moves a failed snapshot aside and drops it from the
// index; the data is preserved under quarantine/ for forensics.
func (s *FileStore) quarantine(id, reason string) error {
	s.loadErrors.Add(1)
	qdir := filepath.Join(s.root, quarantineDir)
	moved := ""
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		dst := filepath.Join(qdir, id+snapSuffix)
		if err := os.Rename(s.path(id), dst); err == nil {
			moved = dst
			s.quarantined.Add(1)
			s.quarCount.Add(1)
		}
	}
	if moved == "" {
		// Could not move it; delete so the store doesn't stay poisoned.
		os.Remove(s.path(id))
	}
	s.mu.Lock()
	delete(s.sizes, id)
	delete(s.meta, id)
	s.flushManifestLocked()
	hook := s.onQuarantine
	s.mu.Unlock()
	s.pruneQuarantine()
	if hook != nil {
		hook(id, reason)
	}
	if moved != "" {
		return fmt.Errorf("%w: %s: %s (moved to %s)", ErrCorruptSnapshot, id, reason, moved)
	}
	return fmt.Errorf("%w: %s: %s", ErrCorruptSnapshot, id, reason)
}

// SetQuarantineHook installs fn, called (outside the store's lock)
// whenever a corrupt snapshot is moved to quarantine — the session
// manager wires the flight recorder's store-corruption trigger here.
func (s *FileStore) SetQuarantineHook(fn func(id, reason string)) {
	s.mu.Lock()
	s.onQuarantine = fn
	s.mu.Unlock()
}

// Delete implements Store. The removal is crash-safe: the manifest
// entry is tombstoned (Destroyed) and flushed before the file goes, so
// a crash between the two steps leaves a marker the next NewFileStore
// finishes collecting instead of reviving a destroyed session's
// snapshot. Only then is the entry dropped from the manifest entirely.
func (s *FileStore) Delete(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	s.mu.Lock()
	m := s.meta[id]
	m.Destroyed = true
	s.meta[id] = m
	s.flushManifestLocked()
	s.mu.Unlock()
	switch err := os.Remove(s.path(id)); {
	case err == nil:
		s.gcRemoved.Add(1)
	case !errors.Is(err, os.ErrNotExist):
		return fmt.Errorf("session: filestore delete %s: %w", id, err)
	}
	s.mu.Lock()
	delete(s.sizes, id)
	delete(s.meta, id)
	s.flushManifestLocked()
	s.mu.Unlock()
	return nil
}

// List implements ListingStore: every snapshot ID currently on disk.
func (s *FileStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sizes))
	for id := range s.sizes {
		ids = append(ids, id)
	}
	return ids, nil
}

// SetMeta implements MetaStore; the record is persisted in the
// manifest on the next flush (Save/Delete/SetMeta all flush).
func (s *FileStore) SetMeta(id string, meta SnapshotMeta) {
	s.mu.Lock()
	s.meta[id] = meta
	s.flushManifestLocked()
	s.mu.Unlock()
}

// Meta implements MetaStore.
func (s *FileStore) Meta(id string) (SnapshotMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.meta[id]
	return m, ok
}

// Len reports the number of stored snapshots.
func (s *FileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes)
}

// Stats implements StatsStore.
func (s *FileStore) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{Snapshots: len(s.sizes)}
	for _, sz := range s.sizes {
		st.RawBytes += sz.raw
		st.DiskBytes += sz.stored
	}
	s.mu.Unlock()
	st.LoadErrors = s.loadErrors.Load()
	st.Quarantined = s.quarantined.Load()
	st.GCRemoved = s.gcRemoved.Load()
	st.QuarantineFiles = s.quarCount.Load()
	return st
}

// flushManifestLocked rewrites the manifest atomically; the caller
// holds s.mu. Manifest loss is tolerable (see NewFileStore), so write
// failures are swallowed rather than failing the snapshot save.
func (s *FileStore) flushManifestLocked() {
	data, err := json.MarshalIndent(s.meta, "", " ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.root, manifestName+".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil && tmp.Close() == nil {
		os.Rename(name, filepath.Join(s.root, manifestName))
		return
	}
	tmp.Close()
	os.Remove(name)
}
