package workspace

import (
	"fmt"

	"copycat/internal/docmodel"
	"copycat/internal/modellearn"
	"copycat/internal/obs"
	"copycat/internal/provenance"
	"copycat/internal/sourcegraph"
	"copycat/internal/structlearn"
	"copycat/internal/table"
)

// Paste routes a clipboard selection into the active tab. In import mode
// the structure learner generalizes the paste into row auto-completions
// and the model learner types the columns (Figure 1). Pasting from a new
// source while a tab is already bound to a different source switches the
// workspace into integration mode (§2.1).
func (w *Workspace) Paste(sel docmodel.Selection) error {
	w.checkpoint(opPaste)
	w.Keys.Paste(sel)
	t := w.ActiveTab()

	if w.mode == ModeCleaning {
		return w.pasteLiteral(sel)
	}

	// Detect a cross-source paste: the active tab is bound to a source
	// document, and this paste came from a different one.
	if lrn, ok := w.structLearners[t.Name]; ok && sel.Doc != nil && lrn.Doc() != sel.Doc {
		w.mode = ModeIntegration
		return w.pasteIntegration(sel)
	}
	if w.mode == ModeIntegration {
		return w.pasteIntegration(sel)
	}
	return w.pasteImport(sel)
}

// pasteLiteral appends the cells without any learning.
func (w *Workspace) pasteLiteral(sel docmodel.Selection) error {
	t := w.ActiveTab()
	for _, row := range sel.Cells {
		if len(t.Schema) == 0 {
			t.Schema = defaultSchema(len(row))
		}
		if len(row) != len(t.Schema) {
			return fmt.Errorf("workspace: pasted row width %d != tab width %d", len(row), len(t.Schema))
		}
		t.Rows = append(t.Rows, Row{Cells: table.FromStrings(row), Prov: provenance.None{}})
	}
	return nil
}

func defaultSchema(n int) table.Schema {
	s := make(table.Schema, n)
	for i := range s {
		s[i] = table.Column{Name: fmt.Sprintf("Col%d", i+1), Kind: table.KindString}
	}
	return s
}

// pasteImport is the Figure 1 flow: add rows, learn the extractor,
// propose row auto-completions, and type the columns.
func (w *Workspace) pasteImport(sel docmodel.Selection) error {
	t := w.ActiveTab()
	if len(t.Schema) == 0 && len(sel.Cells) > 0 {
		t.Schema = defaultSchema(len(sel.Cells[0]))
	}
	// Drop previous suggestions; they will be recomputed.
	t.Rows = t.Rows[:len(t.ConcreteRows())]
	for _, row := range sel.Cells {
		if len(row) != len(t.Schema) {
			return fmt.Errorf("workspace: pasted row width %d != tab width %d", len(row), len(t.Schema))
		}
		t.Rows = append(t.Rows, Row{Cells: table.FromStrings(row), Prov: provenance.None{}})
	}

	// Structure learning needs source context; a context-free paste just
	// keeps the literal rows.
	if sel.Doc != nil {
		_, done := w.stage("learn.generalize")
		lrn, ok := w.structLearners[t.Name]
		var err error
		if !ok {
			lrn, err = structlearn.NewLearner(sel)
			if err == nil {
				w.structLearners[t.Name] = lrn
			}
		} else {
			err = lrn.AddExamples(sel)
		}
		if err == nil && lrn != nil {
			w.refreshRowSuggestions()
		}
		done()
	}

	// Model learner: type the columns from the concrete values; suggest
	// header names from the hypothesis's source headers when the user
	// hasn't named them.
	_, done := w.stage("learn.type")
	w.annotateActiveTab()
	done()
	return nil
}

// refreshRowSuggestions replaces the active tab's suggested rows with the
// current hypothesis's unseen rows.
func (w *Workspace) refreshRowSuggestions() {
	t := w.ActiveTab()
	lrn, ok := w.structLearners[t.Name]
	if !ok {
		return
	}
	t.Rows = t.Rows[:len(t.ConcreteRows())]
	h := lrn.Current()
	if h == nil {
		return
	}
	prov := provenance.Expr(provenance.Leaf{
		ID:     table.TupleID(fmt.Sprintf("extract:%s", h.Cand.PageURL)),
		Source: t.Name,
	})
	// Never suggest a row the tab already holds (matters for unions,
	// where the tab accumulates rows from several sources).
	have := map[string]bool{}
	for _, r := range t.ConcreteRows() {
		have[r.Cells.Key()] = true
	}
	for _, row := range lrn.Suggestions() {
		if len(row) != len(t.Schema) {
			continue
		}
		cells := table.FromStrings(row)
		if have[cells.Key()] {
			continue
		}
		t.Rows = append(t.Rows, Row{Cells: cells, Prov: prov, Suggested: true})
	}
	// Suggest headers from the source's declared column names.
	if hdrs := h.HeadersFor(); hdrs != nil {
		for i, name := range hdrs {
			if i < len(t.Schema) && isDefaultName(t.Schema[i].Name) && name != "" {
				t.Schema[i].Name = name
			}
		}
	}
}

func isDefaultName(n string) bool {
	return len(n) >= 4 && n[:3] == "Col"
}

// annotateActiveTab runs semantic-type recognition over the tab columns.
func (w *Workspace) annotateActiveTab() {
	t := w.ActiveTab()
	t.TypeHints = w.Types.AnnotateSchema(t.Schema, columnValues(t))
}

// RowSuggestionInfo describes the current row auto-completion offer.
type RowSuggestionInfo struct {
	Count        int    // suggested rows on display
	Description  string // hypothesis description
	Alternatives int    // remaining hypotheses (incl. current)
}

// RowSuggestions reports the active tab's pending row auto-completion.
func (w *Workspace) RowSuggestions() RowSuggestionInfo {
	t := w.ActiveTab()
	info := RowSuggestionInfo{Count: len(t.SuggestedRows())}
	if lrn, ok := w.structLearners[t.Name]; ok {
		if h := lrn.Current(); h != nil {
			info.Description = h.Desc
		}
		info.Alternatives = lrn.Alternatives()
	}
	return info
}

// AcceptRows accepts the suggested rows (the user keeping the
// highlighted auto-completion of Figure 1): they become concrete, and the
// import is committed to the catalog so the integration learner can use
// the source.
func (w *Workspace) AcceptRows() error {
	w.checkpoint(opAcceptRows)
	w.Keys.Accept()
	t := w.ActiveTab()
	if len(t.SuggestedRows()) == 0 {
		w.dropCheckpoint()
		return fmt.Errorf("workspace: no suggested rows to accept")
	}
	for i := range t.Rows {
		t.Rows[i].Suggested = false
	}
	w.annotateActiveTab()
	if err := w.CommitImport(); err != nil {
		return err
	}
	w.qualityAccept(obs.FeedbackRows, 0)
	return nil
}

// RejectRows rejects the current row suggestions; the structure learner
// falls to its next hypothesis and the display refreshes (§3.1).
func (w *Workspace) RejectRows() error {
	w.Keys.Reject()
	t := w.ActiveTab()
	lrn, ok := w.structLearners[t.Name]
	if !ok {
		return fmt.Errorf("workspace: nothing to reject")
	}
	lrn.Reject()
	w.refreshRowSuggestions()
	w.qualityReject(obs.FeedbackRows)
	return nil
}

// ExtendAcrossSite asks the structure learner to widen the current
// hypothesis across the source site (multi-page/form sources) and
// refreshes the suggestions.
func (w *Workspace) ExtendAcrossSite() int {
	t := w.ActiveTab()
	lrn, ok := w.structLearners[t.Name]
	if !ok {
		return 0
	}
	n := lrn.ExtendCurrentAcrossSite()
	if n > 0 {
		w.refreshRowSuggestions()
	}
	return n
}

// CommitImport registers the active tab's concrete rows as a catalog
// source and refreshes the source graph. Idempotent per tab.
func (w *Workspace) CommitImport() error {
	t := w.ActiveTab()
	rel := t.Relation()
	if rel.Len() == 0 {
		return fmt.Errorf("workspace: tab %q has no rows to commit", t.Name)
	}
	origin := "workspace"
	if lrn, ok := w.structLearners[t.Name]; ok && lrn.Doc() != nil {
		origin = lrn.Doc().URL
	}
	w.Cat.AddRelation(rel, origin)
	t.SourceNode = rel.Name
	// Rows imported from a committed source get base-tuple provenance.
	concrete := 0
	for i := range t.Rows {
		if !t.Rows[i].Suggested {
			t.Rows[i].Prov = provenance.Leaf{ID: provenance.BaseID(rel.Name, concrete), Source: rel.Name}
			concrete++
		}
	}
	_, done := w.stage("sourcegraph.discover")
	w.Int.Graph.Discover(sourcegraph.DefaultOptions())
	done()
	return nil
}

// RecognizedTypeFor exposes the top semantic-type hypothesis for a column
// (tests and the CLI use it).
func (w *Workspace) RecognizedTypeFor(col int) (modellearn.TypeScore, bool) {
	t := w.ActiveTab()
	if col < 0 || col >= len(t.TypeHints) || len(t.TypeHints[col]) == 0 {
		return modellearn.TypeScore{}, false
	}
	return t.TypeHints[col][0], true
}
