package workspace

import (
	"strings"
	"testing"

	"copycat/internal/catalog"
	"copycat/internal/docmodel"
	"copycat/internal/modellearn"
	"copycat/internal/services"
	"copycat/internal/sourcegraph"
	"copycat/internal/webworld"
	"copycat/internal/wrappers"
)

// importedEnv returns an env with the shelter table already imported and
// committed.
func importedEnv(t *testing.T) *env {
	t.Helper()
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDiscoverAndApplyTransform(t *testing.T) {
	e := importedEnv(t)
	tab := e.ws.ActiveTab()
	// The user wants "City, State"-style labels; types two examples.
	want0 := tab.Rows[0].Cells[2].Str() + ", " + tab.Rows[0].Cells[1].Str()
	want1 := tab.Rows[1].Cells[2].Str() + ", " + tab.Rows[1].Cells[1].Str()
	cands := e.ws.DiscoverTransform(map[int]string{0: want0, 1: want1})
	if len(cands) == 0 {
		t.Fatal("no transform candidates")
	}
	if !strings.Contains(cands[0].Desc, "concat") {
		t.Errorf("best candidate = %s", cands[0].Desc)
	}
	if err := e.ws.ApplyTransform(cands[0], "Label"); err != nil {
		t.Fatal(err)
	}
	li := tab.Schema.Index("Label")
	if li < 0 {
		t.Fatal("Label column missing")
	}
	for _, r := range tab.Rows[:5] {
		want := r.Cells[2].Str() + ", " + r.Cells[1].Str()
		if r.Cells[li].Str() != want {
			t.Errorf("transform output = %q want %q", r.Cells[li].Str(), want)
		}
	}
	// The committed catalog relation widened too.
	src := e.ws.Cat.Get(tab.SourceNode)
	if src.Schema.Index("Label") < 0 {
		t.Error("catalog relation not re-committed with the new column")
	}
	// Duplicate column name errors.
	if err := e.ws.ApplyTransform(cands[0], "Label"); err == nil {
		t.Error("duplicate column should error")
	}
}

func TestTransformOnUncommittedTab(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 3)
	cands := e.ws.DiscoverTransform(map[int]string{0: strings.ToUpper(e.w.Shelters[0].City)})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if err := e.ws.ApplyTransform(cands[0], "CITY"); err != nil {
		t.Fatal(err)
	}
	if e.ws.ActiveTab().Schema.Index("CITY") < 0 {
		t.Error("column not added")
	}
}

func TestDemoteSuggestedTuple(t *testing.T) {
	e := importedEnv(t)
	e.ws.SetMode(ModeIntegration)
	comps := e.ws.RefreshColumnSuggestions()
	if len(comps) == 0 {
		t.Fatal("no completions")
	}
	before := len(e.ws.PendingColumns()[0].Result.Rows)
	if err := e.ws.DemoteSuggestedTuple(0, 0); err != nil {
		t.Fatal(err)
	}
	after := len(e.ws.PendingColumns()[0].Result.Rows)
	if after != before-1 {
		t.Errorf("demote should remove a tuple: %d → %d", before, after)
	}
	// Bad indexes error.
	if e.ws.DemoteSuggestedTuple(99, 0) == nil || e.ws.DemoteSuggestedTuple(0, 9999) == nil {
		t.Error("bad indexes should error")
	}
}

func TestMassDemotionRejectsCompletion(t *testing.T) {
	e := importedEnv(t)
	e.ws.SetMode(ModeIntegration)
	comps := e.ws.RefreshColumnSuggestions()
	if len(comps) == 0 {
		t.Fatal("no completions")
	}
	victim := comps[0].Edge.ID
	// Demote tuples until the completion is auto-rejected.
	for i := 0; i < 100; i++ {
		cur := e.ws.PendingColumns()
		if len(cur) == 0 || cur[0].Edge.ID != victim {
			break
		}
		if err := e.ws.DemoteSuggestedTuple(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range e.ws.PendingColumns() {
		if c.Edge.ID == victim {
			t.Fatal("mass demotion did not reject the completion")
		}
	}
	// The edge sank below the suggestion threshold.
	if e.ws.Int.Graph.Edge(victim).Cost <= sourcegraph.SuggestThreshold {
		t.Error("edge not demoted on the graph")
	}
}

func TestPromoteSuggestedTuple(t *testing.T) {
	e := importedEnv(t)
	e.ws.SetMode(ModeIntegration)
	comps := e.ws.RefreshColumnSuggestions()
	if len(comps) == 0 {
		t.Fatal("no completions")
	}
	id := comps[0].Edge.ID
	if err := e.ws.PromoteSuggestedTuple(0, 0); err != nil {
		t.Fatal(err)
	}
	if cost := e.ws.Int.Graph.Edge(id).Cost; cost >= sourcegraph.DefaultCost {
		t.Errorf("promotion should lower the edge cost: %f", cost)
	}
	if e.ws.PromoteSuggestedTuple(99, 0) == nil || e.ws.PromoteSuggestedTuple(0, 9999) == nil {
		t.Error("bad indexes should error")
	}
}

func TestUndoPaste(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	if e.ws.CanUndo() {
		t.Error("fresh workspace has nothing to undo")
	}
	if err := e.ws.Undo(); err == nil {
		t.Error("undo on empty stack should error")
	}
	e.pasteShelters(t, 2)
	if !e.ws.CanUndo() {
		t.Fatal("paste should be undoable")
	}
	if err := e.ws.Undo(); err != nil {
		t.Fatal(err)
	}
	if len(e.ws.ActiveTab().Rows) != 0 {
		t.Errorf("undo should clear the pasted rows, got %d", len(e.ws.ActiveTab().Rows))
	}
}

func TestUndoAcceptColumn(t *testing.T) {
	e := importedEnv(t)
	e.ws.SetMode(ModeIntegration)
	comps := e.ws.RefreshColumnSuggestions()
	if len(comps) == 0 {
		t.Fatal("no completions")
	}
	widthBefore := len(e.ws.ActiveTab().Schema)
	if err := e.ws.AcceptColumn(0); err != nil {
		t.Fatal(err)
	}
	if len(e.ws.ActiveTab().Schema) <= widthBefore {
		t.Fatal("accept should widen the schema")
	}
	if err := e.ws.Undo(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.ws.ActiveTab().Schema); got != widthBefore {
		t.Errorf("undo should restore the schema width: %d want %d", got, widthBefore)
	}
	// The catalog relation shrank back as well.
	src := e.ws.Cat.Get(e.ws.ActiveTab().SourceNode)
	if len(src.Schema) != widthBefore {
		t.Errorf("catalog schema = %d want %d", len(src.Schema), widthBefore)
	}
	// And the pending completions were restored with the snapshot.
	if len(e.ws.PendingColumns()) == 0 {
		t.Error("undo should restore pending completions")
	}
}

func TestUndoSetCell(t *testing.T) {
	e := importedEnv(t)
	orig := e.ws.ActiveTab().Rows[0].Cells[0].Str()
	if err := e.ws.SetCell(0, 0, "Scribble"); err != nil {
		t.Fatal(err)
	}
	if err := e.ws.Undo(); err != nil {
		t.Fatal(err)
	}
	if got := e.ws.ActiveTab().Rows[0].Cells[0].Str(); got != orig {
		t.Errorf("undo SetCell: got %q want %q", got, orig)
	}
}

func TestUndoStackBounded(t *testing.T) {
	e := importedEnv(t)
	for i := 0; i < maxUndo+10; i++ {
		if err := e.ws.SetCell(0, 0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.ws.undoStack) > maxUndo {
		t.Errorf("undo stack grew to %d (max %d)", len(e.ws.undoStack), maxUndo)
	}
}

func TestTransformTypedAsNewColumn(t *testing.T) {
	// After a transform column is added, the model learner can type it if
	// it matches a known type (e.g. a copied city column).
	e := importedEnv(t)
	tab := e.ws.ActiveTab()
	c0 := tab.Rows[0].Cells[2].Str()
	cands := e.ws.DiscoverTransform(map[int]string{0: c0})
	var identityish int = -1
	for i, c := range cands {
		if strings.Contains(c.Desc, "trim(City)") || strings.Contains(c.Desc, "title(City)") {
			identityish = i
			break
		}
	}
	if identityish < 0 {
		t.Skip("no identity-like transform found")
	}
	if err := e.ws.ApplyTransform(cands[identityish], "CityCopy"); err != nil {
		t.Fatal(err)
	}
	i := tab.Schema.Index("CityCopy")
	if tab.Schema[i].SemType != modellearn.TypeCity {
		t.Errorf("copied city column typed as %q", tab.Schema[i].SemType)
	}
}

func TestUnionPasteFlow(t *testing.T) {
	// §2.1: after importing the TV site's shelters, pasting a row from a
	// second source with the same shape expresses a union — CopyCat
	// spawns a background import and suggests the rest of the new source.
	w := webworld.Generate(webworld.DefaultConfig())
	half := len(w.Shelters) / 2
	e := newEnvForWorld(t, w, half)
	county := w.ShelterSiteRange(half, len(w.Shelters), "County Shelters", "http://county.example.gov/shelters")
	countyBrowser := wrappers.NewBrowser(e.ws.Clip, county)

	// Import the first half from the TV site.
	e.pasteShelters(t, 2)
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.ws.ActiveTab().ConcreteRows()); got != half {
		t.Fatalf("first import = %d rows want %d", got, half)
	}

	// Paste one county shelter into the same tab, matching the tab's
	// 3-column shape (Name, Street, City).
	s := w.Shelters[half]
	sel, err := countyBrowser.CopyRows([][]string{{s.Name, s.Street, s.City}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if e.ws.Mode() != ModeIntegration {
		t.Error("cross-source paste should enter integration mode")
	}
	info := e.ws.RowSuggestions()
	wantSuggested := len(w.Shelters) - half - 1 // county rows minus the pasted one
	if info.Count != wantSuggested {
		t.Fatalf("union suggestions = %d want %d (%s)", info.Count, wantSuggested, info.Description)
	}
	// Accepting completes the union.
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.ws.ActiveTab().ConcreteRows()); got != len(w.Shelters) {
		t.Errorf("union rows = %d want %d", got, len(w.Shelters))
	}
	// All shelters present exactly once-ish: check coverage.
	seen := map[string]bool{}
	for _, r := range e.ws.ActiveTab().ConcreteRows() {
		seen[r.Cells[0].Str()+"|"+r.Cells[1].Str()] = true
	}
	for _, s := range w.Shelters {
		if !seen[s.Name+"|"+s.Street] {
			t.Errorf("union missing shelter %s", s.Name)
		}
	}
}

// newEnvForWorld builds an env whose TV site covers only Shelters[0:n].
func newEnvForWorld(t *testing.T, w *webworld.World, n int) *env {
	t.Helper()
	cat := catalog.New()
	for _, svc := range services.Builtin(w) {
		cat.AddService(svc, "builtin")
	}
	types := modellearn.NewLibrary()
	modellearn.TrainBuiltins(types, w)
	ws := New(cat, types)
	site := w.ShelterSiteRange(0, n, "TV Shelters", "http://tv.example.com/shelters")
	return &env{w: w, ws: ws, brows: wrappers.NewBrowser(ws.Clip, site)}
}

func TestSummarize(t *testing.T) {
	e := importedEnv(t)
	tab, err := e.ws.Summarize([]string{"City"}, "count")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "Summary of Sheet1" {
		t.Errorf("summary tab = %q", tab.Name)
	}
	if len(tab.Rows) != len(e.w.Cities) {
		t.Fatalf("summary groups = %d want %d", len(tab.Rows), len(e.w.Cities))
	}
	ci := tab.Schema.Index("count")
	for _, r := range tab.Rows {
		if r.Cells[ci].Num() != float64(e.w.Config.SheltersPerCity) {
			t.Errorf("city %s count = %v", r.Cells[0].Str(), r.Cells[ci].Text())
		}
	}
	// Explanation of a summary row lists the contributing base tuples.
	expl, err := e.ws.ExplainRow(0)
	if err != nil || !strings.Contains(expl, "alternative derivations") {
		t.Errorf("summary explanation = %q err %v", expl, err)
	}
	// Bad expressions error.
	e.ws.SelectTab("Sheet1")
	if _, err := e.ws.Summarize([]string{"City"}, "median(X)"); err == nil {
		t.Error("bad aggregate should error")
	}
}

func TestSmartSetCellDetectsIntent(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	// Editing a cell to a value that exists on the source page is a
	// correction — generalized.
	onPage := e.w.Shelters[5].Name
	intent, err := e.ws.SmartSetCell(0, 0, onPage)
	if err != nil {
		t.Fatal(err)
	}
	if intent != EditGeneralized {
		t.Errorf("on-page edit intent = %s want generalized", intent)
	}
	// Editing to a value foreign to the page is cleaning.
	intent, err = e.ws.SmartSetCell(1, 0, "Hand-Fixed Value 99")
	if err != nil {
		t.Fatal(err)
	}
	if intent != EditCleaning {
		t.Errorf("foreign edit intent = %s want cleaning", intent)
	}
	// In cleaning mode, every edit stays local regardless of content.
	e.ws.SetMode(ModeCleaning)
	intent, err = e.ws.SmartSetCell(1, 0, onPage)
	if err != nil || intent != EditCleaning {
		t.Errorf("cleaning-mode intent = %s err %v", intent, err)
	}
	// Bad coordinates error.
	if _, err := e.ws.SmartSetCell(999, 0, "x"); err == nil {
		t.Error("bad cell should error")
	}
	if EditCleaning.String() != "cleaning" || EditGeneralized.String() != "generalized" {
		t.Error("intent names wrong")
	}
}

func TestSmartSetCellOnUnboundTab(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.ws.SelectTab("Fresh")
	e.ws.SetMode(ModeCleaning)
	sel := docmodel.Selection{Cells: [][]string{{"a", "b"}}}
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	e.ws.SetMode(ModeImport)
	intent, err := e.ws.SmartSetCell(0, 0, "zzz")
	if err != nil || intent != EditCleaning {
		t.Errorf("unbound tab edit = %s err %v", intent, err)
	}
}

func TestAmbiguityResolutionExample1(t *testing.T) {
	// A names-only tab fed through the Shelter Locator: duplicate
	// institution names across cities yield multiple answers per input —
	// the Example 1 ambiguity. The user picks the right one.
	e := newEnv(t, webworld.StyleTable)
	// Find a shelter name that exists in ≥2 cities.
	counts := map[string]int{}
	for _, s := range e.w.Shelters {
		counts[s.Name]++
	}
	dup := ""
	for n, c := range counts {
		if c >= 2 {
			dup = n
			break
		}
	}
	if dup == "" {
		t.Skip("world has no duplicate shelter names")
	}
	sel, err := e.brows.CopyRows([][]string{{dup}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	e.ws.RenameColumn(0, "Name")
	e.ws.SetColumnType(0, modellearn.TypeOrgName)
	// Keep only the single pasted row: reject all row suggestions.
	for e.ws.RowSuggestions().Count > 0 && e.ws.RowSuggestions().Alternatives > 0 {
		if err := e.ws.RejectRows(); err != nil {
			break
		}
	}
	tab := e.ws.ActiveTab()
	tab.Rows = tab.Rows[:1]
	if err := e.ws.CommitImport(); err != nil {
		t.Fatal(err)
	}
	e.ws.SetMode(ModeIntegration)
	comps := e.ws.RefreshColumnSuggestions()
	locIdx := -1
	for i, c := range comps {
		if c.Target == "Shelter Locator" {
			locIdx = i
		}
	}
	if locIdx < 0 {
		t.Fatalf("no locator completion: %d comps", len(comps))
	}
	if err := e.ws.AcceptColumn(locIdx); err != nil {
		t.Fatal(err)
	}
	if got := len(e.ws.ActiveTab().Rows); got != counts[dup] {
		t.Fatalf("ambiguous lookup rows = %d want %d", got, counts[dup])
	}
	groups := e.ws.AmbiguousGroups()
	if len(groups) != 1 {
		t.Fatalf("ambiguous groups = %d want 1", len(groups))
	}
	removed, err := e.ws.ChooseAlternative(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != counts[dup]-1 {
		t.Errorf("removed %d siblings want %d", removed, counts[dup]-1)
	}
	if len(e.ws.ActiveTab().Rows) != 1 {
		t.Errorf("rows after choice = %d", len(e.ws.ActiveTab().Rows))
	}
	if len(e.ws.AmbiguousGroups()) != 0 {
		t.Error("ambiguity should be resolved")
	}
	// Errors on bad input.
	if _, err := e.ws.ChooseAlternative(99); err == nil {
		t.Error("bad row should error")
	}
}

func TestServiceAlternatives(t *testing.T) {
	e := importedEnv(t)
	backup := services.NewZipResolver(e.w)
	backup.SvcName = "Mirror Zip"
	e.ws.Cat.AddService(backup, "mirror")
	e.ws.Int.Graph.Discover(sourcegraph.DefaultOptions())
	alts := e.ws.ServiceAlternatives("Zipcode Resolver")
	if len(alts) != 1 || alts[0] != "Mirror Zip" {
		t.Errorf("alternatives = %v", alts)
	}
	if e.ws.ServiceAlternatives("Nope") != nil {
		t.Error("unknown service should have no alternatives")
	}
}
