package workspace

import (
	"strings"
	"testing"

	"copycat/internal/catalog"
	"copycat/internal/docmodel"
	"copycat/internal/modellearn"
	"copycat/internal/services"
	"copycat/internal/sourcegraph"
	"copycat/internal/webworld"
	"copycat/internal/wrappers"
)

// env bundles a fresh world, workspace, and browser for tests.
type env struct {
	w     *webworld.World
	ws    *Workspace
	brows *wrappers.Browser
}

func newEnv(t *testing.T, style webworld.SiteStyle) *env {
	t.Helper()
	w := webworld.Generate(webworld.DefaultConfig())
	cat := catalog.New()
	for _, svc := range services.Builtin(w) {
		cat.AddService(svc, "builtin")
	}
	types := modellearn.NewLibrary()
	modellearn.TrainBuiltins(types, w)
	ws := New(cat, types)
	site := w.ShelterSite(style)
	return &env{w: w, ws: ws, brows: wrappers.NewBrowser(ws.Clip, site)}
}

// pasteShelters copies n shelters from the browser and pastes them.
func (e *env) pasteShelters(t *testing.T, n int) {
	t.Helper()
	var rows [][]string
	for _, s := range e.w.Shelters[:n] {
		rows = append(rows, []string{s.Name, s.Street, s.City})
	}
	sel, err := e.brows.CopyRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeImport.String() != "import" || ModeIntegration.String() != "integration" || ModeCleaning.String() != "cleaning" {
		t.Error("mode names wrong")
	}
	if !strings.Contains(Mode(7).String(), "7") {
		t.Error("unknown mode should embed number")
	}
}

func TestImportFlowFigure1(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	tab := e.ws.ActiveTab()
	if len(tab.ConcreteRows()) != 2 {
		t.Fatalf("concrete rows = %d", len(tab.ConcreteRows()))
	}
	// Row auto-completions: the remaining shelters are suggested.
	info := e.ws.RowSuggestions()
	if info.Count != len(e.w.Shelters)-2 {
		t.Errorf("suggested rows = %d want %d", info.Count, len(e.w.Shelters)-2)
	}
	if info.Description == "" || info.Alternatives == 0 {
		t.Error("suggestion metadata missing")
	}
	// The model learner typed the street and city columns (Figure 1's
	// PR-Street and PR-City).
	if tab.Schema[1].SemType != modellearn.TypeStreet {
		t.Errorf("street semtype = %q", tab.Schema[1].SemType)
	}
	if tab.Schema[2].SemType != modellearn.TypeCity {
		t.Errorf("city semtype = %q", tab.Schema[2].SemType)
	}
	// Headers suggested from the page's <th> row.
	if tab.Schema[0].Name != "Shelter" {
		t.Errorf("suggested header = %q", tab.Schema[0].Name)
	}
	// Recognized types are exposed for the drop-down.
	if ts, ok := e.ws.RecognizedTypeFor(1); !ok || ts.Type != modellearn.TypeStreet {
		t.Errorf("RecognizedTypeFor = %v %v", ts, ok)
	}
	// The user renames a column (manual label for Name).
	if err := e.ws.RenameColumn(0, "Name"); err != nil {
		t.Fatal(err)
	}
	if tab.Schema[0].Name != "Name" {
		t.Error("rename failed")
	}
	if err := e.ws.RenameColumn(99, "X"); err == nil {
		t.Error("bad column rename should error")
	}
}

func TestAcceptRowsCommitsSource(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	tab := e.ws.ActiveTab()
	if len(tab.ConcreteRows()) != len(e.w.Shelters) {
		t.Fatalf("after accept rows = %d want %d", len(tab.ConcreteRows()), len(e.w.Shelters))
	}
	if tab.SourceNode == "" {
		t.Fatal("tab not bound to a catalog source")
	}
	src := e.ws.Cat.Get(tab.SourceNode)
	if src == nil || src.Rel.Len() != len(e.w.Shelters) {
		t.Error("catalog source missing or wrong size")
	}
	// Provenance: committed rows carry base-tuple leaves.
	expl, err := e.ws.ExplainRow(0)
	if err != nil || !strings.Contains(expl, tab.SourceNode) {
		t.Errorf("ExplainRow = %q err %v", expl, err)
	}
	// Accepting again with no suggestions errors.
	if err := e.ws.AcceptRows(); err == nil {
		t.Error("accept without suggestions should error")
	}
}

func TestRejectRowsAdvancesHypothesis(t *testing.T) {
	e := newEnv(t, webworld.StyleGrouped)
	city := e.w.Cities[0].Name
	in := e.w.SheltersIn(city)
	sel, err := e.brows.CopyRows([][]string{
		{in[0].Name, in[0].Street, in[0].City},
		{in[1].Name, in[1].Street, in[1].City},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	first := e.ws.RowSuggestions()
	if first.Count != len(e.w.Shelters)-2 {
		t.Fatalf("first hypothesis should cover the whole page: %d", first.Count)
	}
	// Reject until the suggestions shrink to the city scope.
	sawScoped := false
	for i := 0; i < first.Alternatives; i++ {
		if err := e.ws.RejectRows(); err != nil {
			t.Fatal(err)
		}
		if e.ws.RowSuggestions().Count == len(in)-2 {
			sawScoped = true
			break
		}
	}
	if !sawScoped {
		t.Error("rejecting never produced the city-scoped suggestion")
	}
	// Rejecting with no learner errors.
	e.ws.SelectTab("Fresh")
	if err := e.ws.RejectRows(); err == nil {
		t.Error("reject on fresh tab should error")
	}
}

func TestExtendAcrossSitePaged(t *testing.T) {
	e := newEnv(t, webworld.StylePaged)
	e.pasteShelters(t, 2)
	before := e.ws.RowSuggestions().Count
	n := e.ws.ExtendAcrossSite()
	if n == 0 {
		t.Fatal("no pages unified")
	}
	after := e.ws.RowSuggestions().Count
	if after <= before {
		t.Errorf("extension did not add rows: %d → %d", before, after)
	}
	if after != len(e.w.Shelters)-2 {
		t.Errorf("extended suggestions = %d want %d", after, len(e.w.Shelters)-2)
	}
	// No learner on a fresh tab → 0.
	e.ws.SelectTab("Fresh")
	if e.ws.ExtendAcrossSite() != 0 {
		t.Error("fresh tab should not extend")
	}
}

func TestColumnCompletionFigure2(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	e.ws.RenameColumn(0, "Name")
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	e.ws.SetMode(ModeIntegration)
	comps := e.ws.RefreshColumnSuggestions()
	if len(comps) == 0 {
		t.Fatal("no column completions")
	}
	zipIdx := -1
	for i, c := range comps {
		if c.Target == "Zipcode Resolver" {
			zipIdx = i
		}
	}
	if zipIdx < 0 {
		t.Fatal("no Zip completion")
	}
	// Explanation before deciding.
	expl, err := e.ws.ExplainCompletion(zipIdx, 2)
	if err != nil || !strings.Contains(expl, "Zipcode Resolver") {
		t.Errorf("ExplainCompletion = %v err %v", expl, err)
	}
	if err := e.ws.AcceptColumn(zipIdx); err != nil {
		t.Fatal(err)
	}
	tab := e.ws.ActiveTab()
	zi := tab.Schema.Index("Zip")
	if zi < 0 {
		t.Fatalf("no Zip column after accept: %s", tab.Schema)
	}
	// Every row's zip matches ground truth.
	// Key by (name, street): institution names repeat across cities.
	truth := map[string]string{}
	for _, s := range e.w.Shelters {
		truth[s.Name+"|"+s.Street] = s.Zip
	}
	for _, r := range tab.ConcreteRows() {
		k := r.Cells[0].Str() + "|" + r.Cells[1].Str()
		if truth[k] != r.Cells[zi].Str() {
			t.Errorf("zip for %s = %s want %s", k, r.Cells[zi].Str(), truth[k])
		}
	}
	// Explanations now show the dependent join.
	expl, _ = e.ws.ExplainRow(0)
	if !strings.Contains(expl, "Zipcode Resolver") || !strings.Contains(expl, "joined from") {
		t.Errorf("row explanation missing dependent join:\n%s", expl)
	}
	// Bad indexes error.
	if err := e.ws.AcceptColumn(99); err == nil || e.ws.RejectColumn(99) == nil {
		t.Error("bad completion index should error")
	}
}

func TestRejectColumnSuppressesSuggestion(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	e.ws.SetMode(ModeIntegration)
	comps := e.ws.RefreshColumnSuggestions()
	if len(comps) == 0 {
		t.Fatal("no completions")
	}
	victimEdge := comps[0].Edge.ID
	if err := e.ws.RejectColumn(0); err != nil {
		t.Fatal(err)
	}
	for _, c := range e.ws.RefreshColumnSuggestions() {
		if c.Edge.ID == victimEdge {
			t.Error("rejected completion re-proposed")
		}
	}
}

func TestIntegrationModeAutoSwitchOnCrossSourcePaste(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	if e.ws.Mode() != ModeImport {
		t.Fatal("should still be import mode")
	}
	// Import contacts in a second tab, then paste from the spreadsheet
	// into the shelters tab — that's a cross-source paste.
	sheet := wrappers.NewSpreadsheet(e.ws.Clip, e.w.ContactsSpreadsheet())
	sel, err := sheet.CopyRange(1, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pad the selection to the tab width (3 cols) is not required; a
	// single-cell paste into a 4-wide tab errors — so paste a full row of
	// matching width from the contacts sheet instead.
	sel, err = sheet.CopyRange(1, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.ws.Paste(sel) // width mismatch errors are acceptable here
	if e.ws.Mode() != ModeIntegration {
		t.Errorf("cross-source paste should switch to integration mode, mode=%s", e.ws.Mode())
	}
}

func TestSteinerQueryFlowAcrossSources(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	// Import shelters.
	e.pasteShelters(t, 2)
	e.ws.RenameColumn(0, "Name")
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	// Import contacts in a second tab.
	e.ws.SelectTab("Contacts")
	e.ws.SetMode(ModeImport)
	sheet := wrappers.NewSpreadsheet(e.ws.Clip, e.w.ContactsSpreadsheet())
	sel, err := sheet.CopyRange(1, 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if e.ws.RowSuggestions().Count == 0 {
		t.Fatal("contacts rows not generalized")
	}
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	// Type the org column so record linking is discoverable.
	ct := e.ws.ActiveTab()
	for i, c := range ct.Schema {
		switch c.Name {
		case "Organization":
			e.ws.SetColumnType(i, modellearn.TypeOrgName)
		case "Contact":
			e.ws.SetColumnType(i, modellearn.TypePersonName)
		}
	}
	// Also type the shelters tab's Name column.
	e.ws.SelectTab("Sheet1")
	e.ws.SetColumnType(0, modellearn.TypeOrgName)
	e.ws.Int.Graph.Discover(sourcegraph.DefaultOptions())

	// Paste a joined tuple: shelter name + contact person.
	c0 := e.w.Contacts[0]
	sel2 := docmodel.Selection{Cells: [][]string{{
		e.w.Shelters[0].Name, e.w.Shelters[0].Street, e.w.Shelters[0].City, c0.Person,
	}}}
	e.ws.SelectTab("Joined")
	e.ws.SetMode(ModeIntegration)
	if err := e.ws.Paste(sel2); err != nil {
		t.Fatal(err)
	}
	qs := e.ws.PendingQueries()
	if len(qs) == 0 {
		t.Fatal("no queries proposed for the joined paste")
	}
	if err := e.ws.AcceptQuery(0); err != nil {
		t.Fatal(err)
	}
	out := e.ws.ActiveTab()
	if out.Name != "Query Output" || len(out.Rows) == 0 {
		t.Fatalf("query output tab missing/empty: %s %d", out.Name, len(out.Rows))
	}
	// Output rows carry multi-source provenance.
	expl, _ := e.ws.ExplainRow(0)
	if !strings.Contains(expl, "Sources:") {
		t.Errorf("no sources in explanation:\n%s", expl)
	}
}

func TestCleaningModeDoesNotGeneralize(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	e.ws.SetMode(ModeCleaning)
	before := len(e.ws.ActiveTab().Rows)
	sel, err := e.brows.CopyText(e.w.Shelters[3].Name, e.w.Shelters[3].Street, e.w.Shelters[3].City)
	if err != nil {
		t.Fatal(err)
	}
	// Width mismatch (tab now has committed schema of width 3): paste ok.
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if len(e.ws.ActiveTab().Rows) != before+1 {
		t.Error("cleaning paste should add exactly one literal row")
	}
	// Direct cell edit.
	if err := e.ws.SetCell(0, 0, "Edited Name"); err != nil {
		t.Fatal(err)
	}
	if e.ws.ActiveTab().Rows[0].Cells[0].Str() != "Edited Name" {
		t.Error("edit not applied")
	}
	if err := e.ws.SetCell(999, 0, "x"); err == nil {
		t.Error("bad cell edit should error")
	}
}

func TestDefineNewTypeOnTheFly(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 3)
	if err := e.ws.SetColumnType(0, "PR-ShelterName"); err != nil {
		t.Fatal(err)
	}
	if e.ws.Types.Model("PR-ShelterName") == nil {
		t.Fatal("new type not trained")
	}
	// The freshly defined type now recognizes other shelter names.
	scores := e.ws.Types.Recognize([]string{e.w.Shelters[10].Name, e.w.Shelters[11].Name})
	found := false
	for _, s := range scores {
		if s.Type == "PR-ShelterName" {
			found = true
		}
	}
	if !found {
		t.Errorf("session-defined type not recognized: %v", scores)
	}
	if err := e.ws.SetColumnType(99, "T"); err == nil {
		t.Error("bad column should error")
	}
}

func TestRenderShowsSuggestions(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	out := e.ws.Render()
	if !strings.Contains(out, "?") {
		t.Error("render should mark suggested rows")
	}
	if !strings.Contains(out, "import mode") {
		t.Errorf("render should show the mode:\n%s", out)
	}
	if !strings.Contains(out, e.w.Shelters[0].Name) {
		t.Error("render should show data")
	}
}

func TestLedgerAccounting(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	if e.ws.Keys.Pastes != 1 || e.ws.Keys.Copies != 1 {
		t.Errorf("paste accounting wrong: %s", e.ws.Keys)
	}
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	if e.ws.Keys.Accepts != 1 {
		t.Error("accept not recorded")
	}
	total := e.ws.Keys.Keystrokes
	if total <= 0 {
		t.Error("keystrokes should be positive")
	}
	// Manual baselines are much larger for the same table.
	var rows [][]string
	for _, s := range e.w.Shelters {
		rows = append(rows, []string{s.Name, s.Street, s.City})
	}
	if ManualCost(rows) <= total || ManualCopyPasteCost(rows) <= total {
		t.Errorf("SCP (%d) should beat manual typing (%d) and manual c&p (%d)",
			total, ManualCost(rows), ManualCopyPasteCost(rows))
	}
	e.ws.Keys.Reset()
	if e.ws.Keys.Keystrokes != 0 {
		t.Error("reset failed")
	}
	if !strings.Contains(e.ws.Keys.String(), "keystrokes=0") {
		t.Error("ledger String wrong")
	}
}

func TestSelectTabCreatesAndSwitches(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	if len(e.ws.Tabs()) != 1 {
		t.Fatal("fresh workspace should have one tab")
	}
	t2 := e.ws.SelectTab("Second")
	if e.ws.ActiveTab() != t2 || len(e.ws.Tabs()) != 2 {
		t.Error("tab creation wrong")
	}
	t1 := e.ws.SelectTab("Sheet1")
	if e.ws.ActiveTab() != t1 {
		t.Error("tab switch wrong")
	}
}

func TestCommitImportEmptyTabErrors(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	if err := e.ws.CommitImport(); err == nil {
		t.Error("empty tab commit should error")
	}
}
