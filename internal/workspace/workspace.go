// Package workspace implements the CopyCat workspace (§2.1): the
// spreadsheet-like surface the user pastes into. It routes pastes to the
// structure/model learners in import mode and to the integration learner
// in integration mode, displays row and column auto-completion
// suggestions, renders tuple explanations from provenance, processes
// accept/reject feedback, and keeps the keystroke ledger the E1
// experiment measures.
//
// The paper's Java Swing GUI is replaced by this headless model plus an
// ASCII renderer (cmd/copycat); every SCP behaviour lives here.
package workspace

import (
	"context"
	"fmt"
	"strings"
	"time"

	"copycat/internal/catalog"
	"copycat/internal/engine"
	"copycat/internal/intlearn"
	"copycat/internal/modellearn"
	"copycat/internal/obs"
	"copycat/internal/obs/flight"
	"copycat/internal/plancache"
	"copycat/internal/provenance"
	"copycat/internal/resilience"
	"copycat/internal/sourcegraph"
	"copycat/internal/structlearn"
	"copycat/internal/table"
	"copycat/internal/wrappers"
)

// Mode is the workspace interaction mode (§2.1, §5).
type Mode uint8

const (
	// ModeImport generalizes pastes into source extractors.
	ModeImport Mode = iota
	// ModeIntegration infers cross-source queries and completions.
	ModeIntegration
	// ModeCleaning applies edits to single tuples without generalizing
	// (§5 "Data cleaning").
	ModeCleaning
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeImport:
		return "import"
	case ModeIntegration:
		return "integration"
	case ModeCleaning:
		return "cleaning"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Row is one workspace row.
type Row struct {
	Cells table.Tuple
	Prov  provenance.Expr
	// Suggested rows are auto-completions awaiting feedback; accepted or
	// pasted rows have Suggested=false.
	Suggested bool
}

// Tab is one tabbed pane of the workspace; integration mode creates one
// per source plus one for the query output (§2.1).
type Tab struct {
	Name   string
	Schema table.Schema
	Rows   []Row
	// SourceNode is the catalog source this tab was imported as ("" until
	// the import is committed).
	SourceNode string
	// TypeHints holds the per-column ranked semantic-type hypotheses for
	// the UI drop-downs.
	TypeHints [][]modellearn.TypeScore
	// Query is the integration query this tab displays the output of
	// (query-output tabs only); it enables saved mediated views.
	Query *intlearn.Query
}

// ConcreteRows returns the non-suggested rows.
func (t *Tab) ConcreteRows() []Row {
	var out []Row
	for _, r := range t.Rows {
		if !r.Suggested {
			out = append(out, r)
		}
	}
	return out
}

// SuggestedRows returns the pending auto-completion rows.
func (t *Tab) SuggestedRows() []Row {
	var out []Row
	for _, r := range t.Rows {
		if r.Suggested {
			out = append(out, r)
		}
	}
	return out
}

// Relation materializes the tab's concrete rows.
func (t *Tab) Relation() *table.Relation {
	rel := table.NewRelation(t.Name, t.Schema.Clone())
	for _, r := range t.ConcreteRows() {
		rel.Rows = append(rel.Rows, r.Cells)
	}
	return rel
}

// Workspace is the SCP workspace.
type Workspace struct {
	Clip  *wrappers.Clipboard
	Cat   *catalog.Catalog
	Types *modellearn.Library
	Int   *intlearn.Learner
	Keys  *Ledger

	// ExecStats accumulates executor instrumentation (rows, service
	// calls, cache hits, pruned trees) across every suggestion refresh
	// and query run of the session.
	ExecStats *engine.Stats
	// SvcCache memoizes service calls across plan executions — candidate
	// completions re-invoke the same services with the same bindings on
	// every refresh, and this removes those repeat calls.
	SvcCache *engine.ServiceCache
	// PlanCache memoizes whole candidate-plan results keyed by canonical
	// fingerprints (DESIGN.md §10), so steady-state refreshes re-execute
	// only candidates whose inputs changed since the last pass. Set to
	// nil to force cold, recompute-everything refreshes.
	PlanCache *plancache.Cache
	// ExecTimeout bounds each suggestion/query execution; 0 means no
	// deadline. Interactive hosts set this to keep suggestion refreshes
	// within typing latency.
	ExecTimeout time.Duration
	// Resilience, when non-nil, shields service calls with retries and
	// per-service circuit breakers; rows whose lookups still fail
	// transiently degrade (are skipped or null-padded) instead of failing
	// the plan. Nil preserves fail-fast execution.
	Resilience *resilience.Caller
	// Metrics is the unified metrics registry: per-stage latency
	// histograms plus any gauges the session publishes. Always non-nil
	// after New.
	Metrics *obs.Registry
	// Decisions logs why each candidate was pruned, degraded, suggested,
	// outranked, accepted, or rejected (the :why surface). Always
	// non-nil after New.
	Decisions *obs.DecisionLog
	// SLO tracks the suggestion-refresh latency objective over rolling
	// fast/slow burn windows — the "recent behaviour" counterpart of the
	// cumulative Metrics histograms, surfaced by the telemetry server's
	// /healthz and /metrics and the REPL :slo command. Always non-nil
	// after New; it reads the workspace clock, so virtual-clock sessions
	// burn deterministically.
	SLO *obs.SLOTracker
	// Clock drives stage timing and (when tracing) span timestamps; nil
	// means the wall clock. Inject a resilience.VirtualClock for
	// deterministic traces.
	Clock resilience.Clock
	// SessionID identifies the session handle that owns this workspace in
	// a multi-tenant host. When set, every stage span carries it as the
	// "session" attribute (so a followed /trace/stream interleaving many
	// tenants stays attributable). "" for the single-workspace facade.
	SessionID string
	// StageHook, when non-nil, observes every completed pipeline stage
	// (name + duration) in addition to this workspace's own histograms
	// and SLO tracker. The session manager uses it to fold per-session
	// latencies into host-level admission-control SLOs.
	StageHook func(stage string, d time.Duration)
	// Quality accumulates live suggestion-quality telemetry (acceptance
	// rate, rank-of-accepted histogram, rounds-to-accept) from every
	// accept/reject/undo. Always non-nil after New; folded into
	// MetricsSnapshot as the "quality.*" families.
	Quality *obs.QualityTracker
	// QualityHook, when non-nil, observes every quality event in
	// addition to the workspace's own tracker. The session manager uses
	// it to aggregate host-level and per-tenant quality counters that
	// survive session eviction.
	QualityHook func(ev obs.QualityEvent)

	// trace is the active span tracer; nil (the default) disables
	// tracing at ~zero cost. Managed by EnableTracing/DisableTracing.
	trace *obs.Trace
	// spanRing buffers ended spans for live streaming (/trace/stream);
	// EnableTracing plugs it into the trace as a sink.
	spanRing *obs.SpanRing
	// flight is the always-on flight recorder: it retains recent spans,
	// decisions, and lifecycle events, and captures incident bundles when
	// a trigger rule fires. New installs a workspace-local recorder; a
	// session manager replaces it with the shared host recorder via
	// SetFlight. nil (via SetFlight(nil)) detaches recording entirely —
	// the overhead experiment's control arm.
	flight *flight.Recorder

	mode   Mode
	tabs   []*Tab
	active int

	// structLearners tracks the per-tab import learner.
	structLearners map[string]*structlearn.Learner
	// pendingCols are the current column auto-completion proposals.
	pendingCols []intlearn.Completion
	// pendingQueries are the current row-explanation query proposals.
	pendingQueries []*intlearn.Query
	// queryTerminals are the sources behind the last integration paste;
	// RefreshQuerySuggestions re-asks the learner for them so background
	// exact refinement (the tiered solver) can surface re-ranks.
	queryTerminals []string
	// demotions counts per-edge tuple demotions for aggregation into
	// completion-level rejection.
	demotions map[string]int
	// undoStack holds snapshots for Undo.
	undoStack []snapshot
	// roundsSinceAccept counts suggestion refreshes since the last
	// accepted suggestion — the live rounds-to-accept numerator.
	roundsSinceAccept int
	// views are the saved mediated views by name.
	views map[string]*intlearn.Query
}

// DefaultPlanCacheSize bounds the plan result cache New installs. A
// session's live candidate set is a few dozen plans; 256 keeps several
// feedback epochs' worth of results resident so oscillating weights can
// re-hit earlier entries.
const DefaultPlanCacheSize = 256

// New creates a workspace over a catalog and type library. The source
// graph and integration learner are created on top of the catalog.
func New(cat *catalog.Catalog, types *modellearn.Library) *Workspace {
	g := sourcegraph.New(cat)
	w := &Workspace{
		Clip:           wrappers.NewClipboard(),
		Cat:            cat,
		Types:          types,
		Int:            intlearn.New(g),
		Keys:           NewLedger(),
		ExecStats:      engine.NewStats(),
		SvcCache:       engine.NewServiceCache(),
		PlanCache:      plancache.New(DefaultPlanCacheSize),
		Metrics:        obs.NewRegistry(),
		Decisions:      obs.NewDecisionLog(),
		Quality:        obs.NewQualityTracker(),
		spanRing:       obs.NewSpanRing(obs.DefaultSpanRingSize),
		structLearners: map[string]*structlearn.Learner{},
		demotions:      map[string]int{},
	}
	// The tracker reads w.now at observe time, so a clock injected after
	// New (NewDemoSystem installs the virtual clock last) still drives it.
	w.SLO = obs.NewSLOTracker(obs.DefaultSLOConfig(), w.now)
	// The flight recorder likewise reads w.now per record, so it follows
	// a late-injected virtual clock (and re-anchors its cooldowns when
	// the clock jumps backwards to the virtual epoch).
	w.flight = flight.New(flight.Config{
		Clock:    w.now,
		Metrics:  w.MetricsSnapshot,
		Registry: w.Metrics,
	})
	// Every recorded decision streams into whichever recorder is current
	// (the closure re-reads w.flight, so SetFlight redirects it too).
	w.Decisions.SetSink(func(d obs.Decision) { w.flight.ObserveDecision(d) })
	// Background exact-refinement failures are an incident trigger: the
	// refine goroutine captured this hook at spawn, so it reports into
	// the recorder that owned the workspace when the refresh started.
	w.Int.RefineFailHook = func(reason string) {
		w.flight.RecordEvent(flight.EventRefineFailed, w.SessionID, "", reason)
		w.flight.Trigger(flight.TriggerRefineFailure, reason, w.SessionID, "")
	}
	w.tabs = []*Tab{{Name: "Sheet1", Schema: table.Schema{}}}
	return w
}

// Mode returns the current interaction mode.
func (w *Workspace) Mode() Mode { return w.mode }

// SetMode switches modes explicitly (the §2.1 button).
func (w *Workspace) SetMode(m Mode) { w.mode = m }

// Tabs lists the tabbed panes.
func (w *Workspace) Tabs() []*Tab { return w.tabs }

// ActiveTab returns the selected tab.
func (w *Workspace) ActiveTab() *Tab { return w.tabs[w.active] }

// SelectTab activates the named tab, creating it if needed.
func (w *Workspace) SelectTab(name string) *Tab {
	for i, t := range w.tabs {
		if t.Name == name {
			w.active = i
			return t
		}
	}
	t := &Tab{Name: name, Schema: table.Schema{}}
	w.tabs = append(w.tabs, t)
	w.active = len(w.tabs) - 1
	return t
}

// RenameColumn sets a column header (the user typing a label, Figure 1's
// "Name"). In cleaning or any mode this is a direct edit.
func (w *Workspace) RenameColumn(i int, name string) error {
	t := w.ActiveTab()
	if i < 0 || i >= len(t.Schema) {
		return fmt.Errorf("workspace: no column %d", i)
	}
	w.Keys.Type(name)
	t.Schema[i].Name = name
	return nil
}

// SetColumnType overrides a column's semantic type (picking from the
// drop-down, or defining a new type on the fly — which trains the model
// learner from the column's current values).
func (w *Workspace) SetColumnType(i int, semType string) error {
	t := w.ActiveTab()
	if i < 0 || i >= len(t.Schema) {
		return fmt.Errorf("workspace: no column %d", i)
	}
	w.Keys.Click()
	t.Schema[i].SemType = semType
	if w.Types.Model(semType) == nil {
		var vals []string
		for _, r := range t.ConcreteRows() {
			if i < len(r.Cells) {
				vals = append(vals, r.Cells[i].Text())
			}
		}
		w.Types.DefineType(semType, vals)
	}
	if t.SourceNode != "" {
		_ = w.Cat.SetSemType(t.SourceNode, t.Schema[i].Name, semType)
		// A corrected type changes which associations are possible —
		// refresh the source graph (feedback flowing from the model
		// learner to the integration learner, §5).
		w.Int.Graph.Discover(sourcegraph.DefaultOptions())
	}
	return nil
}

// SetCell edits a cell directly. In cleaning mode (or for concrete rows)
// the edit is applied without generalization (§5 "Data cleaning").
func (w *Workspace) SetCell(row, col int, value string) error {
	t := w.ActiveTab()
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Schema) {
		return fmt.Errorf("workspace: cell (%d,%d) out of range", row, col)
	}
	w.checkpoint(opEdit)
	w.Keys.Type(value)
	t.Rows[row].Cells[col] = table.ParseValue(value)
	t.Rows[row].Suggested = false
	return nil
}

// ExplainRow renders the Tuple Explanation pane for a row of the active
// tab (Figure 2, bottom).
func (w *Workspace) ExplainRow(i int) (string, error) {
	t := w.ActiveTab()
	if i < 0 || i >= len(t.Rows) {
		return "", fmt.Errorf("workspace: no row %d", i)
	}
	r := t.Rows[i]
	var b strings.Builder
	fmt.Fprintf(&b, "Tuple: (%s)\n", strings.Join(r.Cells.Texts(), ", "))
	srcs := provenance.Sources(r.Prov)
	if len(srcs) > 0 {
		fmt.Fprintf(&b, "Sources: %s\n", strings.Join(srcs, ", "))
	}
	b.WriteString(provenance.Explain(r.Prov))
	return b.String(), nil
}

// Render draws the active tab as an aligned ASCII grid, marking suggested
// rows with a leading '?' (the paper's yellow highlight).
func (w *Workspace) Render() string {
	t := w.ActiveTab()
	widths := make([]int, len(t.Schema))
	header := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		header[i] = c.Name
		if c.SemType != "" {
			header[i] += " [" + c.SemType + "]"
		}
		widths[i] = len(header[i])
	}
	for _, r := range t.Rows {
		for i, v := range r.Cells {
			if i < len(widths) && len(v.Text()) > widths[i] {
				widths[i] = len(v.Text())
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] tab %q (%s mode)\n", strings.ToUpper(w.mode.String()), t.Name, w.mode)
	b.WriteString("  ")
	for i := range t.Schema {
		fmt.Fprintf(&b, "| %-*s ", widths[i], header[i])
	}
	b.WriteString("|\n")
	for _, r := range t.Rows {
		if r.Suggested {
			b.WriteString("? ")
		} else {
			b.WriteString("  ")
		}
		for i, v := range r.Cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "| %-*s ", widths[i], v.Text())
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- helpers

// columnValues gathers the concrete values of every column of a tab.
func columnValues(t *Tab) [][]string {
	out := make([][]string, len(t.Schema))
	for _, r := range t.ConcreteRows() {
		for i := range t.Schema {
			if i < len(r.Cells) {
				out[i] = append(out[i], r.Cells[i].Text())
			}
		}
	}
	return out
}

// execCtx builds the workspace's execution context: the session's shared
// stats block and service cache, the configured deadline, and the
// observability surfaces — a stage span (when tracing), the stage's
// latency histogram, and the decision log. The returned cancel func
// must be called when the execution finishes; it also closes the stage.
func (w *Workspace) execCtx(stage string) (*engine.ExecCtx, context.CancelFunc) {
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if w.ExecTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), w.ExecTimeout)
	}
	opts := []engine.ExecOption{
		engine.WithStats(w.ExecStats),
		engine.WithServiceCache(w.SvcCache),
	}
	if w.PlanCache != nil {
		opts = append(opts, engine.WithPlanCache(w.PlanCache))
	}
	if w.Resilience != nil {
		opts = append(opts, engine.WithResilience(w.Resilience))
	}
	if w.trace != nil {
		opts = append(opts, engine.WithTrace(w.trace))
	}
	if w.Metrics != nil {
		opts = append(opts, engine.WithMetrics(w.Metrics))
	}
	if w.Decisions != nil {
		opts = append(opts, engine.WithDecisions(w.Decisions))
	}
	if w.Clock != nil {
		opts = append(opts, engine.WithExecClock(w.Clock))
	}
	ec := engine.NewExecCtx(ctx, opts...)
	sp, done := w.stage(stage)
	if sp != nil {
		ec = ec.WithSpan(sp)
	}
	realCancel := cancel
	return ec, func() {
		done()
		realCancel()
	}
}

// valuesPlan exposes the active tab's concrete rows to the engine.
func (w *Workspace) valuesPlan() *engine.Values {
	t := w.ActiveTab()
	var rows []provenance.Annotated
	for _, r := range t.ConcreteRows() {
		rows = append(rows, provenance.Annotated{Row: r.Cells, Prov: r.Prov})
	}
	return &engine.Values{Name: t.Name, Schema_: t.Schema, Rows: rows}
}
