package workspace

import (
	"strings"
	"testing"
	"time"

	"copycat/internal/docmodel"
	"copycat/internal/intlearn"
	"copycat/internal/modellearn"
	"copycat/internal/sourcegraph"
	"copycat/internal/table"
	"copycat/internal/webworld"
	"copycat/internal/wrappers"
)

// TestAcceptQueryInvalidIndexLeavesNoCheckpoint is a regression test:
// AcceptQuery used to checkpoint before validating the index, so a
// mistyped accept pushed a spurious undo entry.
func TestAcceptQueryInvalidIndexLeavesNoCheckpoint(t *testing.T) {
	e := newEnv(t, 0)
	if err := e.ws.AcceptQuery(3); err == nil {
		t.Fatal("expected error for invalid index")
	}
	if e.ws.CanUndo() {
		t.Error("failed AcceptQuery left a checkpoint on the undo stack")
	}
}

func TestAcceptQueryCompileFailureLeavesNoCheckpoint(t *testing.T) {
	e := newEnv(t, 0)
	// A query with only service nodes has no materialized source to root
	// at, so compilation fails.
	e.ws.pendingQueries = []*intlearn.Query{{Nodes: []string{"Zipcode Resolver"}}}
	if err := e.ws.AcceptQuery(0); err == nil {
		t.Fatal("expected compile error")
	}
	if e.ws.CanUndo() {
		t.Error("compile failure left a checkpoint on the undo stack")
	}
	if len(e.ws.PendingQueries()) != 1 {
		t.Error("failed accept should keep the pending query")
	}
}

func TestAcceptQueryExecuteFailureRollsBackCheckpoint(t *testing.T) {
	e := newEnv(t, 0)
	rel := table.NewRelation("TestRel", table.NewSchema("A"))
	rel.MustAppend(table.FromStrings([]string{"x"}))
	e.ws.Cat.AddRelation(rel, "test")
	e.ws.pendingQueries = []*intlearn.Query{{Nodes: []string{"TestRel"}}}
	e.ws.ExecTimeout = time.Nanosecond // execution dies on the deadline
	if err := e.ws.AcceptQuery(0); err == nil {
		t.Fatal("expected execute error under a 1ns deadline")
	}
	if e.ws.CanUndo() {
		t.Error("execute failure left a checkpoint on the undo stack")
	}
}

// TestRejectQueryDoesNotCorruptReturnedSlices is a regression test:
// RejectQuery used to splice pendingQueries in place, corrupting slices
// previously returned by PendingQueries().
func TestRejectQueryDoesNotCorruptReturnedSlices(t *testing.T) {
	e := newEnv(t, 0)
	qs := []*intlearn.Query{
		{Nodes: []string{"A"}}, {Nodes: []string{"B"}}, {Nodes: []string{"C"}},
	}
	e.ws.pendingQueries = qs
	before := e.ws.PendingQueries()
	snapshot := append([]*intlearn.Query(nil), before...)
	if err := e.ws.RejectQuery(0); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != snapshot[i] {
			t.Fatalf("RejectQuery mutated a previously returned slice at %d: %v != %v", i, before[i], snapshot[i])
		}
	}
	if got := e.ws.PendingQueries(); len(got) != 2 || got[0].Nodes[0] != "B" {
		t.Errorf("reject should drop the first query, got %v", got)
	}
}

// TestRefreshQuerySuggestions drives a real integration paste, then
// polls RefreshQuerySuggestions: the poll must re-propose for the same
// terminals (surfacing any background exact refinement on large graphs)
// and become a no-op once a query is accepted.
func TestRefreshQuerySuggestions(t *testing.T) {
	e := newEnv(t, webworld.StyleTable)
	e.pasteShelters(t, 2)
	e.ws.RenameColumn(0, "Name")
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	e.ws.SelectTab("Contacts")
	e.ws.SetMode(ModeImport)
	sheet := wrappers.NewSpreadsheet(e.ws.Clip, e.w.ContactsSpreadsheet())
	sel, err := sheet.CopyRange(1, 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ws.Paste(sel); err != nil {
		t.Fatal(err)
	}
	if err := e.ws.AcceptRows(); err != nil {
		t.Fatal(err)
	}
	ct := e.ws.ActiveTab()
	for i, c := range ct.Schema {
		switch c.Name {
		case "Organization":
			e.ws.SetColumnType(i, modellearn.TypeOrgName)
		case "Contact":
			e.ws.SetColumnType(i, modellearn.TypePersonName)
		}
	}
	e.ws.SelectTab("Sheet1")
	e.ws.SetColumnType(0, modellearn.TypeOrgName)
	e.ws.Int.Graph.Discover(sourcegraph.DefaultOptions())

	c0 := e.w.Contacts[0]
	sel2 := docmodel.Selection{Cells: [][]string{{
		e.w.Shelters[0].Name, e.w.Shelters[0].Street, e.w.Shelters[0].City, c0.Person,
	}}}
	e.ws.SelectTab("Joined")
	e.ws.SetMode(ModeIntegration)
	if err := e.ws.Paste(sel2); err != nil {
		t.Fatal(err)
	}
	first := e.ws.PendingQueries()
	if len(first) == 0 {
		t.Fatal("no queries proposed for the joined paste")
	}
	if len(e.ws.queryTerminals) < 2 {
		t.Fatalf("paste did not record query terminals: %v", e.ws.queryTerminals)
	}

	// Polling re-proposes for the same terminals; nothing changed, so the
	// top query is stable.
	qs, err := e.ws.RefreshQuerySuggestions()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("refresh dropped the proposals")
	}
	if got, want := strings.Join(qs[0].Nodes, "+"), strings.Join(first[0].Nodes, "+"); got != want {
		t.Errorf("refresh changed the top query with no new information: %s != %s", got, want)
	}

	if err := e.ws.AcceptQuery(0); err != nil {
		t.Fatal(err)
	}
	// Accept clears the outstanding paste; further polls are no-ops.
	qs, err = e.ws.RefreshQuerySuggestions()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Errorf("refresh after accept should be a no-op, got %d proposals", len(qs))
	}
}

// TestUndoRestoresPendingQueries is a regression test: Undo restored
// pendingCols but silently dropped pendingQueries.
func TestUndoRestoresPendingQueries(t *testing.T) {
	e := newEnv(t, 0)
	e.pasteShelters(t, 2)
	e.ws.pendingQueries = []*intlearn.Query{{Nodes: []string{"A"}}, {Nodes: []string{"B"}}}
	// A mutating operation checkpoints, then the proposals are cleared.
	if err := e.ws.SetCell(0, 0, "edited"); err != nil {
		t.Fatal(err)
	}
	e.ws.pendingQueries = nil
	if err := e.ws.Undo(); err != nil {
		t.Fatal(err)
	}
	got := e.ws.PendingQueries()
	if len(got) != 2 || got[0].Nodes[0] != "A" || got[1].Nodes[0] != "B" {
		t.Errorf("Undo did not restore pendingQueries: %v", got)
	}
}
